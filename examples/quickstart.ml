(* Quickstart: pick a checkpoint strategy for a job and check it by
   simulation.

     dune exec examples/quickstart.exe

   The job: 4,096 processors, each with a 125-year MTBF, checkpoint
   and recovery cost 600 s, downtime 60 s, and 30 days of
   embarrassingly parallel work (per processor). *)

module Distribution = Ckpt_distributions.Distribution
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull
module Machine = Ckpt_platform.Machine
module Overhead = Ckpt_platform.Overhead
module Units = Ckpt_platform.Units
module Theory = Ckpt_core.Theory
module Job = Ckpt_policies.Job
module Scenario = Ckpt_simulator.Scenario
module Evaluation = Ckpt_simulator.Evaluation

let () =
  let processors = 4096 in
  let mtbf = Units.of_years 125. in
  let machine =
    Machine.create ~total_processors:processors ~downtime:60.
      ~overhead:(Overhead.constant 600.)
  in
  let work_time = Units.of_days 30. in

  (* 1. The closed-form optimum for Exponential failures (Theorem 1 /
     Proposition 5). *)
  let rate = 1. /. mtbf in
  let k_star =
    Theory.parallel_optimal_chunk_count ~rate ~processors ~parallel_work:work_time
      ~checkpoint:600.
  in
  let period = work_time /. float_of_int k_star in
  Printf.printf "Optimal (Exponential) strategy: %d chunks of %.0f s each\n" k_star period;
  let expected =
    Theory.parallel_expected_makespan_macro ~rate ~processors ~parallel_work:work_time
      ~checkpoint:600. ~recovery:600. ~downtime:60.
  in
  Printf.printf "Expected makespan: %.2f days (failure-free: %.2f days)\n\n"
    (Units.to_days expected)
    (Units.to_days work_time);

  (* 2. Check by simulation, under the more realistic Weibull failures
     (shape 0.7), against the classical heuristics and the paper's
     DPNextFailure. *)
  let dist = Weibull.of_mtbf ~mtbf ~shape:0.7 in
  let job = Job.create ~dist ~processors ~machine ~work_time in
  let scenario = Scenario.create job in
  let policies =
    [
      Ckpt_policies.Young.policy job;
      Ckpt_policies.Daly.high job;
      Ckpt_policies.Optexp.policy job;
      Ckpt_policies.Dp_policies.dp_next_failure job;
    ]
  in
  print_endline "Simulated degradation-from-best under Weibull(k=0.7) failures:";
  let table = Evaluation.degradation_table ~scenario ~policies ~replicates:10 in
  Format.printf "%a@." Evaluation.pp_table table;
  print_endline
    "DPNextFailure adapts its chunks to the processors' ages; the periodic\n\
     heuristics only know the MTBF — the gap grows with the platform size."
