(* Checkpointing an application whose footprint grows as it runs —
   the extension sketched in the paper's conclusion ("checkpoint and
   restart costs ... depend on the progress of the application").

     dune exec examples/growing_footprint.exe

   Think adaptive mesh refinement: the state to save starts small and
   triples by the end.  We compare three deployments under the true,
   progress-dependent cost:

     1. OptExp tuned to the average cost (constant-cost thinking);
     2. DPNextFailure with the average cost (age-adaptive only);
     3. DPNextFailure re-planned with the cost at its current progress
        (age- and cost-adaptive).                                      *)

module Weibull = Ckpt_distributions.Weibull
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

(* C(progress) = R(progress): 300 s at the start, 900 s at the end. *)
let profile ~progress =
  let c = 600. *. (0.5 +. progress) in
  (c, c)

let () =
  let processors = 1 lsl 13 in
  let dist = Weibull.of_mtbf ~mtbf:(P.Units.of_years 125.) ~shape:0.7 in
  let machine =
    P.Machine.create ~total_processors:processors ~downtime:60.
      ~overhead:(P.Overhead.constant 600.)
  in
  let job =
    Po.Job.create ~dist ~processors ~machine
      ~work_time:(P.Units.of_years 1000. /. float_of_int processors)
  in
  let scenario = S.Scenario.create job in
  let contenders =
    [
      ("OptExp, average C", Po.Optexp.policy job);
      ("DPNextFailure, average C", Po.Dp_policies.dp_next_failure job);
      ("DPNextFailure, profiled C", Po.Dp_policies.dp_next_failure ~cost_profile:profile job);
    ]
  in
  let replicates = 8 in
  Printf.printf "%d processors, Weibull k=0.7, C grows 300 s -> 900 s with progress\n\n"
    processors;
  Printf.printf "%-28s %16s\n" "policy" "avg makespan (d)";
  List.iter
    (fun (name, policy) ->
      let acc = ref 0. in
      for replicate = 0 to replicates - 1 do
        let traces = S.Scenario.traces scenario ~replicate in
        match
          S.Engine.run_with_cost_profile ~cost_profile:profile ~scenario ~traces ~policy
        with
        | S.Engine.Completed m -> acc := !acc +. m.S.Engine.makespan
        | S.Engine.Policy_failed _ -> ()
      done;
      Printf.printf "%-28s %16.3f\n%!" name (!acc /. float_of_int replicates /. P.Units.day))
    contenders;
  print_endline
    "\nThe profiled DP checkpoints often early, while a checkpoint costs\n\
     300 s, and stretches its chunks late, when each costs 900 s."
