(* Trading execution time for energy (the paper's Section 8 future-work
   direction, implemented as a library extension).

     dune exec examples/energy_budget.exe

   The checkpoint period moves energy between two sinks: short periods
   pay checkpoint I/O on every processor; long periods pay
   recomputation after failures.  This example sweeps the period on a
   2^14-processor Weibull platform and prints the Pareto view. *)

module Weibull = Ckpt_distributions.Weibull
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

let () =
  let preset = P.Presets.petascale () in
  let processors = 1 lsl 14 in
  let dist = Weibull.of_mtbf ~mtbf:preset.P.Presets.processor_mtbf ~shape:0.7 in
  let workload =
    P.Workload.create ~total_work:preset.P.Presets.total_work
      ~model:P.Workload.Embarrassingly_parallel
  in
  let job = Po.Job.of_workload ~dist ~processors ~machine:preset.P.Presets.machine ~workload in
  let scenario = S.Scenario.create job in
  let base = Po.Optexp.period job in
  let periods = List.init 7 (fun i -> base *. (2. ** float_of_int (i - 3))) in
  let power = S.Energy.default_power in
  Printf.printf "per-processor power: %.0f W compute / %.0f W I/O / %.0f W idle\n\n"
    power.S.Energy.compute power.S.Energy.io power.S.Energy.idle;
  Printf.printf "%14s %16s %14s\n" "period (s)" "makespan (days)" "energy (GJ)";
  let rows =
    S.Energy.makespan_energy_tradeoff ~scenario ~power ~periods ~replicates:6
  in
  List.iter
    (fun (period, makespan, energy) ->
      Printf.printf "%14.0f %16.3f %14.2f%s\n" period (makespan /. P.Units.day) (energy /. 1e9)
        (if period = base then "   <- OptExp" else ""))
    rows;
  let _, best_m, _ = List.fold_left (fun (bp, bm, be) (p, m, e) -> if m < bm then (p, m, e) else (bp, bm, be)) (0., infinity, 0.) rows in
  let _, _, best_e = List.fold_left (fun (bp, bm, be) (p, m, e) -> if e < be then (p, m, e) else (bp, bm, be)) (0., 0., infinity) rows in
  Printf.printf
    "\nFastest run: %.3f days; cheapest run: %.2f GJ — the knee of the curve\n\
     is where a site's energy price decides the period.\n"
    (best_m /. P.Units.day) (best_e /. 1e9)
