(* Driving the simulator with a production-style failure log
   (Section 6 of the paper).

     dune exec examples/trace_replay.exe [-- path/to/log]

   Without an argument, a synthetic LANL-cluster-19-style availability
   log is generated (and written next to the results so you can
   inspect the format).  The log's empirical distribution — the
   Section 4.3 ratio estimator — then drives a 4,096-processor
   simulation in which failures take down whole 4-processor nodes. *)

module F = Ckpt_failures
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

let () =
  let log =
    if Array.length Sys.argv > 1 then F.Failure_log.load Sys.argv.(1)
    else begin
      let params = F.Lanl_synth.cluster19_parameters in
      let log = F.Lanl_synth.generate params in
      let path = "lanl19_synthetic.log" in
      F.Failure_log.save log
        ~node_of_interval:(fun i -> i / params.F.Lanl_synth.intervals_per_node)
        path;
      Printf.printf "generated synthetic log -> %s\n" path;
      log
    end
  in
  Printf.printf "log: %d availability intervals over %d nodes, mean %.3e s\n"
    (F.Failure_log.count log) log.F.Failure_log.nodes (F.Failure_log.mean_interval log);

  let dist = F.Failure_log.to_distribution log in
  let processors = 4096 in
  let machine =
    P.Machine.create ~total_processors:processors ~downtime:60.
      ~overhead:(P.Overhead.constant 600.)
  in
  (* A day of work per processor; the platform MTBF under this log is
     minutes, so this is a hard instance. *)
  let job =
    Po.Job.with_group_size
      (Po.Job.create ~dist ~processors ~machine ~work_time:P.Units.day)
      F.Lanl_synth.node_group_size
  in
  Printf.printf "platform MTBF: %.0f s for C = R = 600 s — a hard instance\n\n"
    (Po.Job.platform_mtbf job);
  let scenario = S.Scenario.create job in
  let policies =
    [
      Po.Young.policy job;
      Po.Daly.low job;
      Po.Daly.high job;
      Po.Optexp.policy job;
      Po.Dp_policies.dp_next_failure job;
    ]
  in
  let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates:8 in
  Format.printf "%a@." S.Evaluation.pp_table table;
  print_endline
    "The periodic heuristics assume Exponential failures with the empirical\n\
     MTBF; DPNextFailure works from the empirical conditional survival\n\
     directly and adapts its chunk sizes after every failure."
