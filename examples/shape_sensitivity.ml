(* How sensitive is a checkpointing strategy to the failure model?

     dune exec examples/shape_sensitivity.exe

   Production studies fit Weibull shapes between 0.33 and 0.78; the
   MTBF-only heuristics behave as if k = 1.  This example fixes a
   2^13-processor platform and sweeps the shape, showing OptExp's
   degradation growing as the model departs from Exponential while
   DPNextFailure tracks the distribution (the paper's Figure 5 story,
   at example scale). *)

module Weibull = Ckpt_distributions.Weibull
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

let () =
  let preset = P.Presets.petascale () in
  let processors = 1 lsl 13 in
  let workload =
    P.Workload.create ~total_work:preset.P.Presets.total_work
      ~model:P.Workload.Embarrassingly_parallel
  in
  Printf.printf "%8s %12s %12s %12s %12s\n" "shape k" "Young" "OptExp" "DPNextFail" "LowerBound";
  List.iter
    (fun shape ->
      let dist = Weibull.of_mtbf ~mtbf:preset.P.Presets.processor_mtbf ~shape in
      let job =
        Po.Job.of_workload ~dist ~processors ~machine:preset.P.Presets.machine ~workload
      in
      let scenario = S.Scenario.create job in
      let policies =
        [ Po.Young.policy job; Po.Optexp.policy job; Po.Dp_policies.dp_next_failure job ]
      in
      let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates:6 in
      let d name =
        match
          List.find_opt (fun r -> r.S.Evaluation.policy_name = name) table.S.Evaluation.results
        with
        | Some r when r.S.Evaluation.successes > 0 ->
            Printf.sprintf "%12.4f" r.S.Evaluation.average_degradation
        | Some _ | None -> Printf.sprintf "%12s" "-"
      in
      Printf.printf "%8.2f %s %s %s %12.4f\n%!" shape (d "Young") (d "OptExp")
        (d "DPNextFailure")
        table.S.Evaluation.lower_bound.S.Evaluation.average_degradation)
    [ 0.3; 0.5; 0.7; 0.9; 1.0 ];
  print_endline
    "\nSmaller k = burstier failures = periodic MTBF-only checkpointing loses\n\
     more; the DP keeps adapting and stays near the (unattainable) bound."
