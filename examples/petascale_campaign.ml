(* Planning a Petascale campaign: how many processors should a job
   enroll on a failure-prone machine, and which checkpoint policy
   should drive it?

     dune exec examples/petascale_campaign.exe

   On a fault-free machine more processors always help; with failures
   the expected makespan can be minimized by enrolling fewer (the
   paper's Section 8 observation).  This example sweeps enrollments on
   a Jaguar-like machine for an Amdahl-law application under Weibull
   failures, then evaluates the policy roster at the chosen size. *)

module Weibull = Ckpt_distributions.Weibull
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

let () =
  let preset = P.Presets.petascale () in
  let dist = Weibull.of_mtbf ~mtbf:preset.P.Presets.processor_mtbf ~shape:0.7 in
  let workload =
    P.Workload.create ~total_work:preset.P.Presets.total_work ~model:(P.Workload.Amdahl 1e-6)
  in
  let replicates = 6 in

  print_endline "Enrollment sweep (DPNextFailure policy, Weibull k=0.7):";
  Printf.printf "%12s %16s %14s\n" "processors" "makespan (days)" "speedup";
  let candidates = [ 1 lsl 11; 1 lsl 13; 1 lsl 15; preset.P.Presets.machine.P.Machine.total_processors ] in
  let results =
    List.filter_map
      (fun processors ->
        let job =
          Po.Job.of_workload ~dist ~processors ~machine:preset.P.Presets.machine ~workload
        in
        let scenario = S.Scenario.create job in
        let policy = Po.Dp_policies.dp_next_failure job in
        S.Evaluation.average_makespan ~scenario ~policy ~replicates
        |> Option.map (fun m ->
               Printf.printf "%12d %16.2f %14.0f\n%!" processors (m /. P.Units.day)
                 (preset.P.Presets.total_work /. m);
               (processors, m)))
      candidates
  in
  let best_p, _ =
    List.fold_left (fun (bp, bm) (p, m) -> if m < bm then (p, m) else (bp, bm))
      (0, infinity) results
  in
  Printf.printf "\nBest enrollment among candidates: %d processors\n\n" best_p;

  let job = Po.Job.of_workload ~dist ~processors:best_p ~machine:preset.P.Presets.machine ~workload in
  let scenario = S.Scenario.create job in
  let policies =
    [
      Po.Young.policy job;
      Po.Daly.low job;
      Po.Daly.high job;
      Po.Optexp.policy job;
      Po.Bouguerra.policy job;
      Po.Liu.policy job;
      Po.Dp_policies.dp_next_failure job;
    ]
  in
  Printf.printf "Policy comparison at %d processors:\n" best_p;
  let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates in
  Format.printf "%a@." S.Evaluation.pp_table table
