(* Telemetry subsystem: metrics registry semantics, histogram merging,
   trace ring buffers, export formats and provenance sidecars. *)

module Metrics = Ckpt_telemetry.Metrics
module Tracer = Ckpt_telemetry.Tracer
module Trace_export = Ckpt_telemetry.Trace_export
module Provenance = Ckpt_telemetry.Provenance
module FR = Ckpt_telemetry.Flight_recorder
module Json = Ckpt_telemetry.Json
module Metrics_export = Ckpt_telemetry.Metrics_export
module Bench_compare = Ckpt_telemetry.Bench_compare

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

(* -- metrics registry ------------------------------------------------------- *)

let test_metrics_kinds () =
  with_metrics (fun () ->
      let c = Metrics.counter "test/kinds_counter" in
      Metrics.incr c;
      Metrics.add c 4;
      (match Metrics.find "test/kinds_counter" with
      | Some (Metrics.Counter 5) -> ()
      | v -> Alcotest.failf "counter: unexpected %a" (Fmt.option Metrics.pp_value) v);
      let g = Metrics.gauge "test/kinds_gauge" in
      Metrics.set g 2.5;
      Metrics.set g 7.25;
      (match Metrics.find "test/kinds_gauge" with
      | Some (Metrics.Gauge 7.25) -> ()
      | v -> Alcotest.failf "gauge: unexpected %a" (Fmt.option Metrics.pp_value) v);
      let t = Metrics.timer "test/kinds_timer" in
      Metrics.record t 0.5;
      Metrics.record t 1.5;
      (match Metrics.find "test/kinds_timer" with
      | Some (Metrics.Timer { seconds; calls }) ->
          close "timer seconds" 2.0 seconds;
          check Alcotest.int "timer calls" 2 calls
      | v -> Alcotest.failf "timer: unexpected %a" (Fmt.option Metrics.pp_value) v);
      let h = Metrics.histogram "test/kinds_hist" in
      Metrics.observe h 1.0;
      Metrics.observe h 4.0;
      match Metrics.find "test/kinds_hist" with
      | Some (Metrics.Histogram s) ->
          check Alcotest.int "hist count" 2 s.Metrics.count;
          close "hist sum" 5.0 s.Metrics.sum;
          close "hist min" 1.0 s.Metrics.min_v;
          close "hist max" 4.0 s.Metrics.max_v
      | v -> Alcotest.failf "histogram: unexpected %a" (Fmt.option Metrics.pp_value) v)

let test_metrics_kind_mismatch () =
  with_metrics (fun () ->
      ignore (Metrics.counter "test/mismatch");
      check Alcotest.bool "re-registering same kind is fine" true
        (ignore (Metrics.counter "test/mismatch");
         true);
      match Metrics.gauge "test/mismatch" with
      | _ -> Alcotest.fail "kind mismatch must raise"
      | exception Invalid_argument _ -> ())

let test_metrics_gating () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test/gated_counter" in
  let h = Metrics.histogram "test/gated_hist" in
  let t = Metrics.timer "test/gated_timer" in
  Metrics.reset ~prefix:"test/gated" ();
  Metrics.incr c;
  Metrics.observe h 3.0;
  (* [record] is deliberately unconditional: the caller already paid
     for the measurement. *)
  Metrics.record t 1.0;
  (match Metrics.find "test/gated_counter" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "disabled counter must not move");
  (match Metrics.find "test/gated_hist" with
  | Some (Metrics.Histogram s) -> check Alcotest.int "disabled hist empty" 0 s.Metrics.count
  | _ -> Alcotest.fail "histogram registered");
  match Metrics.find "test/gated_timer" with
  | Some (Metrics.Timer { calls = 1; _ }) -> ()
  | _ -> Alcotest.fail "record must accumulate even when disabled"

let test_metrics_reset_prefix () =
  with_metrics (fun () ->
      let a = Metrics.counter "resetme/a" in
      let b = Metrics.counter "keepme/b" in
      Metrics.incr a;
      Metrics.incr b;
      Metrics.reset ~prefix:"resetme/" ();
      (match Metrics.find "resetme/a" with
      | Some (Metrics.Counter 0) -> ()
      | _ -> Alcotest.fail "prefixed metric reset");
      match Metrics.find "keepme/b" with
      | Some (Metrics.Counter 1) -> ()
      | _ -> Alcotest.fail "other metric untouched")

let test_metrics_snapshot_sorted () =
  with_metrics (fun () ->
      Metrics.incr (Metrics.counter "zz/last");
      Metrics.incr (Metrics.counter "aa/first");
      let names = List.map fst (Metrics.snapshot ()) in
      check Alcotest.bool "snapshot sorted by name" true
        (List.sort compare names = names);
      check Alcotest.bool "snapshot non-empty" true (names <> []))

(* -- histogram algebra ------------------------------------------------------ *)

let snapshot_of values =
  with_metrics (fun () ->
      let h = Metrics.histogram "test/tmp_hist_build" in
      Metrics.reset ~prefix:"test/tmp_hist_build" ();
      List.iter (Metrics.observe h) values;
      match Metrics.find "test/tmp_hist_build" with
      | Some (Metrics.Histogram s) -> s
      | _ -> Alcotest.fail "histogram snapshot")

let test_histogram_merge () =
  let xs = [ 0.001; 0.01; 0.1; 1.0 ] and ys = [ 2.0; 4.0; 64.0 ] in
  let merged = Metrics.merge_histograms (snapshot_of xs) (snapshot_of ys) in
  let direct = snapshot_of (xs @ ys) in
  check Alcotest.int "merged count" direct.Metrics.count merged.Metrics.count;
  close "merged sum" direct.Metrics.sum merged.Metrics.sum;
  close "merged min" direct.Metrics.min_v merged.Metrics.min_v;
  close "merged max" direct.Metrics.max_v merged.Metrics.max_v;
  check Alcotest.bool "merged buckets" true (merged.Metrics.buckets = direct.Metrics.buckets);
  (* Commutativity and the identity element. *)
  let swapped = Metrics.merge_histograms (snapshot_of ys) (snapshot_of xs) in
  check Alcotest.bool "commutative" true (swapped = merged);
  let with_empty = Metrics.merge_histograms direct Metrics.empty_histogram in
  check Alcotest.bool "empty is identity" true (with_empty = direct)

let test_histogram_moments () =
  let s = snapshot_of [ 1.0; 2.0; 3.0; 10.0 ] in
  close "mean" 4.0 (Metrics.histogram_mean s);
  let q0 = Metrics.histogram_quantile s 0.0 and q1 = Metrics.histogram_quantile s 1.0 in
  check Alcotest.bool "quantiles bracket the data" true (q0 <= q1);
  check Alcotest.bool "median within range" true
    (let m = Metrics.histogram_quantile s 0.5 in
     m >= s.Metrics.min_v /. 2. && m <= s.Metrics.max_v *. 2.);
  check Alcotest.bool "bucket_lower monotone" true
    (Metrics.bucket_lower 10 < Metrics.bucket_lower 11)

(* -- trace ring buffers ----------------------------------------------------- *)

let span t0 t1 = Tracer.Chunk_commit { t0; t1; work = t1 -. t0 }

let test_buffer_wraparound () =
  let buf = Tracer.create_buffer ~capacity:4 ~name:"wrap" () in
  for i = 0 to 9 do
    Tracer.emit buf (span (float_of_int i) (float_of_int i +. 1.))
  done;
  check Alcotest.int "length capped" 4 (Tracer.length buf);
  check Alcotest.int "dropped counts overwrites" 6 (Tracer.dropped buf);
  let surviving = Tracer.to_list buf in
  check Alcotest.int "to_list length" 4 (List.length surviving);
  (* Oldest surviving first: events 6, 7, 8, 9. *)
  List.iteri
    (fun i ev ->
      match ev with
      | Tracer.Chunk_commit { t0; _ } -> close "chronological" (float_of_int (6 + i)) t0
      | _ -> Alcotest.fail "unexpected event")
    surviving;
  Tracer.clear buf;
  check Alcotest.int "clear empties" 0 (Tracer.length buf)

let test_buffer_totals () =
  let buf = Tracer.create_buffer ~capacity:64 ~name:"totals" () in
  Tracer.emit buf (Tracer.Decision { at = 0.; chunk = 10.; remaining = 30. });
  Tracer.emit buf (Tracer.Chunk_start { at = 0.; work = 10. });
  Tracer.emit buf (Tracer.Chunk_commit { t0 = 0.; t1 = 10.; work = 10. });
  Tracer.emit buf (Tracer.Checkpoint { t0 = 10.; t1 = 13.; cost = 3. });
  Tracer.emit buf (Tracer.Failure { at = 15.; proc = 0 });
  Tracer.emit buf (Tracer.Waste { t0 = 13.; t1 = 15. });
  Tracer.emit buf (Tracer.Downtime { t0 = 15.; t1 = 16. });
  Tracer.emit buf (Tracer.Recovery_start { at = 16. });
  Tracer.emit buf (Tracer.Recovery_abort { t0 = 16.; t1 = 17. });
  Tracer.emit buf (Tracer.Recovery_complete { t0 = 18.; t1 = 20.; cost = 2. });
  let t = Tracer.totals buf in
  close "work" 10. t.Tracer.work;
  close "checkpoint" 3. t.Tracer.checkpoint;
  close "waste" 2. t.Tracer.waste;
  close "recovery (abort + complete)" 3. t.Tracer.recovery;
  close "downtime" 1. t.Tracer.downtime;
  check Alcotest.int "failures" 1 t.Tracer.failures;
  check Alcotest.int "chunks" 1 t.Tracer.chunks;
  check Alcotest.int "decisions" 1 t.Tracer.decisions

let test_sink_register_drain () =
  (* Leave the sink as we found it. *)
  let stale, _ = Tracer.drain () in
  List.iter Tracer.register stale;
  let a = Tracer.create_buffer ~capacity:8 ~name:"sink-a" () in
  let b = Tracer.create_buffer ~capacity:8 ~name:"sink-b" () in
  Tracer.register a;
  Tracer.register b;
  let drained, rejected = Tracer.drain () in
  let names = List.map Tracer.name drained in
  check Alcotest.bool "registration order preserved" true
    (List.filter (fun n -> n = "sink-a" || n = "sink-b") names = [ "sink-a"; "sink-b" ]);
  check Alcotest.int "nothing rejected" 0 rejected;
  let after, _ = Tracer.drain () in
  check Alcotest.int "drain empties the sink" 0 (List.length after)

(* -- export formats --------------------------------------------------------- *)

let test_jsonl_line () =
  let line =
    Trace_export.jsonl_line ~buffer_name:"rep0/Daly"
      (Tracer.Chunk_commit { t0 = 1.5; t1 = 2.5; work = 1.0 })
  in
  check Alcotest.bool "names the buffer" true (contains ~needle:"rep0/Daly" line);
  check Alcotest.bool "names the event" true (contains ~needle:"chunk-commit" line);
  check Alcotest.bool "single line" true (not (String.contains line '\n'))

let test_chrome_export () =
  let buf = Tracer.create_buffer ~capacity:16 ~name:"rep0/export-test" () in
  Tracer.emit buf (Tracer.Chunk_commit { t0 = 0.; t1 = 5.; work = 5. });
  Tracer.emit buf (Tracer.Failure { at = 5.; proc = 3 });
  let path = Filename.temp_file "ckpt_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_export.write ~path [ buf ];
      let body = read_file path in
      check Alcotest.bool "trace_event envelope" true (contains ~needle:"\"traceEvents\"" body);
      check Alcotest.bool "thread named after buffer" true
        (contains ~needle:"rep0/export-test" body);
      check Alcotest.bool "complete event" true (contains ~needle:"\"ph\":\"X\"" body);
      check Alcotest.bool "instant event for the failure" true
        (contains ~needle:"\"ph\":\"i\"" body))

let test_jsonl_export () =
  let buf = Tracer.create_buffer ~capacity:16 ~name:"rep1/lines" () in
  Tracer.emit buf (Tracer.Checkpoint { t0 = 0.; t1 = 1.; cost = 1. });
  Tracer.emit buf (Tracer.Downtime { t0 = 1.; t1 = 2. });
  let path = Filename.temp_file "ckpt_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_export.write ~path [ buf ];
      let body = read_file path in
      let lines = String.split_on_char '\n' (String.trim body) in
      check Alcotest.int "one line per event" 2 (List.length lines);
      List.iter
        (fun l ->
          check Alcotest.bool "line is an object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

let test_json_escape () =
  check Alcotest.string "quotes and backslashes" "a\\\"b\\\\c"
    (Trace_export.json_escape "a\"b\\c");
  check Alcotest.string "control characters" "tab\\there" (Trace_export.json_escape "tab\there")

(* -- histogram algebra: properties ------------------------------------------ *)

let samples_gen = QCheck2.Gen.(list_size (int_range 1 40) (float_range 1e-6 1e6))

(* Exact equality on the discrete components (buckets, count, min,
   max); the float sum is only associative/commutative up to rounding. *)
let same_hist a b =
  a.Metrics.buckets = b.Metrics.buckets
  && a.Metrics.count = b.Metrics.count
  && a.Metrics.min_v = b.Metrics.min_v
  && a.Metrics.max_v = b.Metrics.max_v
  && Float.abs (a.Metrics.sum -. b.Metrics.sum) <= 1e-9 *. Float.max 1. (Float.abs a.Metrics.sum)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge_histograms is commutative" ~count:100
    QCheck2.Gen.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = snapshot_of xs and b = snapshot_of ys in
      same_hist (Metrics.merge_histograms a b) (Metrics.merge_histograms b a))

let prop_merge_associative =
  QCheck2.Test.make ~name:"merge_histograms is associative" ~count:100
    QCheck2.Gen.(triple samples_gen samples_gen samples_gen)
    (fun (xs, ys, zs) ->
      let a = snapshot_of xs and b = snapshot_of ys and c = snapshot_of zs in
      same_hist
        (Metrics.merge_histograms (Metrics.merge_histograms a b) c)
        (Metrics.merge_histograms a (Metrics.merge_histograms b c)))

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"histogram_quantile monotone in q" ~count:100
    QCheck2.Gen.(triple samples_gen (float_range 0. 1.) (float_range 0. 1.))
    (fun (xs, qa, qb) ->
      let s = snapshot_of xs in
      let qlo = Float.min qa qb and qhi = Float.max qa qb in
      Metrics.histogram_quantile s qlo <= Metrics.histogram_quantile s qhi)

(* -- domain safety ----------------------------------------------------------- *)

let test_metrics_concurrent_increments () =
  with_metrics (fun () ->
      let c = Metrics.counter "stress/hits" in
      let t = Metrics.timer "stress/t" in
      let h = Metrics.histogram "stress/h" in
      Metrics.reset ~prefix:"stress/" ();
      let domains = 4 and per = 10_000 in
      let worker () =
        for i = 1 to per do
          Metrics.incr c;
          Metrics.record t 1e-3;
          Metrics.observe h (float_of_int (1 + (i mod 7)))
        done
      in
      let ds = List.init domains (fun _ -> Domain.spawn worker) in
      List.iter Domain.join ds;
      (match Metrics.find "stress/hits" with
      | Some (Metrics.Counter n) -> check Alcotest.int "no lost counter increments" (domains * per) n
      | _ -> Alcotest.fail "counter registered");
      (match Metrics.find "stress/t" with
      | Some (Metrics.Timer { calls; seconds }) ->
          check Alcotest.int "no lost timer calls" (domains * per) calls;
          close ~tol:1e-6 "timer sum exact" (float_of_int (domains * per) *. 1e-3) seconds
      | _ -> Alcotest.fail "timer registered");
      match Metrics.find "stress/h" with
      | Some (Metrics.Histogram s) ->
          check Alcotest.int "no lost observations" (domains * per) s.Metrics.count;
          close "stress hist min" 1. s.Metrics.min_v;
          close "stress hist max" 7. s.Metrics.max_v
      | _ -> Alcotest.fail "histogram registered")

(* -- json -------------------------------------------------------------------- *)

let test_json_parse_roundtrip () =
  let src = {|{"a": 1.5, "b": [true, false, null, "x\ny"], "nested": {"k": -2e3}}|} in
  match Json.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
      close "float member" 1.5 (Option.get (Option.bind (Json.member j "a") Json.to_float));
      close "nested path" (-2000.)
        (Option.get (Option.bind (Json.path j [ "nested"; "k" ]) Json.to_float));
      (match Option.bind (Json.member j "b") Json.to_list with
      | Some [ b1; b2; n; s ] ->
          check Alcotest.(option bool) "true literal" (Some true) (Json.to_bool b1);
          check Alcotest.(option bool) "false literal" (Some false) (Json.to_bool b2);
          check Alcotest.bool "null literal" true (n = Json.Null);
          check Alcotest.(option string) "escaped string" (Some "x\ny") (Json.to_string_opt s)
      | _ -> Alcotest.fail "array shape");
      check Alcotest.(list string) "keys in document order" [ "a"; "b"; "nested" ] (Json.keys j);
      check Alcotest.bool "serializer round-trips" true (Json.parse (Json.to_string j) = Ok j);
      check Alcotest.bool "pretty serializer round-trips" true
        (Json.parse (Json.to_string ~pretty:true j) = Ok j)

let test_json_unicode_escapes () =
  (* é is two UTF-8 bytes; the surrogate pair decodes to U+1F600
     (four bytes). *)
  match Json.parse {|"Aé😀"|} with
  | Ok (Json.Str s) -> check Alcotest.string "utf-8 decoding" "A\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun src ->
      match Json.parse src with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "\"unterminated"; "{\"a\":1} trailing"; "nul"; "1.2.3"; "" ]

(* -- metrics exposition ------------------------------------------------------ *)

let test_openmetrics_render () =
  with_metrics (fun () ->
      Metrics.add (Metrics.counter "exp/events") 3;
      Metrics.record (Metrics.timer "exp/phase_seconds") 0.25;
      let h = Metrics.histogram "exp/latency" in
      List.iter (Metrics.observe h) [ 0.001; 0.01; 0.1; 1.0; 10.0 ];
      let body = Metrics_export.openmetrics (Metrics.snapshot ()) in
      check Alcotest.bool "counter type line" true
        (contains ~needle:"# TYPE ckpt_exp_events counter" body);
      check Alcotest.bool "counter total" true (contains ~needle:"ckpt_exp_events_total 3" body);
      check Alcotest.bool "timer keeps existing unit suffix" true
        (contains ~needle:"ckpt_exp_phase_seconds_sum" body);
      check Alcotest.bool "no doubled unit suffix" false (contains ~needle:"_seconds_seconds" body);
      check Alcotest.bool "histogram gains unit suffix" true
        (contains ~needle:"ckpt_exp_latency_seconds_count 5" body);
      check Alcotest.bool "median quantile line" true
        (contains ~needle:"ckpt_exp_latency_seconds{quantile=\"0.5\"}" body);
      check Alcotest.bool "p99 quantile line" true (contains ~needle:"{quantile=\"0.99\"}" body);
      let terminator = "# EOF\n" in
      check Alcotest.bool "openmetrics terminator" true
        (String.length body >= String.length terminator
        && String.sub body
             (String.length body - String.length terminator)
             (String.length terminator)
           = terminator))

let test_jsonl_sample_parses () =
  with_metrics (fun () ->
      Metrics.incr (Metrics.counter "exp/ticks");
      let h = Metrics.histogram "exp/obs" in
      List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
      let line = Metrics_export.jsonl_sample ~ts:123.5 (Metrics.snapshot ()) in
      check Alcotest.bool "single line" true (not (String.contains line '\n'));
      match Json.parse line with
      | Error e -> Alcotest.failf "sample is not valid JSON: %s" e
      | Ok j ->
          close "timestamp" 123.5 (Option.get (Option.bind (Json.member j "ts") Json.to_float));
          let m = Option.get (Json.member j "metrics") in
          close "counter value" 1.
            (Option.get (Option.bind (Json.path m [ "exp/ticks"; "value" ]) Json.to_float));
          let q p = Option.get (Option.bind (Json.path m [ "exp/obs"; p ]) Json.to_float) in
          check Alcotest.bool "histogram quantiles ordered" true
            (q "p50" <= q "p90" && q "p90" <= q "p99"))

(* -- flight recorder --------------------------------------------------------- *)

let with_flight f =
  FR.reset ();
  Fun.protect f ~finally:FR.reset

let test_flight_monotone_clamp () =
  with_flight (fun () ->
      let t = FR.track ~capacity:16 "fr/clamp" in
      FR.record t FR.Run_task ~t0:10. ~t1:12.;
      (* A backwards-stepping wall clock must not yield negative or
         reverse-overlapping spans. *)
      FR.record t FR.Steal_attempt ~t0:11. ~t1:11.5;
      FR.record t FR.Park ~t0:13. ~t1:12.5;
      match FR.spans t with
      | [ a; b; c ] ->
          close "first span kept" 10. a.FR.sp_t0;
          close "clamped start" 12. b.FR.sp_t0;
          close "clamped end" 12. b.FR.sp_t1;
          close "later start kept" 13. c.FR.sp_t0;
          close "end clamped to start" 13. c.FR.sp_t1;
          check Alcotest.bool "spans monotone" true
            (a.FR.sp_t1 <= b.FR.sp_t0 && b.FR.sp_t1 <= c.FR.sp_t0)
      | sps -> Alcotest.failf "expected 3 spans, got %d" (List.length sps))

let test_flight_wraparound () =
  with_flight (fun () ->
      let t = FR.track ~capacity:4 "fr/wrap" in
      for i = 0 to 9 do
        let x = float_of_int i in
        FR.record t FR.Run_task ~t0:x ~t1:(x +. 0.5)
      done;
      check Alcotest.int "dropped counts overwrites" 6 (FR.dropped t);
      match FR.spans t with
      | [ a; _; _; d ] ->
          close "oldest surviving span" 6. a.FR.sp_t0;
          close "newest span" 9. d.FR.sp_t0
      | sps -> Alcotest.failf "expected 4 spans, got %d" (List.length sps))

let test_flight_report () =
  with_flight (fun () ->
      let w = FR.track "worker0" in
      FR.record w FR.Run_task ~t0:0. ~t1:6.;
      FR.record w FR.Steal_attempt ~t0:6. ~t1:9.;
      FR.record w FR.Park ~t0:9. ~t1:10.;
      FR.instant w FR.Unpark ~at:10.;
      let ext = FR.track "external0" in
      FR.record ext FR.Inject ~t0:0. ~t1:0.5;
      FR.record ext FR.Run_task ~t0:0.5 ~t1:10.;
      let reports = FR.report () in
      check Alcotest.int "one report per track" 2 (List.length reports);
      let wr = List.find (fun r -> r.FR.wr_name = "worker0") reports in
      close "wall = last end - first start" 10. wr.FR.wr_wall;
      close "attribution covers the wall" 10. wr.FR.wr_attributed;
      close "run-task seconds" 6. (FR.state_seconds wr FR.Run_task);
      check Alcotest.int "unpark counted as an event" 1 (FR.state_count wr FR.Unpark);
      close "unpark has no duration" 0. (FR.state_seconds wr FR.Unpark);
      (* Failed steals (3 s) beat parking churn (1 s) and injection (0.5 s). *)
      match FR.dominant_overhead reports with
      | Some o ->
          check Alcotest.string "dominant overhead" "failed steals" o.FR.ov_label;
          close "dominant seconds" 3. o.FR.ov_seconds
      | None -> Alcotest.fail "expected a dominant overhead")

let test_flight_chrome_golden () =
  with_flight (fun () ->
      let w = FR.track "worker0" in
      FR.record w FR.Run_task ~t0:100.0 ~t1:100.5;
      FR.record w FR.Steal_attempt ~t0:100.5 ~t1:100.6;
      FR.instant w FR.Unpark ~at:100.6;
      let ext = FR.track "external0" in
      FR.record ext FR.Inject ~t0:100.0 ~t1:100.1;
      let path = Filename.temp_file "ckpt_flight" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace_export.write_flight ~path (FR.tracks ());
          let body = read_file path in
          match Json.parse body with
          | Error e -> Alcotest.failf "flight trace is not valid JSON: %s" e
          | Ok j ->
              let events = Option.get (Option.bind (Json.member j "traceEvents") Json.to_list) in
              check Alcotest.bool "has events" true (events <> []);
              let ph ev = Option.bind (Json.member ev "ph") Json.to_string_opt in
              let names =
                List.filter_map
                  (fun ev ->
                    if ph ev = Some "M" then
                      Option.bind (Json.path ev [ "args"; "name" ]) Json.to_string_opt
                    else None)
                  events
              in
              check Alcotest.bool "both tracks carry thread_name metadata" true
                (List.mem "worker0" names && List.mem "external0" names);
              List.iter
                (fun ev ->
                  let has k = Json.member ev k <> None in
                  check Alcotest.bool "ph present" true (has "ph");
                  check Alcotest.bool "pid present" true (has "pid");
                  check Alcotest.bool "tid present" true (has "tid");
                  if ph ev <> Some "M" then begin
                    check Alcotest.bool "ts present" true (has "ts");
                    check Alcotest.bool "ts rebased to trace start" true
                      (Option.get (Option.bind (Json.member ev "ts") Json.to_float) >= 0.)
                  end)
                events;
              let phs = List.filter_map ph events in
              check Alcotest.bool "complete spans present" true (List.mem "X" phs);
              check Alcotest.bool "instant events present" true (List.mem "i" phs)))

(* -- bench trajectory -------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "ckpt_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let bench_artifact ~rate ~elapsed =
  Printf.sprintf
    {|{"bench": "unit", "replicates": 8, "rate_per_sec": %g, "elapsed_seconds": %g, "deterministic": true}|}
    rate elapsed

let bench_sidecar ~domains =
  Printf.sprintf
    {|{"schema": "ckpt-bench-meta/1", "domains": %d, "env": {"CKPT_SCHED": "steal"}, "parameters": {"physical_cores": "4"}}|}
    domains

let test_bench_diff_self () =
  with_temp_dir (fun dir ->
      let p = Filename.concat dir "BENCH_unit.json" in
      write_file p (bench_artifact ~rate:100. ~elapsed:2.);
      write_file (p ^ ".meta.json") (bench_sidecar ~domains:4);
      match Bench_compare.diff ~old_path:p ~new_path:p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "self-diff exits 0" Bench_compare.exit_ok (Bench_compare.exit_code v);
          check Alcotest.bool "no mismatches" true (v.Bench_compare.v_config_mismatches = []);
          check Alcotest.bool "compared something" true (v.Bench_compare.v_comparisons <> []))

let test_bench_diff_regression () =
  with_temp_dir (fun dir ->
      let old_p = Filename.concat dir "BENCH_old.json" in
      let new_p = Filename.concat dir "BENCH_new.json" in
      write_file old_p (bench_artifact ~rate:100. ~elapsed:2.);
      write_file (old_p ^ ".meta.json") (bench_sidecar ~domains:4);
      (* A 20% throughput drop is well past the 5% higher-better
         threshold; the matching elapsed keeps the rest clean. *)
      write_file new_p (bench_artifact ~rate:80. ~elapsed:2.);
      write_file (new_p ^ ".meta.json") (bench_sidecar ~domains:4);
      match Bench_compare.diff ~old_path:old_p ~new_path:new_p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "regression exit code" Bench_compare.exit_regression
            (Bench_compare.exit_code v);
          let c =
            List.find
              (fun c -> c.Bench_compare.c_metric = "rate_per_sec")
              v.Bench_compare.v_comparisons
          in
          check Alcotest.bool "rate flagged" true c.Bench_compare.c_regressed;
          close ~tol:1e-6 "delta percent" (-20.) c.Bench_compare.c_delta)

let test_bench_diff_improvement () =
  with_temp_dir (fun dir ->
      let old_p = Filename.concat dir "BENCH_old.json" in
      let new_p = Filename.concat dir "BENCH_new.json" in
      write_file old_p (bench_artifact ~rate:100. ~elapsed:2.);
      write_file (old_p ^ ".meta.json") (bench_sidecar ~domains:4);
      write_file new_p (bench_artifact ~rate:150. ~elapsed:1.);
      write_file (new_p ^ ".meta.json") (bench_sidecar ~domains:4);
      match Bench_compare.diff ~old_path:old_p ~new_path:new_p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "improvements exit 0" Bench_compare.exit_ok
            (Bench_compare.exit_code v);
          check Alcotest.bool "improvement flagged" true
            (List.exists (fun c -> c.Bench_compare.c_improved) v.Bench_compare.v_comparisons))

(* The engine bench's throughput leaves follow the [*_per_sec]
   higher-better convention, nested inside a curve; its workload-shape
   key [stripe] must gate comparability like replicates/processors
   do. *)
let engine_bench_artifact ~batch_rps ~stripe =
  Printf.sprintf
    {|{"bench": "engine-throughput", "replicates": 32, "stripe": %d, "engine": "scalar-vs-batch", "curve": [ { "processors": 16384, "scalar_replicates_per_sec": 120.0, "batch_replicates_per_sec": %g, "speedup": 2.5 } ], "deterministic": true}|}
    stripe batch_rps

let test_bench_diff_replicates_per_sec_higher_better () =
  with_temp_dir (fun dir ->
      let old_p = Filename.concat dir "BENCH_engine_old.json" in
      let new_p = Filename.concat dir "BENCH_engine_new.json" in
      write_file old_p (engine_bench_artifact ~batch_rps:800. ~stripe:16);
      write_file (old_p ^ ".meta.json") (bench_sidecar ~domains:4);
      (* A 12.5% throughput drop: a lower-better misclassification
         would read it as an improvement and exit 0. *)
      write_file new_p (engine_bench_artifact ~batch_rps:700. ~stripe:16);
      write_file (new_p ^ ".meta.json") (bench_sidecar ~domains:4);
      match Bench_compare.diff ~old_path:old_p ~new_path:new_p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "regression exit code" Bench_compare.exit_regression
            (Bench_compare.exit_code v);
          let c =
            List.find
              (fun c -> contains ~needle:"batch_replicates_per_sec" c.Bench_compare.c_metric)
              v.Bench_compare.v_comparisons
          in
          check Alcotest.bool "classified higher-better" true
            (c.Bench_compare.c_direction = Bench_compare.Higher_better);
          check Alcotest.bool "drop flagged as regression" true c.Bench_compare.c_regressed;
          close ~tol:1e-6 "delta percent" (-12.5) c.Bench_compare.c_delta)

let test_bench_diff_stripe_is_config () =
  with_temp_dir (fun dir ->
      let old_p = Filename.concat dir "BENCH_engine_old.json" in
      let new_p = Filename.concat dir "BENCH_engine_new.json" in
      write_file old_p (engine_bench_artifact ~batch_rps:800. ~stripe:16);
      write_file (old_p ^ ".meta.json") (bench_sidecar ~domains:4);
      (* Same speeds measured at a different stripe width: a different
         experiment, not a regression. *)
      write_file new_p (engine_bench_artifact ~batch_rps:800. ~stripe:8);
      write_file (new_p ^ ".meta.json") (bench_sidecar ~domains:4);
      match Bench_compare.diff ~old_path:old_p ~new_path:new_p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "incomparable exit code" Bench_compare.exit_incomparable
            (Bench_compare.exit_code v);
          check Alcotest.bool "mismatch names stripe" true
            (List.exists (contains ~needle:"stripe") v.Bench_compare.v_config_mismatches))

(* Stage 8 (multi-process sweeps): units/sec at different worker counts
   are different experiments, not a speed delta. *)
let sweep_bench_artifact ~workers ~ups =
  Printf.sprintf
    {|{"bench": "sweep-workers", "replicates": 16, "stripe": 4, "units": 12, "physical_cores": 4, "curve": [ { "workers": %d, "seconds": 2.0, "units_per_sec": %g, "speedup": 1.0, "oversubscribed": false } ], "byte_identical": true}|}
    workers ups

let test_bench_diff_workers_is_config () =
  with_temp_dir (fun dir ->
      let old_p = Filename.concat dir "BENCH_sweep_old.json" in
      let new_p = Filename.concat dir "BENCH_sweep_new.json" in
      write_file old_p (sweep_bench_artifact ~workers:2 ~ups:6.);
      write_file (old_p ^ ".meta.json") (bench_sidecar ~domains:4);
      (* Twice the throughput at twice the workers: a different
         experiment, not an improvement. *)
      write_file new_p (sweep_bench_artifact ~workers:4 ~ups:12.);
      write_file (new_p ^ ".meta.json") (bench_sidecar ~domains:4);
      match Bench_compare.diff ~old_path:old_p ~new_path:new_p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "incomparable exit code" Bench_compare.exit_incomparable
            (Bench_compare.exit_code v);
          check Alcotest.bool "mismatch names workers" true
            (List.exists (contains ~needle:"workers") v.Bench_compare.v_config_mismatches))

let test_bench_diff_incomparable () =
  with_temp_dir (fun dir ->
      let old_p = Filename.concat dir "BENCH_old.json" in
      let new_p = Filename.concat dir "BENCH_new.json" in
      write_file old_p (bench_artifact ~rate:100. ~elapsed:2.);
      write_file (old_p ^ ".meta.json") (bench_sidecar ~domains:4);
      write_file new_p (bench_artifact ~rate:100. ~elapsed:2.);
      (* Same numbers, different machine shape: refuse the comparison. *)
      write_file (new_p ^ ".meta.json") (bench_sidecar ~domains:8);
      match Bench_compare.diff ~old_path:old_p ~new_path:new_p () with
      | Error e -> Alcotest.failf "diff failed: %s" e
      | Ok v ->
          check Alcotest.int "incomparable exit code" Bench_compare.exit_incomparable
            (Bench_compare.exit_code v);
          check Alcotest.bool "mismatch names domains" true
            (List.exists (contains ~needle:"domains") v.Bench_compare.v_config_mismatches))

let test_bench_diff_unreadable () =
  match Bench_compare.diff ~old_path:"/nonexistent-ckpt/BENCH_x.json"
          ~new_path:"/nonexistent-ckpt/BENCH_y.json" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable input must be an error"

let test_bench_check () =
  with_temp_dir (fun dir ->
      let good = Filename.concat dir "BENCH_good.json" in
      write_file good (bench_artifact ~rate:100. ~elapsed:2.);
      write_file (good ^ ".meta.json") (bench_sidecar ~domains:4);
      (* Missing sidecar and unparseable body are both problems. *)
      write_file (Filename.concat dir "BENCH_bad.json") "{not json";
      let results = Bench_compare.check ~dir in
      check Alcotest.int "two artifacts found" 2 (List.length results);
      let problems name = List.assoc (Filename.concat dir name) results in
      check Alcotest.bool "clean artifact has no problems" true (problems "BENCH_good.json" = []);
      check Alcotest.bool "broken artifact flagged" true (problems "BENCH_bad.json" <> []))

(* -- provenance ------------------------------------------------------------- *)

let test_provenance_manifest () =
  let m = Provenance.manifest ~extra:[ ("seed", "42"); ("policy", "DPNextFailure") ] () in
  check Alcotest.bool "has parameters" true (contains ~needle:"\"parameters\"" m);
  check Alcotest.bool "carries the seed" true (contains ~needle:"\"seed\": \"42\"" m);
  check Alcotest.bool "records domains" true (contains ~needle:"\"domains\"" m);
  check Alcotest.bool "records ocaml version" true (contains ~needle:Sys.ocaml_version m)

let test_provenance_sidecar () =
  let artifact = Filename.temp_file "ckpt_artifact" ".csv" in
  let sidecar = Provenance.sidecar_path artifact in
  check Alcotest.string "sidecar naming" (artifact ^ ".meta.json") sidecar;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove artifact;
      if Sys.file_exists sidecar then Sys.remove sidecar)
    (fun () ->
      Provenance.write_sidecar ~extra:[ ("experiment", "unit-test") ] ~path:artifact ();
      check Alcotest.bool "sidecar written" true (Sys.file_exists sidecar);
      let body = read_file sidecar in
      check Alcotest.bool "sidecar carries parameters" true
        (contains ~needle:"unit-test" body))

let test_provenance_sidecar_never_raises () =
  (* The artifact's directory does not exist: the sidecar silently
     fails rather than breaking the caller. *)
  Provenance.write_sidecar ~path:"/nonexistent-dir-ckpt/out.csv" ();
  check Alcotest.bool "survived" true true

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics registry",
        [
          Alcotest.test_case "counter/gauge/timer/histogram" `Quick test_metrics_kinds;
          Alcotest.test_case "kind mismatch raises" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "disabled gating" `Quick test_metrics_gating;
          Alcotest.test_case "reset by prefix" `Quick test_metrics_reset_prefix;
          Alcotest.test_case "snapshot sorted" `Quick test_metrics_snapshot_sorted;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "merge = concatenated stream" `Quick test_histogram_merge;
          Alcotest.test_case "moments and quantiles" `Quick test_histogram_moments;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_merge_commutative; prop_merge_associative; prop_quantile_monotone ] );
      ( "domain safety",
        [ Alcotest.test_case "concurrent increments are exact" `Quick test_metrics_concurrent_increments ] );
      ( "json",
        [
          Alcotest.test_case "parse + round-trip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects_garbage;
        ] );
      ( "metrics export",
        [
          Alcotest.test_case "openmetrics textfile" `Quick test_openmetrics_render;
          Alcotest.test_case "jsonl sample parses" `Quick test_jsonl_sample_parses;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "monotone clamp" `Quick test_flight_monotone_clamp;
          Alcotest.test_case "ring wraparound" `Quick test_flight_wraparound;
          Alcotest.test_case "utilization report" `Quick test_flight_report;
          Alcotest.test_case "chrome trace golden" `Quick test_flight_chrome_golden;
        ] );
      ( "bench compare",
        [
          Alcotest.test_case "self-diff is clean" `Quick test_bench_diff_self;
          Alcotest.test_case "detects regression" `Quick test_bench_diff_regression;
          Alcotest.test_case "improvement passes" `Quick test_bench_diff_improvement;
          Alcotest.test_case "replicates_per_sec is higher-better" `Quick
            test_bench_diff_replicates_per_sec_higher_better;
          Alcotest.test_case "stripe is configuration" `Quick test_bench_diff_stripe_is_config;
          Alcotest.test_case "workers is configuration" `Quick
            test_bench_diff_workers_is_config;
          Alcotest.test_case "sidecar disagreement" `Quick test_bench_diff_incomparable;
          Alcotest.test_case "unreadable input errors" `Quick test_bench_diff_unreadable;
          Alcotest.test_case "check validates artifacts" `Quick test_bench_check;
        ] );
      ( "ring buffers",
        [
          Alcotest.test_case "wraparound + dropped" `Quick test_buffer_wraparound;
          Alcotest.test_case "totals arithmetic" `Quick test_buffer_totals;
          Alcotest.test_case "sink register/drain" `Quick test_sink_register_drain;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl line shape" `Quick test_jsonl_line;
          Alcotest.test_case "chrome trace_event" `Quick test_chrome_export;
          Alcotest.test_case "jsonl file" `Quick test_jsonl_export;
          Alcotest.test_case "json escaping" `Quick test_json_escape;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "manifest contents" `Quick test_provenance_manifest;
          Alcotest.test_case "sidecar round-trip" `Quick test_provenance_sidecar;
          Alcotest.test_case "sidecar never raises" `Quick test_provenance_sidecar_never_raises;
        ] );
    ]
