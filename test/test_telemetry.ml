(* Telemetry subsystem: metrics registry semantics, histogram merging,
   trace ring buffers, export formats and provenance sidecars. *)

module Metrics = Ckpt_telemetry.Metrics
module Tracer = Ckpt_telemetry.Tracer
module Trace_export = Ckpt_telemetry.Trace_export
module Provenance = Ckpt_telemetry.Provenance

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

(* -- metrics registry ------------------------------------------------------- *)

let test_metrics_kinds () =
  with_metrics (fun () ->
      let c = Metrics.counter "test/kinds_counter" in
      Metrics.incr c;
      Metrics.add c 4;
      (match Metrics.find "test/kinds_counter" with
      | Some (Metrics.Counter 5) -> ()
      | v -> Alcotest.failf "counter: unexpected %a" (Fmt.option Metrics.pp_value) v);
      let g = Metrics.gauge "test/kinds_gauge" in
      Metrics.set g 2.5;
      Metrics.set g 7.25;
      (match Metrics.find "test/kinds_gauge" with
      | Some (Metrics.Gauge 7.25) -> ()
      | v -> Alcotest.failf "gauge: unexpected %a" (Fmt.option Metrics.pp_value) v);
      let t = Metrics.timer "test/kinds_timer" in
      Metrics.record t 0.5;
      Metrics.record t 1.5;
      (match Metrics.find "test/kinds_timer" with
      | Some (Metrics.Timer { seconds; calls }) ->
          close "timer seconds" 2.0 seconds;
          check Alcotest.int "timer calls" 2 calls
      | v -> Alcotest.failf "timer: unexpected %a" (Fmt.option Metrics.pp_value) v);
      let h = Metrics.histogram "test/kinds_hist" in
      Metrics.observe h 1.0;
      Metrics.observe h 4.0;
      match Metrics.find "test/kinds_hist" with
      | Some (Metrics.Histogram s) ->
          check Alcotest.int "hist count" 2 s.Metrics.count;
          close "hist sum" 5.0 s.Metrics.sum;
          close "hist min" 1.0 s.Metrics.min_v;
          close "hist max" 4.0 s.Metrics.max_v
      | v -> Alcotest.failf "histogram: unexpected %a" (Fmt.option Metrics.pp_value) v)

let test_metrics_kind_mismatch () =
  with_metrics (fun () ->
      ignore (Metrics.counter "test/mismatch");
      check Alcotest.bool "re-registering same kind is fine" true
        (ignore (Metrics.counter "test/mismatch");
         true);
      match Metrics.gauge "test/mismatch" with
      | _ -> Alcotest.fail "kind mismatch must raise"
      | exception Invalid_argument _ -> ())

let test_metrics_gating () =
  Metrics.set_enabled false;
  let c = Metrics.counter "test/gated_counter" in
  let h = Metrics.histogram "test/gated_hist" in
  let t = Metrics.timer "test/gated_timer" in
  Metrics.reset ~prefix:"test/gated" ();
  Metrics.incr c;
  Metrics.observe h 3.0;
  (* [record] is deliberately unconditional: the caller already paid
     for the measurement. *)
  Metrics.record t 1.0;
  (match Metrics.find "test/gated_counter" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "disabled counter must not move");
  (match Metrics.find "test/gated_hist" with
  | Some (Metrics.Histogram s) -> check Alcotest.int "disabled hist empty" 0 s.Metrics.count
  | _ -> Alcotest.fail "histogram registered");
  match Metrics.find "test/gated_timer" with
  | Some (Metrics.Timer { calls = 1; _ }) -> ()
  | _ -> Alcotest.fail "record must accumulate even when disabled"

let test_metrics_reset_prefix () =
  with_metrics (fun () ->
      let a = Metrics.counter "resetme/a" in
      let b = Metrics.counter "keepme/b" in
      Metrics.incr a;
      Metrics.incr b;
      Metrics.reset ~prefix:"resetme/" ();
      (match Metrics.find "resetme/a" with
      | Some (Metrics.Counter 0) -> ()
      | _ -> Alcotest.fail "prefixed metric reset");
      match Metrics.find "keepme/b" with
      | Some (Metrics.Counter 1) -> ()
      | _ -> Alcotest.fail "other metric untouched")

let test_metrics_snapshot_sorted () =
  with_metrics (fun () ->
      Metrics.incr (Metrics.counter "zz/last");
      Metrics.incr (Metrics.counter "aa/first");
      let names = List.map fst (Metrics.snapshot ()) in
      check Alcotest.bool "snapshot sorted by name" true
        (List.sort compare names = names);
      check Alcotest.bool "snapshot non-empty" true (names <> []))

(* -- histogram algebra ------------------------------------------------------ *)

let snapshot_of values =
  with_metrics (fun () ->
      let h = Metrics.histogram "test/tmp_hist_build" in
      Metrics.reset ~prefix:"test/tmp_hist_build" ();
      List.iter (Metrics.observe h) values;
      match Metrics.find "test/tmp_hist_build" with
      | Some (Metrics.Histogram s) -> s
      | _ -> Alcotest.fail "histogram snapshot")

let test_histogram_merge () =
  let xs = [ 0.001; 0.01; 0.1; 1.0 ] and ys = [ 2.0; 4.0; 64.0 ] in
  let merged = Metrics.merge_histograms (snapshot_of xs) (snapshot_of ys) in
  let direct = snapshot_of (xs @ ys) in
  check Alcotest.int "merged count" direct.Metrics.count merged.Metrics.count;
  close "merged sum" direct.Metrics.sum merged.Metrics.sum;
  close "merged min" direct.Metrics.min_v merged.Metrics.min_v;
  close "merged max" direct.Metrics.max_v merged.Metrics.max_v;
  check Alcotest.bool "merged buckets" true (merged.Metrics.buckets = direct.Metrics.buckets);
  (* Commutativity and the identity element. *)
  let swapped = Metrics.merge_histograms (snapshot_of ys) (snapshot_of xs) in
  check Alcotest.bool "commutative" true (swapped = merged);
  let with_empty = Metrics.merge_histograms direct Metrics.empty_histogram in
  check Alcotest.bool "empty is identity" true (with_empty = direct)

let test_histogram_moments () =
  let s = snapshot_of [ 1.0; 2.0; 3.0; 10.0 ] in
  close "mean" 4.0 (Metrics.histogram_mean s);
  let q0 = Metrics.histogram_quantile s 0.0 and q1 = Metrics.histogram_quantile s 1.0 in
  check Alcotest.bool "quantiles bracket the data" true (q0 <= q1);
  check Alcotest.bool "median within range" true
    (let m = Metrics.histogram_quantile s 0.5 in
     m >= s.Metrics.min_v /. 2. && m <= s.Metrics.max_v *. 2.);
  check Alcotest.bool "bucket_lower monotone" true
    (Metrics.bucket_lower 10 < Metrics.bucket_lower 11)

(* -- trace ring buffers ----------------------------------------------------- *)

let span t0 t1 = Tracer.Chunk_commit { t0; t1; work = t1 -. t0 }

let test_buffer_wraparound () =
  let buf = Tracer.create_buffer ~capacity:4 ~name:"wrap" () in
  for i = 0 to 9 do
    Tracer.emit buf (span (float_of_int i) (float_of_int i +. 1.))
  done;
  check Alcotest.int "length capped" 4 (Tracer.length buf);
  check Alcotest.int "dropped counts overwrites" 6 (Tracer.dropped buf);
  let surviving = Tracer.to_list buf in
  check Alcotest.int "to_list length" 4 (List.length surviving);
  (* Oldest surviving first: events 6, 7, 8, 9. *)
  List.iteri
    (fun i ev ->
      match ev with
      | Tracer.Chunk_commit { t0; _ } -> close "chronological" (float_of_int (6 + i)) t0
      | _ -> Alcotest.fail "unexpected event")
    surviving;
  Tracer.clear buf;
  check Alcotest.int "clear empties" 0 (Tracer.length buf)

let test_buffer_totals () =
  let buf = Tracer.create_buffer ~capacity:64 ~name:"totals" () in
  Tracer.emit buf (Tracer.Decision { at = 0.; chunk = 10.; remaining = 30. });
  Tracer.emit buf (Tracer.Chunk_start { at = 0.; work = 10. });
  Tracer.emit buf (Tracer.Chunk_commit { t0 = 0.; t1 = 10.; work = 10. });
  Tracer.emit buf (Tracer.Checkpoint { t0 = 10.; t1 = 13. });
  Tracer.emit buf (Tracer.Failure { at = 15.; proc = 0 });
  Tracer.emit buf (Tracer.Waste { t0 = 13.; t1 = 15. });
  Tracer.emit buf (Tracer.Downtime { t0 = 15.; t1 = 16. });
  Tracer.emit buf (Tracer.Recovery_start { at = 16. });
  Tracer.emit buf (Tracer.Recovery_abort { t0 = 16.; t1 = 17. });
  Tracer.emit buf (Tracer.Recovery_complete { t0 = 18.; t1 = 20. });
  let t = Tracer.totals buf in
  close "work" 10. t.Tracer.work;
  close "checkpoint" 3. t.Tracer.checkpoint;
  close "waste" 2. t.Tracer.waste;
  close "recovery (abort + complete)" 3. t.Tracer.recovery;
  close "downtime" 1. t.Tracer.downtime;
  check Alcotest.int "failures" 1 t.Tracer.failures;
  check Alcotest.int "chunks" 1 t.Tracer.chunks;
  check Alcotest.int "decisions" 1 t.Tracer.decisions

let test_sink_register_drain () =
  (* Leave the sink as we found it. *)
  let stale, _ = Tracer.drain () in
  List.iter Tracer.register stale;
  let a = Tracer.create_buffer ~capacity:8 ~name:"sink-a" () in
  let b = Tracer.create_buffer ~capacity:8 ~name:"sink-b" () in
  Tracer.register a;
  Tracer.register b;
  let drained, rejected = Tracer.drain () in
  let names = List.map Tracer.name drained in
  check Alcotest.bool "registration order preserved" true
    (List.filter (fun n -> n = "sink-a" || n = "sink-b") names = [ "sink-a"; "sink-b" ]);
  check Alcotest.int "nothing rejected" 0 rejected;
  let after, _ = Tracer.drain () in
  check Alcotest.int "drain empties the sink" 0 (List.length after)

(* -- export formats --------------------------------------------------------- *)

let test_jsonl_line () =
  let line =
    Trace_export.jsonl_line ~buffer_name:"rep0/Daly"
      (Tracer.Chunk_commit { t0 = 1.5; t1 = 2.5; work = 1.0 })
  in
  check Alcotest.bool "names the buffer" true (contains ~needle:"rep0/Daly" line);
  check Alcotest.bool "names the event" true (contains ~needle:"chunk-commit" line);
  check Alcotest.bool "single line" true (not (String.contains line '\n'))

let test_chrome_export () =
  let buf = Tracer.create_buffer ~capacity:16 ~name:"rep0/export-test" () in
  Tracer.emit buf (Tracer.Chunk_commit { t0 = 0.; t1 = 5.; work = 5. });
  Tracer.emit buf (Tracer.Failure { at = 5.; proc = 3 });
  let path = Filename.temp_file "ckpt_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_export.write ~path [ buf ];
      let body = read_file path in
      check Alcotest.bool "trace_event envelope" true (contains ~needle:"\"traceEvents\"" body);
      check Alcotest.bool "thread named after buffer" true
        (contains ~needle:"rep0/export-test" body);
      check Alcotest.bool "complete event" true (contains ~needle:"\"ph\":\"X\"" body);
      check Alcotest.bool "instant event for the failure" true
        (contains ~needle:"\"ph\":\"i\"" body))

let test_jsonl_export () =
  let buf = Tracer.create_buffer ~capacity:16 ~name:"rep1/lines" () in
  Tracer.emit buf (Tracer.Checkpoint { t0 = 0.; t1 = 1. });
  Tracer.emit buf (Tracer.Downtime { t0 = 1.; t1 = 2. });
  let path = Filename.temp_file "ckpt_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_export.write ~path [ buf ];
      let body = read_file path in
      let lines = String.split_on_char '\n' (String.trim body) in
      check Alcotest.int "one line per event" 2 (List.length lines);
      List.iter
        (fun l ->
          check Alcotest.bool "line is an object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

let test_json_escape () =
  check Alcotest.string "quotes and backslashes" "a\\\"b\\\\c"
    (Trace_export.json_escape "a\"b\\c");
  check Alcotest.string "control characters" "tab\\there" (Trace_export.json_escape "tab\there")

(* -- provenance ------------------------------------------------------------- *)

let test_provenance_manifest () =
  let m = Provenance.manifest ~extra:[ ("seed", "42"); ("policy", "DPNextFailure") ] () in
  check Alcotest.bool "has parameters" true (contains ~needle:"\"parameters\"" m);
  check Alcotest.bool "carries the seed" true (contains ~needle:"\"seed\": \"42\"" m);
  check Alcotest.bool "records domains" true (contains ~needle:"\"domains\"" m);
  check Alcotest.bool "records ocaml version" true (contains ~needle:Sys.ocaml_version m)

let test_provenance_sidecar () =
  let artifact = Filename.temp_file "ckpt_artifact" ".csv" in
  let sidecar = Provenance.sidecar_path artifact in
  check Alcotest.string "sidecar naming" (artifact ^ ".meta.json") sidecar;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove artifact;
      if Sys.file_exists sidecar then Sys.remove sidecar)
    (fun () ->
      Provenance.write_sidecar ~extra:[ ("experiment", "unit-test") ] ~path:artifact ();
      check Alcotest.bool "sidecar written" true (Sys.file_exists sidecar);
      let body = read_file sidecar in
      check Alcotest.bool "sidecar carries parameters" true
        (contains ~needle:"unit-test" body))

let test_provenance_sidecar_never_raises () =
  (* The artifact's directory does not exist: the sidecar silently
     fails rather than breaking the caller. *)
  Provenance.write_sidecar ~path:"/nonexistent-dir-ckpt/out.csv" ();
  check Alcotest.bool "survived" true true

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics registry",
        [
          Alcotest.test_case "counter/gauge/timer/histogram" `Quick test_metrics_kinds;
          Alcotest.test_case "kind mismatch raises" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "disabled gating" `Quick test_metrics_gating;
          Alcotest.test_case "reset by prefix" `Quick test_metrics_reset_prefix;
          Alcotest.test_case "snapshot sorted" `Quick test_metrics_snapshot_sorted;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "merge = concatenated stream" `Quick test_histogram_merge;
          Alcotest.test_case "moments and quantiles" `Quick test_histogram_moments;
        ] );
      ( "ring buffers",
        [
          Alcotest.test_case "wraparound + dropped" `Quick test_buffer_wraparound;
          Alcotest.test_case "totals arithmetic" `Quick test_buffer_totals;
          Alcotest.test_case "sink register/drain" `Quick test_sink_register_drain;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl line shape" `Quick test_jsonl_line;
          Alcotest.test_case "chrome trace_event" `Quick test_chrome_export;
          Alcotest.test_case "jsonl file" `Quick test_jsonl_export;
          Alcotest.test_case "json escaping" `Quick test_json_escape;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "manifest contents" `Quick test_provenance_manifest;
          Alcotest.test_case "sidecar round-trip" `Quick test_provenance_sidecar;
          Alcotest.test_case "sidecar never raises" `Quick test_provenance_sidecar_never_raises;
        ] );
    ]
