(* Tests for the multicore work pool. *)

module Domain_pool = Ckpt_parallel.Domain_pool

let check = Alcotest.check

exception Boom

let test_matches_sequential () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let expected = Array.init n (fun i -> i * i) in
          let actual = Domain_pool.parallel_init ~domains n (fun i -> i * i) in
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "n=%d domains=%d" n domains)
            expected actual)
        [ 0; 1; 2; 7; 100 ])
    [ 1; 2; 4 ]

let test_every_slot_once () =
  let n = 1000 in
  let hits = Array.make n 0 in
  ignore
    (Domain_pool.parallel_init ~domains:4 n (fun i ->
         hits.(i) <- hits.(i) + 1;
         i));
  Array.iteri (fun i h -> check Alcotest.int (Printf.sprintf "slot %d" i) 1 h) hits

let test_map_list_order () =
  let out = Domain_pool.parallel_map_list ~domains:3 (fun x -> x * 10) [ 1; 2; 3; 4; 5 ] in
  check (Alcotest.list Alcotest.int) "order preserved" [ 10; 20; 30; 40; 50 ] out

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "raises with %d domains" domains)
        Boom
        (fun () ->
          ignore
            (Domain_pool.parallel_init ~domains 16 (fun i -> if i = 7 then raise Boom else i))))
    [ 1; 3 ]

let test_negative_size () =
  Alcotest.check_raises "negative" (Invalid_argument "Domain_pool.parallel_init: negative size")
    (fun () -> ignore (Domain_pool.parallel_init ~domains:2 (-1) (fun i -> i)))

let test_recommended_env_override () =
  Unix.putenv "CKPT_DOMAINS" "3";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CKPT_DOMAINS" "")
    (fun () -> check Alcotest.int "env override" 3 (Domain_pool.recommended_domains ()))

let prop_matches_array_init =
  QCheck2.Test.make ~name:"parallel_init = Array.init" ~count:50
    QCheck2.Gen.(pair (int_range 0 200) (int_range 1 4))
    (fun (n, domains) ->
      Domain_pool.parallel_init ~domains n (fun i -> (i * 7) mod 13)
      = Array.init n (fun i -> (i * 7) mod 13))

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "every slot exactly once" `Quick test_every_slot_once;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "negative size" `Quick test_negative_size;
          Alcotest.test_case "env override" `Quick test_recommended_env_override;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_matches_array_init ]);
    ]
