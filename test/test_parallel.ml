(* Tests for the multicore work pool. *)

module Domain_pool = Ckpt_parallel.Domain_pool

let check = Alcotest.check

exception Boom

let test_matches_sequential () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let expected = Array.init n (fun i -> i * i) in
          let actual = Domain_pool.parallel_init ~domains n (fun i -> i * i) in
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "n=%d domains=%d" n domains)
            expected actual)
        [ 0; 1; 2; 7; 100 ])
    [ 1; 2; 4 ]

let test_every_slot_once () =
  let n = 1000 in
  let hits = Array.make n 0 in
  ignore
    (Domain_pool.parallel_init ~domains:4 n (fun i ->
         hits.(i) <- hits.(i) + 1;
         i));
  Array.iteri (fun i h -> check Alcotest.int (Printf.sprintf "slot %d" i) 1 h) hits

let test_map_list_order () =
  let out = Domain_pool.parallel_map_list ~domains:3 (fun x -> x * 10) [ 1; 2; 3; 4; 5 ] in
  check (Alcotest.list Alcotest.int) "order preserved" [ 10; 20; 30; 40; 50 ] out

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "raises with %d domains" domains)
        Boom
        (fun () ->
          ignore
            (Domain_pool.parallel_init ~domains 16 (fun i -> if i = 7 then raise Boom else i))))
    [ 1; 3 ]

let test_error_stops_claiming () =
  (* Task 0 fails immediately; each task otherwise sleeps, so draining
     the whole range would take ~0.4 s while the error flag is set
     within microseconds: far fewer than [n] tasks may start. *)
  let n = 200 in
  let executed = Atomic.make 0 in
  Alcotest.check_raises "failure propagates" Boom (fun () ->
      ignore
        (Domain_pool.parallel_init ~domains:4 n (fun i ->
             Atomic.incr executed;
             if i = 0 then raise Boom;
             Unix.sleepf 0.002)));
  check Alcotest.bool
    (Printf.sprintf "aborted early (%d/%d tasks started)" (Atomic.get executed) n)
    true
    (Atomic.get executed < n)

let test_nested_runs_inline () =
  check Alcotest.bool "not in a region at top level" false (Domain_pool.in_parallel_region ());
  let outer =
    Domain_pool.parallel_init ~domains:4 4 (fun i ->
        check Alcotest.bool "task sees the region flag" true (Domain_pool.in_parallel_region ());
        (* The nested call must run inline (no oversubscription) and
           still produce Array.init's results. *)
        let inner = Domain_pool.parallel_init ~domains:4 8 (fun j -> (10 * i) + j) in
        Array.fold_left ( + ) 0 inner)
  in
  let expected = Array.init 4 (fun i -> (80 * i) + 28) in
  check (Alcotest.array Alcotest.int) "nested sums" expected outer;
  check Alcotest.bool "region flag restored" false (Domain_pool.in_parallel_region ())

let test_negative_size () =
  Alcotest.check_raises "negative" (Invalid_argument "Domain_pool.parallel_init: negative size")
    (fun () -> ignore (Domain_pool.parallel_init ~domains:2 (-1) (fun i -> i)))

let test_recommended_env_override () =
  Unix.putenv "CKPT_DOMAINS" "3";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CKPT_DOMAINS" "")
    (fun () -> check Alcotest.int "env override" 3 (Domain_pool.recommended_domains ()))

let prop_matches_array_init =
  QCheck2.Test.make ~name:"parallel_init = Array.init" ~count:50
    QCheck2.Gen.(pair (int_range 0 200) (int_range 1 4))
    (fun (n, domains) ->
      Domain_pool.parallel_init ~domains n (fun i -> (i * 7) mod 13)
      = Array.init n (fun i -> (i * 7) mod 13))

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "every slot exactly once" `Quick test_every_slot_once;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "error stops claiming" `Quick test_error_stops_claiming;
          Alcotest.test_case "nested calls run inline" `Quick test_nested_runs_inline;
          Alcotest.test_case "negative size" `Quick test_negative_size;
          Alcotest.test_case "env override" `Quick test_recommended_env_override;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_matches_array_init ]);
    ]
