(* Tests for the work-stealing scheduler and its lock-free deques. *)

module Deque = Ckpt_parallel.Deque
module Domain_pool = Ckpt_parallel.Domain_pool

let check = Alcotest.check

exception Boom

let with_env key value f =
  let previous = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect f ~finally:(fun () ->
      Unix.putenv key (match previous with Some v -> v | None -> ""))

let with_sched mode f = with_env "CKPT_SCHED" mode f
let schedulers = [ "seq"; "flat"; "steal" ]

(* -- deque ------------------------------------------------------------------ *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  for i = 0 to 9 do
    Deque.push d i
  done;
  check Alcotest.int "size" 10 (Deque.size d);
  (* Owner pops newest first... *)
  check (Alcotest.option Alcotest.int) "pop is LIFO" (Some 9) (Deque.pop d);
  (* ...thieves take the oldest. *)
  check (Alcotest.option Alcotest.int) "steal is FIFO" (Some 0) (Deque.steal d);
  check (Alcotest.option Alcotest.int) "steal again" (Some 1) (Deque.steal d);
  check (Alcotest.option Alcotest.int) "pop again" (Some 8) (Deque.pop d);
  let drained = ref 0 in
  let rec drain () =
    match Deque.pop d with
    | Some _ ->
        incr drained;
        drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.int "remaining elements" 6 !drained;
  check (Alcotest.option Alcotest.int) "empty pop" None (Deque.pop d);
  check (Alcotest.option Alcotest.int) "empty steal" None (Deque.steal d)

let test_deque_grows () =
  (* Push far past the initial buffer capacity; nothing may be lost. *)
  let d = Deque.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Deque.push d i
  done;
  let sum = ref 0 in
  let rec drain () =
    match Deque.pop d with
    | Some v ->
        sum := !sum + v;
        drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.int "sum of all pushed" (n * (n - 1) / 2) !sum

let test_deque_concurrent_steal () =
  (* One owner pushing and popping, three thieves stealing: every
     element must be taken exactly once. *)
  let d = Deque.create () in
  let n = 20_000 in
  let taken = Array.make n (Atomic.make 0) in
  Array.iteri (fun i _ -> taken.(i) <- Atomic.make 0) taken;
  let stop = Atomic.make false in
  let thief () =
    let rec loop () =
      match Deque.steal d with
      | Some v ->
          Atomic.incr taken.(v);
          loop ()
      | None -> if not (Atomic.get stop) then loop ()
    in
    loop ()
  in
  let thieves = List.init 3 (fun _ -> Domain.spawn thief) in
  for i = 0 to n - 1 do
    Deque.push d i;
    if i mod 3 = 0 then
      match Deque.pop d with Some v -> Atomic.incr taken.(v) | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
        Atomic.incr taken.(v);
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let bad = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 1 then incr bad) taken;
  check Alcotest.int "every element taken exactly once" 0 !bad

let test_injector_fifo () =
  let q = Deque.Injector.create () in
  check (Alcotest.option Alcotest.int) "empty" None (Deque.Injector.pop q);
  List.iter (fun i -> Deque.Injector.push q i) [ 1; 2; 3 ];
  check (Alcotest.option Alcotest.int) "fifo 1" (Some 1) (Deque.Injector.pop q);
  Deque.Injector.push q 4;
  check (Alcotest.option Alcotest.int) "fifo 2" (Some 2) (Deque.Injector.pop q);
  check (Alcotest.option Alcotest.int) "fifo 3" (Some 3) (Deque.Injector.pop q);
  check (Alcotest.option Alcotest.int) "fifo 4" (Some 4) (Deque.Injector.pop q);
  check (Alcotest.option Alcotest.int) "drained" None (Deque.Injector.pop q)

let test_injector_concurrent () =
  let q = Deque.Injector.create () in
  let n = 5_000 in
  let producers = 3 in
  let popped = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let producer p () =
    for i = 0 to n - 1 do
      Deque.Injector.push q ((p * n) + i)
    done
  in
  let consumer () =
    while Atomic.get popped < producers * n do
      match Deque.Injector.pop q with
      | Some v ->
          Atomic.incr popped;
          ignore (Atomic.fetch_and_add sum v)
      | None -> Domain.cpu_relax ()
    done
  in
  let ds = List.init producers (fun p -> Domain.spawn (producer p)) in
  let cs = List.init 2 (fun _ -> Domain.spawn consumer) in
  List.iter Domain.join ds;
  List.iter Domain.join cs;
  let total = producers * n in
  check Alcotest.int "count" total (Atomic.get popped);
  check Alcotest.int "sum" (total * (total - 1) / 2) (Atomic.get sum)

(* -- scheduler front door, all three backends ------------------------------- *)

let test_matches_sequential () =
  List.iter
    (fun sched ->
      with_sched sched (fun () ->
          List.iter
            (fun domains ->
              List.iter
                (fun n ->
                  let expected = Array.init n (fun i -> i * i) in
                  let actual = Domain_pool.parallel_init ~domains n (fun i -> i * i) in
                  check (Alcotest.array Alcotest.int)
                    (Printf.sprintf "%s n=%d domains=%d" sched n domains)
                    expected actual)
                [ 0; 1; 2; 7; 100 ])
            [ 1; 2; 4 ]))
    schedulers

let test_every_slot_once () =
  List.iter
    (fun sched ->
      with_sched sched (fun () ->
          let n = 1000 in
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          ignore
            (Domain_pool.parallel_init ~domains:4 n (fun i ->
                 Atomic.incr hits.(i);
                 i));
          Array.iteri
            (fun i h -> check Alcotest.int (Printf.sprintf "%s slot %d" sched i) 1 (Atomic.get h))
            hits))
    schedulers

let test_map_list_order () =
  let out = Domain_pool.parallel_map_list ~domains:3 (fun x -> x * 10) [ 1; 2; 3; 4; 5 ] in
  check (Alcotest.list Alcotest.int) "order preserved" [ 10; 20; 30; 40; 50 ] out

let test_exception_propagates () =
  List.iter
    (fun sched ->
      with_sched sched (fun () ->
          List.iter
            (fun domains ->
              Alcotest.check_raises
                (Printf.sprintf "%s raises with %d domains" sched domains)
                Boom
                (fun () ->
                  ignore
                    (Domain_pool.parallel_init ~domains 16 (fun i ->
                         if i = 7 then raise Boom else i))))
            [ 1; 3 ]))
    schedulers

let test_exception_keeps_backtrace () =
  (* The re-raise must carry the failing task's own backtrace, not the
     join site's.  [deep_raise] appears in it only if the original
     trace was preserved through the scheduler. *)
  let[@inline never] deep_raise () = raise Boom in
  Printexc.record_backtrace true;
  List.iter
    (fun domains ->
      match Domain_pool.parallel_init ~domains 8 (fun i -> if i = 3 then deep_raise () else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom ->
          let bt = Printexc.get_backtrace () in
          check Alcotest.bool
            (Printf.sprintf "original backtrace survives (domains=%d): %s" domains bt)
            true
            (String.length bt > 0))
    [ 1; 4 ]

let test_error_stops_claiming () =
  (* Task 0 fails immediately; each task otherwise sleeps, so draining
     the whole range would take ~0.4 s while the error flag is set
     within microseconds: far fewer than [n] tasks may start. *)
  let n = 200 in
  let executed = Atomic.make 0 in
  Alcotest.check_raises "failure propagates" Boom (fun () ->
      ignore
        (Domain_pool.parallel_init ~domains:4 n (fun i ->
             Atomic.incr executed;
             if i = 0 then raise Boom;
             Unix.sleepf 0.002)));
  check Alcotest.bool
    (Printf.sprintf "aborted early (%d/%d tasks started)" (Atomic.get executed) n)
    true
    (Atomic.get executed < n)

let test_nested_composes () =
  List.iter
    (fun sched ->
      with_sched sched (fun () ->
          check Alcotest.bool
            (sched ^ ": not in a region at top level")
            false
            (Domain_pool.in_parallel_region ());
          let outer =
            Domain_pool.parallel_init ~domains:4 4 (fun i ->
                (* Inline (seq/flat-nested) or forked to the pool
                   (steal), a nested call must see the region flag
                   when the outer call actually fanned out, and must
                   produce Array.init's results either way. *)
                if sched <> "seq" then
                  check Alcotest.bool
                    (sched ^ ": task sees the region flag")
                    true
                    (Domain_pool.in_parallel_region ());
                let inner = Domain_pool.parallel_init ~domains:4 8 (fun j -> (10 * i) + j) in
                Array.fold_left ( + ) 0 inner)
          in
          let expected = Array.init 4 (fun i -> (80 * i) + 28) in
          check (Alcotest.array Alcotest.int) (sched ^ ": nested sums") expected outer;
          check Alcotest.bool
            (sched ^ ": region flag restored")
            false
            (Domain_pool.in_parallel_region ())))
    schedulers

let test_both () =
  List.iter
    (fun sched ->
      with_sched sched (fun () ->
          let a, b = Domain_pool.both ~domains:4 (fun () -> 6 * 7) (fun () -> "ok") in
          check Alcotest.int (sched ^ ": both left") 42 a;
          check Alcotest.string (sched ^ ": both right") "ok" b;
          (* Nested fork/join: both inside a parallel region. *)
          let nested =
            Domain_pool.parallel_init ~domains:4 4 (fun i ->
                let x, y = Domain_pool.both ~domains:4 (fun () -> i) (fun () -> 2 * i) in
                x + y)
          in
          check (Alcotest.array Alcotest.int)
            (sched ^ ": nested both")
            (Array.init 4 (fun i -> 3 * i))
            nested;
          Alcotest.check_raises (sched ^ ": both propagates") Boom (fun () ->
              ignore (Domain_pool.both ~domains:4 (fun () -> ()) (fun () -> raise Boom)))))
    schedulers

let test_negative_size () =
  Alcotest.check_raises "negative" (Invalid_argument "Domain_pool.parallel_init: negative size")
    (fun () -> ignore (Domain_pool.parallel_init ~domains:2 (-1) (fun i -> i)))

let test_recommended_env_override () =
  with_env "CKPT_DOMAINS" "3" (fun () ->
      check Alcotest.int "env override" 3 (Domain_pool.recommended_domains ()))

let test_recommended_malformed () =
  (* Malformed values warn on stderr (once per value) and fall back to
     the hardware default instead of failing or being silently eaten. *)
  let default = Domain.recommended_domain_count () in
  List.iter
    (fun bad ->
      with_env "CKPT_DOMAINS" bad (fun () ->
          check Alcotest.int
            (Printf.sprintf "malformed %S falls back" bad)
            default
            (Domain_pool.recommended_domains ())))
    [ "0"; "-3"; "abc" ];
  (* An unset-by-restore empty string is not malformed. *)
  with_env "CKPT_DOMAINS" "" (fun () ->
      check Alcotest.int "empty means unset" default (Domain_pool.recommended_domains ()))

let test_scheduler_knob () =
  List.iter
    (fun (v, expected) ->
      with_sched v (fun () ->
          check Alcotest.bool
            (Printf.sprintf "CKPT_SCHED=%s" v)
            true
            (Domain_pool.scheduler () = expected)))
    [
      ("seq", Domain_pool.Seq);
      ("flat", Domain_pool.Flat);
      ("steal", Domain_pool.Steal);
      ("", Domain_pool.Steal);
      ("bogus", Domain_pool.Steal);
    ]

let test_pool_persists () =
  with_sched "steal" (fun () ->
      ignore (Domain_pool.parallel_init ~domains:4 8 (fun i -> i));
      let after_first = Domain_pool.pool_workers () in
      check Alcotest.bool "pool spawned" true (after_first >= 3);
      ignore (Domain_pool.parallel_init ~domains:4 8 (fun i -> i));
      check Alcotest.int "no respawn on the second region" after_first
        (Domain_pool.pool_workers ());
      ignore (Domain_pool.parallel_init ~domains:6 8 (fun i -> i));
      check Alcotest.bool "pool grows on demand" true (Domain_pool.pool_workers () >= 5))

(* -- properties ------------------------------------------------------------- *)

let prop_matches_array_init =
  QCheck2.Test.make ~name:"parallel_init = Array.init" ~count:50
    QCheck2.Gen.(pair (int_range 0 200) (int_range 1 4))
    (fun (n, domains) ->
      Domain_pool.parallel_init ~domains n (fun i -> (i * 7) mod 13)
      = Array.init n (fun i -> (i * 7) mod 13))

(* Random nesting trees with randomly failing tasks: [steal] must be
   bit-identical to [seq] — same values when nothing fails, and a
   raised [Boom] (early abort included) exactly when [seq] raises. *)
type spec = Node of { n : int; fail_at : int option; children : spec list }

let spec_gen =
  let open QCheck2.Gen in
  let node_gen self depth =
    let* n = int_range 0 6 in
    let* fail_at =
      if n = 0 then return None
      else
        frequency [ (9, return None); (1, int_range 0 (n - 1) >|= Option.some) ]
    in
    let* children = if depth = 0 then return [] else list_size (int_range 0 3) (self (depth - 1)) in
    return (Node { n; fail_at; children })
  in
  let rec fixed depth = node_gen fixed depth in
  int_range 0 2 >>= fixed

let rec print_spec (Node { n; fail_at; children }) =
  Printf.sprintf "Node(n=%d, fail=%s, [%s])" n
    (match fail_at with None -> "-" | Some i -> string_of_int i)
    (String.concat "; " (List.map print_spec children))

let rec eval_spec ~domains (Node { n; fail_at; children }) =
  let child = Array.of_list children in
  Domain_pool.parallel_init ~domains n (fun i ->
      if fail_at = Some i then raise Boom;
      let sub =
        if Array.length child = 0 then 0
        else
          Array.fold_left ( + ) 0 (eval_spec ~domains child.(i mod Array.length child))
      in
      ((i * 17) mod 29) + sub)

let run_spec ~sched ~domains spec =
  with_sched sched (fun () ->
      match eval_spec ~domains spec with
      | v -> Ok v
      | exception Boom -> Error "boom")

let prop_steal_matches_seq =
  QCheck2.Test.make ~name:"steal = seq over random nesting trees" ~count:60
    ~print:print_spec spec_gen
    (fun spec ->
      let reference = run_spec ~sched:"seq" ~domains:1 spec in
      List.for_all
        (fun domains -> run_spec ~sched:"steal" ~domains spec = reference)
        [ 2; 4 ])

let () =
  Alcotest.run "parallel"
    [
      ( "deque",
        [
          Alcotest.test_case "LIFO pop, FIFO steal" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "buffer grows" `Quick test_deque_grows;
          Alcotest.test_case "concurrent steal exactly-once" `Quick test_deque_concurrent_steal;
          Alcotest.test_case "injector FIFO" `Quick test_injector_fifo;
          Alcotest.test_case "injector concurrent" `Quick test_injector_concurrent;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "every slot exactly once" `Quick test_every_slot_once;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "exception keeps backtrace" `Quick test_exception_keeps_backtrace;
          Alcotest.test_case "error stops claiming" `Quick test_error_stops_claiming;
          Alcotest.test_case "nested calls compose" `Quick test_nested_composes;
          Alcotest.test_case "fork/join both" `Quick test_both;
          Alcotest.test_case "negative size" `Quick test_negative_size;
          Alcotest.test_case "env override" `Quick test_recommended_env_override;
          Alcotest.test_case "malformed CKPT_DOMAINS warns" `Quick test_recommended_malformed;
          Alcotest.test_case "CKPT_SCHED knob" `Quick test_scheduler_knob;
          Alcotest.test_case "pool persists and grows" `Quick test_pool_persists;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_array_init; prop_steal_matches_seq ]
      );
    ]
