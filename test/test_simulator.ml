(* Engine algebra tests (hand-checked executions), simulator
   invariants, evaluation methodology, period search and energy. *)

module Engine = Ckpt_simulator.Engine
module Scenario = Ckpt_simulator.Scenario
module Evaluation = Ckpt_simulator.Evaluation
module Period_search = Ckpt_simulator.Period_search
module Energy = Ckpt_simulator.Energy
module Policy = Ckpt_policies.Policy
module Job = Ckpt_policies.Job
module Trace = Ckpt_failures.Trace
module Trace_set = Ckpt_failures.Trace_set
module Machine = Ckpt_platform.Machine
module Overhead = Ckpt_platform.Overhead
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull
module Instrument = Ckpt_simulator.Instrument
module Metrics = Ckpt_telemetry.Metrics
module Tracer = Ckpt_telemetry.Tracer

let check = Alcotest.check
let close ?(tol = 1e-6) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* A tiny deterministic setting: W = 1000 s, C = R = 100 s, D = 50 s. *)
let tiny_job ?(processors = 1) () =
  Job.create
    ~dist:(Exponential.of_mtbf ~mtbf:5000.)
    ~processors
    ~machine:
      (Machine.create ~total_processors:processors ~downtime:50.
         ~overhead:(Overhead.constant 100.))
    ~work_time:1000.

let tiny_scenario ?(processors = 1) () =
  Scenario.create ~horizon:1e6 ~start_time:0. (tiny_job ~processors ())

let traces_of_failures ~units failures =
  Trace_set.of_traces
    (Array.init units (fun i ->
         Trace.of_times ~horizon:1e6 (Array.of_list (List.assoc i failures))))

let period600 = Policy.periodic "periodic-600" ~period:600.

let run_metrics ?(processors = 1) ~failures policy =
  let scenario = tiny_scenario ~processors () in
  let traces = traces_of_failures ~units:processors failures in
  match Engine.run ~scenario ~traces ~policy with
  | Engine.Completed m -> m
  | Engine.Policy_failed _ -> Alcotest.fail "unexpected policy failure"

(* -- hand-checked executions ----------------------------------------------- *)

let test_engine_no_failures () =
  let m = run_metrics ~failures:[ (0, []) ] period600 in
  (* Chunks 600 and 400, each plus C = 100. *)
  close "makespan" 1200. m.Engine.makespan;
  close "useful" 1000. m.Engine.useful_work;
  close "checkpoint" 200. m.Engine.checkpoint_time;
  close "no waste" 0. m.Engine.wasted_time;
  check Alcotest.int "no failures" 0 m.Engine.failures;
  check Alcotest.int "two chunks" 2 m.Engine.chunks;
  close "min chunk" 400. m.Engine.min_chunk;
  close "max chunk" 600. m.Engine.max_chunk

let test_engine_single_failure_mid_chunk () =
  (* Failure at t = 300 during the first chunk (0..700):
     waste 300, downtime 50, recovery 100, then 700 + 500. *)
  let m = run_metrics ~failures:[ (0, [ 300. ]) ] period600 in
  close "makespan" 1650. m.Engine.makespan;
  close "wasted" 300. m.Engine.wasted_time;
  close "stall" 50. m.Engine.stall_time;
  close "recovery" 100. m.Engine.recovery_time;
  close "useful" 1000. m.Engine.useful_work;
  check Alcotest.int "one failure" 1 m.Engine.failures

let test_engine_failure_during_checkpoint () =
  (* Failure at t = 650 hits the checkpoint of the first chunk. *)
  let m = run_metrics ~failures:[ (0, [ 650. ]) ] period600 in
  close "wasted includes partial checkpoint" 650. m.Engine.wasted_time;
  close "makespan" (650. +. 50. +. 100. +. 700. +. 500.) m.Engine.makespan

let test_engine_failure_at_commit_instant () =
  (* A failure at exactly t = 700 does not destroy the checkpoint that
     commits at 700; it strikes the next attempt at zero cost. *)
  let m = run_metrics ~failures:[ (0, [ 700. ]) ] period600 in
  close "nothing wasted" 0. m.Engine.wasted_time;
  close "makespan" (700. +. 50. +. 100. +. 500.) m.Engine.makespan;
  check Alcotest.int "one failure" 1 m.Engine.failures

let test_engine_failure_during_recovery () =
  (* Failures at 300 and 400: the second interrupts the recovery that
     started at 350. *)
  let m = run_metrics ~failures:[ (0, [ 300.; 400. ]) ] period600 in
  check Alcotest.int "two failures" 2 m.Engine.failures;
  close "wasted" 300. m.Engine.wasted_time;
  close "stall" 100. m.Engine.stall_time;
  close "recovery (interrupted + complete)" 150. m.Engine.recovery_time;
  close "makespan" 1750. m.Engine.makespan

let test_engine_own_downtime_absorbs () =
  (* The processor's own failure at 320 falls inside its downtime
     [300, 350): absorbed, identical to a single failure at 300. *)
  let m = run_metrics ~failures:[ (0, [ 300.; 320. ]) ] period600 in
  check Alcotest.int "one effective failure" 1 m.Engine.failures;
  close "makespan" 1650. m.Engine.makespan

let test_engine_cascading_downtime () =
  (* Two units; unit 1 fails at 330 while unit 0 is down [300, 350):
     the platform is whole again only at 380. *)
  let m = run_metrics ~processors:2 ~failures:[ (0, [ 300. ]); (1, [ 330. ]) ] period600 in
  check Alcotest.int "two failures" 2 m.Engine.failures;
  close "stall to the latest downtime" 80. m.Engine.stall_time;
  close "makespan" 1680. m.Engine.makespan

let test_engine_grouped_units_equivalent () =
  (* A 4-processor job whose failures strike whole 4-processor nodes
     behaves exactly like a 1-processor job with the same work and the
     same (single-unit) trace: grouping only changes the C(p) scaling,
     which is constant here. *)
  let grouped = Job.with_group_size (tiny_job ~processors:4 ()) 4 in
  let scenario_grouped = Scenario.create ~horizon:1e6 ~start_time:0. grouped in
  let scenario_single = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 300.; 1900. ]) ] in
  let a = Engine.run ~scenario:scenario_grouped ~traces ~policy:period600 in
  let b = Engine.run ~scenario:scenario_single ~traces ~policy:period600 in
  check Alcotest.bool "identical executions" true (a = b)

let test_engine_policy_failed () =
  let declining = Policy.stateless "no" (fun _ -> None) in
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, []) ] in
  match Engine.run ~scenario ~traces ~policy:declining with
  | Engine.Policy_failed { at_time; remaining } ->
      close "at start" 0. at_time;
      close "nothing done" 1000. remaining
  | Engine.Completed _ -> Alcotest.fail "expected Policy_failed"

let test_engine_zero_chunk_policy_terminates () =
  (* A degenerate policy proposing zero-size chunks must not loop: the
     engine coerces the proposal to the full remaining work. *)
  let zero = Policy.stateless "zero" (fun _ -> Some 0.) in
  let m = run_metrics ~failures:[ (0, []) ] zero in
  close "single coerced chunk" 1100. m.Engine.makespan;
  check Alcotest.int "one chunk" 1 m.Engine.chunks

let test_engine_oversized_chunk_clamped () =
  let greedy = Policy.stateless "greedy" (fun _ -> Some 1e12) in
  let m = run_metrics ~failures:[ (0, []) ] greedy in
  close "clamped to the work" 1100. m.Engine.makespan

let test_engine_deterministic () =
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 123.; 2345. ]) ] in
  let m1 = Engine.run ~scenario ~traces ~policy:period600 in
  let m2 = Engine.run ~scenario ~traces ~policy:period600 in
  check Alcotest.bool "identical outcomes" true (m1 = m2)

(* -- lower bound -------------------------------------------------------------- *)

let test_lower_bound_no_failures () =
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, []) ] in
  let m = Engine.lower_bound ~scenario ~traces in
  close "one chunk + C" 1100. m.Engine.makespan;
  check Alcotest.int "single chunk" 1 m.Engine.chunks

let test_lower_bound_just_in_time () =
  (* Failure at 300: save 200 s of work with the checkpoint committing
     exactly at the failure, then downtime + recovery + the rest. *)
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 300. ]) ] in
  let m = Engine.lower_bound ~scenario ~traces in
  close "no execution wasted" 0. m.Engine.wasted_time;
  close "makespan" (300. +. 50. +. 100. +. 800. +. 100.) m.Engine.makespan

let test_lower_bound_idle_when_too_close () =
  (* Failure at 60 < C: nothing can be saved; idle until it strikes. *)
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 60. ]) ] in
  let m = Engine.lower_bound ~scenario ~traces in
  close "idle time wasted" 60. m.Engine.wasted_time;
  close "makespan" (60. +. 50. +. 100. +. 1000. +. 100.) m.Engine.makespan

let test_lower_bound_beats_policies () =
  let job =
    Job.create
      ~dist:(Exponential.of_mtbf ~mtbf:3000.)
      ~processors:4
      ~machine:
        (Machine.create ~total_processors:4 ~downtime:50. ~overhead:(Overhead.constant 100.))
      ~work_time:20_000.
  in
  let scenario = Scenario.create ~horizon:1e7 ~start_time:0. job in
  for replicate = 0 to 9 do
    let traces = Scenario.traces scenario ~replicate in
    let lb = Engine.lower_bound ~scenario ~traces in
    List.iter
      (fun period ->
        match Engine.run ~scenario ~traces ~policy:(Policy.periodic "p" ~period) with
        | Engine.Completed m ->
            check Alcotest.bool
              (Printf.sprintf "lb %.0f <= %.0f (T=%g, r=%d)" lb.Engine.makespan
                 m.Engine.makespan period replicate)
              true
              (lb.Engine.makespan <= m.Engine.makespan +. 1e-6)
        | Engine.Policy_failed _ -> Alcotest.fail "periodic cannot fail")
      [ 300.; 1000.; 5000. ]
  done

(* -- invariants (property) ------------------------------------------------------ *)

(* Shared by the Exponential and Weibull instances below: the metrics
   partition the makespan, and a traced run's span durations produce
   the very same partition. *)
let partition_prop ~name ~dist =
  QCheck2.Test.make ~name ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (float_range 200. 3000.))
    (fun (replicate, period) ->
      let scenario =
        Scenario.create ~horizon:1e7 ~start_time:0.
          (Job.create ~dist ~processors:2
             ~machine:
               (Machine.create ~total_processors:2 ~downtime:40.
                  ~overhead:(Overhead.constant 120.))
             ~work_time:15_000.)
      in
      let traces = Scenario.traces scenario ~replicate in
      let buf = Tracer.create_buffer ~capacity:65_536 ~name:"prop" () in
      match Engine.run_traced ~trace:buf ~scenario ~traces ~policy:(Policy.periodic "p" ~period) with
      | Engine.Completed m ->
          let parts =
            m.Engine.useful_work +. m.Engine.checkpoint_time +. m.Engine.wasted_time
            +. m.Engine.recovery_time +. m.Engine.stall_time
          in
          let t = Tracer.totals buf in
          let spans =
            t.Tracer.work +. t.Tracer.checkpoint +. t.Tracer.waste +. t.Tracer.recovery
            +. t.Tracer.downtime
          in
          abs_float (m.Engine.makespan -. parts) < 1e-6 *. m.Engine.makespan
          && abs_float (m.Engine.useful_work -. 15_000.) < 1e-6
          && Tracer.dropped buf = 0
          && abs_float (m.Engine.makespan -. spans) < 1e-6 *. m.Engine.makespan
          && t.Tracer.failures = m.Engine.failures
          && t.Tracer.chunks = m.Engine.chunks
      | Engine.Policy_failed _ -> false)

let prop_metrics_partition =
  partition_prop ~name:"makespan = useful + C + wasted + recovery + stall (exponential)"
    ~dist:(Exponential.of_mtbf ~mtbf:2500.)

let prop_metrics_partition_weibull =
  partition_prop ~name:"makespan partition and traced spans (weibull k=0.7)"
    ~dist:(Weibull.of_mtbf ~mtbf:2500. ~shape:0.7)

(* -- scenario --------------------------------------------------------------------- *)

let test_scenario_defaults () =
  let single = Scenario.create (tiny_job ()) in
  close ~tol:1. "1-proc horizon 1 y" (365.25 *. 86400.) single.Scenario.horizon;
  close "1-proc starts at 0" 0. single.Scenario.start_time;
  let parallel = Scenario.create (tiny_job ~processors:4 ()) in
  close ~tol:1. "parallel horizon 11 y" (11. *. 365.25 *. 86400.) parallel.Scenario.horizon;
  close ~tol:1. "parallel starts at 1 y" (365.25 *. 86400.) parallel.Scenario.start_time

let test_scenario_invalid () =
  Alcotest.check_raises "start past horizon"
    (Invalid_argument "Scenario.create: start_time outside [0, horizon)") (fun () ->
      ignore (Scenario.create ~horizon:10. ~start_time:10. (tiny_job ())))

let test_scenario_grouped_traces () =
  let job = Job.with_group_size (tiny_job ~processors:8 ()) 4 in
  let scenario = Scenario.create ~horizon:1e6 ~start_time:0. job in
  let traces = Scenario.traces scenario ~replicate:0 in
  check Alcotest.int "one trace per node" 2 (Trace_set.processors traces)

let test_initial_lifetime_starts () =
  let scenario = Scenario.create ~horizon:1e6 ~start_time:500. (tiny_job ()) in
  let traces = traces_of_failures ~units:1 [ (0, [ 100.; 400.; 800. ]) ] in
  let starts = Scenario.initial_lifetime_starts scenario traces in
  (* Last failure before 500 is 400; lifetime restarts after the
     downtime D = 50. *)
  close "last failure + D" 450. starts.(0);
  let fresh = Scenario.initial_lifetime_starts scenario (traces_of_failures ~units:1 [ (0, []) ]) in
  close "never failed" 0. fresh.(0)

(* -- evaluation ---------------------------------------------------------------------- *)

let eval_scenario () =
  Scenario.create ~horizon:1e7 ~start_time:0.
    (Job.create
       ~dist:(Exponential.of_mtbf ~mtbf:4000.)
       ~processors:1
       ~machine:
         (Machine.create ~total_processors:1 ~downtime:50. ~overhead:(Overhead.constant 100.))
       ~work_time:20_000.)

let test_evaluation_degradations () =
  let scenario = eval_scenario () in
  let policies =
    [ Policy.periodic "a" ~period:900.; Policy.periodic "b" ~period:2000.;
      Policy.periodic "c" ~period:8000. ]
  in
  let table = Evaluation.degradation_table ~scenario ~policies ~replicates:10 in
  check Alcotest.int "usable" 10 table.Evaluation.usable_replicates;
  List.iter
    (fun r ->
      check Alcotest.int (r.Evaluation.policy_name ^ " ran everywhere") 10
        r.Evaluation.successes;
      check Alcotest.bool
        (Printf.sprintf "%s degradation %.3f >= 1" r.Evaluation.policy_name
           r.Evaluation.average_degradation)
        true
        (r.Evaluation.average_degradation >= 1. -. 1e-9))
    table.Evaluation.results;
  check Alcotest.bool "lower bound <= 1" true
    (table.Evaluation.lower_bound.Evaluation.average_degradation <= 1. +. 1e-9)

let test_evaluation_failed_policy_excluded () =
  let scenario = eval_scenario () in
  let policies = [ Policy.periodic "ok" ~period:1000.; Policy.stateless "no" (fun _ -> None) ] in
  let table = Evaluation.degradation_table ~scenario ~policies ~replicates:4 in
  let failed = List.nth table.Evaluation.results 1 in
  check Alcotest.int "no successes" 0 failed.Evaluation.successes;
  let ok = List.nth table.Evaluation.results 0 in
  close ~tol:1e-9 "sole policy defines the best" 1. ok.Evaluation.average_degradation

let test_average_makespan () =
  let scenario = eval_scenario () in
  match Evaluation.average_makespan ~scenario ~policy:(Policy.periodic "p" ~period:1000.)
          ~replicates:5
  with
  | Some m -> check Alcotest.bool "at least the work" true (m >= 20_000.)
  | None -> Alcotest.fail "periodic always completes"

let with_domains n f =
  (* [degradation_table] reads CKPT_DOMAINS through
     [Domain_pool.recommended_domains] on every call. *)
  let previous = Sys.getenv_opt "CKPT_DOMAINS" in
  Unix.putenv "CKPT_DOMAINS" (string_of_int n);
  Fun.protect f ~finally:(fun () ->
      Unix.putenv "CKPT_DOMAINS" (match previous with Some v -> v | None -> ""))

let test_evaluation_parallel_deterministic () =
  (* The acceptance guarantee: the table at CKPT_DOMAINS=4 is
     bit-for-bit the table at CKPT_DOMAINS=1 — including a DP policy,
     whose solved tables are cached per domain. *)
  let policies () =
    [ Policy.periodic "a" ~period:900.; Policy.periodic "b" ~period:2000.;
      Ckpt_policies.Dp_policies.dp_makespan ~cap_states:40 (eval_scenario ()).Scenario.job ]
  in
  let table_with domains =
    (* A fresh scenario per run: no trace-set cache sharing between
       the serial and parallel runs. *)
    with_domains domains (fun () ->
        Evaluation.degradation_table ~scenario:(eval_scenario ()) ~policies:(policies ())
          ~replicates:6)
  in
  let serial = table_with 1 in
  let parallel = table_with 4 in
  check Alcotest.bool "identical tables" true (serial = parallel);
  check Alcotest.string "identical rendering"
    (Format.asprintf "%a" Evaluation.pp_table serial)
    (Format.asprintf "%a" Evaluation.pp_table parallel);
  match
    with_domains 1 (fun () ->
        Evaluation.average_makespan ~scenario:(eval_scenario ())
          ~policy:(Policy.periodic "p" ~period:1000.) ~replicates:5),
    with_domains 4 (fun () ->
        Evaluation.average_makespan ~scenario:(eval_scenario ())
          ~policy:(Policy.periodic "p" ~period:1000.) ~replicates:5)
  with
  | Some a, Some b -> close ~tol:0. "average_makespan deterministic" a b
  | _ -> Alcotest.fail "periodic always completes"

let with_env key value f =
  let previous = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect f ~finally:(fun () ->
      Unix.putenv key (match previous with Some v -> v | None -> ""))

let test_engine_fast_paths_bit_identical () =
  (* The DPNextFailure fast paths — incremental age summaries and the
     monotone chunk-search prune — must not change a single bit of any
     execution.  The escape-hatch knobs are read at policy
     construction, so each arm builds its policy inside the env
     scope. *)
  let job =
    Job.create
      ~dist:(Weibull.of_mtbf ~mtbf:1e6 ~shape:0.7)
      ~processors:64
      ~machine:
        (Machine.create ~total_processors:64 ~downtime:60. ~overhead:(Overhead.constant 600.))
      ~work_time:5e5
  in
  let scenario = Scenario.create ~horizon:1e7 ~start_time:0. job in
  let run () =
    let policy = Ckpt_policies.Dp_policies.dp_next_failure ~max_states:60 job in
    List.map
      (fun replicate ->
        Engine.run ~scenario ~traces:(Scenario.traces scenario ~replicate) ~policy)
      [ 0; 1; 2 ]
  in
  let fast = run () in
  let slow =
    with_env "CKPT_AGE_INCREMENTAL" "0" (fun () -> with_env "CKPT_DPNF_PRUNE" "0" run)
  in
  check Alcotest.bool "fast paths change nothing" true (fast = slow)

let test_evaluation_steal_scheduler_deterministic () =
  (* Regression for the work-stealing scheduler: the full evaluation
     determinism suite under CKPT_SCHED=steal must produce the exact
     sequential-reference table at every domain count — including a DP
     policy, whose solved tables are cached per (persistent) domain. *)
  let policies () =
    [ Policy.periodic "a" ~period:900.; Policy.periodic "b" ~period:2000.;
      Ckpt_policies.Dp_policies.dp_makespan ~cap_states:40 (eval_scenario ()).Scenario.job ]
  in
  let table_with ~sched ~domains =
    (* A fresh scenario per run: no trace-set cache sharing between
       the reference and scheduled runs. *)
    with_env "CKPT_SCHED" sched (fun () ->
        with_domains domains (fun () ->
            Evaluation.degradation_table ~scenario:(eval_scenario ()) ~policies:(policies ())
              ~replicates:6))
  in
  let reference = table_with ~sched:"seq" ~domains:1 in
  List.iter
    (fun domains ->
      let stolen = table_with ~sched:"steal" ~domains in
      check Alcotest.bool
        (Printf.sprintf "steal CKPT_DOMAINS=%d == seq" domains)
        true (stolen = reference);
      check Alcotest.string
        (Printf.sprintf "identical rendering at CKPT_DOMAINS=%d" domains)
        (Format.asprintf "%a" Evaluation.pp_table reference)
        (Format.asprintf "%a" Evaluation.pp_table stolen))
    [ 1; 2; 8 ]

let contains_substring haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_evaluation_no_nan_printed () =
  let scenario = eval_scenario () in
  let never = Policy.stateless "never" (fun _ -> None) in
  (* One policy fails on every replicate, and (second table) every
     policy fails, so even the LowerBound row has no observations. *)
  List.iter
    (fun policies ->
      let table = Evaluation.degradation_table ~scenario ~policies ~replicates:3 in
      check Alcotest.bool "the failing policy really has no successes" true
        (List.exists (fun r -> r.Evaluation.successes = 0) table.Evaluation.results);
      let rendered = Format.asprintf "%a" Evaluation.pp_table table in
      check Alcotest.bool
        (Printf.sprintf "no nan in %S" rendered)
        false
        (contains_substring (String.lowercase_ascii rendered) "nan");
      check Alcotest.bool "absent cells print n/a" true (contains_substring rendered "n/a"))
    [ [ Policy.periodic "ok" ~period:1000.; never ]; [ never ] ]

let test_trace_cache_reuses_sets () =
  let scenario = eval_scenario () in
  let a = Scenario.traces scenario ~replicate:3 in
  let b = Scenario.traces scenario ~replicate:3 in
  check Alcotest.bool "second lookup is the cached set" true (a == b);
  let hits, misses = Scenario.cache_stats scenario in
  check Alcotest.int "one hit" 1 hits;
  check Alcotest.int "one miss" 1 misses;
  (* A distinct scenario has a distinct cache: same bits, new set. *)
  let c = Scenario.traces (eval_scenario ()) ~replicate:3 in
  check Alcotest.bool "fresh scenario regenerates" true (c != a)

let test_evaluation_invalid () =
  Alcotest.check_raises "no policies"
    (Invalid_argument "Evaluation.degradation_table: no policies") (fun () ->
      ignore (Evaluation.degradation_table ~scenario:(eval_scenario ()) ~policies:[] ~replicates:1))

(* -- period search -------------------------------------------------------------------- *)

let test_default_factors () =
  let factors = Period_search.default_factors () in
  check Alcotest.bool "all positive" true (List.for_all (fun f -> f > 0.) factors);
  check Alcotest.bool "sorted" true (List.sort compare factors = factors);
  check Alcotest.bool "covers an order of magnitude both ways" true
    (List.hd factors < 0.1 && List.nth factors (List.length factors - 1) > 10.)

let test_best_period_sane () =
  let scenario = eval_scenario () in
  let period, score =
    Period_search.best_period ~factors:[ 0.25; 1.; 4. ] ~tuning_replicates:4 ~scenario
      ~base_period:1000. ()
  in
  check Alcotest.bool "one of the candidates" true
    (List.exists (fun f -> abs_float (period -. (1000. *. f)) < 1e-6) [ 0.25; 1.; 4. ]);
  check Alcotest.bool "score finite" true (Float.is_finite score)

let test_best_period_fallback_not_zero () =
  let scenario = eval_scenario () in
  (* Regression: with no usable tuning run every candidate scores
     infinity, and the search used to return period 0 — which
     [Policy.periodic] then refuses at every chunk.  It must fall back
     to the (clamped) base period instead. *)
  let period, score =
    Period_search.best_period ~tuning_replicates:0 ~scenario ~base_period:1000. ()
  in
  close ~tol:1e-9 "falls back to the base period" 1000. period;
  check Alcotest.bool "score reports the failure" true (score = infinity);
  (* Same fallback when the factor grid leaves no candidate in
     (0, work]. *)
  let period, score =
    Period_search.best_period ~factors:[ 1e12 ] ~tuning_replicates:2 ~scenario ~base_period:1000.
      ()
  in
  close ~tol:1e-9 "clamped base period when no factor fits" 1000. period;
  check Alcotest.bool "fallback candidate still scored" true (Float.is_finite score);
  (* A base period beyond the work is clamped to the work. *)
  let period, _ =
    Period_search.best_period ~tuning_replicates:0 ~scenario ~base_period:1e9 ()
  in
  close ~tol:1e-9 "clamped to work" scenario.Scenario.job.Job.work_time period

let test_sweep () =
  let scenario = eval_scenario () in
  let rows = Period_search.sweep ~scenario ~periods:[ 500.; 1000. ] ~replicates:3 in
  check Alcotest.int "two rows" 2 (List.length rows);
  List.iter
    (fun (_, m) ->
      match m with
      | Some v -> check Alcotest.bool "finite" true (Float.is_finite v)
      | None -> Alcotest.fail "periodic always completes")
    rows

(* -- significance --------------------------------------------------------------------- *)

module Significance = Ckpt_simulator.Significance

let test_binomial_p_values () =
  close ~tol:1e-9 "0/10 split" (2. /. 1024.) (Significance.binomial_two_sided_p ~wins:0 ~losses:10);
  close ~tol:1e-9 "3/7 split" (2. *. 176. /. 1024.)
    (Significance.binomial_two_sided_p ~wins:3 ~losses:7);
  close ~tol:1e-9 "even split capped at 1" 1.
    (Significance.binomial_two_sided_p ~wins:5 ~losses:5);
  close ~tol:1e-9 "no data" 1. (Significance.binomial_two_sided_p ~wins:0 ~losses:0)

let test_compare_policies_detects_dominance () =
  (* A sane period against a period twenty times the platform MTBF:
     the former must win essentially every paired trace. *)
  let scenario = eval_scenario () in
  let good = Policy.periodic "good" ~period:900. in
  let awful = Policy.periodic "awful" ~period:80_000. in
  let c = Significance.compare_policies ~scenario ~a:good ~b:awful ~replicates:12 in
  check Alcotest.int "all pairs usable" 12 c.Significance.paired_runs;
  check Alcotest.bool
    (Printf.sprintf "good wins %d/12" c.Significance.a_wins)
    true
    (c.Significance.a_wins >= 11);
  check Alcotest.bool "ratio below 1" true (c.Significance.mean_ratio < 1.);
  check Alcotest.bool
    (Printf.sprintf "significant (p = %.4f)" c.Significance.sign_test_p)
    true
    (c.Significance.sign_test_p < 0.01)

let test_compare_policy_with_itself () =
  let scenario = eval_scenario () in
  let p = Policy.periodic "p" ~period:1000. in
  let c = Significance.compare_policies ~scenario ~a:p ~b:p ~replicates:5 in
  check Alcotest.int "all ties" 5 c.Significance.ties;
  close ~tol:1e-9 "p = 1" 1. c.Significance.sign_test_p;
  close ~tol:1e-9 "ratio 1" 1. c.Significance.mean_ratio

(* -- energy -------------------------------------------------------------------------- *)

let test_energy_of_metrics () =
  let m = run_metrics ~failures:[ (0, [ 300. ]) ] period600 in
  let power = Energy.create ~compute:100. ~io:10. ~idle:1. in
  (* useful 1000 + wasted 300 computing, 200 + 100 I/O, 50 stalled. *)
  close "joules"
    ((100. *. 1300.) +. (10. *. 300.) +. (1. *. 50.))
    (Energy.of_metrics power ~processors:1 m);
  close "scales with processors"
    (2. *. Energy.of_metrics power ~processors:1 m)
    (Energy.of_metrics power ~processors:2 m)

let test_energy_invalid () =
  Alcotest.check_raises "negative power" (Invalid_argument "Energy.create: negative power")
    (fun () -> ignore (Energy.create ~compute:(-1.) ~io:0. ~idle:0.))

let test_energy_tradeoff_rows () =
  let scenario = eval_scenario () in
  let rows =
    Energy.makespan_energy_tradeoff ~scenario ~power:Energy.default_power
      ~periods:[ 500.; 2000. ] ~replicates:3
  in
  check Alcotest.int "row per period" 2 (List.length rows);
  List.iter
    (fun (_, m, e) -> check Alcotest.bool "positive" true (m > 0. && e > 0.))
    rows

(* -- theory vs simulation --------------------------------------------------- *)

let test_simulated_optexp_matches_theorem1 () =
  (* The strongest end-to-end check: the engine's mean makespan under
     the optimal periodic policy must reproduce Theorem 1's closed
     form (1 processor, Exponential, MTBF 1 day, W = 20 days). *)
  let mtbf = 86400. in
  let work = 20. *. 86400. in
  let job =
    Job.create
      ~dist:(Exponential.of_mtbf ~mtbf)
      ~processors:1
      ~machine:
        (Machine.create ~total_processors:1 ~downtime:60. ~overhead:(Overhead.constant 600.))
      ~work_time:work
  in
  let scenario = Scenario.create ~horizon:1e9 ~start_time:0. job in
  let policy = Ckpt_policies.Optexp.policy job in
  let n = 60 in
  let acc = ref 0. in
  for replicate = 0 to n - 1 do
    let traces = Scenario.traces scenario ~replicate in
    match Engine.run ~scenario ~traces ~policy with
    | Engine.Completed m -> acc := !acc +. m.Engine.makespan
    | Engine.Policy_failed _ -> Alcotest.fail "periodic cannot fail"
  done;
  let simulated = !acc /. float_of_int n in
  let theory =
    Ckpt_core.Theory.optimal_expected_makespan ~rate:(1. /. mtbf) ~work ~checkpoint:600.
      ~recovery:600. ~downtime:60.
  in
  check Alcotest.bool
    (Printf.sprintf "simulated %.0f within 2%% of theory %.0f" simulated theory)
    true
    (abs_float (simulated -. theory) /. theory < 0.02)

(* -- progress-dependent costs (conclusion extension) ----------------------- *)

let test_cost_profile_constant_matches_run () =
  (* A profile that always returns the job's constant costs must
     reproduce Engine.run exactly. *)
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 300.; 1900. ]) ] in
  let a = Engine.run ~scenario ~traces ~policy:period600 in
  let b =
    Engine.run_with_cost_profile
      ~cost_profile:(fun ~progress:_ -> (100., 100.))
      ~scenario ~traces ~policy:period600
  in
  check Alcotest.bool "identical" true (a = b)

let test_cost_profile_growing_cost () =
  (* C doubles at the end: with W = 1000 and period 600, the first
     checkpoint lands at progress 0.6 and the second at 1.0. *)
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, []) ] in
  let profile ~progress = ((if progress >= 1. then 200. else 100.), 100.) in
  match Engine.run_with_cost_profile ~cost_profile:profile ~scenario ~traces ~policy:period600 with
  | Engine.Completed m ->
      close "checkpoint time reflects the profile" 300. m.Engine.checkpoint_time;
      close "makespan" 1300. m.Engine.makespan
  | Engine.Policy_failed _ -> Alcotest.fail "cannot fail"

let test_cost_profile_recovery_cost () =
  (* Failure at 300 with nothing committed: recovery is charged at
     progress 0, where the profile makes it 500. *)
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 300. ]) ] in
  let profile ~progress = (100., if progress <= 0. then 500. else 100.) in
  match Engine.run_with_cost_profile ~cost_profile:profile ~scenario ~traces ~policy:period600 with
  | Engine.Completed m ->
      close "expensive early recovery" 500. m.Engine.recovery_time;
      close "makespan" (300. +. 50. +. 500. +. 700. +. 500.) m.Engine.makespan
  | Engine.Policy_failed _ -> Alcotest.fail "cannot fail"

let test_cost_profile_recovery_at_committed_progress () =
  (* The first chunk commits 600/1000 of the work at t = 700; the
     failure at 900 must therefore pay the recovery priced at progress
     0.6, not at the in-flight position. *)
  let scenario = tiny_scenario () in
  let traces = traces_of_failures ~units:1 [ (0, [ 900. ]) ] in
  let profile ~progress = (100., if progress >= 0.5 then 300. else 100.) in
  match Engine.run_with_cost_profile ~cost_profile:profile ~scenario ~traces ~policy:period600 with
  | Engine.Completed m ->
      close "recovery priced at committed progress" 300. m.Engine.recovery_time;
      close "wasted" 200. m.Engine.wasted_time;
      close "makespan" (900. +. 50. +. 300. +. 400. +. 100.) m.Engine.makespan
  | Engine.Policy_failed _ -> Alcotest.fail "cannot fail"

(* -- telemetry -------------------------------------------------------------- *)

let contains_sub ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* The acceptance check for the tracing layer: a Weibull degradation
   run's traced spans must reconcile with [Engine.metrics] replicate
   by replicate, and the exported file must be Chrome trace_event
   JSON. *)
let test_traced_weibull_reconciles () =
  let job =
    Job.create
      ~dist:(Weibull.of_mtbf ~mtbf:2000. ~shape:0.7)
      ~processors:4
      ~machine:
        (Machine.create ~total_processors:4 ~downtime:40. ~overhead:(Overhead.constant 120.))
      ~work_time:20_000.
  in
  let scenario = Scenario.create ~horizon:1e8 ~start_time:0. job in
  let saw_failures = ref false in
  for replicate = 0 to 4 do
    let traces = Scenario.traces scenario ~replicate in
    let buf =
      Tracer.create_buffer ~capacity:65_536
        ~name:(Printf.sprintf "rep%d/periodic-1000" replicate)
        ()
    in
    match Engine.run_traced ~trace:buf ~scenario ~traces ~policy:(Policy.periodic "p" ~period:1000.) with
    | Engine.Completed m ->
        check Alcotest.int "no dropped events" 0 (Tracer.dropped buf);
        let t = Tracer.totals buf in
        close "work spans = useful_work" m.Engine.useful_work t.Tracer.work;
        close "checkpoint spans = checkpoint_time" m.Engine.checkpoint_time t.Tracer.checkpoint;
        close "waste spans = wasted_time" m.Engine.wasted_time t.Tracer.waste;
        close "recovery spans = recovery_time" m.Engine.recovery_time t.Tracer.recovery;
        close "downtime spans = stall_time" m.Engine.stall_time t.Tracer.downtime;
        check Alcotest.int "failure count" m.Engine.failures t.Tracer.failures;
        check Alcotest.int "chunk count" m.Engine.chunks t.Tracer.chunks;
        if m.Engine.failures > 0 then saw_failures := true;
        if replicate = 0 then begin
          let path = Filename.temp_file "ckpt_weibull_trace" ".json" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Ckpt_telemetry.Trace_export.write ~path [ buf ];
              let ic = open_in_bin path in
              let body =
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              check Alcotest.bool "chrome trace envelope" true
                (contains_sub ~needle:"\"traceEvents\"" body);
              check Alcotest.bool "named execution thread" true
                (contains_sub ~needle:"rep0/periodic-1000" body))
        end
    | Engine.Policy_failed _ -> Alcotest.fail "periodic cannot fail"
  done;
  check Alcotest.bool "at least one replicate saw failures" true !saw_failures

let weibull_scenario () =
  Scenario.create ~horizon:1e8 ~start_time:0.
    (Job.create
       ~dist:(Weibull.of_mtbf ~mtbf:2000. ~shape:0.7)
       ~processors:4
       ~machine:
         (Machine.create ~total_processors:4 ~downtime:40. ~overhead:(Overhead.constant 120.))
       ~work_time:20_000.)

(* Satellite of the waste-accounting layer: the progress-dependent-cost
   entry point reconciles with the event stream too — and now that
   Checkpoint/Recovery_complete events carry the engine's exact cost
   operand, the comparison is bitwise, not tolerance-based. *)
let test_traced_cost_profile_reconciles () =
  let scenario = weibull_scenario () in
  (* A genuinely varying profile so the exact-cost claim is exercised
     on values the constant-cost path never produces. *)
  let cost_profile ~progress = (120. +. (30. *. progress), 120. -. (20. *. progress)) in
  let saw_failures = ref false in
  for replicate = 0 to 4 do
    let traces = Scenario.traces scenario ~replicate in
    let buf =
      Tracer.create_buffer ~capacity:65_536
        ~name:(Printf.sprintf "cost-rep%d" replicate)
        ()
    in
    match
      Engine.run_with_cost_profile_traced ~trace:buf ~cost_profile ~scenario ~traces
        ~policy:(Policy.periodic "p" ~period:1000.)
    with
    | Engine.Completed m ->
        check Alcotest.int "no dropped events" 0 (Tracer.dropped buf);
        let t = Tracer.totals buf in
        let exact name a b =
          check Alcotest.bool (name ^ " bitwise") true (Int64.bits_of_float a = Int64.bits_of_float b)
        in
        exact "work" m.Engine.useful_work t.Tracer.work;
        exact "checkpoint" m.Engine.checkpoint_time t.Tracer.checkpoint;
        exact "waste" m.Engine.wasted_time t.Tracer.waste;
        exact "recovery" m.Engine.recovery_time t.Tracer.recovery;
        exact "downtime" m.Engine.stall_time t.Tracer.downtime;
        check Alcotest.int "failures" m.Engine.failures t.Tracer.failures;
        check Alcotest.int "chunks" m.Engine.chunks t.Tracer.chunks;
        if m.Engine.failures > 0 then saw_failures := true
    | Engine.Policy_failed _ -> Alcotest.fail "periodic cannot fail"
  done;
  check Alcotest.bool "at least one replicate saw failures" true !saw_failures

(* -- explain ---------------------------------------------------------------- *)

module Explain = Ckpt_simulator.Explain

let check_explained scenario =
  let policy = Policy.periodic "periodic-1000" ~period:1000. in
  let e = Explain.run ~scenario ~policy ~replicate:1 in
  check Alcotest.bool "decisions present" true (e.Explain.decisions <> []);
  check Alcotest.int "no dropped events" 0 e.Explain.dropped;
  check Alcotest.bool "reconciles bitwise" true (Explain.reconciles e);
  (* Every decision carries its rationale (nothing dropped), and the
     rationale's numbers are sane at the observed ages. *)
  List.iter
    (fun d ->
      match d.Explain.rationale with
      | None -> Alcotest.fail "decision without rationale"
      | Some r ->
          (* Weibull with shape < 1 legitimately has infinite hazard at
             age zero; only nan and non-positive values are bugs. *)
          check Alcotest.bool "hazard positive (possibly infinite)" true
            ((not (Float.is_nan r.Ckpt_policies.Rationale.hazard))
            && r.Ckpt_policies.Rationale.hazard > 0.);
          check Alcotest.bool "commit probability in (0, 1]" true
            (r.Ckpt_policies.Rationale.commit_probability > 0.
            && r.Ckpt_policies.Rationale.commit_probability <= 1.);
          check Alcotest.bool "expected loss within window" true
            (Float.is_nan r.Ckpt_policies.Rationale.expected_loss
            || (r.Ckpt_policies.Rationale.expected_loss >= 0.
               && r.Ckpt_policies.Rationale.expected_loss
                  <= r.Ckpt_policies.Rationale.window)))
    e.Explain.decisions;
  (* The instrumented replay must not perturb the execution. *)
  let plain =
    Engine.run ~scenario ~traces:(Scenario.traces scenario ~replicate:1) ~policy
  in
  check Alcotest.bool "replay bit-identical to plain run" true (plain = e.Explain.outcome);
  let rendered = Format.asprintf "%a" (Explain.print ~limit:5) e in
  check Alcotest.bool "footer reports exact reconciliation" true
    (contains_sub ~needle:"exact (bitwise)" rendered);
  check Alcotest.bool "footer reports the residual" true
    (contains_sub ~needle:"accounting residual" rendered)

let test_explain_weibull_reconciles () = check_explained (weibull_scenario ())

let test_explain_exponential_reconciles () =
  check_explained
    (Scenario.create ~horizon:1e8 ~start_time:0.
       (Job.create
          ~dist:(Exponential.of_mtbf ~mtbf:2000.)
          ~processors:4
          ~machine:
            (Machine.create ~total_processors:4 ~downtime:40.
               ~overhead:(Overhead.constant 120.))
          ~work_time:20_000.))

let test_explain_policy_failed () =
  let scenario = tiny_scenario () in
  let e =
    Explain.run ~scenario ~policy:(Policy.stateless "reject-all" (fun _ -> None)) ~replicate:0
  in
  (match e.Explain.declined with
  | Some (_, remaining) -> close "declined with all work left" 1000. remaining
  | None -> Alcotest.fail "expected a declined decision");
  check Alcotest.bool "never reconciles" false (Explain.reconciles e)

(* -- waste profile golden table --------------------------------------------- *)

let test_profile_accounting_identity () =
  (* Every row of a degradation table carries a waste profile whose
     component means sum back to the mean makespan within the engine's
     accounting tolerance, whose quantiles are ordered, and whose
     fractions sum to 1. *)
  let scenario = eval_scenario () in
  let table =
    Evaluation.degradation_table ~scenario
      ~policies:[ Policy.periodic "a" ~period:900.; Policy.periodic "b" ~period:2000. ]
      ~replicates:8
  in
  List.iter
    (fun (r : Evaluation.policy_result) ->
      match r.Evaluation.profile with
      | None -> Alcotest.fail (r.Evaluation.policy_name ^ ": missing profile")
      | Some p ->
          let sum =
            p.Evaluation.useful_s +. p.Evaluation.checkpoint_s +. p.Evaluation.wasted_s
            +. p.Evaluation.recovery_s +. p.Evaluation.stall_s
          in
          check Alcotest.bool
            (Printf.sprintf "%s: components sum to mk_mean (%.17g vs %.17g)"
               r.Evaluation.policy_name sum p.Evaluation.mk_mean)
            true
            (abs_float (sum -. p.Evaluation.mk_mean) <= 1e-6 *. p.Evaluation.mk_mean);
          check Alcotest.bool "mk_mean agrees with average_makespan" true
            (abs_float (p.Evaluation.mk_mean -. r.Evaluation.average_makespan)
            <= 1e-6 *. p.Evaluation.mk_mean);
          check Alcotest.bool "quantiles ordered" true
            (p.Evaluation.mk_p50 <= p.Evaluation.mk_p95
            && p.Evaluation.mk_p95 <= p.Evaluation.mk_p99);
          let fracs =
            p.Evaluation.useful_frac +. p.Evaluation.checkpoint_frac
            +. p.Evaluation.wasted_frac +. p.Evaluation.recovery_frac
            +. p.Evaluation.stall_frac
          in
          close ~tol:1e-9 "fractions sum to 1" 1. fracs;
          check Alcotest.bool "ci half-width positive" true (p.Evaluation.mk_ci95 > 0.))
    (table.Evaluation.lower_bound :: table.Evaluation.results)

let test_profile_stripe_sched_bit_identity () =
  (* The tentpole determinism guarantee: the distributional profiles —
     exact sums and log histograms — reduce to the same bits at every
     stripe width and under both schedulers.  (The scalar Welford
     columns are only stripe-invariant within one width — the Chan
     merge tree shape matters to their last bits, which is exactly why
     CKPT_SWEEP_STRIPE participates in the sweep-store key; the
     Vector-derived profiles are the stronger, width-free promise.) *)
  let policies () =
    [ Policy.periodic "a" ~period:900.; Policy.periodic "b" ~period:2000. ]
  in
  let profiles_with ~stripe ~sched =
    with_env "CKPT_SWEEP_STRIPE" (string_of_int stripe) (fun () ->
        with_env "CKPT_SCHED" sched (fun () ->
            let t =
              Evaluation.degradation_table ~scenario:(eval_scenario ())
                ~policies:(policies ()) ~replicates:9
            in
            List.map
              (fun (r : Evaluation.policy_result) -> r.Evaluation.profile)
              (t.Evaluation.lower_bound :: t.Evaluation.results)))
  in
  let reference = profiles_with ~stripe:16 ~sched:"seq" in
  check Alcotest.int "profiles present" 3 (List.length (List.filter_map Fun.id reference));
  List.iter
    (fun stripe ->
      List.iter
        (fun sched ->
          let p = profiles_with ~stripe ~sched in
          check Alcotest.bool
            (Printf.sprintf "stripe=%d sched=%s profiles == reference, bit for bit" stripe
               sched)
            true
            (compare reference p = 0))
        [ "seq"; "steal" ])
    [ 1; 4; 16 ]

(* -- batch (striped lockstep) engine ---------------------------------------- *)

(* The tentpole guarantee: every slot of [Engine.run_stripe] is
   bit-identical to a scalar [Engine.run] on the same trace set —
   across distributions, policy kinds (memoizable pure-scalar,
   non-pure, declining mid-run), stripe widths, and a nonzero
   start_time (exercising the initial-lifetime template).  The
   declining policy makes some slots finish as [Policy_failed] while
   others keep stepping: the straggler compaction path. *)
let prop_batch_equals_scalar =
  QCheck2.Test.make ~name:"run_stripe slot k == run on traces k (dist x policy x width)"
    ~count:40
    QCheck2.Gen.(quad (int_range 0 1) (int_range 0 2) (int_range 0 10_000) (int_range 0 2))
    (fun (dist_i, policy_i, replicate, width_i) ->
      let dist =
        if dist_i = 0 then Exponential.of_mtbf ~mtbf:2500.
        else Weibull.of_mtbf ~mtbf:2500. ~shape:0.7
      in
      let scenario =
        Scenario.create ~horizon:1e7
          ~start_time:(if replicate land 1 = 0 then 0. else 2000.)
          (Job.create ~dist ~processors:2
             ~machine:
               (Machine.create ~total_processors:2 ~downtime:40.
                  ~overhead:(Overhead.constant 120.))
             ~work_time:15_000.)
      in
      let policy =
        match policy_i with
        | 0 -> Policy.periodic "p" ~period:1200.
        | 1 ->
            (* Pure-scalar (memoized) but declining below a remaining
               threshold: Policy_failed slots become stragglers the
               live-slot compaction must not disturb. *)
            Policy.pure_scalar "quits" (fun obs ->
                if obs.Policy.remaining < 6000. then None else Some 1500.)
        | _ ->
            (* Not declared pure: per-slot instances, no memo; the
               decision depends on min_age so observations genuinely
               vary across slots. *)
            Policy.stateless "agey" (fun obs ->
                Some (Float.max 400. (1000. +. (0.1 *. obs.Policy.min_age))))
      in
      let width = [| 1; 3; 16 |].(width_i) in
      let traces =
        Array.init width (fun k -> Scenario.traces scenario ~replicate:(replicate + k))
      in
      let scalar = Array.map (fun tr -> Engine.run ~scenario ~traces:tr ~policy) traces in
      let batch = Engine.run_stripe ~scenario ~traces ~policy () in
      compare scalar batch = 0)

let test_batch_dp_policy_bit_identical () =
  (* DPNextFailure is the policy the batch engine's lazy age ledger
     and batched hazard lookups exist for — and, being stateful, the
     one that must never hit the decision memo. *)
  let job =
    Job.create
      ~dist:(Weibull.of_mtbf ~mtbf:1e6 ~shape:0.7)
      ~processors:64
      ~machine:
        (Machine.create ~total_processors:64 ~downtime:60. ~overhead:(Overhead.constant 600.))
      ~work_time:5e5
  in
  let scenario = Scenario.create ~horizon:1e7 ~start_time:0. job in
  let policy = Ckpt_policies.Dp_policies.dp_next_failure ~max_states:60 job in
  let traces = Array.init 3 (fun replicate -> Scenario.traces scenario ~replicate) in
  let scalar = Array.map (fun tr -> Engine.run ~scenario ~traces:tr ~policy) traces in
  let batch = Engine.run_stripe ~scenario ~traces ~policy () in
  check Alcotest.bool "DP policy batch == scalar" true (compare scalar batch = 0)

let test_engine_matrix_bit_identity () =
  (* Golden matrix: the full degradation table (Welford columns
     included) at every CKPT_ENGINE x CKPT_SCHED combination equals
     the scalar/sequential reference of the same stripe width. *)
  let policies () =
    [ Policy.periodic "a" ~period:900.; Policy.periodic "b" ~period:2000.;
      Ckpt_policies.Dp_policies.dp_makespan ~cap_states:40 (eval_scenario ()).Scenario.job ]
  in
  let table_with ~engine ~sched ~stripe =
    with_env "CKPT_ENGINE" engine (fun () ->
        with_env "CKPT_SCHED" sched (fun () ->
            with_env "CKPT_SWEEP_STRIPE" (string_of_int stripe) (fun () ->
                Evaluation.degradation_table ~scenario:(eval_scenario ())
                  ~policies:(policies ()) ~replicates:9)))
  in
  List.iter
    (fun stripe ->
      let reference = table_with ~engine:"scalar" ~sched:"seq" ~stripe in
      List.iter
        (fun (engine, sched) ->
          let t = table_with ~engine ~sched ~stripe in
          check Alcotest.bool
            (Printf.sprintf "engine=%s sched=%s stripe=%d == scalar/seq reference" engine
               sched stripe)
            true
            (compare reference t = 0))
        [ ("batch", "seq"); ("scalar", "steal"); ("batch", "steal") ])
    [ 1; 4; 16 ]

let test_batch_memo_hits () =
  (* Eight identical failure-free slots under a pure-scalar policy:
     every slot's decisions are the same observation tuple, so the
     stripe pays one policy evaluation per distinct decision and the
     memo serves the other seven slots. *)
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ~prefix:"engine/" ())
    (fun () ->
      Metrics.reset ~prefix:"engine/" ();
      let scenario = tiny_scenario () in
      let width = 8 in
      let traces = Array.init width (fun _ -> traces_of_failures ~units:1 [ (0, []) ]) in
      let outcomes = Engine.run_stripe ~scenario ~traces ~policy:period600 () in
      Array.iter
        (function
          | Engine.Completed _ -> ()
          | Engine.Policy_failed _ -> Alcotest.fail "periodic cannot fail")
        outcomes;
      let counter name =
        match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> 0
      in
      (* Periodic-600 over W = 1000 makes exactly two decisions per
         slot (chunks 600 and 400). *)
      check Alcotest.int "distinct decisions solved once" 2
        (counter "engine/decision_memo_misses");
      check Alcotest.int "remaining slots served by the memo"
        (2 * (width - 1))
        (counter "engine/decision_memo_hits"))

let test_selected_kind_env () =
  check Alcotest.bool "default is batch" true
    (with_env "CKPT_ENGINE" "" (fun () -> Engine.selected_kind () = Engine.Batch));
  check Alcotest.bool "scalar opt-out" true
    (with_env "CKPT_ENGINE" "scalar" (fun () -> Engine.selected_kind () = Engine.Scalar));
  check Alcotest.bool "explicit batch" true
    (with_env "CKPT_ENGINE" "batch" (fun () -> Engine.selected_kind () = Engine.Batch));
  check Alcotest.bool "malformed falls back to batch" true
    (with_env "CKPT_ENGINE" "turbo" (fun () -> Engine.selected_kind () = Engine.Batch))

let test_instrument_scoped_resets () =
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ~prefix:"stage/" ())
    (fun () ->
      let calls () =
        match Metrics.find "stage/scoping-test" with
        | Some (Metrics.Timer { calls; _ }) -> calls
        | _ -> 0
      in
      Instrument.scoped ~label:"first study" (fun () ->
          check Alcotest.bool "in scope" true (Instrument.in_scope ());
          Instrument.time "scoping-test" (fun () -> ());
          Instrument.time "scoping-test" (fun () -> ());
          (* A nested scope must not steal ownership of the timers. *)
          Instrument.scoped ~label:"nested" (fun () ->
              Instrument.time "scoping-test" (fun () -> ()));
          check Alcotest.int "accumulates within one scope" 3 (calls ()));
      check Alcotest.bool "out of scope" false (Instrument.in_scope ());
      Instrument.scoped ~label:"second study" (fun () ->
          Instrument.time "scoping-test" (fun () -> ());
          check Alcotest.int "fresh timers per outermost scope" 1 (calls ())))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_metrics_partition; prop_metrics_partition_weibull; prop_batch_equals_scalar ]

let () =
  Alcotest.run "simulator"
    [
      ( "engine algebra",
        [
          Alcotest.test_case "no failures" `Quick test_engine_no_failures;
          Alcotest.test_case "failure mid-chunk" `Quick test_engine_single_failure_mid_chunk;
          Alcotest.test_case "failure during checkpoint" `Quick test_engine_failure_during_checkpoint;
          Alcotest.test_case "failure at commit instant" `Quick test_engine_failure_at_commit_instant;
          Alcotest.test_case "failure during recovery" `Quick test_engine_failure_during_recovery;
          Alcotest.test_case "own downtime absorbs" `Quick test_engine_own_downtime_absorbs;
          Alcotest.test_case "cascading downtimes" `Quick test_engine_cascading_downtime;
          Alcotest.test_case "grouped units equivalent" `Quick test_engine_grouped_units_equivalent;
          Alcotest.test_case "policy failure outcome" `Quick test_engine_policy_failed;
          Alcotest.test_case "zero chunks terminate" `Quick test_engine_zero_chunk_policy_terminates;
          Alcotest.test_case "oversized chunk clamped" `Quick test_engine_oversized_chunk_clamped;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "DP fast paths bit-identical" `Quick
            test_engine_fast_paths_bit_identical;
        ] );
      ( "lower bound",
        [
          Alcotest.test_case "no failures" `Quick test_lower_bound_no_failures;
          Alcotest.test_case "just-in-time checkpoint" `Quick test_lower_bound_just_in_time;
          Alcotest.test_case "idles when too close" `Quick test_lower_bound_idle_when_too_close;
          Alcotest.test_case "beats every policy" `Quick test_lower_bound_beats_policies;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "defaults" `Quick test_scenario_defaults;
          Alcotest.test_case "invalid" `Quick test_scenario_invalid;
          Alcotest.test_case "grouped traces" `Quick test_scenario_grouped_traces;
          Alcotest.test_case "initial lifetimes" `Quick test_initial_lifetime_starts;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "degradations >= 1" `Quick test_evaluation_degradations;
          Alcotest.test_case "failed policy excluded" `Quick test_evaluation_failed_policy_excluded;
          Alcotest.test_case "average makespan" `Quick test_average_makespan;
          Alcotest.test_case "parallel = serial (CKPT_DOMAINS)" `Quick
            test_evaluation_parallel_deterministic;
          Alcotest.test_case "steal scheduler = seq (CKPT_SCHED matrix)" `Quick
            test_evaluation_steal_scheduler_deterministic;
          Alcotest.test_case "no nan in printed tables" `Quick test_evaluation_no_nan_printed;
          Alcotest.test_case "trace cache reuse" `Quick test_trace_cache_reuses_sets;
          Alcotest.test_case "invalid" `Quick test_evaluation_invalid;
          Alcotest.test_case "profile accounting identity" `Quick
            test_profile_accounting_identity;
          Alcotest.test_case "profile stripe x sched bit-identity" `Quick
            test_profile_stripe_sched_bit_identity;
        ] );
      ( "batch engine",
        [
          Alcotest.test_case "DP policy bit-identical" `Quick test_batch_dp_policy_bit_identical;
          Alcotest.test_case "engine x sched x stripe golden matrix" `Quick
            test_engine_matrix_bit_identity;
          Alcotest.test_case "decision memo hits" `Quick test_batch_memo_hits;
          Alcotest.test_case "CKPT_ENGINE selection" `Quick test_selected_kind_env;
        ] );
      ( "period search",
        [
          Alcotest.test_case "default factors" `Quick test_default_factors;
          Alcotest.test_case "best period" `Quick test_best_period_sane;
          Alcotest.test_case "fallback never zero" `Quick test_best_period_fallback_not_zero;
          Alcotest.test_case "sweep" `Quick test_sweep;
        ] );
      ( "theory vs simulation",
        [
          Alcotest.test_case "OptExp reproduces Theorem 1" `Quick
            test_simulated_optexp_matches_theorem1;
        ] );
      ( "cost profile",
        [
          Alcotest.test_case "constant profile = run" `Quick test_cost_profile_constant_matches_run;
          Alcotest.test_case "growing checkpoint cost" `Quick test_cost_profile_growing_cost;
          Alcotest.test_case "recovery cost at progress" `Quick test_cost_profile_recovery_cost;
          Alcotest.test_case "recovery cost at committed progress" `Quick
            test_cost_profile_recovery_at_committed_progress;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "weibull trace reconciles with metrics" `Quick
            test_traced_weibull_reconciles;
          Alcotest.test_case "cost-profile trace reconciles bitwise" `Quick
            test_traced_cost_profile_reconciles;
          Alcotest.test_case "instrument scoping" `Quick test_instrument_scoped_resets;
        ] );
      ( "explain",
        [
          Alcotest.test_case "weibull reconciles exactly" `Quick
            test_explain_weibull_reconciles;
          Alcotest.test_case "exponential reconciles exactly" `Quick
            test_explain_exponential_reconciles;
          Alcotest.test_case "declining policy reported" `Quick test_explain_policy_failed;
        ] );
      ( "significance",
        [
          Alcotest.test_case "binomial p-values" `Quick test_binomial_p_values;
          Alcotest.test_case "detects dominance" `Quick test_compare_policies_detects_dominance;
          Alcotest.test_case "self comparison" `Quick test_compare_policy_with_itself;
        ] );
      ( "energy",
        [
          Alcotest.test_case "of_metrics" `Quick test_energy_of_metrics;
          Alcotest.test_case "invalid" `Quick test_energy_invalid;
          Alcotest.test_case "tradeoff rows" `Quick test_energy_tradeoff_rows;
        ] );
      ("properties", qcheck_cases);
    ]
