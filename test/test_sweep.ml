(* Resumable sweep harness: atomic file primitives, bit-exact
   serialization, and the resume/invalidation semantics of the
   content-addressed store. *)

module Atomic_file = Ckpt_store.Atomic_file
module Summary = Ckpt_numerics.Summary
module Scenario = Ckpt_simulator.Scenario
module Evaluation = Ckpt_simulator.Evaluation
module Job = Ckpt_policies.Job
module Machine = Ckpt_platform.Machine
module Overhead = Ckpt_platform.Overhead
module Exponential = Ckpt_distributions.Exponential
module Sweep_store = Ckpt_experiments.Sweep_store

let check = Alcotest.check

(* Structural equality via [compare], which unlike [=] treats equal
   NaNs as equal (std over a single success is NaN). *)
let same_table msg a b =
  Alcotest.(check bool) msg true (compare a b = 0)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckpt_sweep_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  Atomic_file.mkdir_p d;
  d

let with_env key value f =
  let previous = Sys.getenv_opt key in
  Unix.putenv key value;
  Fun.protect f ~finally:(fun () ->
      Unix.putenv key (match previous with Some v -> v | None -> ""))

(* -- Atomic_file ------------------------------------------------------------- *)

let test_mkdir_p () =
  let root = fresh_dir () in
  let nested = Filename.concat (Filename.concat root "a/b") "c" in
  Atomic_file.mkdir_p nested;
  Alcotest.(check bool) "nested path exists" true (Sys.is_directory nested);
  (* Idempotent on an existing directory. *)
  Atomic_file.mkdir_p nested;
  Alcotest.(check bool) "still a directory" true (Sys.is_directory nested)

let test_atomic_write () =
  let root = fresh_dir () in
  let path = Filename.concat root "sub/dir/artifact.csv" in
  Atomic_file.write ~path "first\n";
  check Alcotest.(option string) "contents" (Some "first\n") (Atomic_file.read path);
  Atomic_file.write ~path "second\n";
  check Alcotest.(option string) "overwritten whole" (Some "second\n") (Atomic_file.read path);
  let leftovers =
    Sys.readdir (Filename.dirname path)
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  check Alcotest.(list string) "no tempfile left behind" [] leftovers

let test_remove_idempotent () =
  let root = fresh_dir () in
  let path = Filename.concat root "victim" in
  Atomic_file.write ~path "x";
  Atomic_file.remove path;
  Alcotest.(check bool) "gone" false (Sys.file_exists path);
  (* INV-2: removing a missing file is a no-op, not an error. *)
  Atomic_file.remove path;
  Atomic_file.remove path;
  check Alcotest.(option string) "read of missing file" None (Atomic_file.read path)

(* -- Summary serialization --------------------------------------------------- *)

let test_summary_roundtrip () =
  let exact s =
    match Summary.deserialize (Summary.serialize s) with
    | None -> Alcotest.fail "deserialize failed"
    | Some s' -> Alcotest.(check bool) "bit-identical summary" true (compare s s' = 0)
  in
  exact Summary.empty;
  exact (Summary.add Summary.empty 1.5);
  exact (Summary.of_array [| 0.1; -3.75e-300; 7.25e300; 1e-9 |]);
  exact (Summary.add (Summary.add Summary.empty infinity) neg_infinity);
  check Alcotest.(option reject) "garbage rejected" None
    (Option.map ignore (Summary.deserialize "1 2 3"));
  check Alcotest.(option reject) "negative count rejected" None
    (Option.map ignore (Summary.deserialize "-1 0x1p0 0x1p0 0x1p0 0x1p0"))

let prop_summary_roundtrip =
  QCheck2.Test.make ~name:"summary serialize/deserialize is bit-exact" ~count:300
    QCheck2.Gen.(list_size (int_range 0 30) (float_range (-1e9) 1e9))
    (fun xs ->
      let s = Summary.add_all Summary.empty xs in
      match Summary.deserialize (Summary.serialize s) with
      | None -> false
      | Some s' -> compare s s' = 0)

(* -- stripe partials --------------------------------------------------------- *)

let eval_scenario ?(seed = 0x5EEDL) () =
  Scenario.create ~seed ~horizon:1e7 ~start_time:0.
    (Job.create
       ~dist:(Exponential.of_mtbf ~mtbf:4000.)
       ~processors:1
       ~machine:
         (Machine.create ~total_processors:1 ~downtime:50. ~overhead:(Overhead.constant 100.))
       ~work_time:20_000.)

let policies job = [ Ckpt_policies.Young.policy job; Ckpt_policies.Optexp.policy job ]

let test_partial_roundtrip () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let scenario = eval_scenario () in
      let policies = policies scenario.Scenario.job in
      let replicates = 6 in
      check Alcotest.int "stripe count" 3 (Evaluation.stripe_count ~replicates);
      let partials =
        List.init 3 (fun stripe ->
            let p = Evaluation.stripe_partial ~scenario ~policies ~replicates ~stripe in
            match Evaluation.deserialize_partial (Evaluation.serialize_partial p) with
            | None -> Alcotest.fail "partial did not round-trip"
            | Some p' -> p')
      in
      same_table "table from reloaded partials == plain table"
        (Evaluation.degradation_table ~scenario ~policies ~replicates)
        (Evaluation.table_of_partials partials);
      check Alcotest.(option reject) "corrupt partial rejected" None
        (Option.map ignore (Evaluation.deserialize_partial "ckpt-eval-partial/1\ngarbage")))

(* -- store resume semantics -------------------------------------------------- *)

let unit_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".part")
  |> List.sort compare

let run_store ?(seed = 0x5EEDL) ~dir ~replicates () =
  let scenario = eval_scenario ~seed () in
  let policies = policies scenario.Scenario.job in
  Sweep_store.degradation_table
    ~store:(Sweep_store.create ~dir)
    ~experiment:"unit_test" ~scenario ~policies ~replicates ()

let stats_since f =
  Sweep_store.reset_stats ();
  let v = f () in
  (v, Sweep_store.stats ())

let test_resume_bit_identical () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let dir = fresh_dir () in
      let replicates = 6 in
      let scenario = eval_scenario () in
      let plain =
        Evaluation.degradation_table ~scenario
          ~policies:(policies scenario.Scenario.job)
          ~replicates
      in
      let fresh, s1 = stats_since (fun () -> run_store ~dir ~replicates ()) in
      (* Structural [=]: these tables carry no NaN (>= 2 usable
         replicates), so bit-identity is checked at full strength. *)
      Alcotest.(check bool) "store table == plain table, bit for bit" true (plain = fresh);
      check Alcotest.int "all units computed" 3 s1.Sweep_store.computed;
      check Alcotest.int "units on disk" 3 (List.length (unit_files dir));
      let resumed, s2 = stats_since (fun () -> run_store ~dir ~replicates ()) in
      Alcotest.(check bool) "resumed == fresh" true (fresh = resumed);
      check Alcotest.int "all units skipped" 3 s2.Sweep_store.skipped;
      check Alcotest.int "nothing recomputed" 0 s2.Sweep_store.computed;
      (* Kill-mid-sweep stand-in: lose one unit, resume. *)
      (match unit_files dir with
      | first :: _ -> Atomic_file.remove (Filename.concat dir first)
      | [] -> Alcotest.fail "no unit files");
      let recovered, s3 = stats_since (fun () -> run_store ~dir ~replicates ()) in
      Alcotest.(check bool) "recovered == fresh" true (fresh = recovered);
      check Alcotest.int "only the lost unit recomputed" 1 s3.Sweep_store.computed;
      check Alcotest.int "the others skipped" 2 s3.Sweep_store.skipped)

let test_invalidation_on_corruption () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let dir = fresh_dir () in
      let fresh, _ = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      (match unit_files dir with
      | first :: _ ->
          Atomic_file.write ~path:(Filename.concat dir first) "ckpt-sweep/1 bogus stripe=0\nx"
      | [] -> Alcotest.fail "no unit files");
      let recovered, s = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      Alcotest.(check bool) "corruption recomputed to the same table" true (fresh = recovered);
      check Alcotest.int "one unit invalidated" 1 s.Sweep_store.invalidated;
      check Alcotest.int "one unit recomputed" 1 s.Sweep_store.computed;
      check Alcotest.int "the others skipped" 2 s.Sweep_store.skipped)

let test_changed_params_invalidate () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let dir = fresh_dir () in
      let t1, _ = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      let files1 = unit_files dir in
      (* A different seed must hash to different unit keys: nothing is
         reused, nothing is overwritten (snippet INV-1 — concurrent
         sweeps with different parameters never collide). *)
      let t2, s = stats_since (fun () -> run_store ~seed:7L ~dir ~replicates:6 ()) in
      check Alcotest.int "nothing skipped under a new seed" 0 s.Sweep_store.skipped;
      check Alcotest.int "all units computed afresh" 3 s.Sweep_store.computed;
      let files2 = unit_files dir in
      check Alcotest.int "both sweeps' units coexist" 6 (List.length files2);
      List.iter
        (fun f -> Alcotest.(check bool) ("kept " ^ f) true (List.mem f files2))
        files1;
      Alcotest.(check bool) "different seeds give different tables" false (compare t1 t2 = 0);
      (* And the original sweep still resumes entirely from its own units. *)
      let t1', s' = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      Alcotest.(check bool) "no cross-seed contamination" true (t1 = t1');
      check Alcotest.int "original fully skipped" 3 s'.Sweep_store.skipped)

let test_stripe_size_changes_keys () =
  let dir = fresh_dir () in
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      ignore (run_store ~dir ~replicates:6 ()));
  let files2 = unit_files dir in
  (* The stripe layout participates in the key: units merged at one
     width must never be reused at another (the merge tree differs). *)
  with_env "CKPT_SWEEP_STRIPE" "3" (fun () ->
      let _, s = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      check Alcotest.int "no stripe-2 unit reused at width 3" 0 s.Sweep_store.skipped);
  List.iter
    (fun f -> Alcotest.(check bool) ("kept " ^ f) true (List.mem f (unit_files dir)))
    files2

let prop_prefix_resume =
  (* Any subset of completed units + resume == a fresh run: delete a
     random subset of the 3 unit files and re-run. *)
  QCheck2.Test.make ~name:"any completed-unit prefix resumes to the fresh table" ~count:8
    QCheck2.Gen.(int_range 0 7)
    (fun mask ->
      with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
          let dir = fresh_dir () in
          let fresh = run_store ~dir ~replicates:6 () in
          List.iteri
            (fun i f -> if mask land (1 lsl i) <> 0 then Atomic_file.remove (Filename.concat dir f))
            (unit_files dir);
          let resumed = run_store ~dir ~replicates:6 () in
          fresh = resumed))

let test_floats_resume () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let dir = fresh_dir () in
      let scenario = eval_scenario () in
      let f replicate = Float.of_int replicate *. 1.5 in
      let run () =
        Sweep_store.floats
          ~store:(Sweep_store.create ~dir)
          ~experiment:"floats_test" ~scenario ~replicates:5 ~f ()
      in
      let fresh, s1 = stats_since run in
      check
        Alcotest.(array (float 0.))
        "floats == Array.init replicates f" (Array.init 5 f) fresh;
      check Alcotest.int "three stripes computed" 3 s1.Sweep_store.computed;
      let resumed, s2 = stats_since run in
      check Alcotest.(array (float 0.)) "resumed floats identical" fresh resumed;
      check Alcotest.int "all stripes skipped" 3 s2.Sweep_store.skipped;
      check Alcotest.int "nothing recomputed" 0 s2.Sweep_store.computed)

let test_vectors_resume () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let dir = fresh_dir () in
      let scenario = eval_scenario () in
      (* Row 3 is all-NaN — the "failed replicate" marker must survive
         the hex round trip through the store. *)
      let f replicate =
        if replicate = 3 then Array.make 4 nan
        else Array.init 4 (fun i -> float_of_int ((replicate * 4) + i) *. 0.5)
      in
      let run () =
        Sweep_store.vectors
          ~store:(Sweep_store.create ~dir)
          ~experiment:"vectors_test" ~scenario ~replicates:5 ~width:4 ~f ()
      in
      let fresh, s1 = stats_since run in
      check Alcotest.bool "vectors == Array.init replicates f" true
        (compare (Array.init 5 f) fresh = 0);
      check Alcotest.int "three stripes computed" 3 s1.Sweep_store.computed;
      let resumed, s2 = stats_since run in
      check Alcotest.bool "resumed vectors bit-identical" true (compare fresh resumed = 0);
      check Alcotest.int "all stripes skipped" 3 s2.Sweep_store.skipped;
      (* Same scenario and replicates under a different kind must not
         collide with the floats units. *)
      let floats, s3 =
        stats_since (fun () ->
            Sweep_store.floats
              ~store:(Sweep_store.create ~dir)
              ~experiment:"vectors_test" ~scenario ~replicates:5
              ~f:(fun r -> float_of_int r)
              ())
      in
      check Alcotest.int "distinct kind computes afresh" 3 s3.Sweep_store.computed;
      check Alcotest.(array (float 0.)) "floats unaffected" (Array.init 5 float_of_int) floats)

(* -- claim protocol and worker mode ------------------------------------------ *)

let test_create_exclusive () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "unit.part.claim" in
  Alcotest.(check bool) "first create wins" true (Atomic_file.create_exclusive ~path "a");
  Alcotest.(check bool) "second create loses" false (Atomic_file.create_exclusive ~path "b");
  check Alcotest.(option string) "winner's payload intact" (Some "a") (Atomic_file.read path);
  Atomic_file.remove path;
  Alcotest.(check bool) "create after release wins again" true
    (Atomic_file.create_exclusive ~path "c");
  Alcotest.(check bool) "mtime readable" true
    (Option.is_some (Atomic_file.modification_time path));
  check
    Alcotest.(option (float 0.))
    "mtime of missing file" None
    (Atomic_file.modification_time (Filename.concat dir "absent"))

let test_claim_staleness () =
  let dir = fresh_dir () in
  let host = Unix.gethostname () in
  let now = Unix.gettimeofday () in
  let claim name ~pid ~host ~time =
    let path = Filename.concat dir name in
    Sweep_store.Claim.write ~path ~pid ~host ~time;
    path
  in
  let live = claim "live.claim" ~pid:(Unix.getpid ()) ~host ~time:now in
  Alcotest.(check bool) "live same-host claim is fresh" false
    (Sweep_store.Claim.stale ~now live);
  (* A SIGKILLed worker leaves exactly this: same host, dead pid. *)
  let dead = claim "dead.claim" ~pid:999_999_999 ~host ~time:now in
  Alcotest.(check bool) "dead-pid same-host claim is stale" true
    (Sweep_store.Claim.stale ~now dead);
  let foreign = claim "foreign.claim" ~pid:999_999_999 ~host:"elsewhere.example" ~time:now in
  Alcotest.(check bool) "fresh foreign-host claim is kept (no pid check)" false
    (Sweep_store.Claim.stale ~now foreign);
  Alcotest.(check bool) "expired foreign-host claim is stale" true
    (Sweep_store.Claim.stale ~now:(now +. Sweep_store.Claim.ttl () +. 1.) foreign);
  with_env "CKPT_SWEEP_CLAIM_TTL" "60" (fun () ->
      check Alcotest.(float 0.) "ttl is env-tunable" 60. (Sweep_store.Claim.ttl ());
      Alcotest.(check bool) "stale under the shorter ttl" true
        (Sweep_store.Claim.stale ~now:(now +. 61.) foreign));
  (* A claim whose payload has not landed yet (torn write) ages from
     its mtime instead of being treated as corrupt. *)
  let torn = Filename.concat dir "torn.claim" in
  Atomic_file.write ~path:torn "";
  Alcotest.(check bool) "empty payload is fresh now" false
    (Sweep_store.Claim.stale ~now:(Unix.gettimeofday ()) torn);
  Alcotest.(check bool) "empty payload ages out" true
    (Sweep_store.Claim.stale
       ~now:(Unix.gettimeofday () +. Sweep_store.Claim.ttl () +. 1.)
       torn);
  Alcotest.(check bool) "missing claim is not stale" false
    (Sweep_store.Claim.stale ~now (Filename.concat dir "absent.claim"))

let plant_live_claim path =
  Sweep_store.Claim.write
    ~path:(Sweep_store.Claim.path path)
    ~pid:(Unix.getpid ())
    ~host:(Unix.gethostname ())
    ~time:(Unix.gettimeofday ())

let in_worker_mode f =
  Sweep_store.set_worker_mode true;
  Fun.protect ~finally:(fun () -> Sweep_store.set_worker_mode false) f

let test_worker_mode_claims () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let refdir = fresh_dir () in
      let reference = run_store ~dir:refdir ~replicates:6 () in
      let dir = fresh_dir () in
      let store = Sweep_store.create ~dir in
      in_worker_mode (fun () ->
          let t, s = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
          check Alcotest.int "lone worker computed every unit" 3 s.Sweep_store.computed;
          check Alcotest.int "one claim won per unit" 3 s.Sweep_store.claimed;
          check Alcotest.int "no busy units" 0 s.Sweep_store.busy;
          Alcotest.(check bool) "lone worker reproduces the table" true
            (compare reference t = 0));
      check Alcotest.int "claims all released" 0 (List.length (Sweep_store.claims store));
      (* The enumeration API sees what the sweep wrote. *)
      let units = Sweep_store.units store in
      check Alcotest.(list int) "unit stripes enumerated" [ 0; 1; 2 ]
        (List.map (fun u -> u.Sweep_store.u_stripe) units);
      List.iter
        (fun u ->
          check Alcotest.string "experiment parsed" "unit_test" u.Sweep_store.u_experiment;
          check Alcotest.int "digest is 32 hex chars" 32
            (String.length u.Sweep_store.u_digest))
        units;
      (* Simulate a live competing worker mid-compute on one unit:
         result absent, claim fresh and owned by a live pid. *)
      let victim = List.hd units in
      Atomic_file.remove victim.Sweep_store.u_path;
      plant_live_claim victim.Sweep_store.u_path;
      in_worker_mode (fun () ->
          let _, s = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
          check Alcotest.int "held unit skipped as busy" 1 s.Sweep_store.busy;
          check Alcotest.int "other units loaded" 2 s.Sweep_store.skipped;
          check Alcotest.int "nothing computed through a live claim" 0
            s.Sweep_store.computed);
      (* The canonical (non-worker) pass ignores claims entirely. *)
      let t, s = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      check Alcotest.int "parent recomputed through the claim" 1 s.Sweep_store.computed;
      Alcotest.(check bool) "canonical merge == reference" true (compare reference t = 0);
      check Alcotest.int "leftover claim reaped" 1 (Sweep_store.reap_claims ~all:true store);
      check Alcotest.int "store clean" 0 (List.length (Sweep_store.claims store)))

let test_worker_mode_reaps_dead_claims () =
  with_env "CKPT_SWEEP_STRIPE" "2" (fun () ->
      let dir = fresh_dir () in
      let store = Sweep_store.create ~dir in
      let reference, _ = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
      (match Sweep_store.units store with
      | missing :: corrupt :: _ ->
          (* Unit 0: a worker died before persisting — no result, dead
             claim.  Unit 1: it died mid-write badly enough to corrupt
             the file (simulated), dead claim on top — the checksum
             path must still invalidate it under re-claim. *)
          Atomic_file.remove missing.Sweep_store.u_path;
          Sweep_store.Claim.write
            ~path:(Sweep_store.Claim.path missing.Sweep_store.u_path)
            ~pid:999_999_999 ~host:(Unix.gethostname ()) ~time:(Unix.gettimeofday ());
          Atomic_file.write ~path:corrupt.Sweep_store.u_path
            "ckpt-sweep/1 bogus stripe=0\nx";
          Sweep_store.Claim.write
            ~path:(Sweep_store.Claim.path corrupt.Sweep_store.u_path)
            ~pid:999_999_999 ~host:(Unix.gethostname ()) ~time:(Unix.gettimeofday ())
      | _ -> Alcotest.fail "expected 3 units");
      in_worker_mode (fun () ->
          let t, s = stats_since (fun () -> run_store ~dir ~replicates:6 ()) in
          check Alcotest.int "both dead claims reaped" 2 s.Sweep_store.reaped;
          check Alcotest.int "both units recomputed" 2 s.Sweep_store.computed;
          check Alcotest.int "corrupt unit invalidated by checksum" 1
            s.Sweep_store.invalidated;
          check Alcotest.int "no unit left busy" 0 s.Sweep_store.busy;
          Alcotest.(check bool) "recovered table == reference" true
            (compare reference t = 0));
      check Alcotest.int "no claims left" 0 (List.length (Sweep_store.claims store)))

let prop_worker_partition =
  (* Emulated N-worker sweep over a random study shape: unit ownership
     is arbitrated by real claim files (each emulated worker's pass
     sees live foreign claims on everyone else's stripes), then the
     canonical pass merges.  Must equal the serial table bit for bit
     for any (replicates, stripe width, N). *)
  QCheck2.Test.make ~name:"emulated N-worker sweep == serial, byte for byte" ~count:6
    QCheck2.Gen.(triple (int_range 1 10) (int_range 1 3) (oneofl [ 1; 2; 4 ]))
    (fun (replicates, stripe, workers) ->
      with_env "CKPT_SWEEP_STRIPE" (string_of_int stripe) (fun () ->
          let refdir = fresh_dir () in
          let reference = run_store ~dir:refdir ~replicates () in
          let layout = Sweep_store.units (Sweep_store.create ~dir:refdir) in
          let dir = fresh_dir () in
          let store = Sweep_store.create ~dir in
          let owner u = u.Sweep_store.u_stripe mod workers in
          let ok = ref true in
          for k = 0 to workers - 1 do
            let planted =
              List.filter_map
                (fun u ->
                  if owner u = k then None
                  else begin
                    let path =
                      Filename.concat dir (Filename.basename u.Sweep_store.u_path)
                    in
                    plant_live_claim path;
                    Some (Sweep_store.Claim.path path)
                  end)
                layout
            in
            in_worker_mode (fun () ->
                let _, s = stats_since (fun () -> run_store ~dir ~replicates ()) in
                let owned =
                  List.length (List.filter (fun u -> owner u = k) layout)
                in
                if s.Sweep_store.computed <> owned then ok := false);
            List.iter Atomic_file.remove planted
          done;
          let merged = run_store ~dir ~replicates () in
          !ok
          && Sweep_store.claims store = []
          && List.length (Sweep_store.units store) = List.length layout
          && compare reference merged = 0))

let () =
  Alcotest.run "sweep"
    [
      ( "atomic_file",
        [
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "atomic write" `Quick test_atomic_write;
          Alcotest.test_case "idempotent remove" `Quick test_remove_idempotent;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "summary round-trip" `Quick test_summary_roundtrip;
          Alcotest.test_case "partial round-trip" `Quick test_partial_roundtrip;
          QCheck_alcotest.to_alcotest prop_summary_roundtrip;
        ] );
      ( "resume",
        [
          Alcotest.test_case "resume is bit-identical" `Quick test_resume_bit_identical;
          Alcotest.test_case "corruption invalidates" `Quick test_invalidation_on_corruption;
          Alcotest.test_case "changed params change keys" `Quick test_changed_params_invalidate;
          Alcotest.test_case "stripe width changes keys" `Quick test_stripe_size_changes_keys;
          QCheck_alcotest.to_alcotest prop_prefix_resume;
          Alcotest.test_case "floats resume" `Quick test_floats_resume;
          Alcotest.test_case "vectors resume" `Quick test_vectors_resume;
        ] );
      ( "claims",
        [
          Alcotest.test_case "exclusive create" `Quick test_create_exclusive;
          Alcotest.test_case "claim staleness" `Quick test_claim_staleness;
          Alcotest.test_case "worker mode claims and busy-skip" `Quick
            test_worker_mode_claims;
          Alcotest.test_case "dead claims reaped under re-claim" `Quick
            test_worker_mode_reaps_dead_claims;
          QCheck_alcotest.to_alcotest prop_worker_partition;
        ] );
    ]
