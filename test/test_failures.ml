(* Unit and property tests for the failure substrate. *)

module Trace = Ckpt_failures.Trace
module Trace_set = Ckpt_failures.Trace_set
module Rejuvenation = Ckpt_failures.Rejuvenation
module Failure_log = Ckpt_failures.Failure_log
module Lanl_synth = Ckpt_failures.Lanl_synth
module D = Ckpt_distributions.Distribution
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull
module Rng = Ckpt_prng.Rng
module Units = Ckpt_platform.Units

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* -- trace -------------------------------------------------------------------- *)

let test_trace_generate_sorted_in_range () =
  let rng = Rng.create ~seed:1L in
  let dist = Exponential.of_mtbf ~mtbf:100. in
  let tr = Trace.generate rng dist ~horizon:10_000. in
  let times = tr.Trace.failure_times in
  check Alcotest.bool "some failures" true (Array.length times > 10);
  Array.iteri
    (fun i t ->
      check Alcotest.bool "in range" true (t >= 0. && t < 10_000.);
      if i > 0 then check Alcotest.bool "strictly increasing" true (t > times.(i - 1)))
    times

let test_trace_expected_count () =
  (* Renewal process with mean 100 over horizon 1e5: about 1000. *)
  let rng = Rng.create ~seed:2L in
  let dist = Exponential.of_mtbf ~mtbf:100. in
  let tr = Trace.generate rng dist ~horizon:1e5 in
  let n = Trace.count tr in
  check Alcotest.bool (Printf.sprintf "count %d ~ 1000" n) true (n > 850 && n < 1150)

let test_trace_of_times_validation () =
  Alcotest.check_raises "unsorted" (Invalid_argument "Trace.of_times: dates must be strictly increasing")
    (fun () -> ignore (Trace.of_times ~horizon:10. [| 3.; 2. |]));
  Alcotest.check_raises "out of range" (Invalid_argument "Trace.of_times: date outside [0, horizon)")
    (fun () -> ignore (Trace.of_times ~horizon:10. [| 11. |]))

let test_trace_queries () =
  let tr = Trace.of_times ~horizon:100. [| 10.; 20.; 50. |] in
  check (Alcotest.option (Alcotest.float 0.)) "next at 0" (Some 10.)
    (Trace.next_failure_at_or_after tr 0.);
  check (Alcotest.option (Alcotest.float 0.)) "next at exactly 20" (Some 20.)
    (Trace.next_failure_at_or_after tr 20.);
  check (Alcotest.option (Alcotest.float 0.)) "next past the end" None
    (Trace.next_failure_at_or_after tr 50.1);
  check (Alcotest.option (Alcotest.float 0.)) "last before 10" None
    (Trace.last_failure_before tr 10.);
  check (Alcotest.option (Alcotest.float 0.)) "last before 21" (Some 20.)
    (Trace.last_failure_before tr 21.);
  check Alcotest.int "count in [10, 50)" 2 (Trace.count_in_window tr ~lo:10. ~hi:50.);
  check Alcotest.int "empty window" 0 (Trace.count_in_window tr ~lo:30. ~hi:30.)

let test_trace_empty () =
  let tr = Trace.empty ~horizon:10. in
  check Alcotest.int "no failures" 0 (Trace.count tr);
  check (Alcotest.option (Alcotest.float 0.)) "no next" None (Trace.next_failure_at_or_after tr 0.)

(* -- trace_set ------------------------------------------------------------------ *)

let dist100 = Exponential.of_mtbf ~mtbf:100.

let test_trace_set_prefix_coherence () =
  (* Generating 8 processors yields exactly the first 8 traces of a
     16-processor generation: the paper's coherence-when-varying-p rule. *)
  let small = Trace_set.generate ~seed:7L ~replicate:3 dist100 ~processors:8 ~horizon:1000. in
  let large = Trace_set.generate ~seed:7L ~replicate:3 dist100 ~processors:16 ~horizon:1000. in
  for i = 0 to 7 do
    check
      (Alcotest.array (Alcotest.float 0.))
      (Printf.sprintf "trace %d identical" i)
      (Trace_set.trace large i).Trace.failure_times
      (Trace_set.trace small i).Trace.failure_times
  done

let test_trace_set_replicates_differ () =
  let a = Trace_set.generate ~seed:7L ~replicate:0 dist100 ~processors:2 ~horizon:1000. in
  let b = Trace_set.generate ~seed:7L ~replicate:1 dist100 ~processors:2 ~horizon:1000. in
  check Alcotest.bool "different replicates differ" true
    ((Trace_set.trace a 0).Trace.failure_times <> (Trace_set.trace b 0).Trace.failure_times)

let test_trace_set_merged_sorted_complete () =
  let ts = Trace_set.generate ~seed:9L ~replicate:0 dist100 ~processors:5 ~horizon:2000. in
  let events = Trace_set.events ts in
  check Alcotest.int "every failure present" (Trace_set.total_failures ts) (Array.length events);
  Array.iteri
    (fun i (date, proc) ->
      check Alcotest.bool "proc in range" true (proc >= 0 && proc < 5);
      if i > 0 then check Alcotest.bool "sorted" true (fst events.(i - 1) <= date))
    events

let test_trace_set_next_event_index () =
  let traces = [| Trace.of_times ~horizon:100. [| 10.; 30. |]; Trace.of_times ~horizon:100. [| 20. |] |] in
  let ts = Trace_set.of_traces traces in
  check Alcotest.int "at 0" 0 (Trace_set.next_event_index ts ~after:0.);
  check Alcotest.int "at 15" 1 (Trace_set.next_event_index ts ~after:15.);
  check Alcotest.int "exactly 20" 1 (Trace_set.next_event_index ts ~after:20.);
  check Alcotest.int "past everything" 3 (Trace_set.next_event_index ts ~after:31.);
  check
    (Alcotest.option (Alcotest.pair (Alcotest.float 0.) Alcotest.int))
    "next failure" (Some (20., 1))
    (Trace_set.next_platform_failure ts ~after:12.)

let test_trace_set_prefix () =
  let ts = Trace_set.generate ~seed:3L ~replicate:0 dist100 ~processors:6 ~horizon:500. in
  let p2 = Trace_set.prefix ts 2 in
  check Alcotest.int "two processors" 2 (Trace_set.processors p2);
  Array.iter
    (fun (_, proc) -> check Alcotest.bool "only first two" true (proc < 2))
    (Trace_set.events p2);
  Alcotest.check_raises "too large" (Invalid_argument "Trace_set.prefix: bad processor count")
    (fun () -> ignore (Trace_set.prefix ts 7))

(* -- rejuvenation (Figure 1) ------------------------------------------------------ *)

let test_rejuvenation_exponential_equal () =
  (* For memoryless failures, both options give D + mu/p. *)
  let dist = Exponential.of_mtbf ~mtbf:1000. in
  let a = Rejuvenation.platform_mtbf Rejuvenation.Rejuvenate_all dist ~processors:32 ~downtime:5. in
  let b =
    Rejuvenation.platform_mtbf Rejuvenation.Rejuvenate_failed_only dist ~processors:32 ~downtime:5.
  in
  close ~tol:0.5 "equal for exponential" a b;
  close ~tol:0.5 "D + mu/p" (5. +. (1000. /. 32.)) b

let test_rejuvenation_weibull_closed_form () =
  let mtbf = Units.of_years 125. and shape = 0.7 in
  let dist = Weibull.of_mtbf ~mtbf ~shape in
  List.iter
    (fun p ->
      let generic =
        Rejuvenation.platform_mtbf Rejuvenation.Rejuvenate_all dist ~processors:p ~downtime:60.
      in
      let closed =
        Rejuvenation.weibull_platform_mtbf_rejuvenate_all ~mtbf ~shape ~processors:p ~downtime:60.
      in
      close ~tol:(closed /. 1e4) (Printf.sprintf "p = %d" p) closed generic)
    [ 1; 16; 1024 ]

let test_rejuvenation_weibull_hurts () =
  (* Figure 1: for k < 1 rejuvenating everything lowers the MTBF. *)
  let series =
    Rejuvenation.figure1_series ~mtbf:(Units.of_years 125.) ~shape:0.7 ~downtime:60.
      ~processor_exponents:[ 4; 10; 16; 22 ]
  in
  List.iter
    (fun (p, with_r, without_r) ->
      check Alcotest.bool (Printf.sprintf "worse at p = %d" p) true (with_r < without_r))
    series

let test_rejuvenation_simulation_agrees () =
  let dist = Weibull.of_mtbf ~mtbf:1000. ~shape:0.7 in
  let analytic =
    Rejuvenation.platform_mtbf Rejuvenation.Rejuvenate_failed_only dist ~processors:16
      ~downtime:0.
  in
  let simulated =
    Rejuvenation.simulated_platform_mtbf Rejuvenation.Rejuvenate_failed_only dist ~processors:16
      ~downtime:0. ~seed:4L ~samples:4000
  in
  check Alcotest.bool
    (Printf.sprintf "simulated %.1f ~ analytic %.1f" simulated analytic)
    true
    (abs_float (simulated -. analytic) /. analytic < 0.1)

(* -- failure log -------------------------------------------------------------------- *)

let test_failure_log_parse () =
  let log = Failure_log.parse_string "# comment\nn1 100.5\nn2 300\n\nn1 50\n" in
  check Alcotest.int "records" 3 (Failure_log.count log);
  check Alcotest.int "nodes" 2 log.Failure_log.nodes;
  close ~tol:1e-9 "mean" ((100.5 +. 300. +. 50.) /. 3.) (Failure_log.mean_interval log)

let test_failure_log_parse_errors () =
  Alcotest.check_raises "bad duration" (Failure "Failure_log.parse_string: bad duration at line 1")
    (fun () -> ignore (Failure_log.parse_string "n1 abc"));
  Alcotest.check_raises "bad record" (Failure "Failure_log.parse_string: bad record at line 1")
    (fun () -> ignore (Failure_log.parse_string "onlyonefield"))

let test_failure_log_round_trip () =
  let log = Failure_log.of_intervals ~nodes:2 [| 10.; 20.; 30. |] in
  let path = Filename.temp_file "ckpt_log" ".txt" in
  Failure_log.save log ~node_of_interval:(fun i -> i mod 2) path;
  let log' = Failure_log.load path in
  Sys.remove path;
  check Alcotest.int "count preserved" 3 (Failure_log.count log');
  close ~tol:1e-3 "mean preserved" (Failure_log.mean_interval log) (Failure_log.mean_interval log')

let test_failure_log_distribution () =
  let log = Failure_log.of_intervals [| 10.; 20.; 30.; 40. |] in
  let d = Failure_log.to_distribution log in
  close ~tol:1e-9 "mean matches" 25. d.D.mean

(* -- synthetic LANL ------------------------------------------------------------------- *)

let test_lanl_deterministic () =
  let a = Lanl_synth.generate ~seed:1L Lanl_synth.cluster19_parameters in
  let b = Lanl_synth.generate ~seed:1L Lanl_synth.cluster19_parameters in
  check (Alcotest.array (Alcotest.float 0.)) "same log" a.Failure_log.intervals
    b.Failure_log.intervals;
  let c = Lanl_synth.generate ~seed:2L Lanl_synth.cluster19_parameters in
  check Alcotest.bool "different seed differs" true
    (a.Failure_log.intervals <> c.Failure_log.intervals)

let test_lanl_mean_calibration () =
  let p = Lanl_synth.cluster19_parameters in
  let log = Lanl_synth.generate p in
  let mean = Failure_log.mean_interval log in
  check Alcotest.bool
    (Printf.sprintf "mean %.3e within 15%% of %.3e" mean p.Lanl_synth.mean_interval)
    true
    (abs_float (mean -. p.Lanl_synth.mean_interval) /. p.Lanl_synth.mean_interval < 0.15)

let test_lanl_structure () =
  let p = Lanl_synth.cluster19_parameters in
  let log = Lanl_synth.generate p in
  check Alcotest.int "interval count" (p.Lanl_synth.nodes * p.Lanl_synth.intervals_per_node)
    (Failure_log.count log);
  check Alcotest.int "node count" p.Lanl_synth.nodes log.Failure_log.nodes;
  (* The reboot-storm mode leaves a visible mass of short uptimes. *)
  let short =
    Array.fold_left (fun acc d -> if d < 6. *. 3600. then acc + 1 else acc) 0
      log.Failure_log.intervals
  in
  let frac = float_of_int short /. float_of_int (Failure_log.count log) in
  check Alcotest.bool (Printf.sprintf "short-uptime mass %.3f" frac) true (frac > 0.05)

let test_lanl_invalid () =
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Lanl_synth.generate: short_uptime_fraction outside [0, 1)") (fun () ->
      ignore
        (Lanl_synth.generate { Lanl_synth.cluster19_parameters with short_uptime_fraction = 1. }))

(* -- trace persistence -------------------------------------------------------------- *)

module Trace_io = Ckpt_failures.Trace_io

let test_trace_io_round_trip () =
  let ts = Trace_set.generate ~seed:5L ~replicate:2 dist100 ~processors:7 ~horizon:1500. in
  let text = Trace_io.to_string ts in
  let ts' = Trace_io.of_string text in
  check Alcotest.int "units" 7 (Trace_set.processors ts');
  close ~tol:1e-6 "horizon" (Trace_set.horizon ts) (Trace_set.horizon ts');
  for i = 0 to 6 do
    let a = (Trace_set.trace ts i).Trace.failure_times in
    let b = (Trace_set.trace ts' i).Trace.failure_times in
    check Alcotest.int (Printf.sprintf "unit %d count" i) (Array.length a) (Array.length b);
    Array.iteri (fun j v -> close ~tol:1e-3 "date" v b.(j)) a
  done

let test_trace_io_file_round_trip () =
  let ts = Trace_set.generate ~seed:6L ~replicate:0 dist100 ~processors:3 ~horizon:800. in
  let path = Filename.temp_file "ckpt_traces" ".txt" in
  Trace_io.save ts path;
  let ts' = Trace_io.load path in
  Sys.remove path;
  check Alcotest.int "failures preserved" (Trace_set.total_failures ts)
    (Trace_set.total_failures ts')

let test_trace_io_errors () =
  Alcotest.check_raises "bad header" (Failure "Trace_io.of_string: bad header") (fun () ->
      ignore (Trace_io.of_string "nonsense\n"));
  Alcotest.check_raises "bad record" (Failure "Trace_io.of_string: bad record at line 2")
    (fun () -> ignore (Trace_io.of_string "# ckpt-traces v1 units=2 horizon=100\noops\n"))

(* -- trace statistics -------------------------------------------------------------- *)

module Trace_stats = Ckpt_failures.Trace_stats

let test_stats_hand_built () =
  let ts =
    Trace_set.of_traces
      [| Trace.of_times ~horizon:100. [| 10.; 30. |]; Trace.of_times ~horizon:100. [||] |]
  in
  let s = Trace_stats.measure ts in
  check Alcotest.int "failures" 2 s.Trace_stats.total_failures;
  close "unit mtbf" 100. s.Trace_stats.empirical_unit_mtbf;
  close "platform mtbf" 50. s.Trace_stats.empirical_platform_mtbf;
  close "gap mean" 15. s.Trace_stats.interarrival_mean;
  check Alcotest.int "idle units" 1 s.Trace_stats.idle_units;
  check Alcotest.int "busiest" 2 s.Trace_stats.max_failures_on_one_unit

let test_stats_recovers_generator_mtbf () =
  let ts = Trace_set.generate ~seed:21L ~replicate:0 dist100 ~processors:64 ~horizon:10_000. in
  let s = Trace_stats.measure ts in
  check Alcotest.bool
    (Printf.sprintf "unit MTBF %.1f ~ 100" s.Trace_stats.empirical_unit_mtbf)
    true
    (abs_float (s.Trace_stats.empirical_unit_mtbf -. 100.) < 10.)

let test_stats_cv_distinguishes_burstiness () =
  let expo = Trace_set.generate ~seed:3L ~replicate:0 dist100 ~processors:64 ~horizon:10_000. in
  let weib =
    Trace_set.generate ~seed:3L ~replicate:0
      (Weibull.of_mtbf ~mtbf:100. ~shape:0.5)
      ~processors:64 ~horizon:10_000.
  in
  let cv_expo = (Trace_stats.measure expo).Trace_stats.interarrival_cv in
  let cv_weib = (Trace_stats.measure weib).Trace_stats.interarrival_cv in
  check Alcotest.bool (Printf.sprintf "poisson CV %.2f ~ 1" cv_expo) true
    (abs_float (cv_expo -. 1.) < 0.15);
  check Alcotest.bool
    (Printf.sprintf "weibull k=0.5 CV %.2f well above 1" cv_weib)
    true (cv_weib > 1.5)

let test_stats_fit_round_trip () =
  (* Generate from a known Weibull, extract inter-arrivals, fit: the
     recovered tail weight must match the generator's. *)
  let shape = 0.6 in
  let ts =
    Trace_set.generate ~seed:9L ~replicate:0
      (Weibull.of_mtbf ~mtbf:50. ~shape)
      ~processors:128 ~horizon:10_000.
  in
  let fit = Ckpt_distributions.Fit.weibull (Trace_stats.interarrivals ts) in
  let truth = Weibull.of_mtbf ~mtbf:50. ~shape in
  let ratio d = d.D.quantile 0.9 /. d.D.quantile 0.1 in
  let r_fit = ratio fit.Ckpt_distributions.Fit.distribution and r_truth = ratio truth in
  check Alcotest.bool
    (Printf.sprintf "tail ratio %.1f ~ %.1f" r_fit r_truth)
    true
    (abs_float (r_fit -. r_truth) /. r_truth < 0.25)

let test_availability () =
  let ts =
    Trace_set.of_traces
      [| Trace.of_times ~horizon:100. [| 10.; 30. |]; Trace.of_times ~horizon:100. [||] |]
  in
  close ~tol:1e-9 "repair fraction" (1. -. (2. *. 5. /. 200.))
    (Trace_stats.availability ts ~downtime:5.)

(* -- properties ------------------------------------------------------------------------ *)

let test_trace_set_merge_tie_break () =
  (* Failures sharing a date are ordered by processor index. *)
  let ts =
    Trace_set.of_traces
      [|
        Trace.of_times ~horizon:100. [| 10.; 50. |];
        Trace.of_times ~horizon:100. [| 10.; 20. |];
        Trace.of_times ~horizon:100. [| 10. |];
      |]
  in
  check Alcotest.bool "ties ordered by processor" true
    (Trace_set.events ts = [| (10., 0); (10., 1); (10., 2); (20., 1); (50., 0) |])

let prop_kway_merge_equals_sort =
  (* The heap merge must produce exactly what sorting the concatenated
     streams by (date, processor) produces — including empty traces
     and any tie pattern the generator happens to hit. *)
  QCheck2.Test.make ~name:"k-way merge == sort of the concatenation" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_range 0 1000))
    (fun (procs, seed) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let traces =
        Array.init procs (fun _ -> Trace.generate rng dist100 ~horizon:1000.)
      in
      let ts = Trace_set.of_traces traces in
      let reference =
        let all = ref [] in
        Array.iteri
          (fun proc tr ->
            Array.iter (fun d -> all := (d, proc) :: !all) tr.Trace.failure_times)
          traces;
        let arr = Array.of_list !all in
        Array.sort
          (fun (d1, p1) (d2, p2) ->
            let c = Float.compare d1 d2 in
            if c <> 0 then c else Int.compare p1 p2)
          arr;
        arr
      in
      Trace_set.events ts = reference)

let prop_trace_queries_consistent =
  QCheck2.Test.make ~name:"next/last failure bracket the query point" ~count:200
    QCheck2.Gen.(pair (int_range 0 1000) (float_range 0. 900.))
    (fun (seed, t) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let tr = Trace.generate rng dist100 ~horizon:1000. in
      (match Trace.next_failure_at_or_after tr t with Some v -> v >= t | None -> true)
      && match Trace.last_failure_before tr t with Some v -> v < t | None -> true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_trace_queries_consistent; prop_kway_merge_equals_sort ]

let () =
  Alcotest.run "failures"
    [
      ( "trace",
        [
          Alcotest.test_case "sorted within range" `Quick test_trace_generate_sorted_in_range;
          Alcotest.test_case "expected count" `Quick test_trace_expected_count;
          Alcotest.test_case "validation" `Quick test_trace_of_times_validation;
          Alcotest.test_case "queries" `Quick test_trace_queries;
          Alcotest.test_case "empty" `Quick test_trace_empty;
        ] );
      ( "trace_set",
        [
          Alcotest.test_case "prefix coherence" `Quick test_trace_set_prefix_coherence;
          Alcotest.test_case "replicates differ" `Quick test_trace_set_replicates_differ;
          Alcotest.test_case "merged events" `Quick test_trace_set_merged_sorted_complete;
          Alcotest.test_case "merge tie break" `Quick test_trace_set_merge_tie_break;
          Alcotest.test_case "event index" `Quick test_trace_set_next_event_index;
          Alcotest.test_case "prefix" `Quick test_trace_set_prefix;
        ] );
      ( "rejuvenation",
        [
          Alcotest.test_case "exponential: options equal" `Quick test_rejuvenation_exponential_equal;
          Alcotest.test_case "weibull closed form" `Quick test_rejuvenation_weibull_closed_form;
          Alcotest.test_case "weibull: rejuvenate-all hurts" `Quick test_rejuvenation_weibull_hurts;
          Alcotest.test_case "simulation agrees" `Quick test_rejuvenation_simulation_agrees;
        ] );
      ( "failure_log",
        [
          Alcotest.test_case "parse" `Quick test_failure_log_parse;
          Alcotest.test_case "parse errors" `Quick test_failure_log_parse_errors;
          Alcotest.test_case "save/load round trip" `Quick test_failure_log_round_trip;
          Alcotest.test_case "to_distribution" `Quick test_failure_log_distribution;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "string round trip" `Quick test_trace_io_round_trip;
          Alcotest.test_case "file round trip" `Quick test_trace_io_file_round_trip;
          Alcotest.test_case "errors" `Quick test_trace_io_errors;
        ] );
      ( "trace_stats",
        [
          Alcotest.test_case "hand-built" `Quick test_stats_hand_built;
          Alcotest.test_case "recovers generator MTBF" `Quick test_stats_recovers_generator_mtbf;
          Alcotest.test_case "CV detects burstiness" `Quick test_stats_cv_distinguishes_burstiness;
          Alcotest.test_case "fit round trip" `Quick test_stats_fit_round_trip;
          Alcotest.test_case "availability" `Quick test_availability;
        ] );
      ( "lanl_synth",
        [
          Alcotest.test_case "deterministic" `Quick test_lanl_deterministic;
          Alcotest.test_case "mean calibration" `Quick test_lanl_mean_calibration;
          Alcotest.test_case "structure" `Quick test_lanl_structure;
          Alcotest.test_case "invalid parameters" `Quick test_lanl_invalid;
        ] );
      ("properties", qcheck_cases);
    ]
