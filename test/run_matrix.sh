#!/usr/bin/env bash
# Tier-1 scheduler matrix: the full test suite must be green under
# every CKPT_SCHED backend so a scheduler regression cannot land
# silently.  Extra arguments are passed through to `dune runtest`
# (e.g. `test/run_matrix.sh --display quiet`).
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for mode in seq flat steal; do
  echo "== dune runtest (CKPT_SCHED=$mode) =="
  if ! CKPT_SCHED=$mode dune runtest --force "$@"; then
    echo "FAIL: test suite is red under CKPT_SCHED=$mode" >&2
    status=1
  fi
done

# -- kill-and-resume smoke test ----------------------------------------------
# Run the small sweep-smoke grid against a checkpoint store, SIGKILL it
# partway through, resume it to completion, and require the resumed
# tables to be byte-identical to an uninterrupted run's.  A third run
# must skip every unit (nothing left to compute).
echo "== sweep kill-and-resume smoke =="
dune build bin/ckpt.exe
ckpt=_build/default/bin/ckpt.exe
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
export CKPT_TRACES=48 CKPT_SWEEP_STRIPE=4

echo "-- reference (uninterrupted) run"
CKPT_RESULTS_DIR="$smoke/ref" \
  "$ckpt" sweep --resume "$smoke/ref_store" sweep-smoke > "$smoke/ref.log"

echo "-- interrupted run (SIGKILL mid-sweep)"
CKPT_RESULTS_DIR="$smoke/out" \
  "$ckpt" sweep --resume "$smoke/out_store" sweep-smoke > "$smoke/killed.log" 2>&1 &
victim=$!
sleep 1.5
kill -KILL "$victim" 2>/dev/null || true  # may have already finished
wait "$victim" 2>/dev/null || true

echo "-- resumed run"
CKPT_RESULTS_DIR="$smoke/out" \
  "$ckpt" sweep --resume "$smoke/out_store" sweep-smoke > "$smoke/resumed.log"

# Compare only the CSV artifacts: sidecars record timestamps and the
# exact command line, which legitimately differ between runs.
for ref_csv in "$smoke"/ref/*.csv; do
  out_csv="$smoke/out/$(basename "$ref_csv")"
  if ! cmp -s "$ref_csv" "$out_csv"; then
    echo "FAIL: resumed $(basename "$ref_csv") differs from the uninterrupted run" >&2
    status=1
  fi
done

echo "-- all-skip run"
CKPT_RESULTS_DIR="$smoke/out" \
  "$ckpt" sweep --resume "$smoke/out_store" sweep-smoke > "$smoke/skip.log"
if ! grep -q ", 0 computed" "$smoke/skip.log"; then
  echo "FAIL: third sweep run recomputed units it should have skipped" >&2
  tail -3 "$smoke/skip.log" >&2
  status=1
fi

# -- multi-process worker smoke ------------------------------------------------
# A 2-worker sweep must produce byte-identical CSVs; a SIGKILLed worker
# must neither wedge the sweep (its claims are reaped) nor corrupt the
# store (partial writes fail the checksum and are recomputed).
echo "== sweep worker-mode smoke =="

echo "-- 2-worker run, one worker SIGKILLed mid-sweep"
CKPT_RESULTS_DIR="$smoke/w2" \
  "$ckpt" sweep --resume "$smoke/w2_store" --workers 2 sweep-smoke \
  > "$smoke/w2.log" 2>&1 &
parent=$!
sleep 1.0
# The workers are re-exec'd children of the sweep parent; kill one.
worker=$(pgrep -P "$parent" | head -1 || true)
if [ -n "$worker" ]; then
  kill -KILL "$worker" 2>/dev/null || true
fi
wait "$parent" 2>/dev/null || true

echo "-- resume with 2 workers"
CKPT_RESULTS_DIR="$smoke/w2" \
  "$ckpt" sweep --resume "$smoke/w2_store" --workers 2 sweep-smoke \
  > "$smoke/w2_resume.log"

leftover=$(find "$smoke/w2_store" -name '*.claim' | wc -l)
if [ "$leftover" -ne 0 ]; then
  echo "FAIL: $leftover stale claim(s) left after the resumed worker sweep" >&2
  status=1
fi

for ref_csv in "$smoke"/ref/*.csv; do
  w2_csv="$smoke/w2/$(basename "$ref_csv")"
  if ! cmp -s "$ref_csv" "$w2_csv"; then
    echo "FAIL: 2-worker $(basename "$ref_csv") differs from the serial run" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "sweep smoke: resumed tables byte-identical; completed units skipped"
  echo "worker smoke: 2-worker sweep survived SIGKILL and matches serial bytes"
  echo "scheduler matrix: all three backends green"
fi
exit "$status"
