#!/usr/bin/env bash
# Tier-1 scheduler matrix: the full test suite must be green under
# every CKPT_SCHED backend so a scheduler regression cannot land
# silently.  Extra arguments are passed through to `dune runtest`
# (e.g. `test/run_matrix.sh --display quiet`).
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for mode in seq flat steal; do
  echo "== dune runtest (CKPT_SCHED=$mode) =="
  if ! CKPT_SCHED=$mode dune runtest --force "$@"; then
    echo "FAIL: test suite is red under CKPT_SCHED=$mode" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "scheduler matrix: all three backends green"
fi
exit "$status"
