(* Tests for the experiment harness: configuration, reporting,
   registry, and miniature end-to-end runs of the study machinery. *)

module Config = Ckpt_experiments.Config
module Report = Ckpt_experiments.Report
module Setup = Ckpt_experiments.Setup
module Registry = Ckpt_experiments.Registry
module Fig1_mtbf = Ckpt_experiments.Fig1_mtbf
module Scaling_study = Ckpt_experiments.Scaling_study
module Ablation = Ckpt_experiments.Ablation
module Replication = Ckpt_experiments.Replication
module P = Ckpt_platform
module S = Ckpt_simulator
module F = Ckpt_failures

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let with_env pairs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, v) -> Unix.putenv k (Option.value v ~default:"")) saved)
    f

(* -- config ------------------------------------------------------------------- *)

let test_config_env () =
  with_env [ ("CKPT_TRACES", "17"); ("CKPT_FULL", "1"); ("CKPT_SEED", "99") ] (fun () ->
      let c = Config.default () in
      check Alcotest.int "traces" 17 c.Config.replicates;
      check Alcotest.bool "full" true c.Config.full;
      check Alcotest.int64 "seed" 99L c.Config.seed)

let test_config_scale () =
  let explicit = { Config.replicates = 12; full = false; seed = 0L; sweep_dir = None } in
  check Alcotest.int "explicit wins" 12 (Config.scale explicit ~quick:4 ~full:600);
  let quick = { Config.replicates = 0; full = false; seed = 0L; sweep_dir = None } in
  check Alcotest.int "quick default" 4 (Config.scale quick ~quick:4 ~full:600);
  let full = { Config.replicates = 0; full = true; seed = 0L; sweep_dir = None } in
  check Alcotest.int "full default" 600 (Config.scale full ~quick:4 ~full:600)

(* -- report -------------------------------------------------------------------- *)

let test_csv_of_series () =
  let series =
    [
      { Report.label = "a"; points = [ (1., 10.); (2., 20.) ] };
      { Report.label = "b"; points = [ (1., 1.5); (2., nan) ] };
    ]
  in
  let csv = Report.csv_of_series ~x_label:"x" series in
  check Alcotest.string "csv layout" "x,a,b\n1,10,1.5\n2,20,\n" csv

(* A table with a policy that never completes: its CSV row must render
   empty profile cells — never the string "nan" or "inf" — while the
   successful policies carry full profile blocks (satellite: NaN/inf
   CSV guard). *)
let failed_policy_table () =
  let scenario =
    S.Scenario.create ~horizon:1e7 ~start_time:0.
      (Ckpt_policies.Job.create
         ~dist:(Ckpt_distributions.Exponential.of_mtbf ~mtbf:4000.)
         ~processors:1
         ~machine:
           (P.Machine.create ~total_processors:1 ~downtime:50.
              ~overhead:(P.Overhead.constant 100.))
         ~work_time:20_000.)
  in
  S.Evaluation.degradation_table ~scenario
    ~policies:
      [ Ckpt_policies.Policy.periodic "ok" ~period:1000.;
        Ckpt_policies.Policy.stateless "never" (fun _ -> None) ]
    ~replicates:3

let contains_sub ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_csv_no_nan_for_failed_policy () =
  let table = failed_policy_table () in
  let csv = Report.csv_of_table table in
  let lower = String.lowercase_ascii csv in
  check Alcotest.bool "no 'nan' cell" false (contains_sub ~needle:"nan" lower);
  check Alcotest.bool "no 'inf' cell" false (contains_sub ~needle:"inf" lower);
  (match String.split_on_char '\n' csv with
  | header :: _ ->
      List.iter
        (fun col ->
          check Alcotest.bool ("header has " ^ col) true
            (contains_sub ~needle:("," ^ col) header))
        Report.profile_columns
  | [] -> Alcotest.fail "empty csv");
  let row name =
    List.find
      (fun l -> String.length l > String.length name && String.sub l 0 (String.length name) = name)
      (String.split_on_char '\n' csv)
  in
  (* The failed policy's profile block is entirely empty cells. *)
  let never = row "never" in
  let expected_empty = String.concat "" (List.map (fun _ -> ",") Report.profile_columns) in
  check Alcotest.bool "failed row ends in empty profile cells" true
    (String.ends_with ~suffix:expected_empty never);
  (* The successful policy's block carries values that sum back to the
     mean makespan (the accounting identity survives the %.10g round
     trip). *)
  let ok_cells = String.split_on_char ',' (row "ok") in
  (* The profile block is the trailing |profile_columns| cells. *)
  let cell name =
    let rec find i = function
      | [] -> Alcotest.fail ("missing column " ^ name)
      | c :: _ when c = name -> i
      | _ :: rest -> find (i + 1) rest
    in
    let offset = List.length ok_cells - List.length Report.profile_columns in
    float_of_string (List.nth ok_cells (offset + find 0 Report.profile_columns))
  in
  let sum =
    cell "useful_s" +. cell "checkpoint_s" +. cell "wasted_s" +. cell "recovery_s"
    +. cell "stall_s"
  in
  let mk = cell "mk_mean_s" in
  check Alcotest.bool
    (Printf.sprintf "components %.10g sum to mk_mean %.10g" sum mk)
    true
    (abs_float (sum -. mk) <= 1e-8 *. mk);
  check Alcotest.bool "quantiles ordered in csv" true
    (cell "mk_p50_s" <= cell "mk_p95_s" && cell "mk_p95_s" <= cell "mk_p99_s")

let test_csv_of_tables_extends_series_csv () =
  (* The sweep CSV's leading columns must stay byte-identical to the
     pre-profile format: every csv_of_series line is a prefix of the
     corresponding csv_of_tables line. *)
  let table = failed_policy_table () in
  let tables = [ (16., table); (64., table) ] in
  let old_csv = Report.csv_of_series ~x_label:"p" (Report.degradation_series tables) in
  let new_csv = Report.csv_of_tables ~x_label:"p" tables in
  let old_lines = String.split_on_char '\n' old_csv in
  let new_lines = String.split_on_char '\n' new_csv in
  check Alcotest.int "same line count" (List.length old_lines) (List.length new_lines);
  List.iter2
    (fun prefix line ->
      check Alcotest.bool
        (Printf.sprintf "%S extends %S" line prefix)
        true
        (String.starts_with ~prefix line))
    old_lines new_lines;
  let lower = String.lowercase_ascii new_csv in
  check Alcotest.bool "no 'nan' cell in sweep csv" false (contains_sub ~needle:"nan" lower)

let test_write_csv_creates_directories () =
  let dir = Filename.temp_file "ckpt" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "nested") "out.csv" in
  Report.write_csv ~path "x\n";
  check Alcotest.bool "file exists" true (Sys.file_exists path);
  Sys.remove path

(* -- ascii plot ------------------------------------------------------------------ *)

module Ascii_plot = Ckpt_experiments.Ascii_plot

let plot_series =
  [
    { Report.label = "a"; points = [ (1., 1.); (2., 2.); (4., 4.) ] };
    { Report.label = "b"; points = [ (1., 4.); (2., 2.); (4., 1.) ] };
  ]

let test_plot_structure () =
  let out = Ascii_plot.render ~options:{ Ascii_plot.default_options with height = 6 } plot_series in
  let lines = String.split_on_char '\n' out in
  check Alcotest.bool "legend mentions both series" true
    (List.exists (fun l -> String.length l > 0 && String.ends_with ~suffix:"a" l) lines
    && List.exists (fun l -> String.ends_with ~suffix:"b" l) lines);
  check Alcotest.bool "extreme labels present" true
    (List.exists (fun l -> String.length l >= 3 && String.trim l <> "" && l.[10] = ' ') lines);
  (* Corners: series a's max sits top-right, series b's max top-left. *)
  let top = List.hd lines in
  check Alcotest.bool "both glyphs on the top row" true
    (String.contains top '*' && String.contains top 'o')

let test_plot_skips_nan () =
  let s = [ { Report.label = "n"; points = [ (1., nan); (2., 3.) ] } ] in
  let out = Ascii_plot.render s in
  check Alcotest.bool "renders" true (String.length out > 0)

let test_plot_rejects_empty () =
  Alcotest.check_raises "no series" (Invalid_argument "Ascii_plot.render: no series") (fun () ->
      ignore (Ascii_plot.render []));
  Alcotest.check_raises "all nan" (Invalid_argument "Ascii_plot.render: no finite points")
    (fun () -> ignore (Ascii_plot.render [ { Report.label = "x"; points = [ (1., nan) ] } ]))

(* -- setup --------------------------------------------------------------------- *)

let test_setup_distribution () =
  let d = Setup.distribution Setup.Exponential ~mtbf:1000. in
  close ~tol:1e-9 "exponential mean" 1000. d.Ckpt_distributions.Distribution.mean;
  let w = Setup.distribution (Setup.Weibull 0.7) ~mtbf:1000. in
  close ~tol:1e-6 "weibull mean" 1000. w.Ckpt_distributions.Distribution.mean

let test_setup_policy_roster () =
  (* A miniature scenario keeps PeriodLB's search cheap. *)
  let config = Config.quick in
  let preset =
    {
      P.Presets.label = "mini";
      machine =
        P.Machine.create ~total_processors:8 ~downtime:50. ~overhead:(P.Overhead.constant 100.);
      total_work = 2e5;
      processor_mtbf = 40_000.;
      job_processor_counts = [ 8 ];
    }
  in
  let dist = Setup.distribution Setup.Exponential ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors:8 ()
  in
  let names =
    List.map
      (fun p -> p.Ckpt_policies.Policy.name)
      (Setup.policies ~dp_makespan:true ~period_lb:false scenario)
  in
  check
    (Alcotest.list Alcotest.string)
    "roster"
    [ "Young"; "DalyLow"; "DalyHigh"; "OptExp"; "Bouguerra"; "Liu"; "DPNextFailure"; "DPMakespan" ]
    names

(* -- registry ------------------------------------------------------------------- *)

let test_registry_ids_unique () =
  let ids = Registry.ids () in
  check Alcotest.int "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  check Alcotest.bool "has the headline artifacts" true
    (List.for_all (fun id -> List.mem id ids)
       [ "fig1"; "table2"; "table3"; "fig2"; "fig4"; "fig5"; "fig7"; "table4"; "fig99" ])

let test_registry_find () =
  check Alcotest.bool "finds fig1" true (Registry.find "fig1" <> None);
  check Alcotest.bool "rejects nonsense" true (Registry.find "fig999" = None)

(* -- figure 1 (closed-form: cheap to verify end to end) ---------------------------- *)

let test_fig1_monotone_and_ordered () =
  let points = Fig1_mtbf.run () in
  check Alcotest.bool "nonempty" true (points <> []);
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        check Alcotest.bool "MTBF decreases with p" true
          (b.Fig1_mtbf.mtbf_failed_only < a.Fig1_mtbf.mtbf_failed_only);
        pairwise rest
    | _ -> ()
  in
  pairwise points;
  List.iter
    (fun p ->
      check Alcotest.bool "k<1: rejuvenate-all is worse" true
        (p.Fig1_mtbf.mtbf_rejuvenate_all < p.Fig1_mtbf.mtbf_failed_only))
    points

let test_fig1_shape_one_equalizes () =
  (* With k = 1 (exponential) the two options coincide. *)
  List.iter
    (fun p ->
      close ~tol:1. "equal at k=1" p.Fig1_mtbf.mtbf_failed_only p.Fig1_mtbf.mtbf_rejuvenate_all)
    (Fig1_mtbf.run ~shape:1.0 ~exponents:[ 4; 8; 12 ] ())

(* -- miniature scaling study --------------------------------------------------------- *)

let mini_config = { Config.replicates = 3; full = false; seed = 0x5EEDL; sweep_dir = None }

let mini_preset =
  {
    P.Presets.label = "mini";
    machine =
      P.Machine.create ~total_processors:64 ~downtime:50. ~overhead:(P.Overhead.constant 100.);
    total_work = 4e6;
    processor_mtbf = 2e5;
    job_processor_counts = [ 16; 64 ];
  }

let test_scaling_study_structure () =
  let t =
    Scaling_study.run ~config:mini_config ~preset:mini_preset ~dist_kind:(Setup.Weibull 0.7) ()
  in
  check Alcotest.int "a point per processor count" 2 (List.length t.Scaling_study.points);
  List.iter
    (fun pt ->
      check Alcotest.int "three usable replicates" 3
        pt.Scaling_study.table.S.Evaluation.usable_replicates;
      List.iter
        (fun r ->
          if r.S.Evaluation.successes > 0 then
            check Alcotest.bool
              (Printf.sprintf "%s degradation sane" r.S.Evaluation.policy_name)
              true
              (r.S.Evaluation.average_degradation >= 1. -. 1e-9
              && r.S.Evaluation.average_degradation < 10.))
        pt.Scaling_study.table.S.Evaluation.results)
    t.Scaling_study.points

let test_degradation_series_extraction () =
  let t =
    Scaling_study.run ~config:mini_config ~preset:mini_preset ~dist_kind:Setup.Exponential
      ~include_dp_makespan:false ()
  in
  let series =
    Report.degradation_series
      (List.map (fun p -> (float_of_int p.Scaling_study.processors, p.Scaling_study.table))
         t.Scaling_study.points)
  in
  check Alcotest.bool "lower bound series first" true
    ((List.hd series).Report.label = "LowerBound");
  List.iter
    (fun s -> check Alcotest.int (s.Report.label ^ " covers the sweep") 2 (List.length s.Report.points))
    series

(* -- ablation: the Section 3.3 accuracy claim ----------------------------------------- *)

let test_psuc_approximation_error () =
  let points = Ablation.psuc_approximation_error ~config:mini_config ~processors:512 () in
  check Alcotest.int "seven chunk sizes" 7 (List.length points);
  List.iter
    (fun p ->
      check Alcotest.bool
        (Printf.sprintf "error %.2e below 1%%" p.Ablation.relative_error)
        true
        (p.Ablation.relative_error < 0.01))
    points

(* -- the paper's headline claim, end to end ----------------------------------------- *)

let test_headline_claim_dpnf_wins_on_weibull () =
  (* At scale, under bursty Weibull failures (k = 0.5), the MTBF-only
     periodic heuristics fall well behind DPNextFailure — the paper's
     central result, asserted here at a reduced but unambiguous scale
     (the gap at k = 0.5 is ~10%, far beyond run-to-run noise). *)
  let config = { Config.replicates = 4; full = false; seed = 0x5EEDL; sweep_dir = None } in
  let preset = P.Presets.petascale () in
  let dist = Setup.distribution (Setup.Weibull 0.5) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset
      ~workload_model:P.Workload.Embarrassingly_parallel ~processors:4096 ()
  in
  let job = scenario.S.Scenario.job in
  let policies =
    [ Ckpt_policies.Young.policy job; Ckpt_policies.Optexp.policy job;
      Ckpt_policies.Dp_policies.dp_next_failure job ]
  in
  let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates:4 in
  let degradation name =
    (List.find (fun r -> r.S.Evaluation.policy_name = name) table.S.Evaluation.results)
      .S.Evaluation.average_degradation
  in
  let dpnf = degradation "DPNextFailure" in
  check Alcotest.bool
    (Printf.sprintf "DPNF %.4f beats Young %.4f" dpnf (degradation "Young"))
    true
    (dpnf < degradation "Young");
  check Alcotest.bool
    (Printf.sprintf "DPNF %.4f beats OptExp %.4f" dpnf (degradation "OptExp"))
    true
    (dpnf < degradation "OptExp")

(* -- replication ------------------------------------------------------------------------ *)

let test_replication_runs () =
  let r =
    Replication.run ~config:mini_config ~processors:32 ~preset:mini_preset
      ~dist_kind:(Setup.Weibull 0.7) ()
  in
  check Alcotest.bool "all makespans positive" true
    (r.Replication.full_platform_makespan > 0.
    && r.Replication.half_platform_makespan > 0.
    && r.Replication.replicated_makespan > 0.);
  check Alcotest.bool "replication never slower than the plain half platform" true
    (r.Replication.replicated_makespan <= r.Replication.half_platform_makespan +. 1e-6)

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "environment" `Quick test_config_env;
          Alcotest.test_case "scale" `Quick test_config_scale;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv" `Quick test_csv_of_series;
          Alcotest.test_case "failed policy never prints nan" `Quick
            test_csv_no_nan_for_failed_policy;
          Alcotest.test_case "sweep csv extends the series csv" `Quick
            test_csv_of_tables_extends_series_csv;
          Alcotest.test_case "write_csv mkdir" `Quick test_write_csv_creates_directories;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "structure" `Quick test_plot_structure;
          Alcotest.test_case "skips NaN" `Quick test_plot_skips_nan;
          Alcotest.test_case "rejects empty" `Quick test_plot_rejects_empty;
        ] );
      ( "setup",
        [
          Alcotest.test_case "distributions" `Quick test_setup_distribution;
          Alcotest.test_case "policy roster" `Quick test_setup_policy_roster;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "monotone, ordered" `Quick test_fig1_monotone_and_ordered;
          Alcotest.test_case "k=1 equalizes" `Quick test_fig1_shape_one_equalizes;
        ] );
      ( "studies",
        [
          Alcotest.test_case "scaling structure" `Quick test_scaling_study_structure;
          Alcotest.test_case "series extraction" `Quick test_degradation_series_extraction;
          Alcotest.test_case "psuc approximation" `Quick test_psuc_approximation_error;
          Alcotest.test_case "headline claim" `Quick test_headline_claim_dpnf_wins_on_weibull;
          Alcotest.test_case "replication" `Quick test_replication_runs;
        ] );
    ]
