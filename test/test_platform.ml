(* Unit and property tests for the platform models. *)

module Units = Ckpt_platform.Units
module Overhead = Ckpt_platform.Overhead
module Workload = Ckpt_platform.Workload
module Machine = Ckpt_platform.Machine
module Presets = Ckpt_platform.Presets

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* -- units ------------------------------------------------------------------ *)

let test_units_conversions () =
  close "hour" 3600. Units.hour;
  close "day" 86400. Units.day;
  close "week" 604800. Units.week;
  close "year" (365.25 *. 86400.) Units.year;
  close "of_days" 172800. (Units.of_days 2.);
  close "to_years round trip" 3.5 (Units.to_years (Units.of_years 3.5))

let test_pp_duration () =
  let render v = Format.asprintf "%a" Units.pp_duration v in
  check Alcotest.string "seconds" "30.0 s" (render 30.);
  check Alcotest.string "hours" "2.00 h" (render 7200.);
  check Alcotest.string "days" "2.00 d" (render 172800.)

(* -- overhead ---------------------------------------------------------------- *)

let test_overhead_constant () =
  let o = Overhead.constant 600. in
  close "any p" 600. (Overhead.checkpoint_cost o ~processors:1);
  close "any p" 600. (Overhead.checkpoint_cost o ~processors:45208);
  close "recovery same" 600. (Overhead.recovery_cost o ~processors:7)

let test_overhead_proportional () =
  let o = Overhead.proportional ~cost_at:600. ~reference_processors:45208 in
  close "full platform" 600. (Overhead.checkpoint_cost o ~processors:45208);
  close "half platform doubles" 1200. (Overhead.checkpoint_cost o ~processors:22604)

let test_overhead_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Overhead.constant: negative cost")
    (fun () -> ignore (Overhead.constant (-1.)));
  Alcotest.check_raises "zero processors"
    (Invalid_argument "Overhead.checkpoint_cost: processors must be positive") (fun () ->
      ignore (Overhead.checkpoint_cost (Overhead.constant 1.) ~processors:0))

(* -- workload ----------------------------------------------------------------- *)

let test_workload_embarrassingly_parallel () =
  let w = Workload.create ~total_work:1000. ~model:Workload.Embarrassingly_parallel in
  close "W/p" 125. (Workload.parallel_time w ~processors:8);
  close "speedup" 8. (Workload.speedup w ~processors:8)

let test_workload_amdahl () =
  let w = Workload.create ~total_work:1000. ~model:(Workload.Amdahl 0.01) in
  close "W/p + gW" 135. (Workload.parallel_time w ~processors:8);
  check Alcotest.bool "speedup bounded by 1/gamma" true
    (Workload.speedup w ~processors:1_000_000 < 100.)

let test_workload_kernel () =
  let w = Workload.create ~total_work:1000. ~model:(Workload.Numerical_kernel 2.) in
  close ~tol:1e-6 "W/p + g W^(2/3)/sqrt p"
    (125. +. (2. *. (1000. ** (2. /. 3.)) /. sqrt 8.))
    (Workload.parallel_time w ~processors:8)

let test_workload_invalid () =
  Alcotest.check_raises "gamma >= 1"
    (Invalid_argument "Workload.create: Amdahl gamma outside [0, 1)") (fun () ->
      ignore (Workload.create ~total_work:1. ~model:(Workload.Amdahl 1.)));
  Alcotest.check_raises "zero work" (Invalid_argument "Workload.create: total_work must be positive")
    (fun () -> ignore (Workload.create ~total_work:0. ~model:Workload.Embarrassingly_parallel))

let test_paper_models () =
  check Alcotest.int "six models" 6 (List.length (Workload.all_paper_models ()))

let prop_parallel_time_decreasing =
  QCheck2.Test.make ~name:"W(p) decreases with p" ~count:300
    QCheck2.Gen.(
      triple
        (oneofl
           [ Workload.Embarrassingly_parallel; Workload.Amdahl 1e-4;
             Workload.Numerical_kernel 1. ])
        (int_range 1 10_000) (int_range 1 10_000))
    (fun (model, p1, p2) ->
      let w = Workload.create ~total_work:1e9 ~model in
      let lo = min p1 p2 and hi = max p1 p2 in
      Workload.parallel_time w ~processors:hi <= Workload.parallel_time w ~processors:lo +. 1e-6)

(* -- machine ------------------------------------------------------------------- *)

let test_machine_costs () =
  let m =
    Machine.create ~total_processors:1024 ~downtime:60.
      ~overhead:(Overhead.proportional ~cost_at:600. ~reference_processors:1024)
  in
  close "C(p)" 1200. (Machine.checkpoint_cost m ~processors:512);
  Alcotest.check_raises "too many processors"
    (Invalid_argument "Machine: 2048 processors outside [1, 1024]") (fun () ->
      ignore (Machine.checkpoint_cost m ~processors:2048))

(* -- presets (Table 1) ----------------------------------------------------------- *)

let test_presets_table1 () =
  let one = Presets.one_processor ~mtbf:Units.hour in
  close "1-proc W = 20 d" (Units.of_days 20.) one.Presets.total_work;
  close "1-proc D" 60. one.Presets.machine.Machine.downtime;
  let peta = Presets.petascale () in
  check Alcotest.int "Jaguar size" 45208 peta.Presets.machine.Machine.total_processors;
  close "peta W = 1000 y" (Units.of_years 1000.) peta.Presets.total_work;
  close "peta MTBF = 125 y" (Units.of_years 125.) peta.Presets.processor_mtbf;
  check Alcotest.bool "counts end at the full machine" true
    (List.mem 45208 peta.Presets.job_processor_counts);
  let exa = Presets.exascale () in
  check Alcotest.int "2^20 processors" (1 lsl 20) exa.Presets.machine.Machine.total_processors;
  close "exa W = 10000 y" (Units.of_years 10000.) exa.Presets.total_work;
  close "exa MTBF = 1250 y" (Units.of_years 1250.) exa.Presets.processor_mtbf

let test_presets_proportional_flag () =
  let peta = Presets.petascale ~proportional_overhead:true () in
  close "C at full machine" 600.
    (Machine.checkpoint_cost peta.Presets.machine ~processors:45208);
  check Alcotest.bool "higher cost at fewer processors" true
    (Machine.checkpoint_cost peta.Presets.machine ~processors:1024 > 600.)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_parallel_time_decreasing ]

let () =
  Alcotest.run "platform"
    [
      ( "units",
        [
          Alcotest.test_case "conversions" `Quick test_units_conversions;
          Alcotest.test_case "pp_duration" `Quick test_pp_duration;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "constant" `Quick test_overhead_constant;
          Alcotest.test_case "proportional" `Quick test_overhead_proportional;
          Alcotest.test_case "invalid" `Quick test_overhead_invalid;
        ] );
      ( "workload",
        [
          Alcotest.test_case "embarrassingly parallel" `Quick test_workload_embarrassingly_parallel;
          Alcotest.test_case "amdahl" `Quick test_workload_amdahl;
          Alcotest.test_case "numerical kernel" `Quick test_workload_kernel;
          Alcotest.test_case "invalid" `Quick test_workload_invalid;
          Alcotest.test_case "paper models" `Quick test_paper_models;
        ] );
      ("machine", [ Alcotest.test_case "costs and validation" `Quick test_machine_costs ]);
      ( "presets",
        [
          Alcotest.test_case "table 1 values" `Quick test_presets_table1;
          Alcotest.test_case "proportional overhead" `Quick test_presets_proportional_flag;
        ] );
      ("properties", qcheck_cases);
    ]
