(* Unit and property tests for the core contribution: Theorem 1, the
   DP context, the age-summary compression and both dynamic programs. *)

module Theory = Ckpt_core.Theory
module Dp_context = Ckpt_core.Dp_context
module Age_summary = Ckpt_core.Age_summary
module Dp_makespan = Ckpt_core.Dp_makespan
module Dp_next_failure = Ckpt_core.Dp_next_failure
module D = Ckpt_distributions.Distribution
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* -- Theorem 1 ------------------------------------------------------------- *)

let test_tlost_limits () =
  close ~tol:1e-8 "w/2 limit" 0.05 (Theory.expected_tlost ~rate:1e-9 ~window:0.1);
  close ~tol:1e-3 "1/rate limit" 100. (Theory.expected_tlost ~rate:0.01 ~window:1e5)

let test_trec_simplification () =
  (* D + R + (e^{lR}-1)(D + E(Tlost R)) = D + (e^{lR}-1)(D + 1/l). *)
  let rate = 1. /. 3600. and recovery = 600. and downtime = 60. in
  close ~tol:1e-8 "algebraic identity"
    (downtime +. ((exp (rate *. recovery) -. 1.) *. (downtime +. (1. /. rate))))
    (Theory.expected_trec ~rate ~recovery ~downtime)

let test_chunk_count_stationarity () =
  (* K0 zeroes psi' (checked by a symmetric difference quotient). *)
  let rate = 1. /. 86400. and work = 20. *. 86400. and checkpoint = 600. in
  let k0 = Theory.chunk_count_real ~rate ~work ~checkpoint in
  let psi k = k *. (exp (rate *. ((work /. k) +. checkpoint)) -. 1.) in
  let h = 1e-4 in
  let derivative = (psi (k0 +. h) -. psi (k0 -. h)) /. (2. *. h) in
  close ~tol:1e-8 "psi'(K0) = 0" 0. derivative

let test_optimal_chunk_count_beats_neighbors () =
  List.iter
    (fun (mtbf, work) ->
      let rate = 1. /. mtbf in
      let k = Theory.optimal_chunk_count ~rate ~work ~checkpoint:600. in
      let v = Theory.psi ~rate ~work ~checkpoint:600. k in
      if k > 1 then
        check Alcotest.bool "better than k-1" true
          (v <= Theory.psi ~rate ~work ~checkpoint:600. (k - 1) +. 1e-9);
      check Alcotest.bool "better than k+1" true
        (v <= Theory.psi ~rate ~work ~checkpoint:600. (k + 1) +. 1e-9))
    [ (3600., 86400.); (86400., 1.728e6); (604800., 1.728e6); (3.9e9, 1e7) ]

let test_expected_makespan_brute_force () =
  (* The closed-form K* must minimize the expected makespan over an
     exhaustive scan of chunk counts. *)
  let rate = 1. /. 86400. and work = 20. *. 86400. in
  let f k =
    Theory.expected_makespan_for_count ~rate ~work ~checkpoint:600. ~recovery:600. ~downtime:60. k
  in
  let best = ref 1 in
  for k = 1 to 600 do
    if f k < f !best then best := k
  done;
  check Alcotest.int "brute force agrees"
    !best
    (Theory.optimal_chunk_count ~rate ~work ~checkpoint:600.)

let test_optimal_at_most_single_chunk () =
  let rate = 1. /. 3600. and work = 86400. in
  check Alcotest.bool "optimal <= naive" true
    (Theory.optimal_expected_makespan ~rate ~work ~checkpoint:600. ~recovery:600. ~downtime:60.
    <= Theory.expected_makespan_single_chunk ~rate ~work ~checkpoint:600. ~recovery:600.
         ~downtime:60.)

let test_optimal_period_near_young () =
  (* For small lambda C the optimum converges to Young's sqrt(2 C / l). *)
  let rate = 1. /. 3.9e9 and checkpoint = 600. in
  let work = 1e9 in
  let period = Theory.optimal_period ~rate ~work ~checkpoint in
  let young = sqrt (2. *. checkpoint /. rate) in
  check Alcotest.bool
    (Printf.sprintf "period %.0f within 5%% of young %.0f" period young)
    true
    (abs_float (period -. young) /. young < 0.05)

let test_macro_rate () =
  close "p lambda" 0.5 (Theory.macro_rate ~rate:0.001 ~processors:500);
  Alcotest.check_raises "bad p" (Invalid_argument "Theory.macro_rate: processors must be positive")
    (fun () -> ignore (Theory.macro_rate ~rate:1. ~processors:0))

let test_parallel_consistency () =
  (* Proposition 5 is Theorem 1 on the macro-processor. *)
  let rate = 1. /. 3.9e9 and p = 1024 and work = 7e5 and checkpoint = 600. in
  check Alcotest.int "macro substitution"
    (Theory.optimal_chunk_count ~rate:(rate *. float_of_int p) ~work ~checkpoint)
    (Theory.parallel_optimal_chunk_count ~rate ~processors:p ~parallel_work:work ~checkpoint)

let test_theory_invalid () =
  Alcotest.check_raises "psi k=0" (Invalid_argument "Theory.psi: k must be positive") (fun () ->
      ignore (Theory.psi ~rate:1. ~work:1. ~checkpoint:1. 0));
  Alcotest.check_raises "negative work" (Invalid_argument "Theory: work must be positive")
    (fun () -> ignore (Theory.chunk_count_real ~rate:1. ~work:0. ~checkpoint:1.))

(* -- Dp_context --------------------------------------------------------------- *)

let exp_context =
  Dp_context.create ~dist:(Exponential.of_mtbf ~mtbf:86400.) ~checkpoint:600. ~recovery:600.
    ~downtime:60.

let test_context_trec_matches_theory () =
  close ~tol:1e-6 "E(Trec)"
    (Theory.expected_trec ~rate:(1. /. 86400.) ~recovery:600. ~downtime:60.)
    (Dp_context.expected_trec exp_context)

let test_context_psuc () =
  close ~tol:1e-12 "delegates to the distribution" (exp (-.1200. /. 86400.))
    (Dp_context.psuc exp_context ~age:0. ~duration:1200.)

let test_context_invalid () =
  Alcotest.check_raises "negative downtime"
    (Invalid_argument "Dp_context.create: negative downtime") (fun () ->
      ignore
        (Dp_context.create ~dist:(Exponential.create ~rate:1.) ~checkpoint:1. ~recovery:1.
           ~downtime:(-1.)))

(* -- Age_summary --------------------------------------------------------------- *)

let weibull_dist = Weibull.of_mtbf ~mtbf:1e6 ~shape:0.7

let random_ages n =
  let rng = Ckpt_prng.Rng.create ~seed:17L in
  Array.init n (fun _ -> Ckpt_prng.Rng.uniform rng *. 3e6)

let test_age_summary_exact_psuc () =
  (* Against the direct product over ages. *)
  let ages = [| 100.; 5000.; 2e5 |] in
  let s = Age_summary.exact_of_ages ages in
  let direct =
    Array.fold_left
      (fun acc tau -> acc *. D.conditional_survival weibull_dist ~age:tau ~duration:4e4)
      1. ages
  in
  close ~tol:1e-12 "product of conditionals" direct
    (Age_summary.psuc weibull_dist s ~elapsed:0. ~duration:4e4)

let test_age_summary_elapsed_shift () =
  let ages = [| 100.; 5000.; 2e5 |] in
  let s = Age_summary.exact_of_ages ages in
  let shifted = Age_summary.exact_of_ages (Array.map (fun a -> a +. 7e3) ages) in
  close ~tol:1e-12 "elapsed = shifting every age"
    (Age_summary.psuc weibull_dist shifted ~elapsed:0. ~duration:4e4)
    (Age_summary.psuc weibull_dist s ~elapsed:7e3 ~duration:4e4)

let test_age_summary_small_platform_lossless () =
  let ages = random_ages 8 in
  let s =
    Age_summary.build ~nexact:10 ~napprox:100 weibull_dist ~processors:8
      ~iter_ages:(fun f -> Array.iter f ages)
  in
  check Alcotest.int "all exact" 8 (Array.length s.Age_summary.exact);
  check Alcotest.int "processors preserved" 8 (Age_summary.processors s)

let test_age_summary_approximation_accuracy () =
  (* Section 3.3: relative error below 0.2% for chunks up to the
     platform MTBF. *)
  let n = 4096 in
  let ages = random_ages n in
  let exact = Age_summary.exact_of_ages ages in
  let approx =
    Age_summary.build weibull_dist ~processors:n ~iter_ages:(fun f -> Array.iter f ages)
  in
  check Alcotest.int "processors preserved" n (Age_summary.processors approx);
  let platform_mtbf = 1e6 /. float_of_int n in
  List.iter
    (fun i ->
      let chunk = platform_mtbf /. (2. ** float_of_int i) in
      let pe = Age_summary.psuc weibull_dist exact ~elapsed:0. ~duration:chunk in
      let pa = Age_summary.psuc weibull_dist approx ~elapsed:0. ~duration:chunk in
      let err = abs_float (pa -. pe) /. pe in
      check Alcotest.bool (Printf.sprintf "error %.2e at chunk 2^-%d MTBF" err i) true
        (err < 2e-3))
    [ 0; 2; 4; 6 ]

let test_age_summary_incremental () =
  (* A fixed failure history, mirrored in a plain age vector: the
     incremental structure must reproduce [build] exactly. *)
  let births = [| 0.; 0.; 2e5; 5e5; 0.; 9e5 |] in
  let inc = Age_summary.Incremental.create ~births in
  check Alcotest.int "units" 6 (Age_summary.Incremental.units inc);
  let mirror = Array.copy births in
  let fail proc ~date ~downtime =
    Age_summary.Incremental.update inc ~old_birth:mirror.(proc) ~new_birth:(date +. downtime);
    mirror.(proc) <- date +. downtime
  in
  fail 2 ~date:1.1e6 ~downtime:60.;
  fail 0 ~date:1.3e6 ~downtime:60.;
  fail 2 ~date:1.35e6 ~downtime:60.;
  let now = 1.5e6 in
  let ages = Array.map (fun b -> Float.max 0. (now -. b)) mirror in
  let expected =
    Age_summary.build ~nexact:2 ~napprox:3 weibull_dist ~processors:6
      ~iter_ages:(fun f -> Array.iter f ages)
  in
  let got = Age_summary.Incremental.summarize ~nexact:2 ~napprox:3 inc weibull_dist ~now in
  check Alcotest.bool "summarize == build" true (got = expected);
  Alcotest.check_raises "unknown birth"
    (Invalid_argument "Age_summary.Incremental.update: unknown birth instant") (fun () ->
      Age_summary.Incremental.update inc ~old_birth:123.456 ~new_birth:1e6)

let test_age_summary_errors () =
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Age_summary.build: iter_ages count mismatch") (fun () ->
      ignore
        (Age_summary.build weibull_dist ~processors:100 ~iter_ages:(fun f -> f 1.)));
  Alcotest.check_raises "napprox too small"
    (Invalid_argument "Age_summary.build: napprox must be at least 2") (fun () ->
      ignore
        (Age_summary.build ~napprox:1 weibull_dist ~processors:100 ~iter_ages:(fun f ->
             for _ = 1 to 100 do
               f 1.
             done)))

(* -- Dp_next_failure -------------------------------------------------------------- *)

let test_dpnf_expected_work_manual () =
  (* Two chunks on a fresh exponential processor, by hand. *)
  let dist = Exponential.create ~rate:1e-4 in
  let ctx = Dp_context.create ~dist ~checkpoint:100. ~recovery:100. ~downtime:0. in
  let ages = Age_summary.exact_of_ages [| 0. |] in
  let p1 = exp (-1e-4 *. 600.) in
  let p2 = exp (-1e-4 *. 1100.) in
  close ~tol:1e-12 "closed form"
    ((p1 *. 500.) +. (p1 *. p2 *. 1000.))
    (Dp_next_failure.expected_work_of_chunks ~context:ctx ~ages [ 500.; 1000. ])

let brute_force_best ~context ~ages ~quanta ~quantum =
  (* Enumerate every composition of [quanta] and keep the best
     objective value. *)
  let rec compositions n =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun first -> List.map (fun rest -> first :: rest) (compositions (n - first)))
        (List.init n (fun i -> i + 1))
  in
  List.fold_left
    (fun best comp ->
      let chunks = List.map (fun i -> float_of_int i *. quantum) comp in
      Float.max best (Dp_next_failure.expected_work_of_chunks ~context ~ages chunks))
    neg_infinity (compositions quanta)

let test_dpnf_optimal_vs_brute_force () =
  (* Small instance with the checkpoint a multiple of the quantum so
     the DP's grid is exact; the DP must match exhaustive search. *)
  List.iter
    (fun dist ->
      let ctx = Dp_context.create ~dist ~checkpoint:1000. ~recovery:1000. ~downtime:0. in
      let ages = Age_summary.exact_of_ages [| 50.; 800. |] in
      (* Six quanta of 1000 s with C = 1000 s = one quantum: the DP
         grid is exact, so the DP must match exhaustive search over
         all 32 compositions. *)
      let plan =
        Dp_next_failure.solve ~max_states:6 ~truncation_factor:0. ~context:ctx ~ages ~work:6000.
          ()
      in
      close ~tol:1e-9 "quantum" 1000. plan.Dp_next_failure.quantum;
      let best = brute_force_best ~context:ctx ~ages ~quanta:6 ~quantum:1000. in
      close ~tol:1e-9 "DP matches brute force" best
        (Dp_next_failure.expected_work_of_chunks ~context:ctx ~ages plan.Dp_next_failure.chunks);
      (* The DP's own value estimate interpolates the platform
         log-survival, so it only approximates the exact objective. *)
      close ~tol:(best /. 500.) "DP objective near brute force" best
        plan.Dp_next_failure.expected_work)
    [ Exponential.create ~rate:1e-4; Weibull.of_mtbf ~mtbf:1e4 ~shape:0.7 ]

let test_dpnf_plan_consistency () =
  let ctx = Dp_context.create ~dist:weibull_dist ~checkpoint:600. ~recovery:600. ~downtime:60. in
  let ages = Age_summary.exact_of_ages (random_ages 16) in
  let plan = Dp_next_failure.solve ~context:ctx ~ages ~work:5e5 () in
  (* Chunks tile the planned work exactly. *)
  let total = List.fold_left ( +. ) 0. plan.Dp_next_failure.chunks in
  let planned = if plan.Dp_next_failure.truncated then 2. *. (1e6 /. 16.) else 5e5 in
  close ~tol:1e-6 "chunks tile the planned work" planned total;
  (* The DP's claimed objective matches re-evaluating its own plan
     (the grid quantizes C, so allow a small gap). *)
  let replayed =
    Dp_next_failure.expected_work_of_chunks ~context:ctx ~ages plan.Dp_next_failure.chunks
  in
  check Alcotest.bool "objective consistent" true
    (abs_float (replayed -. plan.Dp_next_failure.expected_work) /. replayed < 0.02)

let test_dpnf_truncation () =
  let ctx = Dp_context.create ~dist:weibull_dist ~checkpoint:600. ~recovery:600. ~downtime:60. in
  let ages = Age_summary.exact_of_ages (random_ages 64) in
  (* Platform MTBF = 1e6/64 ~ 15625; work far larger triggers truncation. *)
  let plan = Dp_next_failure.solve ~context:ctx ~ages ~work:1e7 () in
  check Alcotest.bool "truncated" true plan.Dp_next_failure.truncated;
  close ~tol:1. "valid work is half the planned work" (15625. )
    plan.Dp_next_failure.valid_work;
  let untruncated = Dp_next_failure.solve ~truncation_factor:0. ~context:ctx ~ages ~work:5e4 () in
  check Alcotest.bool "not truncated" false untruncated.Dp_next_failure.truncated

let test_dpnf_invalid () =
  let ctx = exp_context in
  let ages = Age_summary.exact_of_ages [| 0. |] in
  Alcotest.check_raises "zero work" (Invalid_argument "Dp_next_failure.solve: work must be positive")
    (fun () -> ignore (Dp_next_failure.solve ~context:ctx ~ages ~work:0. ()))

(* -- Dp_makespan --------------------------------------------------------------------- *)

let test_dpm_optimal_vs_brute_force_exponential () =
  (* For memoryless failures the expected makespan of any chunk
     multiset has the closed form
     sum_i (1/lambda + E(Trec)) (e^(lambda (w_i + C)) - 1); the DP
     restricted to a 6-quantum grid must match the best composition. *)
  let rate = 1e-4 in
  let ctx =
    Dp_context.create ~dist:(Exponential.create ~rate) ~checkpoint:1000. ~recovery:1000.
      ~downtime:100.
  in
  let quantum = 1500. in
  let quanta = 6 in
  let work = quantum *. float_of_int quanta in
  let trec = Theory.expected_trec ~rate ~recovery:1000. ~downtime:100. in
  let cost_of_chunks chunks =
    List.fold_left
      (fun acc w -> acc +. (((1. /. rate) +. trec) *. (exp (rate *. (w +. 1000.)) -. 1.)))
      0. chunks
  in
  let rec compositions n =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun first -> List.map (fun rest -> first :: rest) (compositions (n - first)))
        (List.init n (fun i -> i + 1))
  in
  let best =
    List.fold_left
      (fun acc comp ->
        Float.min acc (cost_of_chunks (List.map (fun i -> float_of_int i *. quantum) comp)))
      infinity (compositions quanta)
  in
  let t = Dp_makespan.solve ~quantum ~context:ctx ~work ~initial_age:0. () in
  close ~tol:(best /. 1e7) "DP equals exhaustive search" best (Dp_makespan.expected_makespan t)

let test_dpm_matches_theory_exponential () =
  (* For Exponential failures the DP should land within a few percent
     of Theorem 1's optimum. *)
  let work = 20. *. 86400. in
  let t = Dp_makespan.solve ~context:exp_context ~work ~initial_age:0. () in
  let dp = Dp_makespan.expected_makespan t in
  let opt =
    Theory.optimal_expected_makespan ~rate:(1. /. 86400.) ~work ~checkpoint:600. ~recovery:600.
      ~downtime:60.
  in
  check Alcotest.bool
    (Printf.sprintf "DP %.4g within 2%% of theory %.4g" dp opt)
    true
    (abs_float (dp -. opt) /. opt < 0.02);
  check Alcotest.bool "never better than the true optimum minus quantization slack" true
    (dp > opt *. 0.98)

let test_dpm_cursor_walk () =
  let work = 20. *. 86400. in
  let t = Dp_makespan.solve ~context:exp_context ~work ~initial_age:0. () in
  (* Following successes only, the chunks tile the work exactly. *)
  let rec walk c acc steps =
    if steps > 10_000 then Alcotest.fail "cursor does not terminate";
    let chunk = Dp_makespan.next_chunk c in
    if chunk = 0. then acc else walk (Dp_makespan.advance_success c) (acc +. chunk) (steps + 1)
  in
  close ~tol:1e-6 "chunks tile the work" work (walk (Dp_makespan.start t) 0. 0)

let test_dpm_failure_preserves_work () =
  let t = Dp_makespan.solve ~context:exp_context ~work:86400. ~initial_age:0. () in
  let c = Dp_makespan.start t in
  let c = Dp_makespan.advance_success c in
  let before = Dp_makespan.remaining_work c in
  let c = Dp_makespan.advance_failure c in
  close "failure keeps remaining work" before (Dp_makespan.remaining_work c);
  check Alcotest.bool "still prescribes a chunk" true (Dp_makespan.next_chunk c > 0.)

let test_dpm_lower_bound () =
  (* E(T) can never undercut the failure-free time of the same plan. *)
  let work = 86400. in
  let t = Dp_makespan.solve ~context:exp_context ~work ~initial_age:0. () in
  check Alcotest.bool "at least work + C" true
    (Dp_makespan.expected_makespan t >= work +. 600.)

let test_dpm_weibull_age_sensitivity () =
  (* With decreasing hazard, a freshly-recovered platform (small age)
     faces more risk: its first chunk should not exceed the one
     prescribed at an old age. *)
  let ctx =
    Dp_context.create ~dist:(Weibull.of_mtbf ~mtbf:86400. ~shape:0.5) ~checkpoint:600.
      ~recovery:600. ~downtime:60.
  in
  let young_t = Dp_makespan.solve ~context:ctx ~work:86400. ~initial_age:60. () in
  let old_t = Dp_makespan.solve ~context:ctx ~work:86400. ~initial_age:(30. *. 86400.) () in
  check Alcotest.bool "older age allows no smaller first chunk" true
    (Dp_makespan.next_chunk (Dp_makespan.start old_t)
    >= Dp_makespan.next_chunk (Dp_makespan.start young_t) -. 1e-9)

let test_dpm_explicit_quantum () =
  let t =
    Dp_makespan.solve ~quantum:7200. ~context:exp_context ~work:86400. ~initial_age:0. ()
  in
  close ~tol:1e-9 "quantum respected" 7200. (Dp_makespan.quantum t)

let test_dpm_invalid () =
  Alcotest.check_raises "zero work" (Invalid_argument "Dp_makespan.solve: work must be positive")
    (fun () -> ignore (Dp_makespan.solve ~context:exp_context ~work:0. ~initial_age:0. ()))

let test_dpm_pack_boundary () =
  (* A checkpoint worth 3e6 quanta drives the makespan coordinate of
     the packed state beyond 2^24 — the zone the previous 24-bit field
     corrupted silently.  The widened layout must still solve it: the
     makespan is finite, at least the mandatory checkpoint costs, and
     the cursor tiles the work. *)
  let ctx =
    Dp_context.create ~dist:(Exponential.of_mtbf ~mtbf:1e9) ~checkpoint:3e6 ~recovery:1.
      ~downtime:0.
  in
  let t = Dp_makespan.solve ~quantum:1. ~context:ctx ~work:8. ~initial_age:0. () in
  let m = Dp_makespan.expected_makespan t in
  check Alcotest.bool "finite makespan" true (Float.is_finite m);
  check Alcotest.bool "pays at least one checkpoint" true (m >= 3e6);
  let rec walk c acc steps =
    if steps > 100 then Alcotest.fail "cursor does not terminate";
    let chunk = Dp_makespan.next_chunk c in
    if chunk = 0. then acc else walk (Dp_makespan.advance_success c) (acc +. chunk) (steps + 1)
  in
  close ~tol:1e-9 "chunks tile the work" 8. (walk (Dp_makespan.start t) 0. 0)

let test_dpm_pack_overflow_rejected () =
  (* Instances whose makespan coordinate cannot fit the 31-bit field
     must be rejected up front, never solved with corrupted keys. *)
  let ctx =
    Dp_context.create ~dist:(Exponential.of_mtbf ~mtbf:1e9) ~checkpoint:3e8 ~recovery:1.
      ~downtime:0.
  in
  Alcotest.check_raises "ratio overflow"
    (Invalid_argument "Dp_makespan.solve: checkpoint/quantum ratio overflows the packed state layout")
    (fun () -> ignore (Dp_makespan.solve ~quantum:1. ~context:ctx ~work:16. ~initial_age:0. ()))

(* -- properties ------------------------------------------------------------------ *)

let prop_optimal_count_weakly_increasing_in_work =
  QCheck2.Test.make ~name:"K* weakly increases with work" ~count:200
    QCheck2.Gen.(triple (float_range 1e3 1e7) (float_range 1e3 1e7) (float_range 1e-7 1e-3))
    (fun (w1, w2, rate) ->
      let lo = Float.min w1 w2 and hi = Float.max w1 w2 in
      Theory.optimal_chunk_count ~rate ~work:lo ~checkpoint:600.
      <= Theory.optimal_chunk_count ~rate ~work:hi ~checkpoint:600.)

let prop_optimal_count_decreasing_in_checkpoint =
  QCheck2.Test.make ~name:"K* weakly decreases with checkpoint cost" ~count:200
    QCheck2.Gen.(pair (float_range 10. 5000.) (float_range 10. 5000.))
    (fun (c1, c2) ->
      let lo = Float.min c1 c2 and hi = Float.max c1 c2 in
      let rate = 1. /. 86400. and work = 1e6 in
      Theory.optimal_chunk_count ~rate ~work ~checkpoint:hi
      <= Theory.optimal_chunk_count ~rate ~work ~checkpoint:lo)

let prop_dpnf_expected_work_bounded =
  QCheck2.Test.make ~name:"E(W) lies in [0, planned work]" ~count:60
    QCheck2.Gen.(pair (float_range 1e3 1e6) (float_range 0.3 1.5))
    (fun (work, shape) ->
      let dist = Weibull.of_mtbf ~mtbf:5e4 ~shape in
      let ctx = Dp_context.create ~dist ~checkpoint:600. ~recovery:600. ~downtime:60. in
      let ages = Age_summary.exact_of_ages [| 100.; 4e4; 9e4 |] in
      let plan = Dp_next_failure.solve ~max_states:48 ~context:ctx ~ages ~work () in
      let planned = List.fold_left ( +. ) 0. plan.Dp_next_failure.chunks in
      plan.Dp_next_failure.expected_work >= 0.
      && plan.Dp_next_failure.expected_work <= planned +. 1e-6)

let prop_age_summary_psuc_in_unit =
  QCheck2.Test.make ~name:"summarized Psuc stays a probability" ~count:100
    QCheck2.Gen.(pair (int_range 12 300) (float_range 1. 1e6))
    (fun (n, duration) ->
      let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int n) in
      let ages = Array.init n (fun _ -> Ckpt_prng.Rng.uniform rng *. 3e6) in
      let s =
        Age_summary.build weibull_dist ~processors:n ~iter_ages:(fun f -> Array.iter f ages)
      in
      let p = Age_summary.psuc weibull_dist s ~elapsed:0. ~duration in
      p >= 0. && p <= 1. +. 1e-12)

let prop_dpnf_pruned_equals_unpruned =
  (* The monotone divide-and-conquer prune only narrows which
     candidates each cell scans; the plan and its value must be
     bit-identical to the exhaustive scan, for memoryless and
     decreasing-hazard distributions alike. *)
  QCheck2.Test.make ~name:"pruned DPNF solve is bit-identical to unpruned" ~count:40
    QCheck2.Gen.(triple (int_range 1 64) (float_range 0.1 4.) (float_range 0.4 1.2))
    (fun (procs, work_factor, shape) ->
      let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int ((procs * 7919) + int_of_float (shape *. 1e3))) in
      let ages = Array.init procs (fun _ -> Ckpt_prng.Rng.uniform rng *. 3e6) in
      let work = work_factor *. 1e6 /. float_of_int procs in
      List.for_all
        (fun dist ->
          let ctx = Dp_context.create ~dist ~checkpoint:600. ~recovery:600. ~downtime:60. in
          let summary =
            Age_summary.build dist ~processors:procs ~iter_ages:(fun f -> Array.iter f ages)
          in
          let solve prune =
            Dp_next_failure.solve ~max_states:60 ~prune ~context:ctx ~ages:summary ~work ()
          in
          let pruned = solve true and plain = solve false in
          pruned.Dp_next_failure.chunks = plain.Dp_next_failure.chunks
          && pruned.Dp_next_failure.expected_work = plain.Dp_next_failure.expected_work
          && pruned.Dp_next_failure.valid_work = plain.Dp_next_failure.valid_work)
        [ Exponential.of_mtbf ~mtbf:1e6; Weibull.of_mtbf ~mtbf:1e6 ~shape ])

let prop_incremental_summary_matches_build =
  (* After an arbitrary failure sequence the incremental structure's
     summary equals a from-scratch [build] over the mirrored age
     vector, structurally (same floats, same counts).  A quarter of
     the births are tied at zero to exercise the tie rule at the
     exact/approximate threshold. *)
  QCheck2.Test.make ~name:"incremental summary == build after failures" ~count:80
    QCheck2.Gen.(
      pair
        (triple (int_range 1 400) (int_range 0 30) (int_range 0 10_000))
        (pair (int_range 0 12) (int_range 2 40)))
    (fun ((units, failures, seed), (nexact, napprox)) ->
      let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int seed) in
      let births =
        Array.init units (fun _ ->
            if Ckpt_prng.Rng.uniform rng < 0.25 then 0. else Ckpt_prng.Rng.uniform rng *. 1e6)
      in
      let inc = Age_summary.Incremental.create ~births in
      let mirror = Array.copy births in
      let now = ref 1e6 in
      for _ = 1 to failures do
        let proc =
          min (units - 1) (int_of_float (Ckpt_prng.Rng.uniform rng *. float_of_int units))
        in
        now := !now +. (Ckpt_prng.Rng.uniform rng *. 1e5);
        let new_birth = !now +. 60. in
        Age_summary.Incremental.update inc ~old_birth:mirror.(proc) ~new_birth;
        mirror.(proc) <- new_birth
      done;
      now := !now +. 1e4;
      let ages = Array.map (fun b -> Float.max 0. (!now -. b)) mirror in
      let expected =
        Age_summary.build ~nexact ~napprox weibull_dist ~processors:units
          ~iter_ages:(fun f -> Array.iter f ages)
      in
      Age_summary.Incremental.summarize ~nexact ~napprox inc weibull_dist ~now:!now = expected)

let prop_hazard_grid_accuracy =
  (* The sqrt-spaced grid must track the exact cumulative hazard to
     within its documented interpolation error over the span, and fall
     back to the exact value outside it. *)
  QCheck2.Test.make ~name:"hazard grid tracks the exact H" ~count:100
    QCheck2.Gen.(pair (float_range 1. 9.9e5) (float_range 0.55 1.5))
    (fun (x, shape) ->
      let dist = Weibull.of_mtbf ~mtbf:1e6 ~shape in
      let grid = Ckpt_distributions.Hazard_grid.make dist ~hi:1e6 ~points:4096 in
      let exact = dist.D.cumulative_hazard x in
      let approx = Ckpt_distributions.Hazard_grid.eval grid x in
      abs_float (approx -. exact) <= 1e-4 *. (1. +. abs_float exact)
      && Ckpt_distributions.Hazard_grid.eval grid (2e6 +. x) = dist.D.cumulative_hazard (2e6 +. x))

let core_qcheck =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_optimal_count_weakly_increasing_in_work;
      prop_optimal_count_decreasing_in_checkpoint;
      prop_dpnf_expected_work_bounded;
      prop_age_summary_psuc_in_unit;
      prop_dpnf_pruned_equals_unpruned;
      prop_incremental_summary_matches_build;
      prop_hazard_grid_accuracy;
    ]

(* -- Waste (first-order analysis) --------------------------------------------- *)

module Waste = Ckpt_core.Waste

let test_waste_optimum_is_young () =
  close ~tol:1e-9 "sqrt(2CM)" (sqrt (2. *. 600. *. 86400.))
    (Waste.optimal_period ~checkpoint:600. ~platform_mtbf:86400.)

let test_waste_minimized_at_optimum () =
  let m = 86400. and c = 600. in
  let opt = Waste.optimal_period ~checkpoint:c ~platform_mtbf:m in
  let w = Waste.waste_fraction ~period:opt ~checkpoint:c ~platform_mtbf:m in
  List.iter
    (fun f ->
      check Alcotest.bool
        (Printf.sprintf "no better at %g x" f)
        true
        (Waste.waste_fraction ~period:(opt *. f) ~checkpoint:c ~platform_mtbf:m >= w -. 1e-4))
    [ 0.3; 0.5; 2.; 3. ]

let test_waste_predicts_simulated_overhead () =
  (* Theorem 1's exact expected makespan and the first-order
     prediction should agree within a few percent in the small-waste
     regime. *)
  let rate = 1. /. 86400. and work = 20. *. 86400. in
  let exact =
    Theory.optimal_expected_makespan ~rate ~work ~checkpoint:600. ~recovery:600. ~downtime:60.
  in
  let approx = Waste.expected_makespan ~work ~checkpoint:600. ~platform_mtbf:86400. in
  check Alcotest.bool
    (Printf.sprintf "first order %.4g vs exact %.4g" approx exact)
    true
    (abs_float (approx -. exact) /. exact < 0.03)

let test_waste_processor_limit () =
  (* 125 years / (2 * 600 s) = 3,287,250 processors. *)
  check Alcotest.int "mu / 2C" 3_287_250
    (Waste.usable_processor_limit ~checkpoint:600.
       ~processor_mtbf:(125. *. 365.25 *. 86400.));
  check Alcotest.int "at least one" 1
    (Waste.usable_processor_limit ~checkpoint:600. ~processor_mtbf:60.)

let test_waste_invalid () =
  Alcotest.check_raises "bad mtbf" (Invalid_argument "Waste: platform_mtbf must be positive")
    (fun () -> ignore (Waste.optimal_period ~checkpoint:1. ~platform_mtbf:0.))

let () =
  Alcotest.run "core"
    [
      ( "theory",
        [
          Alcotest.test_case "tlost limits" `Quick test_tlost_limits;
          Alcotest.test_case "trec simplification" `Quick test_trec_simplification;
          Alcotest.test_case "K0 stationarity" `Quick test_chunk_count_stationarity;
          Alcotest.test_case "K* beats neighbors" `Quick test_optimal_chunk_count_beats_neighbors;
          Alcotest.test_case "brute-force K*" `Quick test_expected_makespan_brute_force;
          Alcotest.test_case "optimal <= single chunk" `Quick test_optimal_at_most_single_chunk;
          Alcotest.test_case "converges to Young" `Quick test_optimal_period_near_young;
          Alcotest.test_case "macro rate" `Quick test_macro_rate;
          Alcotest.test_case "Proposition 5 = macro Theorem 1" `Quick test_parallel_consistency;
          Alcotest.test_case "invalid args" `Quick test_theory_invalid;
        ] );
      ( "dp_context",
        [
          Alcotest.test_case "trec matches theory" `Quick test_context_trec_matches_theory;
          Alcotest.test_case "psuc" `Quick test_context_psuc;
          Alcotest.test_case "invalid args" `Quick test_context_invalid;
        ] );
      ( "age_summary",
        [
          Alcotest.test_case "exact psuc" `Quick test_age_summary_exact_psuc;
          Alcotest.test_case "elapsed shift" `Quick test_age_summary_elapsed_shift;
          Alcotest.test_case "small platform lossless" `Quick test_age_summary_small_platform_lossless;
          Alcotest.test_case "Section 3.3 accuracy" `Quick test_age_summary_approximation_accuracy;
          Alcotest.test_case "incremental matches build" `Quick test_age_summary_incremental;
          Alcotest.test_case "errors" `Quick test_age_summary_errors;
        ] );
      ( "dp_next_failure",
        [
          Alcotest.test_case "objective closed form" `Quick test_dpnf_expected_work_manual;
          Alcotest.test_case "optimal vs brute force" `Quick test_dpnf_optimal_vs_brute_force;
          Alcotest.test_case "plan consistency" `Quick test_dpnf_plan_consistency;
          Alcotest.test_case "truncation" `Quick test_dpnf_truncation;
          Alcotest.test_case "invalid args" `Quick test_dpnf_invalid;
        ] );
      ( "waste",
        [
          Alcotest.test_case "optimum is Young" `Quick test_waste_optimum_is_young;
          Alcotest.test_case "minimized at optimum" `Quick test_waste_minimized_at_optimum;
          Alcotest.test_case "predicts Theorem 1" `Quick test_waste_predicts_simulated_overhead;
          Alcotest.test_case "processor limit" `Quick test_waste_processor_limit;
          Alcotest.test_case "invalid" `Quick test_waste_invalid;
        ] );
      ( "dp_makespan",
        [
          Alcotest.test_case "optimal vs brute force" `Quick
            test_dpm_optimal_vs_brute_force_exponential;
          Alcotest.test_case "matches Theorem 1" `Quick test_dpm_matches_theory_exponential;
          Alcotest.test_case "cursor tiles the work" `Quick test_dpm_cursor_walk;
          Alcotest.test_case "failure preserves work" `Quick test_dpm_failure_preserves_work;
          Alcotest.test_case "lower bound" `Quick test_dpm_lower_bound;
          Alcotest.test_case "weibull age sensitivity" `Quick test_dpm_weibull_age_sensitivity;
          Alcotest.test_case "explicit quantum" `Quick test_dpm_explicit_quantum;
          Alcotest.test_case "pack boundary (y > 2^24)" `Quick test_dpm_pack_boundary;
          Alcotest.test_case "pack overflow rejected" `Quick test_dpm_pack_overflow_rejected;
          Alcotest.test_case "invalid args" `Quick test_dpm_invalid;
        ] );
      ("properties", core_qcheck);
    ]
