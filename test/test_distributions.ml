(* Unit and property tests for the distribution substrate. *)

module D = Ckpt_distributions.Distribution
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull
module Lognormal = Ckpt_distributions.Lognormal
module Gamma_dist = Ckpt_distributions.Gamma_dist
module Uniform_dist = Ckpt_distributions.Uniform_dist
module Empirical = Ckpt_distributions.Empirical
module Rng = Ckpt_prng.Rng

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let families =
  [
    ("exponential", Exponential.create ~rate:(1. /. 500.));
    ("weibull k=0.7", Weibull.of_mtbf ~mtbf:500. ~shape:0.7);
    ("weibull k=2", Weibull.of_mtbf ~mtbf:500. ~shape:2.);
    ("lognormal", Lognormal.of_mtbf ~mtbf:500. ~sigma:1.2);
    ("gamma a=0.5", Gamma_dist.of_mtbf ~mtbf:500. ~shape:0.5);
    ("gamma a=3", Gamma_dist.of_mtbf ~mtbf:500. ~shape:3.);
    ("lomax a=2.5", Ckpt_distributions.Lomax.of_mtbf ~mtbf:500. ~shape:2.5);
    ("uniform", Uniform_dist.create ~lo:100. ~hi:900.);
  ]

(* -- generic invariants, every family ------------------------------------- *)

let test_self_check () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun (what, ok) -> check Alcotest.bool (name ^ ": " ^ what) true ok)
        (D.check d))
    families

let test_mean_500 () =
  List.iter
    (fun (name, d) -> close ~tol:1e-6 (name ^ " mean") 500. d.D.mean)
    families

let test_sample_mean_matches () =
  let rng = Rng.create ~seed:31L in
  List.iter
    (fun (name, d) ->
      let n = 20_000 in
      let acc = ref 0. in
      for _ = 1 to n do
        acc := !acc +. d.D.sample rng
      done;
      let mean = !acc /. float_of_int n in
      check Alcotest.bool
        (Printf.sprintf "%s sample mean %.1f within 5%%" name mean)
        true
        (abs_float (mean -. 500.) < 25.))
    families

let test_cdf_survival_complement () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun x -> close ~tol:1e-12 (name ^ " cdf+surv") 1. (D.cdf d x +. D.survival d x))
        [ 10.; 100.; 500.; 2000. ])
    families

let test_quantile_inverts_cdf () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun p ->
          let x = d.D.quantile p in
          close ~tol:1e-5 (Printf.sprintf "%s quantile at %g" name p) p (D.cdf d x))
        [ 0.05; 0.25; 0.5; 0.75; 0.95 ])
    families

let test_conditional_survival_in_unit () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun (age, duration) ->
          let p = D.conditional_survival d ~age ~duration in
          check Alcotest.bool
            (Printf.sprintf "%s psuc(%g|%g) in [0,1]" name duration age)
            true
            (p >= 0. && p <= 1. +. 1e-12))
        [ (0., 100.); (200., 100.); (450., 400.); (100., 0.) ])
    families

let test_tlost_within_window () =
  List.iter
    (fun (name, d) ->
      List.iter
        (fun (age, window) ->
          let v = D.expected_tlost d ~age ~window in
          check Alcotest.bool
            (Printf.sprintf "%s tlost(%g|%g) in [0,w]" name window age)
            true
            (v >= 0. && v <= window +. 1e-9))
        [ (0., 100.); (100., 300.); (400., 50.) ])
    families

let test_survival_quantile () =
  List.iter
    (fun (name, d) ->
      let x = D.survival_quantile d 0.3 in
      close ~tol:1e-5 (name ^ " survival quantile") 0.3 (D.survival d x))
    families

(* -- exponential ----------------------------------------------------------- *)

let test_exponential_memoryless () =
  let d = Exponential.create ~rate:(1. /. 500.) in
  List.iter
    (fun age ->
      (* Tolerance: the cumulative hazard at age 1e7 is ~2e4, whose
         floating-point granularity dominates. *)
      close ~tol:1e-9 "memoryless"
        (D.conditional_survival d ~age:0. ~duration:120.)
        (D.conditional_survival d ~age ~duration:120.))
    [ 1.; 100.; 1e4; 1e7 ]

let test_exponential_tlost_closed_form_vs_numeric () =
  (* Strip the override to force the generic quadrature path. *)
  let d = Exponential.create ~rate:(1. /. 500.) in
  let generic = { d with D.tlost_override = None } in
  List.iter
    (fun window ->
      close ~tol:1e-4 (Printf.sprintf "tlost window %g" window)
        (D.expected_tlost d ~age:0. ~window)
        (D.expected_tlost generic ~age:0. ~window))
    [ 10.; 100.; 500.; 3000. ]

let test_exponential_tlost_limits () =
  (* E(Tlost(w)) -> w/2 as w -> 0 and -> 1/rate as w -> infinity. *)
  close ~tol:1e-6 "small window" 0.005
    (Exponential.expected_tlost_closed_form ~rate:0.001 ~window:0.01);
  close ~tol:1. "large window" 1000.
    (Exponential.expected_tlost_closed_form ~rate:0.001 ~window:1e7)

let test_exponential_invalid () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Exponential.create: rate must be positive")
    (fun () -> ignore (Exponential.create ~rate:0.));
  Alcotest.check_raises "mtbf 0" (Invalid_argument "Exponential.of_mtbf: mtbf must be positive")
    (fun () -> ignore (Exponential.of_mtbf ~mtbf:0.))

(* -- weibull ----------------------------------------------------------------- *)

let test_weibull_k1_is_exponential () =
  let w = Weibull.create ~scale:500. ~shape:1. in
  let e = Exponential.create ~rate:(1. /. 500.) in
  List.iter
    (fun x ->
      close ~tol:1e-12 (Printf.sprintf "cdf at %g" x) (D.cdf e x) (D.cdf w x);
      close ~tol:1e-12 (Printf.sprintf "hazard at %g" x) (D.hazard e x) (D.hazard w x))
    [ 1.; 50.; 500.; 5000. ]

let test_weibull_conditional_closed_form () =
  (* Psuc(x|tau) = exp((tau/l)^k - ((tau+x)/l)^k). *)
  let scale = 800. and shape = 0.7 in
  let d = Weibull.create ~scale ~shape in
  List.iter
    (fun (age, x) ->
      let expected = exp (((age /. scale) ** shape) -. (((age +. x) /. scale) ** shape)) in
      close ~tol:1e-12
        (Printf.sprintf "psuc(%g|%g)" x age)
        expected
        (D.conditional_survival d ~age ~duration:x))
    [ (0., 100.); (100., 100.); (1e6, 1e3) ]

let test_weibull_decreasing_hazard () =
  let d = Weibull.of_mtbf ~mtbf:500. ~shape:0.7 in
  check Alcotest.bool "hazard decreases for k<1" true (D.hazard d 10. > D.hazard d 1000.);
  let d2 = Weibull.of_mtbf ~mtbf:500. ~shape:2. in
  check Alcotest.bool "hazard increases for k>1" true (D.hazard d2 10. < D.hazard d2 1000.)

let test_weibull_platform_scale () =
  (* min of p iid Weibull = Weibull with scale / p^(1/k). *)
  let scale = 1000. and shape = 0.7 in
  let d = Weibull.create ~scale ~shape in
  let p = 64 in
  let dmin = D.min_of_iid d p in
  let scaled =
    Weibull.create ~scale:(Weibull.platform_scale ~scale ~shape ~processors:p) ~shape
  in
  List.iter
    (fun x -> close ~tol:1e-9 (Printf.sprintf "min cdf at %g" x) (D.cdf scaled x) (D.cdf dmin x))
    [ 0.5; 2.; 10.; 50. ];
  close ~tol:1e-3 "min mean matches scaled mean" 1. (scaled.D.mean /. dmin.D.mean)

let test_weibull_invalid () =
  Alcotest.check_raises "shape 0" (Invalid_argument "Weibull.create: shape must be positive")
    (fun () -> ignore (Weibull.create ~scale:1. ~shape:0.))

(* -- lognormal / gamma ------------------------------------------------------- *)

let test_lognormal_median () =
  let d = Lognormal.create ~mu:2. ~sigma:0.8 in
  close ~tol:1e-6 "median = e^mu" (exp 2.) (d.D.quantile 0.5)

let test_gamma_a1_is_exponential () =
  let g = Gamma_dist.create ~shape:1. ~scale:500. in
  let e = Exponential.create ~rate:(1. /. 500.) in
  List.iter
    (fun x -> close ~tol:1e-9 (Printf.sprintf "cdf at %g" x) (D.cdf e x) (D.cdf g x))
    [ 10.; 200.; 800. ]

let test_gamma_invalid () =
  Alcotest.check_raises "shape 0" (Invalid_argument "Gamma_dist.create: shape must be positive")
    (fun () -> ignore (Gamma_dist.create ~shape:0. ~scale:1.))

(* -- lomax ---------------------------------------------------------------------- *)

module Lomax = Ckpt_distributions.Lomax

let test_lomax_closed_forms () =
  let d = Lomax.create ~scale:100. ~shape:2. in
  close ~tol:1e-12 "survival" ((1. +. (50. /. 100.)) ** -2.) (D.survival d 50.);
  close ~tol:1e-12 "hazard" (2. /. 150.) (D.hazard d 50.);
  close ~tol:1e-9 "quantile" (100. *. ((0.25 ** -0.5) -. 1.)) (d.D.quantile 0.75);
  close "mean" 100. d.D.mean

let test_lomax_decreasing_hazard () =
  let d = Lomax.of_mtbf ~mtbf:500. ~shape:2.5 in
  check Alcotest.bool "DFR" true (D.hazard d 1. > D.hazard d 1000.)

let test_lomax_invalid () =
  Alcotest.check_raises "infinite mean"
    (Invalid_argument "Lomax.of_mtbf: shape must exceed 1 for a finite mean") (fun () ->
      ignore (Lomax.of_mtbf ~mtbf:1. ~shape:1.));
  check Alcotest.bool "heavy tail flagged" true
    (Float.is_integer 0. && (Lomax.create ~scale:1. ~shape:0.5).D.mean = infinity)

(* -- uniform ------------------------------------------------------------------ *)

let test_uniform_conditional () =
  (* P(X >= a+x | X >= a) = (hi - a - x)/(hi - a) on the support. *)
  let d = Uniform_dist.create ~lo:0. ~hi:100. in
  close ~tol:1e-12 "conditional survival" (40. /. 70.)
    (D.conditional_survival d ~age:30. ~duration:30.);
  (* Failure uniform on the window: expected loss is half the window. *)
  close ~tol:1e-6 "tlost mid-window" 15. (D.expected_tlost d ~age:30. ~window:30.)

let test_uniform_invalid () =
  Alcotest.check_raises "negative support"
    (Invalid_argument "Uniform_dist.create: negative support") (fun () ->
      ignore (Uniform_dist.create ~lo:(-1.) ~hi:1.))

(* -- min_of_iid ---------------------------------------------------------------- *)

let test_min_of_iid_survival_power () =
  List.iter
    (fun (name, d) ->
      let n = 8 in
      let dmin = D.min_of_iid d n in
      List.iter
        (fun x ->
          close ~tol:1e-9
            (Printf.sprintf "%s S_min = S^n at %g" name x)
            (D.survival d x ** float_of_int n)
            (D.survival dmin x))
        [ 50.; 200.; 600. ])
    families

let test_min_of_iid_identity () =
  let d = Exponential.create ~rate:1. in
  check Alcotest.bool "n = 1 returns the same distribution" true (D.min_of_iid d 1 == d)

let test_min_of_iid_invalid () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Distribution.min_of_iid: n must be positive")
    (fun () -> ignore (D.min_of_iid (Exponential.create ~rate:1.) 0))

let test_min_of_iid_exponential_rate () =
  (* min of n Exp(r) is Exp(n r): mean divides by n. *)
  let d = Exponential.create ~rate:(1. /. 500.) in
  let dmin = D.min_of_iid d 10 in
  close ~tol:1e-4 "mean / 10" 50. dmin.D.mean

(* -- empirical ------------------------------------------------------------------ *)

let sample = [| 5.; 10.; 10.; 20.; 40.; 80.; 160.; 320. |]

let test_empirical_ratio_estimator () =
  (* The Section 4.3 estimator: #( >= t ) / #( >= tau ). *)
  let d = Empirical.of_intervals sample in
  close ~tol:1e-12 "counts ratio" (2. /. 4.)
    (D.conditional_survival d ~age:40. ~duration:120.);
  close ~tol:1e-12 "cross-check helper"
    (Empirical.conditional_survival_counts sample ~t:160. ~tau:40.)
    (D.conditional_survival d ~age:40. ~duration:120.)

let test_empirical_quantile_order_stats () =
  let d = Empirical.of_intervals sample in
  close "smallest" 5. (d.D.quantile 0.01);
  close "median-ish" 20. (d.D.quantile 0.5);
  close "largest" 320. (d.D.quantile 0.999)

let test_empirical_mean () =
  let d = Empirical.of_intervals sample in
  close ~tol:1e-9 "sample mean" (Array.fold_left ( +. ) 0. sample /. 8.) d.D.mean

let test_empirical_sampling_support () =
  let d = Empirical.of_intervals sample in
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 200 do
    let v = d.D.sample rng in
    check Alcotest.bool "sample from support" true (Array.mem v sample)
  done

let test_empirical_age_clamp () =
  (* Conditioning beyond the largest observation clamps instead of
     dividing by an empty set. *)
  let d = Empirical.of_intervals sample in
  let p = D.conditional_survival d ~age:1000. ~duration:10. in
  check Alcotest.bool "clamped, finite" true (Float.is_finite p && p >= 0. && p <= 1.)

let test_empirical_tlost_discrete () =
  let d = Empirical.of_intervals sample in
  (* Failures in [5, 45) given age 5: points 5, 10, 10, 20, 40;
     mean of (x - 5) = (0 + 5 + 5 + 15 + 35)/5 = 12. *)
  close ~tol:1e-9 "discrete tlost" 12. (D.expected_tlost d ~age:5. ~window:40.)

let test_empirical_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Empirical.of_intervals: empty sample")
    (fun () -> ignore (Empirical.of_intervals [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Empirical.of_intervals: non-positive duration") (fun () ->
      ignore (Empirical.of_intervals [| 1.; -2. |]))

(* -- properties -------------------------------------------------------------- *)

let family_gen = QCheck2.Gen.oneofl (List.map snd families)

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"cdf is nondecreasing" ~count:300
    QCheck2.Gen.(triple family_gen (float_range 0. 2000.) (float_range 0. 2000.))
    (fun (d, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      D.cdf d lo <= D.cdf d hi +. 1e-12)

let prop_conditional_consistency =
  (* Psuc(x+y | tau) = Psuc(x | tau) * Psuc(y | tau + x). *)
  QCheck2.Test.make ~name:"conditional survival composes" ~count:300
    QCheck2.Gen.(
      quad family_gen (float_range 0. 1000.) (float_range 0. 500.) (float_range 0. 500.))
    (fun (d, tau, x, y) ->
      let lhs = D.conditional_survival d ~age:tau ~duration:(x +. y) in
      let rhs =
        D.conditional_survival d ~age:tau ~duration:x
        *. D.conditional_survival d ~age:(tau +. x) ~duration:y
      in
      abs_float (lhs -. rhs) < 1e-9)

let prop_quantile_round_trip =
  QCheck2.Test.make ~name:"cdf (quantile p) ~ p" ~count:200
    QCheck2.Gen.(pair family_gen (float_range 0.01 0.99))
    (fun (d, p) -> abs_float (D.cdf d (d.D.quantile p) -. p) < 1e-4)

let prop_min_of_iid_smaller =
  QCheck2.Test.make ~name:"min of n iid stochastically smaller" ~count:200
    QCheck2.Gen.(triple family_gen (int_range 2 50) (float_range 1. 1500.))
    (fun (d, n, x) -> D.survival (D.min_of_iid d n) x <= D.survival d x +. 1e-12)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cdf_monotone; prop_conditional_consistency; prop_quantile_round_trip;
      prop_min_of_iid_smaller ]

let () =
  Alcotest.run "distributions"
    [
      ( "generic",
        [
          Alcotest.test_case "self check" `Quick test_self_check;
          Alcotest.test_case "means" `Quick test_mean_500;
          Alcotest.test_case "sample means" `Quick test_sample_mean_matches;
          Alcotest.test_case "cdf + survival = 1" `Quick test_cdf_survival_complement;
          Alcotest.test_case "quantile inverts cdf" `Quick test_quantile_inverts_cdf;
          Alcotest.test_case "conditional survival bounds" `Quick
            test_conditional_survival_in_unit;
          Alcotest.test_case "tlost within window" `Quick test_tlost_within_window;
          Alcotest.test_case "survival quantile" `Quick test_survival_quantile;
        ] );
      ( "exponential",
        [
          Alcotest.test_case "memoryless" `Quick test_exponential_memoryless;
          Alcotest.test_case "tlost closed vs numeric" `Quick
            test_exponential_tlost_closed_form_vs_numeric;
          Alcotest.test_case "tlost limits" `Quick test_exponential_tlost_limits;
          Alcotest.test_case "invalid args" `Quick test_exponential_invalid;
        ] );
      ( "weibull",
        [
          Alcotest.test_case "k=1 is exponential" `Quick test_weibull_k1_is_exponential;
          Alcotest.test_case "conditional closed form" `Quick test_weibull_conditional_closed_form;
          Alcotest.test_case "hazard monotonicity" `Quick test_weibull_decreasing_hazard;
          Alcotest.test_case "platform scale = min_of_iid" `Quick test_weibull_platform_scale;
          Alcotest.test_case "invalid args" `Quick test_weibull_invalid;
        ] );
      ( "lognormal+gamma",
        [
          Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
          Alcotest.test_case "gamma a=1 is exponential" `Quick test_gamma_a1_is_exponential;
          Alcotest.test_case "gamma invalid" `Quick test_gamma_invalid;
        ] );
      ( "lomax",
        [
          Alcotest.test_case "closed forms" `Quick test_lomax_closed_forms;
          Alcotest.test_case "decreasing hazard" `Quick test_lomax_decreasing_hazard;
          Alcotest.test_case "invalid args" `Quick test_lomax_invalid;
        ] );
      ( "uniform",
        [
          Alcotest.test_case "conditional quantities" `Quick test_uniform_conditional;
          Alcotest.test_case "invalid args" `Quick test_uniform_invalid;
        ] );
      ( "min_of_iid",
        [
          Alcotest.test_case "survival power law" `Quick test_min_of_iid_survival_power;
          Alcotest.test_case "n=1 identity" `Quick test_min_of_iid_identity;
          Alcotest.test_case "invalid n" `Quick test_min_of_iid_invalid;
          Alcotest.test_case "exponential rate scaling" `Quick test_min_of_iid_exponential_rate;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "Section 4.3 ratio estimator" `Quick test_empirical_ratio_estimator;
          Alcotest.test_case "quantiles are order statistics" `Quick
            test_empirical_quantile_order_stats;
          Alcotest.test_case "mean" `Quick test_empirical_mean;
          Alcotest.test_case "sampling support" `Quick test_empirical_sampling_support;
          Alcotest.test_case "age clamping" `Quick test_empirical_age_clamp;
          Alcotest.test_case "discrete tlost" `Quick test_empirical_tlost_discrete;
          Alcotest.test_case "invalid args" `Quick test_empirical_invalid;
        ] );
      ("properties", qcheck_cases);
    ]
