(* Tests for mixtures and maximum-likelihood fitting. *)

module D = Ckpt_distributions.Distribution
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull
module Lognormal = Ckpt_distributions.Lognormal
module Mixture = Ckpt_distributions.Mixture
module Fit = Ckpt_distributions.Fit
module Rng = Ckpt_prng.Rng

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let sample_n dist ~seed n =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> dist.D.sample rng)

(* -- mixture ---------------------------------------------------------------- *)

let two_exp =
  Mixture.create [ (0.25, Exponential.create ~rate:1.); (0.75, Exponential.create ~rate:0.1) ]

let test_mixture_mean () = close ~tol:1e-9 "weighted mean" ((0.25 *. 1.) +. (0.75 *. 10.)) two_exp.D.mean

let test_mixture_survival () =
  List.iter
    (fun x ->
      close ~tol:1e-12
        (Printf.sprintf "S at %g" x)
        ((0.25 *. exp (-.x)) +. (0.75 *. exp (-0.1 *. x)))
        (D.survival two_exp x))
    [ 0.5; 2.; 10.; 40. ]

let test_mixture_weights_normalized () =
  (* Weights 1 and 3 behave exactly like 0.25 and 0.75. *)
  let m = Mixture.create [ (1., Exponential.create ~rate:1.); (3., Exponential.create ~rate:0.1) ] in
  close ~tol:1e-12 "normalization" (D.survival two_exp 5.) (D.survival m 5.)

let test_mixture_quantile_inverts () =
  List.iter
    (fun p -> close ~tol:1e-6 (Printf.sprintf "p=%g" p) p (D.cdf two_exp (two_exp.D.quantile p)))
    [ 0.05; 0.3; 0.5; 0.9; 0.99 ]

let test_mixture_sample_mean () =
  let data = sample_n two_exp ~seed:5L 40_000 in
  let mean = Array.fold_left ( +. ) 0. data /. 40_000. in
  check Alcotest.bool (Printf.sprintf "sample mean %.2f" mean) true
    (abs_float (mean -. two_exp.D.mean) < 0.2)

let test_mixture_self_check () =
  List.iter (fun (what, ok) -> check Alcotest.bool what true ok) (D.check two_exp)

let test_mixture_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Mixture.create: empty mixture") (fun () ->
      ignore (Mixture.create []));
  Alcotest.check_raises "bad weight" (Invalid_argument "Mixture.create: non-positive weight")
    (fun () -> ignore (Mixture.create [ (0., Exponential.create ~rate:1.) ]))

(* -- fitting ------------------------------------------------------------------ *)

let test_fit_exponential_recovers_rate () =
  let data = sample_n (Exponential.create ~rate:0.002) ~seed:7L 20_000 in
  let f = Fit.exponential data in
  close ~tol:20. "mean recovered" 500. f.Fit.distribution.D.mean;
  check Alcotest.bool "good KS" true (f.Fit.ks_statistic < 0.02)

let test_fit_weibull_recovers_parameters () =
  List.iter
    (fun shape ->
      let truth = Weibull.of_mtbf ~mtbf:1000. ~shape in
      let data = sample_n truth ~seed:11L 20_000 in
      let f = Fit.weibull data in
      (* Recover the shape from the fitted hazard slope: fit name holds
         scale/shape; compare via mean and a quantile ratio instead of
         string parsing. *)
      close ~tol:(1000. /. 25.) (Printf.sprintf "mean at k=%g" shape) 1000.
        f.Fit.distribution.D.mean;
      let q_truth = truth.D.quantile 0.9 /. truth.D.quantile 0.1 in
      let q_fit = f.Fit.distribution.D.quantile 0.9 /. f.Fit.distribution.D.quantile 0.1 in
      check Alcotest.bool
        (Printf.sprintf "tail ratio %.1f ~ %.1f at k=%g" q_fit q_truth shape)
        true
        (abs_float (q_fit -. q_truth) /. q_truth < 0.1))
    [ 0.5; 0.7; 1.5 ]

let test_fit_lognormal_recovers_parameters () =
  let truth = Lognormal.create ~mu:3. ~sigma:0.5 in
  let data = sample_n truth ~seed:13L 20_000 in
  let f = Fit.lognormal data in
  close ~tol:(exp 3. /. 30.) "median = e^mu" (exp 3.) (f.Fit.distribution.D.quantile 0.5)

let test_best_fit_selects_truth () =
  (* Data generated from each family should be attributed to it (or at
     worst to a near-equivalent) by AIC. *)
  let weib = Weibull.of_mtbf ~mtbf:1000. ~shape:0.5 in
  let data = sample_n weib ~seed:17L 10_000 in
  let best = Fit.best_fit data in
  let weib_fit = Fit.weibull data in
  close ~tol:1e-9 "weibull wins on weibull data" weib_fit.Fit.aic best.Fit.aic;
  let expo = Exponential.create ~rate:0.001 in
  let data = sample_n expo ~seed:19L 10_000 in
  let best = Fit.best_fit data in
  (* Exponential is Weibull k=1: either may win, but the KS distance
     must be tiny. *)
  check Alcotest.bool "fits exponential data well" true (best.Fit.ks_statistic < 0.02)

let test_ks_distance_detects_mismatch () =
  let data = sample_n (Weibull.of_mtbf ~mtbf:1000. ~shape:0.4) ~seed:23L 5_000 in
  let wrong = Fit.exponential data in
  let right = Fit.weibull data in
  check Alcotest.bool
    (Printf.sprintf "exp KS %.3f >> weibull KS %.3f" wrong.Fit.ks_statistic
       right.Fit.ks_statistic)
    true
    (wrong.Fit.ks_statistic > 3. *. right.Fit.ks_statistic)

let test_fit_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Fit: empty sample") (fun () ->
      ignore (Fit.exponential [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Fit: non-positive duration") (fun () ->
      ignore (Fit.weibull [| 1.; 0. |]))

let test_fit_lanl_synthetic_shape () =
  (* The synthetic LANL logs should fit a heavy-tailed Weibull, like
     the production data they imitate (shapes 0.33-0.49): the fitted
     q90/q10 ratio must be far wider than an Exponential's (~22). *)
  let lanl = Ckpt_failures.Lanl_synth.generate Ckpt_failures.Lanl_synth.cluster19_parameters in
  let f = Fit.weibull lanl.Ckpt_failures.Failure_log.intervals in
  let ratio = f.Fit.distribution.D.quantile 0.9 /. f.Fit.distribution.D.quantile 0.1 in
  check Alcotest.bool
    (Printf.sprintf "heavy-tailed fit (q90/q10 = %.0f)" ratio)
    true (ratio > 50.)

let () =
  Alcotest.run "fit"
    [
      ( "mixture",
        [
          Alcotest.test_case "mean" `Quick test_mixture_mean;
          Alcotest.test_case "survival" `Quick test_mixture_survival;
          Alcotest.test_case "weight normalization" `Quick test_mixture_weights_normalized;
          Alcotest.test_case "quantile inverts" `Quick test_mixture_quantile_inverts;
          Alcotest.test_case "sample mean" `Quick test_mixture_sample_mean;
          Alcotest.test_case "self check" `Quick test_mixture_self_check;
          Alcotest.test_case "invalid" `Quick test_mixture_invalid;
        ] );
      ( "mle",
        [
          Alcotest.test_case "exponential" `Quick test_fit_exponential_recovers_rate;
          Alcotest.test_case "weibull" `Quick test_fit_weibull_recovers_parameters;
          Alcotest.test_case "lognormal" `Quick test_fit_lognormal_recovers_parameters;
          Alcotest.test_case "best fit" `Quick test_best_fit_selects_truth;
          Alcotest.test_case "KS detects mismatch" `Quick test_ks_distance_detects_mismatch;
          Alcotest.test_case "invalid" `Quick test_fit_invalid;
          Alcotest.test_case "lanl shape" `Quick test_fit_lanl_synthetic_shape;
        ] );
    ]
