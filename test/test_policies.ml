(* Unit tests for the policy layer. *)

module Policy = Ckpt_policies.Policy
module Job = Ckpt_policies.Job
module Young = Ckpt_policies.Young
module Daly = Ckpt_policies.Daly
module Optexp = Ckpt_policies.Optexp
module Bouguerra = Ckpt_policies.Bouguerra
module Liu = Ckpt_policies.Liu
module Dp_policies = Ckpt_policies.Dp_policies
module Machine = Ckpt_platform.Machine
module Overhead = Ckpt_platform.Overhead
module Workload = Ckpt_platform.Workload
module Units = Ckpt_platform.Units
module D = Ckpt_distributions.Distribution
module Exponential = Ckpt_distributions.Exponential
module Weibull = Ckpt_distributions.Weibull

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

let machine p = Machine.create ~total_processors:p ~downtime:60. ~overhead:(Overhead.constant 600.)

let sequential_job =
  Job.create ~dist:(Exponential.of_mtbf ~mtbf:86400.) ~processors:1 ~machine:(machine 1)
    ~work_time:(20. *. Units.day)

let petascale_job ~shape =
  Job.create
    ~dist:(Weibull.of_mtbf ~mtbf:(Units.of_years 125.) ~shape)
    ~processors:45208 ~machine:(machine 45208)
    ~work_time:(Units.of_years 1000. /. 45208.)

let observation ?(phase = Policy.Start) ?(remaining = 1e6) ?(units = 1) ?(min_age = 0.)
    ?(ages = [| 0. |]) () =
  let iter_ages f = Array.iter f ages in
  {
    Policy.phase;
    remaining;
    failure_units = units;
    min_age;
    iter_ages;
    summarize = Policy.summarize_of_iter ~units ~iter_ages;
  }

(* -- policy plumbing ------------------------------------------------------- *)

let test_periodic_chunks () =
  let p = Policy.periodic "test" ~period:500. in
  let i = p.Policy.instantiate () in
  check (Alcotest.option (Alcotest.float 0.)) "full period" (Some 500.)
    (i (observation ~remaining:1e6 ()));
  check (Alcotest.option (Alcotest.float 0.)) "clamped tail" (Some 120.)
    (i (observation ~remaining:120. ()))

let test_periodic_invalid_period () =
  let p = Policy.periodic "test" ~period:0. in
  let i = p.Policy.instantiate () in
  check (Alcotest.option (Alcotest.float 0.)) "declines" None (i (observation ()))

let test_clamp_chunk () =
  close "clamps above" 10. (Policy.clamp_chunk ~remaining:10. 50.);
  close "keeps below" 5. (Policy.clamp_chunk ~remaining:10. 5.);
  close "floors at zero" 0. (Policy.clamp_chunk ~remaining:10. (-3.))

let test_purity_declarations () =
  (* The [decide] field is the batch engine's licence to memoize a
     policy's decisions across replicate slots.  Pure scalar policies
     must declare it; anything stateful (the DP cursors) or
     constructed through the no-promises [stateless] escape hatch must
     not — a wrong declaration here silently corrupts batch runs. *)
  let pure p = Option.is_some p.Policy.decide in
  check Alcotest.bool "periodic is pure" true (pure (Policy.periodic "p" ~period:500.));
  check Alcotest.bool "pure_scalar is pure" true
    (pure (Policy.pure_scalar "f" (fun _ -> None)));
  check Alcotest.bool "stateless makes no promise" false
    (pure (Policy.stateless "s" (fun _ -> None)));
  check Alcotest.bool "Young is pure" true (pure (Young.policy sequential_job));
  check Alcotest.bool "Liu is pure" true (pure (Liu.policy (petascale_job ~shape:0.7)));
  check Alcotest.bool "DPNextFailure is stateful" false
    (pure (Dp_policies.dp_next_failure sequential_job));
  check Alcotest.bool "DPMakespan is stateful" false
    (pure (Dp_policies.dp_makespan sequential_job));
  (* A declared [decide] must be the very decision function the
     instances run: same observation, same answer. *)
  let p = Policy.periodic "p" ~period:500. in
  match p.Policy.decide with
  | None -> Alcotest.fail "periodic lost its purity declaration"
  | Some f ->
      let obs = observation ~remaining:1e6 () in
      check (Alcotest.option (Alcotest.float 0.)) "decide == instance" (p.Policy.instantiate () obs)
        (f obs)

(* -- job -------------------------------------------------------------------- *)

let test_job_validation () =
  Alcotest.check_raises "zero work" (Invalid_argument "Job.create: work_time must be positive")
    (fun () ->
      ignore
        (Job.create ~dist:(Exponential.create ~rate:1.) ~processors:1 ~machine:(machine 1)
           ~work_time:0.))

let test_job_group_size () =
  let j =
    Job.create ~dist:(Exponential.create ~rate:1.) ~processors:8 ~machine:(machine 8)
      ~work_time:10.
  in
  check Alcotest.int "default units" 8 (Job.failure_units j);
  let grouped = Job.with_group_size j 4 in
  check Alcotest.int "grouped units" 2 (Job.failure_units grouped);
  Alcotest.check_raises "non-divisor"
    (Invalid_argument "Job.with_group_size: group_size must divide the processor count")
    (fun () -> ignore (Job.with_group_size j 3))

let test_job_platform_quantities () =
  let j = petascale_job ~shape:0.7 in
  close ~tol:1e-6 "unit mtbf" (Units.of_years 125.) (Job.unit_mtbf j);
  close ~tol:1e-3 "platform mtbf" (Units.of_years 125. /. 45208.) (Job.platform_mtbf j);
  close "C(p)" 600. (Job.checkpoint_cost j);
  close "D" 60. (Job.downtime j)

let test_grouped_job_period_scaling () =
  (* Node-grained failures: 4x fewer failure units means a 2x longer
     Young period (sqrt of the unit count). *)
  let base =
    Job.create ~dist:(Exponential.of_mtbf ~mtbf:1e6) ~processors:64 ~machine:(machine 64)
      ~work_time:1e6
  in
  let grouped = Job.with_group_size base 4 in
  close ~tol:1e-9 "sqrt(4) ratio" 2. (Young.period grouped /. Young.period base)

let test_job_of_workload () =
  let w = Workload.create ~total_work:1000. ~model:Workload.Embarrassingly_parallel in
  let j =
    Job.of_workload ~dist:(Exponential.create ~rate:1.) ~processors:8 ~machine:(machine 8)
      ~workload:w
  in
  close "W(p)" 125. j.Job.work_time

(* -- periodic heuristics ------------------------------------------------------ *)

let test_young_formula () =
  close ~tol:1e-6 "sqrt(2 C MTBF/p)"
    (sqrt (2. *. 600. *. 86400.))
    (Young.period sequential_job)

let test_daly_low_formula () =
  close ~tol:1e-6 "recovery folded in"
    (sqrt (2. *. 600. *. (86400. +. 60. +. 600.)))
    (Daly.low_order_period sequential_job)

let test_daly_high_reasonable () =
  let high = Daly.high_order_period sequential_job in
  let low = Daly.low_order_period sequential_job in
  check Alcotest.bool "within 20% of low order" true (abs_float (high -. low) /. low < 0.2)

let test_daly_high_small_mtbf () =
  (* When C >= 2 MTBF the period degenerates to the MTBF itself. *)
  let j =
    Job.create ~dist:(Exponential.of_mtbf ~mtbf:250.) ~processors:1 ~machine:(machine 1)
      ~work_time:1e5
  in
  close "period = MTBF" 250. (Daly.high_order_period j)

let test_optexp_period () =
  let k = Optexp.chunk_count sequential_job in
  close ~tol:1e-9 "W / K*"
    (sequential_job.Job.work_time /. float_of_int k)
    (Optexp.period sequential_job);
  let young = Young.period sequential_job in
  check Alcotest.bool "near Young" true
    (abs_float (Optexp.period sequential_job -. young) /. young < 0.1)

(* -- bouguerra ------------------------------------------------------------------ *)

let test_bouguerra_minimizes_waste () =
  let j = sequential_job in
  let p = Bouguerra.period j in
  let v = Bouguerra.expected_waste_ratio j ~period:p in
  List.iter
    (fun factor ->
      check Alcotest.bool
        (Printf.sprintf "no better at %g x" factor)
        true
        (Bouguerra.expected_waste_ratio j ~period:(p *. factor) >= v -. 1e-9))
    [ 0.25; 0.5; 0.8; 1.25; 2.; 4. ]

let test_bouguerra_matches_optexp_exponential () =
  (* Under memoryless failures the rejuvenation assumption is harmless:
     Bouguerra's period should sit near OptExp's. *)
  let j = sequential_job in
  let b = Bouguerra.period j and o = Optexp.period j in
  check Alcotest.bool
    (Printf.sprintf "bouguerra %.0f ~ optexp %.0f" b o)
    true
    (abs_float (b -. o) /. o < 0.15)

(* -- liu --------------------------------------------------------------------------- *)

let test_liu_exponential_is_young () =
  (* Constant hazard: the frequency function is constant, so every
     interval is sqrt(2 C / (p lambda)) = Young's period. *)
  let j = sequential_job in
  let table = Liu.build j in
  let young = Young.period j in
  List.iter
    (fun age ->
      let v = Liu.interval j table ~platform_age:age in
      check Alcotest.bool
        (Printf.sprintf "interval %.1f ~ young %.1f at age %g" v young age)
        true
        (abs_float (v -. young) /. young < 0.01))
    [ 0.; 600.; 12345.; 1e6 ]

let test_liu_weibull_intervals_grow () =
  (* Decreasing hazard: intervals lengthen as the platform ages. *)
  let j = petascale_job ~shape:0.7 in
  let table = Liu.build j in
  let early = Liu.interval j table ~platform_age:600. in
  let late = Liu.interval j table ~platform_age:(Units.of_years 0.5) in
  check Alcotest.bool (Printf.sprintf "%.0f < %.0f" early late) true (early < late)

let test_liu_finite_at_age_zero () =
  (* The frequency density is integrable at 0 even for k < 1: a fresh
     single processor gets a finite, usable first interval (the paper's
     Table 3 shows Liu running in the one-processor Weibull study). *)
  let j =
    Job.create
      ~dist:(Weibull.of_mtbf ~mtbf:Units.hour ~shape:0.7)
      ~processors:1 ~machine:(machine 1) ~work_time:(20. *. Units.day)
  in
  let table = Liu.build j in
  let v = Liu.interval j table ~platform_age:0. in
  check Alcotest.bool (Printf.sprintf "finite first interval %.0f" v) true
    (Float.is_finite v && v > 600.)

let test_liu_fails_on_small_shape_large_platform () =
  (* Right after a failure (age = R) at full Jaguar scale with k = 0.5
     the prescribed interval is below C: the policy must decline. *)
  let j = petascale_job ~shape:0.5 in
  let policy = Liu.policy j in
  let i = policy.Policy.instantiate () in
  check
    (Alcotest.option (Alcotest.float 0.))
    "declines" None
    (i (observation ~units:45208 ~min_age:600. ()))

let test_liu_works_on_old_platform () =
  let j = petascale_job ~shape:0.7 in
  let policy = Liu.policy j in
  let i = policy.Policy.instantiate () in
  match i (observation ~units:45208 ~min_age:(Units.of_years 1.) ()) with
  | Some chunk -> check Alcotest.bool "reasonable chunk" true (chunk > 600.)
  | None -> Alcotest.fail "should produce an interval at an old age"

(* -- DP policies --------------------------------------------------------------------- *)

let test_dp_next_failure_start_plans () =
  let j = sequential_job in
  let policy = Dp_policies.dp_next_failure j in
  let i = policy.Policy.instantiate () in
  match i (observation ~remaining:j.Job.work_time ~ages:[| 0. |] ()) with
  | None -> Alcotest.fail "must plan at start"
  | Some chunk ->
      check Alcotest.bool "sane first chunk" true (chunk > 0. && chunk <= j.Job.work_time)

let test_dp_next_failure_follows_plan () =
  let j = sequential_job in
  let policy = Dp_policies.dp_next_failure j in
  let i = policy.Policy.instantiate () in
  let first =
    Option.get (i (observation ~remaining:j.Job.work_time ~ages:[| 0. |] ()))
  in
  let second =
    Option.get
      (i
         (observation ~phase:Policy.After_checkpoint
            ~remaining:(j.Job.work_time -. first)
            ~ages:[| first +. 600. |] ()))
  in
  check Alcotest.bool "keeps consuming its plan" true (second > 0.)

let test_dp_instances_independent () =
  let j = sequential_job in
  let policy = Dp_policies.dp_next_failure j in
  let a = policy.Policy.instantiate () in
  let b = policy.Policy.instantiate () in
  let ca = Option.get (a (observation ~remaining:j.Job.work_time ~ages:[| 0. |] ())) in
  (* Drain a's plan a bit; b must still start from scratch. *)
  ignore
    (a
       (observation ~phase:Policy.After_checkpoint
          ~remaining:(j.Job.work_time -. ca)
          ~ages:[| ca +. 600. |] ()));
  let cb = Option.get (b (observation ~remaining:j.Job.work_time ~ages:[| 0. |] ())) in
  close ~tol:1e-9 "fresh instance repeats the first decision" ca cb

let test_dp_makespan_policy_walk () =
  let j = sequential_job in
  let policy = Dp_policies.dp_makespan j in
  let i = policy.Policy.instantiate () in
  let remaining = ref j.Job.work_time in
  let steps = ref 0 in
  let phase = ref Policy.Start in
  while !remaining > 1e-6 && !steps < 10_000 do
    incr steps;
    match i (observation ~phase:!phase ~remaining:!remaining ~ages:[| 0. |] ()) with
    | None -> Alcotest.fail "DPMakespan must always answer"
    | Some chunk ->
        check Alcotest.bool "chunk positive and clamped" true (chunk > 0. && chunk <= !remaining +. 1e-9);
        remaining := !remaining -. chunk;
        phase := Policy.After_checkpoint
  done;
  check Alcotest.bool "terminates" true (!steps < 10_000)

let test_dp_makespan_recovers_after_failure () =
  let j = sequential_job in
  let policy = Dp_policies.dp_makespan j in
  let i = policy.Policy.instantiate () in
  let first = Option.get (i (observation ~remaining:j.Job.work_time ~ages:[| 0. |] ())) in
  let after_failure =
    Option.get
      (i (observation ~phase:Policy.After_recovery ~remaining:j.Job.work_time ~ages:[| 600. |] ()))
  in
  check Alcotest.bool "still prescribes work" true (after_failure > 0.);
  ignore first

let test_dp_makespan_bucket_table_canonical () =
  (* The per-bucket table cache must hold the same table no matter
     which initial age populated it first: otherwise results depend on
     the order domains claim replicates.  Ages 700 s and 1050 s share
     a 50%-geometric bucket; seeding the cache at one then querying at
     the other must match querying a fresh cache directly. *)
  let j =
    Job.create
      ~dist:(Exponential.of_mtbf ~mtbf:(Units.of_years 125.))
      ~processors:45208 ~machine:(machine 45208)
      ~work_time:(Units.of_years 1000. /. 45208.)
  in
  let plan ~seed_age ~query_age =
    let policy = Dp_policies.dp_makespan j in
    (if seed_age <> query_age then
       let seeder = policy.Policy.instantiate () in
       ignore
         (seeder
            (observation ~remaining:j.Job.work_time ~min_age:seed_age ~ages:[| seed_age |] ())));
    let i = policy.Policy.instantiate () in
    let remaining = ref j.Job.work_time in
    let phase = ref Policy.Start in
    let chunks = ref [] in
    while !remaining > 1e-6 && List.length !chunks < 500 do
      match i (observation ~phase:!phase ~remaining:!remaining ~min_age:query_age ~ages:[| query_age |] ()) with
      | None -> Alcotest.fail "DPMakespan must always answer"
      | Some chunk ->
          chunks := chunk :: !chunks;
          remaining := !remaining -. chunk;
          phase := Policy.After_checkpoint
    done;
    List.rev !chunks
  in
  check (Alcotest.list (Alcotest.float 0.)) "seeded and fresh caches agree"
    (plan ~seed_age:1050. ~query_age:1050.)
    (plan ~seed_age:700. ~query_age:1050.)

let with_env name value f =
  let previous = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value previous ~default:""))
    f

let test_dp_makespan_cache_lru_bound () =
  (* A cap of 1 forces an eviction on every new (instance, bucket)
     pair.  Eviction only discards solved tables — the re-solve happens
     at the bucket's canonical age — so the prescribed chunks must be
     bit-identical to the default (roomy) cache, and occupancy must
     never exceed the cap. *)
  let j = sequential_job in
  let ages = [ 0.; 900.; 3600.; 14400.; 86400. ] in
  let walk () =
    let policy = Dp_policies.dp_makespan j in
    let i = policy.Policy.instantiate () in
    List.map
      (fun age ->
        match
          i
            (observation ~phase:Policy.Start ~remaining:j.Job.work_time ~min_age:age
               ~ages:[| age |] ())
        with
        | Some chunk -> chunk
        | None -> Alcotest.failf "DPMakespan declined at age %.0f" age)
      ages
  in
  let roomy = walk () in
  check Alcotest.bool "walk touches several buckets" true
    (Dp_policies.table_cache_size () > 1);
  let capped = with_env "CKPT_DP_CACHE_CAP" "1" walk in
  check (Alcotest.list (Alcotest.float 0.)) "capped cache is bit-identical" roomy capped;
  check Alcotest.bool "occupancy bounded by the cap" true
    (Dp_policies.table_cache_size () <= 1)

(* -- schedule ------------------------------------------------------------------------ *)

module Schedule = Ckpt_policies.Schedule

let test_schedule_periodic_even () =
  let j = sequential_job in
  let entries = Schedule.failure_free (Policy.periodic "p" ~period:100_000.) j in
  let total = List.fold_left (fun acc e -> acc +. e.Schedule.chunk) 0. entries in
  close ~tol:1e-6 "tiles the work" j.Job.work_time total;
  (* All full-period chunks, one remainder. *)
  let full = List.filter (fun e -> abs_float (e.Schedule.chunk -. 100_000.) < 1e-6) entries in
  check Alcotest.int "17 full periods" 17 (List.length full);
  check Alcotest.int "plus remainder" 18 (List.length entries);
  (* Consecutive starts are separated by chunk + C. *)
  (match entries with
  | e1 :: e2 :: _ -> close ~tol:1e-6 "gap includes C" (100_000. +. 600.) (e2.Schedule.start -. e1.Schedule.start)
  | _ -> Alcotest.fail "expected entries");
  match Schedule.interval_range entries with
  | Some (lo, hi) ->
      close ~tol:1e-6 "max is the period" 100_000. hi;
      check Alcotest.bool "min is the tail" true (lo < 100_000.)
  | None -> Alcotest.fail "nonempty range"

let test_schedule_declining_policy_empty () =
  let j = sequential_job in
  check Alcotest.int "empty" 0
    (List.length (Schedule.failure_free (Policy.stateless "no" (fun _ -> None)) j))

let test_schedule_dpnf_nonuniform () =
  (* On a Weibull platform the DP's timetable is not one fixed period
     (the paper quotes 2,984-6,108 s on Jaguar). *)
  let j = petascale_job ~shape:0.7 in
  let entries =
    Schedule.failure_free (Dp_policies.dp_next_failure j) j
  in
  check Alcotest.bool "nonempty" true (entries <> []);
  match Schedule.interval_range entries with
  | Some (lo, hi) ->
      check Alcotest.bool (Printf.sprintf "varied: %.0f .. %.0f s" lo hi) true (hi > lo +. 1.)
  | None -> Alcotest.fail "range"

let test_schedule_csv () =
  let csv = Schedule.to_csv [ { Schedule.start = 0.; chunk = 10.; checkpoint_at = 10. } ] in
  check Alcotest.string "csv" "start,chunk,checkpoint_at\n0,10,10\n" csv

let () =
  Alcotest.run "policies"
    [
      ( "plumbing",
        [
          Alcotest.test_case "periodic chunks" `Quick test_periodic_chunks;
          Alcotest.test_case "periodic declines on bad period" `Quick test_periodic_invalid_period;
          Alcotest.test_case "clamp" `Quick test_clamp_chunk;
          Alcotest.test_case "purity declarations" `Quick test_purity_declarations;
        ] );
      ( "job",
        [
          Alcotest.test_case "validation" `Quick test_job_validation;
          Alcotest.test_case "group size" `Quick test_job_group_size;
          Alcotest.test_case "platform quantities" `Quick test_job_platform_quantities;
          Alcotest.test_case "grouped period scaling" `Quick test_grouped_job_period_scaling;
          Alcotest.test_case "of_workload" `Quick test_job_of_workload;
        ] );
      ( "periodic heuristics",
        [
          Alcotest.test_case "young formula" `Quick test_young_formula;
          Alcotest.test_case "daly low formula" `Quick test_daly_low_formula;
          Alcotest.test_case "daly high near low" `Quick test_daly_high_reasonable;
          Alcotest.test_case "daly high small MTBF" `Quick test_daly_high_small_mtbf;
          Alcotest.test_case "optexp period" `Quick test_optexp_period;
        ] );
      ( "bouguerra",
        [
          Alcotest.test_case "minimizes waste ratio" `Quick test_bouguerra_minimizes_waste;
          Alcotest.test_case "matches optexp (exponential)" `Quick
            test_bouguerra_matches_optexp_exponential;
        ] );
      ( "liu",
        [
          Alcotest.test_case "exponential = young" `Quick test_liu_exponential_is_young;
          Alcotest.test_case "weibull intervals grow" `Quick test_liu_weibull_intervals_grow;
          Alcotest.test_case "finite at age zero" `Quick test_liu_finite_at_age_zero;
          Alcotest.test_case "fails at scale, small k" `Quick
            test_liu_fails_on_small_shape_large_platform;
          Alcotest.test_case "works at old ages" `Quick test_liu_works_on_old_platform;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "periodic timetable" `Quick test_schedule_periodic_even;
          Alcotest.test_case "declining policy" `Quick test_schedule_declining_policy_empty;
          Alcotest.test_case "dpnf non-uniform" `Quick test_schedule_dpnf_nonuniform;
          Alcotest.test_case "csv" `Quick test_schedule_csv;
        ] );
      ( "dp policies",
        [
          Alcotest.test_case "dpnf plans at start" `Quick test_dp_next_failure_start_plans;
          Alcotest.test_case "dpnf follows plan" `Quick test_dp_next_failure_follows_plan;
          Alcotest.test_case "instances independent" `Quick test_dp_instances_independent;
          Alcotest.test_case "dpm full walk" `Quick test_dp_makespan_policy_walk;
          Alcotest.test_case "dpm recovers after failure" `Quick
            test_dp_makespan_recovers_after_failure;
          Alcotest.test_case "dpm bucket table is canonical" `Quick
            test_dp_makespan_bucket_table_canonical;
          Alcotest.test_case "dpm table cache LRU bound" `Quick
            test_dp_makespan_cache_lru_bound;
        ] );
    ]
