(* Unit and property tests for the PRNG substrate. *)

module Splitmix64 = Ckpt_prng.Splitmix64
module Xoshiro256 = Ckpt_prng.Xoshiro256
module Rng = Ckpt_prng.Rng
module Histogram = Ckpt_numerics.Histogram

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* -- SplitMix64 --------------------------------------------------------- *)

let test_splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 43L in
  check Alcotest.bool "different streams" true (Splitmix64.next a <> Splitmix64.next b)

let test_splitmix_mix_nontrivial () =
  (* The finalizer is a bijection; distinct inputs give distinct outputs. *)
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    let v = Splitmix64.mix (Int64.of_int i) in
    check Alcotest.bool "no collision" false (Hashtbl.mem seen v);
    Hashtbl.add seen v ()
  done

let test_splitmix_int_bounds () =
  let t = Splitmix64.create 7L in
  for _ = 1 to 1000 do
    let v = Splitmix64.next_int t 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let test_splitmix_int_invalid () =
  let t = Splitmix64.create 7L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix64.next_int: bound must be positive")
    (fun () -> ignore (Splitmix64.next_int t 0))

(* -- xoshiro256++ -------------------------------------------------------- *)

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create 1L and b = Xoshiro256.create 1L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let test_xoshiro_copy_independent () =
  let a = Xoshiro256.create 1L in
  ignore (Xoshiro256.next a);
  let b = Xoshiro256.copy a in
  let va = Array.init 10 (fun _ -> Xoshiro256.next a) in
  let vb = Array.init 10 (fun _ -> Xoshiro256.next b) in
  check Alcotest.bool "copies agree" true (va = vb);
  ignore (Xoshiro256.next a);
  let va' = Xoshiro256.next a and vb' = Xoshiro256.next b in
  check Alcotest.bool "then drift apart" true (va' <> vb')

let test_xoshiro_split_disjoint () =
  let parent = Xoshiro256.create 9L in
  let child = Xoshiro256.split parent in
  let a = Array.init 64 (fun _ -> Xoshiro256.next parent) in
  let b = Array.init 64 (fun _ -> Xoshiro256.next child) in
  Array.iter (fun v -> check Alcotest.bool "no overlap" false (Array.mem v b)) a

let test_xoshiro_float_range () =
  let t = Xoshiro256.create 3L in
  for _ = 1 to 10_000 do
    let v = Xoshiro256.float t in
    check Alcotest.bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_xoshiro_float_pos () =
  let t = Xoshiro256.create 3L in
  for _ = 1 to 10_000 do
    check Alcotest.bool "positive" true (Xoshiro256.float_pos t > 0.)
  done

let test_xoshiro_int_negative_bound () =
  let t = Xoshiro256.create 3L in
  Alcotest.check_raises "bound -1" (Invalid_argument "Xoshiro256.int: bound must be positive")
    (fun () -> ignore (Xoshiro256.int t (-1)))

let test_xoshiro_uniformity () =
  (* Chi-square over 64 bins with 64k samples: the 99.9% critical value
     for 63 dof is ~103.4; allow slack. *)
  let t = Xoshiro256.create 2024L in
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:64 in
  for _ = 1 to 65_536 do
    Histogram.add h (Xoshiro256.float t)
  done;
  let chi2 = Histogram.chi_square_uniform h in
  check Alcotest.bool (Printf.sprintf "chi2 = %.1f < 120" chi2) true (chi2 < 120.)

let test_xoshiro_bool_balanced () =
  let t = Xoshiro256.create 5L in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Xoshiro256.bool t then incr trues
  done;
  check Alcotest.bool "roughly balanced" true (!trues > 4700 && !trues < 5300)

(* -- Rng ----------------------------------------------------------------- *)

let test_rng_derive_deterministic () =
  let a = Rng.derive (Rng.create ~seed:11L) 5 in
  let b = Rng.derive (Rng.create ~seed:11L) 5 in
  for _ = 1 to 50 do
    checkf "same derived stream" (Rng.uniform a) (Rng.uniform b)
  done

let test_rng_derive_keys_differ () =
  let root = Rng.create ~seed:11L in
  let a = Rng.derive root 5 and b = Rng.derive root 6 in
  check Alcotest.bool "different keys differ" true (Rng.uniform a <> Rng.uniform b)

let test_rng_derive_does_not_mutate () =
  let root = Rng.create ~seed:11L in
  let before = Rng.uniform (Rng.derive root 1) in
  ignore (Rng.derive root 2);
  ignore (Rng.derive root 3);
  let after = Rng.uniform (Rng.derive root 1) in
  checkf "derivation is pure" before after

let test_rng_exponential_mean () =
  let t = Rng.create ~seed:77L in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential t ~rate:0.5
  done;
  let mean = !acc /. float_of_int n in
  check Alcotest.bool (Printf.sprintf "mean %.3f ~ 2" mean) true (abs_float (mean -. 2.) < 0.05)

let test_rng_exponential_invalid () =
  let t = Rng.create ~seed:1L in
  Alcotest.check_raises "rate 0" (Invalid_argument "Rng.exponential: rate must be positive")
    (fun () -> ignore (Rng.exponential t ~rate:0.))

let test_rng_normal_moments () =
  let t = Rng.create ~seed:99L in
  let n = 50_000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let z = Rng.normal t in
    sum := !sum +. z;
    sum2 := !sum2 +. (z *. z)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check Alcotest.bool "mean ~ 0" true (abs_float mean < 0.02);
  check Alcotest.bool "var ~ 1" true (abs_float (var -. 1.) < 0.05)

let test_rng_seed_of () =
  let t = Rng.create ~seed:123L in
  check Alcotest.int64 "seed preserved" 123L (Rng.seed_of t)

(* -- qcheck -------------------------------------------------------------- *)

let prop_int_in_bounds =
  QCheck2.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck2.Gen.(pair (int_range 1 100_000) int)
    (fun (bound, seed) ->
      let t = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.int t bound in
      v >= 0 && v < bound)

let prop_uniform_in_unit =
  QCheck2.Test.make ~name:"Rng.uniform stays in [0,1)" ~count:500 QCheck2.Gen.int
    (fun seed ->
      let t = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.uniform t in
      v >= 0. && v < 1.)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_int_in_bounds; prop_uniform_in_unit ]

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "mix is injective on a sample" `Quick test_splitmix_mix_nontrivial;
          Alcotest.test_case "next_int bounds" `Quick test_splitmix_int_bounds;
          Alcotest.test_case "next_int invalid bound" `Quick test_splitmix_int_invalid;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "copy independence" `Quick test_xoshiro_copy_independent;
          Alcotest.test_case "split streams disjoint" `Quick test_xoshiro_split_disjoint;
          Alcotest.test_case "float range" `Quick test_xoshiro_float_range;
          Alcotest.test_case "float_pos positive" `Quick test_xoshiro_float_pos;
          Alcotest.test_case "int negative bound" `Quick test_xoshiro_int_negative_bound;
          Alcotest.test_case "uniformity chi-square" `Quick test_xoshiro_uniformity;
          Alcotest.test_case "bool balanced" `Quick test_xoshiro_bool_balanced;
        ] );
      ( "rng",
        [
          Alcotest.test_case "derive deterministic" `Quick test_rng_derive_deterministic;
          Alcotest.test_case "derive keys differ" `Quick test_rng_derive_keys_differ;
          Alcotest.test_case "derive pure" `Quick test_rng_derive_does_not_mutate;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "exponential invalid rate" `Quick test_rng_exponential_invalid;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "seed_of" `Quick test_rng_seed_of;
        ] );
      ("properties", qcheck_cases);
    ]
