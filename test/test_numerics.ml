(* Unit and property tests for the numerics substrate. *)

module Lambert_w = Ckpt_numerics.Lambert_w
module Special = Ckpt_numerics.Special
module Rootfind = Ckpt_numerics.Rootfind
module Quadrature = Ckpt_numerics.Quadrature
module Summary = Ckpt_numerics.Summary
module Histogram = Ckpt_numerics.Histogram

let check = Alcotest.check
let close ?(tol = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float tol) msg expected actual

(* -- Lambert W ------------------------------------------------------------ *)

let test_w0_at_zero () = close "w0(0) = 0" 0. (Lambert_w.w0 0.)
let test_w0_at_e () = close "w0(e) = 1" 1. (Lambert_w.w0 (exp 1.))
let test_w0_branch_point () = close ~tol:1e-4 "w0(-1/e) = -1" (-1.) (Lambert_w.w0 (-.exp (-1.)))

let test_w0_identity () =
  List.iter
    (fun z ->
      let w = Lambert_w.w0 z in
      close ~tol:1e-10 (Printf.sprintf "w e^w = z at z = %g" z) 0.
        (((w *. exp w) -. z) /. (1. +. abs_float z)))
    [ -0.36; -0.3; -0.1; -0.01; 0.001; 0.5; 1.; 3.; 10.; 100.; 1e6 ]

let test_wm1_identity () =
  List.iter
    (fun z ->
      let w = Lambert_w.wm1 z in
      close ~tol:1e-9 (Printf.sprintf "wm1 identity at z = %g" z) z (w *. exp w);
      check Alcotest.bool "wm1 <= -1" true (w <= -1.))
    [ -0.36; -0.3; -0.2; -0.1; -0.01; -1e-4 ]

let test_w0_domain_error () =
  Alcotest.check_raises "below -1/e"
    (Invalid_argument "Lambert_w.w0: argument -0.5 below -1/e") (fun () ->
      ignore (Lambert_w.w0 (-0.5)))

let test_wm1_domain_error () =
  Alcotest.check_raises "positive argument"
    (Invalid_argument "Lambert_w.wm1: argument must be negative") (fun () ->
      ignore (Lambert_w.wm1 0.5))

let prop_w0_identity =
  QCheck2.Test.make ~name:"w0 identity on (-1/e, 20]" ~count:500
    QCheck2.Gen.(float_range (-0.367) 20.)
    (fun z ->
      let w = Lambert_w.w0 z in
      abs_float ((w *. exp w) -. z) <= 1e-8 *. (1. +. abs_float z))

(* -- Special functions ---------------------------------------------------- *)

let test_gamma_integers () =
  List.iteri
    (fun i expected ->
      close ~tol:1e-9 (Printf.sprintf "gamma(%d)" (i + 1)) expected
        (Special.gamma (float_of_int (i + 1))))
    [ 1.; 1.; 2.; 6.; 24.; 120. ]

let test_gamma_half () = close ~tol:1e-12 "gamma(1/2) = sqrt pi" (sqrt Float.pi) (Special.gamma 0.5)

let test_gamma_reflection () =
  (* Gamma(x) Gamma(1-x) = pi / sin(pi x) at x = 0.3. *)
  let x = 0.3 in
  close ~tol:1e-9 "reflection"
    (Float.pi /. sin (Float.pi *. x))
    (Special.gamma x *. Special.gamma (1. -. x))

let test_log_gamma_invalid () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Special.log_gamma: argument must be positive") (fun () ->
      ignore (Special.log_gamma 0.))

let test_incomplete_gamma_exponential () =
  (* P(1, x) = 1 - e^-x. *)
  List.iter
    (fun x ->
      close ~tol:1e-12 (Printf.sprintf "P(1, %g)" x)
        (1. -. exp (-.x))
        (Special.lower_incomplete_gamma_regularized ~a:1. ~x))
    [ 0.1; 0.5; 1.; 2.; 5.; 20. ]

let test_incomplete_gamma_limits () =
  close "P(a, 0) = 0" 0. (Special.lower_incomplete_gamma_regularized ~a:2.5 ~x:0.);
  close ~tol:1e-9 "P(a, inf) -> 1" 1.
    (Special.lower_incomplete_gamma_regularized ~a:2.5 ~x:200.)

let test_erf_values () =
  close "erf(0) = 0" 0. (Special.erf 0.);
  close ~tol:1e-7 "erf(1)" 0.8427007929497149 (Special.erf 1.);
  close ~tol:1e-9 "erf odd" (-.Special.erf 0.7) (Special.erf (-0.7));
  close ~tol:1e-9 "erfc complement" 1. (Special.erf 0.9 +. Special.erfc 0.9)

let test_normal_cdf () =
  close ~tol:1e-12 "cdf(mean) = 1/2" 0.5 (Special.normal_cdf ~mean:3. ~std:2. 3.);
  close ~tol:1e-6 "cdf(1.96)" 0.9750021 (Special.normal_cdf ~mean:0. ~std:1. 1.96)

let test_normal_quantile_inverts () =
  List.iter
    (fun p ->
      let x = Special.normal_quantile p in
      close ~tol:1e-9 (Printf.sprintf "quantile inverts at %g" p) p
        (Special.normal_cdf ~mean:0. ~std:1. x))
    [ 1e-6; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. -. 1e-6 ]

let test_normal_quantile_invalid () =
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Special.normal_quantile: probability must be in (0, 1)") (fun () ->
      ignore (Special.normal_quantile 0.))

(* -- Root finding ---------------------------------------------------------- *)

let test_bisect_cos () =
  let root = Rootfind.bisect ~f:(fun x -> cos x -. x) ~lo:0. ~hi:1. () in
  close ~tol:1e-9 "cos x = x" 0.7390851332151607 root

let test_brent_cos () =
  let root = Rootfind.brent ~f:(fun x -> cos x -. x) ~lo:0. ~hi:1. () in
  close ~tol:1e-9 "cos x = x" 0.7390851332151607 root

let test_brent_polynomial () =
  let f x = ((x +. 3.) *. (x -. 1.)) *. (x -. 1.) in
  let root = Rootfind.brent ~f ~lo:(-4.) ~hi:0. () in
  close ~tol:1e-7 "root -3" (-3.) root

let test_no_bracket () =
  Alcotest.check_raises "same sign" Rootfind.No_bracket (fun () ->
      ignore (Rootfind.bisect ~f:(fun x -> (x *. x) +. 1.) ~lo:(-1.) ~hi:1. ()))

let test_endpoint_root () =
  close "root at lo" 2. (Rootfind.brent ~f:(fun x -> x -. 2.) ~lo:2. ~hi:5. ())

let test_golden_min () =
  let x = Rootfind.golden_section_min ~f:(fun x -> (x -. 2.) ** 2.) ~lo:(-10.) ~hi:10. () in
  close ~tol:1e-6 "min of parabola" 2. x

let test_grid_then_golden_multimodal () =
  (* Global min of x^4 - 3x^2 + x on [-3, 3] is near -1.30. *)
  let f x = (x ** 4.) -. (3. *. x *. x) +. x in
  let x = Rootfind.grid_then_golden ~points:64 ~f ~lo:(-3.) ~hi:3. () in
  close ~tol:1e-4 "global minimum" (-1.300839) x

(* -- Quadrature ------------------------------------------------------------ *)

let test_simpson_poly () =
  close ~tol:1e-10 "int x^2 on [0,1]" (1. /. 3.)
    (Quadrature.adaptive_simpson ~f:(fun x -> x *. x) ~lo:0. ~hi:1. ())

let test_simpson_sin () =
  close ~tol:1e-9 "int sin on [0,pi]" 2. (Quadrature.adaptive_simpson ~f:sin ~lo:0. ~hi:Float.pi ())

let test_simpson_empty () =
  close "empty interval" 0. (Quadrature.adaptive_simpson ~f:sin ~lo:1. ~hi:1. ())

let test_gauss32_poly () =
  (* Exact for polynomials up to degree 63. *)
  let f x = (5. *. (x ** 5.)) -. (x ** 3.) +. 2. in
  close ~tol:1e-9 "degree-5 polynomial"
    ((5. /. 6. *. (2. ** 6.)) -. (2. ** 4. /. 4.) +. 4.)
    (Quadrature.gauss_legendre_32 ~f ~lo:0. ~hi:2.)

let test_integrate_to_infinity () =
  close ~tol:1e-8 "int e^-x = 1" 1. (Quadrature.integrate_to_infinity ~f:(fun x -> exp (-.x)) ~lo:0. ());
  close ~tol:1e-8 "gaussian tail" (sqrt Float.pi /. 2.)
    (Quadrature.integrate_to_infinity ~f:(fun x -> exp (-.x *. x)) ~lo:0. ())

(* -- Summary ---------------------------------------------------------------- *)

let test_summary_known () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  close "mean" 5. (Summary.mean s);
  close ~tol:1e-9 "variance" (32. /. 7.) (Summary.variance s);
  close "min" 2. (Summary.min_value s);
  close "max" 9. (Summary.max_value s);
  check Alcotest.int "count" 8 (Summary.count s)

let test_summary_stability () =
  (* Welford keeps precision with a huge common offset. *)
  let offset = 1e12 in
  let s = Summary.of_array (Array.map (fun x -> x +. offset) [| 1.; 2.; 3.; 4. |]) in
  close ~tol:1e-6 "variance under offset" (5. /. 3.) (Summary.variance s)

let test_summary_empty () =
  check Alcotest.bool "mean nan" true (Float.is_nan (Summary.mean Summary.empty));
  check Alcotest.bool "variance nan" true (Float.is_nan (Summary.variance (Summary.add Summary.empty 1.)))

let test_quantiles () =
  let data = [| 1.; 2.; 3.; 4.; 5. |] in
  close "median" 3. (Summary.median data);
  close "q0" 1. (Summary.quantile data 0.);
  close "q1" 5. (Summary.quantile data 1.);
  close "q interpolated" 1.5 (Summary.quantile data 0.125)

let test_confidence_interval () =
  (* n = 100, std 2 -> half-width 1.96 * 2 / 10 = 0.392 around the mean. *)
  let s = ref Summary.empty in
  for i = 0 to 99 do
    (* Alternating mean 10 +/- 2: sample std = 2 * sqrt(100/99). *)
    s := Summary.add !s (if i mod 2 = 0 then 8. else 12.)
  done;
  let lo, hi = Summary.mean_confidence_interval !s in
  close ~tol:1e-3 "center" 10. ((lo +. hi) /. 2.);
  let half = (hi -. lo) /. 2. in
  let expected = 1.959964 *. (2. *. sqrt (100. /. 99.)) /. 10. in
  close ~tol:1e-3 "half width" expected half;
  let lo99, hi99 = Summary.mean_confidence_interval ~confidence:0.99 !s in
  check Alcotest.bool "wider at 99%" true (hi99 -. lo99 > hi -. lo);
  let few = Summary.add Summary.empty 1. in
  let lo1, _ = Summary.mean_confidence_interval few in
  check Alcotest.bool "nan for n<2" true (Float.is_nan lo1);
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Summary.mean_confidence_interval: confidence outside (0, 1)") (fun () ->
      ignore (Summary.mean_confidence_interval ~confidence:1. !s))

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.quantile: empty data") (fun () ->
      ignore (Summary.quantile [||] 0.5));
  Alcotest.check_raises "p out of range" (Invalid_argument "Summary.quantile: p outside [0, 1]")
    (fun () -> ignore (Summary.quantile [| 1. |] 1.5))

let prop_mean_within_range =
  QCheck2.Test.make ~name:"mean lies within [min, max]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Summary.add_all Summary.empty xs in
      Summary.mean s >= Summary.min_value s -. 1e-9
      && Summary.mean s <= Summary.max_value s +. 1e-9)

let test_merge_empty_sides () =
  let s = Summary.add_all Summary.empty [ 1.; 2.; 3. ] in
  check Alcotest.int "empty/empty count" 0 (Summary.count (Summary.merge Summary.empty Summary.empty));
  check Alcotest.bool "left empty is identity" true (Summary.merge Summary.empty s = s);
  check Alcotest.bool "right empty is identity" true (Summary.merge s Summary.empty = s)

let test_merge_known () =
  let a = Summary.of_array [| 2.; 4.; 4.; 4. |] in
  let b = Summary.of_array [| 5.; 5.; 7.; 9. |] in
  let m = Summary.merge a b in
  check Alcotest.int "count" 8 (Summary.count m);
  close "mean" 5. (Summary.mean m);
  close ~tol:1e-9 "variance" (32. /. 7.) (Summary.variance m);
  close "min" 2. (Summary.min_value m);
  close "max" 9. (Summary.max_value m)

(* The same-value comparison [merge (splits of xs) vs add_all xs] must
   tolerate rounding (the two accumulation orders differ) and treat
   the undefined cases (nan mean/variance of tiny samples) as equal. *)
let summary_agrees a b =
  let close a b = (Float.is_nan a && Float.is_nan b) || abs_float (a -. b) <= 1e-6 *. (1. +. abs_float a +. abs_float b) in
  Summary.count a = Summary.count b
  && close (Summary.mean a) (Summary.mean b)
  && close (Summary.variance a) (Summary.variance b)
  && close (Summary.min_value a) (Summary.min_value b)
  && close (Summary.max_value a) (Summary.max_value b)

let prop_merge_matches_add_all =
  QCheck2.Test.make ~name:"merge of a split = add_all of the whole" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 0 40) (float_range (-1e3) 1e3)) (list_size (int_range 0 40) (float_range (-1e3) 1e3)))
    (fun (xs, ys) ->
      let merged =
        Summary.merge (Summary.add_all Summary.empty xs) (Summary.add_all Summary.empty ys)
      in
      summary_agrees merged (Summary.add_all Summary.empty (xs @ ys)))

let prop_merge_pairwise_reduction =
  (* Replicate-ordered pairwise reduction of singletons — exactly what
     the parallel evaluation harness does — agrees with one pass. *)
  QCheck2.Test.make ~name:"pairwise singleton reduction = one pass" ~count:300
    QCheck2.Gen.(list_size (int_range 0 60) (float_range (-1e3) 1e3))
    (fun xs ->
      let reduced =
        List.fold_left
          (fun acc x -> Summary.merge acc (Summary.add Summary.empty x))
          Summary.empty xs
      in
      summary_agrees reduced (Summary.add_all Summary.empty xs))

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"quantile is monotone in p" ~count:300
    QCheck2.Gen.(
      triple (array_size (int_range 1 40) (float_range (-1e3) 1e3)) (float_range 0. 1.)
        (float_range 0. 1.))
    (fun (data, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Summary.quantile data lo <= Summary.quantile data hi +. 1e-9)

(* -- Exact sums and distributional vectors ----------------------------------- *)

module Exact_sum = Ckpt_numerics.Exact_sum

let prop_exact_sum_order_independent =
  (* The whole point of the superaccumulator: any permutation of the
     observations gives the same bits. *)
  QCheck2.Test.make ~name:"Exact_sum is order-independent, bit for bit" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) (float_range (-1e12) 1e12))
    (fun xs ->
      let total l = List.fold_left Exact_sum.add Exact_sum.zero l in
      Exact_sum.equal (total xs) (total (List.rev xs)))

let vdim = 3
let vector_of rows = List.fold_left Summary.Vector.add (Summary.Vector.create ~dim:vdim) rows

let gen_vector =
  QCheck2.Gen.(
    map vector_of (list_size (int_range 0 25) (array_repeat vdim (float_range (-1e9) 1e9))))

let vector_bits = Summary.Vector.serialize

let prop_vector_merge_commutative =
  QCheck2.Test.make ~name:"Vector.merge is commutative at the bit level" ~count:200
    QCheck2.Gen.(pair gen_vector gen_vector)
    (fun (a, b) ->
      vector_bits (Summary.Vector.merge a b) = vector_bits (Summary.Vector.merge b a))

let prop_vector_merge_associative =
  QCheck2.Test.make ~name:"Vector.merge is associative at the bit level" ~count:200
    QCheck2.Gen.(triple gen_vector gen_vector gen_vector)
    (fun (a, b, c) ->
      vector_bits (Summary.Vector.merge (Summary.Vector.merge a b) c)
      = vector_bits (Summary.Vector.merge a (Summary.Vector.merge b c)))

let prop_vector_roundtrip =
  QCheck2.Test.make ~name:"Vector serialize/deserialize is bit-exact" ~count:200 gen_vector
    (fun v ->
      match Summary.Vector.deserialize (vector_bits v) with
      | None -> false
      | Some v' -> Summary.Vector.equal v v' && vector_bits v = vector_bits v')

let test_vector_known () =
  let v = vector_of [ [| 1.; 10.; 100. |]; [| 2.; 20.; 200. |]; [| 3.; 30.; 300. |] ] in
  check Alcotest.int "dim" vdim (Summary.Vector.dim v);
  check Alcotest.int "count" 3 (Summary.Vector.count v);
  close "mean c0" 2. (Summary.Vector.mean v 0);
  close "mean c2" 200. (Summary.Vector.mean v 2);
  close "variance c1" 100. (Summary.Vector.variance v 1);
  close "min c0" 1. (Summary.Vector.min_value v 0);
  close "max c2" 300. (Summary.Vector.max_value v 2);
  let q = Summary.Vector.quantile v 1 0.5 in
  check Alcotest.bool "median within range" true (q >= 10. && q <= 30.);
  check Alcotest.bool "p50 <= p99" true
    (Summary.Vector.quantile v 1 0.5 <= Summary.Vector.quantile v 1 0.99);
  check Alcotest.bool "ci half-width positive" true (Summary.Vector.ci_half_width v 0 > 0.)

let test_vector_errors () =
  let v = Summary.Vector.create ~dim:2 in
  Alcotest.check_raises "dim 0 rejected" (Invalid_argument "Summary.Vector.create: dim < 1")
    (fun () -> ignore (Summary.Vector.create ~dim:0));
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Summary.Vector.add: dimension mismatch") (fun () ->
      ignore (Summary.Vector.add v [| 1. |]));
  Alcotest.check_raises "non-finite component"
    (Invalid_argument "Summary.Vector.add: non-finite component") (fun () ->
      ignore (Summary.Vector.add v [| 1.; nan |]));
  Alcotest.check_raises "merge dimension mismatch"
    (Invalid_argument "Summary.Vector.merge: dimension mismatch") (fun () ->
      ignore (Summary.Vector.merge v (Summary.Vector.create ~dim:3)));
  check Alcotest.(option reject) "garbage rejected" None
    (Option.map ignore (Summary.Vector.deserialize "vector nonsense"))

(* -- Histogram -------------------------------------------------------------- *)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.; 10.; 11. ];
  check Alcotest.int "total" 7 (Histogram.count h);
  check Alcotest.int "bin 0" 1 (Histogram.bin_count h 0);
  check Alcotest.int "bin 1" 2 (Histogram.bin_count h 1);
  check Alcotest.int "bin 9" 1 (Histogram.bin_count h 9);
  check Alcotest.int "underflow" 1 (Histogram.underflow h);
  check Alcotest.int "overflow" 2 (Histogram.overflow h)

let test_histogram_density () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.3; 0.6; 0.9 ];
  (* Each bin holds 1 of 4 observations over width 0.25. *)
  close "density" 1. (Histogram.density h 0);
  close "bin center" 0.125 (Histogram.bin_center h 0)

let test_histogram_chi_square_uniform () =
  let h = Histogram.create ~lo:0. ~hi:4. ~bins:4 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  close "perfectly uniform" 0. (Histogram.chi_square_uniform h)

let test_histogram_errors () =
  Alcotest.check_raises "bad bounds" (Invalid_argument "Histogram.create: hi <= lo") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~bins:4));
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Alcotest.check_raises "bad index" (Invalid_argument "Histogram: bin index out of range")
    (fun () -> ignore (Histogram.bin_count h 2))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_w0_identity; prop_mean_within_range; prop_merge_matches_add_all;
      prop_merge_pairwise_reduction; prop_quantile_monotone;
      prop_exact_sum_order_independent; prop_vector_merge_commutative;
      prop_vector_merge_associative; prop_vector_roundtrip;
    ]

let () =
  Alcotest.run "numerics"
    [
      ( "lambert_w",
        [
          Alcotest.test_case "w0(0)" `Quick test_w0_at_zero;
          Alcotest.test_case "w0(e)" `Quick test_w0_at_e;
          Alcotest.test_case "branch point" `Quick test_w0_branch_point;
          Alcotest.test_case "w0 identity" `Quick test_w0_identity;
          Alcotest.test_case "wm1 identity" `Quick test_wm1_identity;
          Alcotest.test_case "w0 domain" `Quick test_w0_domain_error;
          Alcotest.test_case "wm1 domain" `Quick test_wm1_domain_error;
        ] );
      ( "special",
        [
          Alcotest.test_case "gamma integers" `Quick test_gamma_integers;
          Alcotest.test_case "gamma(1/2)" `Quick test_gamma_half;
          Alcotest.test_case "reflection formula" `Quick test_gamma_reflection;
          Alcotest.test_case "log_gamma domain" `Quick test_log_gamma_invalid;
          Alcotest.test_case "P(1,x) exponential" `Quick test_incomplete_gamma_exponential;
          Alcotest.test_case "P limits" `Quick test_incomplete_gamma_limits;
          Alcotest.test_case "erf values" `Quick test_erf_values;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "normal quantile inverts" `Quick test_normal_quantile_inverts;
          Alcotest.test_case "normal quantile domain" `Quick test_normal_quantile_invalid;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "bisect cos" `Quick test_bisect_cos;
          Alcotest.test_case "brent cos" `Quick test_brent_cos;
          Alcotest.test_case "brent polynomial" `Quick test_brent_polynomial;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "endpoint root" `Quick test_endpoint_root;
          Alcotest.test_case "golden section" `Quick test_golden_min;
          Alcotest.test_case "grid then golden" `Quick test_grid_then_golden_multimodal;
        ] );
      ( "quadrature",
        [
          Alcotest.test_case "simpson x^2" `Quick test_simpson_poly;
          Alcotest.test_case "simpson sin" `Quick test_simpson_sin;
          Alcotest.test_case "empty interval" `Quick test_simpson_empty;
          Alcotest.test_case "gauss32 polynomial" `Quick test_gauss32_poly;
          Alcotest.test_case "to infinity" `Quick test_integrate_to_infinity;
        ] );
      ( "summary",
        [
          Alcotest.test_case "known stats" `Quick test_summary_known;
          Alcotest.test_case "offset stability" `Quick test_summary_stability;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "merge empty sides" `Quick test_merge_empty_sides;
          Alcotest.test_case "merge known stats" `Quick test_merge_known;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
          Alcotest.test_case "quantile errors" `Quick test_quantile_errors;
        ] );
      ( "vector",
        [
          Alcotest.test_case "known stats" `Quick test_vector_known;
          Alcotest.test_case "errors" `Quick test_vector_errors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "density" `Quick test_histogram_density;
          Alcotest.test_case "chi-square uniform" `Quick test_histogram_chi_square_uniform;
          Alcotest.test_case "errors" `Quick test_histogram_errors;
        ] );
      ("properties", qcheck_cases);
    ]
