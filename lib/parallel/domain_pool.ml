module Metrics = Ckpt_telemetry.Metrics

let tasks_run = Metrics.counter "domain_pool/tasks"
let inline_sweeps = Metrics.counter "domain_pool/inline_sweeps"
let domains_spawned = Metrics.counter "domain_pool/domains_spawned"
let early_aborts = Metrics.counter "domain_pool/early_aborts"

let recommended_domains () =
  match Sys.getenv_opt "CKPT_DOMAINS" with
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ()
    end
  | None -> Domain.recommended_domain_count ()

(* True while the current domain is executing pool work.  Nested
   [parallel_init] calls (the evaluation harness fans replicates out
   while the studies fan configurations out) run inline instead of
   spawning domains on top of an already-saturated machine. *)
let in_region_key = Domain.DLS.new_key (fun () -> false)

let in_parallel_region () = Domain.DLS.get in_region_key

let parallel_init ?domains n f =
  if n < 0 then invalid_arg "Domain_pool.parallel_init: negative size";
  let domains = match domains with Some d -> d | None -> recommended_domains () in
  if domains <= 1 || n <= 1 || in_parallel_region () then begin
    Metrics.incr inline_sweeps;
    Metrics.add tasks_run n;
    Array.init n f
  end
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_region_key true;
      let continue = ref true in
      while !continue do
        (* Once a task has failed the sweep's outcome is decided:
           stop claiming so the failure surfaces promptly instead of
           burning the rest of the grid. *)
        if Atomic.get first_error <> None then begin
          Metrics.incr early_aborts;
          continue := false
        end
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            Metrics.incr tasks_run;
            match f i with
            | v -> results.(i) <- Some v
            | exception e -> ignore (Atomic.compare_and_set first_error None (Some e))
          end
        end
      done
    in
    let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    Metrics.add domains_spawned (List.length spawned);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_region_key false)
      worker;
    List.iter Domain.join spawned;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.map Option.get results
  end

let parallel_map_list ?domains f items =
  let arr = Array.of_list items in
  Array.to_list (parallel_init ?domains (Array.length arr) (fun i -> f arr.(i)))
