module Metrics = Ckpt_telemetry.Metrics
module FR = Ckpt_telemetry.Flight_recorder
module Trace_export = Ckpt_telemetry.Trace_export

let tasks_run = Metrics.counter "domain_pool/tasks"
let inline_sweeps = Metrics.counter "domain_pool/inline_sweeps"
let domains_spawned = Metrics.counter "domain_pool/domains_spawned"
let early_aborts = Metrics.counter "domain_pool/early_aborts"
let steals = Metrics.counter "sched/steals"
let injections = Metrics.counter "sched/injections"
let regions_run = Metrics.counter "sched/regions"
let external_tasks = Metrics.counter "sched/external/tasks"
let park_timer = Metrics.timer "sched/idle_park"

(* Warn once per distinct malformed value: [recommended_domains] runs
   on every fan-out, and a bad CKPT_DOMAINS should not flood stderr. *)
let warn_once cell ~knob ~value ~fallback =
  if Atomic.get cell <> value then begin
    Atomic.set cell value;
    Printf.eprintf "ckpt: ignoring malformed %s=%S (%s)\n%!" knob value fallback
  end

let warned_domains = Atomic.make ""

let recommended_domains () =
  match Sys.getenv_opt "CKPT_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s when String.trim s = "" -> Domain.recommended_domain_count ()
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          let fallback = Domain.recommended_domain_count () in
          warn_once warned_domains ~knob:"CKPT_DOMAINS" ~value:s
            ~fallback:
              (Printf.sprintf "want an integer >= 1; using the hardware default %d" fallback);
          fallback
    end

type sched = Seq | Flat | Steal

let warned_sched = Atomic.make ""

let scheduler () =
  match Sys.getenv_opt "CKPT_SCHED" with
  | None -> Steal
  | Some s when String.trim s = "" -> Steal
  | Some s -> begin
      match String.lowercase_ascii (String.trim s) with
      | "steal" -> Steal
      | "flat" -> Flat
      | "seq" -> Seq
      | _ ->
          warn_once warned_sched ~knob:"CKPT_SCHED" ~value:s
            ~fallback:"want seq, flat or steal; using steal";
          Steal
    end

(* True while the current domain is executing pool work.  The
   evaluation harness reads it to tell a top-level table (which owns
   the process-global timers and progress meter) from one nested
   inside a study's own fan-out; the flat scheduler additionally uses
   it to run nested regions inline. *)
let in_region_key = Domain.DLS.new_key (fun () -> false)

let in_parallel_region () = Domain.DLS.get in_region_key

(* -- flat scheduler (the pre-scheduler pool, kept for A/B pinning) --------- *)

(* Spawns [domains - 1] fresh domains per call, claims work items from
   a shared counter, and runs nested calls inline on the claiming
   domain.  Study-level and replicate-level parallelism do not
   compose: a narrow outer sweep caps the whole machine. *)
let flat_parallel_init ~domains n f =
  let results = Array.make n None in
  let first_error = Atomic.make None in
  let next = Atomic.make 0 in
  let worker () =
    Domain.DLS.set in_region_key true;
    let continue = ref true in
    while !continue do
      (* Once a task has failed the sweep's outcome is decided: stop
         claiming so the failure surfaces promptly instead of burning
         the rest of the grid. *)
      if Atomic.get first_error <> None then begin
        Metrics.incr early_aborts;
        continue := false
      end
      else begin
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          Metrics.incr tasks_run;
          match f i with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set first_error None (Some (e, bt)))
        end
      end
    done
  in
  let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
  Metrics.add domains_spawned (List.length spawned);
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_region_key false) worker;
  List.iter Domain.join spawned;
  (match Atomic.get first_error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map Option.get results

(* -- work-stealing scheduler ----------------------------------------------- *)

(* Domains are spawned once, kept parked on a condition variable when
   idle, and reused by every region for the life of the process (which
   also keeps their DLS solver caches warm across sweeps).

   A *region* is one [parallel_init] call: work items are claimed from
   the region's atomic counter (so each output slot is written by
   exactly one task, and stealing rebalances at item granularity), and
   the region descriptor itself is what circulates through the deques.
   Forking a region pushes up to [domains - 1] helper tickets — each
   ticket is an invitation to claim items — onto the forker's own
   Chase–Lev deque (or the shared lock-free injector when the forker
   is not a pool worker).  Idle workers pop their own deque, then the
   injector, then steal the oldest ticket from a sibling; a nested
   region forked inside a task is therefore picked up by whichever
   domains the outer sweep leaves idle, so study-level and
   replicate-level parallelism compose and a skewed outer sweep's tail
   is stolen instead of serialized. *)
module Steal_sched = struct
  type region = {
    n : int;
    next : int Atomic.t;  (* next unclaimed item *)
    completed : int Atomic.t;  (* claimed items that have finished (ran or skipped) *)
    error : (exn * Printexc.raw_backtrace) option Atomic.t;
    run_item : int -> unit;
  }

  let finished r = Atomic.get r.completed >= r.n

  type worker = {
    deque : region Deque.t;
    tasks : Metrics.counter;
    id : int;
    mutable cursor : int;  (* round-robin steal victim, owner-private *)
    mutable rec_track : FR.track option;  (* flight-recorder track, owner-private *)
  }

  (* Flight-recorder tracks are allocated lazily so a disabled
     recorder costs neither the ring arrays nor the registry entry.
     Each track is written only by its owning domain ([rec_track] is
     owner-private; external domains go through DLS). *)
  let worker_track w =
    match w.rec_track with
    | Some t -> t
    | None ->
        let t = FR.track (Printf.sprintf "worker%d" w.id) in
        w.rec_track <- Some t;
        t

  let external_seq = Atomic.make 0
  let external_track_key = Domain.DLS.new_key (fun () -> None)

  let external_track () =
    match Domain.DLS.get external_track_key with
    | Some t -> t
    | None ->
        let t = FR.track (Printf.sprintf "external%d" (Atomic.fetch_and_add external_seq 1)) in
        Domain.DLS.set external_track_key (Some t);
        t

  let current_track self = match self with Some w -> worker_track w | None -> external_track ()

  type pool = {
    workers : worker array Atomic.t;  (* grows; never shrinks *)
    injector : region Deque.Injector.t;
    lock : Mutex.t;
    cond : Condition.t;
    sleepers : int Atomic.t;
    epoch : int Atomic.t;  (* bumped whenever new work appears or a region completes *)
    stop : bool Atomic.t;
    mutable spawned : unit Domain.t list;  (* under [lock] *)
  }

  (* The pool worker executing the current domain, if any. *)
  let worker_key = Domain.DLS.new_key (fun () -> None)

  (* Wake parked domains.  The epoch is bumped first so a domain that
     scanned for work before the bump and is about to park re-checks
     instead of sleeping through the wakeup. *)
  let publish p =
    Atomic.incr p.epoch;
    if Atomic.get p.sleepers > 0 then begin
      Mutex.lock p.lock;
      Condition.broadcast p.cond;
      Mutex.unlock p.lock
    end

  let park ?track p ~until =
    let t0 = Unix.gettimeofday () in
    Mutex.lock p.lock;
    Atomic.incr p.sleepers;
    while not (until ()) do
      Condition.wait p.cond p.lock
    done;
    Atomic.decr p.sleepers;
    Mutex.unlock p.lock;
    let t1 = Unix.gettimeofday () in
    Metrics.record park_timer (t1 -. t0);
    match track with
    | Some tr ->
        FR.record tr FR.Park ~t0 ~t1;
        FR.instant tr FR.Unpark ~at:t1
    | None -> ()

  (* Claim-and-run loop.  [stop] lets a joiner lending a hand to a
     *different* region abandon it between items the moment its own
     region completes; abandoned items are still claimed later by the
     lent-to region's owner, whose own drain runs to exhaustion. *)
  let drain ?stop ?track ?(state = FR.Run_task) p ~count r =
    let stopped = match stop with None -> Fun.const false | Some f -> f in
    let rec loop () =
      if not (stopped ()) then begin
        let i = Atomic.fetch_and_add r.next 1 in
        if i < r.n then begin
          if Atomic.get r.error = None then begin
            Metrics.incr count;
            match track with
            | Some tr ->
                (* [run_item] never raises (it stores the exception in
                   the region), so no protect is needed around the
                   span. *)
                let t0 = FR.now () in
                r.run_item i;
                FR.record tr state ~t0 ~t1:(FR.now ())
            | None -> r.run_item i
          end
          else Metrics.incr early_aborts;
          if Atomic.fetch_and_add r.completed 1 = r.n - 1 then publish p;
          loop ()
        end
      end
    in
    loop ()

  let rec pop_live deque =
    match Deque.pop deque with
    | Some r when finished r -> pop_live deque
    | other -> other

  let rec pop_live_injector inj =
    match Deque.Injector.pop inj with
    | Some r when finished r -> pop_live_injector inj
    | other -> other

  let rec steal_live deque =
    match Deque.steal deque with
    | Some r when finished r -> steal_live deque
    | other -> other

  let try_steal p self =
    let ws = Atomic.get p.workers in
    let len = Array.length ws in
    let start = match self with Some w -> w.cursor | None -> 0 in
    let rec go k =
      if k >= len then None
      else begin
        let victim = ws.((start + k) mod len) in
        let own = match self with Some w -> victim == w | None -> false in
        if own then go (k + 1)
        else begin
          match steal_live victim.deque with
          | Some r ->
              (match self with Some w -> w.cursor <- (start + k) mod len | None -> ());
              Metrics.incr steals;
              Some r
          | None -> go (k + 1)
        end
      end
    in
    go 0

  let find_work p self =
    match match self with Some w -> pop_live w.deque | None -> None with
    | Some r -> Some r
    | None -> begin
        match pop_live_injector p.injector with
        | Some r -> Some r
        | None -> try_steal p self
      end

  let rec worker_loop p w =
    if not (Atomic.get p.stop) then begin
      let e0 = Atomic.get p.epoch in
      let track = if FR.enabled () then Some (worker_track w) else None in
      let t0 = match track with Some _ -> FR.now () | None -> 0. in
      (match find_work p (Some w) with
      | Some r ->
          (match track with
          | Some tr -> FR.record tr FR.Steal_success ~t0 ~t1:(FR.now ())
          | None -> ());
          drain ?track p ~count:w.tasks r
      | None ->
          (match track with
          | Some tr -> FR.record tr FR.Steal_attempt ~t0 ~t1:(FR.now ())
          | None -> ());
          park ?track p ~until:(fun () -> Atomic.get p.stop || Atomic.get p.epoch <> e0));
      worker_loop p w
    end

  let worker_main p w () =
    Domain.DLS.set worker_key (Some w);
    worker_loop p w

  let create_pool () =
    {
      workers = Atomic.make [||];
      injector = Deque.Injector.create ();
      lock = Mutex.create ();
      cond = Condition.create ();
      sleepers = Atomic.make 0;
      epoch = Atomic.make 0;
      stop = Atomic.make false;
      spawned = [];
    }

  let shutdown p =
    Atomic.set p.stop true;
    Mutex.lock p.lock;
    Condition.broadcast p.cond;
    let spawned = p.spawned in
    p.spawned <- [];
    Mutex.unlock p.lock;
    List.iter Domain.join spawned

  (* Mutex-guarded memo, not [lazy]: concurrently forcing a lazy from
     two domains raises [CamlinternalLazy.Undefined], and nothing
     stops two caller-spawned domains from entering their first
     region simultaneously. *)
  let pool_lock = Mutex.create ()
  let pool_memo = ref None

  let pool () =
    Mutex.lock pool_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock pool_lock)
      (fun () ->
        match !pool_memo with
        | Some p -> p
        | None ->
            let p = create_pool () in
            (* Workers idle on the condition variable between regions;
               wake and join them at exit so the process never tears
               down under a domain mid-park. *)
            at_exit (fun () -> shutdown p);
            pool_memo := Some p;
            p)

  (* [Domain.spawn] has a hard runtime cap; leave headroom for the
     main domain and any domains the caller spawned itself. *)
  let max_workers = 112

  let ensure_workers p target =
    let target = min target max_workers in
    if Array.length (Atomic.get p.workers) < target then begin
      Mutex.lock p.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock p.lock)
        (fun () ->
          let current = Atomic.get p.workers in
          let have = Array.length current in
          if have < target then begin
            let fresh =
              Array.init (target - have) (fun k ->
                  {
                    deque = Deque.create ();
                    tasks = Metrics.counter (Printf.sprintf "sched/worker%d/tasks" (have + k));
                    id = have + k;
                    cursor = 0;
                    rec_track = None;
                  })
            in
            let all = Array.append current fresh in
            (* Publish the deques before the domains start so early
               thieves see every sibling. *)
            Atomic.set p.workers all;
            Array.iter
              (fun w ->
                match Domain.spawn (worker_main p w) with
                | d ->
                    Metrics.incr domains_spawned;
                    p.spawned <- d :: p.spawned
                | exception _ ->
                    (* Out of domains: run narrower.  The orphan deque
                       stays empty and thieves skip it. *)
                    ())
              fresh
          end)
    end

  (* Wait for every claimed item of [r] to finish.  Pool workers (and
     the external owner, which may steal even without a deque of its
     own) help with other regions' tickets while they wait; with
     nothing to help with, they park until the region's last item or
     any new work bumps the epoch. *)
  let join p self r =
    let count = match self with Some w -> w.tasks | None -> external_tasks in
    let rec loop () =
      if not (finished r) then begin
        let e0 = Atomic.get p.epoch in
        let track = if FR.enabled () then Some (current_track self) else None in
        let t0 = match track with Some _ -> FR.now () | None -> 0. in
        match find_work p self with
        | Some other ->
            (match track with
            | Some tr -> FR.record tr FR.Steal_success ~t0 ~t1:(FR.now ())
            | None -> ());
            let state = if other == r then FR.Run_task else FR.Join_help in
            drain ?track ~state p ~stop:(fun () -> finished r) ~count other;
            loop ()
        | None ->
            (match track with
            | Some tr -> FR.record tr FR.Steal_attempt ~t0 ~t1:(FR.now ())
            | None -> ());
            if not (finished r) then begin
              park ?track p ~until:(fun () -> finished r || Atomic.get p.epoch <> e0);
              loop ()
            end
      end
    in
    loop ()

  let parallel_init ~domains n f =
    let p = pool () in
    ensure_workers p (domains - 1);
    let results = Array.make n None in
    let error = Atomic.make None in
    let run_item i =
      let was_in_region = Domain.DLS.get in_region_key in
      Domain.DLS.set in_region_key true;
      Metrics.incr tasks_run;
      (match f i with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt))));
      Domain.DLS.set in_region_key was_in_region
    in
    let r = { n; next = Atomic.make 0; completed = Atomic.make 0; error; run_item } in
    Metrics.incr regions_run;
    let tickets = min (domains - 1) (n - 1) in
    let self = Domain.DLS.get worker_key in
    let track =
      if FR.enabled () then begin
        Trace_export.ensure_flight_at_exit ();
        Some (current_track self)
      end
      else None
    in
    let push_tickets () =
      match self with
      | Some w ->
          for _ = 1 to tickets do
            Deque.push w.deque r
          done
      | None ->
          for _ = 1 to tickets do
            Deque.Injector.push p.injector r
          done;
          Metrics.add injections tickets
    in
    (match track with
    | Some tr when tickets > 0 ->
        let t0 = FR.now () in
        push_tickets ();
        FR.record tr FR.Inject ~t0 ~t1:(FR.now ())
    | _ -> push_tickets ());
    publish p;
    let count = match self with Some w -> w.tasks | None -> external_tasks in
    drain ?track p ~count r;
    join p self r;
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map Option.get results

  let pool_workers () =
    match !pool_memo with
    | Some p -> Array.length (Atomic.get p.workers)
    | None -> 0
end

let pool_workers = Steal_sched.pool_workers

(* -- common front door ----------------------------------------------------- *)

let inline_init n f =
  Metrics.incr inline_sweeps;
  Metrics.add tasks_run n;
  Array.init n f

let parallel_init ?domains n f =
  if n < 0 then invalid_arg "Domain_pool.parallel_init: negative size";
  let domains = match domains with Some d -> d | None -> recommended_domains () in
  if domains <= 1 || n <= 1 then inline_init n f
  else begin
    match scheduler () with
    | Seq -> inline_init n f
    | Flat ->
        (* The flat pool never nests: a task spawning more domains on
           an already-saturated machine would oversubscribe it. *)
        if in_parallel_region () then inline_init n f else flat_parallel_init ~domains n f
    | Steal -> Steal_sched.parallel_init ~domains n f
  end

let parallel_map_list ?domains f items =
  let arr = Array.of_list items in
  Array.to_list (parallel_init ?domains (Array.length arr) (fun i -> f arr.(i)))

let both ?domains f g =
  let r =
    parallel_init ?domains 2 (fun i -> if i = 0 then Either.Left (f ()) else Either.Right (g ()))
  in
  match (r.(0), r.(1)) with
  | Either.Left a, Either.Right b -> (a, b)
  | _ -> assert false
