(** Multicore fan-out for the experiment sweeps.

    Every study in this repository is a sweep of independent
    evaluations (points of a figure, cells of a grid, candidate
    periods, Monte-Carlo replicates); on a multicore machine they
    parallelize trivially with OCaml 5 domains.  This module provides
    a deterministic [parallel_init]: work items are claimed from an
    atomic counter, each output slot is written by exactly one domain,
    and joining the domains publishes all writes, so results are
    identical to the sequential run regardless of scheduling.

    Calls nest without oversubscribing: a task that itself calls
    [parallel_init] (the evaluation harness parallelizes replicates
    while the studies parallelize configurations) runs its sub-work
    inline on the claiming domain, so the machine never runs more than
    one pool's worth of domains.

    Tasks must not share mutable state (the simulator's runs don't:
    each builds its own policies, traces and engine state). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], overridden by the
    [CKPT_DOMAINS] environment variable when set. *)

val in_parallel_region : unit -> bool
(** True while the calling domain is executing a [parallel_init] task;
    in that case any nested [parallel_init] runs inline. *)

val parallel_init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~domains n f] is [Array.init n f] evaluated by up
    to [domains] domains (default {!recommended_domains}).  Falls back
    to plain [Array.init] when [domains <= 1], [n <= 1] or when called
    from inside another [parallel_init] task.  If any task raises,
    workers stop claiming new work, and one of the raised exceptions
    is re-raised after all domains have joined — a failing sweep
    aborts promptly instead of executing the full remaining range.
    @raise Invalid_argument if [n < 0]. *)

val parallel_map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_init}, preserving order. *)
