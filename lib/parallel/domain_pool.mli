(** Multicore fan-out for the experiment sweeps.

    Every study in this repository is a sweep of independent
    evaluations (points of a figure, cells of a grid, candidate
    periods, Monte-Carlo replicates).  [parallel_init] fans such a
    sweep over OCaml 5 domains while staying deterministic: work items
    are claimed from an atomic counter, each output slot is written by
    exactly one task, and the caller reduces in index order, so
    results are bit-identical to the sequential run regardless of
    scheduling, domain count, or scheduler backend.

    Three backends, selected by the [CKPT_SCHED] environment variable:

    - [steal] (default): a process-wide persistent pool.  Worker
      domains are spawned once (their DLS solver caches stay warm
      across sweeps), park on a condition variable when idle, and pick
      up work through per-worker Chase–Lev deques plus a lock-free
      injection queue.  Nested calls *compose*: a task that itself
      calls [parallel_init] forks a sub-region whose items are stolen
      by whichever domains the outer sweep leaves idle, so a narrow or
      skewed outer sweep no longer strands the rest of the machine.
    - [flat]: the previous backend — domains spawned per call, nested
      calls run inline on the claiming domain.  Kept for A/B pinning.
    - [seq]: always inline, single-domain.  The reference for
      determinism tests.

    Tasks must not share mutable state (the simulator's runs don't:
    each builds its own policies, traces and engine state).

    With [CKPT_SCHED_TRACE] set, the steal backend records every
    worker's state intervals (run-task, steal attempts/successes,
    ticket injection, parking, join-helping) into the scheduler flight
    recorder ([Ckpt_telemetry.Flight_recorder]); [ckpt sched-report]
    turns the recording into a per-worker utilization breakdown, and a
    path-valued [CKPT_SCHED_TRACE] additionally exports a Chrome
    trace_event file at exit. *)

type sched = Seq | Flat | Steal

val scheduler : unit -> sched
(** The backend selected by [CKPT_SCHED] ([seq]/[flat]/[steal]),
    defaulting to [Steal].  Re-read on every call, so tests and
    benches can switch per region.  Malformed values warn once on
    stderr and fall back to [Steal]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], overridden by the
    [CKPT_DOMAINS] environment variable when set.  [CKPT_DOMAINS] is
    the total parallelism including the calling domain: the steal pool
    keeps [CKPT_DOMAINS - 1] persistent workers (growing, never
    shrinking, if later calls ask for more).  Malformed values ([0],
    [-3], [abc]) warn once per value on stderr and fall back to the
    hardware default. *)

val in_parallel_region : unit -> bool
(** True while the calling domain is executing a [parallel_init] task.
    Used by the evaluation harness to tell top-level tables (which own
    the process-global timers/progress) from nested ones; the [flat]
    backend additionally runs nested calls inline. *)

val parallel_init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~domains n f] is [Array.init n f] evaluated by up
    to [domains] participating domains (default {!recommended_domains};
    under [steal] this bounds the helper tickets forked for the
    region).  Falls back to plain [Array.init] when [domains <= 1],
    [n <= 1], under [CKPT_SCHED=seq], or (flat backend only) when
    called from inside another [parallel_init] task.  If any task
    raises, the region stops claiming new work and one of the raised
    exceptions is re-raised — with the failing task's original
    backtrace — after every claimed item has finished.
    @raise Invalid_argument if [n < 0]. *)

val parallel_map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_init}, preserving order. *)

val both : ?domains:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Fork/join pair: [both f g] evaluates [f ()] and [g ()] as one
    two-item region (so under [steal] an idle domain can run one side)
    and returns both results.  Exceptions propagate as in
    {!parallel_init}. *)

val pool_workers : unit -> int
(** Worker domains currently spawned by the persistent pool (0 before
    the first [steal] region; for telemetry and tests). *)
