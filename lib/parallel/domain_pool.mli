(** Multicore fan-out for the experiment sweeps.

    Every study in this repository is a sweep of independent
    evaluations (points of a figure, cells of a grid, candidate
    periods); on a multicore machine they parallelize trivially with
    OCaml 5 domains.  This module provides a deterministic
    [parallel_init]: work items are claimed from an atomic counter,
    each output slot is written by exactly one domain, and joining the
    domains publishes all writes, so results are identical to the
    sequential run regardless of scheduling.

    Tasks must not share mutable state (the simulator's runs don't:
    each builds its own policies, traces and engine state). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], overridden by the
    [CKPT_DOMAINS] environment variable when set. *)

val parallel_init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~domains n f] is [Array.init n f] evaluated by up
    to [domains] domains (default {!recommended_domains}).  Falls back
    to plain [Array.init] when [domains <= 1] or [n <= 1].  If any
    task raises, one of the raised exceptions is re-raised after all
    domains have joined.
    @raise Invalid_argument if [n < 0]. *)

val parallel_map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!parallel_init}, preserving order. *)
