(** Lock-free queues underneath the work-stealing scheduler.

    The main type is a Chase–Lev work-stealing deque (Chase & Lev,
    "Dynamic Circular Work-Stealing Deque", SPAA 2005): the owner
    pushes and pops at the bottom in LIFO order with no interlocked
    operation on the fast path, while any other domain steals from the
    top in FIFO order with a single compare-and-set.  FIFO stealing
    means thieves take the *oldest* region a worker forked, which is
    the one with the most unclaimed work left.

    {!Injector} is the companion unbounded lock-free FIFO
    (Michael–Scott queue) used to submit work from domains that do not
    own a deque (the main domain, or any externally spawned domain).

    Both structures only move pointers: the scheduler keeps values
    coarse (one region descriptor per fork), so contention on these
    queues is never the bottleneck. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only.  Grows the backing circular buffer as needed. *)

val pop : 'a t -> 'a option
(** Owner only.  LIFO: returns the most recently pushed element. *)

val steal : 'a t -> 'a option
(** Any domain.  FIFO: takes the oldest element, or [None] when the
    deque is (or races to) empty.  Lock-free: a failed internal
    compare-and-set means another thief succeeded, and the operation
    retries on a fresh view. *)

val size : 'a t -> int
(** Approximate occupancy (racy snapshot); for telemetry and tests. *)

module Injector : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
end
