(* Chase–Lev work-stealing deque.

   Indices [top, bottom) of a growable circular buffer hold the live
   elements.  The owner pushes/pops at [bottom]; thieves advance [top]
   with a CAS.  Both indices only ever increase, which rules out ABA
   on the CAS.  All index accesses go through [Atomic] (OCaml's
   atomics are sequentially consistent), and buffer cells are written
   before the atomic publication of [bottom], so a thief that observes
   an index also observes the cell it guards.

   Correctness of the delicate cases:

   - [pop] decrements [bottom] *before* reading [top].  A thief reads
     [top] before [bottom]; since [top] is monotonic, a thief that
     could race for the owner's element must have read [top] after the
     owner's decrement, hence reads the decremented [bottom] and backs
     off.  The one genuinely racy element (the last one) is resolved
     by both sides CASing [top].

   - [steal] validates its read of the cell with the CAS on [top]: if
     the cell was recycled by a grown or wrapped buffer, [top] has
     necessarily advanced and the CAS fails, discarding the stale
     value.

   - Growing copies [top, bottom) into a fresh buffer and publishes it
     with an atomic store; the old buffer is never mutated again, so
     in-flight thieves holding it still read valid cells for any index
     their CAS can validate. *)

module Buffer = struct
  type 'a t = { cells : 'a option array; mask : int }

  let create size = { cells = Array.make size None; mask = size - 1 }
  let size b = b.mask + 1
  let get b i = Array.unsafe_get b.cells (i land b.mask)
  let set b i v = Array.unsafe_set b.cells (i land b.mask) v

  let grow b ~top ~bottom =
    let b' = create (2 * size b) in
    for i = top to bottom - 1 do
      set b' i (get b i)
    done;
    b'
end

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buffer : 'a Buffer.t Atomic.t;
}

let initial_size = 16

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buffer = Atomic.make (Buffer.create initial_size);
  }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buffer in
  let buf =
    if b - t >= Buffer.size buf then begin
      let grown = Buffer.grow buf ~top:t ~bottom:b in
      Atomic.set q.buffer grown;
      grown
    end
    else buf
  in
  Buffer.set buf b (Some v);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty; restore the canonical empty state. *)
    Atomic.set q.bottom t;
    None
  end
  else if b = t then begin
    (* Last element: race thieves for it via [top]. *)
    let buf = Atomic.get q.buffer in
    let v = Buffer.get buf b in
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then begin
      Buffer.set buf b None;
      v
    end
    else None
  end
  else begin
    let buf = Atomic.get q.buffer in
    let v = Buffer.get buf b in
    Buffer.set buf b None;
    v
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buffer in
    let v = Buffer.get buf t in
    if Atomic.compare_and_set q.top t (t + 1) then v else steal q
  end

(* Michael–Scott two-lock-free FIFO queue: a singly linked list with a
   dummy head; [push] CASes onto the tail, [pop] CASes the head
   forward.  The [value] field of a dequeued node is cleared so the
   new dummy does not pin the element. *)
module Injector = struct
  type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }
  type 'a t = { head : 'a node Atomic.t; tail : 'a node Atomic.t }

  let create () =
    let dummy = { value = None; next = Atomic.make None } in
    { head = Atomic.make dummy; tail = Atomic.make dummy }

  let push q v =
    let node = { value = Some v; next = Atomic.make None } in
    let rec loop () =
      let tail = Atomic.get q.tail in
      match Atomic.get tail.next with
      | None ->
          if Atomic.compare_and_set tail.next None (Some node) then
            (* Swing the tail; losing this CAS is fine (someone helped). *)
            ignore (Atomic.compare_and_set q.tail tail node)
          else loop ()
      | Some next ->
          (* Help a stalled pusher move the tail, then retry. *)
          ignore (Atomic.compare_and_set q.tail tail next);
          loop ()
    in
    loop ()

  let rec pop q =
    let head = Atomic.get q.head in
    match Atomic.get head.next with
    | None -> None
    | Some next ->
        if Atomic.compare_and_set q.head head next then begin
          let v = next.value in
          next.value <- None;
          v
        end
        else pop q
end
