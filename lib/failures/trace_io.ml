let to_string traces =
  let buf = Buffer.create 4096 in
  let units = Trace_set.processors traces in
  Buffer.add_string buf
    (Printf.sprintf "# ckpt-traces v1 units=%d horizon=%.9g\n" units (Trace_set.horizon traces));
  for i = 0 to units - 1 do
    Array.iter
      (fun date -> Buffer.add_string buf (Printf.sprintf "%d %.9g\n" i date))
      (Trace_set.trace traces i).Trace.failure_times
  done;
  Buffer.contents buf

let save traces path =
  let oc = open_out path in
  output_string oc (to_string traces);
  close_out oc

let of_string text =
  let lines = String.split_on_char '\n' text in
  let header, body =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> failwith "Trace_io.of_string: empty input"
  in
  let units, horizon =
    try Scanf.sscanf header "# ckpt-traces v1 units=%d horizon=%f" (fun u h -> (u, h))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      failwith "Trace_io.of_string: bad header"
  in
  if units <= 0 then failwith "Trace_io.of_string: bad unit count";
  let per_unit = Array.make units [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.index_opt line ' ' with
        | None -> failwith (Printf.sprintf "Trace_io.of_string: bad record at line %d" (lineno + 2))
        | Some cut -> begin
            let unit_s = String.sub line 0 cut in
            let date_s = String.sub line (cut + 1) (String.length line - cut - 1) in
            match (int_of_string_opt unit_s, float_of_string_opt date_s) with
            | Some u, Some d when u >= 0 && u < units ->
                per_unit.(u) <- d :: per_unit.(u)
            | _ ->
                failwith
                  (Printf.sprintf "Trace_io.of_string: bad record at line %d" (lineno + 2))
          end
      end)
    body;
  Trace_set.of_traces
    (Array.map
       (fun dates -> Trace.of_times ~horizon (Array.of_list (List.rev dates)))
       per_unit)

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
