module Rng = Ckpt_prng.Rng
module Distribution = Ckpt_distributions.Distribution

type t = {
  traces : Trace.t array;  (* one per processor; may share under grouping *)
  horizon : float;
  merged : (float * int) array;  (* all (date, processor) sorted by date *)
}

let build_merged traces =
  let total = Array.fold_left (fun acc tr -> acc + Trace.count tr) 0 traces in
  let merged = Array.make total (0., 0) in
  let k = ref 0 in
  Array.iteri
    (fun proc tr ->
      Array.iter
        (fun date ->
          merged.(!k) <- (date, proc);
          incr k)
        tr.Trace.failure_times)
    traces;
  Array.sort (fun (a, _) (b, _) -> compare a b) merged;
  merged

let of_traces traces =
  let n = Array.length traces in
  if n = 0 then invalid_arg "Trace_set.of_traces: empty";
  let horizon = traces.(0).Trace.horizon in
  Array.iter
    (fun tr ->
      if tr.Trace.horizon <> horizon then invalid_arg "Trace_set.of_traces: mismatched horizons")
    traces;
  { traces; horizon; merged = build_merged traces }

(* Key layout for derived streams: replicate in the high bits,
   processor (or node) in the low bits, so streams never collide
   across replicates of the same experiment. *)
let stream_key ~replicate ~unit_index = (replicate * 0x1000000) + unit_index

let generate ~seed ~replicate dist ~processors ~horizon =
  if processors <= 0 then invalid_arg "Trace_set.generate: processors must be positive";
  let root = Rng.create ~seed in
  let traces =
    Array.init processors (fun i ->
        Trace.generate (Rng.derive root (stream_key ~replicate ~unit_index:i)) dist ~horizon)
  in
  of_traces traces

let processors t = Array.length t.traces
let horizon t = t.horizon

let trace t i =
  if i < 0 || i >= Array.length t.traces then invalid_arg "Trace_set.trace: index out of range";
  t.traces.(i)

let prefix t p =
  if p <= 0 || p > Array.length t.traces then invalid_arg "Trace_set.prefix: bad processor count";
  if p = Array.length t.traces then t
  else begin
    let traces = Array.sub t.traces 0 p in
    let merged = Array.of_seq (Seq.filter (fun (_, proc) -> proc < p) (Array.to_seq t.merged)) in
    { traces; horizon = t.horizon; merged }
  end

let total_failures t = Array.fold_left (fun acc tr -> acc + Trace.count tr) 0 t.traces

let events t = t.merged

let next_event_index t ~after =
  let a = t.merged in
  let n = Array.length a in
  let date i = fst a.(i) in
  if n = 0 || date (n - 1) < after then n
  else if date 0 >= after then 0
  else begin
    (* Invariant: date lo < after <= date hi. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if date mid >= after then hi := mid else lo := mid
    done;
    !hi
  end

let next_platform_failure t ~after =
  let i = next_event_index t ~after in
  if i >= Array.length t.merged then None else Some t.merged.(i)
