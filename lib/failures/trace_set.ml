module Rng = Ckpt_prng.Rng
module Distribution = Ckpt_distributions.Distribution

type t = {
  traces : Trace.t array;  (* one per processor; may share under grouping *)
  horizon : float;
  merged : (float * int) array;  (* all (date, processor) sorted by date *)
}

(* Each per-processor trace is already sorted, so the global event
   stream is a k-way merge, not an O(total log total) sort of the
   concatenation.  A binary min-heap over the processors' next
   unconsumed failures yields O(total log p) with small constants (two
   flat arrays, no tuple allocation per comparison).  Events are
   ordered by (date, proc) — [Float.compare] then [Int.compare] — so
   equal-date failures across processors have a specified, stable
   order ([prefix]'s order-preserving filter keeps it consistent for
   any sub-platform). *)
let build_merged traces =
  let k = Array.length traces in
  let total = Array.fold_left (fun acc tr -> acc + Trace.count tr) 0 traces in
  let merged = Array.make total (0., 0) in
  if total > 0 then begin
    let heap_date = Array.make k 0. in
    let heap_proc = Array.make k 0 in
    (* next.(proc): index of the processor's next unconsumed failure *)
    let next = Array.make k 0 in
    let size = ref 0 in
    let less i j =
      let cmp = Float.compare heap_date.(i) heap_date.(j) in
      cmp < 0 || (cmp = 0 && Int.compare heap_proc.(i) heap_proc.(j) < 0)
    in
    let swap i j =
      let d = heap_date.(i) and p = heap_proc.(i) in
      heap_date.(i) <- heap_date.(j);
      heap_proc.(i) <- heap_proc.(j);
      heap_date.(j) <- d;
      heap_proc.(j) <- p
    in
    let rec sift_up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if less i parent then begin
          swap i parent;
          sift_up parent
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = ref i in
      if l < !size && less l !m then m := l;
      if r < !size && less r !m then m := r;
      if !m <> i then begin
        swap i !m;
        sift_down !m
      end
    in
    Array.iteri
      (fun proc tr ->
        if Trace.count tr > 0 then begin
          heap_date.(!size) <- tr.Trace.failure_times.(0);
          heap_proc.(!size) <- proc;
          incr size;
          sift_up (!size - 1);
          next.(proc) <- 1
        end)
      traces;
    let out = ref 0 in
    while !size > 0 do
      let proc = heap_proc.(0) in
      merged.(!out) <- (heap_date.(0), proc);
      incr out;
      let tr = traces.(proc) in
      if next.(proc) < Trace.count tr then begin
        heap_date.(0) <- tr.Trace.failure_times.(next.(proc));
        next.(proc) <- next.(proc) + 1;
        sift_down 0
      end
      else begin
        decr size;
        if !size > 0 then begin
          heap_date.(0) <- heap_date.(!size);
          heap_proc.(0) <- heap_proc.(!size);
          sift_down 0
        end
      end
    done
  end;
  merged

let of_traces traces =
  let n = Array.length traces in
  if n = 0 then invalid_arg "Trace_set.of_traces: empty";
  let horizon = traces.(0).Trace.horizon in
  Array.iter
    (fun tr ->
      if tr.Trace.horizon <> horizon then invalid_arg "Trace_set.of_traces: mismatched horizons")
    traces;
  { traces; horizon; merged = build_merged traces }

(* Key layout for derived streams: replicate in the high bits,
   processor (or node) in the low bits, so streams never collide
   across replicates of the same experiment. *)
let stream_key ~replicate ~unit_index = (replicate * 0x1000000) + unit_index

let generate ~seed ~replicate dist ~processors ~horizon =
  if processors <= 0 then invalid_arg "Trace_set.generate: processors must be positive";
  let root = Rng.create ~seed in
  let traces =
    Array.init processors (fun i ->
        Trace.generate (Rng.derive root (stream_key ~replicate ~unit_index:i)) dist ~horizon)
  in
  of_traces traces

let processors t = Array.length t.traces
let horizon t = t.horizon

let trace t i =
  if i < 0 || i >= Array.length t.traces then invalid_arg "Trace_set.trace: index out of range";
  t.traces.(i)

let prefix t p =
  if p <= 0 || p > Array.length t.traces then invalid_arg "Trace_set.prefix: bad processor count";
  if p = Array.length t.traces then t
  else begin
    let traces = Array.sub t.traces 0 p in
    let merged = Array.of_seq (Seq.filter (fun (_, proc) -> proc < p) (Array.to_seq t.merged)) in
    { traces; horizon = t.horizon; merged }
  end

let total_failures t = Array.fold_left (fun acc tr -> acc + Trace.count tr) 0 t.traces

let events t = t.merged

let next_event_index t ~after =
  let a = t.merged in
  let n = Array.length a in
  let date i = fst a.(i) in
  if n = 0 || date (n - 1) < after then n
  else if date 0 >= after then 0
  else begin
    (* Invariant: date lo < after <= date hi. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if date mid >= after then hi := mid else lo := mid
    done;
    !hi
  end

let next_platform_failure t ~after =
  let i = next_event_index t ~after in
  if i >= Array.length t.merged then None else Some t.merged.(i)
