(** Persisting trace sets.

    The paper publishes its failure traces alongside the simulator;
    this module does the same for ours: a plain-text format (stable,
    diff-able, readable by any tool) round-tripping a {!Trace_set}.

    {v
    # ckpt-traces v1 units=<n> horizon=<seconds>
    <unit-index> <failure-date-seconds>
    ...
    v}

    Units with no failures simply have no records; the header carries
    the unit count. *)

val save : Trace_set.t -> string -> unit
(** [save traces path] writes the textual format. *)

val to_string : Trace_set.t -> string

val load : string -> Trace_set.t
(** [load path] parses a file written by {!save}.
    @raise Failure on malformed input. *)

val of_string : string -> Trace_set.t
