module Summary = Ckpt_numerics.Summary

type t = {
  processors : int;
  horizon : float;
  total_failures : int;
  empirical_unit_mtbf : float;
  empirical_platform_mtbf : float;
  interarrival_mean : float;
  interarrival_cv : float;
  max_failures_on_one_unit : int;
  idle_units : int;
}

let interarrivals traces =
  let out = ref [] in
  for i = Trace_set.processors traces - 1 downto 0 do
    let times = (Trace_set.trace traces i).Trace.failure_times in
    Array.iteri
      (fun j t ->
        let gap = if j = 0 then t else t -. times.(j - 1) in
        out := gap :: !out)
      times
  done;
  Array.of_list !out

let measure traces =
  let processors = Trace_set.processors traces in
  let horizon = Trace_set.horizon traces in
  let total_failures = Trace_set.total_failures traces in
  let gaps = interarrivals traces in
  let gap_summary = Summary.of_array gaps in
  let max_failures = ref 0 and idle = ref 0 in
  for i = 0 to processors - 1 do
    let n = Trace.count (Trace_set.trace traces i) in
    if n = 0 then incr idle;
    if n > !max_failures then max_failures := n
  done;
  let mean = Summary.mean gap_summary in
  {
    processors;
    horizon;
    total_failures;
    empirical_unit_mtbf =
      (if total_failures = 0 then infinity
       else horizon *. float_of_int processors /. float_of_int total_failures);
    empirical_platform_mtbf =
      (if total_failures = 0 then infinity else horizon /. float_of_int total_failures);
    interarrival_mean = mean;
    interarrival_cv =
      (if total_failures < 2 || mean <= 0. then nan else Summary.std gap_summary /. mean);
    max_failures_on_one_unit = !max_failures;
    idle_units = !idle;
  }

let availability traces ~downtime =
  if downtime < 0. then invalid_arg "Trace_stats.availability: negative downtime";
  let s = measure traces in
  let repair = float_of_int s.total_failures *. downtime in
  Float.max 0. (1. -. (repair /. (float_of_int s.processors *. s.horizon)))

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%d units over %g s: %d failures@,\
     unit MTBF %.4g s, platform MTBF %.4g s@,\
     inter-arrival mean %.4g s, CV %.3f@,\
     busiest unit: %d failures; %d units failure-free@]"
    t.processors t.horizon t.total_failures t.empirical_unit_mtbf t.empirical_platform_mtbf
    t.interarrival_mean t.interarrival_cv t.max_failures_on_one_unit t.idle_units
