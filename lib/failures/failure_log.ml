module Empirical = Ckpt_distributions.Empirical

type t = { intervals : float array; nodes : int }

let of_intervals ?nodes intervals =
  if Array.length intervals = 0 then invalid_arg "Failure_log.of_intervals: empty";
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Failure_log.of_intervals: non-positive duration")
    intervals;
  let nodes = match nodes with Some n -> n | None -> 1 in
  { intervals; nodes }

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let node_ids = Hashtbl.create 64 in
  let intervals = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ node; duration ] -> begin
            match float_of_string_opt duration with
            | Some d when d > 0. ->
                Hashtbl.replace node_ids node ();
                intervals := d :: !intervals
            | Some _ | None ->
                failwith (Printf.sprintf "Failure_log.parse_string: bad duration at line %d" (lineno + 1))
          end
        | _ -> failwith (Printf.sprintf "Failure_log.parse_string: bad record at line %d" (lineno + 1))
      end)
    lines;
  match !intervals with
  | [] -> failwith "Failure_log.parse_string: no records"
  | l -> { intervals = Array.of_list (List.rev l); nodes = Hashtbl.length node_ids }

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

let save t ~node_of_interval path =
  let oc = open_out path in
  Printf.fprintf oc "# availability log: %d intervals over %d nodes\n" (Array.length t.intervals)
    t.nodes;
  Array.iteri (fun i d -> Printf.fprintf oc "n%04d %.3f\n" (node_of_interval i) d) t.intervals;
  close_out oc

let to_distribution t = Empirical.of_intervals t.intervals

let mean_interval t =
  Array.fold_left ( +. ) 0. t.intervals /. float_of_int (Array.length t.intervals)

let count t = Array.length t.intervals
