module Rng = Ckpt_prng.Rng
module Distribution = Ckpt_distributions.Distribution

type t = { failure_times : float array; horizon : float }

let generate rng dist ~horizon =
  if horizon <= 0. then invalid_arg "Trace.generate: horizon must be positive";
  let acc = ref [] in
  let time = ref 0. in
  let continue = ref true in
  while !continue do
    let x = dist.Distribution.sample rng in
    (* A zero inter-arrival would stall the renewal process; clamp to
       a strictly positive epsilon (possible with empirical samples). *)
    let x = Float.max x 1e-9 in
    time := !time +. x;
    if !time >= horizon then continue := false else acc := !time :: !acc
  done;
  { failure_times = Array.of_list (List.rev !acc); horizon }

let of_times ~horizon times =
  if horizon <= 0. then invalid_arg "Trace.of_times: horizon must be positive";
  let times = Array.copy times in
  let n = Array.length times in
  for i = 0 to n - 1 do
    if times.(i) < 0. || times.(i) >= horizon then
      invalid_arg "Trace.of_times: date outside [0, horizon)";
    if i > 0 && times.(i) <= times.(i - 1) then
      invalid_arg "Trace.of_times: dates must be strictly increasing"
  done;
  { failure_times = times; horizon }

let empty ~horizon = of_times ~horizon [||]

let count t = Array.length t.failure_times

(* Index of the first date >= time, or length if none. *)
let first_index_at_or_after t time =
  let a = t.failure_times in
  let n = Array.length a in
  if n = 0 || a.(n - 1) < time then n
  else if a.(0) >= time then 0
  else begin
    (* Invariant: a.(lo) < time <= a.(hi). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) >= time then hi := mid else lo := mid
    done;
    !hi
  end

let next_failure_at_or_after t time =
  let i = first_index_at_or_after t time in
  if i >= Array.length t.failure_times then None else Some t.failure_times.(i)

let last_failure_before t time =
  let i = first_index_at_or_after t time in
  if i = 0 then None else Some t.failure_times.(i - 1)

let count_in_window t ~lo ~hi =
  if hi <= lo then 0
  else first_index_at_or_after t hi - first_index_at_or_after t lo
