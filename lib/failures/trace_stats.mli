(** Descriptive statistics of failure traces — the other direction of
    Section 4.3: instead of generating traces from a distribution,
    measure a trace set the way one measures a production log, so
    generated platforms can be validated against their specification
    (and real logs compared with synthetic ones). *)

type t = {
  processors : int;
  horizon : float;
  total_failures : int;
  empirical_unit_mtbf : float;
      (** total up-time divided by failures: the per-unit MTBF a log
          analysis would report. *)
  empirical_platform_mtbf : float;  (** horizon / total failures. *)
  interarrival_mean : float;  (** mean of observed inter-arrival gaps. *)
  interarrival_cv : float;
      (** coefficient of variation of the gaps: 1 for a Poisson
          process, > 1 for the bursty (Weibull k < 1) processes real
          machines exhibit. *)
  max_failures_on_one_unit : int;
  idle_units : int;  (** units that never failed within the horizon. *)
}

val measure : Trace_set.t -> t

val interarrivals : Trace_set.t -> float array
(** All per-unit inter-arrival gaps (first gap measured from the
    horizon start), concatenated; feed to
    {!Ckpt_distributions.Fit} to recover the generating family.

    Caveat: the lifetime in progress at the horizon's end is censored
    and dropped, so when the MTBF is comparable to (or exceeds) the
    horizon the observed gaps are biased short — exactly as in real
    logs of highly reliable nodes. *)

val availability : Trace_set.t -> downtime:float -> float
(** Fraction of unit-time the platform is up when every failure costs
    [downtime] seconds of repair: [1 - failures * D / (p * horizon)]
    (floored at 0). *)

val pp : Format.formatter -> t -> unit
