module Rng = Ckpt_prng.Rng
module Distribution = Ckpt_distributions.Distribution
module Weibull = Ckpt_distributions.Weibull
module Lognormal = Ckpt_distributions.Lognormal

type parameters = {
  nodes : int;
  intervals_per_node : int;
  weibull_shape : float;
  mean_interval : float;
  short_uptime_fraction : float;
  short_uptime_scale : float;
}

let node_group_size = 4

let cluster19_parameters =
  {
    nodes = 1024;
    intervals_per_node = 24;
    weibull_shape = 0.45;
    mean_interval = 1.47e7;
    short_uptime_fraction = 0.12;
    short_uptime_scale = 7200.;
  }

let cluster18_parameters =
  {
    nodes = 1024;
    intervals_per_node = 20;
    weibull_shape = 0.38;
    mean_interval = 1.2e7;
    short_uptime_fraction = 0.18;
    short_uptime_scale = 3600.;
  }

let generate ?(seed = 0x1A91L) p =
  if p.nodes <= 0 || p.intervals_per_node <= 0 then
    invalid_arg "Lanl_synth.generate: node/interval counts must be positive";
  if p.short_uptime_fraction < 0. || p.short_uptime_fraction >= 1. then
    invalid_arg "Lanl_synth.generate: short_uptime_fraction outside [0, 1)";
  (* Pick the bulk Weibull mean so the mixture mean matches. *)
  let short_sigma = 1.0 in
  let short_mean = p.short_uptime_scale *. exp (0.5 *. short_sigma *. short_sigma) in
  let bulk_mean =
    (p.mean_interval -. (p.short_uptime_fraction *. short_mean))
    /. (1. -. p.short_uptime_fraction)
  in
  if bulk_mean <= 0. then invalid_arg "Lanl_synth.generate: inconsistent mean parameters";
  let bulk = Weibull.of_mtbf ~mtbf:bulk_mean ~shape:p.weibull_shape in
  let short_mode = Lognormal.create ~mu:(log p.short_uptime_scale) ~sigma:short_sigma in
  let mixture =
    Ckpt_distributions.Mixture.create
      [ (1. -. p.short_uptime_fraction, bulk); (p.short_uptime_fraction, short_mode) ]
  in
  let rng = Rng.create ~seed in
  let total = p.nodes * p.intervals_per_node in
  let intervals =
    Array.init total (fun i ->
        let node_rng = Rng.derive rng (i / p.intervals_per_node) in
        (* Re-derive a per-sample stream so interval j of node n is
           stable regardless of how many samples precede it. *)
        let sample_rng = Rng.derive node_rng (i mod p.intervals_per_node) in
        Float.max (mixture.Distribution.sample sample_rng) 1.)
  in
  Failure_log.of_intervals ~nodes:p.nodes intervals
