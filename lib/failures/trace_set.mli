(** A set of per-processor failure traces for one simulated scenario.

    Section 4.3's protocol: generate traces for the largest processor
    count once; an experiment with [p] processors uses the first [p]
    traces, so results remain coherent when varying [p].  Each
    processor's stream is derived deterministically from
    [(seed, replicate, processor)], so any sub-platform of any
    replicate is reproducible in isolation. *)

type t

val generate :
  seed:int64 ->
  replicate:int ->
  Ckpt_distributions.Distribution.t ->
  processors:int ->
  horizon:float ->
  t
(** [generate ~seed ~replicate dist ~processors ~horizon] samples
    [processors] independent renewal traces.  "Processor" here is any
    independent failure source — when failures strike whole
    [k]-processor nodes (the LANL logs of Section 4.3), generate one
    trace per node. *)

val of_traces : Trace.t array -> t
(** @raise Invalid_argument on an empty array or mismatched horizons. *)

val processors : t -> int
val horizon : t -> float
val trace : t -> int -> Trace.t
(** [trace t i] is source [i]'s trace. *)

val prefix : t -> int -> t
(** [prefix t p] restricts to the first [p] processors.
    @raise Invalid_argument if [p] exceeds {!processors}. *)

val total_failures : t -> int
(** Sum of per-processor failure counts (group traces counted once per
    processor sharing them). *)

val next_platform_failure : t -> after:float -> (float * int) option
(** [(date, processor)] of the earliest failure at date [>= after]
    across all processors. *)

val events : t -> (float * int) array
(** All failures of all processors merged into one array of
    [(date, processor)] pairs sorted by [(date, processor)] — a
    heap-based k-way merge of the per-processor traces, with the
    processor index breaking date ties so the order is fully
    specified.  Built once at construction so platform-level queries
    are a binary search.  The returned array is shared: do not mutate
    it. *)

val next_event_index : t -> after:float -> int
(** Index into {!events} of the first event with date [>= after]
    ([length events] when there is none). *)
