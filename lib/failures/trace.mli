(** A failure trace: the failure dates of one processor over a fixed
    time horizon (Section 4.3).

    Traces are renewal sequences: [t_n = t_{n-1} + X_n] with iid
    inter-arrival times, generated up to the horizon.  The simulator
    interprets a date falling inside the processor's own downtime as
    absorbed (failures cannot strike during a downtime). *)

type t = private { failure_times : float array; horizon : float }
(** [failure_times] is strictly increasing, within [\[0, horizon)]. *)

val generate :
  Ckpt_prng.Rng.t -> Ckpt_distributions.Distribution.t -> horizon:float -> t
(** [generate rng dist ~horizon] samples a renewal trace.
    @raise Invalid_argument if [horizon <= 0]. *)

val of_times : horizon:float -> float array -> t
(** Build a trace from explicit dates (tests, log replay).  The array
    is copied and must be sorted, strictly increasing, within range.
    @raise Invalid_argument otherwise. *)

val empty : horizon:float -> t

val count : t -> int

val next_failure_at_or_after : t -> float -> float option
(** [next_failure_at_or_after t time] is the earliest failure date
    [>= time], if any (binary search). *)

val last_failure_before : t -> float -> float option
(** The latest failure date [< time], if any. *)

val count_in_window : t -> lo:float -> hi:float -> int
(** Number of failure dates in [\[lo, hi)]. *)
