(** Availability-interval failure logs (Section 4.3, "Log-based failure
    distributions").

    A log records, per node, the durations the node stayed up between
    consecutive failures.  The on-disk format accepted here is one
    record per line:

    {v
    <node-id> <availability-duration-seconds>
    v}

    with ['#']-prefixed comment lines ignored.  The LANL logs used by
    the paper (Failure Trace Archive clusters 18 and 19) are in this
    spirit; our synthetic substitute ({!Lanl_synth}) writes the same
    format. *)

type t = {
  intervals : float array;  (** all availability durations, seconds. *)
  nodes : int;  (** number of distinct nodes observed. *)
}

val of_intervals : ?nodes:int -> float array -> t
(** @raise Invalid_argument on empty or non-positive durations. *)

val parse_string : string -> t
(** Parse the textual format above.
    @raise Failure on malformed records. *)

val load : string -> t
(** [load path] reads and parses a log file. *)

val save : t -> node_of_interval:(int -> int) -> string -> unit
(** [save t ~node_of_interval path] writes the textual format;
    [node_of_interval i] names the node of the [i]-th interval. *)

val to_distribution : t -> Ckpt_distributions.Distribution.t
(** The empirical distribution of the availability durations — exactly
    the estimator of Section 4.3. *)

val mean_interval : t -> float
val count : t -> int
