(** Rejuvenation models and the platform-MTBF analysis of Section 3.1
    (Figure 1).

    After a failure, either {e all} processors are rejuvenated together
    (rebooted; every lifetime restarts), or only the failed one is.
    With Weibull shape [k < 1] (as in production logs), rejuvenating
    everything destroys the accumulated "survivorship" of healthy
    processors and lowers the platform MTBF; the paper therefore adopts
    failed-only rejuvenation. *)

type policy = Rejuvenate_all | Rejuvenate_failed_only

val platform_mtbf :
  policy ->
  Ckpt_distributions.Distribution.t ->
  processors:int ->
  downtime:float ->
  float
(** [platform_mtbf policy dist ~processors ~downtime] is the mean time
    between platform failures (a failure of any processor):
    - [Rejuvenate_all]: [D + E(min of p iid lifetimes)] — for Weibull
      this is [D + mu / p^(1/k)];
    - [Rejuvenate_failed_only]: [D + mu / p], the paper's expression
      (each processor independently fails once per [mu + D ~= mu]).
    @raise Invalid_argument if [processors <= 0]. *)

val weibull_platform_mtbf_rejuvenate_all :
  mtbf:float -> shape:float -> processors:int -> downtime:float -> float
(** Closed form [D + mu / p^(1/k)] used for Figure 1, exposed to test
    the generic [min_of_iid] path against it. *)

val figure1_series :
  mtbf:float ->
  shape:float ->
  downtime:float ->
  processor_exponents:int list ->
  (int * float * float) list
(** For each [e] in [processor_exponents], the triple
    [(2^e, mtbf_with_rejuvenation, mtbf_without)] — the two curves of
    Figure 1 (paper: shape 0.70, processor MTBF 125 y, D = 60 s,
    p = 2^4 .. 2^22). *)

val simulated_platform_mtbf :
  policy ->
  Ckpt_distributions.Distribution.t ->
  processors:int ->
  downtime:float ->
  seed:int64 ->
  samples:int ->
  float
(** Monte-Carlo estimate of the same quantity, for validating the
    closed forms: repeatedly draw the time to the first platform
    failure from a fresh (rejuvenate-all) or stationary-aged
    (failed-only) platform. *)
