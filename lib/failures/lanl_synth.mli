(** Synthetic stand-in for the LANL production failure logs.

    The paper's Section 6 uses the two largest preprocessed logs of the
    Failure Trace Archive (LANL clusters 18 and 19; clusters 7 and 8 in
    Schroeder-Gibson DSN'06): >1000 four-processor nodes each, with
    availability intervals whose distribution is far from Exponential
    (Weibull fits with shape 0.33-0.49 plus an excess of very short
    uptimes from repeated reboots).  The raw logs are not
    redistributable, so this module {e synthesizes} logs with the same
    published statistical fingerprint; see DESIGN.md §3 for the
    substitution argument.  Calibration: at 45,208 processors (11,302
    nodes) the paper reports a platform MTBF of 1,297 s, i.e. a mean
    node availability interval around 1.47e7 s. *)

type parameters = {
  nodes : int;  (** distinct nodes contributing intervals *)
  intervals_per_node : int;
  weibull_shape : float;  (** bulk of the distribution *)
  mean_interval : float;  (** overall mean availability, seconds *)
  short_uptime_fraction : float;  (** mass of the reboot-storm mode *)
  short_uptime_scale : float;  (** median of the short mode, seconds *)
}

val cluster18_parameters : parameters
val cluster19_parameters : parameters

val generate : ?seed:int64 -> parameters -> Failure_log.t
(** Sample a log; the same seed reproduces the same log. *)

val node_group_size : int
(** 4 — the LANL clusters are built from 4-processor nodes, and the
    paper's simulations fail whole nodes at once. *)
