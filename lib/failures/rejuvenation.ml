module Rng = Ckpt_prng.Rng
module Distribution = Ckpt_distributions.Distribution
module Weibull = Ckpt_distributions.Weibull
module Special = Ckpt_numerics.Special

type policy = Rejuvenate_all | Rejuvenate_failed_only

let platform_mtbf policy dist ~processors ~downtime =
  if processors <= 0 then invalid_arg "Rejuvenation.platform_mtbf: processors must be positive";
  match policy with
  | Rejuvenate_all ->
      let dmin = Distribution.min_of_iid dist processors in
      downtime +. dmin.Distribution.mean
  | Rejuvenate_failed_only -> downtime +. (dist.Distribution.mean /. float_of_int processors)

let weibull_platform_mtbf_rejuvenate_all ~mtbf ~shape ~processors ~downtime =
  let scale = Weibull.scale_for_mtbf ~mtbf ~shape in
  let platform_scale = Weibull.platform_scale ~scale ~shape ~processors in
  downtime +. (platform_scale *. Special.gamma (1. +. (1. /. shape)))

let figure1_series ~mtbf ~shape ~downtime ~processor_exponents =
  List.map
    (fun e ->
      let p = 1 lsl e in
      let with_rejuvenation =
        weibull_platform_mtbf_rejuvenate_all ~mtbf ~shape ~processors:p ~downtime
      in
      let without = downtime +. (mtbf /. float_of_int p) in
      (p, with_rejuvenation, without))
    processor_exponents

let simulated_platform_mtbf policy dist ~processors ~downtime ~seed ~samples =
  if samples <= 0 then invalid_arg "Rejuvenation.simulated_platform_mtbf: samples must be positive";
  let rng = Rng.create ~seed in
  match policy with
  | Rejuvenate_all ->
      (* Time to first failure of a fresh platform, averaged. *)
      let dmin = Distribution.min_of_iid dist processors in
      let acc = ref 0. in
      for _ = 1 to samples do
        acc := !acc +. dmin.Distribution.sample rng
      done;
      downtime +. (!acc /. float_of_int samples)
  | Rejuvenate_failed_only ->
      (* Stationary regime: run p independent renewal processes long
         enough to observe [samples] platform failures in total and
         divide elapsed time by the count. *)
      let horizon = dist.Distribution.mean *. float_of_int samples /. float_of_int processors in
      let total = ref 0 in
      for i = 0 to processors - 1 do
        let tr = Trace.generate (Rng.derive rng i) dist ~horizon in
        total := !total + Trace.count tr
      done;
      if !total = 0 then infinity else downtime +. (horizon /. float_of_int !total)
