type t = {
  gen : Xoshiro256.t;
  seed : int64;
  (* Cached second deviate of the Marsaglia polar method. *)
  mutable spare_normal : float option;
}

let create ~seed = { gen = Xoshiro256.create seed; seed; spare_normal = None }

let derive t key =
  (* Mix the root seed with the key through two rounds of the SplitMix
     finalizer so that nearby keys map to distant seeds. *)
  let k = Int64.of_int key in
  let mixed = Splitmix64.mix (Int64.add (Splitmix64.mix t.seed) (Int64.mul k 0x9E3779B97F4A7C15L)) in
  { gen = Xoshiro256.create mixed; seed = mixed; spare_normal = None }

let uniform t = Xoshiro256.float t.gen
let uniform_pos t = Xoshiro256.float_pos t.gen

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (uniform_pos t) /. rate

let rec normal t =
  match t.spare_normal with
  | Some z ->
      t.spare_normal <- None;
      z
  | None ->
      let u = (2. *. uniform t) -. 1. in
      let v = (2. *. uniform t) -. 1. in
      let s = (u *. u) +. (v *. v) in
      if s >= 1. || s = 0. then normal t
      else begin
        let m = sqrt (-2. *. log s /. s) in
        t.spare_normal <- Some (v *. m);
        u *. m
      end

let int t bound = Xoshiro256.int t.gen bound
let bool t = Xoshiro256.bool t.gen

let split t =
  let child = Xoshiro256.split t.gen in
  { gen = child; seed = t.seed; spare_normal = None }

let seed_of t = t.seed
