(** xoshiro256++ pseudo-random number generator.

    Blackman and Vigna's xoshiro256++ 1.0: 256 bits of state, period
    [2^256 - 1], excellent statistical quality, and a [jump] function
    that advances the stream by [2^128] steps.  Jumping gives us up to
    [2^128] non-overlapping substreams from a single seed, which is how
    every processor of a simulated platform receives an independent,
    reproducible failure stream. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator whose four state words are drawn
    from a {!Splitmix64} stream seeded with [seed] (the initialization
    recommended by the xoshiro authors).  The state is never all-zero. *)

val copy : t -> t
(** [copy t] is an independent clone of the current state. *)

val next : t -> int64
(** [next t] returns the next 64 pseudo-random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by [2^128] calls to {!next} in O(1) work per
    state bit.  Streams separated by a jump never overlap in practice. *)

val split : t -> t
(** [split t] returns a clone of [t] and then jumps [t] forward, so the
    returned generator and the argument produce disjoint substreams. *)

val float : t -> float
(** [float t] is uniform on [\[0, 1)], using the top 53 bits. *)

val float_pos : t -> float
(** [float_pos t] is uniform on [(0, 1)]: never returns [0.], so it is
    safe to feed to [log] when sampling by inverse transform. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)
