(** High-level random stream used throughout the simulator.

    A thin facade over {!Xoshiro256} adding the derived deviates the
    simulation needs (exponential, standard normal) and named substream
    derivation, so that, e.g., processor [i] of replicate [r] of an
    experiment always sees the same failure sequence regardless of how
    many other streams were consumed before it. *)

type t

val create : seed:int64 -> t
(** [create ~seed] is the root stream for [seed]. *)

val derive : t -> int -> t
(** [derive t key] is an independent stream deterministically derived
    from [t]'s seed and [key].  Deriving never mutates [t]; the same
    [(seed, key)] pair always yields the same stream.  Keys may be any
    integers (trace index, processor index, ...). *)

val uniform : t -> float
(** Uniform on [\[0, 1)]. *)

val uniform_pos : t -> float
(** Uniform on [(0, 1)]; safe under [log]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] samples Exp(rate) by inverse transform.
    @raise Invalid_argument if [rate <= 0]. *)

val normal : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. *)

val bool : t -> bool

val split : t -> t
(** [split t] returns a new stream and advances [t] past it (xoshiro
    jump), guaranteeing the two never overlap. *)

val seed_of : t -> int64
(** The root seed this stream (or its ancestor) was created from; used
    for reporting and reproducibility metadata. *)
