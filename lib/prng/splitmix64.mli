(** SplitMix64 pseudo-random number generator.

    A small, fast, 64-bit generator with a 64-bit state, due to Steele,
    Lea and Flood ("Fast splittable pseudorandom number generators",
    OOPSLA 2014).  Its main use here is seeding: it turns an arbitrary
    64-bit seed into a well-mixed stream suitable for initializing the
    state of larger generators such as {!Xoshiro256}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialized with [seed].
    Distinct seeds yield (with overwhelming probability) uncorrelated
    streams. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] returns a uniformly distributed integer in
    [\[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer: a bijective mixing
    of [z].  Useful for hashing seeds and deriving child seeds. *)
