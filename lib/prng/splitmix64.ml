type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound must be positive";
  (* Rejection-free for our purposes: the modulo bias is negligible for
     bounds far below 2^62, which is always the case here.  Keep 62
     bits: Int64.to_int of a 63-bit value can wrap negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound
