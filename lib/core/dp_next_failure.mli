(** DPNextFailure (Algorithm 2 and Section 3.3).

    Maximizes the expected amount of work successfully checkpointed
    before the next platform failure,

    [E(W) = sum_i w_i prod_{j<=i} Psuc(w_j + C | t_j)]  (Proposition 3),

    by dynamic programming over (remaining quanta, chunks done).  The
    parallel extension evaluates [Psuc] over an {!Age_summary} of the
    processor ages, and two speedups from the paper are applied:

    - the planned work is truncated to
      [min (remaining, truncation_factor * platform MTBF)]
      (default factor 2), and
    - when truncation bites, only the first half of the plan is meant
      to be executed before replanning ([valid_work]).

    Note: Algorithm 2's pseudo-code keeps the candidate minimizing
    [cur] — a typo, since NextFailure is a maximization; we maximize. *)

type plan = {
  chunks : float list;
      (** chunk sizes (work seconds, excluding checkpoint), in order;
          they sum to the planned work. *)
  expected_work : float;  (** optimal [E(W)] for the planned work. *)
  quantum : float;  (** the time quantum [u] used. *)
  truncated : bool;
  valid_work : float;
      (** how much leading work of [chunks] should be executed before
          recomputing a plan. *)
}

val solve :
  ?max_states:int ->
  ?truncation_factor:float ->
  ?prune:bool ->
  ?hazard_grid_points:int ->
  context:Dp_context.t ->
  ages:Age_summary.t ->
  work:float ->
  unit ->
  plan
(** [solve ~context ~ages ~work ()] plans for [work] seconds of
    remaining (parallel) work.  [context.dist] is the {e per-processor}
    distribution; the platform MTBF used for truncation is
    [dist.mean / processors].  [max_states] bounds the DP dimension
    (the quantum adapts: [u = planned work / max_states]); default 150.
    [truncation_factor <= 0] disables truncation.

    [prune] (default true) enables a branch-and-bound early exit in
    the per-cell chunk scan: after each candidate, the entire
    remaining tail is bounded by one survival-probability upper bound
    times a prefix maximum of the next DP row in "value minus chunk"
    form, and the scan stops once the bound cannot strictly beat the
    incumbent.  (The tempting alternative — assuming the argmax is
    monotone in remaining work and divide-and-conquering — is unsound:
    with all ages tied at zero under Weibull k = 0.7 the argmax
    oscillates.)  Every evaluated candidate uses the exact reference
    expression and skipped candidates are provably non-improving in
    float arithmetic, so pruned solves return bit-identical plans
    (property-tested; [~prune:false] recovers the exhaustive scan).

    [hazard_grid_points] > 0 tabulates the cumulative hazard on that
    many sqrt-spaced nodes ({!Ckpt_distributions.Hazard_grid}) before
    building the G table — faster for pow-heavy distributions
    (Weibull), but no longer bit-identical; default 0 (exact).
    @raise Invalid_argument if [work <= 0]. *)

val expected_work_of_chunks :
  context:Dp_context.t -> ages:Age_summary.t -> float list -> float
(** Proposition 3's objective evaluated on an explicit chunk sequence;
    lets tests verify the DP's optimality against brute force. *)
