(** DPNextFailure (Algorithm 2 and Section 3.3).

    Maximizes the expected amount of work successfully checkpointed
    before the next platform failure,

    [E(W) = sum_i w_i prod_{j<=i} Psuc(w_j + C | t_j)]  (Proposition 3),

    by dynamic programming over (remaining quanta, chunks done).  The
    parallel extension evaluates [Psuc] over an {!Age_summary} of the
    processor ages, and two speedups from the paper are applied:

    - the planned work is truncated to
      [min (remaining, truncation_factor * platform MTBF)]
      (default factor 2), and
    - when truncation bites, only the first half of the plan is meant
      to be executed before replanning ([valid_work]).

    Note: Algorithm 2's pseudo-code keeps the candidate minimizing
    [cur] — a typo, since NextFailure is a maximization; we maximize. *)

type plan = {
  chunks : float list;
      (** chunk sizes (work seconds, excluding checkpoint), in order;
          they sum to the planned work. *)
  expected_work : float;  (** optimal [E(W)] for the planned work. *)
  quantum : float;  (** the time quantum [u] used. *)
  truncated : bool;
  valid_work : float;
      (** how much leading work of [chunks] should be executed before
          recomputing a plan. *)
}

val solve :
  ?max_states:int ->
  ?truncation_factor:float ->
  context:Dp_context.t ->
  ages:Age_summary.t ->
  work:float ->
  unit ->
  plan
(** [solve ~context ~ages ~work ()] plans for [work] seconds of
    remaining (parallel) work.  [context.dist] is the {e per-processor}
    distribution; the platform MTBF used for truncation is
    [dist.mean / processors].  [max_states] bounds the DP dimension
    (the quantum adapts: [u = planned work / max_states]); default 150.
    [truncation_factor <= 0] disables truncation.
    @raise Invalid_argument if [work <= 0]. *)

val expected_work_of_chunks :
  context:Dp_context.t -> ages:Age_summary.t -> float list -> float
(** Proposition 3's objective evaluated on an explicit chunk sequence;
    lets tests verify the DP's optimality against brute force. *)
