(** DPMakespan (Algorithm 1).

    Minimizes the expected makespan for an arbitrary inter-arrival
    distribution by dynamic programming over quantized states
    [(x, b, y)]: [x] quanta of work remain, and the time since the
    last failure is [tau0 + y u] if [b] (no failure yet) or
    [R + y u] otherwise (the lifetime restarts at the beginning of the
    recovery period).

    Two points the paper's pseudo-code leaves implicit are handled
    explicitly here:

    - the post-recovery state [(x, b=0, y=0)] references itself through
      its own failure branch, so its Bellman equation is solved in
      closed form per candidate chunk before dependent states are
      filled;
    - [E(Tlost)] evaluations are cached on a geometric age grid (they
      vary slowly with age), keeping the DP tractable for Weibull
      failures.

    For parallel jobs this DP is only valid under the rejuvenate-all
    assumption: pass the aggregated platform distribution
    ({!Ckpt_distributions.Distribution.min_of_iid}) in the context, as
    the paper's simulations do. *)

type t
(** A solved instance (memoized value table). *)

val solve :
  ?quantum:float ->
  ?cap_states:int ->
  ?chunk_factor:float ->
  context:Dp_context.t ->
  work:float ->
  initial_age:float ->
  unit ->
  t
(** [solve ~context ~work ~initial_age ()] prepares the DP for [work]
    seconds of work with [tau0 = initial_age].

    The [quantum] defaults to a third of Young's period
    [sqrt (2 C mu)] — fine enough to express the optimal chunk — but
    is coarsened so the work dimension stays below [cap_states]
    (default 2000).  The chunk search at each state is capped at
    [chunk_factor] (default 6) Young periods: the per-chunk cost
    [psi] is strictly convex with its minimum near one Young period,
    so far larger chunks are never optimal; the cap turns the paper's
    O((W/u)^3) search into a tractable one without affecting the
    optimum in practice (tests compare against the uncapped search on
    small instances).

    Unlike DPNextFailure's chunk search, the argmin here is not
    monotone in remaining work (the optimal composition jumps at
    chunk-count transitions), so no monotone pruning is applied; the
    solver's speed comes from a flat open-addressing memo over packed
    states and the geometric tlost cache.

    States are memoized under a packed integer key with 31 bits for
    the elapsed-quanta coordinate; instances whose checkpoint-to-
    quantum ratio could overflow it are rejected up front (the prior
    24-bit layout corrupted such keys silently).
    @raise Invalid_argument if [work <= 0] or the state space cannot
    be packed. *)

val quantum : t -> float
val expected_makespan : t -> float
(** [E(T_opt(W | tau0))], the DP's optimal objective value. *)

(** {1 Following the plan}

    The optimal strategy is state-dependent; a cursor tracks the DP
    state across the events of an execution. *)

type cursor

val start : t -> cursor
val remaining_work : cursor -> float
val next_chunk : cursor -> float
(** Chunk size (work seconds) prescribed at the cursor's state; [0.]
    once no work remains. *)

val advance_success : cursor -> cursor
(** Move past a successfully executed and checkpointed {!next_chunk}. *)

val advance_failure : cursor -> cursor
(** Move to the post-recovery state after a failure (work unchanged). *)
