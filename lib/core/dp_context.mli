(** Shared setting of the two dynamic programs: the (platform-level)
    failure distribution and the fault-tolerance overheads. *)

type t = {
  dist : Ckpt_distributions.Distribution.t;
      (** inter-arrival distribution of the failures the DP reasons
          about — per-processor for a sequential job, the aggregated
          platform distribution for a parallel job under
          rejuvenate-all. *)
  checkpoint : float;  (** [C], seconds. *)
  recovery : float;  (** [R], seconds. *)
  downtime : float;  (** [D], seconds. *)
}

val create :
  dist:Ckpt_distributions.Distribution.t ->
  checkpoint:float -> recovery:float -> downtime:float -> t
(** @raise Invalid_argument on negative overheads. *)

val psuc : t -> age:float -> duration:float -> float
(** [Psuc(duration | age)] under [t.dist]. *)

val expected_tlost : t -> age:float -> window:float -> float
(** [E(Tlost(window | age))]. *)

val expected_trec : t -> float
(** Proposition 1's recovery cost
    [E(Trec) = D + R + (1 - Psuc(R|0))/Psuc(R|0) (D + E(Tlost(R|0)))],
    with the recovering processor starting a fresh lifetime. *)
