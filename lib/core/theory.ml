module Lambert_w = Ckpt_numerics.Lambert_w

let check_positive name v = if v <= 0. then invalid_arg ("Theory: " ^ name ^ " must be positive")
let check_nonneg name v = if v < 0. then invalid_arg ("Theory: " ^ name ^ " must be nonnegative")

let expected_tlost ~rate ~window =
  check_positive "rate" rate;
  check_nonneg "window" window;
  if window = 0. then 0.
  else begin
    let lw = rate *. window in
    if lw < 1e-8 then window /. 2. *. (1. -. (lw /. 6.))
    else (1. /. rate) -. (window /. (exp lw -. 1.))
  end

let expected_trec ~rate ~recovery ~downtime =
  check_positive "rate" rate;
  check_nonneg "recovery" recovery;
  check_nonneg "downtime" downtime;
  (* D + R + (e^{lambda R} - 1)(D + E(Tlost(R))) = D + (e^{lambda R} - 1)(D + 1/lambda). *)
  downtime +. recovery
  +. ((exp (rate *. recovery) -. 1.) *. (downtime +. expected_tlost ~rate ~window:recovery))

let chunk_count_real ~rate ~work ~checkpoint =
  check_positive "rate" rate;
  check_positive "work" work;
  check_nonneg "checkpoint" checkpoint;
  let z = -.exp ((-.rate *. checkpoint) -. 1.) in
  rate *. work /. (1. +. Lambert_w.w0 z)

let psi ~rate ~work ~checkpoint k =
  if k <= 0 then invalid_arg "Theory.psi: k must be positive";
  let kf = float_of_int k in
  kf *. (exp (rate *. ((work /. kf) +. checkpoint)) -. 1.)

let optimal_chunk_count ~rate ~work ~checkpoint =
  let k0 = chunk_count_real ~rate ~work ~checkpoint in
  let lo = max 1 (int_of_float (floor k0)) in
  let hi = max 1 (int_of_float (ceil k0)) in
  if lo = hi then lo
  else if psi ~rate ~work ~checkpoint lo <= psi ~rate ~work ~checkpoint hi then lo
  else hi

let optimal_period ~rate ~work ~checkpoint =
  work /. float_of_int (optimal_chunk_count ~rate ~work ~checkpoint)

let expected_makespan_for_count ~rate ~work ~checkpoint ~recovery ~downtime k =
  if k <= 0 then invalid_arg "Theory.expected_makespan_for_count: k must be positive";
  let trec = expected_trec ~rate ~recovery ~downtime in
  ((1. /. rate) +. trec) *. psi ~rate ~work ~checkpoint k

let optimal_expected_makespan ~rate ~work ~checkpoint ~recovery ~downtime =
  let k = optimal_chunk_count ~rate ~work ~checkpoint in
  expected_makespan_for_count ~rate ~work ~checkpoint ~recovery ~downtime k

let expected_makespan_single_chunk ~rate ~work ~checkpoint ~recovery ~downtime =
  expected_makespan_for_count ~rate ~work ~checkpoint ~recovery ~downtime 1

let macro_rate ~rate ~processors =
  check_positive "rate" rate;
  if processors <= 0 then invalid_arg "Theory.macro_rate: processors must be positive";
  rate *. float_of_int processors

let parallel_optimal_chunk_count ~rate ~processors ~parallel_work ~checkpoint =
  optimal_chunk_count ~rate:(macro_rate ~rate ~processors) ~work:parallel_work ~checkpoint

let parallel_optimal_period ~rate ~processors ~parallel_work ~checkpoint =
  optimal_period ~rate:(macro_rate ~rate ~processors) ~work:parallel_work ~checkpoint

let parallel_expected_makespan_macro ~rate ~processors ~parallel_work ~checkpoint ~recovery
    ~downtime =
  optimal_expected_makespan
    ~rate:(macro_rate ~rate ~processors)
    ~work:parallel_work ~checkpoint ~recovery ~downtime
