let check_positive name v = if v <= 0. then invalid_arg ("Waste: " ^ name ^ " must be positive")

let waste_fraction ~period ~checkpoint ~platform_mtbf =
  check_positive "period" period;
  check_positive "platform_mtbf" platform_mtbf;
  if checkpoint < 0. then invalid_arg "Waste: negative checkpoint";
  let w = (checkpoint /. (period +. checkpoint)) +. ((period +. checkpoint) /. (2. *. platform_mtbf)) in
  Float.min 1. (Float.max 0. w)

let optimal_period ~checkpoint ~platform_mtbf =
  check_positive "platform_mtbf" platform_mtbf;
  if checkpoint < 0. then invalid_arg "Waste: negative checkpoint";
  sqrt (2. *. checkpoint *. platform_mtbf)

let minimal_waste ~checkpoint ~platform_mtbf =
  waste_fraction ~period:(optimal_period ~checkpoint ~platform_mtbf) ~checkpoint ~platform_mtbf

let expected_makespan ~work ~checkpoint ~platform_mtbf =
  check_positive "work" work;
  let w = minimal_waste ~checkpoint ~platform_mtbf in
  if w >= 1. then infinity else work /. (1. -. w)

let usable_processor_limit ~checkpoint ~processor_mtbf =
  check_positive "checkpoint" checkpoint;
  check_positive "processor_mtbf" processor_mtbf;
  max 1 (int_of_float (processor_mtbf /. (2. *. checkpoint)))
