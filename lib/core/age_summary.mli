(** Compressed platform age state for parallel DPNextFailure
    (Section 3.3).

    The exact state of a [p]-processor platform is the vector of times
    [tau_1..tau_p] elapsed since each processor's last failure.
    Evaluating [Psuc] over tens of thousands of processors at every DP
    cell is intractable, so the paper keeps:

    - the [nexact] smallest ages exactly (smallest ages dominate the
      failure probability for decreasing-hazard distributions), and
    - [napprox] "reference" ages for the rest: the smallest and largest
      remaining ages, plus [napprox - 2] survival-interpolated
      quantiles; each remaining processor is mapped to the nearest
      reference, and only per-reference counts are kept.

    The paper uses [nexact = 10], [napprox = 100], and measures a
    worst-case relative error below 0.2% on Psuc at chunk sizes up to
    one platform MTBF. *)

type t = {
  exact : float array;  (** ascending; length <= nexact *)
  references : float array;  (** ascending reference ages *)
  counts : int array;  (** processors mapped to each reference *)
}

val default_nexact : int
(** 10, as in the paper. *)

val default_napprox : int
(** 100, as in the paper. *)

val exact_of_ages : float array -> t
(** Lossless summary (every age kept exactly); for small platforms and
    for measuring the approximation error. *)

val build :
  ?nexact:int -> ?napprox:int ->
  Ckpt_distributions.Distribution.t ->
  processors:int ->
  iter_ages:((float -> unit) -> unit) ->
  t
(** [build dist ~processors ~iter_ages] compresses the age vector
    produced by [iter_ages] (which must yield exactly [processors]
    values; two passes are made, no per-processor allocation).
    @raise Invalid_argument on nonsensical [nexact]/[napprox]. *)

val processors : t -> int

val log_survival_shift : Ckpt_distributions.Distribution.t -> t -> float -> float
(** [log_survival_shift dist s e] is
    [sum_j H(tau_j + e) - H(tau_j)] over the summarized platform —
    minus the log of the probability that no processor fails during
    the next [e] seconds.  [Psuc(x | elapsed)] between two horizon
    points is [exp (shift elapsed - shift (elapsed + x))]. *)

val psuc : Ckpt_distributions.Distribution.t -> t -> elapsed:float -> duration:float -> float
(** Probability that no summarized processor fails during
    [duration], given all have already survived [elapsed] seconds past
    their recorded ages. *)
