(** Compressed platform age state for parallel DPNextFailure
    (Section 3.3).

    The exact state of a [p]-processor platform is the vector of times
    [tau_1..tau_p] elapsed since each processor's last failure.
    Evaluating [Psuc] over tens of thousands of processors at every DP
    cell is intractable, so the paper keeps:

    - the [nexact] smallest ages exactly (smallest ages dominate the
      failure probability for decreasing-hazard distributions), and
    - [napprox] "reference" ages for the rest: the smallest and largest
      remaining ages, plus [napprox - 2] survival-interpolated
      quantiles; each remaining processor is mapped to the nearest
      reference, and only per-reference counts are kept.

    The paper uses [nexact = 10], [napprox = 100], and measures a
    worst-case relative error below 0.2% on Psuc at chunk sizes up to
    one platform MTBF. *)

type t = {
  exact : float array;  (** ascending; length <= nexact *)
  references : float array;  (** ascending reference ages *)
  counts : int array;  (** processors mapped to each reference *)
}

type summary = t
(** Alias so {!Incremental} can name the summary type. *)

val default_nexact : int
(** 10, as in the paper. *)

val default_napprox : int
(** 100, as in the paper. *)

val exact_of_ages : float array -> t
(** Lossless summary (every age kept exactly); for small platforms and
    for measuring the approximation error. *)

val build :
  ?nexact:int -> ?napprox:int ->
  Ckpt_distributions.Distribution.t ->
  processors:int ->
  iter_ages:((float -> unit) -> unit) ->
  t
(** [build dist ~processors ~iter_ages] compresses the age vector
    produced by [iter_ages] (which must yield exactly [processors]
    values; two passes are made, no per-processor allocation).
    @raise Invalid_argument on nonsensical [nexact]/[napprox]. *)

val processors : t -> int

val log_survival_shift : Ckpt_distributions.Distribution.t -> t -> float -> float
(** [log_survival_shift dist s e] is
    [sum_j H(tau_j + e) - H(tau_j)] over the summarized platform —
    minus the log of the probability that no processor fails during
    the next [e] seconds.  [Psuc(x | elapsed)] between two horizon
    points is [exp (shift elapsed - shift (elapsed + x))]. *)

val shift_evaluator :
  ?cumulative_hazard:(float -> float) ->
  ?cumulative_hazard_batch:(float array -> float array) ->
  Ckpt_distributions.Distribution.t ->
  t ->
  float ->
  float
(** [shift_evaluator dist s] is {!log_survival_shift}[ dist s] with the
    [H(tau_j)] halves of every term hoisted out at closure-creation
    time — bit-identical results, half the hazard evaluations.  Use it
    when probing many shifts of one summary (the DP's G table).
    [cumulative_hazard] substitutes a tabulated hazard (see
    {!Ckpt_distributions.Hazard_grid}) for the distribution's exact
    one; results then differ by the grid's interpolation error.
    [cumulative_hazard_batch] additionally supplies a batched form of
    the same hazard (e.g. {!Ckpt_distributions.Hazard_grid.eval_batch})
    used for the hoisted [H(tau_j)] arrays — it must be bit-identical
    to mapping [cumulative_hazard], and only amortizes dispatch. *)

val psuc : Ckpt_distributions.Distribution.t -> t -> elapsed:float -> duration:float -> float
(** Probability that no summarized processor fails during
    [duration], given all have already survived [elapsed] seconds past
    their recorded ages. *)

val max_age : t -> float
(** Largest age represented in the summary (0. floor); bounds the
    hazard evaluations a shift over the summary can make. *)

(** Persistent age state maintained across failures.

    Between failures every alive processor ages uniformly, so the
    sorted order of birth instants (instant each unit's current
    lifetime began) is invariant: a failure replaces exactly one birth.
    The engine keeps one of these per execution and updates it in
    O(log p) per failure; [summarize] then compresses it in
    O(nexact + napprox · log p) — no O(p) pass, no per-decision
    allocation proportional to the platform.

    [summarize] is bit-identical to {!build} over the same age multiset
    (property-tested); both use the same reference construction and the
    same order-independent tie rule at the exact threshold. *)
module Incremental : sig
  type t

  val create : births:float array -> t
  (** [create ~births] with one birth instant per failure unit (the
      engine's [lifetime_start] vector; a unit that never failed has
      birth 0).  Copies the array.
      @raise Invalid_argument on an empty array. *)

  val units : t -> int

  val update : t -> old_birth:float -> new_birth:float -> unit
  (** Replace one unit's birth instant after its failure ([new_birth] =
      failure date + downtime).  O(log p) search plus a shift of the
      ranks in between.
      @raise Invalid_argument if [old_birth] is not a current birth. *)

  val summarize :
    ?nexact:int ->
    ?napprox:int ->
    t ->
    Ckpt_distributions.Distribution.t ->
    now:float ->
    summary
  (** The {!build}-equivalent summary of the platform at instant [now]
      (unit age = [max 0 (now - birth)]). *)
end
