(** Closed-form results for Exponential failures.

    Theorem 1 (sequential): with failure rate [lambda], work [W],
    checkpoint cost [C], the optimal strategy splits [W] into
    [K* in {max 1 (floor K0), ceil K0}] equal chunks, where

    [K0 = lambda W / (1 + L(-exp(-lambda C - 1)))]

    ([L] = Lambert W, principal branch), whichever minimizes
    [psi K = K (exp (lambda (W/K + C)) - 1)].  The optimal expected
    makespan is

    [E(T_opt) = K* exp(lambda R) (1/lambda + D) (exp (lambda (W/K* + C)) - 1)].

    Proposition 5 (parallel): substitute [lambda -> p lambda],
    [W -> W(p)], [C -> C(p)], [R -> R(p)]. *)

val expected_tlost : rate:float -> window:float -> float
(** Lemma 1: [E(Tlost(w)) = 1/lambda - w/(exp(lambda w) - 1)] — the
    expected computation time lost given a failure strikes within the
    window. *)

val expected_trec : rate:float -> recovery:float -> downtime:float -> float
(** Lemma 1 / Proposition 1:
    [E(Trec) = D + R + (1 - e^(-lambda R))/e^(-lambda R) *
               (D + E(Tlost(R)))],
    which simplifies to [D + (e^(lambda R) - 1)(D + 1/lambda)]. *)

val chunk_count_real : rate:float -> work:float -> checkpoint:float -> float
(** [K0], the unconstrained real-valued optimum. *)

val psi : rate:float -> work:float -> checkpoint:float -> int -> float
(** [psi K = K (exp (lambda (W/K + C)) - 1)], the quantity minimized
    by the optimal chunk count. *)

val optimal_chunk_count : rate:float -> work:float -> checkpoint:float -> int
(** [K*]: the integer neighbor of [K0] minimizing [psi] (at least 1). *)

val optimal_period : rate:float -> work:float -> checkpoint:float -> float
(** [W / K*]: the chunk size of the optimal periodic strategy. *)

val optimal_expected_makespan :
  rate:float -> work:float -> checkpoint:float -> recovery:float -> downtime:float -> float
(** Theorem 1's [E(T_opt(W))]. *)

val expected_makespan_single_chunk :
  rate:float -> work:float -> checkpoint:float -> recovery:float -> downtime:float -> float
(** [E(T_id(W))]: the expected makespan of the naive execute-all-in-
    one-chunk strategy, used in the proof of Theorem 1 (finite upper
    bound) and handy as a sanity bound in tests. *)

val expected_makespan_for_count :
  rate:float -> work:float -> checkpoint:float -> recovery:float -> downtime:float ->
  int -> float
(** Expected makespan when splitting into exactly [k] equal chunks:
    [k (1/lambda + E(Trec)) (exp (lambda (W/k + C)) - 1)].
    @raise Invalid_argument if [k <= 0]. *)

(** {1 Parallel jobs (Proposition 5)} *)

val macro_rate : rate:float -> processors:int -> float
(** [p * lambda]: the failure rate of the aggregated macro-processor. *)

val parallel_optimal_chunk_count :
  rate:float -> processors:int -> parallel_work:float -> checkpoint:float -> int
(** [K*] of Proposition 5 for per-processor rate [rate], [W(p) =
    parallel_work] and [C(p) = checkpoint]. *)

val parallel_optimal_period :
  rate:float -> processors:int -> parallel_work:float -> checkpoint:float -> float

val parallel_expected_makespan_macro :
  rate:float -> processors:int -> parallel_work:float -> checkpoint:float ->
  recovery:float -> downtime:float -> float
(** Theorem 1's makespan formula applied to the macro-processor.
    Exact under rejuvenate-all; for failed-only rejuvenation the paper
    notes [E(Trec)] has no closed form (cascading downtimes), so this
    is an approximation there. *)
