module Distribution = Ckpt_distributions.Distribution
module Metrics = Ckpt_telemetry.Metrics

let cells_solved = Metrics.counter "dp_makespan/cells_solved"
let tlost_hits = Metrics.counter "dp_makespan/tlost_cache_hits"
let tlost_misses = Metrics.counter "dp_makespan/tlost_cache_misses"
let solves = Metrics.counter "dp_makespan/solves"
let quantum_gauge = Metrics.gauge "dp_makespan/quantum_seconds"
let quantization_error = Metrics.gauge "dp_makespan/checkpoint_quantization_error"

(* Flat open-addressing map over nonzero int keys: parallel unboxed
   arrays replace the [(int, float * int) Hashtbl], whose every entry
   boxed a tuple and two floats on the memoization hot path.  Slot 0 is
   the empty marker — valid because packed state keys are >= 2^32 and
   tlost keys >= 1024. *)
type flat_map = {
  mutable keys : int array;
  mutable vals : float array;
  mutable snds : int array;
  mutable size : int;
  mutable mask : int;
}

let fm_create cap =
  let cap = max 16 cap in
  let cap =
    let c = ref 16 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  {
    keys = Array.make cap 0;
    vals = Array.make cap 0.;
    snds = Array.make cap 0;
    size = 0;
    mask = cap - 1;
  }

let fm_start m key =
  let h = key * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 32)) land m.mask

(* Slot holding [key], or the empty slot where it belongs. *)
let fm_probe m key =
  let i = ref (fm_start m key) in
  let k = ref m.keys.(!i) in
  while !k <> key && !k <> 0 do
    i := (!i + 1) land m.mask;
    k := m.keys.(!i)
  done;
  !i

(* Index of [key], or -1. *)
let fm_find m key =
  let i = fm_probe m key in
  if m.keys.(i) = key then i else -1

let fm_add m key v snd =
  if (m.size + 1) * 4 > (m.mask + 1) * 3 then begin
    let old_keys = m.keys and old_vals = m.vals and old_snds = m.snds in
    let cap = (m.mask + 1) * 4 in
    m.keys <- Array.make cap 0;
    m.vals <- Array.make cap 0.;
    m.snds <- Array.make cap 0;
    m.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k <> 0 then begin
          let j = fm_probe m k in
          m.keys.(j) <- k;
          m.vals.(j) <- old_vals.(i);
          m.snds.(j) <- old_snds.(i)
        end)
      old_keys
  end;
  let i = fm_probe m key in
  m.keys.(i) <- key;
  m.vals.(i) <- v;
  m.snds.(i) <- snd;
  m.size <- m.size + 1

type t = {
  context : Dp_context.t;
  initial_age : float;
  x_max : int;
  u : float;
  c_u : int;  (* checkpoint duration in quanta, for age bookkeeping *)
  chunk_cap : int;  (* largest chunk explored, in quanta *)
  e_rec : float;
  (* E(T(x u | R)) for every x: the post-recovery states, solved first
     because every failure branch lands on them. *)
  post_recovery : float array;
  post_recovery_chunk : int array;
  (* Lazily memoized general states, keyed by the packed state. *)
  memo : flat_map;
  tlost_cache : flat_map;
}

type state = { x : int; fresh : bool; y : int }
(* Age at a state: (if fresh then tau0 else R) + y * u. *)

(* Layout: [2x + fresh] in the high bits, [y] in the low 31.  [solve]
   bounds y (= quanta of work plus checkpoints elapsed since the last
   failure) by x_max * (1 + c_u) and rejects instances that could
   overflow the field; the guard here catches any other caller. *)
let pack s =
  if s.y lsr 31 <> 0 then invalid_arg "Dp_makespan.pack: y exceeds the 31-bit packed field";
  ((((s.x * 2) + if s.fresh then 1 else 0) lsl 31) lor s.y : int)

let age_of t s =
  (if s.fresh then t.initial_age else t.context.Dp_context.recovery) +. (float_of_int s.y *. t.u)

(* E(Tlost) varies slowly with age; share evaluations across nearby
   ages through a 5%-geometric bucket. *)
let tlost t ~chunk_quanta ~age =
  let bucket = if age <= 1. then 0 else 1 + int_of_float (log age /. 0.05) in
  let key = (chunk_quanta * 1024) + bucket in
  let i = fm_find t.tlost_cache key in
  if i >= 0 then begin
    Metrics.incr tlost_hits;
    t.tlost_cache.vals.(i)
  end
  else begin
    Metrics.incr tlost_misses;
    let window = (float_of_int chunk_quanta *. t.u) +. t.context.Dp_context.checkpoint in
    let v = Dp_context.expected_tlost t.context ~age ~window in
    fm_add t.tlost_cache key v 0;
    v
  end

(* Bellman step at a state, given an evaluator for successor states
   and the value of the failure branch E(T(x u | R)).  When
   [self_referential], the failure branch is the state itself and the
   fixed point is solved in closed form per candidate chunk.  The
   chunk search is capped at [chunk_cap] quanta (several Young periods:
   psi is convex, so larger chunks are never optimal; see .mli).

   Unlike DPNextFailure's inner maximization, the argmin here is NOT
   monotone in remaining work — the optimal composition of x quanta
   jumps at chunk-count transitions (one chunk of 3 at x = 3, first
   chunk 2 of {2, 2} at x = 4 for memoryless failures) — so no
   monotone pruning of this scan is sound; the solver's speedups come
   from the flat memo and cached tlost instead. *)
let bellman t ~x ~age ~successor ~failure_value ~self_referential =
  let c = t.context.Dp_context.checkpoint in
  let i_max = min x t.chunk_cap in
  let i_max = if x - i_max < i_max then x else i_max in
  (* ^ when the cap leaves a sub-chunk tail smaller than the cap,
     allow finishing in one chunk so the plan never strands a tail. *)
  let best_v = ref infinity and best_i = ref 1 in
  for i = 1 to i_max do
    let duration = (float_of_int i *. t.u) +. c in
    let p = Dp_context.psuc t.context ~age ~duration in
    let v =
      if p <= 0. then infinity
      else begin
        let succ = successor i in
        let lost = tlost t ~chunk_quanta:i ~age in
        if self_referential then
          ((p *. (duration +. succ)) +. ((1. -. p) *. (lost +. t.e_rec))) /. p
        else
          (p *. (duration +. succ))
          +. ((1. -. p) *. (lost +. t.e_rec +. failure_value))
      end
    in
    if v < !best_v then begin
      best_v := v;
      best_i := i
    end
  done;
  (!best_v, !best_i)

let rec value t s =
  if s.x = 0 then 0.
  else if (not s.fresh) && s.y = 0 then t.post_recovery.(s.x)
  else begin
    let key = pack s in
    let idx = fm_find t.memo key in
    if idx >= 0 then t.memo.vals.(idx)
    else begin
      Metrics.incr cells_solved;
      let age = age_of t s in
      let successor i = value t { x = s.x - i; fresh = s.fresh; y = s.y + i + t.c_u } in
      let failure_value = t.post_recovery.(s.x) in
      let v, i = bellman t ~x:s.x ~age ~successor ~failure_value ~self_referential:false in
      fm_add t.memo key v i;
      v
    end
  end

(* The chunk prescribed at a state ([value] first, so the memo entry
   exists). *)
let chunk_quanta t s =
  if s.x = 0 then 0
  else if (not s.fresh) && s.y = 0 then t.post_recovery_chunk.(s.x)
  else begin
    ignore (value t s);
    t.memo.snds.(fm_find t.memo (pack s))
  end

let young_period context =
  let mean = context.Dp_context.dist.Distribution.mean in
  sqrt (2. *. Float.max 1. context.Dp_context.checkpoint *. mean)

let solve ?quantum ?(cap_states = 2000) ?(chunk_factor = 6.) ~context ~work ~initial_age () =
  if work <= 0. then invalid_arg "Dp_makespan.solve: work must be positive";
  if cap_states < 1 then invalid_arg "Dp_makespan.solve: cap_states must be positive";
  let young = young_period context in
  let u =
    match quantum with
    | Some u when u > 0. -> u
    | Some _ -> invalid_arg "Dp_makespan.solve: quantum must be positive"
    | None ->
        (* Fine enough to express the optimal chunk (a third of Young's
           period), coarse enough to bound the state count. *)
        Float.max (young /. 3.) (work /. float_of_int cap_states)
  in
  let x_max = max 1 (int_of_float (ceil (work /. u))) in
  if x_max >= 1 lsl 30 then
    invalid_arg "Dp_makespan.solve: work/quantum needs too many states for the packed layout";
  let u = work /. float_of_int x_max in
  let c_quanta = Float.round (context.Dp_context.checkpoint /. u) in
  (* y (quanta elapsed since the last failure) reaches at most
     x_max * (1 + c_u): each of at most x_max chunks advances it by its
     size plus one checkpoint.  Reject instances whose y could spill
     out of pack's 31-bit field — with the old 24-bit layout they would
     have corrupted x silently. *)
  if float_of_int x_max *. (1. +. c_quanta) >= 2147483648. then
    invalid_arg "Dp_makespan.solve: checkpoint/quantum ratio overflows the packed state layout";
  let c_u = int_of_float c_quanta in
  let chunk_cap = max 4 (int_of_float (ceil (chunk_factor *. young /. u))) in
  Metrics.incr solves;
  Metrics.set quantum_gauge u;
  (* Seconds by which snapping C to a whole number of quanta misstates
     the checkpoint in the age bookkeeping. *)
  Metrics.set quantization_error
    (Float.abs ((float_of_int c_u *. u) -. context.Dp_context.checkpoint));
  let t =
    {
      context;
      initial_age;
      x_max;
      u;
      c_u;
      chunk_cap;
      e_rec = Dp_context.expected_trec context;
      post_recovery = Array.make (x_max + 1) 0.;
      post_recovery_chunk = Array.make (x_max + 1) 0;
      memo = fm_create 4096;
      tlost_cache = fm_create 256;
    }
  in
  (* Post-recovery states, ascending in x.  Their successors
     (x - i, fresh=false, y = i + c_u) recursively bottom out on
     post-recovery values of strictly smaller x. *)
  for x = 1 to x_max do
    let age = context.Dp_context.recovery in
    let successor i = value t { x = x - i; fresh = false; y = i + t.c_u } in
    let v, i = bellman t ~x ~age ~successor ~failure_value:nan ~self_referential:true in
    t.post_recovery.(x) <- v;
    t.post_recovery_chunk.(x) <- i
  done;
  t

let quantum t = t.u

let expected_makespan t = value t { x = t.x_max; fresh = true; y = 0 }

type cursor = { table : t; state : state }

let start table = { table; state = { x = table.x_max; fresh = true; y = 0 } }

let remaining_work c = float_of_int c.state.x *. c.table.u

let next_chunk c =
  if c.state.x = 0 then 0.
  else float_of_int (chunk_quanta c.table c.state) *. c.table.u

let advance_success c =
  if c.state.x = 0 then c
  else begin
    let i = chunk_quanta c.table c.state in
    { c with state = { c.state with x = c.state.x - i; y = c.state.y + i + c.table.c_u } }
  end

let advance_failure c = { c with state = { c.state with fresh = false; y = 0 } }
