module Distribution = Ckpt_distributions.Distribution

type t = {
  exact : float array;
  references : float array;
  counts : int array;
}

let default_nexact = 10
let default_napprox = 100

let exact_of_ages ages =
  let exact = Array.copy ages in
  Array.sort compare exact;
  { exact; references = [||]; counts = [||] }

let processors t = Array.length t.exact + Array.fold_left ( + ) 0 t.counts

(* Index of the reference nearest to [age] (references ascending). *)
let nearest_reference references age =
  let n = Array.length references in
  if age <= references.(0) then 0
  else if age >= references.(n - 1) then n - 1
  else begin
    (* Invariant: references.(lo) < age <= references.(hi). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if references.(mid) >= age then hi := mid else lo := mid
    done;
    if age -. references.(!lo) <= references.(!hi) -. age then !lo else !hi
  end

let build ?(nexact = default_nexact) ?(napprox = default_napprox) dist ~processors ~iter_ages =
  if nexact < 0 then invalid_arg "Age_summary.build: nexact must be nonnegative";
  if napprox < 2 then invalid_arg "Age_summary.build: napprox must be at least 2";
  if processors <= 0 then invalid_arg "Age_summary.build: processors must be positive";
  if processors <= nexact + 1 then begin
    (* Small platform: keep everything exactly. *)
    let buf = Array.make processors 0. in
    let k = ref 0 in
    iter_ages (fun a ->
        buf.(!k) <- a;
        incr k);
    if !k <> processors then invalid_arg "Age_summary.build: iter_ages count mismatch";
    exact_of_ages buf
  end
  else begin
    (* Pass 1: the nexact+1 smallest ages (sorted insertion into a tiny
       buffer) and the overall maximum. *)
    let keep = nexact + 1 in
    let smallest = Array.make keep infinity in
    let maximum = ref neg_infinity in
    let seen = ref 0 in
    iter_ages (fun a ->
        incr seen;
        if a > !maximum then maximum := a;
        if a < smallest.(keep - 1) then begin
          let i = ref (keep - 1) in
          while !i > 0 && smallest.(!i - 1) > a do
            smallest.(!i) <- smallest.(!i - 1);
            decr i
          done;
          smallest.(!i) <- a
        end);
    if !seen <> processors then invalid_arg "Age_summary.build: iter_ages count mismatch";
    let exact = Array.sub smallest 0 nexact in
    let smallest_remaining = smallest.(keep - 1) in
    let largest_remaining = !maximum in
    let references =
      if largest_remaining <= smallest_remaining then [| smallest_remaining |]
      else begin
        let s_lo = Distribution.survival dist smallest_remaining in
        let s_hi = Distribution.survival dist largest_remaining in
        Array.init napprox (fun idx ->
            if idx = 0 then smallest_remaining
            else if idx = napprox - 1 then largest_remaining
            else begin
              let i = float_of_int (idx + 1) and n = float_of_int napprox in
              let q = (((n -. i) /. (n -. 1.)) *. s_lo) +. (((i -. 1.) /. (n -. 1.)) *. s_hi) in
              let r = Distribution.survival_quantile dist q in
              (* Numerical quantile inversion can drift just outside the
                 bracket; clamp to keep the references ordered. *)
              Float.min largest_remaining (Float.max smallest_remaining r)
            end)
      end
    in
    Array.sort compare references;
    let counts = Array.make (Array.length references) 0 in
    (* Pass 2: assign every non-exact processor to its nearest
       reference.  Ages tied with the exact threshold fill the exact
       slots first, deterministically in iteration order. *)
    let threshold = exact.(nexact - 1) in
    let exact_left = ref nexact in
    iter_ages (fun a ->
        if a <= threshold && !exact_left > 0 then decr exact_left
        else begin
          let r = nearest_reference references a in
          counts.(r) <- counts.(r) + 1
        end);
    { exact; references; counts }
  end

let log_survival_shift dist t e =
  let h = dist.Distribution.cumulative_hazard in
  let acc = ref 0. in
  Array.iter (fun tau -> acc := !acc +. (h (tau +. e) -. h tau)) t.exact;
  Array.iteri
    (fun i r ->
      if t.counts.(i) > 0 then
        acc := !acc +. (float_of_int t.counts.(i) *. (h (r +. e) -. h r)))
    t.references;
  !acc

let psuc dist t ~elapsed ~duration =
  if duration <= 0. then 1.
  else
    exp (log_survival_shift dist t elapsed -. log_survival_shift dist t (elapsed +. duration))
