module Distribution = Ckpt_distributions.Distribution

type t = {
  exact : float array;
  references : float array;
  counts : int array;
}

type summary = t

let default_nexact = 10
let default_napprox = 100

let exact_of_ages ages =
  let exact = Array.copy ages in
  Array.sort compare exact;
  { exact; references = [||]; counts = [||] }

let processors t = Array.length t.exact + Array.fold_left ( + ) 0 t.counts

(* Index of the reference nearest to [age] (references ascending). *)
let nearest_reference references age =
  let n = Array.length references in
  if age <= references.(0) then 0
  else if age >= references.(n - 1) then n - 1
  else begin
    (* Invariant: references.(lo) < age <= references.(hi). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if references.(mid) >= age then hi := mid else lo := mid
    done;
    if age -. references.(!lo) <= references.(!hi) -. age then !lo else !hi
  end

(* Reference ages for the non-exact processors: the smallest and
   largest remaining ages plus survival-interpolated quantiles between
   them.  Shared by [build] and [Incremental.summarize] so both paths
   produce bit-identical summaries. *)
let make_references dist ~napprox ~smallest_remaining ~largest_remaining =
  let references =
    if largest_remaining <= smallest_remaining then [| smallest_remaining |]
    else begin
      let s_lo = Distribution.survival dist smallest_remaining in
      let s_hi = Distribution.survival dist largest_remaining in
      Array.init napprox (fun idx ->
          if idx = 0 then smallest_remaining
          else if idx = napprox - 1 then largest_remaining
          else begin
            let i = float_of_int (idx + 1) and n = float_of_int napprox in
            let q = (((n -. i) /. (n -. 1.)) *. s_lo) +. (((i -. 1.) /. (n -. 1.)) *. s_hi) in
            let r = Distribution.survival_quantile dist q in
            (* Numerical quantile inversion can drift just outside the
               bracket; clamp to keep the references ordered. *)
            Float.min largest_remaining (Float.max smallest_remaining r)
          end)
    end
  in
  Array.sort compare references;
  references

let build ?(nexact = default_nexact) ?(napprox = default_napprox) dist ~processors ~iter_ages =
  if nexact < 0 then invalid_arg "Age_summary.build: nexact must be nonnegative";
  if napprox < 2 then invalid_arg "Age_summary.build: napprox must be at least 2";
  if processors <= 0 then invalid_arg "Age_summary.build: processors must be positive";
  if processors <= nexact + 1 then begin
    (* Small platform: keep everything exactly. *)
    let buf = Array.make processors 0. in
    let k = ref 0 in
    iter_ages (fun a ->
        buf.(!k) <- a;
        incr k);
    if !k <> processors then invalid_arg "Age_summary.build: iter_ages count mismatch";
    exact_of_ages buf
  end
  else begin
    (* Pass 1: the nexact+1 smallest ages (sorted insertion into a tiny
       buffer) and the overall maximum. *)
    let keep = nexact + 1 in
    let smallest = Array.make keep infinity in
    let maximum = ref neg_infinity in
    let seen = ref 0 in
    iter_ages (fun a ->
        incr seen;
        if a > !maximum then maximum := a;
        if a < smallest.(keep - 1) then begin
          let i = ref (keep - 1) in
          while !i > 0 && smallest.(!i - 1) > a do
            smallest.(!i) <- smallest.(!i - 1);
            decr i
          done;
          smallest.(!i) <- a
        end);
    if !seen <> processors then invalid_arg "Age_summary.build: iter_ages count mismatch";
    let exact = Array.sub smallest 0 nexact in
    let smallest_remaining = smallest.(keep - 1) in
    let largest_remaining = !maximum in
    let references = make_references dist ~napprox ~smallest_remaining ~largest_remaining in
    let counts = Array.make (Array.length references) 0 in
    (* Pass 2: assign every non-exact processor to its nearest
       reference.  Ages strictly below the exact threshold always
       occupy exact slots; ages tied with the threshold fill the
       remaining slots, and any surplus tied processors count toward
       the threshold's nearest reference — a rule independent of
       iteration order, so summaries built from different traversals of
       the same age multiset are identical.  With [nexact = 0] there
       are no exact slots and every age belongs to a reference. *)
    let threshold = if nexact = 0 then neg_infinity else exact.(nexact - 1) in
    let below = ref 0 and tied = ref 0 in
    iter_ages (fun a ->
        if a < threshold then incr below
        else if a = threshold then incr tied
        else begin
          let r = nearest_reference references a in
          counts.(r) <- counts.(r) + 1
        end);
    let surplus = !below + !tied - nexact in
    if surplus > 0 then begin
      let r = nearest_reference references threshold in
      counts.(r) <- counts.(r) + surplus
    end;
    { exact; references; counts }
  end

let log_survival_shift dist t e =
  let h = dist.Distribution.cumulative_hazard in
  let acc = ref 0. in
  Array.iter (fun tau -> acc := !acc +. (h (tau +. e) -. h tau)) t.exact;
  Array.iteri
    (fun i r ->
      if t.counts.(i) > 0 then
        acc := !acc +. (float_of_int t.counts.(i) *. (h (r +. e) -. h r)))
    t.references;
  !acc

(* Repeated shift evaluations (the DP's G table probes hundreds of
   horizon offsets against one summary) redo the H(tau) half of every
   term; hoist those into flat arrays once.  The sums run in the same
   order over the same floats as [log_survival_shift], so the results
   are bit-identical. *)
let shift_evaluator ?cumulative_hazard ?cumulative_hazard_batch dist t =
  let h =
    match cumulative_hazard with
    | Some h -> h
    | None -> dist.Distribution.cumulative_hazard
  in
  (* The hoisted H(tau) halves are the one place every summary term is
     queried at once; a batch evaluator (one tabulated-hazard
     interpolation pass, bit-identical per element) amortizes the
     closure dispatch there.  Per-probe queries below stay scalar. *)
  let hb =
    match cumulative_hazard_batch with Some hb -> hb | None -> Array.map h
  in
  let h_exact = hb t.exact in
  let h_refs = hb t.references in
  let counts_f = Array.map float_of_int t.counts in
  let exact = t.exact and references = t.references and counts = t.counts in
  let nexact = Array.length exact and nrefs = Array.length references in
  (* Plain counted loops with unchecked reads: this closure runs a few
     hundred times per DP solve over ~a hundred terms each, and every
     index is trivially in range.  Identical summation order to the
     naive fold, so results are bit-identical. *)
  fun e ->
    let acc = ref 0. in
    for i = 0 to nexact - 1 do
      acc := !acc +. (h (Array.unsafe_get exact i +. e) -. Array.unsafe_get h_exact i)
    done;
    for i = 0 to nrefs - 1 do
      if Array.unsafe_get counts i > 0 then
        acc :=
          !acc
          +. Array.unsafe_get counts_f i
             *. (h (Array.unsafe_get references i +. e) -. Array.unsafe_get h_refs i)
    done;
    !acc

let psuc dist t ~elapsed ~duration =
  if duration <= 0. then 1.
  else
    exp (log_survival_shift dist t elapsed -. log_survival_shift dist t (elapsed +. duration))

let max_age t =
  let m = ref 0. in
  Array.iter (fun a -> if a > !m then m := a) t.exact;
  Array.iteri (fun i r -> if t.counts.(i) > 0 && r > !m then m := r) t.references;
  !m

module Incremental = struct
  type t = { births : float array }
  (* Ascending birth instants (one per failure unit).  Between
     failures every alive unit ages uniformly, so the sorted order is
     invariant; a failure replaces one birth, an O(log p) reinsertion.
     Unit age at time [now] is [max 0 (now - birth)] — the clamp
     mirrors the engine, whose downtime bookkeeping can put a birth
     slightly in the future of the first decision instant. *)

  (* First index in a.(0..n-1) with a.(i) >= v (n if none). *)
  let lower_bound a n v =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < v then lo := mid + 1 else hi := mid
    done;
    !lo

  (* First index in a.(0..n-1) with a.(i) > v (n if none). *)
  let upper_bound a n v =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) <= v then lo := mid + 1 else hi := mid
    done;
    !lo

  let create ~births =
    if Array.length births = 0 then invalid_arg "Age_summary.Incremental.create: no units";
    let b = Array.copy births in
    Array.sort compare b;
    { births = b }

  let units t = Array.length t.births

  let update t ~old_birth ~new_birth =
    if old_birth = new_birth then ()
    else begin
      let a = t.births in
      let n = Array.length a in
      let i = lower_bound a n old_birth in
      if i >= n || a.(i) <> old_birth then
        invalid_arg "Age_summary.Incremental.update: unknown birth instant";
      if new_birth > old_birth then begin
        (* Remove slot i, reinsert to the right. *)
        let j = upper_bound a n new_birth in
        Array.blit a (i + 1) a i (j - 1 - i);
        a.(j - 1) <- new_birth
      end
      else begin
        (* Reinsert to the left. *)
        let j = lower_bound a n new_birth in
        Array.blit a j a (j + 1) (i - j);
        a.(j) <- new_birth
      end
    end

  let summarize ?(nexact = default_nexact) ?(napprox = default_napprox) t dist ~now =
    if nexact < 0 then invalid_arg "Age_summary.build: nexact must be nonnegative";
    if napprox < 2 then invalid_arg "Age_summary.build: napprox must be at least 2";
    let births = t.births in
    let n = Array.length births in
    (* k-th smallest age, k in 0..n-1: ages are anti-sorted births. *)
    let age k = Float.max 0. (now -. births.(n - 1 - k)) in
    if n <= nexact + 1 then { exact = Array.init n age; references = [||]; counts = [||] }
    else begin
      let exact = Array.init nexact age in
      let smallest_remaining = age nexact in
      let largest_remaining = age (n - 1) in
      let references = make_references dist ~napprox ~smallest_remaining ~largest_remaining in
      let counts = Array.make (Array.length references) 0 in
      let threshold = if nexact = 0 then neg_infinity else exact.(nexact - 1) in
      (* Rank of the first age strictly above the threshold.  Any
         surplus at-or-below-threshold units beyond the nexact exact
         slots are tied exactly at the threshold (the same rule as
         [build]'s pass 2). *)
      let above =
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if age mid <= threshold then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      if above > nexact then begin
        let r = nearest_reference references threshold in
        counts.(r) <- counts.(r) + (above - nexact)
      end;
      (* [nearest_reference] is monotone non-decreasing in the age, and
         ages are sorted by rank, so units mapping to one reference form
         a contiguous rank run — count each run with a binary search
         instead of walking all p units. *)
      let pos = ref above in
      while !pos < n do
        let r = nearest_reference references (age !pos) in
        let lo = ref !pos and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if nearest_reference references (age mid) > r then hi := mid else lo := mid
        done;
        counts.(r) <- counts.(r) + (!hi - !pos);
        pos := !hi
      done;
      { exact; references; counts }
    end
end
