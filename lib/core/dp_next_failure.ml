module Metrics = Ckpt_telemetry.Metrics

let solves = Metrics.counter "dp_next_failure/solves"
let cells = Metrics.counter "dp_next_failure/cells_solved"
let truncations = Metrics.counter "dp_next_failure/truncated_horizons"

type plan = {
  chunks : float list;
  expected_work : float;
  quantum : float;
  truncated : bool;
  valid_work : float;
}

let expected_work_of_chunks ~context ~ages chunks =
  let dist = context.Dp_context.dist in
  let c = context.Dp_context.checkpoint in
  let _, _, total =
    List.fold_left
      (fun (elapsed, survive, total) w ->
        let p = Age_summary.psuc dist ages ~elapsed ~duration:(w +. c) in
        let survive = survive *. p in
        (elapsed +. w +. c, survive, total +. (survive *. w)))
      (0., 1., 0.) chunks
  in
  total

let solve ?(max_states = 150) ?(truncation_factor = 2.) ~context ~ages ~work () =
  if work <= 0. then invalid_arg "Dp_next_failure.solve: work must be positive";
  if max_states < 1 then invalid_arg "Dp_next_failure.solve: max_states must be positive";
  let dist = context.Dp_context.dist in
  let c = context.Dp_context.checkpoint in
  let p = Age_summary.processors ages in
  let platform_mtbf = dist.Ckpt_distributions.Distribution.mean /. float_of_int p in
  let planned =
    if truncation_factor > 0. then Float.min work (truncation_factor *. platform_mtbf)
    else work
  in
  let truncated = planned < work in
  (* Resolution: enough quanta that a Young-period-sized chunk spans
     several, without paying for states a short horizon cannot use. *)
  let young = sqrt (2. *. Float.max 1. c *. platform_mtbf) in
  let floor_states = min 48 max_states in
  let x_max =
    min max_states (max floor_states (int_of_float (ceil (planned *. 6. /. young))))
  in
  let u = planned /. float_of_int x_max in
  (* Platform log-survival over the planning horizon.  Evaluating the
     full age summary is the expensive part, so G is tabulated on a
     coarse grid and linearly interpolated: G is a smooth sum of
     cumulative hazards, and — crucially — interpolation never rounds
     the checkpoint cost away (a grid that did would make checkpoints
     look free and degenerate the plan into one-quantum chunks). *)
  let horizon = float_of_int x_max *. (u +. c) in
  let g_points = 256 in
  let step = horizon /. float_of_int g_points in
  let g =
    Array.init (g_points + 2) (fun i ->
        Age_summary.log_survival_shift dist ages (float_of_int i *. step))
  in
  let g_at e =
    let t = e /. step in
    let i = int_of_float t in
    let i = if i >= g_points then g_points else i in
    let frac = t -. float_of_int i in
    g.(i) +. (frac *. (g.(i + 1) -. g.(i)))
  in
  (* value.(x).(n) = optimal E(W) with x quanta left after n chunks;
     best.(x).(n) = the maximizing chunk size in quanta. *)
  let value = Array.make_matrix (x_max + 1) (x_max + 1) 0. in
  let best = Array.make_matrix (x_max + 1) (x_max + 1) 0 in
  (* Chunks beyond a few Young periods are never optimal (the marginal
     risk of the chunk's tail exceeds the amortized checkpoint saving);
     capping the search turns the cubic scan into a near-quadratic one.
     The cap is ignored near the end of the plan so a single final
     chunk stays expressible. *)
  let chunk_cap = max 4 (int_of_float (ceil (8. *. young /. u))) in
  for x = 1 to x_max do
    for n = 0 to x_max - x do
      let e_base = (float_of_int (x_max - x) *. u) +. (float_of_int n *. c) in
      let g_base = g_at e_base in
      let best_v = ref neg_infinity and best_i = ref 1 in
      let i_max = if x <= 2 * chunk_cap then x else chunk_cap in
      for i = 1 to i_max do
        let chunk = float_of_int i *. u in
        let psuc = exp (g_base -. g_at (e_base +. chunk +. c)) in
        let v = psuc *. (chunk +. value.(x - i).(n + 1)) in
        if v > !best_v then begin
          best_v := v;
          best_i := i
        end
      done;
      value.(x).(n) <- !best_v;
      best.(x).(n) <- !best_i
    done
  done;
  Metrics.incr solves;
  Metrics.add cells (x_max * (x_max + 1) / 2);
  if truncated then Metrics.incr truncations;
  let chunks =
    let rec collect x n acc =
      if x = 0 then List.rev acc
      else begin
        let i = best.(x).(n) in
        collect (x - i) (n + 1) (float_of_int i *. u :: acc)
      end
    in
    collect x_max 0 []
  in
  {
    chunks;
    expected_work = value.(x_max).(0);
    quantum = u;
    truncated;
    valid_work = (if truncated then planned /. 2. else planned);
  }
