module Metrics = Ckpt_telemetry.Metrics
module Hazard_grid = Ckpt_distributions.Hazard_grid

let solves = Metrics.counter "dp_next_failure/solves"
let cells = Metrics.counter "dp_next_failure/cells_solved"
let candidates = Metrics.counter "dp_next_failure/candidates_scanned"
let truncations = Metrics.counter "dp_next_failure/truncated_horizons"

type plan = {
  chunks : float list;
  expected_work : float;
  quantum : float;
  truncated : bool;
  valid_work : float;
}

let expected_work_of_chunks ~context ~ages chunks =
  let dist = context.Dp_context.dist in
  let c = context.Dp_context.checkpoint in
  let _, _, total =
    List.fold_left
      (fun (elapsed, survive, total) w ->
        let p = Age_summary.psuc dist ages ~elapsed ~duration:(w +. c) in
        let survive = survive *. p in
        (elapsed +. w +. c, survive, total +. (survive *. w)))
      (0., 1., 0.) chunks
  in
  total

let solve ?(max_states = 150) ?(truncation_factor = 2.) ?(prune = true) ?(hazard_grid_points = 0)
    ~context ~ages ~work () =
  if work <= 0. then invalid_arg "Dp_next_failure.solve: work must be positive";
  if max_states < 1 then invalid_arg "Dp_next_failure.solve: max_states must be positive";
  let dist = context.Dp_context.dist in
  let c = context.Dp_context.checkpoint in
  let p = Age_summary.processors ages in
  let platform_mtbf = dist.Ckpt_distributions.Distribution.mean /. float_of_int p in
  let planned =
    if truncation_factor > 0. then Float.min work (truncation_factor *. platform_mtbf)
    else work
  in
  let truncated = planned < work in
  (* Resolution: enough quanta that a Young-period-sized chunk spans
     several, without paying for states a short horizon cannot use. *)
  let young = sqrt (2. *. Float.max 1. c *. platform_mtbf) in
  let floor_states = min 48 max_states in
  let x_max =
    min max_states (max floor_states (int_of_float (ceil (planned *. 6. /. young))))
  in
  let u = planned /. float_of_int x_max in
  (* Platform log-survival over the planning horizon.  Evaluating the
     full age summary is the expensive part, so G is tabulated on a
     coarse grid and linearly interpolated: G is a smooth sum of
     cumulative hazards, and — crucially — interpolation never rounds
     the checkpoint cost away (a grid that did would make checkpoints
     look free and degenerate the plan into one-quantum chunks).  The
     shift evaluator hoists the H(tau) halves of every term; an
     optional tabulated hazard ([hazard_grid_points] > 0) removes the
     remaining per-probe pow/log chains at the cost of bit-exactness. *)
  let horizon = float_of_int x_max *. (u +. c) in
  let g_points = 256 in
  let step = horizon /. float_of_int g_points in
  let shift =
    if hazard_grid_points > 0 then begin
      let span = Age_summary.max_age ages +. horizon +. step +. c in
      let grid = Hazard_grid.make dist ~hi:span ~points:hazard_grid_points in
      Age_summary.shift_evaluator ~cumulative_hazard:(Hazard_grid.eval grid)
        ~cumulative_hazard_batch:(Hazard_grid.eval_batch grid) dist ages
    end
    else Age_summary.shift_evaluator dist ages
  in
  let g = Array.init (g_points + 2) (fun i -> shift (float_of_int i *. step)) in
  let g_at e =
    let t = e /. step in
    let i = int_of_float t in
    let i = if i >= g_points then g_points else i in
    let frac = t -. float_of_int i in
    g.(i) +. (frac *. (g.(i + 1) -. g.(i)))
  in
  (* value.(x * stride + n) = optimal E(W) with x quanta left after n
     chunks; best likewise holds the maximizing chunk size in quanta.
     Flat rows keep the inner loop free of bounds-checked row
     indirections. *)
  let stride = x_max + 1 in
  let value = Array.make ((x_max + 1) * stride) 0. in
  let best = Array.make ((x_max + 1) * stride) 0 in
  (* qmax.(x * stride + n) = max over x' <= x of
     (value.(x' * stride + n) - chunk_of.(x')): running prefix maxima
     of each DP row in "value minus chunk" form.  A candidate j at cell
     (x, n) scores psuc_j * (chunk_of.(j) + value.(x - j)), and
     chunk_of.(j) = chunk_of.(x) - chunk_of.(x - j) up to round-off, so
     chunk_of.(x) + qmax over the tail's x - j range tightly bounds the
     bracketed factor for every remaining candidate at once. *)
  let qmax = Array.make ((x_max + 1) * stride) 0. in
  (* g_min.(k) = min over k' >= k of g.(k'): since every candidate's
     interpolated G value is a convex combination of two table nodes at
     or past its index, g_min lower-bounds the G any further candidate
     can see.  (G is nondecreasing in exact arithmetic, so g_min is
     normally just g itself; the suffix min also absorbs any ulp-level
     rounding wobble, keeping the pruning bound sound.) *)
  let g_min = Array.make (g_points + 2) g.(g_points + 1) in
  for k = g_points downto 0 do
    g_min.(k) <- Float.min g.(k) g_min.(k + 1)
  done;
  (* Chunks beyond a few Young periods are never optimal (the marginal
     risk of the chunk's tail exceeds the amortized checkpoint saving);
     capping the search turns the cubic scan into a near-quadratic one.
     The cap is ignored near the end of the plan so a single final
     chunk stays expressible. *)
  let chunk_cap = max 4 (int_of_float (ceil (8. *. young /. u))) in
  let chunk_of = Array.init (x_max + 1) (fun i -> float_of_int i *. u) in
  let scanned = ref 0 in
  (* First-strict-max scan of candidate chunk sizes 1..ihi at cell
     (x, n); every evaluated expression matches the reference scan bit
     for bit.

     Pruning (a branch-and-bound early exit, NOT a monotone-argmax
     assumption — the argmax is provably non-monotone in x: a platform
     with every age tied at zero under Weibull k = 0.7 exhibits
     off-by-one oscillations that corrupt a divide-and-conquer
     bracket): candidate values decay once the chunk outgrows the
     survival horizon, so after each candidate the whole remaining
     tail is bounded at once.  For every j > i,

       v_j  =  exp (g_base - G(e_j)) * (chunk_j + value_(x-j))
           <=  exp (g_base - min_{k >= k0} g.(k))
               * (chunk_x + max_{m <= x-i-1} (value_m - chunk_m))

     where k0 is candidate i+1's G-table index: the interpolated
     G(e_j) is a convex combination of table nodes at or past k0,
     chunk_j + value_(x-j) = chunk_x + (value_(x-j) - chunk_(x-j)) up
     to round-off, and IEEE arithmetic is monotone, so the
     float-evaluated bound dominates every float-evaluated v_j (a
     1e-12 relative cushion absorbs the round-off and libm's exp being
     faithful rather than correctly rounded).  When the bound cannot
     strictly beat the incumbent, no remaining candidate can change
     either the cell value or the first-strict-max index, and the scan
     stops — bit-identical by construction, no structural assumption
     about where the argmax sits.  The exp-bearing check runs only
     behind a free arithmetic gate built from the current candidate's
     own psuc. *)
  (* The scan below is the program's hottest loop (hundreds of
     thousands of iterations per solve), so it reads the arrays with
     [unsafe_get]: every index is bounded by construction ([idx <= ihi
     <= x <= x_max], [n + 1 <= x_max - x + 1], interpolation indices
     capped at [g_points]), and each access mirrors a bounds-checked
     one in the reference scan ([g_at] inlined verbatim, same
     operation order, so results stay bit-identical). *)
  let scan x n ihi =
    let e_base = (float_of_int (x_max - x) *. u) +. (float_of_int n *. c) in
    let g_base = g_at e_base in
    let chunk_x = Array.unsafe_get chunk_of x in
    let best_v = ref neg_infinity and best_i = ref 1 in
    let i = ref 1 in
    (* Next-row cursor: candidate idx reads value.((x - idx) * stride
       + n + 1); consecutive candidates step it down one row. *)
    let vi = ref (((x - 1) * stride) + n + 1) in
    let live = ref true in
    while !live && !i <= ihi do
      let idx = !i in
      let chunk = Array.unsafe_get chunk_of idx in
      let t = (e_base +. chunk +. c) /. step in
      let k = int_of_float t in
      let k = if k >= g_points then g_points else k in
      let gk = Array.unsafe_get g k in
      let ge = gk +. ((t -. float_of_int k) *. (Array.unsafe_get g (k + 1) -. gk)) in
      let psuc = exp (g_base -. ge) in
      let v = psuc *. (chunk +. Array.unsafe_get value !vi) in
      if v > !best_v then begin
        best_v := v;
        best_i := idx
      end;
      if prune && idx < ihi then begin
        let a_ub = chunk_x +. Array.unsafe_get qmax (!vi - stride) in
        (* Cheap gate: this candidate's own psuc over-estimates every
           remaining one (up to round-off the rigorous bound absorbs);
           only when it says the tail is dead do we spend the one exp
           on the rigorous bound. *)
        if psuc *. a_ub <= !best_v then begin
          let e_next = e_base +. Array.unsafe_get chunk_of (idx + 1) +. c in
          let k0 =
            let k = int_of_float (e_next /. step) in
            if k >= g_points then g_points else k
          in
          if exp (g_base -. Array.unsafe_get g_min k0) *. (1. +. 1e-12) *. a_ub <= !best_v then
            live := false
        end
      end;
      vi := !vi - stride;
      incr i
    done;
    scanned := !scanned + (if !live then !i - 1 else !i);
    value.((x * stride) + n) <- !best_v;
    best.((x * stride) + n) <- !best_i;
    (* Extend the row's prefix maxima for later cells' bounds. *)
    qmax.((x * stride) + n) <-
      Float.max (!best_v -. chunk_x) qmax.(((x - 1) * stride) + n)
  in
  for x = 1 to x_max do
    for n = 0 to x_max - x do
      let i_max = if x <= 2 * chunk_cap then x else chunk_cap in
      scan x n i_max
    done
  done;
  Metrics.incr solves;
  Metrics.add cells (x_max * (x_max + 1) / 2);
  Metrics.add candidates !scanned;
  if truncated then Metrics.incr truncations;
  let chunks =
    let rec collect x n acc =
      if x = 0 then List.rev acc
      else begin
        let i = best.((x * stride) + n) in
        collect (x - i) (n + 1) (float_of_int i *. u :: acc)
      end
    in
    collect x_max 0 []
  in
  {
    chunks;
    expected_work = value.(x_max * stride);
    quantum = u;
    truncated;
    valid_work = (if truncated then planned /. 2. else planned);
  }
