module Distribution = Ckpt_distributions.Distribution

type t = {
  dist : Distribution.t;
  checkpoint : float;
  recovery : float;
  downtime : float;
}

let create ~dist ~checkpoint ~recovery ~downtime =
  if checkpoint < 0. then invalid_arg "Dp_context.create: negative checkpoint cost";
  if recovery < 0. then invalid_arg "Dp_context.create: negative recovery cost";
  if downtime < 0. then invalid_arg "Dp_context.create: negative downtime";
  { dist; checkpoint; recovery; downtime }

let psuc t ~age ~duration = Distribution.conditional_survival t.dist ~age ~duration

let expected_tlost t ~age ~window = Distribution.expected_tlost t.dist ~age ~window

let expected_trec t =
  if t.recovery = 0. then t.downtime
  else begin
    let p = psuc t ~age:0. ~duration:t.recovery in
    let lost = expected_tlost t ~age:0. ~window:t.recovery in
    if p <= 0. then infinity
    else t.downtime +. t.recovery +. ((1. -. p) /. p *. (t.downtime +. lost))
  end
