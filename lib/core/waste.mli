(** First-order waste analysis of periodic checkpointing.

    The classical back-of-envelope behind Young's and Daly's periods:
    with period [T], checkpoint cost [C] and platform MTBF [M], the
    fraction of time not spent on useful work is, to first order,

    [waste(T) = C/T  +  (T + C)/(2M) (approx)],

    checkpointing overhead plus expected re-execution after failures.
    Minimizing gives [T_opt = sqrt(2 C M)] and
    [waste at T_opt ~ sqrt(2 C / M)].  These formulas explain the shape of
    every scaling figure in the paper: the platform MTBF is [mu/p], so
    the minimal waste grows like [sqrt p] until checkpointing consumes
    the machine.  Exposed for analysis, documentation and as an
    independent cross-check of the simulator (tests compare these
    predictions against measured engine runs). *)

val waste_fraction : period:float -> checkpoint:float -> platform_mtbf:float -> float
(** First-order waste of the periodic policy; in [\[0, 1\]] by
    clamping (the approximation is only meaningful when small).
    @raise Invalid_argument on non-positive period or MTBF. *)

val optimal_period : checkpoint:float -> platform_mtbf:float -> float
(** [sqrt (2 C M)] — Young's period. *)

val minimal_waste : checkpoint:float -> platform_mtbf:float -> float
(** [waste_fraction] at the optimal period. *)

val expected_makespan : work:float -> checkpoint:float -> platform_mtbf:float -> float
(** [work / (1 - minimal_waste)]: the first-order makespan prediction
    for an optimally checkpointed job. *)

val usable_processor_limit : checkpoint:float -> processor_mtbf:float -> int
(** The enrollment beyond which first-order waste exceeds 100% — the
    paper's motivation for studying enrollment limits (Section 8):
    [p] such that [sqrt (2 C p / mu) = 1], i.e. [p = mu / (2 C)]. *)
