(* Atomic artifact writes (tempfile + fsync + rename) and the two
   directory/cleanup helpers every writer needs next to them.  Kept
   dependency-free (unix only) so the telemetry, experiments and bench
   layers can all route their artifacts through one implementation. *)

let mkdir_p path =
  let rec go path =
    if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Sys.mkdir path 0o755
      with Sys_error _ as e ->
        (* A concurrent creator winning the race is fine; anything else
           (permission denied, a plain file in the way) must surface
           here rather than as a confusing failure at write time. *)
        if not (try Sys.is_directory path with Sys_error _ -> false) then raise e
    end
  in
  go path

(* Unique-enough tempfile names: the pid separates processes, the
   counter separates domains/threads within one, and O_EXCL below
   catches any collision that survives both. *)
let temp_counter = Atomic.make 0

let open_temp ~dir ~base =
  let rec attempt retries =
    let name =
      Printf.sprintf ".%s.%d.%d.tmp" base (Unix.getpid ())
        (Atomic.fetch_and_add temp_counter 1)
    in
    let tmp = Filename.concat dir name in
    match Unix.openfile tmp [ O_WRONLY; O_CREAT; O_EXCL; O_CLOEXEC ] 0o644 with
    | fd -> (tmp, fd)
    | exception Unix.Unix_error (EEXIST, _, _) when retries > 0 -> attempt (retries - 1)
  in
  attempt 100

(* Make the rename itself durable where the platform allows: fsync the
   containing directory.  Failure (filesystems that reject fsync on a
   directory fd) costs durability of the very last write only, never
   atomicity, so it is not an error. *)
let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY; O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let write ?(fsync = true) ~path contents =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp, fd = open_temp ~dir ~base:(Filename.basename path) in
  match
    let oc = Unix.out_channel_of_descr fd in
    output_string oc contents;
    flush oc;
    if fsync then Unix.fsync fd;
    close_out oc
  with
  | () ->
      (try Sys.rename tmp path
       with e ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      if fsync then fsync_dir dir
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* Exclusive creation is the one primitive where the *existence* of the
   file, not its contents, carries the information: sweep workers use it
   as a filesystem mutex (claim markers).  The contents (pid/host/time
   payload) are written after the O_EXCL create wins, so a concurrent
   reader may briefly observe an empty claim — callers must treat an
   unparsable payload as a fresh claim until its TTL expires, never as
   corruption. *)
let create_exclusive ~path contents =
  mkdir_p (Filename.dirname path);
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_EXCL; O_CLOEXEC ] 0o644 with
  | exception Unix.Unix_error (EEXIST, _, _) -> false
  | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  | fd ->
      let oc = Unix.out_channel_of_descr fd in
      (match
         output_string oc contents;
         flush oc;
         close_out oc
       with
      | () -> ()
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Sys.remove path with Sys_error _ -> ());
          raise e);
      true

let modification_time path =
  match Unix.stat path with
  | { Unix.st_mtime; _ } -> Some st_mtime
  | exception Unix.Unix_error _ -> None

let remove path =
  try Unix.unlink path with
  | Unix.Unix_error (ENOENT, _, _) -> ()
  | Unix.Unix_error (e, _, _) -> raise (Sys_error (path ^ ": " ^ Unix.error_message e))

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | contents -> Some contents
      | exception (Sys_error _ | End_of_file) -> None)
