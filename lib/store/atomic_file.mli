(** Crash-safe filesystem primitives, shared by every artifact writer
    in the repository (experiment CSVs, provenance sidecars, bench
    JSON, sweep checkpoints).

    The contract follows the concurrency invariants of distributed
    job-safety checklists (see SNIPPETS.md):

    - {e atomic state writes}: a reader of [path] sees either the
      complete previous contents or the complete new contents, never a
      torn prefix — enforced by writing a unique tempfile in the same
      directory, fsyncing it, and [rename]-ing it over [path];
    - {e idempotent cleanup}: {!remove} on a missing file is a no-op,
      so two workers cleaning up the same artifact cannot race each
      other into an error. *)

val mkdir_p : string -> unit
(** Create [path] and any missing parents (mode [0o755]).  Existing
    directories — including ones created concurrently between the
    existence check and the [mkdir] — are not an error.
    @raise Sys_error when creation genuinely fails (permission denied,
    a non-directory in the way), instead of deferring the failure to a
    confusing later write. *)

val write : ?fsync:bool -> path:string -> string -> unit
(** [write ~path contents] atomically replaces [path] with [contents]:
    parent directories are created as needed, the bytes go to a unique
    tempfile beside [path], the tempfile is fsynced ([fsync] defaults
    to [true]; pass [false] only where durability does not matter,
    e.g. tests), and the tempfile is renamed over [path].  Concurrent
    writers each rename a complete file, so the loser of the race is
    overwritten whole, never interleaved.  On any failure the tempfile
    is removed and the exception re-raised; [path] keeps its previous
    contents. *)

val create_exclusive : path:string -> string -> bool
(** [create_exclusive ~path contents] attempts to create [path] with
    [O_CREAT|O_EXCL] — the POSIX primitive whose success is guaranteed
    atomic even over NFS-style shared filesystems — and writes
    [contents] into it on success.  Returns [true] when this process
    created the file (it "won" the race), [false] when the file already
    existed.  Unlike {!write}, the existence of the file is the signal:
    sweep workers use it as a cooperative lock (claim marker).  A
    concurrent reader can observe the file before [contents] lands, so
    payloads are advisory; readers must tolerate short or empty files.
    @raise Sys_error on genuine failures (permission denied, missing
    parent that could not be created). *)

val modification_time : string -> float option
(** [mtime] of [path] in seconds since the epoch, or [None] when the
    file is absent.  Used for TTL decisions on claim markers whose
    payload is missing or unparsable. *)

val remove : string -> unit
(** Idempotent unlink: removing a file that does not exist is a no-op
    (other failures — e.g. permission denied — still raise). *)

val read : string -> string option
(** The whole contents of [path], or [None] when the file is absent or
    unreadable. *)
