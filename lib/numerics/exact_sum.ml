(* Fixed-point superaccumulator.

   The sum is stored as limbs.(i) * 2^(32*i - bias), i in [0, limbs_n).
   bias = 1152 places bit 0 of limb 0 at 2^-1152, below the smallest
   subnormal contribution (2^-1074, and frexp-decomposed mantissas
   reach down to 2^-1126); the top limb sits above 2^1024, so every
   finite double's 53-bit mantissa lands strictly inside the array.

   Canonical form: limbs 0 .. limbs_n-2 lie in [0, 2^32); the top limb
   carries the (possibly negative) overflow.  [normalize] restores this
   with floor-division carries, so the canonical form is a unique
   function of the exact value — which is what makes merge trees
   order-independent at the bit level.  Every exported value is
   canonical. *)

let limbs_n = 69
let bias = 1152
let mask32 = 0xFFFFFFFFL

type t = int64 array

let zero : t = Array.make limbs_n 0L
let is_zero t = Array.for_all (fun l -> l = 0L) t
let equal (a : t) (b : t) = a = b

let normalize (t : int64 array) =
  let carry = ref 0L in
  for i = 0 to limbs_n - 2 do
    let v = Int64.add t.(i) !carry in
    t.(i) <- Int64.logand v mask32;
    carry := Int64.shift_right v 32
  done;
  t.(limbs_n - 1) <- Int64.add t.(limbs_n - 1) !carry;
  t

(* Deposit the 53-bit mantissa of [x] (sign included) at its exact bit
   position.  The mantissa spans at most three 32-bit limbs. *)
let deposit (t : int64 array) x =
  let m, e = Float.frexp (Float.abs x) in
  let m53 = Int64.of_float (Float.ldexp m 53) in
  let pos = e - 53 + bias in
  (* pos >= 26 for every nonzero double, incl. subnormals *)
  let idx = pos / 32 and shift = pos mod 32 in
  let c0 = Int64.logand (Int64.shift_left m53 shift) mask32 in
  let c1 = Int64.logand (Int64.shift_right_logical m53 (32 - shift)) mask32 in
  let c2 = if shift = 0 then 0L else Int64.shift_right_logical m53 (64 - shift) in
  let op = if x < 0. then Int64.sub else Int64.add in
  t.(idx) <- op t.(idx) c0;
  t.(idx + 1) <- op t.(idx + 1) c1;
  t.(idx + 2) <- op t.(idx + 2) c2;
  normalize t

let add (t : t) x : t =
  if not (Float.is_finite x) then invalid_arg "Exact_sum.add: non-finite input";
  if x = 0. then t else deposit (Array.copy t) x

let add_sq (t : t) x : t =
  if not (Float.is_finite x) then invalid_arg "Exact_sum.add_sq: non-finite input";
  if x = 0. then t
  else begin
    let hi = x *. x in
    if not (Float.is_finite hi) then invalid_arg "Exact_sum.add_sq: square overflows";
    let lo = Float.fma x x (-.hi) in
    let t = deposit (Array.copy t) hi in
    if lo = 0. then t else deposit t lo
  end

let merge (a : t) (b : t) : t = normalize (Array.init limbs_n (fun i -> Int64.add a.(i) b.(i)))

let total (t : t) =
  let acc = ref 0. in
  for i = limbs_n - 1 downto 0 do
    if t.(i) <> 0L then
      acc := !acc +. Float.ldexp (Int64.to_float t.(i)) ((32 * i) - bias)
  done;
  !acc

let to_tokens (t : t) =
  let pairs = ref [] in
  for i = limbs_n - 1 downto 0 do
    if t.(i) <> 0L then pairs := string_of_int i :: Int64.to_string t.(i) :: !pairs
  done;
  string_of_int (List.length !pairs / 2) :: !pairs

let of_tokens = function
  | [] -> None
  | k :: rest -> (
      match int_of_string_opt k with
      | Some k when k >= 0 && k <= limbs_n ->
          let t = Array.make limbs_n 0L in
          let rec take n rest =
            if n = 0 then Some (t, rest)
            else
              match rest with
              | i :: v :: rest -> (
                  match (int_of_string_opt i, Int64.of_string_opt v) with
                  | Some i, Some v when i >= 0 && i < limbs_n ->
                      t.(i) <- v;
                      take (n - 1) rest
                  | _ -> None)
              | _ -> None
          in
          (* Normalize on load: a canonical writer makes this a no-op,
             but a hand-edited file must still read as a valid value. *)
          Option.map (fun (t, rest) -> (normalize t, rest)) (take k rest)
      | _ -> None)

let serialize t = String.concat " " (to_tokens t)

let deserialize s =
  match of_tokens (String.split_on_char ' ' (String.trim s)) with
  | Some (t, []) -> Some t
  | _ -> None
