(** Online and batch summary statistics (Section 4.1 reports averages
    and standard deviations of makespan degradations). *)

type t
(** Online accumulator (Welford's algorithm): numerically stable mean
    and variance in one pass. *)

val empty : t
val add : t -> float -> t
val add_all : t -> float list -> t

(** [merge a b] summarizes the union of the observations behind [a] and
    [b] (Chan et al.'s pairwise Welford combine): counts add, min/max
    combine exactly, mean and variance agree with a single sequential
    pass up to floating-point rounding.  Either side may be {!empty},
    in which case the other side is returned unchanged.  This is the
    reduction step of the parallel evaluation harness: per-replicate
    accumulators are merged in replicate order. *)
val merge : t -> t -> t
val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val std : t -> float
val min_value : t -> float
val max_value : t -> float

val of_array : float array -> t

val serialize : t -> string
(** One line, whitespace-separated, floats in hexadecimal ([%h])
    notation: {!deserialize} reproduces the accumulator bit for bit
    (the persistence format of the resumable sweep harness). *)

val deserialize : string -> t option
(** Inverse of {!serialize}; [None] on malformed input (a torn or
    corrupted checkpoint must read as "absent", never crash). *)

val mean_confidence_interval : ?confidence:float -> t -> float * float
(** [(lo, hi)] for the mean at the given [confidence] (default 0.95),
    using the normal approximation [mean ± z * std / sqrt n] —
    adequate for the sample sizes of the evaluation methodology
    (tens to hundreds of traces).  [(nan, nan)] with fewer than two
    observations.
    @raise Invalid_argument if [confidence] is outside (0, 1). *)

(** Component-wise distributional accumulator over fixed-dimension
    observations — the engine's waste decomposition threaded through
    the evaluation reduce.  Per component it tracks exact sums and
    sums of squares ({!Exact_sum}), exact min/max, and a log-scale
    histogram ({!Log_hist}) for quantile estimates.  Unlike the scalar
    Chan/Welford {!merge} above, [Vector.merge] is exactly commutative
    and associative, so stripe width and scheduler choice cannot
    perturb a single bit of the reduced vector. *)
module Vector : sig
  type t

  val create : dim:int -> t
  (** Fresh accumulator for [dim]-component observations.
      @raise Invalid_argument if [dim < 1]. *)

  val dim : t -> int
  val count : t -> int

  val add : t -> float array -> t
  (** Record one observation.
      @raise Invalid_argument on dimension mismatch or any non-finite
      component (a non-finite metric would mean the engine's accounting
      identity already failed — refuse loudly rather than poison the
      table). *)

  val merge : t -> t -> t
  (** Exact: commutative and associative at the bit level.
      @raise Invalid_argument on dimension mismatch. *)

  val mean : t -> int -> float
  (** Mean of component [i], from the exact sum; [nan] when empty. *)

  val variance : t -> int -> float
  (** Unbiased sample variance of component [i]; [nan] below two
      observations. *)

  val std : t -> int -> float
  val min_value : t -> int -> float
  val max_value : t -> int -> float

  val quantile : t -> int -> float -> float
  (** Histogram-estimated [p]-quantile of component [i] (geometric
      bucket midpoint clamped into the observed range); [nan] when
      empty. *)

  val ci_half_width : ?confidence:float -> t -> int -> float
  (** Normal-approximation half-width [z * std / sqrt n] for the mean
      of component [i]; [nan] below two observations.
      @raise Invalid_argument if [confidence] is outside (0, 1). *)

  val to_tokens : t -> string list
  val of_tokens : string list -> (t * string list) option

  val serialize : t -> string
  (** One line, whitespace-separated, floats in [%h] notation:
      {!deserialize} reproduces the accumulator bit for bit. *)

  val deserialize : string -> t option
  val equal : t -> t -> bool
end

val quantile : float array -> float -> float
(** [quantile data p] is the [p]-quantile ([0 <= p <= 1]) with linear
    interpolation between order statistics.  [data] need not be sorted;
    it is not modified.
    @raise Invalid_argument on empty data or [p] outside [0, 1]. *)

val median : float array -> float
