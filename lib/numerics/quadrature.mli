(** Numerical integration.

    The simulator needs expectations such as
    [E(Tlost(x|tau)) = (1/(F(tau+x)-F(tau))) * Int_0^x t f(tau+t) dt]
    for distributions without closed forms (Weibull, LogNormal,
    empirical mixtures). *)

val adaptive_simpson :
  ?tolerance:float -> ?max_depth:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** [adaptive_simpson ~f ~lo ~hi ()] integrates [f] on [\[lo, hi\]] by
    recursive Simpson subdivision with Richardson error control. *)

val gauss_legendre_32 : f:(float -> float) -> lo:float -> hi:float -> float
(** Fixed 32-point Gauss-Legendre rule on [\[lo, hi\]]; exact for
    polynomials of degree 63, cheap enough for inner loops. *)

val integrate_to_infinity :
  ?tolerance:float -> f:(float -> float) -> lo:float -> unit -> float
(** [integrate_to_infinity ~f ~lo ()] integrates an eventually-decaying
    [f] on [\[lo, inf)] by doubling panels until a panel contributes
    less than [tolerance] relative mass. *)
