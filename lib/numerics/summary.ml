type t = {
  count : int;
  mean : float;
  m2 : float;  (* sum of squared deviations from the running mean *)
  min_v : float;
  max_v : float;
}

let empty = { count = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { count; mean; m2; min_v = Float.min t.min_v x; max_v = Float.max t.max_v x }

let add_all t xs = List.fold_left add t xs

(* Chan et al.'s pairwise update: combine two Welford accumulators as
   if their observations had been seen in one pass. *)
let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let na = float_of_int a.count and nb = float_of_int b.count in
    let count = a.count + b.count in
    let n = float_of_int count in
    let delta = b.mean -. a.mean in
    {
      count;
      mean = a.mean +. (delta *. nb /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }
  end
let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let std t = sqrt (variance t)
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v

let of_array a = Array.fold_left add empty a

(* Hexadecimal float notation round-trips every finite and infinite
   value bit for bit, which is what lets the sweep harness resume with
   tables identical to an uninterrupted run. *)
let serialize t =
  Printf.sprintf "%d %h %h %h %h" t.count t.mean t.m2 t.min_v t.max_v

let deserialize s =
  match String.split_on_char ' ' (String.trim s) with
  | [ count; mean; m2; min_v; max_v ] -> (
      match
        ( int_of_string_opt count,
          float_of_string_opt mean,
          float_of_string_opt m2,
          float_of_string_opt min_v,
          float_of_string_opt max_v )
      with
      | Some count, Some mean, Some m2, Some min_v, Some max_v when count >= 0 ->
          Some { count; mean; m2; min_v; max_v }
      | _ -> None)
  | _ -> None

let mean_confidence_interval ?(confidence = 0.95) t =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Summary.mean_confidence_interval: confidence outside (0, 1)";
  if t.count < 2 then (nan, nan)
  else begin
    let z = Special.normal_quantile (0.5 +. (confidence /. 2.)) in
    let half = z *. std t /. sqrt (float_of_int t.count) in
    (t.mean -. half, t.mean +. half)
  end

let quantile data p =
  let n = Array.length data in
  if n = 0 then invalid_arg "Summary.quantile: empty data";
  if p < 0. || p > 1. then invalid_arg "Summary.quantile: p outside [0, 1]";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = int_of_float (floor h) in
    let i = if i >= n - 1 then n - 2 else i in
    let frac = h -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let median data = quantile data 0.5
