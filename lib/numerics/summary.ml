type t = {
  count : int;
  mean : float;
  m2 : float;  (* sum of squared deviations from the running mean *)
  min_v : float;
  max_v : float;
}

let empty = { count = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { count; mean; m2; min_v = Float.min t.min_v x; max_v = Float.max t.max_v x }

let add_all t xs = List.fold_left add t xs

(* Chan et al.'s pairwise update: combine two Welford accumulators as
   if their observations had been seen in one pass. *)
let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let na = float_of_int a.count and nb = float_of_int b.count in
    let count = a.count + b.count in
    let n = float_of_int count in
    let delta = b.mean -. a.mean in
    {
      count;
      mean = a.mean +. (delta *. nb /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }
  end
let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let std t = sqrt (variance t)
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v

let of_array a = Array.fold_left add empty a

(* Hexadecimal float notation round-trips every finite and infinite
   value bit for bit, which is what lets the sweep harness resume with
   tables identical to an uninterrupted run. *)
let serialize t =
  Printf.sprintf "%d %h %h %h %h" t.count t.mean t.m2 t.min_v t.max_v

let deserialize s =
  match String.split_on_char ' ' (String.trim s) with
  | [ count; mean; m2; min_v; max_v ] -> (
      match
        ( int_of_string_opt count,
          float_of_string_opt mean,
          float_of_string_opt m2,
          float_of_string_opt min_v,
          float_of_string_opt max_v )
      with
      | Some count, Some mean, Some m2, Some min_v, Some max_v when count >= 0 ->
          Some { count; mean; m2; min_v; max_v }
      | _ -> None)
  | _ -> None

let mean_confidence_interval ?(confidence = 0.95) t =
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Summary.mean_confidence_interval: confidence outside (0, 1)";
  if t.count < 2 then (nan, nan)
  else begin
    let z = Special.normal_quantile (0.5 +. (confidence /. 2.)) in
    let half = z *. std t /. sqrt (float_of_int t.count) in
    (t.mean -. half, t.mean +. half)
  end

(* Component-wise distributional accumulator over fixed-dimension
   observations (the engine's waste decomposition).  Moments come from
   exact superaccumulators and histograms from integer buckets, so —
   unlike the scalar Chan/Welford combine above — [Vector.merge] is
   exactly commutative and associative: the stripe reduce produces
   bit-identical vectors whatever the tree shape. *)
module Vector = struct
  type component = {
    sum : Exact_sum.t;
    sumsq : Exact_sum.t;
    c_min : float;
    c_max : float;
    hist : Log_hist.t;
  }

  type nonrec t = { obs : int; comps : component array }

  let empty_component =
    { sum = Exact_sum.zero; sumsq = Exact_sum.zero; c_min = infinity; c_max = neg_infinity;
      hist = Log_hist.empty }

  let create ~dim =
    if dim < 1 then invalid_arg "Summary.Vector.create: dim < 1";
    { obs = 0; comps = Array.make dim empty_component }

  let dim t = Array.length t.comps
  let count t = t.obs

  let add t xs =
    if Array.length xs <> dim t then invalid_arg "Summary.Vector.add: dimension mismatch";
    Array.iter
      (fun x ->
        if not (Float.is_finite x) then invalid_arg "Summary.Vector.add: non-finite component")
      xs;
    {
      obs = t.obs + 1;
      comps =
        Array.mapi
          (fun i c ->
            let x = xs.(i) in
            {
              sum = Exact_sum.add c.sum x;
              sumsq = Exact_sum.add_sq c.sumsq x;
              c_min = Float.min c.c_min x;
              c_max = Float.max c.c_max x;
              hist = Log_hist.add c.hist x;
            })
          t.comps;
    }

  let merge a b =
    if dim a <> dim b then invalid_arg "Summary.Vector.merge: dimension mismatch";
    {
      obs = a.obs + b.obs;
      comps =
        Array.map2
          (fun ca cb ->
            {
              sum = Exact_sum.merge ca.sum cb.sum;
              sumsq = Exact_sum.merge ca.sumsq cb.sumsq;
              c_min = Float.min ca.c_min cb.c_min;
              c_max = Float.max ca.c_max cb.c_max;
              hist = Log_hist.merge ca.hist cb.hist;
            })
          a.comps b.comps;
    }

  let comp t i =
    if i < 0 || i >= dim t then invalid_arg "Summary.Vector: component index out of range";
    t.comps.(i)

  let mean t i =
    let c = comp t i in
    if t.obs = 0 then nan else Exact_sum.total c.sum /. float_of_int t.obs

  let variance t i =
    let c = comp t i in
    if t.obs < 2 then nan
    else begin
      let n = float_of_int t.obs in
      let s = Exact_sum.total c.sum in
      (* sumsq - sum^2/n can round slightly negative when the spread is
         tiny relative to the mean; clamp so std stays real. *)
      Float.max 0. ((Exact_sum.total c.sumsq -. (s *. s /. n)) /. (n -. 1.))
    end

  let std t i = sqrt (variance t i)

  let min_value t i = if t.obs = 0 then nan else (comp t i).c_min
  let max_value t i = if t.obs = 0 then nan else (comp t i).c_max
  let quantile t i p = Log_hist.quantile (comp t i).hist p

  let ci_half_width ?(confidence = 0.95) t i =
    if confidence <= 0. || confidence >= 1. then
      invalid_arg "Summary.Vector.ci_half_width: confidence outside (0, 1)";
    if t.obs < 2 then nan
    else
      Special.normal_quantile (0.5 +. (confidence /. 2.))
      *. std t i /. sqrt (float_of_int t.obs)

  let to_tokens t =
    string_of_int (dim t) :: string_of_int t.obs
    :: List.concat_map
         (fun c ->
           (Printf.sprintf "%h" c.c_min :: Printf.sprintf "%h" c.c_max
           :: Exact_sum.to_tokens c.sum)
           @ Exact_sum.to_tokens c.sumsq @ Log_hist.to_tokens c.hist)
         (Array.to_list t.comps)

  let of_tokens = function
    | d :: obs :: rest -> (
        match (int_of_string_opt d, int_of_string_opt obs) with
        | Some d, Some obs when d >= 1 && obs >= 0 ->
            let rec take n acc rest =
              if n = 0 then Some ({ obs; comps = Array.of_list (List.rev acc) }, rest)
              else
                match rest with
                | c_min :: c_max :: rest -> (
                    match (float_of_string_opt c_min, float_of_string_opt c_max) with
                    | Some c_min, Some c_max -> (
                        match Exact_sum.of_tokens rest with
                        | Some (sum, rest) -> (
                            match Exact_sum.of_tokens rest with
                            | Some (sumsq, rest) -> (
                                match Log_hist.of_tokens rest with
                                | Some (hist, rest) ->
                                    take (n - 1)
                                      ({ sum; sumsq; c_min; c_max; hist } :: acc)
                                      rest
                                | None -> None)
                            | None -> None)
                        | None -> None)
                    | _ -> None)
                | _ -> None
            in
            take d [] rest
        | _ -> None)
    | _ -> None

  let serialize t = String.concat " " (to_tokens t)

  let deserialize s =
    match of_tokens (String.split_on_char ' ' (String.trim s)) with
    | Some (t, []) -> Some t
    | _ -> None

  let equal a b = serialize a = serialize b
end

let quantile data p =
  let n = Array.length data in
  if n = 0 then invalid_arg "Summary.quantile: empty data";
  if p < 0. || p > 1. then invalid_arg "Summary.quantile: p outside [0, 1]";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = int_of_float (floor h) in
    let i = if i >= n - 1 then n - 2 else i in
    let frac = h -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let median data = quantile data 0.5
