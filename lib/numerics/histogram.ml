type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable total : int;
  mutable under : int;
  mutable over : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; bins = Array.make bins 0; total = 0; under = 0; over = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let n = Array.length t.bins in
    let i = int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo)) in
    let i = if i >= n then n - 1 else i in
    t.bins.(i) <- t.bins.(i) + 1
  end

let count t = t.total

let check_index t i =
  if i < 0 || i >= Array.length t.bins then invalid_arg "Histogram: bin index out of range"

let bin_count t i =
  check_index t i;
  t.bins.(i)

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.bins)

let density t i =
  check_index t i;
  if t.total = 0 then nan
  else float_of_int t.bins.(i) /. (float_of_int t.total *. bin_width t)

let bin_center t i =
  check_index t i;
  t.lo +. ((float_of_int i +. 0.5) *. bin_width t)

let underflow t = t.under
let overflow t = t.over

let chi_square_uniform t =
  let n = Array.length t.bins in
  let in_range = t.total - t.under - t.over in
  if in_range = 0 then 0.
  else begin
    let expected = float_of_int in_range /. float_of_int n in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. t.bins
  end
