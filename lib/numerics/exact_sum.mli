(** Order-independent exact accumulation of doubles.

    A fixed-point superaccumulator: the running sum is held as an array
    of 32-bit limbs (in int64 cells) spanning the full double exponent
    range, so adding a finite double is *exact* — no rounding ever
    happens on the accumulation side.  Because integer addition is
    associative and commutative and the representation is canonical,
    {!merge} trees of any shape over the same observation multiset
    produce bit-identical accumulators.  This is what lets the
    evaluation harness promise bit-identical distributional tables
    across [CKPT_SWEEP_STRIPE] widths and scheduler choices: the
    reduction order genuinely does not matter.

    The only rounding is the final {!total} readout, which is a
    deterministic function of the exact sum (top-down limb fold,
    within a few ulps of correctly rounded). *)

type t
(** Canonical exact accumulator.  Structural equality ([=]) coincides
    with value equality. *)

val zero : t
val is_zero : t -> bool

val add : t -> float -> t
(** Exact.  Accepts any finite double, positive or negative.
    @raise Invalid_argument on nan or infinite input. *)

val add_sq : t -> float -> t
(** [add_sq t x] adds [x * x] with the rounding error compensated via
    [Float.fma] (2MultFMA), so the squared term is exact whenever
    [x * x] neither overflows nor falls into the subnormal range.  The
    contribution is in every case a deterministic function of [x]
    alone, preserving order-independence.
    @raise Invalid_argument if [x] is not finite or [x * x] overflows. *)

val merge : t -> t -> t
(** Exact sum of the two accumulators; commutative and associative at
    the bit level. *)

val total : t -> float
(** Deterministic float readout of the exact sum. *)

val equal : t -> t -> bool

val to_tokens : t -> string list
(** Sparse, self-delimiting token encoding ([k] pairs of limb index and
    limb value); concatenable into larger token streams. *)

val of_tokens : string list -> (t * string list) option
(** Parse a {!to_tokens} prefix, returning the remaining tokens; [None]
    on malformed input.  Round-trips bit-identically. *)

val serialize : t -> string
val deserialize : string -> t option
