(** Mergeable log-scale histogram.

    Power-of-two buckets: bucket [i] holds observations in
    [2^(i-offset), 2^(i-offset+1)); 64 buckets centred on 1.0 cover
    ~1e-9 .. ~4e9 (microseconds to decades, in seconds).  Out-of-range
    values clamp to the end buckets and non-positive values land in
    bucket 0.  This is the same bucketing the telemetry registry uses
    ({!Metrics} delegates here), so histograms built by the evaluation
    harness and by live metering are directly comparable.

    All state is integer counts plus exact min/max, so {!merge} is
    exactly commutative and associative: merging per-stripe histograms
    in any tree order yields bit-identical results. *)

type t = { buckets : int array; count : int; min_v : float; max_v : float }

val n_buckets : int
val bucket_of_value : float -> int
val bucket_lower : int -> float
(** Lower bound [2^(i-offset)] of bucket [i]. *)

val empty : t
val add : t -> float -> t
val merge : t -> t -> t

val quantile : t -> float -> float
(** Estimated [p]-quantile: walk to the bucket containing the rank and
    report its geometric midpoint, clamped into the observed
    [min_v, max_v] range (min/max are exact observations while
    midpoints are bucket estimates).  [nan] when empty; exact [min_v] /
    [max_v] for [p <= 0] / [p >= 1]. *)

val to_tokens : t -> string list
(** Sparse self-delimiting token encoding; floats in [%h] notation so
    the round trip is bit-exact. *)

val of_tokens : string list -> (t * string list) option
val serialize : t -> string
val deserialize : string -> t option
