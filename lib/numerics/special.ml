(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos_g = 7.
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: argument must be positive";
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let gamma x = exp (log_gamma x)

let max_iterations = 500
let epsilon = 1e-15

(* Series expansion of P(a, x), valid and fast for x < a + 1. *)
let lower_gamma_series ~a ~x =
  let sum = ref (1. /. a) in
  let term = ref (1. /. a) in
  let n = ref 1 in
  while abs_float !term > abs_float !sum *. epsilon && !n < max_iterations do
    term := !term *. x /. (a +. float_of_int !n);
    sum := !sum +. !term;
    incr n
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

(* Continued fraction for Q(a, x) = 1 - P(a, x), for x >= a + 1
   (modified Lentz algorithm). *)
let upper_gamma_cf ~a ~x =
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let n = ref 1 in
  let continue = ref true in
  while !continue && !n < max_iterations do
    let an = -.float_of_int !n *. (float_of_int !n -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if abs_float !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1. /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.) < epsilon then continue := false;
    incr n
  done;
  !h *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let lower_incomplete_gamma_regularized ~a ~x =
  if a <= 0. then invalid_arg "Special.lower_incomplete_gamma_regularized: a <= 0";
  if x < 0. then invalid_arg "Special.lower_incomplete_gamma_regularized: x < 0";
  if x = 0. then 0.
  else if x < a +. 1. then lower_gamma_series ~a ~x
  else 1. -. upper_gamma_cf ~a ~x

let erf x =
  if x = 0. then 0.
  else
    let v = lower_incomplete_gamma_regularized ~a:0.5 ~x:(x *. x) in
    if x > 0. then v else -.v

let erfc x = 1. -. erf x

let normal_cdf ~mean ~std x =
  0.5 *. erfc (-.(x -. mean) /. (std *. sqrt 2.))

(* Acklam's inverse normal CDF approximation. *)
let acklam p =
  let a = [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
             1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |] in
  let b = [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
             6.680131188771972e+01; -1.328068155288572e+01 |] in
  let c = [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
             -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |] in
  let d = [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
             3.754408661907416e+00 |] in
  let p_low = 0.02425 in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  else if p <= 1. -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
  else
    let q = sqrt (-2. *. log (1. -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.))

let normal_quantile p =
  if p <= 0. || p >= 1. then
    invalid_arg "Special.normal_quantile: probability must be in (0, 1)";
  let x = acklam p in
  (* One Newton polish step using the analytic CDF/PDF. *)
  let e = normal_cdf ~mean:0. ~std:1. x -. p in
  let pdf = exp (-0.5 *. x *. x) /. sqrt (2. *. Float.pi) in
  if pdf > 0. then x -. (e /. pdf) else x
