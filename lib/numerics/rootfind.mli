(** One-dimensional root finding and minimization. *)

exception No_bracket
(** Raised when the supplied interval does not bracket a root. *)

val bisect :
  ?tolerance:float -> ?max_iterations:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** [bisect ~f ~lo ~hi ()] finds a root of [f] on [\[lo, hi\]] by
    bisection.  [f lo] and [f hi] must have opposite signs (a zero at
    an endpoint is returned immediately).
    @raise No_bracket if the signs agree. *)

val brent :
  ?tolerance:float -> ?max_iterations:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** Brent's method: inverse quadratic interpolation safeguarded by
    bisection.  Same contract as {!bisect}, faster convergence. *)

val golden_section_min :
  ?tolerance:float -> ?max_iterations:int -> f:(float -> float) ->
  lo:float -> hi:float -> unit -> float
(** [golden_section_min ~f ~lo ~hi ()] returns an abscissa minimizing a
    unimodal [f] on [\[lo, hi\]] to within [tolerance] (relative). *)

val grid_then_golden :
  ?points:int -> f:(float -> float) -> lo:float -> hi:float -> unit -> float
(** Coarse grid scan (log-spaced if [lo > 0]) followed by a golden
    section refinement around the best grid cell.  Robust when [f] is
    not globally unimodal, as with expected-waste curves. *)
