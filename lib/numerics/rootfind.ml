exception No_bracket

let default_tolerance = 1e-12

let bisect ?(tolerance = default_tolerance) ?(max_iterations = 200) ~f ~lo ~hi () =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then raise No_bracket
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let i = ref 0 in
    while !hi -. !lo > tolerance *. (1. +. abs_float !lo) && !i < max_iterations do
      incr i;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0. then begin
        lo := mid;
        hi := mid
      end
      else if !flo *. fmid < 0. then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    0.5 *. (!lo +. !hi)
  end

let brent ?(tolerance = default_tolerance) ?(max_iterations = 200) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if !fa = 0. then !a
  else if !fb = 0. then !b
  else if !fa *. !fb > 0. then raise No_bracket
  else begin
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref 0. and mflag = ref true in
    let i = ref 0 in
    while !fb <> 0. && abs_float (!b -. !a) > tolerance *. (1. +. abs_float !b)
          && !i < max_iterations do
      incr i;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* Inverse quadratic interpolation. *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_b, hi_b =
        let m = (3. *. !a +. !b) /. 4. in
        if m < !b then (m, !b) else (!b, m)
      in
      let use_bisection =
        s < lo_b || s > hi_b
        || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.)
        || ((not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.)
        || (!mflag && abs_float (!b -. !c) < tolerance)
        || ((not !mflag) && abs_float (!c -. !d) < tolerance)
      in
      let s = if use_bisection then 0.5 *. (!a +. !b) else s in
      mflag := use_bisection;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0. then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if abs_float !fa < abs_float !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    done;
    !b
  end

let invphi = (sqrt 5. -. 1.) /. 2.

let golden_section_min ?(tolerance = 1e-10) ?(max_iterations = 200) ~f ~lo ~hi () =
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let i = ref 0 in
  while !b -. !a > tolerance *. (1. +. abs_float !a +. abs_float !b)
        && !i < max_iterations do
    incr i;
    if !fc < !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end
  done;
  0.5 *. (!a +. !b)

let grid_then_golden ?(points = 64) ~f ~lo ~hi () =
  if points < 3 then invalid_arg "Rootfind.grid_then_golden: need >= 3 points";
  let log_spaced = lo > 0. in
  let abscissa i =
    let t = float_of_int i /. float_of_int (points - 1) in
    if log_spaced then lo *. exp (t *. log (hi /. lo)) else lo +. (t *. (hi -. lo))
  in
  let best = ref 0 and best_v = ref (f (abscissa 0)) in
  for i = 1 to points - 1 do
    let v = f (abscissa i) in
    if v < !best_v then begin
      best := i;
      best_v := v
    end
  done;
  let lo' = abscissa (max 0 (!best - 1)) in
  let hi' = abscissa (min (points - 1) (!best + 1)) in
  golden_section_min ~f ~lo:lo' ~hi:hi' ()
