(** Lambert W function.

    [w] solves [w * exp w = z].  Theorem 1 of the paper expresses the
    optimal number of chunks through [L(-exp(-lambda*C - 1))], whose
    argument always lies in [(-1/e, 0)]; on that interval the principal
    branch takes values in [(-1, 0)]. *)

val w0 : float -> float
(** [w0 z] is the principal branch, defined for [z >= -1/e].  Accurate
    to near machine precision (Halley iteration from an asymptotically
    correct initial guess).
    @raise Invalid_argument if [z < -1/e] (beyond rounding slack). *)

val wm1 : float -> float
(** [wm1 z] is the secondary real branch, defined for
    [-1/e <= z < 0], with values in [(-inf, -1]].
    @raise Invalid_argument outside the domain. *)

val branch_point : float
(** [-1/e], the left end of the real domain. *)
