(** Fixed-bin histograms, used for sanity-checking sampled failure
    inter-arrival times against their analytic densities. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] allocates a histogram over [\[lo, hi)].
    @raise Invalid_argument if [hi <= lo] or [bins <= 0]. *)

val add : t -> float -> unit
(** Observations outside [\[lo, hi)] are counted in overflow bins. *)

val count : t -> int
(** Total number of observations, including overflow. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the number of observations in bin [i].
    @raise Invalid_argument if [i] is out of range. *)

val density : t -> int -> float
(** [density t i] is the empirical density estimate over bin [i]:
    count / (total * bin_width).  [nan] when empty. *)

val bin_center : t -> int -> float
val underflow : t -> int
val overflow : t -> int

val chi_square_uniform : t -> float
(** Pearson chi-square statistic of the in-range bins against the
    uniform distribution; used to test PRNG uniformity. *)
