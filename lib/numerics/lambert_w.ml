let branch_point = -.exp (-1.)

(* Halley's method on f(w) = w e^w - z.  Quadratic-plus convergence:
   a handful of iterations suffice from any sane starting point. *)
let halley z w0 =
  let w = ref w0 in
  let continue = ref true in
  let iter = ref 0 in
  while !continue && !iter < 100 do
    incr iter;
    let w_ = !w in
    let ew = exp w_ in
    let f = (w_ *. ew) -. z in
    let f' = ew *. (w_ +. 1.) in
    let f'' = ew *. (w_ +. 2.) in
    let denom = f' -. (f *. f'' /. (2. *. f')) in
    let step = if denom = 0. then 0. else f /. denom in
    w := w_ -. step;
    if abs_float step <= 1e-16 *. (1. +. abs_float !w) then continue := false
  done;
  !w

let check_domain name z =
  (* Allow a hair of rounding slack below -1/e. *)
  if z < branch_point -. 1e-12 then
    invalid_arg (Printf.sprintf "Lambert_w.%s: argument %g below -1/e" name z)

let w0 z =
  check_domain "w0" z;
  if z = 0. then 0.
  else if z <= branch_point +. 1e-15 then -1.
  else
    let guess =
      if z < -0.25 then
        (* Series around the branch point: w = -1 + p - p^2/3 + ...,
           p = sqrt(2 (e z + 1)). *)
        let p = sqrt (2. *. ((exp 1. *. z) +. 1.)) in
        -1. +. p -. (p *. p /. 3.)
      else if z < 3. then
        (* log1p tracks W well for moderate arguments and Halley
           finishes the job. *)
        log1p z
      else
        (* Asymptotic: log z - log log z (safe: log z >= log 3). *)
        let l1 = log z in
        let l2 = log l1 in
        l1 -. l2 +. (l2 /. l1)
    in
    halley z guess

let wm1 z =
  check_domain "wm1" z;
  if z >= 0. then invalid_arg "Lambert_w.wm1: argument must be negative";
  if z <= branch_point +. 1e-15 then -1.
  else
    let guess =
      if z > -0.1 then
        (* Asymptotic near 0-: w ~ log(-z) - log(-log(-z)). *)
        let l1 = log (-.z) in
        let l2 = log (-.l1) in
        l1 -. l2
      else
        let p = sqrt (2. *. ((exp 1. *. z) +. 1.)) in
        -1. -. p -. (p *. p /. 3.)
    in
    halley z guess
