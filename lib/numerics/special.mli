(** Special functions used by the probability distributions. *)

val log_gamma : float -> float
(** [log_gamma x] is [log (Gamma x)] for [x > 0] (Lanczos
    approximation, ~15 significant digits).
    @raise Invalid_argument if [x <= 0]. *)

val gamma : float -> float
(** [gamma x] is the Gamma function for [x > 0]. *)

val lower_incomplete_gamma_regularized : a:float -> x:float -> float
(** [lower_incomplete_gamma_regularized ~a ~x] is
    [P(a, x) = gamma(a, x) / Gamma(a)], computed by series for
    [x < a + 1] and by continued fraction otherwise.  This is the CDF
    of the Gamma distribution with shape [a] and unit scale.
    @raise Invalid_argument if [a <= 0] or [x < 0]. *)

val erf : float -> float
(** Error function, via the regularized incomplete gamma. *)

val erfc : float -> float
(** Complementary error function. *)

val normal_cdf : mean:float -> std:float -> float -> float
(** Gaussian cumulative distribution function. *)

val normal_quantile : float -> float
(** [normal_quantile p] is the standard normal inverse CDF for
    [0 < p < 1] (Acklam's rational approximation polished by one
    Newton step; absolute error far below simulation noise).
    @raise Invalid_argument if [p] is outside [(0, 1)]. *)
