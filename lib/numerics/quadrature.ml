let simpson a b fa fm fb = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb)

let adaptive_simpson ?(tolerance = 1e-10) ?(max_depth = 50) ~f ~lo ~hi () =
  if hi <= lo then 0.
  else begin
    let rec go a b fa fm fb whole depth tol =
      let m = 0.5 *. (a +. b) in
      let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
      let flm = f lm and frm = f rm in
      let left = simpson a m fa flm fm in
      let right = simpson m b fm frm fb in
      let delta = left +. right -. whole in
      if depth <= 0 || abs_float delta <= 15. *. tol then
        left +. right +. (delta /. 15.)
      else
        go a m fa flm fm left (depth - 1) (tol /. 2.)
        +. go m b fm frm fb right (depth - 1) (tol /. 2.)
    in
    let fa = f lo and fb = f hi in
    let m = 0.5 *. (lo +. hi) in
    let fm = f m in
    let whole = simpson lo hi fa fm fb in
    go lo hi fa fm fb whole max_depth (tolerance *. (1. +. abs_float whole))
  end

(* Abscissae/weights for 32-point Gauss-Legendre on [-1, 1] (positive
   half; the rule is symmetric). *)
let gl32_x =
  [| 0.0483076656877383162; 0.1444719615827964934; 0.2392873622521370745;
     0.3318686022821276498; 0.4213512761306353454; 0.5068999089322293900;
     0.5877157572407623290; 0.6630442669302152010; 0.7321821187402896804;
     0.7944837959679424069; 0.8493676137325699701; 0.8963211557660521240;
     0.9349060759377396892; 0.9647622555875064308; 0.9856115115452683354;
     0.9972638618494815635 |]

let gl32_w =
  [| 0.0965400885147278006; 0.0956387200792748594; 0.0938443990808045654;
     0.0911738786957638847; 0.0876520930044038111; 0.0833119242269467552;
     0.0781938957870703065; 0.0723457941088485062; 0.0658222227763618468;
     0.0586840934785355471; 0.0509980592623761762; 0.0428358980222266807;
     0.0342738629130214331; 0.0253920653092620595; 0.0162743947309056706;
     0.0070186100094700966 |]

let gauss_legendre_32 ~f ~lo ~hi =
  if hi <= lo then 0.
  else begin
    let c = 0.5 *. (hi +. lo) and h = 0.5 *. (hi -. lo) in
    let acc = ref 0. in
    for i = 0 to Array.length gl32_x - 1 do
      let dx = h *. gl32_x.(i) in
      acc := !acc +. (gl32_w.(i) *. (f (c +. dx) +. f (c -. dx)))
    done;
    h *. !acc
  end

let integrate_to_infinity ?(tolerance = 1e-12) ~f ~lo () =
  let width = ref (if abs_float lo > 1. then abs_float lo else 1.) in
  let total = ref 0. in
  let a = ref lo in
  let continue = ref true in
  let panels = ref 0 in
  while !continue && !panels < 200 do
    incr panels;
    let b = !a +. !width in
    let piece = gauss_legendre_32 ~f ~lo:!a ~hi:b in
    total := !total +. piece;
    if abs_float piece <= tolerance *. (1. +. abs_float !total) && !panels > 3 then
      continue := false;
    a := b;
    width := !width *. 2.
  done;
  !total
