type t = { buckets : int array; count : int; min_v : float; max_v : float }

let n_buckets = 64
let offset = 32

let bucket_of_value v =
  if not (Float.is_finite v) || v <= 0. then 0
  else min (n_buckets - 1) (max 0 (offset + int_of_float (Float.floor (Float.log2 v))))

let bucket_lower i = Float.pow 2. (float_of_int (i - offset))

let empty = { buckets = Array.make n_buckets 0; count = 0; min_v = infinity; max_v = neg_infinity }

let add t v =
  let buckets = Array.copy t.buckets in
  let b = bucket_of_value v in
  buckets.(b) <- buckets.(b) + 1;
  {
    buckets;
    count = t.count + 1;
    min_v = Float.min t.min_v v;
    max_v = Float.max t.max_v v;
  }

let merge a b =
  {
    buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    count = a.count + b.count;
    min_v = Float.min a.min_v b.min_v;
    max_v = Float.max a.max_v b.max_v;
  }

let quantile h p =
  if h.count = 0 then nan
  else if p <= 0. then h.min_v
  else if p >= 1. then h.max_v
  else begin
    let rank = int_of_float (Float.round (p *. float_of_int h.count)) in
    let rank = max 1 (min h.count rank) in
    let rec walk i seen =
      if i >= n_buckets then h.max_v
      else begin
        let seen = seen + h.buckets.(i) in
        if seen >= rank then Float.max h.min_v (Float.min h.max_v (bucket_lower i *. sqrt 2.))
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let to_tokens h =
  let pairs = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) <> 0 then pairs := string_of_int i :: string_of_int h.buckets.(i) :: !pairs
  done;
  string_of_int h.count
  :: Printf.sprintf "%h" h.min_v
  :: Printf.sprintf "%h" h.max_v
  :: string_of_int (List.length !pairs / 2)
  :: !pairs

let of_tokens = function
  | count :: min_v :: max_v :: k :: rest -> (
      match
        (int_of_string_opt count, float_of_string_opt min_v, float_of_string_opt max_v,
         int_of_string_opt k)
      with
      | Some count, Some min_v, Some max_v, Some k when count >= 0 && k >= 0 && k <= n_buckets
        ->
          let buckets = Array.make n_buckets 0 in
          let rec take n rest =
            if n = 0 then Some ({ buckets; count; min_v; max_v }, rest)
            else
              match rest with
              | i :: c :: rest -> (
                  match (int_of_string_opt i, int_of_string_opt c) with
                  | Some i, Some c when i >= 0 && i < n_buckets && c >= 0 ->
                      buckets.(i) <- c;
                      take (n - 1) rest
                  | _ -> None)
              | _ -> None
          in
          take k rest
      | _ -> None)
  | _ -> None

let serialize h = String.concat " " (to_tokens h)

let deserialize s =
  match of_tokens (String.split_on_char ' ' (String.trim s)) with
  | Some (h, []) -> Some h
  | _ -> None
