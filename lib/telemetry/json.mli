(** Minimal self-contained JSON reader/writer.

    Used by the bench-trajectory tooling ([Bench_compare]) to parse
    [BENCH_*.json] artifacts and their provenance sidecars, by the
    metrics sampler to append JSONL time-series, and by tests to
    validate Chrome trace_event exports.  Numbers are represented as
    floats — every JSON producer in this repository emits numbers
    that fit. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries a byte
    offset and a description; trailing non-whitespace is an error. *)

val member : t -> string -> t option
(** [member j key] is the value bound to [key] when [j] is an object. *)

val path : t -> string list -> t option
(** [path j ["a"; "b"]] descends through nested objects. *)

val to_float : t -> float option
val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val keys : t -> string list
(** Keys of an object in document order; [[]] for non-objects. *)

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize.  [~pretty:true] uses two-space indentation.  Non-finite
    numbers render as [null] (JSON has no NaN/infinity). *)
