(** Typed execution tracing: the engine's event stream.

    Events carry {e simulated} timestamps (the engine clock, seconds)
    plus, where the span endpoints re-round through the running clock,
    the engine's exact cost operand — so {!totals} reconciles
    {e bit-for-bit} with [Engine.metrics]: committed work is the sum
    of [Chunk_commit] work, checkpoint time the sum of [Checkpoint]
    costs, wasted time the [Waste] spans, recovery time the
    [Recovery_abort] spans plus [Recovery_complete] costs and stall
    time the [Downtime] spans.

    Tracing is opt-in: {!enabled} reflects [CKPT_TRACE_OUT] (or
    {!set_enabled}), and an engine run only emits when handed a
    {!buffer}.  Buffers are single-writer ring buffers — one per
    execution — that overwrite their oldest events when full
    (capacity [CKPT_TRACE_CAP], default 65536). *)

type event =
  | Decision of { at : float; chunk : float; remaining : float }
      (** the policy chose the next chunk size. *)
  | Chunk_start of { at : float; work : float }
  | Chunk_commit of { t0 : float; t1 : float; work : float }
      (** the chunk's execution span; its checkpoint follows. *)
  | Checkpoint of { t0 : float; t1 : float; cost : float }
      (** committed checkpoint; [cost] is the exact operand the engine
          accumulated (not always [t1 -. t0] at the bit level). *)
  | Failure of { at : float; proc : int }  (** effective platform failure. *)
  | Waste of { t0 : float; t1 : float }
      (** execution/checkpoint time destroyed by a failure. *)
  | Downtime of { t0 : float; t1 : float }  (** processors stalled on downtimes. *)
  | Recovery_start of { at : float }
  | Recovery_abort of { t0 : float; t1 : float }  (** recovery struck by a failure. *)
  | Recovery_complete of { t0 : float; t1 : float; cost : float }

(** {1 Global switch} *)

val enabled : unit -> bool
(** True iff [CKPT_TRACE_OUT] was set at startup or {!set_enabled}
    was called. *)

val set_enabled : bool -> unit
val out_path : unit -> string option
val set_out_path : string option -> unit
(** Setting a path also enables tracing. *)

(** {1 Ring buffers} *)

type buffer

val create_buffer : ?capacity:int -> name:string -> unit -> buffer
val emit : buffer -> event -> unit
(** Single-writer: a buffer belongs to the one engine run filling it. *)

val name : buffer -> string
val length : buffer -> int
val dropped : buffer -> int
(** Events overwritten after the ring filled (0 means {!to_list} is
    the complete stream). *)

val to_list : buffer -> event list
(** Chronological (oldest surviving event first). *)

val clear : buffer -> unit

(** {1 Reconciliation totals} *)

type totals = {
  work : float;
  checkpoint : float;
  waste : float;
  recovery : float;
  downtime : float;
  failures : int;
  chunks : int;
  decisions : int;
}

val zero_totals : totals
val totals : buffer -> totals
(** Summed durations and event counts, folded with the same operands
    in the same order as the engine's accumulators: equal to
    [Engine.metrics] {e bitwise} when {!dropped} is 0. *)

(** {1 Export sink}

    The evaluation harness registers each run's buffer here; the
    accumulated buffers are written to [CKPT_TRACE_OUT] at process
    exit by {!Trace_export}.  At most [CKPT_TRACE_BUFFERS] (default
    512) buffers are kept; later registrations are counted and
    dropped. *)

val register : buffer -> unit
val drain : unit -> buffer list * int
(** All registered buffers in registration order, plus the number of
    rejected registrations; empties the sink. *)

(** {1 Rendering} *)

val pp_event : Format.formatter -> event -> unit
val pp_timeline : ?limit:int -> Format.formatter -> buffer -> unit
