(* Bench-trajectory regression tooling: compare two BENCH_*.json
   artifacts, provenance-aware.

   The committed artifacts are the performance record of this
   repository; a PR that silently regresses them defeats their
   purpose.  `ckpt bench diff OLD NEW` compares measurement fields
   under per-metric thresholds and direction heuristics, and *refuses*
   (distinct exit code) when the provenance sidecars show the two runs
   are not comparable in the first place — different core counts or a
   different scheduler backend make "20% slower" meaningless, not
   alarming.

   Field classification is by leaf-name convention, which every bench
   stage follows:
     *_per_sec, *speedup*   higher is better   (relative threshold)
     *_seconds, *_ms, *_us  lower is better    (relative threshold)
     *_percent              lower is better    (absolute percentage-
                                                point threshold)
   String/bool fields and workload-shape numbers (replicates,
   processors, ...) are configuration: any mismatch makes the pair
   incomparable.  Unrecognized numerics are skipped and listed. *)

module Atomic_file = Ckpt_store.Atomic_file

type direction = Higher_better | Lower_better | Lower_better_pp

let direction_name = function
  | Higher_better -> "higher-better"
  | Lower_better -> "lower-better"
  | Lower_better_pp -> "lower-better-pp"

type comparison = {
  c_metric : string;
  c_old : float;
  c_new : float;
  c_direction : direction;
  c_delta : float;  (* relative % for the rate/time classes, pp for percent *)
  c_threshold : float;
  c_regressed : bool;
  c_improved : bool;
}

type verdict = {
  v_old : string;
  v_new : string;
  v_comparisons : comparison list;
  v_config_mismatches : string list;  (* nonempty -> incomparable *)
  v_skipped : string list;
  v_warnings : string list;
}

(* -- flattening ------------------------------------------------------------- *)

(* "curve[2].steal_seconds" — nested objects and arrays become dotted
   paths so the sched bench's per-domain curve points are compared
   individually. *)
let rec flatten prefix j acc =
  match j with
  | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          flatten (if prefix = "" then k else prefix ^ "." ^ k) v acc)
        acc fields
  | Json.Arr elements ->
      List.fold_left
        (fun (acc, i) v -> (flatten (Printf.sprintf "%s[%d]" prefix i) v acc, i + 1))
        (acc, 0) elements
      |> fst
  | leaf -> (prefix, leaf) :: acc

let flatten j = List.rev (flatten "" j [])

(* The final path segment, stripped of any array index — the unit
   suffix conventions apply to it. *)
let leaf_name path =
  let seg =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  match String.index_opt seg '[' with Some i -> String.sub seg 0 i | None -> seg

let has_suffix ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let contains ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* Workload-shape numbers: a mismatch means the two artifacts measured
   different experiments, not the same experiment at different speed. *)
let config_leaves =
  [
    "replicates";
    "processors";
    "policies";
    "configurations";
    "runs";
    "domains";
    "processor_counts";
    "stripe";
    (* Stage 8 (multi-process sweeps): units/sec at differing worker
       counts, unit totals, or core counts are different experiments —
       refuse a verdict rather than call one a regression. *)
    "workers";
    "units";
    "physical_cores";
  ]

let classify path =
  let leaf = leaf_name path in
  if List.mem leaf config_leaves then `Config
  else if has_suffix ~suffix:"_per_sec" leaf || contains ~needle:"speedup" leaf then
    `Measure Higher_better
  else if has_suffix ~suffix:"_percent" leaf then `Measure Lower_better_pp
  else if
    has_suffix ~suffix:"_seconds" leaf || has_suffix ~suffix:"_ms" leaf
    || has_suffix ~suffix:"_us" leaf
  then `Measure Lower_better
  else `Other

let default_threshold = function
  | Higher_better -> 5.0  (* relative % *)
  | Lower_better -> 10.0  (* wall clock is the noisiest class *)
  | Lower_better_pp -> 2.0  (* absolute percentage points *)

(* -- provenance ------------------------------------------------------------- *)

let sidecar_path p = p ^ ".meta.json"

(* CKPT_SCHED="" means the default backend, which is steal. *)
let normalize_sched = function None | Some "" -> "steal" | Some s -> s

type provenance = { p_domains : float option; p_sched : string; p_cores : float option }

let load_provenance path =
  match Atomic_file.read (sidecar_path path) with
  | None -> Error (Printf.sprintf "%s: missing sidecar %s" path (sidecar_path path))
  | Some text -> (
      match Json.parse text with
      | Error msg -> Error (Printf.sprintf "%s: unparseable sidecar: %s" path msg)
      | Ok j ->
          Ok
            {
              p_domains = Option.bind (Json.member j "domains") Json.to_float;
              p_sched =
                normalize_sched
                  (Option.bind (Json.path j [ "env"; "CKPT_SCHED" ]) Json.to_string_opt);
              p_cores =
                Option.bind (Json.path j [ "parameters"; "physical_cores" ]) Json.to_float;
            })

let provenance_mismatches ~old_path ~new_path =
  match (load_provenance old_path, load_provenance new_path) with
  | Error a, Error b -> ([], [ a; b ])
  | Error a, Ok _ | Ok _, Error a -> ([], [ a ])
  | Ok po, Ok pn ->
      let mism = ref [] in
      let opt_pair what fo fn pp =
        match (fo, fn) with
        | Some a, Some b when a <> b ->
            mism := Printf.sprintf "sidecar %s: %s vs %s" what (pp a) (pp b) :: !mism
        | _ -> ()
      in
      let fnum v = Printf.sprintf "%g" v in
      opt_pair "domains" po.p_domains pn.p_domains fnum;
      opt_pair "physical_cores" po.p_cores pn.p_cores fnum;
      if po.p_sched <> pn.p_sched then
        mism :=
          Printf.sprintf "sidecar CKPT_SCHED: %s vs %s" po.p_sched pn.p_sched :: !mism;
      (List.rev !mism, [])

(* -- diff ------------------------------------------------------------------- *)

let load path =
  match Atomic_file.read path with
  | None -> Error (Printf.sprintf "%s: cannot read" path)
  | Some text -> (
      match Json.parse text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> Ok j)

let compare_field ?threshold ~path ~direction vold vnew =
  let threshold = match threshold with Some t -> t | None -> default_threshold direction in
  match direction with
  | Lower_better_pp ->
      let delta = vnew -. vold in
      Some
        {
          c_metric = path;
          c_old = vold;
          c_new = vnew;
          c_direction = direction;
          c_delta = delta;
          c_threshold = threshold;
          c_regressed = delta > threshold;
          c_improved = delta < -.threshold;
        }
  | Higher_better | Lower_better ->
      if vold <= 0. then None  (* relative change undefined *)
      else begin
        let delta = 100. *. ((vnew -. vold) /. vold) in
        let regressed, improved =
          match direction with
          | Higher_better -> (delta < -.threshold, delta > threshold)
          | _ -> (delta > threshold, delta < -.threshold)
        in
        Some
          {
            c_metric = path;
            c_old = vold;
            c_new = vnew;
            c_direction = direction;
            c_delta = delta;
            c_threshold = threshold;
            c_regressed = regressed;
            c_improved = improved;
          }
      end

let diff ?threshold ~old_path ~new_path () =
  match (load old_path, load new_path) with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok jold, Ok jnew ->
      let fold = flatten jold and fnew = flatten jnew in
      let config_mismatches, sidecar_warnings = provenance_mismatches ~old_path ~new_path in
      let config_mismatches = ref config_mismatches in
      let comparisons = ref [] and skipped = ref [] and warnings = ref sidecar_warnings in
      List.iter
        (fun (path, vold) ->
          match List.assoc_opt path fnew with
          | None -> warnings := Printf.sprintf "%s: only in %s" path old_path :: !warnings
          | Some vnew -> (
              match (vold, vnew) with
              | Json.Num a, Json.Num b -> (
                  match classify path with
                  | `Measure direction -> (
                      match compare_field ?threshold ~path ~direction a b with
                      | Some c -> comparisons := c :: !comparisons
                      | None ->
                          warnings :=
                            Printf.sprintf "%s: old value %g not positive; skipped" path a
                            :: !warnings)
                  | `Config ->
                      if a <> b then
                        config_mismatches :=
                          Printf.sprintf "%s: %g vs %g" path a b :: !config_mismatches
                  | `Other -> skipped := path :: !skipped)
              | Json.Str a, Json.Str b ->
                  (* "bench", "distribution", "policy", ... — differing
                     strings mean different experiments. *)
                  if a <> b then
                    config_mismatches :=
                      Printf.sprintf "%s: %S vs %S" path a b :: !config_mismatches
              | Json.Bool a, Json.Bool b ->
                  if a <> b then
                    config_mismatches :=
                      Printf.sprintf "%s: %b vs %b" path a b :: !config_mismatches
              | _ ->
                  warnings := Printf.sprintf "%s: differing kinds" path :: !warnings))
        fold;
      List.iter
        (fun (path, _) ->
          if List.assoc_opt path fold = None then
            warnings := Printf.sprintf "%s: only in %s" path new_path :: !warnings)
        fnew;
      Ok
        {
          v_old = old_path;
          v_new = new_path;
          v_comparisons = List.rev !comparisons;
          v_config_mismatches = List.rev !config_mismatches;
          v_skipped = List.rev !skipped;
          v_warnings = List.rev !warnings;
        }

(* Exit codes are part of the CLI contract: 0 comparable and clean,
   1 regression(s), 2 load/parse error (mapped by the caller),
   3 incomparable provenance/configuration. *)
let exit_ok = 0
let exit_regression = 1
let exit_error = 2
let exit_incomparable = 3

let exit_code v =
  if v.v_config_mismatches <> [] then exit_incomparable
  else if List.exists (fun c -> c.c_regressed) v.v_comparisons then exit_regression
  else exit_ok

let verdict_json v =
  let comparison_json c =
    Json.Obj
      [
        ("metric", Json.Str c.c_metric);
        ("old", Json.Num c.c_old);
        ("new", Json.Num c.c_new);
        ("direction", Json.Str (direction_name c.c_direction));
        ( (match c.c_direction with Lower_better_pp -> "delta_pp" | _ -> "delta_percent"),
          Json.Num c.c_delta );
        ("threshold", Json.Num c.c_threshold);
        ("regressed", Json.Bool c.c_regressed);
        ("improved", Json.Bool c.c_improved);
      ]
  in
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  Json.Obj
    [
      ("old", Json.Str v.v_old);
      ("new", Json.Str v.v_new);
      ( "verdict",
        Json.Str
          (match exit_code v with
          | 0 -> "ok"
          | 1 -> "regression"
          | _ -> "incomparable") );
      ("exit_code", Json.Num (float_of_int (exit_code v)));
      ("comparisons", Json.Arr (List.map comparison_json v.v_comparisons));
      ("config_mismatches", strs v.v_config_mismatches);
      ("skipped", strs v.v_skipped);
      ("warnings", strs v.v_warnings);
    ]

(* -- check: artifact hygiene across a directory ----------------------------- *)

let is_bench_artifact name =
  String.length name > 6
  && String.sub name 0 6 = "BENCH_"
  && Filename.check_suffix name ".json"
  && not (Filename.check_suffix name ".meta.json")

let check_one path =
  let problems = ref [] in
  (match load path with
  | Error msg -> problems := msg :: !problems
  | Ok j -> (
      match Option.bind (Json.member j "bench") Json.to_string_opt with
      | Some _ -> ()
      | None -> problems := Printf.sprintf "%s: no \"bench\" field" path :: !problems));
  (match Atomic_file.read (sidecar_path path) with
  | None -> problems := Printf.sprintf "%s: missing sidecar" path :: !problems
  | Some text -> (
      match Json.parse text with
      | Error msg -> problems := Printf.sprintf "%s: unparseable sidecar: %s" path msg :: !problems
      | Ok j ->
          if Option.bind (Json.member j "schema") Json.to_string_opt = None then
            problems := Printf.sprintf "%s: sidecar has no \"schema\"" path :: !problems));
  List.rev !problems

let check ~dir =
  let entries = try Array.to_list (Sys.readdir dir) with Sys_error _ -> [] in
  entries
  |> List.filter is_bench_artifact
  |> List.sort compare
  |> List.map (fun name ->
         let path = Filename.concat dir name in
         (path, check_one path))
