(* Provenance manifests: enough context to regenerate any number we
   write to disk.

   Every CSV/JSON artifact gains a sidecar "<path>.meta.json"
   recording the git revision, the exact command line, every CKPT_*
   environment knob, the domain count and caller-supplied parameters
   (scenario, seeds).  The sidecar is written unconditionally — it
   costs one stat and a few hundred bytes, and reproducibility is not
   an opt-in property. *)

let json_escape = Trace_export.json_escape

(* The git revision is a process-constant: one subprocess per process,
   on first use.  Memoized behind a mutex rather than [lazy]: sidecars
   are written from inside parallel regions (sweep-store units), and
   concurrently forcing a lazy from several domains raises
   [CamlinternalLazy.Undefined]. *)
let git_lock = Mutex.create ()
let git_memo = ref None

let git_describe () =
  Mutex.lock git_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock git_lock)
    (fun () ->
      match !git_memo with
      | Some rev -> rev
      | None ->
          let rev =
            try
              let ic = Unix.open_process_in "git describe --always --dirty --tags 2>/dev/null" in
              let line = try input_line ic with End_of_file -> "" in
              match Unix.close_process_in ic with
              | Unix.WEXITED 0 when line <> "" -> line
              | _ -> "unknown"
            with _ -> "unknown"
          in
          git_memo := Some rev;
          rev)

let ckpt_environment () =
  Unix.environment () |> Array.to_list
  |> List.filter_map (fun binding ->
         match String.index_opt binding '=' with
         | Some i when String.length binding >= 5 && String.sub binding 0 5 = "CKPT_" ->
             Some (String.sub binding 0 i, String.sub binding (i + 1) (String.length binding - i - 1))
         | _ -> None)
  |> List.sort compare

let domain_count () =
  match Sys.getenv_opt "CKPT_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let quote s = Printf.sprintf "\"%s\"" (json_escape s)

let manifest ?(extra = []) () =
  let buf = Buffer.create 512 in
  let field ?(last = false) k v =
    Buffer.add_string buf (Printf.sprintf "  %s: %s%s\n" (quote k) v (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field "schema" (quote "ckpt-provenance/1");
  field "generated_at_unix" (Printf.sprintf "%.0f" (Unix.time ()));
  field "git" (quote (git_describe ()));
  field "command" (quote (String.concat " " (Array.to_list Sys.argv)));
  field "ocaml" (quote Sys.ocaml_version);
  field "domains" (string_of_int (domain_count ()));
  field "env"
    (Printf.sprintf "{%s}"
       (String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (quote k) (quote v))
             (ckpt_environment ()))));
  field ~last:true "parameters"
    (Printf.sprintf "{%s}"
       (String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (quote k) (quote v)) extra)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let sidecar_path path = path ^ ".meta.json"

let write_sidecar ?extra ~path () =
  (* Atomic, so a sidecar is never seen half-written next to a
     complete artifact; still best-effort — a sidecar must never turn
     a successful run into a failed one. *)
  try Ckpt_store.Atomic_file.write ~path:(sidecar_path path) (manifest ?extra ())
  with Sys_error _ | Unix.Unix_error _ -> ()
