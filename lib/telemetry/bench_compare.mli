(** Provenance-aware comparison of [BENCH_*.json] artifacts.

    Backs [ckpt bench diff] and [ckpt bench check].  Numeric fields
    are classified by leaf-name convention — [*_per_sec] and
    [*speedup*] are higher-better, [*_seconds]/[*_ms]/[*_us] are
    lower-better, [*_percent] is lower-better with an absolute
    percentage-point threshold — and nested values (e.g. the sched
    bench's per-domain curve) are flattened to dotted paths.
    Workload-shape fields (replicates, processors, strings, booleans)
    must match exactly, as must the provenance sidecars' core count
    and scheduler backend; otherwise the pair is {e incomparable} and
    gets a distinct exit code rather than a fake verdict. *)

type direction = Higher_better | Lower_better | Lower_better_pp

type comparison = {
  c_metric : string;
  c_old : float;
  c_new : float;
  c_direction : direction;
  c_delta : float;  (** relative percent, or percentage points for [Lower_better_pp] *)
  c_threshold : float;
  c_regressed : bool;
  c_improved : bool;
}

type verdict = {
  v_old : string;
  v_new : string;
  v_comparisons : comparison list;
  v_config_mismatches : string list;  (** nonempty ⇒ incomparable *)
  v_skipped : string list;
  v_warnings : string list;
}

val diff :
  ?threshold:float -> old_path:string -> new_path:string -> unit -> (verdict, string) result
(** Compare two artifacts.  [?threshold] overrides every per-metric
    default (relative percent for rate/time metrics, percentage points
    for [*_percent]).  [Error] means a file could not be read or
    parsed (exit code {!exit_error}). *)

val exit_code : verdict -> int

val exit_ok : int  (** 0 — comparable, no regressions *)

val exit_regression : int  (** 1 — at least one metric beyond threshold *)

val exit_error : int  (** 2 — unreadable/unparseable input *)

val exit_incomparable : int
(** 3 — sidecars or workload-shape fields disagree (core count,
    [CKPT_SCHED], replicates, ...) *)

val verdict_json : verdict -> Json.t
(** Machine-readable verdict (printed to stdout by [ckpt bench diff]). *)

val default_threshold : direction -> float

val check : dir:string -> (string * string list) list
(** Validate every [BENCH_*.json] under [dir]: parseable, carries a
    ["bench"] field, sidecar present and parseable with a ["schema"].
    Returns per-artifact problem lists (empty list = clean), sorted by
    name. *)
