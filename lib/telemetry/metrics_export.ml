(* Live exposition of the metrics registry.

   Two outputs, sharing one sampling path:

   - an OpenMetrics/Prometheus textfile, atomically replaced on every
     sample via [Ckpt_store.Atomic_file] so a scraper (node_exporter's
     textfile collector, or a human with cat) never sees a torn file;
   - a JSONL time-series, one snapshot object appended per sample, for
     after-the-fact trajectory plots of a long sweep.

   Off by default.  CKPT_METRICS_INTERVAL=<seconds> starts a sampler
   thread (and implies CKPT_METRICS=1 — asking for periodic samples of
   a disabled registry would be useless); CKPT_METRICS_OUT names the
   textfile (default "metrics.prom"; the JSONL series goes to the same
   path + ".jsonl").  CKPT_METRICS_OUT without an interval publishes
   one final snapshot at exit.

   The sampler is a [Thread] rather than a [Domain]: it spends its
   life in [Thread.delay] and brief registry reads, so it must not
   occupy one of the few cores the worker domains are sized to. *)

module Atomic_file = Ckpt_store.Atomic_file

(* -- OpenMetrics rendering -------------------------------------------------- *)

(* Metric names like "sched/steals" become "ckpt_sched_steals":
   [a-zA-Z0-9_] only, with a namespace prefix. *)
let sanitize name =
  let buf = Buffer.create (String.length name + 5) in
  Buffer.add_string buf "ckpt_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* Timers and histograms hold seconds; give them the unit suffix
   unless the registry name already carries it. *)
let with_seconds name =
  let suffix = "_seconds" in
  let l = String.length name and ls = String.length suffix in
  if l >= ls && String.sub name (l - ls) ls = suffix then name else name ^ suffix

let float_str v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let quantiles = [ 0.5; 0.9; 0.99 ]

let openmetrics snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n ->
          let m = sanitize name in
          line "# TYPE %s counter" m;
          line "%s_total %d" m n
      | Metrics.Gauge v ->
          if not (Float.is_nan v) then begin
            let m = sanitize name in
            line "# TYPE %s gauge" m;
            line "%s %s" m (float_str v)
          end
      | Metrics.Timer { seconds; calls } ->
          (* A timer is a summary with no quantile information. *)
          let m = sanitize (with_seconds name) in
          line "# TYPE %s summary" m;
          line "%s_sum %s" m (float_str seconds);
          line "%s_count %d" m calls
      | Metrics.Histogram h ->
          let m = sanitize (with_seconds name) in
          line "# TYPE %s summary" m;
          if h.Metrics.count > 0 then
            List.iter
              (fun q ->
                line "%s{quantile=\"%g\"} %s" m q (float_str (Metrics.histogram_quantile h q)))
              quantiles;
          line "%s_sum %s" m (float_str h.Metrics.sum);
          line "%s_count %d" m h.Metrics.count)
    snap;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* -- JSONL time-series ------------------------------------------------------ *)

let json_of_value = function
  | Metrics.Counter n -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int n)) ]
  | Metrics.Gauge v -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num v) ]
  | Metrics.Timer { seconds; calls } ->
      Json.Obj
        [
          ("type", Json.Str "timer");
          ("seconds", Json.Num seconds);
          ("calls", Json.Num (float_of_int calls));
        ]
  | Metrics.Histogram h ->
      Json.Obj
        ([
           ("type", Json.Str "histogram");
           ("count", Json.Num (float_of_int h.Metrics.count));
           ("sum", Json.Num h.Metrics.sum);
         ]
        @
        if h.Metrics.count = 0 then []
        else
          [
            ("min", Json.Num h.Metrics.min_v);
            ("max", Json.Num h.Metrics.max_v);
            ("p50", Json.Num (Metrics.histogram_quantile h 0.5));
            ("p90", Json.Num (Metrics.histogram_quantile h 0.9));
            ("p99", Json.Num (Metrics.histogram_quantile h 0.99));
          ])

let jsonl_sample ~ts snap =
  Json.to_string
    (Json.Obj
       [
         ("ts", Json.Num ts);
         ("metrics", Json.Obj (List.map (fun (name, v) -> (name, json_of_value v)) snap));
       ])

(* -- publication ------------------------------------------------------------ *)

let out_path () =
  match Sys.getenv_opt "CKPT_METRICS_OUT" with
  | Some p when p <> "" -> p
  | _ -> "metrics.prom"

let series_path () = out_path () ^ ".jsonl"

let interval () =
  match Option.bind (Sys.getenv_opt "CKPT_METRICS_INTERVAL") float_of_string_opt with
  | Some dt when dt > 0. && Float.is_finite dt -> Some dt
  | _ -> None

(* Serialize concurrent publishers (the sampler thread and the at_exit
   final flush can overlap). *)
let publish_lock = Mutex.create ()

let publish () =
  try
    let snap = Metrics.snapshot () in
    let ts = Unix.gettimeofday () in
    Mutex.lock publish_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock publish_lock)
      (fun () ->
        (* The textfile is replaced atomically; the series is a plain
           append (one line per sample — a crash can at worst truncate
           the final line, which readers skip). *)
        Atomic_file.write ~fsync:false ~path:(out_path ()) (openmetrics snap);
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 (series_path ()) in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (jsonl_sample ~ts snap);
            output_char oc '\n'))
  with exn ->
    (* The sampler must never take the process down. *)
    Printf.eprintf "[metrics] publish failed: %s\n%!" (Printexc.to_string exn)

(* -- sampler lifecycle ------------------------------------------------------ *)

let started = Atomic.make false
let stop_requested = Atomic.make false

let sampler_loop dt =
  while not (Atomic.get stop_requested) do
    Thread.delay dt;
    if not (Atomic.get stop_requested) then publish ()
  done

let ensure_sampler () =
  if not (Atomic.exchange started true) then begin
    match interval () with
    | Some dt ->
        Metrics.set_enabled true;
        at_exit (fun () ->
            Atomic.set stop_requested true;
            publish ());
        ignore (Thread.create sampler_loop dt)
    | None ->
        (* No periodic sampling, but an explicit output request still
           gets a final snapshot at exit. *)
        if Sys.getenv_opt "CKPT_METRICS_OUT" <> None then begin
          Metrics.set_enabled true;
          at_exit publish
        end
  end

let stop () = Atomic.set stop_requested true
