(* A process-global metrics registry: named counters, gauges, timers
   and log-scale histograms, shared by every layer of the stack (DP
   solvers, trace cache, domain pool, evaluation harness).

   The registry follows the same contract as the rest of the telemetry
   layer: *off by default*, enabled by CKPT_METRICS=1 (or
   programmatically), and every update entry point costs exactly one
   [Atomic.get] branch when disabled, so instrumenting a hot loop is
   free in normal runs.  Reads ({!snapshot}, {!find}) work regardless
   of the enabled flag — timers recorded explicitly through {!record}
   (the Instrument wall-clock path, which gates itself on
   CKPT_VERBOSE) must stay reportable even when CKPT_METRICS is
   unset. *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "CKPT_METRICS" with Some ("1" | "true") -> true | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* -- histograms ----------------------------------------------------------- *)

(* Bucketing, merging and quantile estimation are Ckpt_numerics.Log_hist
   (power-of-two buckets centred on 1.0); the registry's snapshot only
   adds a running [sum] on top, for exact means.  Sharing the scheme
   means histograms built by the evaluation harness (Summary.Vector)
   and by live metering are directly comparable bucket for bucket. *)
module Log_hist = Ckpt_numerics.Log_hist

let hist_buckets = Log_hist.n_buckets
let bucket_of_value = Log_hist.bucket_of_value
let bucket_lower = Log_hist.bucket_lower

type histogram_snapshot = {
  buckets : int array;  (* length [hist_buckets] *)
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
}

let hist_of_snapshot h =
  { Log_hist.buckets = h.buckets; count = h.count; min_v = h.min_v; max_v = h.max_v }

let empty_histogram =
  {
    buckets = Array.make hist_buckets 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
  }

(* Summary.merge-style combination: merging two snapshots is exactly
   the snapshot of the concatenated observation streams, so per-domain
   or per-replicate histograms can be combined in any order. *)
let merge_histograms a b =
  let m = Log_hist.merge (hist_of_snapshot a) (hist_of_snapshot b) in
  {
    buckets = m.Log_hist.buckets;
    count = m.Log_hist.count;
    sum = a.sum +. b.sum;
    min_v = m.Log_hist.min_v;
    max_v = m.Log_hist.max_v;
  }

let histogram_mean h = if h.count = 0 then nan else h.sum /. float_of_int h.count
let histogram_quantile h p = Log_hist.quantile (hist_of_snapshot h) p

(* -- registry cells ------------------------------------------------------- *)

type counter = int Atomic.t
type gauge = float Atomic.t

type timer_cell = { mutable seconds : float; mutable calls : int }
type timer = { t_lock : Mutex.t; cell : timer_cell }

type hist_cell = {
  h_lock : Mutex.t;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type histogram = hist_cell

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_timer of timer
  | M_histogram of hist_cell

type value =
  | Counter of int
  | Gauge of float
  | Timer of { seconds : float; calls : int }
  | Histogram of histogram_snapshot

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register name make extract =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match extract m with
          | Some cell -> cell
          | None -> invalid_arg (Printf.sprintf "Metrics: %S registered with another kind" name))
      | None ->
          let cell, m = make () in
          Hashtbl.add registry name m;
          cell)

let counter name =
  register name
    (fun () ->
      let c = Atomic.make 0 in
      (c, M_counter c))
    (function M_counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = Atomic.make nan in
      (g, M_gauge g))
    (function M_gauge g -> Some g | _ -> None)

let timer name =
  register name
    (fun () ->
      let t = { t_lock = Mutex.create (); cell = { seconds = 0.; calls = 0 } } in
      (t, M_timer t))
    (function M_timer t -> Some t | _ -> None)

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_lock = Mutex.create ();
          h_buckets = Array.make hist_buckets 0;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      (h, M_histogram h))
    (function M_histogram h -> Some h | _ -> None)

(* -- updates (one branch when disabled) ----------------------------------- *)

let incr c = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c 1)
let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c n)
let set g v = if Atomic.get enabled_flag then Atomic.set g v

(* Timers are recorded unconditionally: the caller decides whether to
   measure at all (Instrument gates on CKPT_VERBOSE || CKPT_METRICS),
   and a recorded duration must be reportable either way. *)
let record t dt =
  Mutex.lock t.t_lock;
  t.cell.seconds <- t.cell.seconds +. dt;
  t.cell.calls <- t.cell.calls + 1;
  Mutex.unlock t.t_lock

let observe h v =
  if Atomic.get enabled_flag then begin
    let b = bucket_of_value v in
    Mutex.lock h.h_lock;
    h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_min <- Float.min h.h_min v;
    h.h_max <- Float.max h.h_max v;
    Mutex.unlock h.h_lock
  end

(* -- reads ---------------------------------------------------------------- *)

let value_of = function
  | M_counter c -> Counter (Atomic.get c)
  | M_gauge g -> Gauge (Atomic.get g)
  | M_timer t ->
      Mutex.lock t.t_lock;
      let v = Timer { seconds = t.cell.seconds; calls = t.cell.calls } in
      Mutex.unlock t.t_lock;
      v
  | M_histogram h ->
      Mutex.lock h.h_lock;
      let v =
        Histogram
          {
            buckets = Array.copy h.h_buckets;
            count = h.h_count;
            sum = h.h_sum;
            min_v = h.h_min;
            max_v = h.h_max;
          }
      in
      Mutex.unlock h.h_lock;
      v

let find name =
  match locked (fun () -> Hashtbl.find_opt registry name) with
  | Some m -> Some (value_of m)
  | None -> None

let snapshot () =
  locked (fun () -> Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_metric = function
  | M_counter c -> Atomic.set c 0
  | M_gauge g -> Atomic.set g nan
  | M_timer t ->
      Mutex.lock t.t_lock;
      t.cell.seconds <- 0.;
      t.cell.calls <- 0;
      Mutex.unlock t.t_lock
  | M_histogram h ->
      Mutex.lock h.h_lock;
      Array.fill h.h_buckets 0 hist_buckets 0;
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      Mutex.unlock h.h_lock

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let reset ?prefix () =
  locked (fun () ->
      Hashtbl.iter
        (fun name m ->
          match prefix with
          | Some p when not (has_prefix ~prefix:p name) -> ()
          | _ -> reset_metric m)
        registry)

(* -- rendering ------------------------------------------------------------ *)

let pp_value fmt = function
  | Counter n -> Format.fprintf fmt "%d" n
  | Gauge v -> if Float.is_nan v then Format.fprintf fmt "unset" else Format.fprintf fmt "%g" v
  | Timer { seconds; calls } -> Format.fprintf fmt "%.4f s over %d calls" seconds calls
  | Histogram h ->
      if h.count = 0 then Format.fprintf fmt "empty"
      else
        Format.fprintf fmt "n=%d mean=%.4g p50~%.3g p90~%.3g p99~%.3g min=%.4g max=%.4g" h.count
          (histogram_mean h) (histogram_quantile h 0.5) (histogram_quantile h 0.9)
          (histogram_quantile h 0.99) h.min_v h.max_v

let nonempty = function
  | Counter 0 -> false
  | Gauge v -> not (Float.is_nan v)
  | Timer { calls; _ } -> calls > 0
  | Histogram { count; _ } -> count > 0
  | Counter _ -> true

let pp_snapshot fmt entries =
  let entries = List.filter (fun (_, v) -> nonempty v) entries in
  if entries = [] then Format.fprintf fmt "(no metrics recorded)@."
  else begin
    let width =
      List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 entries
    in
    List.iter
      (fun (name, v) -> Format.fprintf fmt "%-*s  %a@." width name pp_value v)
      entries
  end
