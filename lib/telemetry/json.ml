(* A minimal JSON reader/writer.

   The container has no JSON package, and the repository's needs are
   small: parse the flat-ish BENCH_*.json artifacts and their
   provenance sidecars, validate Chrome trace_event exports in tests,
   and render machine-readable verdicts.  This is a complete JSON
   parser (objects, arrays, strings with escapes, numbers, literals)
   with one representational simplification: all numbers are floats,
   which is exactly how every producer in this repository writes
   them. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- reading --------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let error c fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c "expected %C, found %C" ch x
  | None -> error c "expected %C, found end of input" ch

let literal c word value =
  if
    c.pos + String.length word <= String.length c.src
    && String.sub c.src c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else error c "invalid literal"

(* Encode a Unicode scalar value as UTF-8 bytes. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch ->
        let d =
          match ch with
          | '0' .. '9' -> Char.code ch - Char.code '0'
          | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
          | _ -> error c "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> error c "truncated \\u escape");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'; advance c
        | Some '\\' -> Buffer.add_char buf '\\'; advance c
        | Some '/' -> Buffer.add_char buf '/'; advance c
        | Some 'b' -> Buffer.add_char buf '\b'; advance c
        | Some 'f' -> Buffer.add_char buf '\012'; advance c
        | Some 'n' -> Buffer.add_char buf '\n'; advance c
        | Some 'r' -> Buffer.add_char buf '\r'; advance c
        | Some 't' -> Buffer.add_char buf '\t'; advance c
        | Some 'u' ->
            advance c;
            let u = hex4 c in
            (* Surrogate pair: a high surrogate must be followed by
               \uDC00-\uDFFF; combine into one scalar value. *)
            if u >= 0xD800 && u <= 0xDBFF then begin
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              if lo < 0xDC00 || lo > 0xDFFF then error c "unpaired surrogate"
              else add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else add_utf8 buf u
        | _ -> error c "invalid escape");
        loop ()
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let consume () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance c;
        true
    | _ -> false
  in
  while consume () do
    ()
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with Some v -> Num v | None -> error c "malformed number %S" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "at byte %d: trailing garbage after the document" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* -- accessors ------------------------------------------------------------- *)

let member j key = match j with Obj fields -> List.assoc_opt key fields | _ -> None

let path j keys = List.fold_left (fun acc k -> Option.bind acc (fun j -> member j k)) (Some j) keys

let to_float = function Num v -> Some v | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let keys = function Obj fields -> List.map fst fields | _ -> []

(* -- writing --------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity; null is the least-surprising rendering. *)
let number v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec write buf ~indent ~level j =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string buf "\n" in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number v)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr elements ->
      Buffer.add_char buf '[';
      sep ();
      List.iteri
        (fun i v ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) v)
        elements;
      sep ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      sep ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            sep ()
          end;
          pad (level + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          if indent then Buffer.add_char buf ' ';
          write buf ~indent ~level:(level + 1) v)
        fields;
      sep ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) j =
  let buf = Buffer.create 256 in
  write buf ~indent:pretty ~level:0 j;
  Buffer.contents buf
