(** Serialize traced executions to disk.

    Format by extension: [*.jsonl] gets one JSON object per event per
    line; any other path gets Chrome [trace_event] JSON loadable in
    [chrome://tracing] / Perfetto (one named thread per execution,
    spans as complete events, simulated seconds exported as
    microseconds). *)

val write : path:string -> Tracer.buffer list -> unit

val write_registered : unit -> unit
(** Drain the {!Tracer} sink and write everything to
    [Tracer.out_path], if set and non-empty.  Logs a one-line summary
    to stderr. *)

val ensure_at_exit : unit -> unit
(** Install {!write_registered} as an [at_exit] hook (idempotent).
    Called by the evaluation harness when tracing is armed, so any
    binary that runs an evaluation exports its trace on exit. *)

val write_flight : path:string -> Flight_recorder.track list -> unit
(** Chrome trace_event export of scheduler flight-recorder tracks: one
    named thread per worker, state intervals as complete ("X") events,
    zero-duration spans (unpark) as instants, timestamps rebased to
    the earliest recorded span. *)

val write_flight_registered : unit -> unit
(** Write all flight-recorder tracks to [Flight_recorder.out_path],
    if set and any track recorded spans. *)

val ensure_flight_at_exit : unit -> unit
(** Install {!write_flight_registered} as an [at_exit] hook
    (idempotent).  Called by the scheduler when [CKPT_SCHED_TRACE]
    names an output path. *)

val jsonl_line : buffer_name:string -> Tracer.event -> string
(** One event as a JSONL line (exposed for tests). *)

val json_escape : string -> string
(** JSON string-content escaping (shared with {!Provenance}). *)
