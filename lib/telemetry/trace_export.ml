(* Serialize traced executions.

   Two formats, chosen by file extension:

   - "*.jsonl": one JSON object per event per line, prefixed by the
     buffer (execution) name — easy to grep and to post-process.
   - anything else: Chrome trace_event JSON ({"traceEvents": [...]}),
     loadable in chrome://tracing / Perfetto.  Each execution becomes
     one named thread; spans are complete ("X") events and point
     events are instants ("i").  Timestamps are simulated seconds
     exported as microseconds (the trace_event unit). *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers: finite floats only ("%.17g" round-trips doubles but
   is noisy; %g at 12 significant digits is exact at the microsecond
   over any simulated horizon we produce). *)
let num v = if Float.is_finite v then Printf.sprintf "%.12g" v else "0"

let micros v = num (v *. 1e6)

(* -- JSONL ---------------------------------------------------------------- *)

let event_fields = function
  | Tracer.Decision { at; chunk; remaining } ->
      ("decision", [ ("at", num at); ("chunk", num chunk); ("remaining", num remaining) ])
  | Tracer.Chunk_start { at; work } -> ("chunk-start", [ ("at", num at); ("work", num work) ])
  | Tracer.Chunk_commit { t0; t1; work } ->
      ("chunk-commit", [ ("t0", num t0); ("t1", num t1); ("work", num work) ])
  | Tracer.Checkpoint { t0; t1; cost } ->
      ("checkpoint", [ ("t0", num t0); ("t1", num t1); ("cost", num cost) ])
  | Tracer.Failure { at; proc } -> ("failure", [ ("at", num at); ("proc", string_of_int proc) ])
  | Tracer.Waste { t0; t1 } -> ("waste", [ ("t0", num t0); ("t1", num t1) ])
  | Tracer.Downtime { t0; t1 } -> ("downtime", [ ("t0", num t0); ("t1", num t1) ])
  | Tracer.Recovery_start { at } -> ("recovery-start", [ ("at", num at) ])
  | Tracer.Recovery_abort { t0; t1 } -> ("recovery-abort", [ ("t0", num t0); ("t1", num t1) ])
  | Tracer.Recovery_complete { t0; t1; cost } ->
      ("recovery-complete", [ ("t0", num t0); ("t1", num t1); ("cost", num cost) ])

let jsonl_line ~buffer_name e =
  let kind, fields = event_fields e in
  let fields = ("run", Printf.sprintf "%S" (json_escape buffer_name)) :: fields in
  Printf.sprintf "{\"event\":\"%s\",%s}" kind
    (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) fields))

let write_jsonl oc buffers =
  List.iter
    (fun b ->
      List.iter
        (fun e ->
          output_string oc (jsonl_line ~buffer_name:(Tracer.name b) e);
          output_char oc '\n')
        (Tracer.to_list b))
    buffers

(* -- Chrome trace_event --------------------------------------------------- *)

let span_json ~tid ~name ~t0 ~t1 ~args =
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s%s}" name
    tid (micros t0)
    (micros (t1 -. t0))
    (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args)

let instant_json ~tid ~name ~at ~args =
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s%s}"
    name tid (micros at)
    (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args)

let chrome_event ~tid = function
  | Tracer.Decision { at; chunk; remaining } ->
      instant_json ~tid ~name:"decision" ~at
        ~args:(Printf.sprintf "\"chunk_s\":%s,\"remaining_s\":%s" (num chunk) (num remaining))
  | Tracer.Chunk_start { at; work } ->
      instant_json ~tid ~name:"chunk-start" ~at ~args:(Printf.sprintf "\"work_s\":%s" (num work))
  | Tracer.Chunk_commit { t0; t1; work } ->
      span_json ~tid ~name:"work" ~t0 ~t1 ~args:(Printf.sprintf "\"work_s\":%s" (num work))
  | Tracer.Checkpoint { t0; t1; _ } -> span_json ~tid ~name:"checkpoint" ~t0 ~t1 ~args:""
  | Tracer.Failure { at; proc } ->
      instant_json ~tid ~name:"failure" ~at ~args:(Printf.sprintf "\"proc\":%d" proc)
  | Tracer.Waste { t0; t1 } -> span_json ~tid ~name:"waste" ~t0 ~t1 ~args:""
  | Tracer.Downtime { t0; t1 } -> span_json ~tid ~name:"downtime" ~t0 ~t1 ~args:""
  | Tracer.Recovery_start { at } -> instant_json ~tid ~name:"recovery-start" ~at ~args:""
  | Tracer.Recovery_abort { t0; t1 } -> span_json ~tid ~name:"recovery-abort" ~t0 ~t1 ~args:""
  | Tracer.Recovery_complete { t0; t1; _ } -> span_json ~tid ~name:"recovery" ~t0 ~t1 ~args:""

let write_chrome oc buffers =
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  List.iteri
    (fun tid b ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid
           (json_escape (Tracer.name b)));
      List.iter (fun e -> emit (chrome_event ~tid e)) (Tracer.to_list b))
    buffers;
  output_string oc "\n]}\n"

(* -- entry points --------------------------------------------------------- *)

let is_jsonl path = Filename.check_suffix path ".jsonl"

let write ~path buffers =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> if is_jsonl path then write_jsonl oc buffers else write_chrome oc buffers)

(* -- flight-recorder export ------------------------------------------------ *)

(* One Chrome thread per worker track.  Flight-recorder timestamps are
   absolute Unix times; rebase on the earliest recorded instant so the
   trace opens at t=0 instead of 1.7e9 seconds. *)
let write_flight_chrome oc tracks =
  let epoch =
    List.fold_left
      (fun acc t ->
        match Flight_recorder.spans t with
        | [] -> acc
        | { Flight_recorder.sp_t0; _ } :: _ -> Float.min acc sp_t0)
      infinity tracks
  in
  let epoch = if Float.is_finite epoch then epoch else 0. in
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  List.iteri
    (fun tid t ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid
           (json_escape (Flight_recorder.track_name t)));
      List.iter
        (fun { Flight_recorder.sp_state; sp_t0; sp_t1 } ->
          let name = Flight_recorder.state_name sp_state in
          if sp_t1 > sp_t0 then
            emit (span_json ~tid ~name ~t0:(sp_t0 -. epoch) ~t1:(sp_t1 -. epoch) ~args:"")
          else emit (instant_json ~tid ~name ~at:(sp_t0 -. epoch) ~args:""))
        (Flight_recorder.spans t))
    tracks;
  output_string oc "\n]}\n"

let write_flight ~path tracks =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_flight_chrome oc tracks)

let flight_at_exit_installed = Atomic.make false

let write_flight_registered () =
  match Flight_recorder.out_path () with
  | None -> ()
  | Some path ->
      let tracks = Flight_recorder.tracks () in
      if List.exists (fun t -> Flight_recorder.spans t <> []) tracks then begin
        write_flight ~path tracks;
        let dropped = List.fold_left (fun a t -> a + Flight_recorder.dropped t) 0 tracks in
        Printf.eprintf "[sched-trace] wrote %d worker track(s) to %s%s\n%!" (List.length tracks)
          path
          (if dropped > 0 then
             Printf.sprintf " (%d spans dropped; raise CKPT_SCHED_TRACE_CAP)" dropped
           else "")
      end

let ensure_flight_at_exit () =
  if not (Atomic.exchange flight_at_exit_installed true) then at_exit write_flight_registered

(* End-of-process export of everything the sink accumulated.  The hook
   is installed at most once, on the first registration-producing code
   path that calls [ensure_at_exit] (the evaluation harness), and only
   fires when an output path is configured and buffers exist. *)
let at_exit_installed = Atomic.make false

let write_registered () =
  match Tracer.out_path () with
  | None -> ()
  | Some path ->
      let buffers, rejected = Tracer.drain () in
      if buffers <> [] then begin
        write ~path buffers;
        Printf.eprintf "[trace] wrote %d execution trace(s) to %s%s\n%!" (List.length buffers)
          path
          (if rejected > 0 then
             Printf.sprintf " (%d more runs traced but not kept; raise CKPT_TRACE_BUFFERS)"
               rejected
           else "")
      end

let ensure_at_exit () =
  if not (Atomic.exchange at_exit_installed true) then at_exit write_registered
