(* Typed execution tracing for the simulation engine.

   The engine emits one event per simulated phase transition — chunk
   start/commit, checkpoint, failure, downtime, recovery
   start/abort/complete, policy decision — into a per-execution ring
   buffer.  Timestamps are *simulated* seconds (the engine's clock),
   and durations reconcile bit-for-bit with [Engine.metrics]:

     useful_work     = sum of Chunk_commit work
     checkpoint_time = sum of Checkpoint costs
     wasted_time     = sum of Waste spans
     recovery_time   = sum of Recovery_abort spans + Recovery_complete costs
     stall_time      = sum of Downtime spans

   Checkpoint and Recovery_complete carry the engine's cost operand
   alongside the span because [t1 -. t0] re-rounds through the running
   clock: [(now +. chunk +. c) -. (now +. chunk)] is not always [c].
   [totals] folds the same operands in the same order as the engine's
   accumulators, so equality is exact, not epsilon
   (asserted by test/test_simulator.ml).

   Tracing is off by default: the engine's fast path is one [match] on
   an option per emission site.  Setting CKPT_TRACE_OUT=<path> arms it
   globally — the evaluation harness then allocates a buffer per
   (replicate, policy) run and the accumulated buffers are written to
   <path> at process exit (Chrome trace_event JSON, or JSONL when the
   path ends in .jsonl); see {!Trace_export}. *)

type event =
  | Decision of { at : float; chunk : float; remaining : float }
  | Chunk_start of { at : float; work : float }
  | Chunk_commit of { t0 : float; t1 : float; work : float }
  | Checkpoint of { t0 : float; t1 : float; cost : float }
  | Failure of { at : float; proc : int }
  | Waste of { t0 : float; t1 : float }
  | Downtime of { t0 : float; t1 : float }
  | Recovery_start of { at : float }
  | Recovery_abort of { t0 : float; t1 : float }
  | Recovery_complete of { t0 : float; t1 : float; cost : float }

(* -- global switches ------------------------------------------------------ *)

let env_out_path =
  match Sys.getenv_opt "CKPT_TRACE_OUT" with Some "" | None -> None | Some p -> Some p

let out_path_ref = Atomic.make env_out_path
let enabled_flag = Atomic.make (env_out_path <> None)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let out_path () = Atomic.get out_path_ref

let set_out_path p =
  Atomic.set out_path_ref p;
  if p <> None then Atomic.set enabled_flag true

(* -- ring buffers --------------------------------------------------------- *)

let default_capacity = 65_536

let env_capacity =
  match Sys.getenv_opt "CKPT_TRACE_CAP" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None -> default_capacity)
  | None -> default_capacity

type buffer = {
  name : string;
  events : event array;
  capacity : int;
  mutable length : int;  (* events currently stored, <= capacity *)
  mutable head : int;  (* next write position *)
  mutable dropped : int;  (* events overwritten after the ring filled *)
}

let sentinel = Failure { at = nan; proc = -1 }

let create_buffer ?capacity ~name () =
  let capacity =
    match capacity with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Tracer.create_buffer: capacity must be positive"
    | None -> env_capacity
  in
  { name; events = Array.make capacity sentinel; capacity; length = 0; head = 0; dropped = 0 }

let name b = b.name
let length b = b.length
let dropped b = b.dropped

(* A buffer is owned by the single engine run writing to it; no lock. *)
let emit b e =
  b.events.(b.head) <- e;
  b.head <- (b.head + 1) mod b.capacity;
  if b.length < b.capacity then b.length <- b.length + 1 else b.dropped <- b.dropped + 1

let to_list b =
  let start = (b.head - b.length + b.capacity) mod b.capacity in
  List.init b.length (fun i -> b.events.((start + i) mod b.capacity))

let clear b =
  b.length <- 0;
  b.head <- 0;
  b.dropped <- 0

(* -- per-buffer totals (the reconciliation view) -------------------------- *)

type totals = {
  work : float;
  checkpoint : float;
  waste : float;
  recovery : float;
  downtime : float;
  failures : int;
  chunks : int;
  decisions : int;
}

let zero_totals =
  {
    work = 0.;
    checkpoint = 0.;
    waste = 0.;
    recovery = 0.;
    downtime = 0.;
    failures = 0;
    chunks = 0;
    decisions = 0;
  }

let totals b =
  List.fold_left
    (fun t e ->
      match e with
      | Decision _ -> { t with decisions = t.decisions + 1 }
      | Chunk_start _ -> t
      | Chunk_commit { work; _ } -> { t with work = t.work +. work; chunks = t.chunks + 1 }
      | Checkpoint { cost; _ } -> { t with checkpoint = t.checkpoint +. cost }
      | Failure _ -> { t with failures = t.failures + 1 }
      | Waste { t0; t1 } -> { t with waste = t.waste +. (t1 -. t0) }
      | Downtime { t0; t1 } -> { t with downtime = t.downtime +. (t1 -. t0) }
      | Recovery_start _ -> t
      | Recovery_abort { t0; t1 } -> { t with recovery = t.recovery +. (t1 -. t0) }
      | Recovery_complete { cost; _ } -> { t with recovery = t.recovery +. cost })
    zero_totals (to_list b)

(* -- the sink: buffers accumulated for end-of-process export -------------- *)

let default_max_buffers = 512

let max_buffers =
  match Sys.getenv_opt "CKPT_TRACE_BUFFERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None -> default_max_buffers)
  | None -> default_max_buffers

let sink_lock = Mutex.create ()
let sink : buffer list ref = ref []
let sink_length = ref 0
let sink_rejected = ref 0

let register b =
  Mutex.lock sink_lock;
  if !sink_length < max_buffers then begin
    sink := b :: !sink;
    incr sink_length
  end
  else incr sink_rejected;
  Mutex.unlock sink_lock

let drain () =
  Mutex.lock sink_lock;
  let buffers = List.rev !sink in
  let rejected = !sink_rejected in
  sink := [];
  sink_length := 0;
  sink_rejected := 0;
  Mutex.unlock sink_lock;
  (buffers, rejected)

(* -- rendering ------------------------------------------------------------ *)

let pp_event fmt = function
  | Decision { at; chunk; remaining } ->
      Format.fprintf fmt "%12.1f  decision          chunk %g s (%g s remaining)" at chunk remaining
  | Chunk_start { at; work } -> Format.fprintf fmt "%12.1f  chunk-start       %g s of work" at work
  | Chunk_commit { t0; t1; work } ->
      Format.fprintf fmt "%12.1f  chunk-commit      %g s of work done at %g" t0 work t1
  | Checkpoint { t0; cost; _ } -> Format.fprintf fmt "%12.1f  checkpoint        %g s" t0 cost
  | Failure { at; proc } -> Format.fprintf fmt "%12.1f  FAILURE           processor %d" at proc
  | Waste { t0; t1 } -> Format.fprintf fmt "%12.1f  waste             %g s destroyed" t0 (t1 -. t0)
  | Downtime { t0; t1 } -> Format.fprintf fmt "%12.1f  downtime          %g s stalled" t0 (t1 -. t0)
  | Recovery_start { at } -> Format.fprintf fmt "%12.1f  recovery-start" at
  | Recovery_abort { t0; t1 } ->
      Format.fprintf fmt "%12.1f  recovery-abort    %g s lost" t0 (t1 -. t0)
  | Recovery_complete { t0; cost; _ } ->
      Format.fprintf fmt "%12.1f  recovery-complete %g s" t0 cost

let pp_timeline ?limit fmt b =
  let events = to_list b in
  let n = List.length events in
  let limit = match limit with Some l -> l | None -> n in
  Format.fprintf fmt "trace %s: %d events%s@." b.name n
    (if b.dropped > 0 then Printf.sprintf " (+%d dropped by the ring)" b.dropped else "");
  List.iteri (fun i e -> if i < limit then Format.fprintf fmt "%a@." pp_event e) events;
  if n > limit then Format.fprintf fmt "  ... (%d more)@." (n - limit);
  let t = totals b in
  Format.fprintf fmt
    "totals: work %.1f s, checkpoint %.1f s, waste %.1f s, recovery %.1f s, downtime %.1f s, \
     %d failures, %d chunks@."
    t.work t.checkpoint t.waste t.recovery t.downtime t.failures t.chunks
