(** Scheduler flight recorder: per-worker wall-clock state intervals.

    Each worker domain of the steal scheduler owns one {!track} and
    records which state it is in — running a task, attempting or
    completing a steal, injecting tickets, parked, or helping another
    region's join — as spans on a per-track monotone wall clock.
    Recording is single-writer (the owning domain) and lock-free;
    reports and exports run after the parallel region quiesces.

    Off by default.  [CKPT_SCHED_TRACE=1] enables recording; any other
    non-empty value (except [0]/[false]) also names a Chrome
    trace_event output path written at process exit.
    [CKPT_SCHED_TRACE_CAP] overrides the per-track ring capacity
    (default 65536 spans; older spans are dropped on wrap-around and
    counted). *)

type state =
  | Run_task
  | Steal_attempt  (** looked for work and found none *)
  | Steal_success  (** looked for work and found a region *)
  | Inject
  | Park
  | Unpark  (** instant: woken by an epoch bump *)
  | Join_help  (** running another region's items while joining *)

val all_states : state list
val state_name : state -> string

type span = { sp_state : state; sp_t0 : float; sp_t1 : float }

(** {1 Configuration} *)

val enabled : unit -> bool
(** One atomic read; every recording site branches on this. *)

val set_enabled : bool -> unit

val out_path : unit -> string option
(** Chrome trace output path from [CKPT_SCHED_TRACE] (when it is a
    path rather than [1]) or {!set_out_path}. *)

val set_out_path : string -> unit
(** Also enables recording. *)

(** {1 Tracks and recording} *)

type track

val track : ?capacity:int -> string -> track
(** Get or create the track registered under this name.  Each track
    must be written by a single domain. *)

val track_name : track -> string

val now : unit -> float
(** [Unix.gettimeofday] — real wall clock, unlike [Tracer]'s simulated
    timestamps. *)

val record : track -> state -> t0:float -> t1:float -> unit
(** Owner-domain only.  Timestamps are clamped monotone per track. *)

val instant : track -> state -> at:float -> unit
(** A zero-duration span (e.g. {!Unpark}). *)

val spans : track -> span list
(** Retained spans, oldest first. *)

val dropped : track -> int
val tracks : unit -> track list
(** All registered tracks in creation order. *)

val reset : unit -> unit
(** Forget all tracks (tests). *)

(** {1 Utilization report} *)

type state_total = { st_state : state; st_seconds : float; st_count : int }

type worker_report = {
  wr_name : string;
  wr_wall : float;  (** last span end − first span start *)
  wr_attributed : float;  (** total seconds inside recorded spans *)
  wr_states : state_total list;  (** one entry per {!all_states} member *)
  wr_dropped : int;
}

val report : unit -> worker_report list

val state_seconds : worker_report -> state -> float
val state_count : worker_report -> state -> int

type overhead = { ov_label : string; ov_seconds : float; ov_events : int }

val overheads : worker_report list -> overhead list
(** The three steal-scheduler overhead candidates — failed steals,
    parking churn, injector contention — summed across workers,
    sorted by descending time. *)

val dominant_overhead : worker_report list -> overhead option
(** Head of {!overheads} when it has nonzero time. *)
