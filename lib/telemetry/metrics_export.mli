(** Metrics time-series and OpenMetrics exposition.

    A periodic sampler ([CKPT_METRICS_INTERVAL], in seconds; implies
    [CKPT_METRICS=1]) snapshots the {!Metrics} registry, atomically
    publishes an OpenMetrics/Prometheus textfile to
    [CKPT_METRICS_OUT] (default [metrics.prom]) via
    [Ckpt_store.Atomic_file], and appends a JSONL time-series sample
    to the same path + [.jsonl].  Setting [CKPT_METRICS_OUT] without
    an interval publishes one final snapshot at process exit.

    This is the monitoring substrate for long sweeps and the planned
    [ckpt serve]: histograms surface p50/p90/p99, counters and timers
    map to their native OpenMetrics types. *)

val openmetrics : (string * Metrics.value) list -> string
(** Render a snapshot as an OpenMetrics textfile, terminated by
    [# EOF].  Counters become [<name>_total]; timers and histograms
    become summaries ([_sum]/[_count], histograms additionally with
    [quantile="0.5"|"0.9"|"0.99"] sample lines).  Metric names are
    sanitized ([/] → [_]) and prefixed [ckpt_]. *)

val jsonl_sample : ts:float -> (string * Metrics.value) list -> string
(** One time-series sample as a single JSON line:
    [{"ts": ..., "metrics": {<name>: {...}, ...}}]. *)

val publish : unit -> unit
(** Snapshot and write both outputs now.  Never raises — failures are
    reported to stderr (the sampler thread must not kill the
    process). *)

val ensure_sampler : unit -> unit
(** Start the sampler thread per the environment (idempotent; no-op
    when neither [CKPT_METRICS_INTERVAL] nor [CKPT_METRICS_OUT] is
    set).  Installs an [at_exit] final publish. *)

val stop : unit -> unit
(** Ask a running sampler thread to exit after its current delay. *)

val out_path : unit -> string
val series_path : unit -> string
