(** Process-global metrics registry: named counters, gauges, timers
    and log-scale histograms.

    Off by default; enable with [CKPT_METRICS=1] or {!set_enabled}.
    When disabled, every update entry point ({!incr}, {!add}, {!set},
    {!observe}) is a single [Atomic.get] branch, so instrumented hot
    paths cost nothing in normal runs.  {!record} (used by the
    wall-clock Instrument layer, which applies its own gating) is the
    one unconditional update.  All entry points are domain-safe.

    Handles are registered by name on first use and shared thereafter;
    registering the same name with a different kind raises
    [Invalid_argument]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Handles} *)

type counter
type gauge
type timer
type histogram

val counter : string -> counter
val gauge : string -> gauge
val timer : string -> timer
val histogram : string -> histogram

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val record : timer -> float -> unit
(** [record t dt] accumulates [dt] seconds and one call.  Not gated on
    {!enabled}: callers measure (and pay for) the duration themselves. *)

val observe : histogram -> float -> unit
(** Count [v] into its power-of-two bucket and the running moments. *)

(** {1 Snapshots} *)

type histogram_snapshot = {
  buckets : int array;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
}

val merge_histograms : histogram_snapshot -> histogram_snapshot -> histogram_snapshot
(** [Summary.merge]-style combination: the merge of two snapshots is
    the snapshot of the concatenated observation streams (commutative
    and associative), so per-domain histograms combine in any order. *)

val empty_histogram : histogram_snapshot
val histogram_mean : histogram_snapshot -> float
val histogram_quantile : histogram_snapshot -> float -> float
(** Bucket-resolution estimate: geometric midpoint of the bucket
    holding the rank, clamped into [[min_v, max_v]] so the result is
    monotone in the quantile argument; [p <= 0] and [p >= 1] return
    the exact observed extrema.  NaN on an empty snapshot. *)

val bucket_lower : int -> float
(** Lower bound of bucket [i], [2^(i - 32)] seconds. *)

type value =
  | Counter of int
  | Gauge of float  (** NaN when never set *)
  | Timer of { seconds : float; calls : int }
  | Histogram of histogram_snapshot

val find : string -> value option
val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name.  Unaffected by
    {!enabled} — reads always see the current values. *)

val reset : ?prefix:string -> unit -> unit
(** Zero the values (registrations survive).  With [prefix], only
    metrics whose name starts with it. *)

val pp_value : Format.formatter -> value -> unit

val pp_snapshot : Format.formatter -> (string * value) list -> unit
(** Aligned one-line-per-metric rendering, skipping never-touched
    entries. *)
