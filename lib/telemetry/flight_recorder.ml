(* Scheduler flight recorder: what is each worker domain doing, when?

   The steal scheduler's counters (sched/steals, sched/idle_park, ...)
   say how often things happened but not where the wall time went —
   open item 5's regression (steal slower than flat at 2–8 domains)
   needs per-worker, per-interval visibility.  This module records
   worker *state intervals* — run-task, steal-attempt, steal-success,
   inject, park, unpark, join-help — into per-track ring buffers with
   the same single-writer discipline as [Tracer]: each track is owned
   by exactly one domain, so recording takes no lock and no atomic
   beyond the enabled check.

   Unlike [Tracer] (simulated clock), spans here are real wall-clock
   intervals from [Unix.gettimeofday], clamped monotone per track so a
   stepped system clock cannot produce negative spans.

   Off by default.  CKPT_SCHED_TRACE=1 records (for `ckpt
   sched-report`); any other non-empty value is treated as an output
   path and additionally exports a Chrome trace_event file at exit
   (via [Trace_export.ensure_flight_at_exit]). *)

type state =
  | Run_task
  | Steal_attempt
  | Steal_success
  | Inject
  | Park
  | Unpark
  | Join_help

let all_states = [ Run_task; Steal_attempt; Steal_success; Inject; Park; Unpark; Join_help ]

let state_name = function
  | Run_task -> "run-task"
  | Steal_attempt -> "steal-attempt"
  | Steal_success -> "steal-success"
  | Inject -> "inject"
  | Park -> "park"
  | Unpark -> "unpark"
  | Join_help -> "join-help"

let state_tag = function
  | Run_task -> 0
  | Steal_attempt -> 1
  | Steal_success -> 2
  | Inject -> 3
  | Park -> 4
  | Unpark -> 5
  | Join_help -> 6

let state_of_tag = function
  | 0 -> Run_task
  | 1 -> Steal_attempt
  | 2 -> Steal_success
  | 3 -> Inject
  | 4 -> Park
  | 5 -> Unpark
  | _ -> Join_help

(* An instant (unpark) is a span with t1 = t0; it contributes zero
   duration to attribution but shows up as a marker in exports. *)
type span = { sp_state : state; sp_t0 : float; sp_t1 : float }

(* -- configuration ---------------------------------------------------------- *)

let parse_env = function
  | None | Some "" | Some "0" | Some "false" -> (false, None)
  | Some ("1" | "true") -> (true, None)
  | Some path -> (true, Some path)

let initial_enabled, initial_out = parse_env (Sys.getenv_opt "CKPT_SCHED_TRACE")
let enabled_flag = Atomic.make initial_enabled
let out_ref = Atomic.make initial_out
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let out_path () = Atomic.get out_ref

let set_out_path path =
  Atomic.set out_ref (Some path);
  Atomic.set enabled_flag true

let default_capacity =
  match Option.bind (Sys.getenv_opt "CKPT_SCHED_TRACE_CAP") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 65536

(* -- tracks ----------------------------------------------------------------- *)

(* Struct-of-arrays ring: tag/t0/t1 in parallel arrays, no per-span
   allocation on the hot path.  Only the owning domain mutates; a
   reader (report/export) runs after the parallel region quiesces. *)
type track = {
  tr_name : string;
  tags : int array;
  t0s : float array;
  t1s : float array;
  capacity : int;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable dropped : int;  (* spans overwritten after wrap-around *)
  mutable last : float;  (* monotone clock clamp, owner-only *)
}

let registry : track list ref = ref []
let registry_lock = Mutex.create ()

let make_track ~capacity name =
  {
    tr_name = name;
    tags = Array.make capacity 0;
    t0s = Array.make capacity 0.;
    t1s = Array.make capacity 0.;
    capacity;
    head = 0;
    len = 0;
    dropped = 0;
    last = 0.;
  }

let track ?(capacity = default_capacity) name =
  Mutex.lock registry_lock;
  let t =
    match List.find_opt (fun t -> t.tr_name = name) !registry with
    | Some t -> t
    | None ->
        let t = make_track ~capacity:(max 1 capacity) name in
        registry := t :: !registry;
        t
  in
  Mutex.unlock registry_lock;
  t

let tracks () =
  Mutex.lock registry_lock;
  let ts = List.rev !registry in
  Mutex.unlock registry_lock;
  ts

let reset () =
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock

(* -- recording (owner domain only) ------------------------------------------ *)

let now () = Unix.gettimeofday ()

let record t state ~t0 ~t1 =
  (* Clamp monotone per track: a backwards-stepping wall clock must
     not produce negative or overlapping-in-reverse spans. *)
  let t0 = Float.max t0 t.last in
  let t1 = Float.max t1 t0 in
  t.last <- t1;
  t.tags.(t.head) <- state_tag state;
  t.t0s.(t.head) <- t0;
  t.t1s.(t.head) <- t1;
  t.head <- (t.head + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1

let instant t state ~at = record t state ~t0:at ~t1:at

let spans t =
  let start = (t.head - t.len + t.capacity * 2) mod t.capacity in
  List.init t.len (fun i ->
      let j = (start + i) mod t.capacity in
      { sp_state = state_of_tag t.tags.(j); sp_t0 = t.t0s.(j); sp_t1 = t.t1s.(j) })

let dropped t = t.dropped
let track_name t = t.tr_name

(* -- utilization report ------------------------------------------------------ *)

type state_total = { st_state : state; st_seconds : float; st_count : int }

type worker_report = {
  wr_name : string;
  wr_wall : float;  (* last span end - first span start *)
  wr_attributed : float;  (* sum of span durations *)
  wr_states : state_total list;  (* in [all_states] order *)
  wr_dropped : int;
}

let report_of_track t =
  let sps = spans t in
  match sps with
  | [] -> { wr_name = t.tr_name; wr_wall = 0.; wr_attributed = 0.; wr_states = []; wr_dropped = t.dropped }
  | first :: _ ->
      let last_t1 = List.fold_left (fun acc s -> Float.max acc s.sp_t1) first.sp_t0 sps in
      let seconds = Array.make 7 0. and counts = Array.make 7 0 in
      List.iter
        (fun s ->
          let i = state_tag s.sp_state in
          seconds.(i) <- seconds.(i) +. (s.sp_t1 -. s.sp_t0);
          counts.(i) <- counts.(i) + 1)
        sps;
      {
        wr_name = t.tr_name;
        wr_wall = last_t1 -. first.sp_t0;
        wr_attributed = Array.fold_left ( +. ) 0. seconds;
        wr_states =
          List.map
            (fun st ->
              let i = state_tag st in
              { st_state = st; st_seconds = seconds.(i); st_count = counts.(i) })
            all_states;
        wr_dropped = t.dropped;
      }

let report () = List.map report_of_track (tracks ())

let state_seconds wr st =
  List.fold_left
    (fun acc r -> if r.st_state = st then acc +. r.st_seconds else acc)
    0. wr.wr_states

let state_count wr st =
  List.fold_left (fun acc r -> if r.st_state = st then acc + r.st_count else acc) 0 wr.wr_states

(* The three candidate explanations for steal-scheduler overhead, each
   summed across all workers.  "Failed steals" is time spent in
   steal-attempt spans that found nothing; "parking churn" is time
   parked plus the wake transitions; "injector contention" is time
   spent pushing tickets through the shared injector. *)
type overhead = { ov_label : string; ov_seconds : float; ov_events : int }

let overheads reports =
  let total st = List.fold_left (fun acc wr -> acc +. state_seconds wr st) 0. reports in
  let count st = List.fold_left (fun acc wr -> acc + state_count wr st) 0 reports in
  [
    { ov_label = "failed steals"; ov_seconds = total Steal_attempt; ov_events = count Steal_attempt };
    {
      ov_label = "parking churn";
      ov_seconds = total Park;
      ov_events = count Park + count Unpark;
    };
    { ov_label = "injector contention"; ov_seconds = total Inject; ov_events = count Inject };
  ]
  |> List.stable_sort (fun a b -> Float.compare b.ov_seconds a.ov_seconds)

let dominant_overhead reports =
  match overheads reports with
  | { ov_seconds; _ } :: _ when ov_seconds <= 0. -> None
  | o :: _ -> Some o
  | [] -> None
