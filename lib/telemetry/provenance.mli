(** Provenance manifests: the context needed to regenerate any
    artifact written to [results/] or by the bench harness.

    A manifest records the git revision ([git describe], "unknown"
    outside a work tree), the exact command line, the OCaml version,
    the effective domain count, every [CKPT_*] environment knob, and
    caller-supplied parameters (scenario settings, seeds). *)

val manifest : ?extra:(string * string) list -> unit -> string
(** The manifest as a JSON document.  [extra] lands under
    ["parameters"]. *)

val sidecar_path : string -> string
(** [sidecar_path p] is [p ^ ".meta.json"]. *)

val write_sidecar : ?extra:(string * string) list -> path:string -> unit -> unit
(** Write the manifest next to [path].  Never raises (a sidecar must
    not break the write of the artifact itself). *)

val domain_count : unit -> int
(** The effective fan-out width: [CKPT_DOMAINS] if valid, else the
    runtime's recommended domain count. *)
