(** Everything a policy constructor needs to know about the job and
    its platform. *)

type t = {
  dist : Ckpt_distributions.Distribution.t;
      (** failure inter-arrival distribution of one {e failure unit}
          (a processor, or a whole node when failures take down
          [group_size] processors together, as in the LANL logs). *)
  processors : int;  (** processors enrolled by the job. *)
  group_size : int;
      (** processors per failure unit; 1 unless failures are
          node-grained. *)
  machine : Ckpt_platform.Machine.t;
  work_time : float;  (** [W(p)], seconds of parallel work. *)
}

val create :
  dist:Ckpt_distributions.Distribution.t ->
  processors:int ->
  machine:Ckpt_platform.Machine.t ->
  work_time:float ->
  t
(** A job whose failure units are single processors ([group_size] 1).
    @raise Invalid_argument on non-positive work or a processor count
    outside the machine. *)

val with_group_size : t -> int -> t
(** [with_group_size t k] makes failures node-grained: units of [k]
    processors fail together.
    @raise Invalid_argument if [k] does not divide the processor
    count. *)

val of_workload :
  dist:Ckpt_distributions.Distribution.t ->
  processors:int ->
  machine:Ckpt_platform.Machine.t ->
  workload:Ckpt_platform.Workload.t ->
  t
(** Derives [work_time] from the workload's parallelism model. *)

val failure_units : t -> int
(** [processors / group_size]: independent failure sources. *)

val checkpoint_cost : t -> float
(** [C(p)]. *)

val recovery_cost : t -> float
(** [R(p)]. *)

val downtime : t -> float

val unit_mtbf : t -> float
(** [mu], the mean of the per-unit distribution. *)

val platform_mtbf : t -> float
(** [mu / failure_units], the paper's platform mean time between
    failures under failed-only rejuvenation (downtime excluded, as in
    the heuristics' period formulas). *)

val platform_dist : t -> Ckpt_distributions.Distribution.t
(** Distribution of the first failure of a {e fresh} platform
    ([min_of_iid dist failure_units]) — the rejuvenate-all view used
    by DPMakespan and Bouguerra. *)

val dp_context : t -> platform_view:bool -> Ckpt_core.Dp_context.t
(** The DP setting: overheads at [p] processors and either the
    per-unit distribution ([platform_view = false]; for
    DPNextFailure, which models ages explicitly) or the aggregated
    fresh-platform distribution ([platform_view = true]; for
    DPMakespan's rejuvenate-all assumption). *)
