module Distribution = Ckpt_distributions.Distribution
module Rootfind = Ckpt_numerics.Rootfind

let expected_time_for_period job dist ~period =
  let c = Job.checkpoint_cost job in
  let r = Job.recovery_cost job in
  let d = Job.downtime job in
  let duration = period +. c in
  let p = Distribution.conditional_survival dist ~age:0. ~duration in
  if p <= 0. then infinity
  else begin
    let lost = Distribution.expected_tlost dist ~age:0. ~window:duration in
    (* E = p (T+C) + (1-p) (lost + D + R + E)  =>  solve for E. *)
    ((p *. duration) +. ((1. -. p) *. (lost +. d +. r))) /. p
  end

let expected_waste_ratio job ~period =
  if period <= 0. then invalid_arg "Bouguerra.expected_waste_ratio: period must be positive";
  let dist = Job.platform_dist job in
  expected_time_for_period job dist ~period /. period

let period job =
  let dist = Job.platform_dist job in
  let f t = expected_time_for_period job dist ~period:t /. t in
  let lo = Float.max 1. (Job.checkpoint_cost job /. 100.) in
  let hi = job.Job.work_time in
  if hi <= lo then hi
  else Rootfind.grid_then_golden ~points:128 ~f ~lo ~hi ()

let policy job = Policy.periodic "Bouguerra" ~period:(period job)
