module Units = Ckpt_platform.Units

type entry = {
  start : float;
  chunk : float;
  checkpoint_at : float;
}

let failure_free ?initial_ages ?(max_entries = 100_000) policy job =
  let units = Job.failure_units job in
  let ages =
    match initial_ages with
    | Some a ->
        if Array.length a <> units then
          invalid_arg "Schedule.failure_free: initial_ages size mismatch";
        Array.copy a
    | None -> Array.make units (Units.of_years 1.)
  in
  let c = Job.checkpoint_cost job in
  let instance = policy.Policy.instantiate () in
  let remaining = ref job.Job.work_time in
  let now = ref 0. in
  let phase = ref Policy.Start in
  let entries = ref [] in
  let continue = ref true in
  let iter_ages f = Array.iter f ages in
  while !continue && !remaining > 1e-6 && List.length !entries < max_entries do
    let obs =
      {
        Policy.phase = !phase;
        remaining = !remaining;
        failure_units = units;
        min_age = Array.fold_left Float.min infinity ages;
        iter_ages;
        summarize = Policy.summarize_of_iter ~units ~iter_ages;
      }
    in
    match instance obs with
    | None ->
        entries := [];
        continue := false
    | Some chunk ->
        let chunk = Policy.clamp_chunk ~remaining:!remaining chunk in
        let chunk = if chunk < 1e-6 then !remaining else chunk in
        entries := { start = !now; chunk; checkpoint_at = !now +. chunk } :: !entries;
        now := !now +. chunk +. c;
        remaining := !remaining -. chunk;
        Array.iteri (fun i a -> ages.(i) <- a +. chunk +. c) ages;
        phase := Policy.After_checkpoint
  done;
  List.rev !entries

let to_csv entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "start,chunk,checkpoint_at\n";
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "%g,%g,%g\n" e.start e.chunk e.checkpoint_at))
    entries;
  Buffer.contents buf

let interval_range = function
  | [] -> None
  | entries ->
      Some
        (List.fold_left
           (fun (lo, hi) e -> (Float.min lo e.chunk, Float.max hi e.chunk))
           (infinity, neg_infinity) entries)
