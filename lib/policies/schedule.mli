(** The failure-free checkpoint timetable of a policy.

    Operators planning a run want the prescribed checkpoint dates, not
    just the abstract policy; this unrolls a policy's decisions under
    the assumption that no failure strikes (every chunk commits), the
    same idealization under which the paper reports DPNextFailure's
    2,984-6,108 s interval range. *)

type entry = {
  start : float;  (** seconds after job start when the chunk begins *)
  chunk : float;  (** work seconds before the next checkpoint *)
  checkpoint_at : float;  (** [start + chunk]: the checkpoint date *)
}

val failure_free :
  ?initial_ages:float array ->
  ?max_entries:int ->
  Policy.t ->
  Job.t ->
  entry list
(** [failure_free policy job] unrolls the timetable until the work is
    exhausted (or [max_entries], default 100,000, as a guard).
    [initial_ages] are the per-unit times since last failure at job
    start (default: every unit fresh at one year of age, the paper's
    steady-state start).  Returns [\[\]] if the policy declines. *)

val to_csv : entry list -> string
(** Header [start,chunk,checkpoint_at], one row per entry. *)

val interval_range : entry list -> (float * float) option
(** Smallest and largest chunk of the timetable. *)
