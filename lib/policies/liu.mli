(** The Liu et al. non-periodic policy (IPDPS 2008; Section 4.1).

    Liu et al. place checkpoints through an optimal
    checkpointing-frequency function; in the variational-calculus form
    (Ling-Mi-Lin) the optimal frequency density is
    [n(t) = sqrt (h(t) / (2 C))] with [h] the hazard rate, and the
    [j]-th checkpoint lands where the accumulated frequency
    [N(t) = integral of n] reaches [j].  Because [n] is integrable at
    0 even for Weibull shapes [k < 1], the first interval after a
    failure is finite — but it shrinks with the platform hazard, and
    once it falls below the checkpoint cost itself the prescription is
    nonsensical: the policy answers [None] and the evaluation reports
    the cell as absent.  That happens exactly where the paper reports
    Liu "fails to compute meaningful checkpoint dates": small shapes
    and/or very large platforms.

    Following the paper's platform-level reading, [t] is the time
    since the last {e platform} failure and the hazard is the
    fresh-platform one ([units] times the per-unit hazard at [t]).

    The reference formula in Liu et al. is partly ambiguous — the
    paper itself "speculate[s] that there may be an error in [17]" —
    so this is a faithful-in-spirit reconstruction; see DESIGN.md. *)

type table
(** Precomputed accumulated-frequency table [N] for one job (built by
    quadrature on a logarithmic grid; queried by interpolation). *)

val build : Job.t -> table

val interval : Job.t -> table -> platform_age:float -> float
(** The next inter-checkpoint interval at [platform_age] seconds since
    the last platform failure: [N^-1 (N(age) + 1) - age]. *)

val policy : Job.t -> Policy.t
(** Declines (returns [None]) whenever the prescribed interval is
    shorter than the checkpoint cost. *)
