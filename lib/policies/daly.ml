let low_order_period job =
  let c = Job.checkpoint_cost job in
  let m = Job.platform_mtbf job +. Job.downtime job +. Job.recovery_cost job in
  sqrt (2. *. c *. m)

let high_order_period job =
  let c = Job.checkpoint_cost job in
  let m = Job.platform_mtbf job in
  if c >= 2. *. m then m
  else begin
    let r = c /. (2. *. m) in
    (sqrt (2. *. c *. m) *. (1. +. (sqrt r /. 3.) +. (r /. 9.))) -. c
  end

let low job = Policy.periodic "DalyLow" ~period:(low_order_period job)
let high job = Policy.periodic "DalyHigh" ~period:(high_order_period job)
