(** Young's first-order periodic policy (Young, CACM 1974):
    checkpoint every [sqrt (2 C(p) MTBF/p)] seconds (Section 4.1). *)

val period : Job.t -> float
val policy : Job.t -> Policy.t
