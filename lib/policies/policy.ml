type phase = Start | After_checkpoint | After_recovery

type observation = {
  mutable phase : phase;
  mutable remaining : float;
  failure_units : int;
  mutable min_age : float;
  iter_ages : (float -> unit) -> unit;
  summarize :
    nexact:int -> napprox:int -> Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t;
}

type instance = observation -> float option

type t = { name : string; instantiate : unit -> instance; decide : instance option }

let summarize_of_iter ~units ~iter_ages ~nexact ~napprox dist =
  Ckpt_core.Age_summary.build ~nexact ~napprox dist ~processors:units ~iter_ages

let stateless name f = { name; instantiate = (fun () -> f); decide = None }

let pure_scalar name f = { name; instantiate = (fun () -> f); decide = Some f }

let clamp_chunk ~remaining chunk = Float.max 0. (Float.min remaining chunk)

let periodic name ~period =
  pure_scalar name (fun obs ->
      if period <= 0. then None else Some (Float.min period obs.remaining))
