(** Daly's periodic policies (Daly, FGCS 2006; Section 4.1).

    - {e DalyLow}: the first-order estimate, Young's period with the
      recovery overheads folded into the mean time to interrupt:
      [sqrt (2 C (MTBF/p + D + R))].
    - {e DalyHigh}: the higher-order estimate,
      [sqrt (2 C M) (1 + sqrt(C/(2M))/3 + C/(18 M)) - C] for
      [C < 2M], and [M] otherwise, with [M = MTBF/p]. *)

val low_order_period : Job.t -> float
val high_order_period : Job.t -> float
val low : Job.t -> Policy.t
val high : Job.t -> Policy.t
