(** Decision-point rationale: the expected-value quantities behind a
    policy's chunk choice, evaluated at the observed platform age
    vector — the numbers [ckpt explain] prints next to each decision.

    Everything here is computed from the same
    {!Ckpt_core.Age_summary} compression the DP policies plan with
    (and the same [Psuc] log-survival shift), so the rationale is the
    policy's own view of the platform, not a parallel approximation.
    These are explanatory quantities: they annotate decisions, they do
    not participate in them, and the simulated execution is
    bit-identical with or without them. *)

type t = {
  hazard : float;
      (** instantaneous platform failure rate at the decision (sum of
          per-unit hazards at their observed ages), per second. *)
  expected_ttf : float;
      (** expected time to the next platform failure,
          [E(min residual life)], seconds. *)
  window : float;
      (** the exposure the probabilities below refer to — normally
          chunk + checkpoint cost, seconds. *)
  commit_probability : float;
      (** [Psuc(window)]: probability no failure unit fails within the
          window, i.e. the chunk and its checkpoint commit. *)
  expected_loss : float;
      (** expected execution time lost {e given} a failure strikes
          within the window, [E(T | T < window)]; [nan] when the
          failure probability underflows to 0. *)
}

val platform_hazard : Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t -> float

val expected_time_to_failure :
  Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t -> float

val commit_probability :
  Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t -> window:float -> float

val expected_loss :
  Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t -> window:float -> float

val of_summary :
  Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t -> window:float -> t

val of_observation :
  ?nexact:int ->
  ?napprox:int ->
  Ckpt_distributions.Distribution.t ->
  Policy.observation ->
  window:float ->
  t
(** Summarize the observation's ages ({!Policy.observation.summarize},
    paper defaults [nexact = 10], [napprox = 100]) and evaluate
    {!of_summary} on it. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, as in the [ckpt explain] timeline. *)
