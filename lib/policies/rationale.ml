module Distribution = Ckpt_distributions.Distribution
module Age_summary = Ckpt_core.Age_summary
module Quadrature = Ckpt_numerics.Quadrature

type t = {
  hazard : float;
  expected_ttf : float;
  window : float;
  commit_probability : float;
  expected_loss : float;
}

(* Fold a function of (age, multiplicity) over the summarized
   platform: the exact ages carry weight 1, each reference age its
   mapped processor count. *)
let fold_ages (s : Age_summary.t) f init =
  let acc = ref (Array.fold_left (fun acc tau -> f acc tau 1) init s.Age_summary.exact) in
  Array.iteri
    (fun i r -> acc := f !acc r s.Age_summary.counts.(i))
    s.Age_summary.references;
  !acc

let platform_hazard dist s =
  fold_ages s
    (fun acc tau n -> acc +. (float_of_int n *. Distribution.hazard dist tau))
    0.

let expected_time_to_failure dist s =
  (* E[min_j residual_j] = Int_0^inf Psuc(e) de, with Psuc through the
     same log-survival shift the DP uses. *)
  let shift = Age_summary.shift_evaluator dist s in
  Quadrature.integrate_to_infinity ~f:(fun e -> exp (-.shift e)) ~lo:0. ()

let commit_probability dist s ~window =
  Age_summary.psuc dist s ~elapsed:0. ~duration:window

let expected_loss dist s ~window =
  (* E[T | T < window] for the platform's time-to-failure T:
     (Int_0^w S - w S(w)) / (1 - S(w)), integrating the survival
     rather than t f(t) so no density of the minimum is needed. *)
  if window <= 0. then nan
  else begin
    let shift = Age_summary.shift_evaluator dist s in
    let survival e = exp (-.shift e) in
    let s_w = survival window in
    let p_fail = -.Float.expm1 (-.shift window) in
    if p_fail <= 0. then nan
    else begin
      let mass =
        Quadrature.adaptive_simpson ~f:survival ~lo:0. ~hi:window ()
        -. (window *. s_w)
      in
      mass /. p_fail
    end
  end

let of_summary dist s ~window =
  {
    hazard = platform_hazard dist s;
    expected_ttf = expected_time_to_failure dist s;
    window;
    commit_probability = commit_probability dist s ~window;
    expected_loss = expected_loss dist s ~window;
  }

let of_observation ?(nexact = Age_summary.default_nexact)
    ?(napprox = Age_summary.default_napprox) dist (obs : Policy.observation) ~window =
  of_summary dist (obs.Policy.summarize ~nexact ~napprox dist) ~window

let pp fmt t =
  Format.fprintf fmt
    "hazard %.3e/s, E[next failure] %.4g s, P(commit %.4g s) = %.4f, E[lost | failure] %.4g s"
    t.hazard t.expected_ttf t.window t.commit_probability t.expected_loss
