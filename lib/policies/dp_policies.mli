(** Policy adapters around the core dynamic programs. *)

val dp_makespan :
  ?quantum:float -> ?cap_states:int -> ?chunk_factor:float -> Job.t -> Policy.t
(** DPMakespan (Algorithm 1) as a policy.  For parallel jobs it adopts
    the paper's rejuvenate-all assumption (the aggregated
    fresh-platform distribution) — "without this assumption this
    heuristic cannot be used" (Section 4.1).  Solved tables are cached
    across executions per initial-age bucket (the optimal plan varies
    slowly with [tau0]) in a per-domain LRU cache bounded by
    [CKPT_DP_CACHE_CAP] entries (default 64; 0 = unbounded) so
    long-running sweep workers keep flat memory across scenarios.
    Eviction only forces a deterministic re-solve at the bucket's
    canonical age — results are bit-identical at any cap.  Telemetry:
    [dp_makespan/table_cache_entries] gauge (occupancy, per-domain
    last-writer-wins) and [dp_makespan/table_cache_evictions]
    counter. *)

val table_cache_size : unit -> int
(** Occupancy of the calling domain's DPMakespan table cache (tests). *)

val dp_next_failure :
  ?nexact:int ->
  ?napprox:int ->
  ?max_states:int ->
  ?truncation_factor:float ->
  ?cost_profile:(progress:float -> float * float) ->
  Job.t ->
  Policy.t
(** DPNextFailure (Algorithm 2 / Section 3.3) as a policy: after every
    failure (and at start) it compresses the processor ages and plans
    the chunk sequence maximizing the expected work before the next
    platform failure; the plan is followed until the next failure or
    until its valid prefix is exhausted, then recomputed.

    [cost_profile] enables the paper's conclusion extension: the
    checkpoint/recovery costs seen by each replanning step are taken
    at the job's current progress, so the policy adapts its chunk
    sizes as the application's footprint evolves (pair it with
    {!Ckpt_simulator.Engine.run_with_cost_profile} — same profile). *)
