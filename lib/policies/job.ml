module Distribution = Ckpt_distributions.Distribution
module Machine = Ckpt_platform.Machine
module Workload = Ckpt_platform.Workload
module Dp_context = Ckpt_core.Dp_context

type t = {
  dist : Distribution.t;
  processors : int;
  group_size : int;
  machine : Machine.t;
  work_time : float;
}

let create ~dist ~processors ~machine ~work_time =
  if work_time <= 0. then invalid_arg "Job.create: work_time must be positive";
  (* Machine.checkpoint_cost validates the processor count. *)
  ignore (Machine.checkpoint_cost machine ~processors);
  { dist; processors; group_size = 1; machine; work_time }

let with_group_size t group_size =
  if group_size <= 0 then invalid_arg "Job.with_group_size: group_size must be positive";
  if t.processors mod group_size <> 0 then
    invalid_arg "Job.with_group_size: group_size must divide the processor count";
  { t with group_size }

let of_workload ~dist ~processors ~machine ~workload =
  create ~dist ~processors ~machine ~work_time:(Workload.parallel_time workload ~processors)

let failure_units t = t.processors / t.group_size
let checkpoint_cost t = Machine.checkpoint_cost t.machine ~processors:t.processors
let recovery_cost t = Machine.recovery_cost t.machine ~processors:t.processors
let downtime t = t.machine.Machine.downtime
let unit_mtbf t = t.dist.Distribution.mean
let platform_mtbf t = unit_mtbf t /. float_of_int (failure_units t)
let platform_dist t = Distribution.min_of_iid t.dist (failure_units t)

let dp_context t ~platform_view =
  Dp_context.create
    ~dist:(if platform_view then platform_dist t else t.dist)
    ~checkpoint:(checkpoint_cost t) ~recovery:(recovery_cost t) ~downtime:(downtime t)
