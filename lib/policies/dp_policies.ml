module Age_summary = Ckpt_core.Age_summary
module Dp_makespan = Ckpt_core.Dp_makespan
module Dp_next_failure = Ckpt_core.Dp_next_failure
module Metrics = Ckpt_telemetry.Metrics

let table_hits = Metrics.counter "dp_makespan/table_cache_hits"
let table_misses = Metrics.counter "dp_makespan/table_cache_misses"
let table_entries = Metrics.gauge "dp_makespan/table_cache_entries"
let table_evictions = Metrics.counter "dp_makespan/table_cache_evictions"
let replans = Metrics.counter "dp_next_failure/replans"

(* Escape hatches for the DPNextFailure fast paths, read once per
   policy construction.  All default to the fast path; the slow paths
   exist for A/B equivalence tests and field debugging. *)
let incremental_summaries () =
  match Sys.getenv_opt "CKPT_AGE_INCREMENTAL" with Some "0" -> false | _ -> true

let dpnf_prune () = match Sys.getenv_opt "CKPT_DPNF_PRUNE" with Some "0" -> false | _ -> true

let hazard_grid_points () =
  match Sys.getenv_opt "CKPT_HAZARD_GRID" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n >= 2 -> n | Some _ | None -> 0)
  | None -> 0

(* DPMakespan tables are shared across executions whose initial age
   falls in the same 50%-geometric bucket: at the month-plus ages where
   jobs start, the optimal plan varies far more slowly than that.
   Each bucket's table is solved at the bucket's canonical (midpoint)
   age rather than the first age seen, so the shared table does not
   depend on which execution populated the cache — a requirement for
   bit-identical results when replicates are claimed by domains in a
   scheduling-dependent order. *)
let age_bucket tau0 = int_of_float (log1p tau0 /. 0.5)
let bucket_age bucket = expm1 ((float_of_int bucket +. 0.5) *. 0.5)

(* -- bounded per-domain table cache ------------------------------------------

   One cache per domain (a [Dp_makespan.t] keeps memoizing lazily while
   cursors walk it, so sharing across domains would race), shared by
   every DPMakespan policy instance in that domain and keyed by
   (instance id, age bucket).  Before this cache was instance-owned via
   a DLS key per [dp_makespan] call — DLS slots are never freed, so a
   long-running sweep worker crossing thousands of scenarios leaked
   every dead instance's tables.  Now occupancy is bounded by
   CKPT_DP_CACHE_CAP (least-recently-used eviction; 0 = unbounded):
   eviction only forces a deterministic re-solve at the bucket's
   canonical age, so results are bit-identical at any cap. *)

let default_dp_cache_cap = 64

let dp_cache_cap () =
  match Sys.getenv_opt "CKPT_DP_CACHE_CAP" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> max_int
      | Some n when n >= 1 -> n
      | Some _ | None -> default_dp_cache_cap)
  | None -> default_dp_cache_cap

type table_entry = { table : Dp_makespan.t; mutable last_use : int }

type table_cache = {
  entries : (int * int, table_entry) Hashtbl.t;
  mutable tick : int;  (* recency clock: bumped on every lookup *)
}

let instance_counter = Atomic.make 0

let table_cache_key : table_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { entries = Hashtbl.create 32; tick = 0 })

let evict_lru cache =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_use <= entry.last_use -> acc
        | _ -> Some (key, entry))
      cache.entries None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove cache.entries key;
      Metrics.incr table_evictions

let cached_table ~instance ~solve tau0 =
  let cache = Domain.DLS.get table_cache_key in
  cache.tick <- cache.tick + 1;
  let key = (instance, age_bucket tau0) in
  match Hashtbl.find_opt cache.entries key with
  | Some entry ->
      Metrics.incr table_hits;
      entry.last_use <- cache.tick;
      entry.table
  | None ->
      Metrics.incr table_misses;
      let t = solve (bucket_age (age_bucket tau0)) in
      let cap = dp_cache_cap () in
      while Hashtbl.length cache.entries >= cap do
        evict_lru cache
      done;
      Hashtbl.add cache.entries key { table = t; last_use = cache.tick };
      Metrics.set table_entries (float_of_int (Hashtbl.length cache.entries));
      t

(* Exposed for tests: occupancy of this domain's cache. *)
let table_cache_size () = Hashtbl.length (Domain.DLS.get table_cache_key).entries

let dp_makespan ?quantum ?cap_states ?chunk_factor job =
  let context = Job.dp_context job ~platform_view:(job.Job.processors > 1) in
  let work = job.Job.work_time in
  let instance = Atomic.fetch_and_add instance_counter 1 in
  let table_for tau0 =
    cached_table ~instance
      ~solve:(fun initial_age ->
        Dp_makespan.solve ?quantum ?cap_states ?chunk_factor ~context ~work ~initial_age ())
      tau0
  in
  let instantiate () =
    let cursor = ref None in
    fun (obs : Policy.observation) ->
      (match obs.Policy.phase with
      | Policy.Start -> cursor := Some (Dp_makespan.start (table_for obs.Policy.min_age))
      | Policy.After_checkpoint ->
          cursor := Option.map Dp_makespan.advance_success !cursor
      | Policy.After_recovery -> cursor := Option.map Dp_makespan.advance_failure !cursor);
      match !cursor with
      | None ->
          (* Defensive: a decision before Start should not happen. *)
          None
      | Some c ->
          let chunk = Dp_makespan.next_chunk c in
          if chunk <= 0. then
            (* Quantization residue: finish whatever float dust remains. *)
            Some obs.Policy.remaining
          else Some (Policy.clamp_chunk ~remaining:obs.Policy.remaining chunk)
  in
  (* The cursor makes each decision depend on the whole history, not
     the current observation alone: never memoizable across replicates. *)
  { Policy.name = "DPMakespan"; instantiate; decide = None }

let dp_next_failure ?(nexact = Age_summary.default_nexact)
    ?(napprox = Age_summary.default_napprox) ?(max_states = 150) ?(truncation_factor = 2.)
    ?cost_profile job =
  let base_context = Job.dp_context job ~platform_view:false in
  let units = Job.failure_units job in
  let work_time = job.Job.work_time in
  (* With a progress-dependent cost profile (the paper's conclusion
     extension), each replan plans with the costs at the current
     progress: exact at the planning horizon's start, and the horizon
     is at most two platform MTBFs, over which the profile moves
     little. *)
  let context_at ~remaining =
    match cost_profile with
    | None -> base_context
    | Some f ->
        let progress = Float.max 0. (Float.min 1. (1. -. (remaining /. work_time))) in
        let c, r = f ~progress in
        Ckpt_core.Dp_context.create ~dist:base_context.Ckpt_core.Dp_context.dist ~checkpoint:c
          ~recovery:r ~downtime:base_context.Ckpt_core.Dp_context.downtime
  in
  let use_incremental = incremental_summaries () in
  let prune = dpnf_prune () in
  let hazard_grid_points = hazard_grid_points () in
  let instantiate () =
    (* Remaining plan chunks, and how much of the plan may still be
       consumed before a replan (the first-half rule under
       truncation). *)
    let pending = ref [] in
    let budget = ref 0. in
    let replan (obs : Policy.observation) =
      Metrics.incr replans;
      let context = context_at ~remaining:obs.Policy.remaining in
      let ages =
        if use_incremental then
          obs.Policy.summarize ~nexact ~napprox context.Ckpt_core.Dp_context.dist
        else
          Age_summary.build ~nexact ~napprox context.Ckpt_core.Dp_context.dist ~processors:units
            ~iter_ages:obs.Policy.iter_ages
      in
      let plan =
        Dp_next_failure.solve ~max_states ~truncation_factor ~prune ~hazard_grid_points ~context
          ~ages ~work:obs.Policy.remaining ()
      in
      pending := plan.Dp_next_failure.chunks;
      budget := plan.Dp_next_failure.valid_work
    in
    fun (obs : Policy.observation) ->
      if obs.Policy.remaining <= 0. then None
      else begin
        (match obs.Policy.phase with
        | Policy.Start | Policy.After_recovery -> replan obs
        | Policy.After_checkpoint ->
            (match !pending with
            | _ :: _ when !budget > 0. -> ()
            | _ -> replan obs));
        match !pending with
        | [] ->
            (* Plan exhausted by quantization dust: flush the rest. *)
            Some obs.Policy.remaining
        | chunk :: rest ->
            pending := rest;
            budget := !budget -. chunk;
            Some (Policy.clamp_chunk ~remaining:obs.Policy.remaining chunk)
      end
  in
  (* Stateful (pending plan and budget) and age-summary-driven: the
     batch engine must run a fresh instance per replicate slot. *)
  { Policy.name = "DPNextFailure"; instantiate; decide = None }
