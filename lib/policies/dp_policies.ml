module Age_summary = Ckpt_core.Age_summary
module Dp_makespan = Ckpt_core.Dp_makespan
module Dp_next_failure = Ckpt_core.Dp_next_failure
module Metrics = Ckpt_telemetry.Metrics

let table_hits = Metrics.counter "dp_makespan/table_cache_hits"
let table_misses = Metrics.counter "dp_makespan/table_cache_misses"
let replans = Metrics.counter "dp_next_failure/replans"

(* Escape hatches for the DPNextFailure fast paths, read once per
   policy construction.  All default to the fast path; the slow paths
   exist for A/B equivalence tests and field debugging. *)
let incremental_summaries () =
  match Sys.getenv_opt "CKPT_AGE_INCREMENTAL" with Some "0" -> false | _ -> true

let dpnf_prune () = match Sys.getenv_opt "CKPT_DPNF_PRUNE" with Some "0" -> false | _ -> true

let hazard_grid_points () =
  match Sys.getenv_opt "CKPT_HAZARD_GRID" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n >= 2 -> n | Some _ | None -> 0)
  | None -> 0

(* DPMakespan tables are shared across executions whose initial age
   falls in the same 50%-geometric bucket: at the month-plus ages where
   jobs start, the optimal plan varies far more slowly than that.
   Each bucket's table is solved at the bucket's canonical (midpoint)
   age rather than the first age seen, so the shared table does not
   depend on which execution populated the cache — a requirement for
   bit-identical results when replicates are claimed by domains in a
   scheduling-dependent order. *)
let age_bucket tau0 = int_of_float (log1p tau0 /. 0.5)
let bucket_age bucket = expm1 ((float_of_int bucket +. 0.5) *. 0.5)

let dp_makespan ?quantum ?cap_states ?chunk_factor job =
  let context = Job.dp_context job ~platform_view:(job.Job.processors > 1) in
  let work = job.Job.work_time in
  (* One table cache per domain: a [Dp_makespan.t] keeps memoizing
     lazily while cursors walk it, so sharing one across domains would
     race when the evaluation harness fans replicates out.  Solving is
     deterministic, so per-domain recomputation changes no result —
     it only costs one solve per bucket per domain. *)
  let tables_key : (int, Dp_makespan.t) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 8)
  in
  let table_for tau0 =
    let tables = Domain.DLS.get tables_key in
    let bucket = age_bucket tau0 in
    match Hashtbl.find_opt tables bucket with
    | Some t ->
        Metrics.incr table_hits;
        t
    | None ->
        Metrics.incr table_misses;
        let t =
          Dp_makespan.solve ?quantum ?cap_states ?chunk_factor ~context ~work
            ~initial_age:(bucket_age bucket) ()
        in
        Hashtbl.add tables bucket t;
        t
  in
  let instantiate () =
    let cursor = ref None in
    fun (obs : Policy.observation) ->
      (match obs.Policy.phase with
      | Policy.Start -> cursor := Some (Dp_makespan.start (table_for obs.Policy.min_age))
      | Policy.After_checkpoint ->
          cursor := Option.map Dp_makespan.advance_success !cursor
      | Policy.After_recovery -> cursor := Option.map Dp_makespan.advance_failure !cursor);
      match !cursor with
      | None ->
          (* Defensive: a decision before Start should not happen. *)
          None
      | Some c ->
          let chunk = Dp_makespan.next_chunk c in
          if chunk <= 0. then
            (* Quantization residue: finish whatever float dust remains. *)
            Some obs.Policy.remaining
          else Some (Policy.clamp_chunk ~remaining:obs.Policy.remaining chunk)
  in
  (* The cursor makes each decision depend on the whole history, not
     the current observation alone: never memoizable across replicates. *)
  { Policy.name = "DPMakespan"; instantiate; decide = None }

let dp_next_failure ?(nexact = Age_summary.default_nexact)
    ?(napprox = Age_summary.default_napprox) ?(max_states = 150) ?(truncation_factor = 2.)
    ?cost_profile job =
  let base_context = Job.dp_context job ~platform_view:false in
  let units = Job.failure_units job in
  let work_time = job.Job.work_time in
  (* With a progress-dependent cost profile (the paper's conclusion
     extension), each replan plans with the costs at the current
     progress: exact at the planning horizon's start, and the horizon
     is at most two platform MTBFs, over which the profile moves
     little. *)
  let context_at ~remaining =
    match cost_profile with
    | None -> base_context
    | Some f ->
        let progress = Float.max 0. (Float.min 1. (1. -. (remaining /. work_time))) in
        let c, r = f ~progress in
        Ckpt_core.Dp_context.create ~dist:base_context.Ckpt_core.Dp_context.dist ~checkpoint:c
          ~recovery:r ~downtime:base_context.Ckpt_core.Dp_context.downtime
  in
  let use_incremental = incremental_summaries () in
  let prune = dpnf_prune () in
  let hazard_grid_points = hazard_grid_points () in
  let instantiate () =
    (* Remaining plan chunks, and how much of the plan may still be
       consumed before a replan (the first-half rule under
       truncation). *)
    let pending = ref [] in
    let budget = ref 0. in
    let replan (obs : Policy.observation) =
      Metrics.incr replans;
      let context = context_at ~remaining:obs.Policy.remaining in
      let ages =
        if use_incremental then
          obs.Policy.summarize ~nexact ~napprox context.Ckpt_core.Dp_context.dist
        else
          Age_summary.build ~nexact ~napprox context.Ckpt_core.Dp_context.dist ~processors:units
            ~iter_ages:obs.Policy.iter_ages
      in
      let plan =
        Dp_next_failure.solve ~max_states ~truncation_factor ~prune ~hazard_grid_points ~context
          ~ages ~work:obs.Policy.remaining ()
      in
      pending := plan.Dp_next_failure.chunks;
      budget := plan.Dp_next_failure.valid_work
    in
    fun (obs : Policy.observation) ->
      if obs.Policy.remaining <= 0. then None
      else begin
        (match obs.Policy.phase with
        | Policy.Start | Policy.After_recovery -> replan obs
        | Policy.After_checkpoint ->
            (match !pending with
            | _ :: _ when !budget > 0. -> ()
            | _ -> replan obs));
        match !pending with
        | [] ->
            (* Plan exhausted by quantization dust: flush the rest. *)
            Some obs.Policy.remaining
        | chunk :: rest ->
            pending := rest;
            budget := !budget -. chunk;
            Some (Policy.clamp_chunk ~remaining:obs.Policy.remaining chunk)
      end
  in
  (* Stateful (pending plan and budget) and age-summary-driven: the
     batch engine must run a fresh instance per replicate slot. *)
  { Policy.name = "DPNextFailure"; instantiate; decide = None }
