module Theory = Ckpt_core.Theory

let chunk_count job =
  Theory.parallel_optimal_chunk_count
    ~rate:(1. /. Job.unit_mtbf job)
    ~processors:(Job.failure_units job) ~parallel_work:job.Job.work_time
    ~checkpoint:(Job.checkpoint_cost job)

let period job = job.Job.work_time /. float_of_int (chunk_count job)

let policy job = Policy.periodic "OptExp" ~period:(period job)
