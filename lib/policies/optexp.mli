(** OptExp: the provably optimal periodic policy for Exponential
    failures (Theorem 1 / Proposition 5), applied — as in the paper —
    to any distribution by using only its MTBF. *)

val chunk_count : Job.t -> int
(** [K*] of Proposition 5 for this job. *)

val period : Job.t -> float
(** [W(p) / K*]. *)

val policy : Job.t -> Policy.t
