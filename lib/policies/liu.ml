module Distribution = Ckpt_distributions.Distribution
module Quadrature = Ckpt_numerics.Quadrature

type table = {
  ts : float array;  (* abscissae, increasing, ts.(0) > 0 *)
  ns : float array;  (* accumulated frequency N(ts.(i)) *)
  density : float -> float;  (* n(t) = sqrt(units h(t) / 2C) *)
}

let build job =
  let c = Float.max 1e-9 (Job.checkpoint_cost job) in
  let units = float_of_int (Job.failure_units job) in
  let density t = sqrt (units *. Distribution.hazard job.Job.dist t /. (2. *. c)) in
  (* Logarithmic grid from well below any interesting interval up to
     multiple trace horizons, so any queried age interpolates. *)
  let t_min = 1e-2 in
  let t_max = Float.max (200. *. job.Job.dist.Distribution.mean) 7e8 in
  let points = 768 in
  let ts =
    Array.init points (fun i ->
        t_min *. exp (float_of_int i /. float_of_int (points - 1) *. log (t_max /. t_min)))
  in
  let ns = Array.make points 0. in
  (* The density may blow up at 0 (Weibull k < 1) but stays integrable;
     the head panel [0, t_min] uses a geometric refinement toward 0. *)
  let head = ref 0. in
  let lo = ref (t_min /. 1024.) in
  while !lo > 1e-12 do
    lo := !lo /. 2.
  done;
  let a = ref !lo in
  while !a < t_min do
    let b = Float.min t_min (!a *. 2.) in
    head := !head +. Quadrature.gauss_legendre_32 ~f:density ~lo:!a ~hi:b;
    a := b
  done;
  ns.(0) <- !head;
  for i = 1 to points - 1 do
    ns.(i) <- ns.(i - 1) +. Quadrature.gauss_legendre_32 ~f:density ~lo:ts.(i - 1) ~hi:ts.(i)
  done;
  { ts; ns; density }

(* Piecewise-linear evaluation of N, extended by the local density
   beyond the grid ends. *)
let accumulated table t =
  let { ts; ns; density } = table in
  let last = Array.length ts - 1 in
  if t <= ts.(0) then ns.(0) *. (t /. ts.(0))
  else if t >= ts.(last) then ns.(last) +. ((t -. ts.(last)) *. density ts.(last))
  else begin
    (* Invariant: ts.(lo) <= t < ts.(hi). *)
    let lo = ref 0 and hi = ref last in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if ts.(mid) <= t then lo := mid else hi := mid
    done;
    let frac = (t -. ts.(!lo)) /. (ts.(!hi) -. ts.(!lo)) in
    ns.(!lo) +. (frac *. (ns.(!hi) -. ns.(!lo)))
  end

(* Smallest t with N(t) >= target. *)
let inverse table target =
  let { ts; ns; density } = table in
  let last = Array.length ts - 1 in
  if target <= ns.(0) then ts.(0) *. target /. ns.(0)
  else if target >= ns.(last) then ts.(last) +. ((target -. ns.(last)) /. density ts.(last))
  else begin
    (* Invariant: ns.(lo) < target <= ns.(hi). *)
    let lo = ref 0 and hi = ref last in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if ns.(mid) < target then lo := mid else hi := mid
    done;
    let frac = (target -. ns.(!lo)) /. (ns.(!hi) -. ns.(!lo)) in
    ts.(!lo) +. (frac *. (ts.(!hi) -. ts.(!lo)))
  end

let interval _job table ~platform_age =
  let age = Float.max 0. platform_age in
  let next = inverse table (accumulated table age +. 1.) in
  Float.max 0. (next -. age)

let policy job =
  let table = build job in
  Policy.pure_scalar "Liu" (fun obs ->
      let t = interval job table ~platform_age:obs.Policy.min_age in
      (* An interval shorter than the checkpoint itself is nonsensical:
         decline, as the paper does for [17]'s output. *)
      if t < Job.checkpoint_cost job || t <= 0. then None
      else Some (Float.min t obs.Policy.remaining))
