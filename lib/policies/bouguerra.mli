(** Bouguerra et al.'s periodic policy (PPAM 2010; Section 4.1).

    Optimal period under the (unstated in their paper, surfaced by
    this one) assumption that {e all} processors are rejuvenated after
    each failure and each checkpoint, so every period faces a fresh
    platform-level distribution.  We compute the period by minimizing
    the expected waste ratio

    [E(period cost) / period], with
    [E = (Psuc (T+C) (T+C) + (1 - Psuc) (E(Tlost) + D + R + E))]

    over the fresh platform distribution [min_of_iid dist p].  For
    Exponential failures this coincides with OptExp's period (their
    paper's claim, verified by our tests); for Weibull [k < 1] the
    rejuvenation assumption is what makes the policy perform poorly
    under failed-only simulation, as the paper reports. *)

val period : Job.t -> float
val expected_waste_ratio : Job.t -> period:float -> float
(** The objective minimized by {!period}, exposed for tests. *)

val policy : Job.t -> Policy.t
