(** The checkpointing-policy interface.

    A policy is consulted at every decision point of an execution —
    job start, after each committed checkpoint, after each completed
    recovery (Section 2.2's function [f(omega | tau)]) — and answers
    with the size of the next chunk of work to execute before
    checkpointing again.

    Policies may be stateful across one execution (the DP policies
    follow a precomputed plan); [instantiate] produces a fresh,
    unentangled decision function per simulated execution. *)

type phase =
  | Start  (** first decision of the execution *)
  | After_checkpoint  (** previous chunk committed successfully *)
  | After_recovery  (** a failure struck; recovery just completed *)

(** The scalar fields are mutable so a driver stepping many executions
    (the engine's scalar loop, the batch stripe engine) can reuse one
    record per execution instead of allocating one per decision.
    Policies must read the fields they need within the call and never
    retain the record across decisions. *)
type observation = {
  mutable phase : phase;
  mutable remaining : float;
      (** work (seconds of [W(p)]) not yet checkpointed *)
  failure_units : int;
      (** independent failure sources (processors, or nodes when
          failures are node-grained). *)
  mutable min_age : float;
      (** time since the last platform-level failure; before any
          failure, the smallest initial unit age. *)
  iter_ages : (float -> unit) -> unit;
      (** iterate over every failure unit's time-since-last-failure;
          O(units), so policies should call it sparingly. *)
  summarize :
    nexact:int -> napprox:int -> Ckpt_distributions.Distribution.t -> Ckpt_core.Age_summary.t;
      (** the {!Ckpt_core.Age_summary} of the platform's current ages.
          Callers that maintain incremental age state (the engine)
          answer in O(nexact + napprox log units) without an O(units)
          pass; {!summarize_of_iter} is the build-from-scratch fallback
          for observation constructors without such state.  Both are
          bit-identical. *)
}

type instance = observation -> float option
(** Returns the next chunk size in seconds, in (0, remaining]
    (callers clamp), or [None] when the policy cannot produce a
    meaningful chunk (the paper's Liu heuristic on small intervals). *)

type t = {
  name : string;
  instantiate : unit -> instance;
  decide : instance option;
      (** [Some f] declares that the policy's decision is a pure
          function of the {e scalar} observation fields alone —
          [phase], [remaining], [failure_units], [min_age] — reading
          neither [iter_ages] nor [summarize] and keeping no state
          across decisions.  The batch engine memoizes such decisions
          across the replicates of a stripe, keyed on the exact float
          bits of those fields, so reuse is bit-identical by
          construction.  Stateful policies (the DP plans) and policies
          that consult the full age summary must leave this [None]. *)
}

val summarize_of_iter :
  units:int ->
  iter_ages:((float -> unit) -> unit) ->
  nexact:int ->
  napprox:int ->
  Ckpt_distributions.Distribution.t ->
  Ckpt_core.Age_summary.t
(** [Age_summary.build] adapter for the {!observation.summarize} field
    of callers without incremental age state. *)

val stateless : string -> (observation -> float option) -> t
(** A policy whose decisions are a pure function of the observation —
    possibly including the full age summary, so it makes no
    memoization claim ([decide = None]).  Use {!pure_scalar} when the
    decision reads only the scalar fields. *)

val pure_scalar : string -> (observation -> float option) -> t
(** Like {!stateless}, additionally declaring ([decide = Some f]) that
    the decision depends only on the scalar observation fields, making
    it safe for the batch engine's cross-replicate memo. *)

val periodic : string -> period:float -> t
(** Checkpoint every [period] seconds of work: chunks of
    [min period remaining].  [None] if [period <= 0].  Pure-scalar
    (reads only [remaining]). *)

val clamp_chunk : remaining:float -> float -> float
(** Clamp a proposed chunk into (0, remaining]. *)
