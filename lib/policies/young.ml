let period job = sqrt (2. *. Job.checkpoint_cost job *. Job.platform_mtbf job)

let policy job = Policy.periodic "Young" ~period:(period job)
