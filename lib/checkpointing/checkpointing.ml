(** One-stop namespace over the whole stack.

    Downstream code can depend on the single library [checkpointing]
    and reach every layer as [Checkpointing.<Area>.<Module>]:

    {[
      let dist = Checkpointing.Distributions.Weibull.of_mtbf
                   ~mtbf:(Checkpointing.Platform.Units.of_years 125.)
                   ~shape:0.7
    ]}

    The layers themselves are documented in their own libraries; see
    the README's architecture table. *)

(** Deterministic splittable PRNG streams. *)
module Prng = struct
  module Splitmix64 = Ckpt_prng.Splitmix64
  module Xoshiro256 = Ckpt_prng.Xoshiro256
  module Rng = Ckpt_prng.Rng
end

(** Special functions, root finding, quadrature, summaries. *)
module Numerics = struct
  module Lambert_w = Ckpt_numerics.Lambert_w
  module Special = Ckpt_numerics.Special
  module Rootfind = Ckpt_numerics.Rootfind
  module Quadrature = Ckpt_numerics.Quadrature
  module Summary = Ckpt_numerics.Summary
  module Histogram = Ckpt_numerics.Histogram
end

(** Crash-safe filesystem primitives (atomic artifact writes). *)
module Store = struct
  module Atomic_file = Ckpt_store.Atomic_file
end

(** Multicore fan-out: persistent work-stealing scheduler. *)
module Parallel = struct
  module Deque = Ckpt_parallel.Deque
  module Domain_pool = Ckpt_parallel.Domain_pool
end

(** Failure inter-arrival distributions and fitting. *)
module Distributions = struct
  module Distribution = Ckpt_distributions.Distribution
  module Exponential = Ckpt_distributions.Exponential
  module Weibull = Ckpt_distributions.Weibull
  module Lognormal = Ckpt_distributions.Lognormal
  module Gamma_dist = Ckpt_distributions.Gamma_dist
  module Uniform_dist = Ckpt_distributions.Uniform_dist
  module Mixture = Ckpt_distributions.Mixture
  module Lomax = Ckpt_distributions.Lomax
  module Empirical = Ckpt_distributions.Empirical
  module Fit = Ckpt_distributions.Fit
end

(** Machines, overhead models, workload models, paper presets. *)
module Platform = struct
  module Units = Ckpt_platform.Units
  module Overhead = Ckpt_platform.Overhead
  module Workload = Ckpt_platform.Workload
  module Machine = Ckpt_platform.Machine
  module Presets = Ckpt_platform.Presets
end

(** Failure traces, logs, rejuvenation analysis. *)
module Failures = struct
  module Trace = Ckpt_failures.Trace
  module Trace_set = Ckpt_failures.Trace_set
  module Trace_stats = Ckpt_failures.Trace_stats
  module Rejuvenation = Ckpt_failures.Rejuvenation
  module Failure_log = Ckpt_failures.Failure_log
  module Lanl_synth = Ckpt_failures.Lanl_synth
  module Trace_io = Ckpt_failures.Trace_io
end

(** The paper's contribution: closed forms and dynamic programs. *)
module Core = struct
  module Theory = Ckpt_core.Theory
  module Waste = Ckpt_core.Waste
  module Dp_context = Ckpt_core.Dp_context
  module Age_summary = Ckpt_core.Age_summary
  module Dp_makespan = Ckpt_core.Dp_makespan
  module Dp_next_failure = Ckpt_core.Dp_next_failure
end

(** Checkpointing policies (Section 4.1's roster). *)
module Policies = struct
  module Policy = Ckpt_policies.Policy
  module Job = Ckpt_policies.Job
  module Young = Ckpt_policies.Young
  module Daly = Ckpt_policies.Daly
  module Optexp = Ckpt_policies.Optexp
  module Bouguerra = Ckpt_policies.Bouguerra
  module Liu = Ckpt_policies.Liu
  module Dp_policies = Ckpt_policies.Dp_policies
  module Schedule = Ckpt_policies.Schedule
end

(** Execution tracing, metrics and provenance manifests. *)
module Telemetry = struct
  module Metrics = Ckpt_telemetry.Metrics
  module Metrics_export = Ckpt_telemetry.Metrics_export
  module Tracer = Ckpt_telemetry.Tracer
  module Trace_export = Ckpt_telemetry.Trace_export
  module Flight_recorder = Ckpt_telemetry.Flight_recorder
  module Provenance = Ckpt_telemetry.Provenance
  module Json = Ckpt_telemetry.Json
  module Bench_compare = Ckpt_telemetry.Bench_compare
end

(** Discrete-event simulation and evaluation. *)
module Simulator = struct
  module Scenario = Ckpt_simulator.Scenario
  module Engine = Ckpt_simulator.Engine
  module Evaluation = Ckpt_simulator.Evaluation
  module Period_search = Ckpt_simulator.Period_search
  module Significance = Ckpt_simulator.Significance
  module Energy = Ckpt_simulator.Energy
end

(** Paper tables/figures as runnable studies. *)
module Experiments = struct
  module Config = Ckpt_experiments.Config
  module Registry = Ckpt_experiments.Registry
  module Setup = Ckpt_experiments.Setup
  module Report = Ckpt_experiments.Report
  module Sweep_store = Ckpt_experiments.Sweep_store
end
