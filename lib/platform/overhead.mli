(** Checkpoint / recovery overhead models (Section 3.1).

    With an application memory footprint of [V] bytes spread over [p]
    processors:
    - {e proportional}: [C(p) = R(p) = alpha V / p] — each processor's
      outgoing link is the I/O bottleneck;
    - {e constant}: [C(p) = R(p) = alpha V] — the resilient storage
      system's incoming bandwidth is the bottleneck.

    The paper instantiates these as [600 s] (constant) and
    [600 * p_total / p] seconds (proportional, normalized so the
    full-platform cost is 600 s). *)

type t =
  | Constant of float  (** [Constant c]: [C(p) = c] for every [p]. *)
  | Proportional of { cost_at : float; reference_processors : int }
      (** [C(p) = cost_at * reference_processors / p]. *)

val checkpoint_cost : t -> processors:int -> float
(** [checkpoint_cost t ~processors] is [C(p)].
    @raise Invalid_argument if [processors <= 0]. *)

val recovery_cost : t -> processors:int -> float
(** The paper takes [R(p) = C(p)] throughout. *)

val constant : float -> t
val proportional : cost_at:float -> reference_processors:int -> t
val pp : Format.formatter -> t -> unit
