type t = {
  total_processors : int;
  downtime : float;
  overhead : Overhead.t;
}

let create ~total_processors ~downtime ~overhead =
  if total_processors <= 0 then invalid_arg "Machine.create: total_processors must be positive";
  if downtime < 0. then invalid_arg "Machine.create: negative downtime";
  { total_processors; downtime; overhead }

let check_processors t processors =
  if processors <= 0 || processors > t.total_processors then
    invalid_arg
      (Printf.sprintf "Machine: %d processors outside [1, %d]" processors t.total_processors)

let checkpoint_cost t ~processors =
  check_processors t processors;
  Overhead.checkpoint_cost t.overhead ~processors

let recovery_cost t ~processors =
  check_processors t processors;
  Overhead.recovery_cost t.overhead ~processors

let pp fmt t =
  Format.fprintf fmt "machine(p_total=%d, D=%g s, %a)" t.total_processors t.downtime Overhead.pp
    t.overhead
