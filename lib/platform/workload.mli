(** Parallel work models (Section 3.1).

    [W] is the total sequential work (in seconds on one unit-speed
    processor); [W(p)] is the failure-free execution time on [p]
    processors:

    - embarrassingly parallel: [W(p) = W/p];
    - Amdahl: [W(p) = W/p + gamma * W], [gamma] the sequential
      fraction;
    - numerical kernels: [W(p) = W/p + gamma * W^(2/3) / sqrt p]
      (matrix product / LU / QR on a 2-D grid, [gamma] the
      communication-to-computation ratio). *)

type model =
  | Embarrassingly_parallel
  | Amdahl of float  (** sequential fraction [gamma < 1] *)
  | Numerical_kernel of float  (** communication/computation ratio [gamma] *)

type t = { total_work : float; model : model }

val create : total_work:float -> model:model -> t
(** @raise Invalid_argument on non-positive work or negative/illegal
    [gamma]. *)

val parallel_time : t -> processors:int -> float
(** [parallel_time t ~processors] is [W(p)].
    @raise Invalid_argument if [processors <= 0]. *)

val speedup : t -> processors:int -> float
(** [W / W(p)]. *)

val model_name : model -> string
val pp : Format.formatter -> t -> unit

val all_paper_models : unit -> model list
(** The six instantiations simulated in Section 5.2: EP, Amdahl with
    [gamma] in {1e-4, 1e-6}, kernel with [gamma] in {0.1, 1, 10}. *)
