type t = {
  label : string;
  machine : Machine.t;
  total_work : float;
  processor_mtbf : float;
  job_processor_counts : int list;
}

let jaguar_processors = 45208
let paper_checkpoint_seconds = 600.
let paper_downtime_seconds = 60.

let overhead_for ~proportional ~total_processors =
  if proportional then
    Overhead.proportional ~cost_at:paper_checkpoint_seconds ~reference_processors:total_processors
  else Overhead.constant paper_checkpoint_seconds

let one_processor ~mtbf =
  {
    label = "1-proc";
    machine =
      Machine.create ~total_processors:1 ~downtime:paper_downtime_seconds
        ~overhead:(Overhead.constant paper_checkpoint_seconds);
    total_work = Units.of_days 20.;
    processor_mtbf = mtbf;
    job_processor_counts = [ 1 ];
  }

let powers_of_two lo hi =
  let rec go e acc = if e > hi then List.rev acc else go (e + 1) ((1 lsl e) :: acc) in
  go lo []

let petascale ?(proportional_overhead = false) ?(mtbf = Units.of_years 125.) () =
  let total_processors = jaguar_processors in
  {
    label = "petascale";
    machine =
      Machine.create ~total_processors ~downtime:paper_downtime_seconds
        ~overhead:(overhead_for ~proportional:proportional_overhead ~total_processors);
    total_work = Units.of_years 1000.;
    processor_mtbf = mtbf;
    job_processor_counts = powers_of_two 10 15 @ [ total_processors ];
  }

let exascale ?(proportional_overhead = false) ?(mtbf = Units.of_years 1250.) () =
  let total_processors = 1 lsl 20 in
  {
    label = "exascale";
    machine =
      Machine.create ~total_processors ~downtime:paper_downtime_seconds
        ~overhead:(overhead_for ~proportional:proportional_overhead ~total_processors);
    total_work = Units.of_years 10000.;
    processor_mtbf = mtbf;
    job_processor_counts = powers_of_two 14 20;
  }
