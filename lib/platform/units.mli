(** Time-unit helpers.  All simulator times are in seconds. *)

val second : float
val minute : float
val hour : float
val day : float
val week : float
val year : float
(** Julian year: 365.25 days. *)

val of_hours : float -> float
val of_days : float -> float
val of_years : float -> float
val to_days : float -> float
val to_years : float -> float

val pp_duration : Format.formatter -> float -> unit
(** Human-readable rendering (e.g. ["2.5 d"], ["1.3 y"]). *)
