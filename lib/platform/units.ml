let second = 1.
let minute = 60.
let hour = 3600.
let day = 86400.
let week = 7. *. day
let year = 365.25 *. day

let of_hours h = h *. hour
let of_days d = d *. day
let of_years y = y *. year
let to_days s = s /. day
let to_years s = s /. year

let pp_duration fmt s =
  let abs = abs_float s in
  if abs < minute then Format.fprintf fmt "%.1f s" s
  else if abs < hour then Format.fprintf fmt "%.1f min" (s /. minute)
  else if abs < day then Format.fprintf fmt "%.2f h" (s /. hour)
  else if abs < year then Format.fprintf fmt "%.2f d" (s /. day)
  else Format.fprintf fmt "%.2f y" (s /. year)
