type model =
  | Embarrassingly_parallel
  | Amdahl of float
  | Numerical_kernel of float

type t = { total_work : float; model : model }

let create ~total_work ~model =
  if total_work <= 0. then invalid_arg "Workload.create: total_work must be positive";
  (match model with
  | Embarrassingly_parallel -> ()
  | Amdahl gamma ->
      if gamma < 0. || gamma >= 1. then invalid_arg "Workload.create: Amdahl gamma outside [0, 1)"
  | Numerical_kernel gamma ->
      if gamma < 0. then invalid_arg "Workload.create: negative kernel gamma");
  { total_work; model }

let parallel_time t ~processors =
  if processors <= 0 then invalid_arg "Workload.parallel_time: processors must be positive";
  let p = float_of_int processors in
  let w = t.total_work in
  match t.model with
  | Embarrassingly_parallel -> w /. p
  | Amdahl gamma -> (w /. p) +. (gamma *. w)
  | Numerical_kernel gamma -> (w /. p) +. (gamma *. (w ** (2. /. 3.)) /. sqrt p)

let speedup t ~processors = t.total_work /. parallel_time t ~processors

let model_name = function
  | Embarrassingly_parallel -> "embarrassingly-parallel"
  | Amdahl gamma -> Printf.sprintf "amdahl(gamma=%g)" gamma
  | Numerical_kernel gamma -> Printf.sprintf "kernel(gamma=%g)" gamma

let pp fmt t =
  Format.fprintf fmt "W=%g s, %s" t.total_work (model_name t.model)

let all_paper_models () =
  [
    Embarrassingly_parallel;
    Amdahl 1e-4;
    Amdahl 1e-6;
    Numerical_kernel 0.1;
    Numerical_kernel 1.;
    Numerical_kernel 10.;
  ]
