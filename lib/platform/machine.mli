(** A failure-prone platform: processor count, downtime, and the
    checkpoint/recovery overhead model.  A "processor" is any
    individually scheduled compute resource (core, node, ...), as in
    Section 2.1. *)

type t = {
  total_processors : int;  (** [p_total], the whole machine. *)
  downtime : float;  (** [D], seconds; independent of [p]. *)
  overhead : Overhead.t;
}

val create : total_processors:int -> downtime:float -> overhead:Overhead.t -> t
(** @raise Invalid_argument on non-positive processor count or
    negative downtime. *)

val checkpoint_cost : t -> processors:int -> float
(** [C(p)] for a job enrolling [processors <= total_processors].
    @raise Invalid_argument if outside [\[1, total_processors\]]. *)

val recovery_cost : t -> processors:int -> float
(** [R(p)]; the paper takes [R(p) = C(p)]. *)

val pp : Format.formatter -> t -> unit
