type t =
  | Constant of float
  | Proportional of { cost_at : float; reference_processors : int }

let constant c =
  if c < 0. then invalid_arg "Overhead.constant: negative cost";
  Constant c

let proportional ~cost_at ~reference_processors =
  if cost_at < 0. then invalid_arg "Overhead.proportional: negative cost";
  if reference_processors <= 0 then
    invalid_arg "Overhead.proportional: reference_processors must be positive";
  Proportional { cost_at; reference_processors }

let checkpoint_cost t ~processors =
  if processors <= 0 then invalid_arg "Overhead.checkpoint_cost: processors must be positive";
  match t with
  | Constant c -> c
  | Proportional { cost_at; reference_processors } ->
      cost_at *. float_of_int reference_processors /. float_of_int processors

let recovery_cost = checkpoint_cost

let pp fmt = function
  | Constant c -> Format.fprintf fmt "constant C=%g s" c
  | Proportional { cost_at; reference_processors } ->
      Format.fprintf fmt "proportional C(p)=%g*%d/p s" cost_at reference_processors
