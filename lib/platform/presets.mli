(** Table 1 of the paper: the three simulated platform classes.

    {v
    platform  p_total  D     C,R    processor MTBF  W
    1-proc    1        60 s  600 s  1 h, 1 d, 1 w   20 d
    Peta      45,208   60 s  600 s  125 y, 500 y    1,000 y
    Exa       2^20     60 s  600 s  1,250 y         10,000 y
    v}

    Checkpoint costs: 600 s constant, or [600 * p_total / p]
    proportional. *)

type t = {
  label : string;
  machine : Machine.t;
  total_work : float;  (** [W], seconds of sequential work. *)
  processor_mtbf : float;  (** default MTBF, seconds. *)
  job_processor_counts : int list;
      (** the processor counts swept in the paper's figures. *)
}

val jaguar_processors : int
(** 45,208 — the Jaguar reference machine. *)

val one_processor : mtbf:float -> t
(** The single-processor platform of Section 5.1; [mtbf] is one of
    1 h / 1 d / 1 w in the paper. *)

val petascale : ?proportional_overhead:bool -> ?mtbf:float -> unit -> t
(** Jaguar-like platform; [mtbf] defaults to 125 years. *)

val exascale : ?proportional_overhead:bool -> ?mtbf:float -> unit -> t
(** 2^20-processor platform; [mtbf] defaults to 1,250 years. *)
