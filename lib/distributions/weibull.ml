module Rng = Ckpt_prng.Rng
module Special = Ckpt_numerics.Special

let create ~scale ~shape =
  if scale <= 0. then invalid_arg "Weibull.create: scale must be positive";
  if shape <= 0. then invalid_arg "Weibull.create: shape must be positive";
  let cumulative_hazard x = if x <= 0. then 0. else (x /. scale) ** shape in
  let pdf x =
    if x < 0. then 0.
    else if x = 0. then (if shape < 1. then infinity else if shape = 1. then 1. /. scale else 0.)
    else
      let z = x /. scale in
      shape /. scale *. (z ** (shape -. 1.)) *. exp (-.(z ** shape))
  in
  let quantile p = scale *. ((-.log1p (-.p)) ** (1. /. shape)) in
  let sample rng = scale *. ((-.log (Rng.uniform_pos rng)) ** (1. /. shape)) in
  let hazard x =
    if x <= 0. then (if shape < 1. then infinity else if shape = 1. then 1. /. scale else 0.)
    else shape /. scale *. ((x /. scale) ** (shape -. 1.))
  in
  {
    Distribution.name = Printf.sprintf "weibull(scale=%g,shape=%g)" scale shape;
    mean = scale *. Special.gamma (1. +. (1. /. shape));
    pdf;
    cumulative_hazard;
    quantile;
    sample;
    tlost_override = None;
    hazard_override = Some hazard;
  }

let scale_for_mtbf ~mtbf ~shape =
  if mtbf <= 0. then invalid_arg "Weibull.scale_for_mtbf: mtbf must be positive";
  if shape <= 0. then invalid_arg "Weibull.scale_for_mtbf: shape must be positive";
  mtbf /. Special.gamma (1. +. (1. /. shape))

let of_mtbf ~mtbf ~shape = create ~scale:(scale_for_mtbf ~mtbf ~shape) ~shape

let platform_scale ~scale ~shape ~processors =
  if processors <= 0 then invalid_arg "Weibull.platform_scale: processors must be positive";
  scale /. (float_of_int processors ** (1. /. shape))
