(** LogNormal distribution.  Not used in the paper's headline results
    but a standard alternative model of repair/failure times; included
    so that the DP heuristics can be exercised on a third
    non-memoryless family (ablation studies). *)

val create : mu:float -> sigma:float -> Distribution.t
(** [log X ~ Normal(mu, sigma)].
    @raise Invalid_argument if [sigma <= 0]. *)

val of_mtbf : mtbf:float -> sigma:float -> Distribution.t
(** Fixes [mu] so the mean [exp (mu + sigma^2/2)] equals [mtbf]. *)
