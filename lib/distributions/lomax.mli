(** Lomax (Pareto type II) distribution — a polynomially heavy-tailed
    lifetime with strictly decreasing hazard [alpha / (scale + t)];
    the most pessimistic standard model of bursty failures, useful as
    a stress test for the DP policies beyond Weibull. *)

val create : scale:float -> shape:float -> Distribution.t
(** Survival [(1 + t/scale)^(-shape)].  The mean is finite only for
    [shape > 1] ([scale / (shape - 1)]); for [shape <= 1] the mean
    field is [infinity] and MTBF-based heuristics are meaningless —
    which is rather the point.
    @raise Invalid_argument on non-positive parameters. *)

val of_mtbf : mtbf:float -> shape:float -> Distribution.t
(** Fixes the scale so the mean equals [mtbf].
    @raise Invalid_argument if [shape <= 1] (infinite mean). *)
