(** Gamma distribution — another standard lifetime family with
    non-constant hazard ([shape < 1]: decreasing, like Weibull with
    [k < 1]); used in tests and ablations. *)

val create : shape:float -> scale:float -> Distribution.t
(** Mean [shape * scale].
    @raise Invalid_argument if [shape <= 0] or [scale <= 0]. *)

val of_mtbf : mtbf:float -> shape:float -> Distribution.t
