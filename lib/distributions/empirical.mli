(** Empirical (log-based) failure distribution.

    Section 4.3 of the paper: from a production log one records the
    set S of availability-interval durations; the conditional
    probability that a node stays up for [t] knowing it has been up for
    [tau] is estimated as

    [#(durations in S >= t) / #(durations in S >= tau)].

    This module implements exactly that estimator, plus the sampling
    and quantile machinery the policies need, directly on the sorted
    sample (no parametric smoothing). *)

val of_intervals : float array -> Distribution.t
(** [of_intervals s] builds the empirical distribution of the sample
    [s] (durations in seconds; must all be positive).  Queried ages
    beyond the largest observed duration are clamped to it (the paper's
    estimator would otherwise condition on an empty set).
    @raise Invalid_argument on an empty or non-positive sample. *)

val conditional_survival_counts : float array -> t:float -> tau:float -> float
(** The raw Section 4.3 ratio estimator on an unsorted sample, for
    cross-checking [Distribution.conditional_survival] in tests. *)
