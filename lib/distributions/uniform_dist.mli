(** Uniform distribution on [\[lo, hi\]]; a bounded-support lifetime
    used mainly by the test suite (its conditional quantities have
    elementary closed forms to check the generic machinery against). *)

val create : lo:float -> hi:float -> Distribution.t
(** @raise Invalid_argument if [hi <= lo] or [lo < 0]. *)
