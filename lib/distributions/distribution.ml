module Rng = Ckpt_prng.Rng
module Quadrature = Ckpt_numerics.Quadrature

type t = {
  name : string;
  mean : float;
  pdf : float -> float;
  cumulative_hazard : float -> float;
  quantile : float -> float;
  sample : Rng.t -> float;
  tlost_override : (age:float -> window:float -> float) option;
  hazard_override : (float -> float) option;
}

let cdf t x = if x <= 0. then 0. else 1. -. exp (-.t.cumulative_hazard x)
let survival t x = if x <= 0. then 1. else exp (-.t.cumulative_hazard x)

let hazard t x =
  match t.hazard_override with
  | Some h -> h x
  | None ->
      let s = survival t x in
      if s <= 0. then infinity else t.pdf x /. s

let conditional_survival t ~age ~duration =
  if duration <= 0. then 1.
  else begin
    let h0 = if age <= 0. then 0. else t.cumulative_hazard age in
    if h0 = infinity then
      (* Conditioning on an almost-surely-dead unit (e.g. past the end
         of a bounded support): the residual life is degenerate at 0. *)
      0.
    else exp (h0 -. t.cumulative_hazard (age +. duration))
  end

let conditional_quantile t ~age p =
  if p <= 0. then 0.
  else if p >= 1. then infinity
  else if age <= 0. then t.quantile p
  else begin
    (* F(age + x) = 1 - (1 - p) S(age). *)
    let s_age = survival t age in
    let target = 1. -. ((1. -. p) *. s_age) in
    let x = t.quantile target -. age in
    Float.max 0. x
  end

let sample_residual t rng ~age =
  conditional_quantile t ~age (Rng.uniform_pos rng)

let expected_tlost t ~age ~window =
  if window <= 0. then 0.
  else
    match t.tlost_override with
    | Some f -> f ~age ~window
    | None ->
        (* E(X - age | age <= X < age + window)
           = Int_0^w u f(age + u) du / (F(age + w) - F(age)).
           Integrate the numerator by panels: densities can be sharply
           peaked near 0 for decreasing-hazard distributions. *)
        let s_age = survival t age in
        let mass = s_age -. survival t (age +. window) in
        if mass <= 0. then window /. 2.
        else begin
          let f u = u *. t.pdf (age +. u) in
          let panels = 8 in
          let numerator = ref 0. in
          for i = 0 to panels - 1 do
            (* Geometric panels refine near 0 where the density of a
               decreasing-hazard lifetime concentrates. *)
            let a = window *. ((2. ** float_of_int i) -. 1.) /. ((2. ** float_of_int panels) -. 1.) in
            let b = window *. ((2. ** float_of_int (i + 1)) -. 1.) /. ((2. ** float_of_int panels) -. 1.) in
            numerator := !numerator +. Quadrature.gauss_legendre_32 ~f ~lo:a ~hi:b
          done;
          let v = !numerator /. mass in
          (* The conditional expectation must land inside the window. *)
          Float.min window (Float.max 0. v)
        end

let survival_quantile t q =
  if q <= 0. then infinity else if q >= 1. then 0. else t.quantile (1. -. q)

let min_of_iid t n =
  if n <= 0 then invalid_arg "Distribution.min_of_iid: n must be positive";
  if n = 1 then t
  else begin
    let nf = float_of_int n in
    let cumulative_hazard x = nf *. t.cumulative_hazard x in
    let quantile p =
      (* S_min = S^n, so F_min(x) = p iff F(x) = 1 - (1-p)^(1/n). *)
      t.quantile (1. -. ((1. -. p) ** (1. /. nf)))
    in
    let pdf x =
      let s = survival t x in
      nf *. (s ** (nf -. 1.)) *. t.pdf x
    in
    let sample rng = quantile (Rng.uniform_pos rng) in
    let mean =
      Quadrature.integrate_to_infinity ~f:(fun x -> exp (-.cumulative_hazard x)) ~lo:0. ()
    in
    let hazard_override =
      Option.map (fun h x -> nf *. h x) t.hazard_override
    in
    {
      name = Printf.sprintf "min_%d(%s)" n t.name;
      mean;
      pdf;
      cumulative_hazard;
      quantile;
      sample;
      tlost_override = None;
      hazard_override;
    }
  end

let check t =
  let m = if Float.is_nan t.mean || t.mean <= 0. then 1. else t.mean in
  let points = [ 0.1 *. m; 0.5 *. m; m; 2. *. m; 5. *. m ] in
  let nondecreasing_hazard_cum =
    List.for_all2
      (fun a b -> t.cumulative_hazard a <= t.cumulative_hazard b +. 1e-9)
      (List.filteri (fun i _ -> i < 4) points)
      (List.filteri (fun i _ -> i > 0) points)
  in
  let quantile_inverts =
    List.for_all
      (fun p ->
        let x = t.quantile p in
        abs_float (cdf t x -. p) < 1e-6)
      [ 0.1; 0.5; 0.9 ]
  in
  let survival_at_zero = abs_float (survival t 0. -. 1.) < 1e-12 in
  [
    ("cumulative hazard nondecreasing", nondecreasing_hazard_cum);
    ("quantile inverts cdf", quantile_inverts);
    ("survival(0) = 1", survival_at_zero);
  ]
