(** Failure inter-arrival time distributions.

    Everything the checkpointing analysis needs from a distribution of
    a positive random variable [X] (a processor lifetime):

    - the survival function [S(t) = P(X >= t)] and its conditional
      version [Psuc(x|tau) = P(X >= tau + x | X >= tau)] (Section 2.2),
    - the expected time lost within a window,
      [E(Tlost(x|tau)) = E(X - tau | tau <= X < tau + x)] (Section 2.3),
    - quantiles (used by the DPNextFailure reference-age approximation,
      Section 3.3),
    - hazard rates (used by the Liu heuristic),
    - sampling (used for trace generation, Section 4.3).

    Distributions are plain records of closures; closed forms can
    override the numeric defaults where available. *)

type t = {
  name : string;
  mean : float;  (** [E(X)]; the processor MTBF excluding downtime. *)
  pdf : float -> float;  (** Density, [0.] for negative arguments. *)
  cumulative_hazard : float -> float;
      (** [H(t) = -log S(t)]; must be 0 at 0, nondecreasing.  Working
          with [H] keeps conditional survival well-conditioned even
          when both survivals are close to 1. *)
  quantile : float -> float;
      (** Inverse CDF on (0, 1): [quantile p] is the smallest [t] with
          [F(t) >= p]. *)
  sample : Ckpt_prng.Rng.t -> float;
  tlost_override : (age:float -> window:float -> float) option;
      (** Closed form for {!expected_tlost} when available. *)
  hazard_override : (float -> float) option;
      (** Closed form for {!hazard} when available. *)
}

val cdf : t -> float -> float
(** [cdf t x = 1 - exp (-H x)]. *)

val survival : t -> float -> float
(** [survival t x = exp (-H x) = P(X >= x)]. *)

val hazard : t -> float -> float
(** Instantaneous failure rate [pdf x / survival x] (or the closed-form
    override). *)

val conditional_survival : t -> age:float -> duration:float -> float
(** [conditional_survival t ~age ~duration] is
    [Psuc(duration | age) = P(X >= age + duration | X >= age)],
    computed as [exp (H age - H (age + duration))]. *)

val conditional_quantile : t -> age:float -> float -> float
(** [conditional_quantile t ~age p] is the [p]-quantile of the residual
    life [X - age] given [X >= age]. *)

val sample_residual : t -> Ckpt_prng.Rng.t -> age:float -> float
(** Sample the residual life given survival to [age]. *)

val expected_tlost : t -> age:float -> window:float -> float
(** [expected_tlost t ~age ~window] is
    [E(X - age | age <= X < age + window)]: the expected amount of
    computation lost when a failure is known to strike within the
    window.  Numeric (32-point Gauss-Legendre on the window, split into
    panels) unless a closed form is supplied. *)

val min_of_iid : t -> int -> t
(** [min_of_iid t n] is the distribution of the minimum of [n] iid
    copies of [t]: the first platform-level failure when all [n]
    processors are fresh (the rejuvenate-all model of Section 3.1).
    Sampling goes through the quantile to stay O(1) in [n].
    @raise Invalid_argument if [n <= 0]. *)

val survival_quantile : t -> float -> float
(** [survival_quantile t q] is the [t] with [P(X >= t) = q]; the
    "quantile" in the paper's reference-age formula of Section 3.3. *)

val check : t -> (string * bool) list
(** Lightweight self-diagnostics (monotonicity, normalization at a few
    points); each pair is (description, passed).  Used by tests. *)
