module Rng = Ckpt_prng.Rng

let create ~scale ~shape =
  if scale <= 0. then invalid_arg "Lomax.create: scale must be positive";
  if shape <= 0. then invalid_arg "Lomax.create: shape must be positive";
  let cumulative_hazard t = if t <= 0. then 0. else shape *. log1p (t /. scale) in
  let pdf t =
    if t < 0. then 0. else shape /. scale *. ((1. +. (t /. scale)) ** (-.shape -. 1.))
  in
  let quantile p = scale *. (((1. -. p) ** (-1. /. shape)) -. 1.) in
  let sample rng = quantile (Rng.uniform rng) in
  {
    Distribution.name = Printf.sprintf "lomax(scale=%g,shape=%g)" scale shape;
    mean = (if shape > 1. then scale /. (shape -. 1.) else infinity);
    pdf;
    cumulative_hazard;
    quantile;
    sample;
    tlost_override = None;
    hazard_override = Some (fun t -> shape /. (scale +. Float.max 0. t));
  }

let of_mtbf ~mtbf ~shape =
  if mtbf <= 0. then invalid_arg "Lomax.of_mtbf: mtbf must be positive";
  if shape <= 1. then invalid_arg "Lomax.of_mtbf: shape must exceed 1 for a finite mean";
  create ~scale:(mtbf *. (shape -. 1.)) ~shape
