(** Weibull distribution — the paper's model of real-world failures
    (shape [k < 1] in all cited production studies: 0.7/0.78 in Heath
    et al., 0.50944 in Liu et al., 0.33-0.49 in Schroeder-Gibson). *)

val create : scale:float -> shape:float -> Distribution.t
(** [create ~scale ~shape] has CDF [1 - exp (-(t/scale)^shape)].
    @raise Invalid_argument if [scale <= 0] or [shape <= 0]. *)

val of_mtbf : mtbf:float -> shape:float -> Distribution.t
(** [of_mtbf ~mtbf ~shape] chooses [scale = mtbf / Gamma (1 + 1/shape)]
    so the mean equals [mtbf] (Section 4.3). *)

val scale_for_mtbf : mtbf:float -> shape:float -> float
(** The scale parameter used by {!of_mtbf}. *)

val platform_scale : scale:float -> shape:float -> processors:int -> float
(** [platform_scale ~scale ~shape ~processors] is [scale / p^(1/k)]:
    the scale of the platform-level Weibull when all [p] fresh
    processors race to fail first (Section 3.1's rejuvenation
    discussion). *)
