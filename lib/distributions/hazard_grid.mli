(** Tabulated cumulative hazard.

    The DPNextFailure G table evaluates [H] thousands of times per
    solve over a bounded age span; for Weibull that is a [pow] chain
    each time.  This grid samples [H] once on sqrt-spaced nodes over
    [\[0, hi\]] and answers queries by linear interpolation — nodes are
    densest near 0, where decreasing-hazard distributions concentrate
    their curvature.  Outside the span (and at 0) the exact [H] is
    used, so the grid never extrapolates.

    Interpolation error is O((hi / points²) · max |d²H/ds²|) in sqrt
    coordinates; 4096 points keep the relative error on [Psuc] below
    1e-4 for the Weibull shapes of Section 4.3.  The grid is an
    explicit opt-in ([CKPT_HAZARD_GRID]) precisely because it trades
    bit-exactness for speed. *)

type t

val make : Distribution.t -> hi:float -> points:int -> t
(** Sample [points + 1] nodes of the distribution's cumulative hazard
    over [\[0, hi\]].
    @raise Invalid_argument if [points < 2] or [hi] is not positive
    and finite. *)

val eval : t -> float -> float
(** Interpolated [H(x)] for [x] in [(0, hi)]; the exact [H(x)]
    outside. *)

val points : t -> int
val span : t -> float

val eval_batch : t -> float array -> float array
(** One interpolation pass over an array of query ages: hoists the
    grid's fields out of the per-element work and walks the input in a
    single counted loop.  Element [i] of the result is computed by the
    very same operations as [eval t xs.(i)], so the batch is
    bit-identical to the element-wise map — it only amortizes the
    dispatch. *)
