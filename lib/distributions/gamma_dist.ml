module Rng = Ckpt_prng.Rng
module Special = Ckpt_numerics.Special
module Rootfind = Ckpt_numerics.Rootfind

let create ~shape ~scale =
  if shape <= 0. then invalid_arg "Gamma_dist.create: shape must be positive";
  if scale <= 0. then invalid_arg "Gamma_dist.create: scale must be positive";
  let log_gamma_shape = Special.log_gamma shape in
  let cdf x =
    if x <= 0. then 0.
    else Special.lower_incomplete_gamma_regularized ~a:shape ~x:(x /. scale)
  in
  let cumulative_hazard x =
    if x <= 0. then 0.
    else begin
      let s = 1. -. cdf x in
      if s <= 0. then infinity else -.log s
    end
  in
  let pdf x =
    if x < 0. then 0.
    else if x = 0. then (if shape < 1. then infinity else if shape = 1. then 1. /. scale else 0.)
    else
      exp (((shape -. 1.) *. log (x /. scale)) -. (x /. scale) -. log_gamma_shape) /. scale
  in
  let mean = shape *. scale in
  let quantile p =
    if p <= 0. then 0.
    else begin
      (* Bracket then Brent on the CDF: robust for all shapes. *)
      let hi = ref (Float.max mean (scale *. 2.)) in
      while cdf !hi < p do
        hi := !hi *. 2.
      done;
      Rootfind.brent ~f:(fun x -> cdf x -. p) ~lo:0. ~hi:!hi ()
    end
  in
  (* Marsaglia-Tsang squeeze method; the shape < 1 case boosts via
     Gamma(shape+1) * U^(1/shape). *)
  let rec sample_mt rng a =
    if a < 1. then begin
      let u = Rng.uniform_pos rng in
      sample_mt rng (a +. 1.) *. (u ** (1. /. a))
    end
    else begin
      let d = a -. (1. /. 3.) in
      let c = 1. /. sqrt (9. *. d) in
      let rec loop () =
        let x = Rng.normal rng in
        let v = (1. +. (c *. x)) ** 3. in
        if v <= 0. then loop ()
        else begin
          let u = Rng.uniform_pos rng in
          if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
          else loop ()
        end
      in
      loop ()
    end
  in
  {
    Distribution.name = Printf.sprintf "gamma(shape=%g,scale=%g)" shape scale;
    mean;
    pdf;
    cumulative_hazard;
    quantile;
    sample = (fun rng -> scale *. sample_mt rng shape);
    tlost_override = None;
    hazard_override = None;
  }

let of_mtbf ~mtbf ~shape =
  if mtbf <= 0. then invalid_arg "Gamma_dist.of_mtbf: mtbf must be positive";
  create ~shape ~scale:(mtbf /. shape)
