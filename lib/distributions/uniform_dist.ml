module Rng = Ckpt_prng.Rng

let create ~lo ~hi =
  if hi <= lo then invalid_arg "Uniform_dist.create: hi <= lo";
  if lo < 0. then invalid_arg "Uniform_dist.create: negative support";
  let width = hi -. lo in
  let cumulative_hazard x =
    if x <= lo then 0.
    else if x >= hi then infinity
    else -.log ((hi -. x) /. width)
  in
  {
    Distribution.name = Printf.sprintf "uniform(%g,%g)" lo hi;
    mean = 0.5 *. (lo +. hi);
    pdf = (fun x -> if x < lo || x > hi then 0. else 1. /. width);
    cumulative_hazard;
    quantile = (fun p -> lo +. (p *. width));
    sample = (fun rng -> lo +. (Rng.uniform rng *. width));
    tlost_override = None;
    hazard_override = None;
  }
