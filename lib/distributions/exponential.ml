module Rng = Ckpt_prng.Rng

let expected_tlost_closed_form ~rate ~window =
  if window <= 0. then 0.
  else begin
    let lw = rate *. window in
    if lw < 1e-8 then
      (* Series: E(Tlost) -> w/2 as lambda w -> 0. *)
      window /. 2. *. (1. -. (lw /. 6.))
    else (1. /. rate) -. (window /. (exp lw -. 1.))
  end

let create ~rate =
  if rate <= 0. then invalid_arg "Exponential.create: rate must be positive";
  {
    Distribution.name = Printf.sprintf "exponential(rate=%g)" rate;
    mean = 1. /. rate;
    pdf = (fun x -> if x < 0. then 0. else rate *. exp (-.rate *. x));
    cumulative_hazard = (fun x -> if x <= 0. then 0. else rate *. x);
    quantile = (fun p -> -.log1p (-.p) /. rate);
    sample = (fun rng -> Rng.exponential rng ~rate);
    tlost_override = Some (fun ~age:_ ~window -> expected_tlost_closed_form ~rate ~window);
    hazard_override = Some (fun _ -> rate);
  }

let of_mtbf ~mtbf =
  if mtbf <= 0. then invalid_arg "Exponential.of_mtbf: mtbf must be positive";
  create ~rate:(1. /. mtbf)
