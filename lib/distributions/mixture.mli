(** Finite mixtures of lifetime distributions.

    Production failure logs are well modelled by mixtures — e.g. a
    heavy-tailed Weibull bulk plus a short-uptime reboot-storm mode
    (Schroeder-Gibson); {!Ckpt_failures.Lanl_synth} synthesizes its
    logs from exactly such a mixture. *)

val create : (float * Distribution.t) list -> Distribution.t
(** [create [(w1, d1); ...]] is the mixture with weights [wi]
    (positive, normalized internally).  Survival and density are the
    weighted combinations; the quantile is solved numerically;
    sampling draws a component by weight.
    @raise Invalid_argument on an empty list or non-positive weight. *)
