module Rootfind = Ckpt_numerics.Rootfind

type fitted = {
  distribution : Distribution.t;
  log_likelihood : float;
  aic : float;
  ks_statistic : float;
}

let validate data =
  if Array.length data = 0 then invalid_arg "Fit: empty sample";
  Array.iter (fun x -> if x <= 0. then invalid_arg "Fit: non-positive duration") data

let ks_distance dist data =
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let n = float_of_int (Array.length sorted) in
  let worst = ref 0. in
  Array.iteri
    (fun i x ->
      let f = Distribution.cdf dist x in
      (* Compare against the empirical CDF just before and at x. *)
      let lo = float_of_int i /. n and hi = float_of_int (i + 1) /. n in
      worst := Float.max !worst (Float.max (abs_float (f -. lo)) (abs_float (f -. hi))))
    sorted;
  !worst

let log_likelihood dist data =
  Array.fold_left
    (fun acc x ->
      let p = dist.Distribution.pdf x in
      acc +. if p > 0. then log p else -1e9)
    0. data

let package ~parameters dist data =
  let ll = log_likelihood dist data in
  {
    distribution = dist;
    log_likelihood = ll;
    aic = (2. *. float_of_int parameters) -. (2. *. ll);
    ks_statistic = ks_distance dist data;
  }

let mean data = Array.fold_left ( +. ) 0. data /. float_of_int (Array.length data)

let exponential data =
  validate data;
  package ~parameters:1 (Exponential.create ~rate:(1. /. mean data)) data

let weibull ?(shape_bounds = (0.05, 20.)) data =
  validate data;
  let n = float_of_int (Array.length data) in
  let mean_log = Array.fold_left (fun acc x -> acc +. log x) 0. data /. n in
  (* MLE shape equation: sum x^k ln x / sum x^k - 1/k - mean(ln x) = 0.
     The left side is increasing in k, so a sign change brackets the
     root. *)
  let objective k =
    let num = ref 0. and den = ref 0. in
    Array.iter
      (fun x ->
        let xk = x ** k in
        num := !num +. (xk *. log x);
        den := !den +. xk)
      data;
    (!num /. !den) -. (1. /. k) -. mean_log
  in
  let lo, hi = shape_bounds in
  let shape =
    match Rootfind.brent ~f:objective ~lo ~hi () with
    | s -> s
    | exception Rootfind.No_bracket ->
        (* Degenerate samples (e.g. constant data): fall back to the
           boundary with the smaller residual. *)
        if abs_float (objective lo) < abs_float (objective hi) then lo else hi
  in
  let scale =
    (Array.fold_left (fun acc x -> acc +. (x ** shape)) 0. data /. n) ** (1. /. shape)
  in
  package ~parameters:2 (Weibull.create ~scale ~shape) data

let lognormal data =
  validate data;
  let n = float_of_int (Array.length data) in
  let mu = Array.fold_left (fun acc x -> acc +. log x) 0. data /. n in
  let var = Array.fold_left (fun acc x -> acc +. ((log x -. mu) ** 2.)) 0. data /. n in
  let sigma = Float.max 1e-9 (sqrt var) in
  package ~parameters:2 (Lognormal.create ~mu ~sigma) data

let best_fit data =
  validate data;
  List.fold_left
    (fun best candidate -> if candidate.aic < best.aic then candidate else best)
    (exponential data)
    [ weibull data; lognormal data ]
