type t = {
  hi : float;
  points : int;
  scale : float;  (* points / sqrt hi: node index of x is scale * sqrt x *)
  table : float array;  (* H at node ages, length points + 1 *)
  exact : float -> float;
}

let make dist ~hi ~points =
  if points < 2 then invalid_arg "Hazard_grid.make: points must be at least 2";
  if not (hi > 0. && Float.is_finite hi) then
    invalid_arg "Hazard_grid.make: hi must be positive and finite";
  let h = dist.Distribution.cumulative_hazard in
  let root = sqrt hi in
  let scale = float_of_int points /. root in
  (* sqrt-spaced nodes x_j = (j/points)^2 * hi: decreasing-hazard
     Weibull has unbounded curvature of H at 0, where linear
     interpolation on a uniform grid would be worst; in sqrt
     coordinates H(x(s)) = (s/root)^(2k) * H(hi) is smooth at 0 for
     the shapes of interest (k > 1/2). *)
  let table =
    Array.init (points + 1) (fun j ->
        let s = float_of_int j /. float_of_int points *. root in
        h (s *. s))
  in
  { hi; points; scale; table; exact = h }

let points t = t.points
let span t = t.hi

let eval t x =
  if x <= 0. || x >= t.hi then t.exact x
  else begin
    let s = t.scale *. sqrt x in
    let j = int_of_float s in
    let j = if j >= t.points then t.points - 1 else j in
    let frac = s -. float_of_int j in
    t.table.(j) +. (frac *. (t.table.(j + 1) -. t.table.(j)))
  end

(* Same per-element arithmetic as [eval], with the grid fields hoisted
   into locals and the output filled in one counted loop: bit-identical
   to [Array.map (eval t)], cheaper on the batched callers (the shift
   evaluator hoists H over every summary term at once). *)
let eval_batch t xs =
  let { hi; points; scale; table; exact } = t in
  let n = Array.length xs in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let x = Array.unsafe_get xs i in
    let v =
      if x <= 0. || x >= hi then exact x
      else begin
        let s = scale *. sqrt x in
        let j = int_of_float s in
        let j = if j >= points then points - 1 else j in
        let frac = s -. float_of_int j in
        Array.unsafe_get table j +. (frac *. (Array.unsafe_get table (j + 1) -. Array.unsafe_get table j))
      end
    in
    Array.unsafe_set out i v
  done;
  out
