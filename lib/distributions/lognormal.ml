module Rng = Ckpt_prng.Rng
module Special = Ckpt_numerics.Special

let create ~mu ~sigma =
  if sigma <= 0. then invalid_arg "Lognormal.create: sigma must be positive";
  let sqrt2 = sqrt 2. in
  let survival x =
    if x <= 0. then 1.
    else 0.5 *. Special.erfc ((log x -. mu) /. (sigma *. sqrt2))
  in
  let cumulative_hazard x =
    if x <= 0. then 0.
    else begin
      let s = survival x in
      if s <= 0. then infinity else -.log s
    end
  in
  let pdf x =
    if x <= 0. then 0.
    else begin
      let z = (log x -. mu) /. sigma in
      exp (-0.5 *. z *. z) /. (x *. sigma *. sqrt (2. *. Float.pi))
    end
  in
  let quantile p = exp (mu +. (sigma *. Special.normal_quantile p)) in
  let sample rng = exp (mu +. (sigma *. Rng.normal rng)) in
  {
    Distribution.name = Printf.sprintf "lognormal(mu=%g,sigma=%g)" mu sigma;
    mean = exp (mu +. (0.5 *. sigma *. sigma));
    pdf;
    cumulative_hazard;
    quantile;
    sample;
    tlost_override = None;
    hazard_override = None;
  }

let of_mtbf ~mtbf ~sigma =
  if mtbf <= 0. then invalid_arg "Lognormal.of_mtbf: mtbf must be positive";
  create ~mu:(log mtbf -. (0.5 *. sigma *. sigma)) ~sigma
