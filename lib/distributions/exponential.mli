(** Exponential distribution — the memoryless case of the paper
    (Sections 2.3.1 and 3.2). *)

val create : rate:float -> Distribution.t
(** [create ~rate] has density [rate * exp (-rate * t)].
    Supplies the closed form of Lemma 1 for [E(Tlost)]:
    [1/lambda - omega / (exp (lambda omega) - 1)].
    @raise Invalid_argument if [rate <= 0]. *)

val of_mtbf : mtbf:float -> Distribution.t
(** [of_mtbf ~mtbf] is [create ~rate:(1 /. mtbf)] (Section 4.3 sets
    [lambda = 1/MTBF]).
    @raise Invalid_argument if [mtbf <= 0]. *)

val expected_tlost_closed_form : rate:float -> window:float -> float
(** Lemma 1's formula, exposed for direct testing against the generic
    numeric integration. *)
