module Rng = Ckpt_prng.Rng
module Rootfind = Ckpt_numerics.Rootfind

let create components =
  if components = [] then invalid_arg "Mixture.create: empty mixture";
  List.iter
    (fun (w, _) -> if w <= 0. then invalid_arg "Mixture.create: non-positive weight")
    components;
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. components in
  let components = List.map (fun (w, d) -> (w /. total, d)) components in
  let survival x =
    List.fold_left (fun acc (w, d) -> acc +. (w *. Distribution.survival d x)) 0. components
  in
  let cumulative_hazard x =
    if x <= 0. then 0.
    else begin
      let s = survival x in
      if s <= 0. then infinity else -.log s
    end
  in
  let pdf x =
    List.fold_left (fun acc (w, d) -> acc +. (w *. d.Distribution.pdf x)) 0. components
  in
  let mean = List.fold_left (fun acc (w, d) -> acc +. (w *. d.Distribution.mean)) 0. components in
  let quantile p =
    if p <= 0. then 0.
    else begin
      (* Bracket using the extreme component quantiles, then Brent on
         the mixture CDF. *)
      let hi =
        List.fold_left (fun acc (_, d) -> Float.max acc (d.Distribution.quantile p)) 0. components
      in
      let hi = if hi > 0. then hi else 1. in
      let f x = 1. -. survival x -. p in
      if f hi >= 0. then Rootfind.brent ~f ~lo:0. ~hi ()
      else begin
        (* Numerical slack at extreme p: expand the bracket. *)
        let hi = ref hi in
        while f !hi < 0. && !hi < 1e300 do
          hi := !hi *. 2.
        done;
        Rootfind.brent ~f ~lo:0. ~hi:!hi ()
      end
    end
  in
  let sample rng =
    let u = Rng.uniform rng in
    let rec pick acc = function
      | [] -> invalid_arg "Mixture.sample: unreachable"
      | [ (_, d) ] -> d.Distribution.sample rng
      | (w, d) :: rest -> if u < acc +. w then d.Distribution.sample rng else pick (acc +. w) rest
    in
    pick 0. components
  in
  {
    Distribution.name =
      Printf.sprintf "mixture(%s)"
        (String.concat "+"
           (List.map (fun (w, d) -> Printf.sprintf "%.2f*%s" w d.Distribution.name) components));
    mean;
    pdf;
    cumulative_hazard;
    quantile;
    sample;
    tlost_override = None;
    hazard_override = None;
  }
