(** Maximum-likelihood fitting of lifetime models to failure data.

    The paper's log-based methodology (Section 4.3) uses the empirical
    distribution directly, but its synthetic studies need Weibull
    parameters that {e come from} logs — Schroeder-Gibson fit Weibull
    shapes of 0.33-0.49 to the LANL data, Heath et al. 0.7-0.78.  This
    module closes that loop: fit Exponential / Weibull / LogNormal to
    an interval sample, compare fits, and hand the winner to the
    simulator or the DP policies. *)

type fitted = {
  distribution : Distribution.t;
  log_likelihood : float;
  aic : float;  (** Akaike information criterion: [2 k - 2 ln L]. *)
  ks_statistic : float;
      (** Kolmogorov-Smirnov distance between the fitted CDF and the
          empirical CDF of the sample. *)
}

val exponential : float array -> fitted
(** [lambda = 1 / sample mean].
    @raise Invalid_argument on empty or non-positive data. *)

val weibull : ?shape_bounds:float * float -> float array -> fitted
(** Full MLE: the shape solves
    [sum x^k ln x / sum x^k - 1/k = mean (ln x)]
    (Brent within [shape_bounds], default [(0.05, 20)]), then
    [scale = (mean x^k)^(1/k)]. *)

val lognormal : float array -> fitted
(** [mu, sigma] are the mean and standard deviation of [ln x]. *)

val best_fit : float array -> fitted
(** The candidate with the smallest AIC. *)

val ks_distance : Distribution.t -> float array -> float
(** [sup_x |F_fit(x) - F_empirical(x)|] over the sample points. *)
