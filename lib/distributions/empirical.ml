module Rng = Ckpt_prng.Rng

(* Number of sample points >= t in the sorted array, by binary search
   for the first index holding a value >= t. *)
let count_at_least sorted t =
  let n = Array.length sorted in
  if t <= sorted.(0) then n
  else if t > sorted.(n - 1) then 0
  else begin
    (* Invariant: sorted.(lo) < t <= sorted.(hi). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) >= t then hi := mid else lo := mid
    done;
    n - !hi
  end

let conditional_survival_counts sample ~t ~tau =
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  let denom = count_at_least sorted tau in
  if denom = 0 then 0.
  else float_of_int (count_at_least sorted t) /. float_of_int denom

let of_intervals sample =
  let n = Array.length sample in
  if n = 0 then invalid_arg "Empirical.of_intervals: empty sample";
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Empirical.of_intervals: non-positive duration")
    sample;
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  let nf = float_of_int n in
  let max_v = sorted.(n - 1) in
  (* Clamp so that conditioning never lands on an empty set: the
     largest observed duration always "survives" queries at itself. *)
  let clamp t = if t >= max_v then max_v else t in
  let survival t =
    if t <= 0. then 1. else float_of_int (count_at_least sorted (clamp t)) /. nf
  in
  let cumulative_hazard t =
    let s = survival t in
    if s <= 0. then infinity else -.log s
  in
  let quantile p =
    if p <= 0. then sorted.(0)
    else if p >= 1. then max_v
    else begin
      (* Smallest order statistic x with F(x) >= p, where
         F(x) = #(points <= x)/n. *)
      let k = int_of_float (ceil (p *. nf)) in
      let k = if k < 1 then 1 else if k > n then n else k in
      sorted.(k - 1)
    end
  in
  let sample_fn rng = sorted.(Rng.int rng n) in
  let mean = Array.fold_left ( +. ) 0. sorted /. nf in
  (* Step-function hazard estimate over a window of a few order
     statistics; only consumers like the Liu heuristic use it. *)
  let hazard t =
    let t = clamp t in
    let at_least = count_at_least sorted t in
    if at_least = 0 then infinity
    else begin
      let span = Float.max (max_v /. 200.) (t *. 0.05) in
      let dying = at_least - count_at_least sorted (t +. span) in
      float_of_int dying /. (float_of_int at_least *. span)
    end
  in
  let tlost ~age ~window =
    let age = clamp age in
    let lo = count_at_least sorted age in
    let hi = count_at_least sorted (age +. window) in
    (* Points in [age, age + window): indices n-lo .. n-hi-1. *)
    if lo = hi then window /. 2.
    else begin
      let acc = ref 0. in
      for i = n - lo to n - hi - 1 do
        acc := !acc +. (sorted.(i) -. age)
      done;
      !acc /. float_of_int (lo - hi)
    end
  in
  {
    Distribution.name = Printf.sprintf "empirical(n=%d)" n;
    mean;
    pdf =
      (fun t ->
        (* Density surrogate: hazard * survival; adequate for plots and
           for policies that only need relative magnitudes. *)
        if t < 0. then 0. else hazard t *. survival t);
    cumulative_hazard;
    quantile;
    sample = sample_fn;
    tlost_override = Some tlost;
    hazard_override = Some hazard;
  }
