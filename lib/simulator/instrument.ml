(* Lightweight observability for the long Monte-Carlo runs: per-label
   wall-clock accumulation and replicate-progress reporting.  Logging
   is behind CKPT_VERBOSE=1 so the default path costs one branch; the
   timers themselves live in the process-global Metrics registry
   (names "stage/<label>") and also accumulate under CKPT_METRICS=1,
   so `ckpt stats` can show stage timings without verbose logging. *)

module Metrics = Ckpt_telemetry.Metrics

(* First call may happen inside a parallel region (replicate progress,
   stage timers on worker domains), where concurrently forcing a lazy
   raises; an idempotent atomic memo tolerates the race — the env read
   is pure, so a duplicate computation is harmless. *)
let enabled_flag = Atomic.make None

let enabled () =
  match Atomic.get enabled_flag with
  | Some b -> b
  | None ->
      let b = Sys.getenv_opt "CKPT_VERBOSE" = Some "1" in
      Atomic.set enabled_flag (Some b);
      b

(* Timers accumulate whenever either consumer is live. *)
let active () = enabled () || Metrics.enabled ()
let stage_prefix = "stage/"

let src = Logs.Src.create "ckpt.eval" ~doc:"Evaluation-harness instrumentation"

module Log = (val Logs.src_log src : Logs.LOG)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Logs reporters are not required to be domain-safe; ours serializes
   through [lock] and is only installed when nothing else is. *)
let reporter () =
  let report _src level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        locked (fun () ->
            Format.kfprintf
              (fun ppf ->
                Format.pp_print_newline ppf ();
                over ();
                k ())
              Format.err_formatter
              ("[%s] " ^^ fmt)
              (match level with
              | Logs.Error -> "eval:error"
              | Logs.Warning -> "eval:warn"
              | _ -> "eval")))
  in
  { Logs.report }

(* Mutex-guarded rather than [lazy]: [setup] can be reached from
   worker domains, and the reporter installation must run exactly
   once. *)
let setup_done = ref false

let setup () =
  locked (fun () ->
      if not !setup_done then begin
        setup_done := true;
        if enabled () then begin
          if Logs.reporter () == Logs.nop_reporter then Logs.set_reporter (reporter ());
          Logs.Src.set_level src (Some Logs.Info)
        end
      end)

(* -- wall-clock accumulation ---------------------------------------------- *)

let time label f =
  if not (active ()) then f ()
  else begin
    (* Resolve the handle before the measured region: registration
       takes the registry lock, the record itself only the timer's. *)
    let t = Metrics.timer (stage_prefix ^ label) in
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () -> Metrics.record t (Unix.gettimeofday () -. t0))
  end

let reset () = Metrics.reset ~prefix:stage_prefix ()

let stage_rows () =
  Metrics.snapshot ()
  |> List.filter_map (fun (name, v) ->
         match v with
         | Metrics.Timer { seconds; calls }
           when calls > 0
                && String.length name > String.length stage_prefix
                && String.sub name 0 (String.length stage_prefix) = stage_prefix ->
             Some
               ( String.sub name (String.length stage_prefix)
                   (String.length name - String.length stage_prefix),
                 seconds,
                 calls )
         | _ -> None)
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let report ~label () =
  if enabled () then begin
    setup ();
    let rows = stage_rows () in
    let total = List.fold_left (fun acc (_, s, _) -> acc +. s) 0. rows in
    if rows <> [] then begin
      Log.info (fun m -> m "%s: wall-clock by stage (%.2f s total across domains)" label total);
      List.iter
        (fun (name, seconds, calls) ->
          Log.info (fun m ->
              m "  %-20s %8.2f s  %6d calls  %5.1f%%" name seconds calls
                (100. *. seconds /. Float.max total 1e-12)))
        rows
    end
  end

(* -- per-study scoping ---------------------------------------------------- *)

(* Stage timers are process-global, so two experiments run back to
   back would double-count each other's stages unless someone resets
   between them.  A scope marks one study as the owner of the timers:
   it resets on entry, reports on exit, and anything running inside
   (in particular [Evaluation.degradation_table]) leaves them alone. *)

let scope_depth = Atomic.make 0
let in_scope () = Atomic.get scope_depth > 0

let scoped ~label f =
  let outermost = Atomic.fetch_and_add scope_depth 1 = 0 in
  if outermost then reset ();
  Fun.protect f ~finally:(fun () ->
      if outermost then report ~label ();
      ignore (Atomic.fetch_and_add scope_depth (-1)))

(* -- replicate progress --------------------------------------------------- *)

type progress = { p_label : string; total : int; stride : int; done_ : int Atomic.t }

let progress ~label ~total =
  if enabled () then setup ();
  { p_label = label; total; stride = max 1 (total / 10); done_ = Atomic.make 0 }

let step p =
  if enabled () then begin
    let d = 1 + Atomic.fetch_and_add p.done_ 1 in
    if d = p.total || d mod p.stride = 0 then
      Log.info (fun m -> m "%s: %d/%d replicates" p.p_label d p.total)
  end

let info fmt =
  Format.ksprintf (fun s -> if enabled () then begin setup (); Log.info (fun m -> m "%s" s) end) fmt
