(* Lightweight observability for the long Monte-Carlo runs: per-label
   wall-clock accumulation and replicate-progress reporting, all
   behind CKPT_VERBOSE=1 so the default path costs one branch. *)

let enabled_flag = lazy (Sys.getenv_opt "CKPT_VERBOSE" = Some "1")
let enabled () = Lazy.force enabled_flag

let src = Logs.Src.create "ckpt.eval" ~doc:"Evaluation-harness instrumentation"

module Log = (val Logs.src_log src : Logs.LOG)

(* Timers and progress counters are shared across domains: everything
   below is either atomic or guarded by [lock]. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Logs reporters are not required to be domain-safe; ours serializes
   through [lock] and is only installed when nothing else is. *)
let reporter () =
  let report _src level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        locked (fun () ->
            Format.kfprintf
              (fun ppf ->
                Format.pp_print_newline ppf ();
                over ();
                k ())
              Format.err_formatter
              ("[%s] " ^^ fmt)
              (match level with
              | Logs.Error -> "eval:error"
              | Logs.Warning -> "eval:warn"
              | _ -> "eval")))
  in
  { Logs.report }

let setup_once =
  lazy
    (if enabled () then begin
       if Logs.reporter () == Logs.nop_reporter then Logs.set_reporter (reporter ());
       Logs.Src.set_level src (Some Logs.Info)
     end)

let setup () = Lazy.force setup_once

(* -- wall-clock accumulation ---------------------------------------------- *)

type cell = { mutable seconds : float; mutable calls : int }

let timers : (string, cell) Hashtbl.t = Hashtbl.create 16

let time label f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        locked (fun () ->
            match Hashtbl.find_opt timers label with
            | Some c ->
                c.seconds <- c.seconds +. dt;
                c.calls <- c.calls + 1
            | None -> Hashtbl.add timers label { seconds = dt; calls = 1 }))
  end

let reset () = locked (fun () -> Hashtbl.reset timers)

let report ~label () =
  if enabled () then begin
    setup ();
    let rows =
      locked (fun () -> Hashtbl.fold (fun name c acc -> (name, c.seconds, c.calls) :: acc) timers [])
      |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
    in
    let total = List.fold_left (fun acc (_, s, _) -> acc +. s) 0. rows in
    if rows <> [] then begin
      Log.info (fun m -> m "%s: wall-clock by stage (%.2f s total across domains)" label total);
      List.iter
        (fun (name, seconds, calls) ->
          Log.info (fun m ->
              m "  %-20s %8.2f s  %6d calls  %5.1f%%" name seconds calls
                (100. *. seconds /. Float.max total 1e-12)))
        rows
    end
  end

(* -- replicate progress --------------------------------------------------- *)

type progress = { p_label : string; total : int; stride : int; done_ : int Atomic.t }

let progress ~label ~total =
  if enabled () then setup ();
  { p_label = label; total; stride = max 1 (total / 10); done_ = Atomic.make 0 }

let step p =
  if enabled () then begin
    let d = 1 + Atomic.fetch_and_add p.done_ 1 in
    if d = p.total || d mod p.stride = 0 then
      Log.info (fun m -> m "%s: %d/%d replicates" p.p_label d p.total)
  end

let info fmt =
  Format.ksprintf (fun s -> if enabled () then begin setup (); Log.info (fun m -> m "%s" s) end) fmt
