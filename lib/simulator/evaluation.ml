module Policy = Ckpt_policies.Policy
module Summary = Ckpt_numerics.Summary

type policy_result = {
  policy_name : string;
  average_degradation : float;
  std_degradation : float;
  average_makespan : float;
  successes : int;
  average_failures : float;
  max_failures : int;
  average_chunks : float;
  min_chunk : float;
  max_chunk : float;
}

type table = {
  lower_bound : policy_result;
  results : policy_result list;
  replicates : int;
  usable_replicates : int;
}

type accumulator = {
  mutable degradation : Summary.t;
  mutable makespan : Summary.t;
  mutable failures : Summary.t;
  mutable chunk_counts : Summary.t;
  mutable worst_failures : int;
  mutable smallest_chunk : float;
  mutable largest_chunk : float;
}

let fresh_accumulator () =
  {
    degradation = Summary.empty;
    makespan = Summary.empty;
    failures = Summary.empty;
    chunk_counts = Summary.empty;
    worst_failures = 0;
    smallest_chunk = infinity;
    largest_chunk = 0.;
  }

let record acc ~degradation (m : Engine.metrics) =
  acc.degradation <- Summary.add acc.degradation degradation;
  acc.makespan <- Summary.add acc.makespan m.Engine.makespan;
  acc.failures <- Summary.add acc.failures (float_of_int m.Engine.failures);
  acc.chunk_counts <- Summary.add acc.chunk_counts (float_of_int m.Engine.chunks);
  acc.worst_failures <- max acc.worst_failures m.Engine.failures;
  if m.Engine.chunks > 0 then begin
    acc.smallest_chunk <- Float.min acc.smallest_chunk m.Engine.min_chunk;
    acc.largest_chunk <- Float.max acc.largest_chunk m.Engine.max_chunk
  end

let result_of_accumulator name acc =
  {
    policy_name = name;
    average_degradation = Summary.mean acc.degradation;
    std_degradation = Summary.std acc.degradation;
    average_makespan = Summary.mean acc.makespan;
    successes = Summary.count acc.degradation;
    average_failures = Summary.mean acc.failures;
    max_failures = acc.worst_failures;
    average_chunks = Summary.mean acc.chunk_counts;
    min_chunk = (if acc.smallest_chunk = infinity then 0. else acc.smallest_chunk);
    max_chunk = acc.largest_chunk;
  }

let degradation_table ~scenario ~policies ~replicates =
  if replicates <= 0 then invalid_arg "Evaluation.degradation_table: replicates must be positive";
  if policies = [] then invalid_arg "Evaluation.degradation_table: no policies";
  let n = List.length policies in
  let accs = Array.init n (fun _ -> fresh_accumulator ()) in
  let lb_acc = fresh_accumulator () in
  let usable = ref 0 in
  for replicate = 0 to replicates - 1 do
    let traces = Scenario.traces scenario ~replicate in
    let runs = List.map (fun policy -> Engine.run ~scenario ~traces ~policy) policies in
    let best =
      List.fold_left
        (fun acc outcome ->
          match outcome with
          | Engine.Completed m -> Float.min acc m.Engine.makespan
          | Engine.Policy_failed _ -> acc)
        infinity runs
    in
    if Float.is_finite best && best > 0. then begin
      incr usable;
      List.iteri
        (fun i outcome ->
          match outcome with
          | Engine.Completed m ->
              record accs.(i) ~degradation:(m.Engine.makespan /. best) m
          | Engine.Policy_failed _ -> ())
        runs;
      let lb = Engine.lower_bound ~scenario ~traces in
      record lb_acc ~degradation:(lb.Engine.makespan /. best) lb
    end
  done;
  {
    lower_bound = result_of_accumulator "LowerBound" lb_acc;
    results = List.mapi (fun i p -> result_of_accumulator p.Policy.name accs.(i)) policies;
    replicates;
    usable_replicates = !usable;
  }

let average_makespan ~scenario ~policy ~replicates =
  let acc = ref Summary.empty in
  for replicate = 0 to replicates - 1 do
    let traces = Scenario.traces scenario ~replicate in
    match Engine.run ~scenario ~traces ~policy with
    | Engine.Completed m -> acc := Summary.add !acc m.Engine.makespan
    | Engine.Policy_failed _ -> ()
  done;
  if Summary.count !acc = 0 then None else Some (Summary.mean !acc)

let pp_result fmt r =
  Format.fprintf fmt "%-16s %8.5f %8.5f  %10.0f s  %3d ok  %6.1f fail (max %d)" r.policy_name
    r.average_degradation r.std_degradation r.average_makespan r.successes r.average_failures
    r.max_failures

let pp_table fmt t =
  Format.fprintf fmt "%-16s %8s %8s  %12s  %5s  %s@." "policy" "avg-deg" "std" "avg-makespan"
    "runs" "failures";
  Format.fprintf fmt "%a@." pp_result t.lower_bound;
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_result r) t.results;
  Format.fprintf fmt "(%d/%d usable trace sets)@." t.usable_replicates t.replicates
