module Policy = Ckpt_policies.Policy
module Summary = Ckpt_numerics.Summary
module Domain_pool = Ckpt_parallel.Domain_pool
module Metrics = Ckpt_telemetry.Metrics
module Metrics_export = Ckpt_telemetry.Metrics_export
module Tracer = Ckpt_telemetry.Tracer
module Trace_export = Ckpt_telemetry.Trace_export

(* Replicate wall-clock latency (seconds), across all policies of the
   replicate; fills under CKPT_METRICS=1. *)
let replicate_seconds = Metrics.histogram "eval/replicate_seconds"
let policy_run_seconds = Metrics.histogram "eval/policy_run_seconds"
let trace_gen_seconds = Metrics.histogram "eval/trace_gen_seconds"
let replicates_run = Metrics.counter "eval/replicates"
let unusable_replicates = Metrics.counter "eval/unusable_replicates"

(* Wall-clock spent inside [Engine.run_stripe] (one policy's pass over
   a whole stripe), batch path only; the per-replicate histograms
   above are scalar-path instruments. *)
let stripe_engine_seconds = Metrics.timer "eval/stripe_engine_seconds"

(* Simulated waste decomposition of every completed run, one histogram
   per component (seconds of simulated time); fills under
   CKPT_METRICS=1 and shows up in `ckpt stats` and the OpenMetrics
   textfile. *)
let makespan_sim_seconds = Metrics.histogram "eval/makespan_sim_seconds"
let useful_sim_seconds = Metrics.histogram "eval/useful_sim_seconds"
let checkpoint_sim_seconds = Metrics.histogram "eval/checkpoint_sim_seconds"
let wasted_sim_seconds = Metrics.histogram "eval/wasted_sim_seconds"
let recovery_sim_seconds = Metrics.histogram "eval/recovery_sim_seconds"
let stall_sim_seconds = Metrics.histogram "eval/stall_sim_seconds"

(* Component layout of the distributional accumulator
   (Summary.Vector): the engine's waste decomposition plus the
   per-replicate degradation. *)
let comp_makespan = 0
let comp_useful = 1
let comp_checkpoint = 2
let comp_wasted = 3
let comp_recovery = 4
let comp_stall = 5
let comp_degradation = 6
let profile_dim = 7

type waste_profile = {
  mk_p50 : float;
  mk_p95 : float;
  mk_p99 : float;
  mk_mean : float;
  mk_ci95 : float;
  deg_ci95 : float;
  useful_s : float;
  checkpoint_s : float;
  wasted_s : float;
  recovery_s : float;
  stall_s : float;
  useful_frac : float;
  checkpoint_frac : float;
  wasted_frac : float;
  recovery_frac : float;
  stall_frac : float;
}

type policy_result = {
  policy_name : string;
  average_degradation : float;
  std_degradation : float;
  average_makespan : float;
  successes : int;
  average_failures : float;
  max_failures : int;
  average_chunks : float;
  min_chunk : float;
  max_chunk : float;
  profile : waste_profile option;  (* None when no run completed *)
}

type table = {
  lower_bound : policy_result;
  results : policy_result list;
  replicates : int;
  usable_replicates : int;
}

type accumulator = {
  mutable degradation : Summary.t;
  mutable makespan : Summary.t;
  mutable failures : Summary.t;
  mutable chunk_counts : Summary.t;
  mutable worst_failures : int;
  mutable smallest_chunk : float;
  mutable largest_chunk : float;
  mutable profile : Summary.Vector.t;
      (* exact distributional view of the waste decomposition; merges
         bit-identically whatever the reduction tree, unlike the
         Welford summaries above (which stay the source of the
         original mean/std columns). *)
}

let fresh_accumulator () =
  {
    degradation = Summary.empty;
    makespan = Summary.empty;
    failures = Summary.empty;
    chunk_counts = Summary.empty;
    worst_failures = 0;
    smallest_chunk = infinity;
    largest_chunk = 0.;
    profile = Summary.Vector.create ~dim:profile_dim;
  }

let observation_of_metrics ~degradation (m : Engine.metrics) =
  let obs = Array.make profile_dim 0. in
  obs.(comp_makespan) <- m.Engine.makespan;
  obs.(comp_useful) <- m.Engine.useful_work;
  obs.(comp_checkpoint) <- m.Engine.checkpoint_time;
  obs.(comp_wasted) <- m.Engine.wasted_time;
  obs.(comp_recovery) <- m.Engine.recovery_time;
  obs.(comp_stall) <- m.Engine.stall_time;
  obs.(comp_degradation) <- degradation;
  obs

let record acc ~degradation (m : Engine.metrics) =
  acc.degradation <- Summary.add acc.degradation degradation;
  acc.makespan <- Summary.add acc.makespan m.Engine.makespan;
  acc.failures <- Summary.add acc.failures (float_of_int m.Engine.failures);
  acc.chunk_counts <- Summary.add acc.chunk_counts (float_of_int m.Engine.chunks);
  acc.worst_failures <- max acc.worst_failures m.Engine.failures;
  if m.Engine.chunks > 0 then begin
    acc.smallest_chunk <- Float.min acc.smallest_chunk m.Engine.min_chunk;
    acc.largest_chunk <- Float.max acc.largest_chunk m.Engine.max_chunk
  end;
  acc.profile <- Summary.Vector.add acc.profile (observation_of_metrics ~degradation m);
  Metrics.observe makespan_sim_seconds m.Engine.makespan;
  Metrics.observe useful_sim_seconds m.Engine.useful_work;
  Metrics.observe checkpoint_sim_seconds m.Engine.checkpoint_time;
  Metrics.observe wasted_sim_seconds m.Engine.wasted_time;
  Metrics.observe recovery_sim_seconds m.Engine.recovery_time;
  Metrics.observe stall_sim_seconds m.Engine.stall_time

let merge_into acc other =
  acc.degradation <- Summary.merge acc.degradation other.degradation;
  acc.makespan <- Summary.merge acc.makespan other.makespan;
  acc.failures <- Summary.merge acc.failures other.failures;
  acc.chunk_counts <- Summary.merge acc.chunk_counts other.chunk_counts;
  acc.worst_failures <- max acc.worst_failures other.worst_failures;
  acc.smallest_chunk <- Float.min acc.smallest_chunk other.smallest_chunk;
  acc.largest_chunk <- Float.max acc.largest_chunk other.largest_chunk;
  acc.profile <- Summary.Vector.merge acc.profile other.profile

let profile_of_vector v =
  let module V = Summary.Vector in
  if V.count v = 0 then None
  else begin
    let mk_mean = V.mean v comp_makespan in
    let frac i = if mk_mean > 0. then V.mean v i /. mk_mean else nan in
    Some
      {
        mk_p50 = V.quantile v comp_makespan 0.5;
        mk_p95 = V.quantile v comp_makespan 0.95;
        mk_p99 = V.quantile v comp_makespan 0.99;
        mk_mean;
        mk_ci95 = V.ci_half_width v comp_makespan;
        deg_ci95 = V.ci_half_width v comp_degradation;
        useful_s = V.mean v comp_useful;
        checkpoint_s = V.mean v comp_checkpoint;
        wasted_s = V.mean v comp_wasted;
        recovery_s = V.mean v comp_recovery;
        stall_s = V.mean v comp_stall;
        useful_frac = frac comp_useful;
        checkpoint_frac = frac comp_checkpoint;
        wasted_frac = frac comp_wasted;
        recovery_frac = frac comp_recovery;
        stall_frac = frac comp_stall;
      }
  end

let result_of_accumulator name acc =
  {
    policy_name = name;
    average_degradation = Summary.mean acc.degradation;
    std_degradation = Summary.std acc.degradation;
    average_makespan = Summary.mean acc.makespan;
    successes = Summary.count acc.degradation;
    average_failures = Summary.mean acc.failures;
    max_failures = acc.worst_failures;
    average_chunks = Summary.mean acc.chunk_counts;
    min_chunk = (if acc.smallest_chunk = infinity then 0. else acc.smallest_chunk);
    max_chunk = acc.largest_chunk;
    profile = profile_of_vector acc.profile;
  }

(* One Monte-Carlo replicate, self-contained: generates (or fetches
   from the scenario cache) its trace set, runs every policy and the
   omniscient bound, and accumulates into replicate-local state.  The
   result depends only on (scenario, policies, replicate) — never on
   which domain ran it or in which order — which is what makes the
   parallel fan-out below deterministic. *)
type replicate_outcome = {
  rep_accs : accumulator array;  (* one per policy, input order *)
  rep_lb : accumulator;
  rep_usable : bool;
}

let run_replicate ~scenario ~policies replicate =
  let tracing = Tracer.enabled () in
  let metered = Metrics.enabled () in
  let t_start = if metered then Unix.gettimeofday () else 0. in
  (* The per-stage latency histograms feed the metrics exposition
     (p50/p90/p99 in `ckpt stats` and the OpenMetrics textfile); the
     stage timers only carry totals. *)
  let observed hist f =
    if not metered then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      let v = f () in
      Metrics.observe hist (Unix.gettimeofday () -. t0);
      v
    end
  in
  let traces =
    Instrument.time "trace-generation" (fun () ->
        observed trace_gen_seconds (fun () -> Scenario.traces scenario ~replicate))
  in
  let traced_run ~policy =
    if not tracing then Engine.run ~scenario ~traces ~policy
    else begin
      let buf = Tracer.create_buffer ~name:(Printf.sprintf "rep%d/%s" replicate policy.Policy.name) () in
      let outcome = Engine.run_traced ~trace:buf ~scenario ~traces ~policy in
      Tracer.register buf;
      outcome
    end
  in
  let runs =
    Array.map
      (fun policy ->
        Instrument.time policy.Policy.name (fun () ->
            observed policy_run_seconds (fun () -> traced_run ~policy)))
      policies
  in
  let best =
    Array.fold_left
      (fun acc outcome ->
        match outcome with
        | Engine.Completed m -> Float.min acc m.Engine.makespan
        | Engine.Policy_failed _ -> acc)
      infinity runs
  in
  let rep_accs = Array.map (fun _ -> fresh_accumulator ()) policies in
  let rep_lb = fresh_accumulator () in
  let rep_usable = Float.is_finite best && best > 0. in
  if rep_usable then begin
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Engine.Completed m -> record rep_accs.(i) ~degradation:(m.Engine.makespan /. best) m
        | Engine.Policy_failed _ -> ())
      runs;
    let lb =
      Instrument.time "LowerBound" (fun () ->
          if not tracing then Engine.lower_bound ~scenario ~traces
          else begin
            let buf =
              Tracer.create_buffer ~name:(Printf.sprintf "rep%d/LowerBound" replicate) ()
            in
            let lb = Engine.lower_bound_traced ~trace:buf ~scenario ~traces in
            Tracer.register buf;
            lb
          end)
    in
    record rep_lb ~degradation:(lb.Engine.makespan /. best) lb
  end;
  if metered then begin
    Metrics.observe replicate_seconds (Unix.gettimeofday () -. t_start);
    Metrics.incr replicates_run;
    if not rep_usable then Metrics.incr unusable_replicates
  end;
  { rep_accs; rep_lb; rep_usable }

(* Stripe-level sibling of [run_replicate]: generates the stripe's
   trace sets, computes each slot's initial lifetime template once
   (shared by every policy's pass), steps every policy over the whole
   stripe through the batch engine, then reassembles per-replicate
   outcomes in canonical slot order.  Each slot's accumulators receive
   exactly the operands [run_replicate] would feed them, in the same
   order, so the reduced table is bit-identical to the scalar path.
   The omniscient bound never consults a policy — nothing to batch —
   and stays on the scalar engine.  Callers must route tracing runs to
   [run_replicate]; there is no traced batch engine. *)
let run_replicate_stripe ~scenario ~policies ~first ~len =
  let metered = Metrics.enabled () in
  let observed hist f =
    if not metered then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      let v = f () in
      Metrics.observe hist (Unix.gettimeofday () -. t0);
      v
    end
  in
  let traces =
    Instrument.time "trace-generation" (fun () ->
        Array.init len (fun i ->
            observed trace_gen_seconds (fun () ->
                Scenario.traces scenario ~replicate:(first + i))))
  in
  let initial_births =
    Array.map (fun tr -> Scenario.initial_lifetime_starts scenario tr) traces
  in
  (* One engine pass per policy over the full stripe; [policy_runs.(j).(i)]
     is policy [j]'s outcome on replicate [first + i]. *)
  let policy_runs =
    Array.map
      (fun policy ->
        Instrument.time policy.Policy.name (fun () ->
            if not metered then Engine.run_stripe ~initial_births ~scenario ~traces ~policy ()
            else begin
              let t0 = Unix.gettimeofday () in
              let runs = Engine.run_stripe ~initial_births ~scenario ~traces ~policy () in
              Metrics.record stripe_engine_seconds (Unix.gettimeofday () -. t0);
              runs
            end))
      policies
  in
  Array.init len (fun i ->
      let best =
        Array.fold_left
          (fun acc runs ->
            match runs.(i) with
            | Engine.Completed m -> Float.min acc m.Engine.makespan
            | Engine.Policy_failed _ -> acc)
          infinity policy_runs
      in
      let rep_accs = Array.map (fun _ -> fresh_accumulator ()) policies in
      let rep_lb = fresh_accumulator () in
      let rep_usable = Float.is_finite best && best > 0. in
      if rep_usable then begin
        Array.iteri
          (fun j runs ->
            match runs.(i) with
            | Engine.Completed m -> record rep_accs.(j) ~degradation:(m.Engine.makespan /. best) m
            | Engine.Policy_failed _ -> ())
          policy_runs;
        let lb =
          Instrument.time "LowerBound" (fun () ->
              Engine.lower_bound ~scenario ~traces:traces.(i))
        in
        record rep_lb ~degradation:(lb.Engine.makespan /. best) lb
      end;
      if metered then begin
        Metrics.incr replicates_run;
        if not rep_usable then Metrics.incr unusable_replicates
      end;
      { rep_accs; rep_lb; rep_usable })

(* The batch engine has no event-stream counterpart: tracing pins the
   scalar path regardless of CKPT_ENGINE. *)
let use_batch_engine () =
  (not (Tracer.enabled ())) && Engine.selected_kind () = Engine.Batch

(* -- replicate stripes -------------------------------------------------------

   Replicates are grouped into contiguous stripes of [stripe_size]
   (CKPT_SWEEP_STRIPE): the reduction merges replicate outcomes in
   order within each stripe, then stripe partials in stripe order.
   This fixed merge tree — independent of domain count, scheduler
   backend, and of whether a stripe was computed now or loaded from a
   sweep checkpoint — is what makes a resumed study bit-identical to
   an uninterrupted one. *)

let default_stripe_size = 16

let stripe_size () =
  match Sys.getenv_opt "CKPT_SWEEP_STRIPE" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> default_stripe_size)
  | None -> default_stripe_size

let stripe_count ~replicates =
  if replicates <= 0 then invalid_arg "Evaluation.stripe_count: replicates must be positive";
  let sz = stripe_size () in
  (replicates + sz - 1) / sz

let stripe_bounds ~replicates ~stripe =
  if replicates <= 0 then invalid_arg "Evaluation.stripe_bounds: replicates must be positive";
  let sz = stripe_size () in
  let first = stripe * sz in
  if stripe < 0 || first >= replicates then invalid_arg "Evaluation.stripe_bounds: no such stripe";
  (first, min sz (replicates - first))

type partial = {
  p_policies : string array;  (* policy names, input order *)
  p_accs : accumulator array;
  p_lb : accumulator;
  p_usable : int;
  p_replicates : int;
}

(* Merge the outcomes of replicates [first, first + len) in replicate
   order — the canonical within-stripe reduction. *)
let partial_of_outcomes ~policy_names outcomes ~first ~len =
  let accs = Array.map (fun _ -> fresh_accumulator ()) policy_names in
  let lb = fresh_accumulator () in
  let usable = ref 0 in
  for i = first to first + len - 1 do
    let o = outcomes.(i) in
    if o.rep_usable then incr usable;
    Array.iteri (fun j rep -> merge_into accs.(j) rep) o.rep_accs;
    merge_into lb o.rep_lb
  done;
  { p_policies = policy_names; p_accs = accs; p_lb = lb; p_usable = !usable; p_replicates = len }

(* A merge-neutral partial: zero replicates, fresh accumulators, the
   given roster.  Sweep workers substitute it for units another worker
   currently holds — worker-side reductions are discarded (only the
   parent's canonical pass renders output), so the placeholder merely
   keeps the roster checks in [table_of_partials] satisfied. *)
let empty_partial ~policy_names =
  partial_of_outcomes ~policy_names [||] ~first:0 ~len:0

let stripe_partial ~scenario ~policies ~replicates ~stripe =
  if replicates <= 0 then invalid_arg "Evaluation.stripe_partial: replicates must be positive";
  if policies = [] then invalid_arg "Evaluation.stripe_partial: no policies";
  let first, len = stripe_bounds ~replicates ~stripe in
  let policy_array = Array.of_list policies in
  let names = Array.map (fun p -> p.Policy.name) policy_array in
  let outcomes =
    if use_batch_engine () then run_replicate_stripe ~scenario ~policies:policy_array ~first ~len
    else
      Domain_pool.parallel_init len (fun i ->
          run_replicate ~scenario ~policies:policy_array (first + i))
  in
  partial_of_outcomes ~policy_names:names outcomes ~first:0 ~len

let table_of_partials partials =
  match partials with
  | [] -> invalid_arg "Evaluation.table_of_partials: no partials"
  | head :: _ ->
      List.iter
        (fun p ->
          if p.p_policies <> head.p_policies then
            invalid_arg "Evaluation.table_of_partials: mismatched policy rosters")
        partials;
      let accs = Array.map (fun _ -> fresh_accumulator ()) head.p_policies in
      let lb_acc = fresh_accumulator () in
      let usable = ref 0 in
      let replicates = ref 0 in
      List.iter
        (fun p ->
          usable := !usable + p.p_usable;
          replicates := !replicates + p.p_replicates;
          Array.iteri (fun i a -> merge_into accs.(i) a) p.p_accs;
          merge_into lb_acc p.p_lb)
        partials;
      {
        lower_bound = result_of_accumulator "LowerBound" lb_acc;
        results =
          Array.to_list
            (Array.mapi (fun i name -> result_of_accumulator name accs.(i)) head.p_policies);
        replicates = !replicates;
        usable_replicates = !usable;
      }

(* -- persistence of partials -------------------------------------------------

   Line-based text, floats in hexadecimal notation via
   [Summary.serialize], so a reloaded partial is bit-identical to the
   computed one.  Deserialization answers [None] on any malformed
   input: a corrupted checkpoint must read as "recompute me". *)

let serialize_accumulator a =
  Printf.sprintf "%s %s %s %s %d %h %h %s" (Summary.serialize a.degradation)
    (Summary.serialize a.makespan) (Summary.serialize a.failures)
    (Summary.serialize a.chunk_counts) a.worst_failures a.smallest_chunk a.largest_chunk
    (Summary.Vector.serialize a.profile)

(* 4 summaries x 5 tokens + worst/smallest/largest, followed by the
   variable-length distributional vector. *)
let accumulator_tokens = 23

let deserialize_accumulator tokens =
  let ( let* ) = Option.bind in
  if Array.length tokens < accumulator_tokens then None
  else begin
    let summary i =
      Summary.deserialize (String.concat " " (Array.to_list (Array.sub tokens i 5)))
    in
    let* degradation = summary 0 in
    let* makespan = summary 5 in
    let* failures = summary 10 in
    let* chunk_counts = summary 15 in
    let* worst_failures = int_of_string_opt tokens.(20) in
    let* smallest_chunk = float_of_string_opt tokens.(21) in
    let* largest_chunk = float_of_string_opt tokens.(22) in
    let rest =
      Array.to_list (Array.sub tokens accumulator_tokens (Array.length tokens - accumulator_tokens))
    in
    let* profile =
      match Summary.Vector.of_tokens rest with
      | Some (v, []) when Summary.Vector.dim v = profile_dim -> Some v
      | _ -> None
    in
    Some
      {
        degradation;
        makespan;
        failures;
        chunk_counts;
        worst_failures;
        smallest_chunk;
        largest_chunk;
        profile;
      }
  end

(* /2 added the distributional vector to each accumulator line.  /1
   units in a sweep store deserialize as None and are recomputed —
   exactly the invalidation semantics the store already has for
   corrupted units. *)
let partial_format = "ckpt-eval-partial/2"

let serialize_partial p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf partial_format;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "policies\t%s\n" (String.concat "\t" (Array.to_list p.p_policies)));
  Buffer.add_string buf (Printf.sprintf "replicates %d\n" p.p_replicates);
  Buffer.add_string buf (Printf.sprintf "usable %d\n" p.p_usable);
  Buffer.add_string buf (Printf.sprintf "lb %s\n" (serialize_accumulator p.p_lb));
  Array.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "acc %s\n" (serialize_accumulator a)))
    p.p_accs;
  Buffer.contents buf

let deserialize_partial contents =
  let ( let* ) = Option.bind in
  let tokens_of line = Array.of_list (String.split_on_char ' ' (String.trim line)) in
  let acc_of line =
    deserialize_accumulator (Array.sub (tokens_of line) 1 (max 0 (Array.length (tokens_of line) - 1)))
  in
  let int_field prefix line =
    if String.starts_with ~prefix:(prefix ^ " ") line then
      int_of_string_opt (String.sub line (String.length prefix + 1)
                           (String.length line - String.length prefix - 1))
    else None
  in
  match String.split_on_char '\n' contents with
  | format :: policies :: replicates :: usable :: lb :: accs
    when format = partial_format && String.starts_with ~prefix:"policies\t" policies ->
      let names =
        Array.of_list
          (String.split_on_char '\t'
             (String.sub policies 9 (String.length policies - 9)))
      in
      let* p_replicates = int_field "replicates" replicates in
      let* p_usable = int_field "usable" usable in
      let* p_lb = if String.starts_with ~prefix:"lb " lb then acc_of lb else None in
      let accs = List.filter (fun l -> String.trim l <> "") accs in
      if List.length accs <> Array.length names then None
      else begin
        let parsed =
          List.map
            (fun l -> if String.starts_with ~prefix:"acc " l then acc_of l else None)
            accs
        in
        if List.exists Option.is_none parsed then None
        else
          Some
            {
              p_policies = names;
              p_accs = Array.of_list (List.map Option.get parsed);
              p_lb;
              p_usable;
              p_replicates;
            }
      end
  | _ -> None

let degradation_table ~scenario ~policies ~replicates =
  if replicates <= 0 then invalid_arg "Evaluation.degradation_table: replicates must be positive";
  if policies = [] then invalid_arg "Evaluation.degradation_table: no policies";
  (* Timers and progress are process-global; only a top-level table
     (not one nested inside a study's own fan-out, where several
     tables run concurrently) resets and reports them — and when a
     study claimed the timers with [Instrument.scoped], the scope owns
     reset and report, so even a top-level table defers to it. *)
  let top_level = not (Domain_pool.in_parallel_region ()) in
  let owns_timers = top_level && not (Instrument.in_scope ()) in
  if owns_timers then Instrument.reset ();
  if Tracer.enabled () then Trace_export.ensure_at_exit ();
  (* Long tables are exactly what the periodic sampler exists for; the
     call is a no-op unless CKPT_METRICS_INTERVAL/CKPT_METRICS_OUT is
     set. *)
  Metrics_export.ensure_sampler ();
  let policy_array = Array.of_list policies in
  let progress =
    if top_level then Some (Instrument.progress ~label:"degradation_table" ~total:replicates)
    else None
  in
  (* Fan the replicates out — under the work-stealing scheduler this
     composes with a study's own configuration fan-out (idle domains
     steal replicate work from busy ones); under the flat pool a
     nested call runs inline — then reduce serially in replicate
     order: the merge sequence — hence the table — is bit-for-bit
     independent of the domain count and of the scheduler backend. *)
  let outcomes =
    if use_batch_engine () then begin
      (* The batch engine amortizes work across a stripe's replicates,
         so the unit of parallel work is the whole stripe; flattening
         in stripe order preserves replicate order, and the slot
         results are bit-identical to the scalar fan-out, so the
         reduction below is unchanged. *)
      let sz = stripe_size () in
      let stripes =
        Domain_pool.parallel_init (stripe_count ~replicates) (fun stripe ->
            let first = stripe * sz in
            let len = min sz (replicates - first) in
            let os = run_replicate_stripe ~scenario ~policies:policy_array ~first ~len in
            (match progress with
            | Some p -> for _ = 1 to len do Instrument.step p done
            | None -> ());
            os)
      in
      Array.concat (Array.to_list stripes)
    end
    else
      Domain_pool.parallel_init replicates (fun replicate ->
          let o = run_replicate ~scenario ~policies:policy_array replicate in
          Option.iter Instrument.step progress;
          o)
  in
  (* Reduce through the same stripe structure the sweep store persists
     (within-stripe in replicate order, then across stripes in stripe
     order), so a table assembled from checkpointed stripe partials is
     bit-identical to this one. *)
  let names = Array.map (fun p -> p.Policy.name) policy_array in
  let sz = stripe_size () in
  let partials =
    List.init (stripe_count ~replicates) (fun stripe ->
        let first = stripe * sz in
        partial_of_outcomes ~policy_names:names outcomes ~first
          ~len:(min sz (replicates - first)))
  in
  let table = table_of_partials partials in
  if owns_timers then begin
    let hits, misses = Scenario.cache_stats scenario in
    Instrument.info "trace cache: %d hits, %d misses" hits misses;
    Instrument.report ~label:"degradation_table" ()
  end;
  table

(* The Welford fold below is kept in the exact shape (and order) of
   the original [average_makespan], so the mean this returns is
   bit-identical to the historical column; the distributional profile
   rides along from the same runs. *)
let makespan_profile ~scenario ~policy ~replicates =
  let outcomes =
    Domain_pool.parallel_init replicates (fun replicate ->
        let traces = Scenario.traces scenario ~replicate in
        match Engine.run ~scenario ~traces ~policy with
        | Engine.Completed m -> Some m
        | Engine.Policy_failed _ -> None)
  in
  let acc =
    Array.fold_left
      (fun acc -> function Some m -> Summary.add acc m.Engine.makespan | None -> acc)
      Summary.empty outcomes
  in
  let vector =
    Array.fold_left
      (fun v -> function
        (* No lower bound here, so no degradation: carry a neutral 1
           in that slot and blank its interval below. *)
        | Some m -> Summary.Vector.add v (observation_of_metrics ~degradation:1. m)
        | None -> v)
      (Summary.Vector.create ~dim:profile_dim)
      outcomes
  in
  match (Summary.count acc > 0, profile_of_vector vector) with
  | true, Some p -> Some (Summary.mean acc, { p with deg_ci95 = nan })
  | _ -> None

let average_makespan ~scenario ~policy ~replicates =
  Option.map fst (makespan_profile ~scenario ~policy ~replicates)

(* Distributional profile from bare waste decompositions — for studies
   that persist per-replicate component rows (e.g. the spares sweep)
   instead of full accumulators.  No degradation baseline, so the slot
   carries a neutral 1 and its interval is blanked, as in
   [makespan_profile]. *)
let profile_of_components rows =
  let vector =
    List.fold_left
      (fun v (mk, useful, ckpt, wasted, recovery, stall) ->
        let obs = Array.make profile_dim 0. in
        obs.(comp_makespan) <- mk;
        obs.(comp_useful) <- useful;
        obs.(comp_checkpoint) <- ckpt;
        obs.(comp_wasted) <- wasted;
        obs.(comp_recovery) <- recovery;
        obs.(comp_stall) <- stall;
        obs.(comp_degradation) <- 1.;
        Summary.Vector.add v obs)
      (Summary.Vector.create ~dim:profile_dim)
      rows
  in
  Option.map (fun p -> { p with deg_ci95 = nan }) (profile_of_vector vector)

(* A float cell that may be undefined (no successful run to average,
   or a single run with no defined deviation): print "n/a" instead of
   letting the NaN leak into the table. *)
let pp_cell ~width ~decimals fmt v =
  if Float.is_nan v then Format.fprintf fmt "%*s" width "n/a"
  else Format.fprintf fmt "%*.*f" width decimals v

let pp_result fmt r =
  Format.fprintf fmt "%-16s %a %a  %a s  %3d ok  %a fail (max %d)" r.policy_name
    (pp_cell ~width:8 ~decimals:5) r.average_degradation
    (pp_cell ~width:8 ~decimals:5) r.std_degradation
    (pp_cell ~width:10 ~decimals:0) r.average_makespan r.successes
    (pp_cell ~width:6 ~decimals:1) r.average_failures r.max_failures

let pp_profile_row fmt (r : policy_result) =
  match r.profile with
  | None -> Format.fprintf fmt "%-16s %8s" r.policy_name "n/a"
  | Some p ->
      Format.fprintf fmt "%-16s %a %a %a %a %a  %a %a %a  %a s" r.policy_name
        (pp_cell ~width:8 ~decimals:4) p.useful_frac
        (pp_cell ~width:8 ~decimals:4) p.checkpoint_frac
        (pp_cell ~width:8 ~decimals:4) p.wasted_frac
        (pp_cell ~width:8 ~decimals:4) p.recovery_frac
        (pp_cell ~width:8 ~decimals:4) p.stall_frac
        (pp_cell ~width:10 ~decimals:0) p.mk_p50
        (pp_cell ~width:10 ~decimals:0) p.mk_p95
        (pp_cell ~width:10 ~decimals:0) p.mk_p99
        (pp_cell ~width:8 ~decimals:0) p.mk_ci95

let pp_table fmt t =
  Format.fprintf fmt "%-16s %8s %8s  %12s  %5s  %s@." "policy" "avg-deg" "std" "avg-makespan"
    "runs" "failures";
  Format.fprintf fmt "%a@." pp_result t.lower_bound;
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_result r) t.results;
  Format.fprintf fmt "(%d/%d usable trace sets)@." t.usable_replicates t.replicates;
  Format.fprintf fmt "waste breakdown (fractions of makespan; makespan p50/p95/p99, 95%% CI)@.";
  Format.fprintf fmt "%-16s %8s %8s %8s %8s %8s  %10s %10s %10s  %8s@." "policy" "useful"
    "ckpt" "wasted" "recovery" "stall" "p50" "p95" "p99" "ci95";
  Format.fprintf fmt "%a@." pp_profile_row t.lower_bound;
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_profile_row r) t.results
