module Policy = Ckpt_policies.Policy
module Summary = Ckpt_numerics.Summary
module Domain_pool = Ckpt_parallel.Domain_pool
module Metrics = Ckpt_telemetry.Metrics
module Tracer = Ckpt_telemetry.Tracer
module Trace_export = Ckpt_telemetry.Trace_export

(* Replicate wall-clock latency (seconds), across all policies of the
   replicate; fills under CKPT_METRICS=1. *)
let replicate_seconds = Metrics.histogram "eval/replicate_seconds"
let replicates_run = Metrics.counter "eval/replicates"
let unusable_replicates = Metrics.counter "eval/unusable_replicates"

type policy_result = {
  policy_name : string;
  average_degradation : float;
  std_degradation : float;
  average_makespan : float;
  successes : int;
  average_failures : float;
  max_failures : int;
  average_chunks : float;
  min_chunk : float;
  max_chunk : float;
}

type table = {
  lower_bound : policy_result;
  results : policy_result list;
  replicates : int;
  usable_replicates : int;
}

type accumulator = {
  mutable degradation : Summary.t;
  mutable makespan : Summary.t;
  mutable failures : Summary.t;
  mutable chunk_counts : Summary.t;
  mutable worst_failures : int;
  mutable smallest_chunk : float;
  mutable largest_chunk : float;
}

let fresh_accumulator () =
  {
    degradation = Summary.empty;
    makespan = Summary.empty;
    failures = Summary.empty;
    chunk_counts = Summary.empty;
    worst_failures = 0;
    smallest_chunk = infinity;
    largest_chunk = 0.;
  }

let record acc ~degradation (m : Engine.metrics) =
  acc.degradation <- Summary.add acc.degradation degradation;
  acc.makespan <- Summary.add acc.makespan m.Engine.makespan;
  acc.failures <- Summary.add acc.failures (float_of_int m.Engine.failures);
  acc.chunk_counts <- Summary.add acc.chunk_counts (float_of_int m.Engine.chunks);
  acc.worst_failures <- max acc.worst_failures m.Engine.failures;
  if m.Engine.chunks > 0 then begin
    acc.smallest_chunk <- Float.min acc.smallest_chunk m.Engine.min_chunk;
    acc.largest_chunk <- Float.max acc.largest_chunk m.Engine.max_chunk
  end

let merge_into acc other =
  acc.degradation <- Summary.merge acc.degradation other.degradation;
  acc.makespan <- Summary.merge acc.makespan other.makespan;
  acc.failures <- Summary.merge acc.failures other.failures;
  acc.chunk_counts <- Summary.merge acc.chunk_counts other.chunk_counts;
  acc.worst_failures <- max acc.worst_failures other.worst_failures;
  acc.smallest_chunk <- Float.min acc.smallest_chunk other.smallest_chunk;
  acc.largest_chunk <- Float.max acc.largest_chunk other.largest_chunk

let result_of_accumulator name acc =
  {
    policy_name = name;
    average_degradation = Summary.mean acc.degradation;
    std_degradation = Summary.std acc.degradation;
    average_makespan = Summary.mean acc.makespan;
    successes = Summary.count acc.degradation;
    average_failures = Summary.mean acc.failures;
    max_failures = acc.worst_failures;
    average_chunks = Summary.mean acc.chunk_counts;
    min_chunk = (if acc.smallest_chunk = infinity then 0. else acc.smallest_chunk);
    max_chunk = acc.largest_chunk;
  }

(* One Monte-Carlo replicate, self-contained: generates (or fetches
   from the scenario cache) its trace set, runs every policy and the
   omniscient bound, and accumulates into replicate-local state.  The
   result depends only on (scenario, policies, replicate) — never on
   which domain ran it or in which order — which is what makes the
   parallel fan-out below deterministic. *)
type replicate_outcome = {
  rep_accs : accumulator array;  (* one per policy, input order *)
  rep_lb : accumulator;
  rep_usable : bool;
}

let run_replicate ~scenario ~policies replicate =
  let tracing = Tracer.enabled () in
  let metered = Metrics.enabled () in
  let t_start = if metered then Unix.gettimeofday () else 0. in
  let traces =
    Instrument.time "trace-generation" (fun () -> Scenario.traces scenario ~replicate)
  in
  let traced_run ~policy =
    if not tracing then Engine.run ~scenario ~traces ~policy
    else begin
      let buf = Tracer.create_buffer ~name:(Printf.sprintf "rep%d/%s" replicate policy.Policy.name) () in
      let outcome = Engine.run_traced ~trace:buf ~scenario ~traces ~policy in
      Tracer.register buf;
      outcome
    end
  in
  let runs =
    Array.map
      (fun policy -> Instrument.time policy.Policy.name (fun () -> traced_run ~policy))
      policies
  in
  let best =
    Array.fold_left
      (fun acc outcome ->
        match outcome with
        | Engine.Completed m -> Float.min acc m.Engine.makespan
        | Engine.Policy_failed _ -> acc)
      infinity runs
  in
  let rep_accs = Array.map (fun _ -> fresh_accumulator ()) policies in
  let rep_lb = fresh_accumulator () in
  let rep_usable = Float.is_finite best && best > 0. in
  if rep_usable then begin
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Engine.Completed m -> record rep_accs.(i) ~degradation:(m.Engine.makespan /. best) m
        | Engine.Policy_failed _ -> ())
      runs;
    let lb =
      Instrument.time "LowerBound" (fun () ->
          if not tracing then Engine.lower_bound ~scenario ~traces
          else begin
            let buf =
              Tracer.create_buffer ~name:(Printf.sprintf "rep%d/LowerBound" replicate) ()
            in
            let lb = Engine.lower_bound_traced ~trace:buf ~scenario ~traces in
            Tracer.register buf;
            lb
          end)
    in
    record rep_lb ~degradation:(lb.Engine.makespan /. best) lb
  end;
  if metered then begin
    Metrics.observe replicate_seconds (Unix.gettimeofday () -. t_start);
    Metrics.incr replicates_run;
    if not rep_usable then Metrics.incr unusable_replicates
  end;
  { rep_accs; rep_lb; rep_usable }

let degradation_table ~scenario ~policies ~replicates =
  if replicates <= 0 then invalid_arg "Evaluation.degradation_table: replicates must be positive";
  if policies = [] then invalid_arg "Evaluation.degradation_table: no policies";
  (* Timers and progress are process-global; only a top-level table
     (not one nested inside a study's own fan-out, where several
     tables run concurrently) resets and reports them — and when a
     study claimed the timers with [Instrument.scoped], the scope owns
     reset and report, so even a top-level table defers to it. *)
  let top_level = not (Domain_pool.in_parallel_region ()) in
  let owns_timers = top_level && not (Instrument.in_scope ()) in
  if owns_timers then Instrument.reset ();
  if Tracer.enabled () then Trace_export.ensure_at_exit ();
  let policy_array = Array.of_list policies in
  let progress =
    if top_level then Some (Instrument.progress ~label:"degradation_table" ~total:replicates)
    else None
  in
  (* Fan the replicates out — under the work-stealing scheduler this
     composes with a study's own configuration fan-out (idle domains
     steal replicate work from busy ones); under the flat pool a
     nested call runs inline — then reduce serially in replicate
     order: the merge sequence — hence the table — is bit-for-bit
     independent of the domain count and of the scheduler backend. *)
  let outcomes =
    Domain_pool.parallel_init replicates (fun replicate ->
        let o = run_replicate ~scenario ~policies:policy_array replicate in
        Option.iter Instrument.step progress;
        o)
  in
  let accs = Array.map (fun _ -> fresh_accumulator ()) policy_array in
  let lb_acc = fresh_accumulator () in
  let usable = ref 0 in
  Array.iter
    (fun o ->
      if o.rep_usable then incr usable;
      Array.iteri (fun i rep -> merge_into accs.(i) rep) o.rep_accs;
      merge_into lb_acc o.rep_lb)
    outcomes;
  if owns_timers then begin
    let hits, misses = Scenario.cache_stats scenario in
    Instrument.info "trace cache: %d hits, %d misses" hits misses;
    Instrument.report ~label:"degradation_table" ()
  end;
  {
    lower_bound = result_of_accumulator "LowerBound" lb_acc;
    results = List.mapi (fun i p -> result_of_accumulator p.Policy.name accs.(i)) policies;
    replicates;
    usable_replicates = !usable;
  }

let average_makespan ~scenario ~policy ~replicates =
  let makespans =
    Domain_pool.parallel_init replicates (fun replicate ->
        let traces = Scenario.traces scenario ~replicate in
        match Engine.run ~scenario ~traces ~policy with
        | Engine.Completed m -> Some m.Engine.makespan
        | Engine.Policy_failed _ -> None)
  in
  let acc =
    Array.fold_left
      (fun acc -> function Some m -> Summary.add acc m | None -> acc)
      Summary.empty makespans
  in
  if Summary.count acc = 0 then None else Some (Summary.mean acc)

(* A float cell that may be undefined (no successful run to average,
   or a single run with no defined deviation): print "n/a" instead of
   letting the NaN leak into the table. *)
let pp_cell ~width ~decimals fmt v =
  if Float.is_nan v then Format.fprintf fmt "%*s" width "n/a"
  else Format.fprintf fmt "%*.*f" width decimals v

let pp_result fmt r =
  Format.fprintf fmt "%-16s %a %a  %a s  %3d ok  %a fail (max %d)" r.policy_name
    (pp_cell ~width:8 ~decimals:5) r.average_degradation
    (pp_cell ~width:8 ~decimals:5) r.std_degradation
    (pp_cell ~width:10 ~decimals:0) r.average_makespan r.successes
    (pp_cell ~width:6 ~decimals:1) r.average_failures r.max_failures

let pp_table fmt t =
  Format.fprintf fmt "%-16s %8s %8s  %12s  %5s  %s@." "policy" "avg-deg" "std" "avg-makespan"
    "runs" "failures";
  Format.fprintf fmt "%a@." pp_result t.lower_bound;
  List.iter (fun r -> Format.fprintf fmt "%a@." pp_result r) t.results;
  Format.fprintf fmt "(%d/%d usable trace sets)@." t.usable_replicates t.replicates
