module Job = Ckpt_policies.Job
module Policy = Ckpt_policies.Policy
module Trace_set = Ckpt_failures.Trace_set
module Tracer = Ckpt_telemetry.Tracer
module Metrics = Ckpt_telemetry.Metrics
module Age_summary = Ckpt_core.Age_summary

(* Cross-replicate decision reuse and stripe occupancy of the batch
   engine; fill under CKPT_METRICS=1 and surface in `ckpt stats` and
   the OpenMetrics textfile. *)
let memo_hits = Metrics.counter "engine/decision_memo_hits"
let memo_misses = Metrics.counter "engine/decision_memo_misses"
let batch_live_slots = Metrics.histogram "engine/batch_live_slots"

type metrics = {
  makespan : float;
  useful_work : float;
  checkpoint_time : float;
  wasted_time : float;
  recovery_time : float;
  stall_time : float;
  failures : int;
  chunks : int;
  min_chunk : float;
  max_chunk : float;
}

type outcome = Completed of metrics | Policy_failed of { at_time : float; remaining : float }

exception Accounting_violation of string

(* Every advance of the simulated clock is matched by an accumulator
   add of the same computed quantity, so the waste decomposition
   partitions the makespan by construction — up to one rounding per
   float operation.  The residual is checked on every completed run
   against a tolerance of one ulp (at the clock's magnitude) per
   accounting operation: at most ~4 roundings per committed chunk
   (chunk and checkpoint additions on both the clock and accumulator
   sides) and ~8 per failure (waste, downtime, recovery, cascades),
   doubled for headroom.  A residual beyond that means time was
   mis-attributed, not rounded. *)
let accounting_components m =
  m.useful_work +. m.checkpoint_time +. m.wasted_time +. m.recovery_time +. m.stall_time

let accounting_residual m = Float.abs (m.makespan -. accounting_components m)

let accounting_tolerance ?clock m =
  let clock = match clock with Some c -> c | None -> m.makespan in
  let scale = Float.max 1. (Float.max (Float.abs clock) (Float.abs m.makespan)) in
  let ulp = Float.succ scale -. scale in
  float_of_int ((8 * (m.chunks + m.failures)) + 64) *. ulp

(* Mutable execution state shared by the policy-driven run and the
   omniscient lower bound. *)
type state = {
  job : Job.t;
  trace : Tracer.buffer option;
      (* when tracing, every phase transition below also emits a typed
         event; the disabled path is one match per site. *)
  events : (float * int) array;  (* merged (date, processor), sorted *)
  mutable event_index : int;
  lifetime_start : float array;  (* per processor *)
  ages_inc : Age_summary.Incremental.t option;
      (* sorted mirror of lifetime_start, kept in sync by
         settle_downtime so policy observations can summarize platform
         ages without an O(p) pass; None on paths that never consult a
         policy (the lower bound). *)
  down_until : float array;
  mutable now : float;
  start_time : float;
  mutable remaining : float;
  mutable last_failure_ref : float;
      (* reference instant of the most recent platform failure's new
         lifetime (max over lifetime_start); min age = now - this. *)
  (* accumulators *)
  mutable useful_work : float;
  mutable checkpoint_time : float;
  mutable wasted_time : float;
  mutable recovery_time : float;
  mutable stall_time : float;
  mutable failures : int;
  mutable chunks : int;
  mutable min_chunk : float;
  mutable max_chunk : float;
}

let make_state ~trace ~track_ages ~scenario ~traces =
  let job = scenario.Scenario.job in
  let lifetime_start = Scenario.initial_lifetime_starts scenario traces in
  let start_time = scenario.Scenario.start_time in
  let last_failure_ref = Array.fold_left Float.max neg_infinity lifetime_start in
  {
    job;
    trace;
    events = Trace_set.events traces;
    event_index = Trace_set.next_event_index traces ~after:start_time;
    lifetime_start;
    ages_inc =
      (if track_ages then Some (Age_summary.Incremental.create ~births:lifetime_start)
       else None);
    down_until = Array.make (Array.length lifetime_start) neg_infinity;
    now = start_time;
    start_time;
    remaining = job.Job.work_time;
    last_failure_ref;
    useful_work = 0.;
    checkpoint_time = 0.;
    wasted_time = 0.;
    recovery_time = 0.;
    stall_time = 0.;
    failures = 0;
    chunks = 0;
    min_chunk = 0.;
    max_chunk = 0.;
  }

(* First effective failure strictly before [before], skipping (and
   consuming) failures absorbed by their own processor's downtime.
   Does not consume the effective event it reports. *)
let peek_effective_failure st ~before =
  let n = Array.length st.events in
  let rec scan () =
    if st.event_index >= n then None
    else begin
      let date, proc = st.events.(st.event_index) in
      if date >= before then None
      else if date < st.down_until.(proc) then begin
        st.event_index <- st.event_index + 1;
        scan ()
      end
      else Some (date, proc)
    end
  in
  scan ()

let consume_event st = st.event_index <- st.event_index + 1

(* Register the failure of [proc] at [date]: downtime, lifetime
   restart, and cascading failures of other processors until every
   processor is simultaneously available.  Returns the instant at
   which the platform is whole again. *)
let rec settle_downtime st ~date ~proc =
  let d = Job.downtime st.job in
  (match st.trace with
  | Some b -> Tracer.emit b (Tracer.Failure { at = date; proc })
  | None -> ());
  st.failures <- st.failures + 1;
  st.down_until.(proc) <- date +. d;
  (match st.ages_inc with
  | Some inc ->
      Age_summary.Incremental.update inc ~old_birth:st.lifetime_start.(proc)
        ~new_birth:(date +. d)
  | None -> ());
  st.lifetime_start.(proc) <- date +. d;
  st.last_failure_ref <- Float.max st.last_failure_ref (date +. d);
  let ready = date +. d in
  match peek_effective_failure st ~before:ready with
  | None -> ready
  | Some (date', proc') ->
      consume_event st;
      Float.max ready (settle_downtime st ~date:date' ~proc:proc')

(* Handle a failure hitting at [date] while the job was busy
   (execution or recovery; the caller attributes the lost time), then
   perform the recovery — cost [r] — which may itself be struck.
   On return, [st.now] is the instant the job can resume computing. *)
let handle_failure st ~date ~proc ~r =
  let rec recover ready =
    (match st.trace with
    | Some b ->
        Tracer.emit b (Tracer.Downtime { t0 = st.now; t1 = ready });
        Tracer.emit b (Tracer.Recovery_start { at = ready })
    | None -> ());
    st.stall_time <- st.stall_time +. (ready -. st.now);
    st.now <- ready;
    match peek_effective_failure st ~before:(ready +. r) with
    | None ->
        (match st.trace with
        | Some b ->
            Tracer.emit b (Tracer.Recovery_complete { t0 = ready; t1 = ready +. r; cost = r })
        | None -> ());
        st.recovery_time <- st.recovery_time +. r;
        st.now <- ready +. r
    | Some (date', proc') ->
        consume_event st;
        (match st.trace with
        | Some b -> Tracer.emit b (Tracer.Recovery_abort { t0 = ready; t1 = date' })
        | None -> ());
        st.recovery_time <- st.recovery_time +. (date' -. ready);
        st.now <- date';
        let ready' = settle_downtime st ~date:date' ~proc:proc' in
        recover ready'
  in
  consume_event st;
  (match st.trace with
  | Some b -> Tracer.emit b (Tracer.Waste { t0 = st.now; t1 = date })
  | None -> ());
  st.wasted_time <- st.wasted_time +. (date -. st.now);
  st.now <- date;
  let ready = settle_downtime st ~date ~proc in
  recover ready

let check_accounting ~clock m =
  let residual = accounting_residual m and tol = accounting_tolerance ~clock m in
  if not (residual <= tol) then
    raise
      (Accounting_violation
         (Printf.sprintf
            "makespan %.17g != useful %.17g + checkpoint %.17g + wasted %.17g + recovery %.17g \
             + stall %.17g (residual %.3g, tolerance %.3g, %d chunks, %d failures)"
            m.makespan m.useful_work m.checkpoint_time m.wasted_time m.recovery_time
            m.stall_time residual tol m.chunks m.failures));
  m

let metrics_of st =
  check_accounting ~clock:st.now
    {
      makespan = st.now -. st.start_time;
      useful_work = st.useful_work;
      checkpoint_time = st.checkpoint_time;
      wasted_time = st.wasted_time;
      recovery_time = st.recovery_time;
      stall_time = st.stall_time;
      failures = st.failures;
      chunks = st.chunks;
      min_chunk = st.min_chunk;
      max_chunk = st.max_chunk;
    }

let record_chunk st chunk =
  st.chunks <- st.chunks + 1;
  if st.chunks = 1 then begin
    st.min_chunk <- chunk;
    st.max_chunk <- chunk
  end
  else begin
    st.min_chunk <- Float.min st.min_chunk chunk;
    st.max_chunk <- Float.max st.max_chunk chunk
  end

let work_epsilon = 1e-6

let run_internal ~trace ~cost_profile ~scenario ~traces ~policy =
  let st = make_state ~trace ~track_ages:true ~scenario ~traces in
  let constant_c = Job.checkpoint_cost st.job in
  let constant_r = Job.recovery_cost st.job in
  let work_time = st.job.Job.work_time in
  let costs_at ~remaining =
    match cost_profile with
    | None -> (constant_c, constant_r)
    | Some f -> f ~progress:(Float.max 0. (Float.min 1. (1. -. (remaining /. work_time))))
  in
  let instance = policy.Policy.instantiate () in
  let iter_ages f =
    Array.iter (fun ls -> f (Float.max 0. (st.now -. ls))) st.lifetime_start
  in
  let summarize ~nexact ~napprox dist =
    match st.ages_inc with
    | Some inc -> Age_summary.Incremental.summarize ~nexact ~napprox inc dist ~now:st.now
    | None ->
        Policy.summarize_of_iter ~units:(Array.length st.lifetime_start) ~iter_ages ~nexact
          ~napprox dist
  in
  (* One observation for the whole run: the scalar fields are mutable
     and refreshed before every decision, so the loop allocates
     nothing per decision (a mixed mutable record would box each float
     store; the closures above are hoisted for the same reason). *)
  let obs =
    {
      Policy.phase = Policy.Start;
      remaining = st.remaining;
      failure_units = Array.length st.lifetime_start;
      min_age = 0.;
      iter_ages;
      summarize;
    }
  in
  let outcome = ref None in
  while Option.is_none !outcome do
    if st.remaining <= work_epsilon then outcome := Some (Completed (metrics_of st))
    else begin
      obs.Policy.remaining <- st.remaining;
      obs.Policy.min_age <- Float.max 0. (st.now -. st.last_failure_ref);
      match instance obs with
      | None -> outcome := Some (Policy_failed { at_time = st.now; remaining = st.remaining })
      | Some chunk ->
          let chunk =
            let c' = Policy.clamp_chunk ~remaining:st.remaining chunk in
            if c' < work_epsilon then st.remaining else c'
          in
          (* Checkpoint cost at the progress the chunk ends at;
             recovery cost at the progress being protected (the last
             committed checkpoint). *)
          let c, _ = costs_at ~remaining:(st.remaining -. chunk) in
          let _, r = costs_at ~remaining:st.remaining in
          (match st.trace with
          | Some b ->
              Tracer.emit b (Tracer.Decision { at = st.now; chunk; remaining = st.remaining });
              Tracer.emit b (Tracer.Chunk_start { at = st.now; work = chunk })
          | None -> ());
          let finish = st.now +. chunk +. c in
          (match peek_effective_failure st ~before:finish with
          | None ->
              (match st.trace with
              | Some b ->
                  Tracer.emit b
                    (Tracer.Chunk_commit { t0 = st.now; t1 = st.now +. chunk; work = chunk });
                  Tracer.emit b (Tracer.Checkpoint { t0 = st.now +. chunk; t1 = finish; cost = c })
              | None -> ());
              st.now <- finish;
              st.remaining <- st.remaining -. chunk;
              st.useful_work <- st.useful_work +. chunk;
              st.checkpoint_time <- st.checkpoint_time +. c;
              record_chunk st chunk;
              obs.Policy.phase <- Policy.After_checkpoint
          | Some (date, proc) ->
              handle_failure st ~date ~proc ~r;
              obs.Policy.phase <- Policy.After_recovery)
    end
  done;
  Option.get !outcome

let lower_bound_internal ~trace ~scenario ~traces =
  let st = make_state ~trace ~track_ages:false ~scenario ~traces in
  let c = Job.checkpoint_cost st.job in
  let emit_committed ~t0 ~chunk =
    match st.trace with
    | Some b ->
        Tracer.emit b (Tracer.Chunk_commit { t0; t1 = t0 +. chunk; work = chunk });
        Tracer.emit b (Tracer.Checkpoint { t0 = t0 +. chunk; t1 = t0 +. chunk +. c; cost = c })
    | None -> ()
  in
  while st.remaining > work_epsilon do
    match peek_effective_failure st ~before:infinity with
    | None ->
        (* Failure-free to the horizon: finish in one chunk. *)
        let chunk = st.remaining in
        emit_committed ~t0:st.now ~chunk;
        st.now <- st.now +. chunk +. c;
        st.useful_work <- st.useful_work +. chunk;
        st.checkpoint_time <- st.checkpoint_time +. c;
        st.remaining <- 0.;
        record_chunk st chunk
    | Some (date, proc) ->
        let available = date -. st.now in
        if st.remaining +. c <= available then begin
          (* The job finishes before the failure strikes. *)
          let chunk = st.remaining in
          emit_committed ~t0:st.now ~chunk;
          st.now <- st.now +. chunk +. c;
          st.useful_work <- st.useful_work +. chunk;
          st.checkpoint_time <- st.checkpoint_time +. c;
          st.remaining <- 0.;
          record_chunk st chunk
        end
        else begin
          if available > c then begin
            (* Work as much as possible, checkpointing just in time:
               the checkpoint commits exactly when the failure hits. *)
            let chunk = available -. c in
            emit_committed ~t0:st.now ~chunk;
            st.useful_work <- st.useful_work +. chunk;
            st.checkpoint_time <- st.checkpoint_time +. c;
            st.remaining <- st.remaining -. chunk;
            record_chunk st chunk
          end
          else begin
            (* Too close to the failure to save anything: idle. *)
            (match st.trace with
            | Some b -> Tracer.emit b (Tracer.Waste { t0 = st.now; t1 = date })
            | None -> ());
            st.wasted_time <- st.wasted_time +. available
          end;
          st.now <- date;
          handle_failure st ~date ~proc ~r:(Job.recovery_cost st.job)
        end
  done;
  metrics_of st

let lower_bound ~scenario ~traces = lower_bound_internal ~trace:None ~scenario ~traces

let lower_bound_traced ~trace ~scenario ~traces =
  lower_bound_internal ~trace:(Some trace) ~scenario ~traces

let run ~scenario ~traces ~policy =
  run_internal ~trace:None ~cost_profile:None ~scenario ~traces ~policy

let run_traced ~trace ~scenario ~traces ~policy =
  run_internal ~trace:(Some trace) ~cost_profile:None ~scenario ~traces ~policy

let run_with_cost_profile ~cost_profile ~scenario ~traces ~policy =
  run_internal ~trace:None ~cost_profile:(Some cost_profile) ~scenario ~traces ~policy

let run_with_cost_profile_traced ~trace ~cost_profile ~scenario ~traces ~policy =
  run_internal ~trace:(Some trace) ~cost_profile:(Some cost_profile) ~scenario ~traces ~policy

(* -- engine selection -------------------------------------------------------- *)

type kind = Scalar | Batch

let warned_engine = Atomic.make ""

(* Re-read per call so tests and benches can flip it with a scoped
   putenv; warn once per distinct malformed value (the evaluation
   harness consults this on every stripe). *)
let selected_kind () =
  match Sys.getenv_opt "CKPT_ENGINE" with
  | None -> Batch
  | Some s when String.trim s = "" -> Batch
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "batch" -> Batch
      | "scalar" -> Scalar
      | _ ->
          if Atomic.get warned_engine <> s then begin
            Atomic.set warned_engine s;
            Printf.eprintf "ckpt: ignoring malformed CKPT_ENGINE=%S (want scalar or batch; using batch)\n%!" s
          end;
          Batch)

(* -- batch (striped lockstep) execution -------------------------------------- *)

(* Structure-of-arrays state for a replicate stripe stepped in
   lockstep: index [k] of every array is one replicate's execution on
   its own trace set.  The float accumulators live in unboxed float
   arrays — the mixed mutable record of the scalar path boxes every
   float store — and the per-slot age ledger is created lazily on the
   slot's first [summarize] call: [Incremental.summarize] depends only
   on the current birth multiset, so a ledger created mid-run from the
   live [lifetime_start] answers bit-identically to one maintained
   from the start, and slots whose policy never consults the platform
   ages (the periodic family) skip the O(p log p) sort entirely. *)
type stripe_state = {
  b_job : Job.t;
  b_start : float;
  b_now : float array;
  b_remaining : float array;
  b_useful : float array;
  b_checkpoint : float array;
  b_wasted : float array;
  b_recovery : float array;
  b_stall : float array;
  b_last_ref : float array;  (* last_failure_ref per slot *)
  b_min_chunk : float array;
  b_max_chunk : float array;
  b_failures : int array;
  b_chunks : int array;
  b_event_index : int array;
  b_events : (float * int) array array;  (* shared with the trace sets *)
  b_lifetime : float array array;
  b_down_until : float array array;
  b_ages : Age_summary.Incremental.t option array;  (* lazy *)
}

(* The slot-indexed failure machinery below mirrors the scalar
   [peek_effective_failure] / [settle_downtime] / [handle_failure] /
   [record_chunk] operation for operation — same floats, same order —
   so every slot's execution is bit-identical to a scalar run on the
   same trace set (pinned by the batch/scalar property suite).  The
   batch path never traces: tracing runs route to the scalar engine. *)

let b_peek st k ~before =
  let events = st.b_events.(k) in
  let down = st.b_down_until.(k) in
  let n = Array.length events in
  let rec scan () =
    let i = st.b_event_index.(k) in
    if i >= n then None
    else begin
      let date, proc = events.(i) in
      if date >= before then None
      else if date < down.(proc) then begin
        st.b_event_index.(k) <- i + 1;
        scan ()
      end
      else Some (date, proc)
    end
  in
  scan ()

let b_consume st k = st.b_event_index.(k) <- st.b_event_index.(k) + 1

let rec b_settle_downtime st k ~date ~proc =
  let d = Job.downtime st.b_job in
  st.b_failures.(k) <- st.b_failures.(k) + 1;
  st.b_down_until.(k).(proc) <- date +. d;
  (match st.b_ages.(k) with
  | Some inc ->
      Age_summary.Incremental.update inc ~old_birth:st.b_lifetime.(k).(proc)
        ~new_birth:(date +. d)
  | None -> ());
  st.b_lifetime.(k).(proc) <- date +. d;
  st.b_last_ref.(k) <- Float.max st.b_last_ref.(k) (date +. d);
  let ready = date +. d in
  match b_peek st k ~before:ready with
  | None -> ready
  | Some (date', proc') ->
      b_consume st k;
      Float.max ready (b_settle_downtime st k ~date:date' ~proc:proc')

let b_handle_failure st k ~date ~proc ~r =
  let rec recover ready =
    st.b_stall.(k) <- st.b_stall.(k) +. (ready -. st.b_now.(k));
    st.b_now.(k) <- ready;
    match b_peek st k ~before:(ready +. r) with
    | None ->
        st.b_recovery.(k) <- st.b_recovery.(k) +. r;
        st.b_now.(k) <- ready +. r
    | Some (date', proc') ->
        b_consume st k;
        st.b_recovery.(k) <- st.b_recovery.(k) +. (date' -. ready);
        st.b_now.(k) <- date';
        let ready' = b_settle_downtime st k ~date:date' ~proc:proc' in
        recover ready'
  in
  b_consume st k;
  st.b_wasted.(k) <- st.b_wasted.(k) +. (date -. st.b_now.(k));
  st.b_now.(k) <- date;
  let ready = b_settle_downtime st k ~date ~proc in
  recover ready

let b_record_chunk st k chunk =
  st.b_chunks.(k) <- st.b_chunks.(k) + 1;
  if st.b_chunks.(k) = 1 then begin
    st.b_min_chunk.(k) <- chunk;
    st.b_max_chunk.(k) <- chunk
  end
  else begin
    st.b_min_chunk.(k) <- Float.min st.b_min_chunk.(k) chunk;
    st.b_max_chunk.(k) <- Float.max st.b_max_chunk.(k) chunk
  end

let b_metrics st k =
  check_accounting ~clock:st.b_now.(k)
    {
      makespan = st.b_now.(k) -. st.b_start;
      useful_work = st.b_useful.(k);
      checkpoint_time = st.b_checkpoint.(k);
      wasted_time = st.b_wasted.(k);
      recovery_time = st.b_recovery.(k);
      stall_time = st.b_stall.(k);
      failures = st.b_failures.(k);
      chunks = st.b_chunks.(k);
      min_chunk = st.b_min_chunk.(k);
      max_chunk = st.b_max_chunk.(k);
    }

let phase_tag = function Policy.Start -> 0 | Policy.After_checkpoint -> 1 | Policy.After_recovery -> 2

let run_stripe ?initial_births ~scenario ~traces ~policy () =
  let width = Array.length traces in
  if width = 0 then [||]
  else begin
    let job = scenario.Scenario.job in
    let start_time = scenario.Scenario.start_time in
    (match initial_births with
    | Some b when Array.length b <> width ->
        invalid_arg "Engine.run_stripe: initial_births width mismatch"
    | Some _ | None -> ());
    (* The caller may hand over the initial lifetime template it
       already computed for another policy's pass over the same trace
       sets; copy, never adopt — the stripe mutates its lifetimes. *)
    let lifetime =
      match initial_births with
      | Some b -> Array.map Array.copy b
      | None -> Array.map (fun tr -> Scenario.initial_lifetime_starts scenario tr) traces
    in
    let st =
      {
        b_job = job;
        b_start = start_time;
        b_now = Array.make width start_time;
        b_remaining = Array.make width job.Job.work_time;
        b_useful = Array.make width 0.;
        b_checkpoint = Array.make width 0.;
        b_wasted = Array.make width 0.;
        b_recovery = Array.make width 0.;
        b_stall = Array.make width 0.;
        b_last_ref = Array.map (fun ls -> Array.fold_left Float.max neg_infinity ls) lifetime;
        b_min_chunk = Array.make width 0.;
        b_max_chunk = Array.make width 0.;
        b_failures = Array.make width 0;
        b_chunks = Array.make width 0;
        b_event_index = Array.map (fun tr -> Trace_set.next_event_index tr ~after:start_time) traces;
        b_events = Array.map Trace_set.events traces;
        b_lifetime = lifetime;
        b_down_until = Array.map (fun ls -> Array.make (Array.length ls) neg_infinity) lifetime;
        b_ages = Array.make width None;
      }
    in
    let constant_c = Job.checkpoint_cost job in
    let constant_r = Job.recovery_cost job in
    let units = Array.length lifetime.(0) in
    (* One reusable observation per slot, its closures bound to that
       slot once — nothing is allocated per decision. *)
    let obs =
      Array.init width (fun k ->
          let iter_ages f =
            Array.iter (fun ls -> f (Float.max 0. (st.b_now.(k) -. ls))) st.b_lifetime.(k)
          in
          let summarize ~nexact ~napprox dist =
            let inc =
              match st.b_ages.(k) with
              | Some inc -> inc
              | None ->
                  let inc = Age_summary.Incremental.create ~births:st.b_lifetime.(k) in
                  st.b_ages.(k) <- Some inc;
                  inc
            in
            Age_summary.Incremental.summarize ~nexact ~napprox inc dist ~now:st.b_now.(k)
          in
          {
            Policy.phase = Policy.Start;
            remaining = st.b_remaining.(k);
            failure_units = units;
            min_age = 0.;
            iter_ages;
            summarize;
          })
    in
    (* Decision source.  A pure-scalar policy shares one memo across
       the stripe: every replicate runs the same (policy, scenario), so
       a decision keyed on the exact float bits of the scalar fields
       the policy may read is computed once and reused bit-identically.
       Anything else gets a fresh instance per slot, as the scalar
       engine would. *)
    let decide =
      match policy.Policy.decide with
      | Some f ->
          let memo : (int * int64 * int64, float option) Hashtbl.t = Hashtbl.create 64 in
          fun _k (o : Policy.observation) ->
            let key =
              (phase_tag o.Policy.phase, Int64.bits_of_float o.Policy.remaining,
               Int64.bits_of_float o.Policy.min_age)
            in
            (match Hashtbl.find_opt memo key with
            | Some d ->
                Metrics.incr memo_hits;
                d
            | None ->
                Metrics.incr memo_misses;
                let d = f o in
                Hashtbl.add memo key d;
                d)
      | None ->
          let instances = Array.init width (fun _ -> policy.Policy.instantiate ()) in
          fun k o -> instances.(k) o
    in
    let results = Array.make width None in
    (* Lockstep rounds over the live slots, one decision + chunk
       attempt per slot per round.  A slot that completes (or whose
       policy declines) is swapped out of the live prefix, so
       stragglers keep stepping without scanning finished slots. *)
    let live = Array.init width Fun.id in
    let nlive = ref width in
    while !nlive > 0 do
      Metrics.observe batch_live_slots (float_of_int !nlive);
      let i = ref 0 in
      while !i < !nlive do
        let k = live.(!i) in
        let finished =
          if st.b_remaining.(k) <= work_epsilon then begin
            results.(k) <- Some (Completed (b_metrics st k));
            true
          end
          else begin
            let o = obs.(k) in
            o.Policy.remaining <- st.b_remaining.(k);
            o.Policy.min_age <- Float.max 0. (st.b_now.(k) -. st.b_last_ref.(k));
            match decide k o with
            | None ->
                results.(k) <-
                  Some (Policy_failed { at_time = st.b_now.(k); remaining = st.b_remaining.(k) });
                true
            | Some chunk ->
                let chunk =
                  let c' = Policy.clamp_chunk ~remaining:st.b_remaining.(k) chunk in
                  if c' < work_epsilon then st.b_remaining.(k) else c'
                in
                let finish = st.b_now.(k) +. chunk +. constant_c in
                (match b_peek st k ~before:finish with
                | None ->
                    st.b_now.(k) <- finish;
                    st.b_remaining.(k) <- st.b_remaining.(k) -. chunk;
                    st.b_useful.(k) <- st.b_useful.(k) +. chunk;
                    st.b_checkpoint.(k) <- st.b_checkpoint.(k) +. constant_c;
                    b_record_chunk st k chunk;
                    o.Policy.phase <- Policy.After_checkpoint
                | Some (date, proc) ->
                    b_handle_failure st k ~date ~proc ~r:constant_r;
                    o.Policy.phase <- Policy.After_recovery);
                false
          end
        in
        if finished then begin
          live.(!i) <- live.(!nlive - 1);
          decr nlive
        end
        else incr i
      done
    done;
    Array.map (function Some o -> o | None -> assert false) results
  end
