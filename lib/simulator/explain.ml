module Policy = Ckpt_policies.Policy
module Job = Ckpt_policies.Job
module Rationale = Ckpt_policies.Rationale
module Tracer = Ckpt_telemetry.Tracer

(* What one decision led to: everything between it and the next
   decision (or the end of the run). *)
type realized =
  | Committed of { work : float; checkpoint : float }
  | Destroyed of { lost : float; downtime : float; recovery : float; failures : int }
      (** [lost] is the execution/checkpoint time destroyed ([Waste]
          spans); [recovery] sums aborted spans and the completed
          recovery's exact cost. *)
  | Pending  (** trailing decision with no further events (ring
                 overflow or a truncated stream). *)

type decision = {
  index : int;  (** 1-based position in the decision sequence. *)
  at : float;  (** simulated time of the decision. *)
  chunk : float;  (** chosen chunk (seconds of work). *)
  remaining : float;  (** work left before the chunk. *)
  rationale : Rationale.t option;
      (** [None] when the event stream lost the pairing (dropped
          events). *)
  realized : realized;
}

type t = {
  policy_name : string;
  replicate : int;
  start_time : float;
  outcome : Engine.outcome;
  decisions : decision list;
  declined : (float * float) option;
      (** [(at_time, remaining)] when the policy answered [None]. *)
  totals : Tracer.totals;
  events : int;
  dropped : int;
}

(* The rationale is recorded inside the policy's own decision calls —
   the observation in hand is exactly what the policy saw, so no age
   reconstruction from the event stream is needed — and the wrapper
   forwards the policy's answer unchanged, so the replayed execution
   is bit-identical to an unwrapped run. *)
let instrument ~dist ~overhead ~record (policy : Policy.t) =
  {
    policy with
    Policy.instantiate =
      (fun () ->
        let instance = policy.Policy.instantiate () in
        fun obs ->
          let answer = instance obs in
          (match answer with
          | Some chunk ->
              let chunk = Policy.clamp_chunk ~remaining:obs.Policy.remaining chunk in
              record (Some (Rationale.of_observation dist obs ~window:(chunk +. overhead)))
          | None -> record None);
          answer);
  }

let segment_events events =
  (* Split the chronological stream at Decision events: the list of
     (decision event, events until the next decision). *)
  let rec go acc current = function
    | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
    | Tracer.Decision { at; chunk; remaining } :: rest ->
        let acc = match current with None -> acc | Some c -> c :: acc in
        go acc (Some ((at, chunk, remaining), [])) rest
    | e :: rest -> (
        match current with
        | None -> go acc None rest (* pre-decision events: none today *)
        | Some (d, es) -> go acc (Some (d, e :: es)) rest)
  in
  List.map (fun (d, es) -> (d, List.rev es)) (go [] None events)

let realize events =
  let committed =
    List.find_map
      (function Tracer.Chunk_commit { work; _ } -> Some work | _ -> None)
      events
  in
  match committed with
  | Some work ->
      let checkpoint =
        List.fold_left
          (fun acc -> function Tracer.Checkpoint { cost; _ } -> acc +. cost | _ -> acc)
          0. events
      in
      Committed { work; checkpoint }
  | None ->
      if events = [] then Pending
      else begin
        let lost, downtime, recovery, failures =
          List.fold_left
            (fun (l, d, r, f) -> function
              | Tracer.Waste { t0; t1 } -> (l +. (t1 -. t0), d, r, f)
              | Tracer.Downtime { t0; t1 } -> (l, d +. (t1 -. t0), r, f)
              | Tracer.Recovery_abort { t0; t1 } -> (l, d, r +. (t1 -. t0), f)
              | Tracer.Recovery_complete { cost; _ } -> (l, d, r +. cost, f)
              | Tracer.Failure _ -> (l, d, r, f + 1)
              | _ -> (l, d, r, f))
            (0., 0., 0., 0) events
        in
        Destroyed { lost; downtime; recovery; failures }
      end

let run ~scenario ~policy ~replicate =
  let job = scenario.Scenario.job in
  let recorded = ref [] in
  let instrumented =
    instrument ~dist:job.Job.dist ~overhead:(Job.checkpoint_cost job)
      ~record:(fun r -> recorded := r :: !recorded)
      policy
  in
  let traces = Scenario.traces scenario ~replicate in
  let buffer =
    Tracer.create_buffer
      ~name:(Printf.sprintf "explain/rep%d/%s" replicate policy.Policy.name)
      ()
  in
  let outcome = Engine.run_traced ~trace:buffer ~scenario ~traces ~policy:instrumented in
  let recorded = List.rev !recorded in
  let declined =
    match outcome with
    | Engine.Policy_failed { at_time; remaining } -> Some (at_time, remaining)
    | Engine.Completed _ -> None
  in
  (* Decision events pair 1:1, in order, with the recorded [Some]
     rationales (a [None] answer emits no Decision event and ends the
     run).  If the ring dropped early events the head of the recorded
     list has no surviving event; align from the tail. *)
  let rationales = List.filter_map Fun.id recorded in
  let segments = segment_events (Tracer.to_list buffer) in
  let skew = List.length rationales - List.length segments in
  let rationales =
    if skew > 0 then List.filteri (fun i _ -> i >= skew) rationales
    else rationales
  in
  let decisions =
    List.mapi
      (fun i ((at, chunk, remaining), events) ->
        {
          index = i + 1;
          at;
          chunk;
          remaining;
          rationale = List.nth_opt rationales i;
          realized = realize events;
        })
      segments
  in
  {
    policy_name = policy.Policy.name;
    replicate;
    start_time = scenario.Scenario.start_time;
    outcome;
    decisions;
    declined;
    totals = Tracer.totals buffer;
    events = Tracer.length buffer;
    dropped = Tracer.dropped buffer;
  }

let reconciles t =
  match t.outcome with
  | Engine.Policy_failed _ -> false
  | Engine.Completed m ->
      t.dropped = 0
      && t.totals.Tracer.work = m.Engine.useful_work
      && t.totals.Tracer.checkpoint = m.Engine.checkpoint_time
      && t.totals.Tracer.waste = m.Engine.wasted_time
      && t.totals.Tracer.recovery = m.Engine.recovery_time
      && t.totals.Tracer.downtime = m.Engine.stall_time
      && t.totals.Tracer.failures = m.Engine.failures
      && t.totals.Tracer.chunks = m.Engine.chunks

let pp_realized fmt = function
  | Committed { work; checkpoint } ->
      Format.fprintf fmt "committed: %.4g s of work + %.4g s checkpoint" work checkpoint
  | Destroyed { lost; downtime; recovery; failures } ->
      Format.fprintf fmt
        "destroyed by %d failure%s: %.4g s lost, %.4g s downtime, %.4g s recovery" failures
        (if failures = 1 then "" else "s")
        lost downtime recovery
  | Pending -> Format.fprintf fmt "(no surviving events)"

let pp_decision fmt d =
  Format.fprintf fmt "@[<v 2>#%-3d t = %14.2f s  chunk %12.4g s  (remaining %12.4g s)" d.index
    d.at d.chunk d.remaining;
  (match d.rationale with
  | Some r -> Format.fprintf fmt "@,rationale: %a" Rationale.pp r
  | None -> ());
  Format.fprintf fmt "@,outcome:   %a@]" pp_realized d.realized

let print ?(limit = 20) fmt t =
  Format.fprintf fmt "@[<v>policy %s, replicate %d: %d decisions (%d events, %d dropped)@,"
    t.policy_name t.replicate (List.length t.decisions) t.events t.dropped;
  let shown = if limit < 0 then t.decisions else List.filteri (fun i _ -> i < limit) t.decisions in
  List.iter (fun d -> Format.fprintf fmt "%a@," pp_decision d) shown;
  let hidden = List.length t.decisions - List.length shown in
  if hidden > 0 then Format.fprintf fmt "... (%d more decisions; raise --limit)@," hidden;
  (match t.declined with
  | Some (at, remaining) ->
      Format.fprintf fmt "policy declined at t = %.2f s with %.4g s of work left@," at remaining
  | None -> ());
  (match t.outcome with
  | Engine.Policy_failed _ -> ()
  | Engine.Completed m ->
      let pct v = 100. *. v /. m.Engine.makespan in
      Format.fprintf fmt "@,@[<v 2>waste decomposition (reconciled against the event stream):";
      Format.fprintf fmt "@,%-16s %16.4f s" "makespan" m.Engine.makespan;
      List.iter
        (fun (label, engine, traced) ->
          Format.fprintf fmt "@,%-16s %16.4f s  (%5.1f%%)  trace %s" label engine (pct engine)
            (if engine = traced then "=" else Printf.sprintf "%.17g" traced))
        [
          ("useful work", m.Engine.useful_work, t.totals.Tracer.work);
          ("checkpoints", m.Engine.checkpoint_time, t.totals.Tracer.checkpoint);
          ("wasted", m.Engine.wasted_time, t.totals.Tracer.waste);
          ("recoveries", m.Engine.recovery_time, t.totals.Tracer.recovery);
          ("downtime stalls", m.Engine.stall_time, t.totals.Tracer.downtime);
        ];
      Format.fprintf fmt "@,%-16s %16d     trace %s" "failures" m.Engine.failures
        (if t.totals.Tracer.failures = m.Engine.failures then "=" else
           string_of_int t.totals.Tracer.failures);
      Format.fprintf fmt "@,%-16s %16d     trace %s" "chunks" m.Engine.chunks
        (if t.totals.Tracer.chunks = m.Engine.chunks then "=" else
           string_of_int t.totals.Tracer.chunks);
      (* The engine enforces the identity at the absolute simulated
         clock; report the same tolerance it checked against. *)
      Format.fprintf fmt "@,accounting residual %.3g s (tolerance %.3g s)"
        (Engine.accounting_residual m)
        (Engine.accounting_tolerance ~clock:(t.start_time +. m.Engine.makespan) m);
      Format.fprintf fmt "@,reconciliation: %s@]"
        (if reconciles t then "exact (bitwise)"
         else if t.dropped > 0 then "unavailable (ring dropped events)"
         else "MISMATCH"));
  Format.fprintf fmt "@]"
