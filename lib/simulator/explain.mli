(** Decision-timeline replay for [ckpt explain].

    Replays one (scenario, policy, replicate) deterministically through
    {!Engine.run_traced} with the policy wrapped so every decision also
    records its {!Ckpt_policies.Rationale.t} — computed from the very
    observation the policy answered, so the annotated run is
    bit-identical to an unwrapped one.  The timeline pairs each
    decision with what actually happened to its chunk (committed vs
    destroyed, and the time lost), and the footer reconciles the
    engine's waste decomposition against {!Ckpt_telemetry.Tracer.totals}
    {e bitwise} (exact when no ring events were dropped). *)

type realized =
  | Committed of { work : float; checkpoint : float }
  | Destroyed of { lost : float; downtime : float; recovery : float; failures : int }
  | Pending  (** trailing decision with no surviving events. *)

type decision = {
  index : int;
  at : float;
  chunk : float;
  remaining : float;
  rationale : Ckpt_policies.Rationale.t option;
  realized : realized;
}

type t = {
  policy_name : string;
  replicate : int;
  start_time : float;
      (** the scenario's absolute start clock — the footer reports the
          accounting tolerance at the clock the engine enforced it. *)
  outcome : Engine.outcome;
  decisions : decision list;
  declined : (float * float) option;
      (** [(at_time, remaining)] when the policy answered [None]. *)
  totals : Ckpt_telemetry.Tracer.totals;
  events : int;
  dropped : int;
}

val run :
  scenario:Scenario.t -> policy:Ckpt_policies.Policy.t -> replicate:int -> t
(** Replay and annotate.  Deterministic in (scenario, policy,
    replicate): same traces, same decisions, same metrics as the plain
    {!Engine.run}. *)

val reconciles : t -> bool
(** True iff the run completed, no events were dropped, and every
    {!Ckpt_telemetry.Tracer.totals} component equals its
    [Engine.metrics] counterpart {e bitwise}. *)

val print : ?limit:int -> Format.formatter -> t -> unit
(** Render the annotated timeline (at most [limit] decisions;
    negative = all) and the reconciliation footer. *)
