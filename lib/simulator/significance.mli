(** Paired statistical comparison of two checkpointing policies.

    The evaluation methodology runs every policy on the {e same} trace
    sets, so policies can be compared pairwise per trace — far more
    sensitive than comparing averages.  This module reports the paired
    differences and an exact two-sided sign test, so claims like
    "DPNextFailure beats OptExp" come with a p-value rather than a
    pair of noisy means. *)

type t = {
  policy_a : string;
  policy_b : string;
  paired_runs : int;  (** trace sets where both policies completed. *)
  mean_difference : float;  (** mean (makespan A - makespan B), seconds. *)
  mean_ratio : float;  (** mean of per-trace makespan A / makespan B. *)
  a_wins : int;  (** traces where A finished strictly earlier. *)
  b_wins : int;
  ties : int;
  sign_test_p : float;
      (** two-sided exact binomial p-value of the win/loss split under
          the null "either policy equally likely to win"; ties are
          discarded, as is standard.  [1.] when there are no
          informative pairs. *)
}

val compare_policies :
  scenario:Scenario.t ->
  a:Ckpt_policies.Policy.t ->
  b:Ckpt_policies.Policy.t ->
  replicates:int ->
  t
(** @raise Invalid_argument if [replicates <= 0]. *)

val binomial_two_sided_p : wins:int -> losses:int -> float
(** The underlying exact test, exposed for direct use and testing:
    P(|X - n/2| >= |wins - n/2|) for X ~ Binomial(n, 1/2). *)

val pp : Format.formatter -> t -> unit
