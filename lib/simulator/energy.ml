module Policy = Ckpt_policies.Policy

type power = { compute : float; io : float; idle : float }

let create ~compute ~io ~idle =
  if compute < 0. || io < 0. || idle < 0. then invalid_arg "Energy.create: negative power";
  { compute; io; idle }

let default_power = { compute = 120.; io = 40.; idle = 25. }

let of_metrics power ~processors (m : Engine.metrics) =
  if processors <= 0 then invalid_arg "Energy.of_metrics: processors must be positive";
  let computing = m.Engine.useful_work +. m.Engine.wasted_time in
  let io_time = m.Engine.checkpoint_time +. m.Engine.recovery_time in
  float_of_int processors
  *. ((power.compute *. computing) +. (power.io *. io_time) +. (power.idle *. m.Engine.stall_time))

let makespan_energy_tradeoff ~scenario ~power ~periods ~replicates =
  let processors = scenario.Scenario.job.Ckpt_policies.Job.processors in
  List.map
    (fun period ->
      let policy = Policy.periodic "energy-sweep" ~period in
      let makespan_acc = ref 0. and energy_acc = ref 0. and n = ref 0 in
      for replicate = 0 to replicates - 1 do
        let traces = Scenario.traces scenario ~replicate in
        match Engine.run ~scenario ~traces ~policy with
        | Engine.Completed m ->
            makespan_acc := !makespan_acc +. m.Engine.makespan;
            energy_acc := !energy_acc +. of_metrics power ~processors m;
            incr n
        | Engine.Policy_failed _ -> ()
      done;
      let nf = float_of_int (max 1 !n) in
      (period, !makespan_acc /. nf, !energy_acc /. nf))
    periods
