(** The discrete-event execution engine.

    Simulates one execution of a tightly coupled parallel job on a
    trace set, under a checkpointing policy, with the paper's
    failed-only rejuvenation model (Section 3.1):

    - all [p] processors execute each chunk synchronously and
      checkpoint together;
    - a failure of any processor during execution, checkpointing or
      recovery destroys the work since the last committed checkpoint;
    - the failed processor undergoes a downtime [D] (its own failure
      dates inside the downtime are absorbed); healthy processors keep
      their ages but stall;
    - further processors may fail during a downtime or during the
      recovery, cascading (Section 3.2's discussion of [E(Trec)]);
    - the recovery of the last checkpoint takes [R(p)] once all
      processors are simultaneously up, and restarts after any
      interrupting failure;
    - a lifetime restarts at the beginning of the recovery period that
      follows the downtime. *)

type metrics = {
  makespan : float;  (** total wall-clock time of the execution. *)
  useful_work : float;  (** seconds of committed chunk work. *)
  checkpoint_time : float;  (** committed checkpoint overhead. *)
  wasted_time : float;
      (** execution and checkpointing time destroyed by failures. *)
  recovery_time : float;  (** completed and interrupted recoveries. *)
  stall_time : float;  (** downtime waits (processors idle). *)
  failures : int;  (** effective platform failures during the job. *)
  chunks : int;  (** committed chunks. *)
  min_chunk : float;
  max_chunk : float;  (** extreme committed chunk sizes ([0.] if none). *)
}

type outcome =
  | Completed of metrics
  | Policy_failed of { at_time : float; remaining : float }
      (** the policy returned [None] (could not compute a chunk). *)

exception Accounting_violation of string
(** Raised by every entry point below if a completed run's waste
    decomposition does not partition its makespan:
    [makespan = useful + checkpoint + wasted + recovery + stall]
    within {!accounting_tolerance}.  The identity holds by
    construction — every clock advance is matched by an accumulator
    add of the same operands — so a violation means time was
    mis-attributed, and it fails loudly rather than skewing tables. *)

val accounting_residual : metrics -> float
(** [|makespan - (useful + checkpoint + wasted + recovery + stall)|]. *)

val accounting_tolerance : ?clock:float -> metrics -> float
(** Ulp-scaled bound on the residual attributable to floating-point
    rounding alone: one ulp at the clock's magnitude per accounting
    operation (~4 per committed chunk, ~8 per failure, doubled for
    headroom).  [clock] is the absolute simulated end time, whose
    magnitude sets the ulp when the scenario starts late (defaults to
    [makespan]). *)

val run :
  scenario:Scenario.t ->
  traces:Ckpt_failures.Trace_set.t ->
  policy:Ckpt_policies.Policy.t ->
  outcome
(** Simulate one execution with the job's constant [C(p) = R(p)].  The
    trace set must cover the scenario's processors and horizon. *)

val run_traced :
  trace:Ckpt_telemetry.Tracer.buffer ->
  scenario:Scenario.t ->
  traces:Ckpt_failures.Trace_set.t ->
  policy:Ckpt_policies.Policy.t ->
  outcome
(** Like {!run}, but emits a typed event for every phase transition
    (policy decision, chunk start/commit, checkpoint, failure, waste,
    downtime, recovery start/abort/complete) into [trace]; summed span
    durations reconcile with the returned {!metrics} (see
    [Ckpt_telemetry.Tracer.totals]).  The untraced entry points cost
    one [match] per site. *)

val run_with_cost_profile :
  cost_profile:(progress:float -> float * float) ->
  scenario:Scenario.t ->
  traces:Ckpt_failures.Trace_set.t ->
  policy:Ckpt_policies.Policy.t ->
  outcome
(** Like {!run}, but the checkpoint and recovery costs depend on the
    job's progress (fraction of work committed, in [\[0, 1\]]) — the
    extension sketched in the paper's conclusion for applications
    whose footprint evolves (e.g. adaptive mesh refinement).
    [cost_profile] returns [(C, R)] at a progress point; a chunk's
    checkpoint is charged at the progress the chunk {e ends} at, a
    recovery at the progress being restored. *)

val run_with_cost_profile_traced :
  trace:Ckpt_telemetry.Tracer.buffer ->
  cost_profile:(progress:float -> float * float) ->
  scenario:Scenario.t ->
  traces:Ckpt_failures.Trace_set.t ->
  policy:Ckpt_policies.Policy.t ->
  outcome
(** {!run_with_cost_profile} with the event stream of {!run_traced}. *)

val lower_bound :
  scenario:Scenario.t -> traces:Ckpt_failures.Trace_set.t -> metrics
(** The omniscient LowerBound of Section 4.1: knows every failure date
    and checkpoints exactly [C(p)] ahead of each, so it never wastes
    execution time; unattainable in practice, serves as the absolute
    reference. *)

val lower_bound_traced :
  trace:Ckpt_telemetry.Tracer.buffer ->
  scenario:Scenario.t ->
  traces:Ckpt_failures.Trace_set.t ->
  metrics
(** {!lower_bound} with the event stream of {!run_traced}. *)

(** {2 Batch (striped lockstep) execution}

    [run_stripe] steps a whole replicate stripe — one policy, one
    scenario, one trace set per slot — in lockstep over a shared
    timeline: structure-of-arrays accumulators (unboxed float arrays
    indexed by replicate slot), one reusable mutable observation per
    slot, a lazily created per-slot incremental age ledger, and a
    cross-replicate decision memo for policies that declare
    {!Ckpt_policies.Policy.t.decide}.  Every slot's outcome — metrics,
    [Policy_failed] point, and the per-slot accounting identity
    ({!Accounting_violation}) — is bit-identical to {!run} on the same
    trace set.  Tracing and cost-profile runs have no batch
    counterpart: they stay on the scalar engine. *)

type kind = Scalar | Batch

val selected_kind : unit -> kind
(** The engine the evaluation harness should route replicates through:
    [CKPT_ENGINE=scalar|batch], default [Batch].  Re-read per call;
    malformed values warn once per distinct value and fall back to
    [Batch]. *)

val run_stripe :
  ?initial_births:float array array ->
  scenario:Scenario.t ->
  traces:Ckpt_failures.Trace_set.t array ->
  policy:Ckpt_policies.Policy.t ->
  unit ->
  outcome array
(** Run [policy] on every slot's trace set; slot [k] of the result is
    bit-identical to [run ~scenario ~traces:traces.(k) ~policy].
    [initial_births] optionally supplies each slot's
    {!Scenario.initial_lifetime_starts} (computed once by a caller
    running several policies over the same trace sets); the stripe
    copies it, never mutates it.  An empty [traces] yields [[||]].
    @raise Invalid_argument if [initial_births] is present with a
    different width than [traces]. *)
