module Policy = Ckpt_policies.Policy
module Special = Ckpt_numerics.Special

type t = {
  policy_a : string;
  policy_b : string;
  paired_runs : int;
  mean_difference : float;
  mean_ratio : float;
  a_wins : int;
  b_wins : int;
  ties : int;
  sign_test_p : float;
}

(* log C(n, k) via log-Gamma. *)
let log_choose n k =
  Special.log_gamma (float_of_int (n + 1))
  -. Special.log_gamma (float_of_int (k + 1))
  -. Special.log_gamma (float_of_int (n - k + 1))

let binomial_two_sided_p ~wins ~losses =
  if wins < 0 || losses < 0 then invalid_arg "Significance.binomial_two_sided_p: negative counts";
  let n = wins + losses in
  if n = 0 then 1.
  else begin
    let extreme = min wins losses in
    (* P(X <= extreme) for X ~ Bin(n, 1/2), then double (capped). *)
    let log_half_n = float_of_int n *. log 0.5 in
    let tail = ref 0. in
    for k = 0 to extreme do
      tail := !tail +. exp (log_choose n k +. log_half_n)
    done;
    Float.min 1. (2. *. !tail)
  end

let compare_policies ~scenario ~a ~b ~replicates =
  if replicates <= 0 then invalid_arg "Significance.compare_policies: replicates must be positive";
  let diffs = ref [] and ratios = ref [] in
  let a_wins = ref 0 and b_wins = ref 0 and ties = ref 0 in
  for replicate = 0 to replicates - 1 do
    let traces = Scenario.traces scenario ~replicate in
    match (Engine.run ~scenario ~traces ~policy:a, Engine.run ~scenario ~traces ~policy:b) with
    | Engine.Completed ma, Engine.Completed mb ->
        let da = ma.Engine.makespan and db = mb.Engine.makespan in
        diffs := (da -. db) :: !diffs;
        ratios := (da /. db) :: !ratios;
        if da < db then incr a_wins else if db < da then incr b_wins else incr ties
    | _ -> ()
  done;
  let n = List.length !diffs in
  let mean xs = if n = 0 then nan else List.fold_left ( +. ) 0. xs /. float_of_int n in
  {
    policy_a = a.Policy.name;
    policy_b = b.Policy.name;
    paired_runs = n;
    mean_difference = mean !diffs;
    mean_ratio = mean !ratios;
    a_wins = !a_wins;
    b_wins = !b_wins;
    ties = !ties;
    sign_test_p = binomial_two_sided_p ~wins:!a_wins ~losses:!b_wins;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s vs %s over %d paired traces:@,\
     mean makespan difference %+.0f s (ratio %.5f)@,\
     wins %d / %d (%d ties), two-sided sign test p = %.4f@]"
    t.policy_a t.policy_b t.paired_runs t.mean_difference t.mean_ratio t.a_wins t.b_wins t.ties
    t.sign_test_p
