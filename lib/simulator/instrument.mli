(** Observability for long evaluation runs.

    Grid studies at paper scale (600 replicates per cell) run for
    hours; this module reports where the time goes.  Everything is
    gated on the [CKPT_VERBOSE=1] environment variable — when unset,
    {!time} is a single branch around the thunk and {!step} is a
    no-op, so instrumented code paths cost nothing in normal runs.

    Output goes through {!Logs} (source ["ckpt.eval"], level Info); if
    the application installed no reporter, a minimal stderr reporter
    is installed on first use.  All entry points may be called
    concurrently from multiple domains. *)

val enabled : unit -> bool
(** True iff [CKPT_VERBOSE=1] was set at startup. *)

val time : string -> (unit -> 'a) -> 'a
(** [time label f] runs [f ()], accumulating its wall-clock time under
    [label] (summed across domains) when enabled. *)

val report : label:string -> unit -> unit
(** Log the accumulated per-label wall-clock totals, largest first,
    prefixed by [label].  No-op when disabled or nothing was timed. *)

val reset : unit -> unit
(** Drop all accumulated timers (each evaluation reports its own). *)

type progress
(** A shared replicate-progress counter. *)

val progress : label:string -> total:int -> progress

val step : progress -> unit
(** Count one finished replicate; logs roughly every 10% and on the
    last replicate. *)

val info : ('a, unit, string, unit) format4 -> 'a
(** Printf-style one-off Info line (e.g. trace-cache statistics);
    dropped when disabled. *)
