(** Observability for long evaluation runs.

    Grid studies at paper scale (600 replicates per cell) run for
    hours; this module reports where the time goes.  Logging is gated
    on the [CKPT_VERBOSE=1] environment variable — when unset and the
    {!Ckpt_telemetry.Metrics} registry is disabled, {!time} is a
    single branch around the thunk and {!step} is a no-op, so
    instrumented code paths cost nothing in normal runs.

    Timers are stored in the registry under ["stage/<label>"], so they
    also accumulate (without any logging) under [CKPT_METRICS=1] and
    show up in [ckpt stats] and {!Ckpt_telemetry.Metrics.snapshot}.

    Output goes through {!Logs} (source ["ckpt.eval"], level Info); if
    the application installed no reporter, a minimal stderr reporter
    is installed on first use.  All entry points may be called
    concurrently from multiple domains. *)

val enabled : unit -> bool
(** True iff [CKPT_VERBOSE=1] was set at startup. *)

val time : string -> (unit -> 'a) -> 'a
(** [time label f] runs [f ()], accumulating its wall-clock time under
    ["stage/" ^ label] (summed across domains) when enabled. *)

val report : label:string -> unit -> unit
(** Log the accumulated per-label wall-clock totals, largest first,
    prefixed by [label].  No-op when disabled or nothing was timed. *)

val reset : unit -> unit
(** Drop all accumulated stage timers (each evaluation reports its
    own).  Other registry metrics are untouched. *)

val scoped : label:string -> (unit -> 'a) -> 'a
(** [scoped ~label f] marks [f] as the owner of the stage timers: they
    are reset on entry and reported under [label] on exit, and nested
    evaluations skip their own reset/report (see {!in_scope}).  Used
    by the experiment registry so that back-to-back studies in one
    process do not double-count each other's stages.  Scopes do not
    nest meaningfully — an inner scope defers entirely to the
    outermost one. *)

val in_scope : unit -> bool
(** True while inside a {!scoped} call (any domain). *)

type progress
(** A shared replicate-progress counter. *)

val progress : label:string -> total:int -> progress

val step : progress -> unit
(** Count one finished replicate; logs roughly every 10% and on the
    last replicate. *)

val info : ('a, unit, string, unit) format4 -> 'a
(** Printf-style one-off Info line (e.g. trace-cache statistics);
    dropped when disabled. *)
