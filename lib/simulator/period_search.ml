module Policy = Ckpt_policies.Policy
module Optexp = Ckpt_policies.Optexp

let tuning_offset = 1_000_000

let default_factors () =
  let coarse = List.init 51 (fun j -> 1.1 ** float_of_int (j - 25)) in
  let fine = List.init 21 (fun i -> 1. +. (0.05 *. float_of_int (i - 10))) in
  List.filter (fun f -> f > 0.) (coarse @ fine) |> List.sort_uniq compare

(* The tuning trace sets are shared across every candidate period:
   generating them is far more expensive than simulating on them. *)
let average_tuning_makespan ~scenario ~trace_sets ~period =
  let policy = Policy.periodic "tuning" ~period in
  let acc = ref 0. in
  let count = ref 0 in
  Array.iter
    (fun traces ->
      match Engine.run ~scenario ~traces ~policy with
      | Engine.Completed m ->
          acc := !acc +. m.Engine.makespan;
          incr count
      | Engine.Policy_failed _ -> ())
    trace_sets;
  if !count = 0 then infinity else !acc /. float_of_int !count

let best_period ?(factors = default_factors ()) ?(tuning_replicates = 16) ~scenario ~base_period
    () =
  if base_period <= 0. then invalid_arg "Period_search.best_period: base period must be positive";
  let work = scenario.Scenario.job.Ckpt_policies.Job.work_time in
  (* If the whole grid is unusable (no candidate in (0, work], or no
     candidate completing a tuning run), fall back to the base period
     rather than the fold's neutral element: a period of 0 would make
     [Policy.periodic] decline every chunk. *)
  let fallback = Float.min base_period work in
  let candidates =
    List.filter_map
      (fun f ->
        let p = base_period *. f in
        if p > 0. && p <= work then Some p else None)
      factors
    |> List.sort_uniq compare
  in
  let candidates = if candidates = [] then [ fallback ] else candidates in
  let trace_sets =
    Array.init tuning_replicates (fun r ->
        Scenario.traces scenario ~replicate:(tuning_offset + r))
  in
  (* Candidates are scored independently on the shared tuning sets:
     fan them out (composing with an enclosing study's fan-out under
     the work-stealing scheduler), then pick the winner in candidate
     order so ties break as the sequential fold did. *)
  let scores =
    Ckpt_parallel.Domain_pool.parallel_map_list
      (fun p -> (p, average_tuning_makespan ~scenario ~trace_sets ~period:p))
      candidates
  in
  List.fold_left
    (fun (best_p, best_v) (p, v) -> if v < best_v then (p, v) else (best_p, best_v))
    (fallback, infinity) scores

let policy ?factors ?tuning_replicates scenario =
  let base_period = Optexp.period scenario.Scenario.job in
  let period, _ = best_period ?factors ?tuning_replicates ~scenario ~base_period () in
  Policy.periodic "PeriodLB" ~period

let sweep ~scenario ~periods ~replicates =
  List.map
    (fun period ->
      let p = Policy.periodic "periodic" ~period in
      (period, Evaluation.average_makespan ~scenario ~policy:p ~replicates))
    periods
