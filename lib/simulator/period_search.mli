(** PeriodLB (Section 4.1): the unattainable-in-practice best periodic
    policy, found by brute-force numerical search — candidate periods
    around OptExp's are each evaluated on freshly generated tuning
    trace sets, and the period with the lowest average makespan wins.

    The paper multiplies/divides OptExp's period by [1 + 0.05 i]
    (i <= 180) and by [1.1^j] (j <= 60) and scores each on 1,000
    scenarios; the defaults here are a lighter grid and tuning-set
    size, configurable up to the paper's scale. *)

val default_factors : unit -> float list
(** Sorted multiplicative grid: [1.1^j] for [|j| <= 25] merged with
    [1 + 0.05 i] for [|i| <= 10]. *)

val best_period :
  ?factors:float list ->
  ?tuning_replicates:int ->
  scenario:Scenario.t ->
  base_period:float ->
  unit ->
  float * float
(** [(period, average tuning makespan)] of the winning candidate.
    Tuning trace sets are drawn from a replicate range disjoint from
    the one the evaluation uses (offset by 1,000,000); candidates are
    scored in parallel, with the winner picked in candidate order.
    If no candidate lies in [(0, work]] or none completes a tuning
    run, returns [(min base_period work, infinity)] — never a zero or
    negative period. *)

val policy :
  ?factors:float list -> ?tuning_replicates:int -> Scenario.t -> Ckpt_policies.Policy.t
(** The PeriodLB policy: runs the search (once, eagerly) with OptExp's
    period as base and checkpoints periodically at the winner. *)

val sweep :
  scenario:Scenario.t ->
  periods:float list ->
  replicates:int ->
  (float * float option) list
(** Average makespan of the plain periodic policy at each period — the
    PeriodVariation curves of the paper's appendix figures.  [None]
    for periods no run completed on (cannot happen for periodic
    policies, but kept symmetric with policy sweeps). *)
