(** A fully specified simulation setting: job + trace-generation
    protocol (Section 4.3). *)

type t = {
  job : Ckpt_policies.Job.t;
  seed : int64;
  horizon : float;  (** trace horizon [h]. *)
  start_time : float;
      (** job start [t0] within the horizon; 1 year for parallel
          platforms (avoids synchronized-birth effects), 0 for the
          single-processor study. *)
}

val create : ?seed:int64 -> ?horizon:float -> ?start_time:float -> Ckpt_policies.Job.t -> t
(** Defaults follow the paper: seed [0x5EEDL]; [horizon] = 1 year and
    [start_time] = 0 for one processor, 11 years and 1 year otherwise.
    @raise Invalid_argument if [start_time >= horizon]. *)

val traces : t -> replicate:int -> Ckpt_failures.Trace_set.t
(** The failure traces of replicate [replicate]: one renewal trace per
    {e failure unit} of the job (the job's [group_size] processors
    share a unit).  Deterministic in [(seed, replicate, unit)], so
    runs with fewer processors see a prefix of the traces of runs with
    more (the paper's coherence requirement when varying [p]). *)

val initial_lifetime_starts : t -> Ckpt_failures.Trace_set.t -> float array
(** Per-failure-unit instants at which the lifetime in progress at
    [start_time] began: last failure before [t0] plus the downtime
    (lifetimes restart at the beginning of recovery), or 0 for a unit
    that never failed. *)
