(** A fully specified simulation setting: job + trace-generation
    protocol (Section 4.3). *)

type cache
(** Bounded FIFO cache of generated trace sets, keyed by replicate
    (so process-wide the cache is keyed by [(scenario, replicate)]).
    Trace sets are pure functions of the scenario and the replicate
    index; the cache only saves regeneration work — the period
    search's tuning sets, policy sweeps re-running the same
    replicates — and never changes results.  Capacity comes from the
    [CKPT_TRACE_CACHE] environment variable (default 64 sets;
    0 disables caching).  Safe to share across domains. *)

type t = {
  job : Ckpt_policies.Job.t;
  seed : int64;
  horizon : float;  (** trace horizon [h]. *)
  start_time : float;
      (** job start [t0] within the horizon; 1 year for parallel
          platforms (avoids synchronized-birth effects), 0 for the
          single-processor study. *)
  cache : cache;  (** private to {!traces}; created by {!create}. *)
}

val create : ?seed:int64 -> ?horizon:float -> ?start_time:float -> Ckpt_policies.Job.t -> t
(** Defaults follow the paper: seed [0x5EEDL]; [horizon] = 1 year and
    [start_time] = 0 for one processor, 11 years and 1 year otherwise.
    @raise Invalid_argument if [start_time >= horizon]. *)

val traces : t -> replicate:int -> Ckpt_failures.Trace_set.t
(** The failure traces of replicate [replicate]: one renewal trace per
    {e failure unit} of the job (the job's [group_size] processors
    share a unit).  Deterministic in [(seed, replicate, unit)], so
    runs with fewer processors see a prefix of the traces of runs with
    more (the paper's coherence requirement when varying [p]).
    Memoized per scenario (see {!type:cache}). *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the scenario's trace cache so far. *)

val initial_lifetime_starts : t -> Ckpt_failures.Trace_set.t -> float array
(** Per-failure-unit instants at which the lifetime in progress at
    [start_time] began: last failure before [t0] plus the downtime
    (lifetimes restart at the beginning of recovery), or 0 for a unit
    that never failed. *)
