(** The paper's evaluation methodology (Section 4.1).

    For a scenario, generate [replicates] trace sets; run every policy
    on every trace set; on each trace set normalize each policy's
    makespan by the best makespan achieved by any {e policy} (the
    omniscient LowerBound is excluded from the minimum but reported,
    normalized, as its own row); average the per-trace degradations.

    Replicates are evaluated in parallel over OCaml 5 domains
    ([CKPT_DOMAINS] controls the fan-out; nested inside a study that
    already parallelizes, the replicates run inline).  Each replicate
    accumulates into its own state and the per-replicate accumulators
    are merged serially in replicate order ({!Ckpt_numerics.Summary.merge}),
    so the table is bit-for-bit identical for every domain count.
    Set [CKPT_VERBOSE=1] for per-policy wall-clock and replicate
    progress reporting (see {!Instrument}). *)

type policy_result = {
  policy_name : string;
  average_degradation : float;  (** mean of makespan / best-of-trace. *)
  std_degradation : float;
  average_makespan : float;  (** seconds; over successful runs. *)
  successes : int;  (** trace sets on which the policy produced a run. *)
  average_failures : float;  (** platform failures per successful run. *)
  max_failures : int;
  average_chunks : float;
  min_chunk : float;  (** smallest chunk ever committed (seconds). *)
  max_chunk : float;
}

type table = {
  lower_bound : policy_result;  (** the omniscient reference (< 1). *)
  results : policy_result list;  (** one row per policy, input order. *)
  replicates : int;
  usable_replicates : int;
      (** trace sets on which at least one policy completed. *)
}

val degradation_table :
  scenario:Scenario.t ->
  policies:Ckpt_policies.Policy.t list ->
  replicates:int ->
  table
(** @raise Invalid_argument if [replicates <= 0] or [policies = []]. *)

val average_makespan :
  scenario:Scenario.t -> policy:Ckpt_policies.Policy.t -> replicates:int -> float option
(** Mean makespan of one policy alone (Appendix D's absolute-makespan
    plots); [None] if the policy failed on every trace set. *)

val pp_table : Format.formatter -> table -> unit
(** Render rows as the paper's tables do (name, avg, std, extras).
    Cells with no defined value — a policy that completed no run, or a
    standard deviation over fewer than two runs — print as ["n/a"],
    never as [nan] (the paper's incomplete Liu curves). *)
