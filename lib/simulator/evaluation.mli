(** The paper's evaluation methodology (Section 4.1).

    For a scenario, generate [replicates] trace sets; run every policy
    on every trace set; on each trace set normalize each policy's
    makespan by the best makespan achieved by any {e policy} (the
    omniscient LowerBound is excluded from the minimum but reported,
    normalized, as its own row); average the per-trace degradations.

    Replicates are evaluated in parallel over OCaml 5 domains
    ([CKPT_DOMAINS] controls the fan-out; nested inside a study that
    already parallelizes, the replicates run inline).  Each replicate
    accumulates into its own state and the per-replicate accumulators
    are merged serially in replicate order ({!Ckpt_numerics.Summary.merge}),
    so the table is bit-for-bit identical for every domain count.
    Set [CKPT_VERBOSE=1] for per-policy wall-clock and replicate
    progress reporting (see {!Instrument}).

    Under the default [CKPT_ENGINE=batch] (see {!Engine.selected_kind})
    each stripe of replicates runs through {!Engine.run_stripe} — one
    lockstep pass per policy over the whole stripe, the unit of
    parallel work becoming the stripe — and the per-slot outcomes are
    bit-identical to the scalar engine's, so every table below is
    unchanged by the engine choice.  Tracing runs ([CKPT_TRACE]) pin
    the scalar path: the batch engine has no event-stream
    counterpart. *)

(** Distributional view of a policy's completed runs, derived from the
    exact {!Ckpt_numerics.Summary.Vector} accumulator: makespan
    quantiles (log-histogram estimates), 95% confidence half-widths
    for the mean makespan and mean degradation, and the waste
    decomposition both as mean seconds and as fractions of the mean
    makespan.  The mean seconds satisfy
    [mk_mean = useful_s + checkpoint_s + wasted_s + recovery_s + stall_s]
    up to the engine's ulp-scaled accounting tolerance — enforced
    per-replicate by {!Engine.Accounting_violation}.  Undefined cells
    (e.g. intervals below two runs) are [nan]; renderers print "n/a"
    or an empty CSV cell. *)
type waste_profile = {
  mk_p50 : float;
  mk_p95 : float;
  mk_p99 : float;
  mk_mean : float;  (** mean makespan from the exact sum (seconds). *)
  mk_ci95 : float;  (** 95% CI half-width of the mean makespan. *)
  deg_ci95 : float;  (** 95% CI half-width of the mean degradation. *)
  useful_s : float;
  checkpoint_s : float;
  wasted_s : float;
  recovery_s : float;
  stall_s : float;
  useful_frac : float;
  checkpoint_frac : float;
  wasted_frac : float;
  recovery_frac : float;
  stall_frac : float;
}

type policy_result = {
  policy_name : string;
  average_degradation : float;  (** mean of makespan / best-of-trace. *)
  std_degradation : float;
  average_makespan : float;  (** seconds; over successful runs. *)
  successes : int;  (** trace sets on which the policy produced a run. *)
  average_failures : float;  (** platform failures per successful run. *)
  max_failures : int;
  average_chunks : float;
  min_chunk : float;  (** smallest chunk ever committed (seconds). *)
  max_chunk : float;
  profile : waste_profile option;  (** [None] when no run completed. *)
}

type table = {
  lower_bound : policy_result;  (** the omniscient reference (< 1). *)
  results : policy_result list;  (** one row per policy, input order. *)
  replicates : int;
  usable_replicates : int;
      (** trace sets on which at least one policy completed. *)
}

val degradation_table :
  scenario:Scenario.t ->
  policies:Ckpt_policies.Policy.t list ->
  replicates:int ->
  table
(** @raise Invalid_argument if [replicates <= 0] or [policies = []]. *)

(** {2 Replicate stripes}

    The reduction above is structured as contiguous {e stripes} of
    replicates ([CKPT_SWEEP_STRIPE] wide, default 16): replicate
    outcomes merge in order within each stripe, stripe partials merge
    in stripe order.  A stripe partial is self-contained — computable
    independently, serializable bit-exactly — so the resumable sweep
    harness ({!Ckpt_experiments.Sweep_store}) can persist each stripe
    as a unit of work and reassemble the table after an interruption,
    bit-identical to an uninterrupted run. *)

type partial
(** Merged accumulators of one replicate stripe. *)

val stripe_size : unit -> int
(** Current stripe width: [CKPT_SWEEP_STRIPE] when set to a positive
    integer, 16 otherwise. *)

val stripe_count : replicates:int -> int
(** Number of stripes covering [replicates] at the current width.
    @raise Invalid_argument if [replicates <= 0]. *)

val stripe_bounds : replicates:int -> stripe:int -> int * int
(** [(first, len)] of stripe [stripe] at the current width — the
    replicate indices covered are [first, first + len).  This is the
    unit-granularity contract shared by the compute path
    ({!stripe_partial}) and the distribution substrate
    ({!Ckpt_experiments.Sweep_store}): a unit is fully described by
    (scenario, policies, stripe index), independent of which process
    computes it.
    @raise Invalid_argument on an out-of-range stripe or
    [replicates <= 0]. *)

val empty_partial : policy_names:string array -> partial
(** A merge-neutral placeholder with the given roster: zero replicates,
    empty accumulators.  Merging it into {!table_of_partials} changes
    nothing.  Sweep workers substitute it for units currently claimed
    by another worker, since worker-side tables are discarded and only
    the parent's canonical merge renders output. *)

val stripe_partial :
  scenario:Scenario.t ->
  policies:Ckpt_policies.Policy.t list ->
  replicates:int ->
  stripe:int ->
  partial
(** Evaluate the replicates of stripe [stripe] (indices
    [stripe * width, min ((stripe + 1) * width, replicates))) and merge
    them in replicate order.  The fan-out and determinism guarantees of
    {!degradation_table} apply.
    @raise Invalid_argument on an out-of-range stripe, [replicates <= 0]
    or [policies = []]. *)

val table_of_partials : partial list -> table
(** Merge stripe partials {e in the order given} — pass them in stripe
    order to reproduce {!degradation_table} bit for bit.
    @raise Invalid_argument on an empty list or mismatched policy
    rosters. *)

val serialize_partial : partial -> string
(** Text encoding (hex floats) that {!deserialize_partial} inverts bit
    for bit. *)

val deserialize_partial : string -> partial option
(** [None] on malformed input — a torn or corrupted checkpoint reads as
    "absent", never crashes and never poisons a table. *)

val average_makespan :
  scenario:Scenario.t -> policy:Ckpt_policies.Policy.t -> replicates:int -> float option
(** Mean makespan of one policy alone (Appendix D's absolute-makespan
    plots); [None] if the policy failed on every trace set. *)

val profile_of_components :
  (float * float * float * float * float * float) list -> waste_profile option
(** Build a {!waste_profile} from bare per-run decompositions
    [(makespan, useful, checkpoint, wasted, recovery, stall)] — for
    studies that persist component rows per replicate rather than full
    accumulators.  [None] on an empty list; [deg_ci95] is [nan] (no
    degradation baseline).  Rows must be finite
    (@raise Invalid_argument otherwise, from
    {!Ckpt_numerics.Summary.Vector.add}). *)

val makespan_profile :
  scenario:Scenario.t ->
  policy:Ckpt_policies.Policy.t ->
  replicates:int ->
  (float * waste_profile) option
(** {!average_makespan} (bit-identical mean, first component) together
    with the distributional profile of the same runs.  [deg_ci95] is
    [nan]: a single-policy run has no degradation baseline. *)

val pp_table : Format.formatter -> table -> unit
(** Render rows as the paper's tables do (name, avg, std, extras).
    Cells with no defined value — a policy that completed no run, or a
    standard deviation over fewer than two runs — print as ["n/a"],
    never as [nan] (the paper's incomplete Liu curves). *)
