(** Energy accounting — the paper's stated future-work direction
    ("checkpointing strategies that can trade off a longer execution
    time for a reduced energy consumption", Section 8), implemented as
    an extension.

    The engine's metrics partition the makespan into computing
    (useful + wasted), I/O (checkpoints + recoveries) and stalled
    (downtime) phases; energy is the per-processor power of each phase
    integrated over it and summed over the enrolled processors. *)

type power = {
  compute : float;  (** W per processor while executing chunks. *)
  io : float;  (** W per processor during checkpoint/recovery I/O. *)
  idle : float;  (** W per processor while stalled by a downtime. *)
}

val default_power : power
(** 120 W compute / 40 W I/O / 25 W idle per processor — a plausible
    HPC node budget; override for real machines. *)

val create : compute:float -> io:float -> idle:float -> power
(** @raise Invalid_argument on negative power. *)

val of_metrics : power -> processors:int -> Engine.metrics -> float
(** Total energy in joules for one execution. *)

val makespan_energy_tradeoff :
  scenario:Scenario.t ->
  power:power ->
  periods:float list ->
  replicates:int ->
  (float * float * float) list
(** For each candidate checkpoint period: [(period, average makespan,
    average energy)].  Longer periods waste more recomputation
    (compute watts); shorter ones burn more checkpoint I/O — the curve
    exposes the energy/time trade-off. *)
