module Job = Ckpt_policies.Job
module Trace = Ckpt_failures.Trace
module Trace_set = Ckpt_failures.Trace_set
module Units = Ckpt_platform.Units

type t = {
  job : Job.t;
  seed : int64;
  horizon : float;
  start_time : float;
}

let create ?(seed = 0x5EEDL) ?horizon ?start_time job =
  let single = job.Job.processors = 1 in
  let horizon =
    match horizon with Some h -> h | None -> if single then Units.of_years 1. else Units.of_years 11.
  in
  let start_time =
    match start_time with Some s -> s | None -> if single then 0. else Units.of_years 1.
  in
  if start_time < 0. || start_time >= horizon then
    invalid_arg "Scenario.create: start_time outside [0, horizon)";
  { job; seed; horizon; start_time }

(* One trace per failure unit. *)
let traces t ~replicate =
  Trace_set.generate ~seed:t.seed ~replicate t.job.Job.dist
    ~processors:(Job.failure_units t.job) ~horizon:t.horizon

let initial_lifetime_starts t traces =
  let d = Job.downtime t.job in
  Array.init (Trace_set.processors traces) (fun i ->
      match Trace.last_failure_before (Trace_set.trace traces i) t.start_time with
      | None -> 0.
      | Some f -> f +. d)
