module Job = Ckpt_policies.Job
module Trace = Ckpt_failures.Trace
module Trace_set = Ckpt_failures.Trace_set
module Units = Ckpt_platform.Units
module Metrics = Ckpt_telemetry.Metrics

(* Registry mirrors of the per-scenario cache stats, aggregated over
   every scenario in the process. *)
let cache_hits = Metrics.counter "scenario/trace_cache_hits"
let cache_misses = Metrics.counter "scenario/trace_cache_misses"
let traces_generated = Metrics.counter "scenario/traces_generated"

(* Generated trace sets are pure functions of (scenario, replicate),
   and several consumers ask for the same ones — the period search
   scores every candidate on one tuning set, policy sweeps re-run the
   same replicates per policy — so each scenario carries a bounded
   FIFO cache.  The cache is shared across domains (the evaluation
   harness fans replicates out); a single lock would serialize every
   replicate of a concurrently-evaluated table behind one mutex, so
   the capacity is sharded into per-replicate-stripe locks (replicate
   mod stripes) and concurrent replicates only contend when they hash
   to the same stripe.  Generation itself runs outside the locks, so a
   race at worst regenerates a set that is bit-identical anyway. *)
type stripe = {
  lock : Mutex.t;
  table : (int, Trace_set.t) Hashtbl.t;
  order : int Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

type cache = { stripes : stripe array }

let default_cache_capacity = 64
let max_stripes = 16

let cache_capacity () =
  match Sys.getenv_opt "CKPT_TRACE_CACHE" with
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | Some _ | None -> default_cache_capacity
    end
  | None -> default_cache_capacity

(* Spread the total capacity over the stripes (never a zero-capacity
   stripe: with fewer slots than stripes, use fewer stripes). *)
let create_cache () =
  let capacity = cache_capacity () in
  if capacity = 0 then { stripes = [||] }
  else begin
    let n = min max_stripes capacity in
    {
      stripes =
        Array.init n (fun i ->
            {
              lock = Mutex.create ();
              table = Hashtbl.create 16;
              order = Queue.create ();
              capacity = (capacity / n) + (if i < capacity mod n then 1 else 0);
              hits = 0;
              misses = 0;
            });
    }
  end

type t = {
  job : Job.t;
  seed : int64;
  horizon : float;
  start_time : float;
  cache : cache;
}

let create ?(seed = 0x5EEDL) ?horizon ?start_time job =
  let single = job.Job.processors = 1 in
  let horizon =
    match horizon with Some h -> h | None -> if single then Units.of_years 1. else Units.of_years 11.
  in
  let start_time =
    match start_time with Some s -> s | None -> if single then 0. else Units.of_years 1.
  in
  if start_time < 0. || start_time >= horizon then
    invalid_arg "Scenario.create: start_time outside [0, horizon)";
  { job; seed; horizon; start_time; cache = create_cache () }

let generate t ~replicate =
  Metrics.incr traces_generated;
  Trace_set.generate ~seed:t.seed ~replicate t.job.Job.dist
    ~processors:(Job.failure_units t.job) ~horizon:t.horizon

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* One trace per failure unit. *)
let traces t ~replicate =
  let c = t.cache in
  if Array.length c.stripes = 0 then generate t ~replicate
  else begin
    let s = c.stripes.(abs (replicate mod Array.length c.stripes)) in
    match
      locked s (fun () ->
          match Hashtbl.find_opt s.table replicate with
          | Some v ->
              s.hits <- s.hits + 1;
              Metrics.incr cache_hits;
              Some v
          | None ->
              s.misses <- s.misses + 1;
              Metrics.incr cache_misses;
              None)
    with
    | Some v -> v
    | None ->
        let v = generate t ~replicate in
        locked s (fun () ->
            if not (Hashtbl.mem s.table replicate) then begin
              if Hashtbl.length s.table >= s.capacity then
                Hashtbl.remove s.table (Queue.pop s.order);
              Hashtbl.add s.table replicate v;
              Queue.push replicate s.order
            end);
        v
  end

let cache_stats t =
  Array.fold_left
    (fun (hits, misses) s -> locked s (fun () -> (hits + s.hits, misses + s.misses)))
    (0, 0) t.cache.stripes

let initial_lifetime_starts t traces =
  let d = Job.downtime t.job in
  Array.init (Trace_set.processors traces) (fun i ->
      match Trace.last_failure_before (Trace_set.trace traces i) t.start_time with
      | None -> 0.
      | Some f -> f +. d)
