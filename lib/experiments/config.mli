(** Experiment-scale knobs.

    The paper runs 600 traces per configuration and sweeps large
    grids; reproducing that verbatim takes CPU-days.  Every experiment
    here accepts explicit parameters, and the defaults are scaled down
    to finish in minutes.  Environment overrides:

    - [CKPT_TRACES=<n>]   replicates per configuration;
    - [CKPT_FULL=1]       paper-scale defaults (600 traces, full grids);
    - [CKPT_SEED=<int>]   root seed;
    - [CKPT_SWEEP_DIR=<dir>]  resumable sweep store (see {!Sweep_store}). *)

type t = {
  replicates : int;
  full : bool;
  seed : int64;
  sweep_dir : string option;
      (** when set, studies checkpoint each unit of work here and skip
          completed units on re-run (see {!Sweep_store}). *)
}

val default : unit -> t
(** Resolved from the environment at call time. *)

val quick : t
(** Tiny scale for unit tests: 4 replicates. *)

val scale : t -> quick:int -> full:int -> int
(** Pick a replicate count: the explicit [CKPT_TRACES] if set,
    else [full] under [CKPT_FULL], else [quick]. *)
