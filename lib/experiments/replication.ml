module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module F = Ckpt_failures

type result = {
  full_platform_makespan : float;
  half_platform_makespan : float;
  replicated_makespan : float;
}

(* One replicated execution: two independent p/2-processor trace sets,
   chunks commit when either replica survives chunk + checkpoint. *)
let simulate_replicated ~job ~period ~traces_a ~traces_b ~start_time =
  let c = Po.Job.checkpoint_cost job in
  let r = Po.Job.recovery_cost job in
  let d = Po.Job.downtime job in
  let next traces t =
    match F.Trace_set.next_platform_failure traces ~after:t with
    | Some (date, _) -> date
    | None -> infinity
  in
  let now = ref start_time in
  let remaining = ref job.Po.Job.work_time in
  while !remaining > 1e-6 do
    let chunk = Float.min period !remaining in
    let finish = !now +. chunk +. c in
    let fa = next traces_a !now and fb = next traces_b !now in
    if fa >= finish || fb >= finish then begin
      (* At least one replica commits the checkpoint; the other adopts
         it (repair overlaps execution). *)
      now := finish;
      remaining := !remaining -. chunk
    end
    else begin
      (* Both replicas struck: lose the chunk, resume after the later
         failure's downtime plus a recovery. *)
      now := Float.max fa fb +. d +. r
    end
  done;
  !now -. start_time

let average_periodic_makespan ~config ~scenario ~replicates =
  let period = Po.Optexp.period scenario.S.Scenario.job in
  ignore config;
  match
    S.Evaluation.average_makespan ~scenario ~policy:(Po.Policy.periodic "rep" ~period)
      ~replicates
  with
  | Some m -> m
  | None -> nan

let run ?(config = Config.default ()) ?processors ~preset ~dist_kind () =
  let p_full =
    match processors with
    | Some p -> p
    | None -> preset.P.Presets.machine.P.Machine.total_processors
  in
  let p_half = max 1 (p_full / 2) in
  let dist = Setup.distribution dist_kind ~mtbf:preset.P.Presets.processor_mtbf in
  let replicates = Config.scale config ~quick:8 ~full:200 in
  let scenario_full =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors:p_full ()
  in
  let scenario_half =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors:p_half ()
  in
  let full_platform_makespan =
    average_periodic_makespan ~config ~scenario:scenario_full ~replicates
  in
  let half_platform_makespan =
    average_periodic_makespan ~config ~scenario:scenario_half ~replicates
  in
  let job_half = scenario_half.S.Scenario.job in
  let period = Po.Optexp.period job_half in
  let acc = ref 0. in
  for replicate = 0 to replicates - 1 do
    let traces_a = S.Scenario.traces scenario_half ~replicate:(2 * replicate) in
    let traces_b = S.Scenario.traces scenario_half ~replicate:((2 * replicate) + 1) in
    acc :=
      !acc
      +. simulate_replicated ~job:job_half ~period ~traces_a ~traces_b
           ~start_time:scenario_half.S.Scenario.start_time
  done;
  {
    full_platform_makespan;
    half_platform_makespan;
    replicated_makespan = !acc /. float_of_int replicates;
  }

let print ?(config = Config.default ()) () =
  Report.print_header "Section 8 extension: replication on platform halves (Petascale)";
  List.iter
    (fun dist_kind ->
      let r = run ~config ~preset:(P.Presets.petascale ()) ~dist_kind () in
      Printf.printf
        "%-18s full-p: %8.2f d   half-p: %8.2f d   replicated half-p: %8.2f d\n%!"
        (Setup.dist_kind_name dist_kind)
        (r.full_platform_makespan /. P.Units.day)
        (r.half_platform_makespan /. P.Units.day)
        (r.replicated_makespan /. P.Units.day))
    [ Setup.Exponential; Setup.Weibull 0.7 ]
