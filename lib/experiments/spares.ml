module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module Summary = Ckpt_numerics.Summary

type t = {
  processors : int;
  replicates : int;
  mean_failures : float;
  max_failures : int;
  q50 : float;
  q90 : float;
  q99 : float;
  suggested_spares : int;
}

let run ?(config = Config.default ()) ?processors () =
  let preset = P.Presets.petascale () in
  let processors =
    match processors with Some p -> p | None -> preset.P.Presets.machine.P.Machine.total_processors
  in
  let dist = Setup.distribution (Setup.Weibull 0.7) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let policy = Po.Dp_policies.dp_next_failure scenario.S.Scenario.job in
  let replicates = Config.scale config ~quick:10 ~full:600 in
  let counts =
    (* Stripe-parallel replicate sweep (claims rebalance at item
       granularity, so a straggler replicate never strands the other
       domains), checkpointed per stripe when the config carries a
       sweep store. *)
    Sweep_store.floats
      ?store:(Sweep_store.of_config config)
      ~experiment:(Printf.sprintf "spares_p%d" processors)
      ~params:[ ("policy", policy.Po.Policy.name) ]
      ~scenario ~replicates
      ~f:(fun replicate ->
        let traces = S.Scenario.traces scenario ~replicate in
        match S.Engine.run ~scenario ~traces ~policy with
        | S.Engine.Completed m -> float_of_int m.S.Engine.failures
        | S.Engine.Policy_failed _ -> nan)
      ()
    |> Array.to_list
    |> List.filter (fun c -> not (Float.is_nan c))
    |> Array.of_list
  in
  let s = Summary.of_array counts in
  let q99 = Summary.quantile counts 0.99 in
  {
    processors;
    replicates;
    mean_failures = Summary.mean s;
    max_failures = int_of_float (Summary.max_value s);
    q50 = Summary.median counts;
    q90 = Summary.quantile counts 0.9;
    q99;
    suggested_spares = int_of_float (ceil q99);
  }

let print ?(config = Config.default ()) () =
  Report.print_header "Section 5.2.2: spare-processor sizing (DPNextFailure, Weibull k=0.7)";
  let t = run ~config () in
  Printf.printf
    "%d processors, %d runs: failures per run mean %.1f, median %.0f, q90 %.0f, q99 %.0f, max %d\n"
    t.processors t.replicates t.mean_failures t.q50 t.q90 t.q99 t.max_failures;
  Printf.printf "suggested spare pool (q99 of per-run failures): %d  (paper: ~38 avg / 66 max)\n%!"
    t.suggested_spares
