module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module Summary = Ckpt_numerics.Summary

type t = {
  processors : int;
  replicates : int;
  mean_failures : float;
  max_failures : int;
  q50 : float;
  q90 : float;
  q99 : float;
  suggested_spares : int;
  profile : S.Evaluation.waste_profile option;
}

(* Per-replicate row persisted through the sweep store: the failure
   count followed by the engine's waste decomposition.  A replicate on
   which the policy failed is a row of NaNs — kept in the store (so
   the row count always equals the replicate count) and skipped when
   aggregating. *)
let row_width = 7

let row_of_outcome = function
  | S.Engine.Completed m ->
      [|
        float_of_int m.S.Engine.failures;
        m.S.Engine.makespan;
        m.S.Engine.useful_work;
        m.S.Engine.checkpoint_time;
        m.S.Engine.wasted_time;
        m.S.Engine.recovery_time;
        m.S.Engine.stall_time;
      |]
  | S.Engine.Policy_failed _ -> Array.make row_width nan

let run ?(config = Config.default ()) ?processors () =
  let preset = P.Presets.petascale () in
  let processors =
    match processors with Some p -> p | None -> preset.P.Presets.machine.P.Machine.total_processors
  in
  let dist = Setup.distribution (Setup.Weibull 0.7) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let policy = Po.Dp_policies.dp_next_failure scenario.S.Scenario.job in
  let replicates = Config.scale config ~quick:10 ~full:600 in
  let rows =
    (* Stripe-parallel replicate sweep (claims rebalance at item
       granularity, so a straggler replicate never strands the other
       domains), checkpointed per stripe when the config carries a
       sweep store. *)
    Sweep_store.vectors
      ?store:(Sweep_store.of_config config)
      ~experiment:(Printf.sprintf "spares_p%d" processors)
      ~params:[ ("policy", policy.Po.Policy.name) ]
      ~scenario ~replicates ~width:row_width
      ~f:(fun replicate ->
        let traces = S.Scenario.traces scenario ~replicate in
        row_of_outcome (S.Engine.run ~scenario ~traces ~policy))
      ()
    |> Array.to_list
    |> List.filter (fun r -> not (Float.is_nan r.(0)))
  in
  let counts = Array.of_list (List.map (fun r -> r.(0)) rows) in
  let profile =
    S.Evaluation.profile_of_components
      (List.map (fun r -> (r.(1), r.(2), r.(3), r.(4), r.(5), r.(6))) rows)
  in
  let s = Summary.of_array counts in
  let q99 = Summary.quantile counts 0.99 in
  {
    processors;
    replicates;
    mean_failures = Summary.mean s;
    max_failures = int_of_float (Summary.max_value s);
    q50 = Summary.median counts;
    q90 = Summary.quantile counts 0.9;
    q99;
    suggested_spares = int_of_float (ceil q99);
    profile;
  }

let print ?(config = Config.default ()) () =
  Report.print_header "Section 5.2.2: spare-processor sizing (DPNextFailure, Weibull k=0.7)";
  let t = run ~config () in
  Printf.printf
    "%d processors, %d runs: failures per run mean %.1f, median %.0f, q90 %.0f, q99 %.0f, max %d\n"
    t.processors t.replicates t.mean_failures t.q50 t.q90 t.q99 t.max_failures;
  Printf.printf "suggested spare pool (q99 of per-run failures): %d  (paper: ~38 avg / 66 max)\n%!"
    t.suggested_spares;
  let csv =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      "processors,replicates,mean_failures,q50_failures,q90_failures,q99_failures,max_failures,suggested_spares";
    List.iter (fun c -> Buffer.add_string buf ("," ^ c)) Report.profile_columns;
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%d,%d,%g,%g,%g,%g,%d,%d" t.processors t.replicates
         t.mean_failures t.q50 t.q90 t.q99 t.max_failures t.suggested_spares);
    List.iter
      (fun c -> Buffer.add_string buf ("," ^ c))
      (Report.profile_values t.profile);
    Buffer.add_char buf '\n';
    Buffer.contents buf
  in
  Report.write_csv
    ~path:(Filename.concat (Report.results_dir ()) "spares.csv")
    csv
