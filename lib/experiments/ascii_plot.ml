type options = {
  width : int;
  height : int;
  log_x : bool;
  y_min : float option;
  y_max : float option;
}

let default_options = { width = 72; height = 18; log_x = false; y_min = None; y_max = None }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '='; '~'; '$'; '^' |]

let finite_points series =
  List.concat_map
    (fun s ->
      List.filter (fun (x, y) -> Float.is_finite x && Float.is_finite y) s.Report.points)
    series

let render ?(options = default_options) series =
  if series = [] then invalid_arg "Ascii_plot.render: no series";
  let points = finite_points series in
  if points = [] then invalid_arg "Ascii_plot.render: no finite points";
  let xs = List.map fst points and ys = List.map snd points in
  let fold f = List.fold_left f in
  let x_of v = if options.log_x then log v /. log 2. else v in
  let x_lo = x_of (fold Float.min infinity xs) and x_hi = x_of (fold Float.max neg_infinity xs) in
  let y_lo =
    match options.y_min with Some v -> v | None -> fold Float.min infinity ys
  in
  let y_hi =
    match options.y_max with Some v -> v | None -> fold Float.max neg_infinity ys
  in
  let y_lo, y_hi = if y_hi <= y_lo then (y_lo -. 0.5, y_lo +. 0.5) else (y_lo, y_hi) in
  let x_lo, x_hi = if x_hi <= x_lo then (x_lo -. 0.5, x_lo +. 0.5) else (x_lo, x_hi) in
  let w = max 16 options.width and h = max 4 options.height in
  let canvas = Array.make_matrix h w ' ' in
  let col x =
    let t = (x_of x -. x_lo) /. (x_hi -. x_lo) in
    min (w - 1) (max 0 (int_of_float (Float.round (t *. float_of_int (w - 1)))))
  in
  let row y =
    let t = (y -. y_lo) /. (y_hi -. y_lo) in
    let r = int_of_float (Float.round (t *. float_of_int (h - 1))) in
    (* Row 0 is the top of the canvas. *)
    h - 1 - min (h - 1) (max 0 r)
  in
  List.iteri
    (fun i s ->
      let glyph = glyphs.(i mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          if Float.is_finite x && Float.is_finite y && y >= y_lo && y <= y_hi then
            canvas.(row y).(col x) <- glyph)
        s.Report.points)
    series;
  let buf = Buffer.create ((h + List.length series + 2) * (w + 12)) in
  Array.iteri
    (fun r line ->
      let label =
        if r = 0 then Printf.sprintf "%10.4g |" y_hi
        else if r = h - 1 then Printf.sprintf "%10.4g |" y_lo
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buf label;
      Buffer.add_string buf (String.init w (fun c -> line.(c)));
      Buffer.add_char buf '\n')
    canvas;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make w '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-*.4g%*.4g%s\n" "" (w / 2)
       (if options.log_x then x_lo else x_lo)
       (w - (w / 2))
       (if options.log_x then x_hi else x_hi)
       (if options.log_x then "  (log2 x)" else ""));
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%10s  %c %s\n" "" glyphs.(i mod Array.length glyphs) s.Report.label))
    series;
  Buffer.contents buf

let print ?options series = print_string (render ?options series)
