module P = Ckpt_platform
module S = Ckpt_simulator

type point = {
  shape : float;
  table : S.Evaluation.table;
}

type t = { points : point list }

let run ?(config = Config.default ()) ?shapes ?processors () =
  let shapes =
    match shapes with
    | Some s -> s
    | None ->
        if config.Config.full then List.init 10 (fun i -> 0.1 *. float_of_int (i + 1))
        else [ 0.3; 0.5; 0.7; 1.0 ]
  in
  let preset = P.Presets.petascale () in
  let processors =
    match processors with Some p -> p | None -> preset.P.Presets.machine.P.Machine.total_processors
  in
  let replicates = Config.scale config ~quick:8 ~full:600 in
  let store = Sweep_store.of_config config in
  let points =
    (* Low shapes are far slower to simulate than high ones (more
       failures per trace): composing with the nested replicate
       fan-out lets domains that finish the easy shapes steal
       replicates from the hard ones. *)
    Ckpt_parallel.Domain_pool.parallel_map_list
      (fun shape ->
        let dist = Setup.distribution (Setup.Weibull shape) ~mtbf:preset.P.Presets.processor_mtbf in
        let scenario =
          Setup.scenario ~config ~dist ~preset
            ~workload_model:P.Workload.Embarrassingly_parallel ~processors ()
        in
        let policies = Setup.policies scenario in
        let table =
          Sweep_store.degradation_table ?store
            ~params:[ ("shape", Printf.sprintf "%g" shape) ]
            ~experiment:(Printf.sprintf "shape_p%d" processors)
            ~scenario ~policies ~replicates ()
        in
        { shape; table })
      shapes
  in
  { points }

let print ?(config = Config.default ()) () =
  Report.print_header
    "Figure 5: degradation vs Weibull shape k (45,208 processors, MTBF 125 y)";
  let t = run ~config () in
  let tables = List.map (fun pt -> (pt.shape, pt.table)) t.points in
  let series = Report.degradation_series tables in
  Report.print_series ~x_label:"shape k" ~y_label:"average makespan degradation" series;
  if List.exists (fun s -> List.length s.Report.points > 1) series then
    Ascii_plot.print
      ~options:{ Ascii_plot.default_options with height = 14; y_max = Some 2. }
      series;
  Report.write_csv
    ~path:(Filename.concat (Report.results_dir ()) "fig5_shape.csv")
    (Report.csv_of_tables ~x_label:"shape" tables)
