(** Appendix D (Figures 98-99): absolute average makespan vs processor
    count for each application profile, under OptExp (Exponential
    failures, constant or platform-dependent checkpoint cost) and
    under DPNextFailure (Weibull) — and the induced optimal
    processor-enrollment count, the paper's Section 8 observation that
    with failures the expected makespan may be minimized by {e fewer}
    than all processors. *)

type curve = {
  workload_name : string;
  points : (int * float) list;  (** (processors, average makespan s) *)
  profiles : (int * Ckpt_simulator.Evaluation.waste_profile) list;
      (** waste decomposition at each point, same keys as [points]. *)
  best_processors : int;  (** argmin of the curve *)
}

type t = {
  title : string;
  curves : curve list;
}

val run :
  ?config:Config.t ->
  ?processor_counts:int list ->
  preset:Ckpt_platform.Presets.t ->
  dist_kind:Setup.dist_kind ->
  policy_kind:[ `Optexp | `Dp_next_failure ] ->
  unit ->
  t

val figure98 : ?config:Config.t -> proportional:bool -> unit -> t
(** OptExp, Exponential, MTBF 125 y; panel (a) constant / (b)
    proportional overhead. *)

val figure99 : ?config:Config.t -> unit -> t
(** DPNextFailure, Weibull k = 0.7. *)

val print : t -> csv:string -> unit
