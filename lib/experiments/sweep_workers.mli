(** Worker-process lifecycle for multi-process sweeps
    ([ckpt sweep --workers N]).

    The parent spawns [N] copies of the current executable (fork +
    exec — never a bare fork, which the OCaml 5 runtime forbids once
    domains exist), each marked by the [CKPT_SWEEP_WORKER] environment
    variable.  Workers re-run the same deterministic experiment
    enumeration against the shared {!Sweep_store} in worker mode, so
    unit distribution needs no coordinator: claim markers in the store
    directory arbitrate who computes what, results land idempotently
    under content keys, and crashed workers' stale claims are reaped.
    The parent waits for every worker, then runs the canonical
    serial-order pass itself — loading completed units, computing any
    the crashed workers left — so worker count and worker failures can
    change only the wall-clock time, never a byte of output. *)

val env_var : string
(** ["CKPT_SWEEP_WORKER"] — set (to the worker index) in worker
    processes only. *)

val workers_var : string
(** ["CKPT_SWEEP_WORKERS"] — default worker count for [ckpt sweep]. *)

val default_workers : unit -> int
(** [CKPT_SWEEP_WORKERS] when set to a positive integer, 1 otherwise. *)

val worker_index : unit -> int option
(** [Some index] when this process is a sweep worker. *)

val log_path : dir:string -> index:int -> string
val stats_path : dir:string -> index:int -> string

val results_scratch : dir:string -> index:int -> string
(** Per-worker scratch directory for the worker's (discarded) CSV
    output, inside the store directory. *)

val run_as_worker : store:Sweep_store.t -> index:int -> (unit -> unit) -> unit
(** Run [f] — the study pass — in worker mode.  Repeats the pass while
    it both computed units and found units busy elsewhere (cheap tail
    rebalancing: completed units just load on a re-pass), then writes
    [worker-<index>.stats.json] into the store directory.  On exception
    the stats file is still written before the exception escapes. *)

type outcome = Finished | Failed of int | Signaled of int

type result = {
  r_index : int;
  r_pid : int;
  r_outcome : outcome;
  r_seconds : float;  (** worker-reported wall time, else parent-measured *)
  r_stats : Sweep_store.stats option;
      (** [None] when the worker died before writing its stats file *)
}

type summary = {
  workers : result list;  (** in index order *)
  crashed : int;  (** workers that did not exit 0 *)
  claims_reaped : int;  (** leftover claims removed after all exits *)
}

val launch :
  store:Sweep_store.t ->
  workers:int ->
  exe:string ->
  args:string array ->
  ?progress:(alive:int -> units:int -> unit) ->
  unit ->
  summary
(** Spawn [workers] copies of [exe] (argv [args]), each with
    [CKPT_SWEEP_WORKER=<index>], [CKPT_DOMAINS] split evenly across
    workers, stdout/stderr to [worker-<index>.log] and
    [CKPT_RESULTS_DIR] pointed at a per-worker scratch directory —
    both inside the store directory.  Waits for every child
    (classifying clean exits, failures and signals), reads the stats
    files, reaps all leftover claims, and returns the summary.
    [progress] is called whenever the number of completed units in the
    store changes.  The caller runs the canonical pass after this
    returns.
    @raise Invalid_argument if [workers < 1]. *)
