(** Figures 2, 3, 4 and 6 (and panel (c) of every Appendix B/C
    figure): average makespan degradation vs number of processors, for
    one platform preset, failure model, workload model and overhead
    model. *)

type point = {
  processors : int;
  table : Ckpt_simulator.Evaluation.table;
}

type t = {
  title : string;
  points : point list;
}

val run :
  ?config:Config.t ->
  ?experiment:string ->
  ?workload_model:Ckpt_platform.Workload.model ->
  ?include_dp_makespan:bool ->
  ?processor_counts:int list ->
  preset:Ckpt_platform.Presets.t ->
  dist_kind:Setup.dist_kind ->
  unit ->
  t
(** [include_dp_makespan] defaults to true for Exponential failures
    (Figures 2-3 include DPMakespan; the Weibull figures cannot,
    Section 4.1) and false otherwise.  Default processor counts come
    from the preset; quick (non-full) runs subsample them to the ends
    and middle of the range.  [experiment] (default ["scaling"]) names
    this sweep in the resumable store when the config carries a
    [sweep_dir] — callers running several scaling sweeps under one
    store must pass distinct names. *)

val print : t -> csv:string -> unit
(** Render one degradation column per policy (plus LowerBound) against
    processor count, and write the CSV. *)

val figure2 : ?config:Config.t -> unit -> t
val figure3 : ?config:Config.t -> unit -> t
val figure4 : ?config:Config.t -> unit -> t
val figure6 : ?config:Config.t -> unit -> t
