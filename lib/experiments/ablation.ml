module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module C = Ckpt_core

type psuc_error_point = {
  chunk_over_mtbf : float;
  relative_error : float;
}

let psuc_approximation_error ?(config = Config.default ()) ?nexact ?napprox ?processors () =
  let preset = P.Presets.petascale () in
  let processors = match processors with Some p -> p | None -> 1 lsl 14 in
  let dist = Setup.distribution (Setup.Weibull 0.7) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let traces = S.Scenario.traces scenario ~replicate:0 in
  let starts = S.Scenario.initial_lifetime_starts scenario traces in
  let t0 = scenario.S.Scenario.start_time in
  let ages = Array.map (fun ls -> Float.max 0. (t0 -. ls)) starts in
  let exact = C.Age_summary.exact_of_ages ages in
  let approx =
    C.Age_summary.build ?nexact ?napprox dist ~processors
      ~iter_ages:(fun f -> Array.iter f ages)
  in
  let platform_mtbf = dist.Ckpt_distributions.Distribution.mean /. float_of_int processors in
  List.init 7 (fun i ->
      let chunk = platform_mtbf /. (2. ** float_of_int i) in
      let pe = C.Age_summary.psuc dist exact ~elapsed:0. ~duration:chunk in
      let pa = C.Age_summary.psuc dist approx ~elapsed:0. ~duration:chunk in
      {
        chunk_over_mtbf = chunk /. platform_mtbf;
        relative_error = abs_float (pa -. pe) /. pe;
      })

type knob_result = {
  label : string;
  average_degradation : float;
  wall_seconds : float;
}

let knob_sweep ?(config = Config.default ()) () =
  let preset = P.Presets.petascale () in
  let processors = 1 lsl 13 in
  let dist = Setup.distribution (Setup.Weibull 0.7) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let job = scenario.S.Scenario.job in
  let replicates = Config.scale config ~quick:6 ~full:100 in
  let variants =
    [
      ("default (ne=10,na=100,trunc=2,X<=150)", Po.Dp_policies.dp_next_failure job);
      ("nexact=0", Po.Dp_policies.dp_next_failure ~nexact:0 job);
      ("nexact=40", Po.Dp_policies.dp_next_failure ~nexact:40 job);
      ("napprox=10", Po.Dp_policies.dp_next_failure ~napprox:10 job);
      ("truncation=1", Po.Dp_policies.dp_next_failure ~truncation_factor:1. job);
      ("truncation=4", Po.Dp_policies.dp_next_failure ~truncation_factor:4. job);
      ("max_states=60", Po.Dp_policies.dp_next_failure ~max_states:60 job);
      ("max_states=300", Po.Dp_policies.dp_next_failure ~max_states:300 job);
    ]
  in
  let baseline = Po.Optexp.policy job in
  List.map
    (fun (label, policy) ->
      let t0 = Unix.gettimeofday () in
      let table =
        S.Evaluation.degradation_table ~scenario ~policies:[ baseline; policy ] ~replicates
      in
      let wall = Unix.gettimeofday () -. t0 in
      let dp = List.nth table.S.Evaluation.results 1 in
      { label; average_degradation = dp.S.Evaluation.average_degradation; wall_seconds = wall })
    variants

let print ?(config = Config.default ()) () =
  Report.print_header "Ablation: DPNextFailure age-summary accuracy (Section 3.3 claim)";
  List.iter
    (fun pt ->
      Printf.printf "chunk = %-8.4f x MTBF_platform   relative Psuc error = %.3e\n"
        pt.chunk_over_mtbf pt.relative_error)
    (psuc_approximation_error ~config ());
  Report.print_header "Ablation: DPNextFailure knobs (8,192 procs, Weibull k=0.7)";
  List.iter
    (fun r ->
      Printf.printf "%-40s degradation vs OptExp-normalized best: %.5f  (%.1f s)\n" r.label
        r.average_degradation r.wall_seconds)
    (knob_sweep ~config ())
