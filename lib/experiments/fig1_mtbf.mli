(** Figure 1: platform MTBF vs number of processors for the two
    rejuvenation options (Weibull shape 0.70, processor MTBF 125 y,
    downtime 60 s, p = 2^4 .. 2^22). *)

type point = {
  processors : int;
  mtbf_rejuvenate_all : float;  (** seconds *)
  mtbf_failed_only : float;
}

val run : ?shape:float -> ?mtbf_years:float -> ?downtime:float -> ?exponents:int list ->
  unit -> point list

val print : ?config:Config.t -> unit -> unit
(** Render the two curves (as [log2 MTBF], like the paper's y-axis)
    and drop a CSV in the results directory. *)
