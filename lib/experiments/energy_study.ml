module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

type point = {
  period : float;
  average_makespan : float;
  average_energy : float;
}

type t = {
  title : string;
  points : point list;
  makespan_optimal_period : float;
  energy_optimal_period : float;
}

let run ?(config = Config.default ()) ?(power = S.Energy.default_power) ?processors ~preset
    ~dist_kind () =
  let processors =
    match processors with Some p -> p | None -> preset.P.Presets.machine.P.Machine.total_processors
  in
  let dist = Setup.distribution dist_kind ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let base = Po.Optexp.period scenario.S.Scenario.job in
  let periods = List.init 9 (fun i -> base *. (2. ** (float_of_int (i - 4) /. 2.))) in
  let replicates = Config.scale config ~quick:8 ~full:200 in
  let raw = S.Energy.makespan_energy_tradeoff ~scenario ~power ~periods ~replicates in
  let points =
    List.map (fun (period, m, e) -> { period; average_makespan = m; average_energy = e }) raw
  in
  let argmin f =
    match points with
    | [] -> nan
    | p0 :: rest ->
        (List.fold_left (fun best p -> if f p < f best then p else best) p0 rest).period
  in
  {
    title =
      Printf.sprintf "Energy/makespan trade-off (%s, %d procs, %s)" preset.P.Presets.label
        processors (Setup.dist_kind_name dist_kind);
    points;
    makespan_optimal_period = argmin (fun p -> p.average_makespan);
    energy_optimal_period = argmin (fun p -> p.average_energy);
  }

let print ?(config = Config.default ()) () =
  let t = run ~config ~preset:(P.Presets.petascale ()) ~dist_kind:(Setup.Weibull 0.7) () in
  Report.print_header t.title;
  Printf.printf "%12s %16s %16s\n" "period (s)" "makespan (d)" "energy (MJ)";
  List.iter
    (fun p ->
      Printf.printf "%12.0f %16.3f %16.1f\n" p.period (p.average_makespan /. P.Units.day)
        (p.average_energy /. 1e6))
    t.points;
  Printf.printf "makespan-optimal period: %.0f s; energy-optimal period: %.0f s\n%!"
    t.makespan_optimal_period t.energy_optimal_period
