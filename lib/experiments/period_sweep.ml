module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

type t = {
  title : string;
  factors : float list;
  sweep : (float * float) list;
  references : (string * float) list;
}

(* Degradations here are normalized by the best reference-policy
   makespan per trace, so the sweep and the heuristics share a
   baseline. *)
let run ?(config = Config.default ()) ?(log2_range = 4) ~scenario ~policies () =
  let replicates = Config.scale config ~quick:6 ~full:600 in
  let base_period = Po.Optexp.period scenario.S.Scenario.job in
  let steps = if config.Config.full then 2 * log2_range * 2 else 2 * log2_range in
  let factors =
    List.init (steps + 1) (fun i ->
        -.float_of_int log2_range +. (float_of_int i *. 2. *. float_of_int log2_range /. float_of_int steps))
  in
  let sweep_policies =
    List.map (fun f -> Po.Policy.periodic (Printf.sprintf "sweep%g" f) ~period:(base_period *. (2. ** f))) factors
  in
  let table =
    S.Evaluation.degradation_table ~scenario ~policies:(policies @ sweep_policies) ~replicates
  in
  let find name =
    List.find_opt (fun r -> r.S.Evaluation.policy_name = name) table.S.Evaluation.results
  in
  let degradation name =
    match find name with
    | Some r when r.S.Evaluation.successes > 0 -> r.S.Evaluation.average_degradation
    | Some _ | None -> nan
  in
  let sweep = List.map (fun f -> (f, degradation (Printf.sprintf "sweep%g" f))) factors in
  let references =
    ("LowerBound", table.S.Evaluation.lower_bound.S.Evaluation.average_degradation)
    :: List.map (fun p -> (p.Po.Policy.name, degradation p.Po.Policy.name)) policies
  in
  { title = "period sweep"; factors; sweep; references }

let sequential ?(config = Config.default ()) ~dist_kind ~mtbf () =
  let dist = Setup.distribution dist_kind ~mtbf in
  let preset = P.Presets.one_processor ~mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors:1 ()
  in
  let policies = Setup.policies ~dp_makespan:true ~period_lb:false scenario in
  let t = run ~config ~log2_range:4 ~scenario ~policies () in
  {
    t with
    title =
      Printf.sprintf "Appendix A: 1 processor, %s, MTBF %g h (period multiplier sweep)"
        (Setup.dist_kind_name dist_kind) (mtbf /. P.Units.hour);
  }

let print t ~csv =
  Report.print_header t.title;
  Printf.printf "heuristic reference levels (avg degradation):\n";
  List.iter (fun (name, v) -> Printf.printf "  %-16s %s\n" name
                (if Float.is_nan v then "-" else Printf.sprintf "%.5f" v))
    t.references;
  let series = [ { Report.label = "PeriodVariation"; points = t.sweep } ] in
  Report.print_series ~x_label:"log2(factor)" ~y_label:"average makespan degradation" series;
  Report.write_csv
    ~path:(Filename.concat (Report.results_dir ()) csv)
    (Report.csv_of_series ~x_label:"log2_factor" series)
