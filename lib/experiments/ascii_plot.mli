(** Terminal line charts for the paper's figures.

    The studies print their series as columns; this renders the same
    data as a character-cell chart (one glyph per series, shared
    canvas, a legend, linear or log-2 x-axis), so
    [dune exec bin/experiments.exe -- fig4] shows the *shape* the
    paper's Figure 4 shows: flat DPNextFailure under rising periodic
    heuristics. *)

type options = {
  width : int;  (** canvas columns (default 72) *)
  height : int;  (** canvas rows (default 18) *)
  log_x : bool;  (** place points by log2 of the abscissa *)
  y_min : float option;  (** clip/extend the y-range *)
  y_max : float option;
}

val default_options : options

val render : ?options:options -> Report.series list -> string
(** Multi-series chart.  NaN points are skipped.  Series beyond the
    glyph alphabet reuse glyphs.  Returns a string ending in a legend
    (one line per series).
    @raise Invalid_argument if every point of every series is NaN or
    the series list is empty. *)

val print : ?options:options -> Report.series list -> unit
