module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

let run ?(config = Config.default ()) ?(processors = 1 lsl 13) ?(shape = 0.7) () =
  let preset = P.Presets.petascale () in
  let dist = Setup.distribution (Setup.Weibull shape) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let job = scenario.S.Scenario.job in
  let dpnf = Po.Dp_policies.dp_next_failure job in
  let replicates = Config.scale config ~quick:12 ~full:200 in
  List.map
    (fun baseline ->
      S.Significance.compare_policies ~scenario ~a:dpnf ~b:baseline ~replicates)
    [ Po.Optexp.policy job; Po.Young.policy job ]

let print ?(config = Config.default ()) () =
  Report.print_header
    "Paired significance: DPNextFailure vs periodic heuristics (Weibull k=0.7, 8,192 procs)";
  List.iter (fun c -> Format.printf "%a@.@." S.Significance.pp c) (run ~config ())
