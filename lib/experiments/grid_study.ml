module P = Ckpt_platform

type cell = {
  preset : P.Presets.t;
  dist_kind : Setup.dist_kind;
  workload_model : P.Workload.model;
  mtbf_years : float;
}

let cell_name c =
  let overhead =
    match c.preset.P.Presets.machine.P.Machine.overhead with
    | P.Overhead.Constant _ -> "constC"
    | P.Overhead.Proportional _ -> "propC"
  in
  Printf.sprintf "%s_%s_%s_%s_mtbf%gy" c.preset.P.Presets.label
    (Setup.dist_kind_name c.dist_kind)
    (P.Workload.model_name c.workload_model)
    overhead c.mtbf_years

let petascale_cell ~proportional ~dist_kind ~workload_model ~mtbf_years =
  {
    preset =
      P.Presets.petascale ~proportional_overhead:proportional
        ~mtbf:(P.Units.of_years mtbf_years) ();
    dist_kind;
    workload_model;
    mtbf_years;
  }

let exascale_cell ~proportional ~dist_kind ~workload_model ~mtbf_years =
  {
    preset =
      P.Presets.exascale ~proportional_overhead:proportional ~mtbf:(P.Units.of_years mtbf_years)
        ();
    dist_kind;
    workload_model;
    mtbf_years;
  }

let dist_kinds = [ Setup.Exponential; Setup.Weibull 0.7 ]

let petascale_cells ~full =
  if full then
    List.concat_map
      (fun proportional ->
        List.concat_map
          (fun dist_kind ->
            List.concat_map
              (fun workload_model ->
                List.map
                  (fun mtbf_years ->
                    petascale_cell ~proportional ~dist_kind ~workload_model ~mtbf_years)
                  [ 125.; 500. ])
              (P.Workload.all_paper_models ()))
          dist_kinds)
      [ false; true ]
  else
    [
      petascale_cell ~proportional:true ~dist_kind:Setup.Exponential
        ~workload_model:P.Workload.Embarrassingly_parallel ~mtbf_years:125.;
      petascale_cell ~proportional:false ~dist_kind:(Setup.Weibull 0.7)
        ~workload_model:(P.Workload.Amdahl 1e-6) ~mtbf_years:125.;
      petascale_cell ~proportional:false ~dist_kind:(Setup.Weibull 0.7)
        ~workload_model:(P.Workload.Numerical_kernel 1.) ~mtbf_years:500.;
    ]

let exascale_cells ~full =
  if full then
    List.concat_map
      (fun dist_kind ->
        List.map
          (fun workload_model ->
            exascale_cell ~proportional:false ~dist_kind ~workload_model ~mtbf_years:1250.)
          (P.Workload.all_paper_models ()))
      dist_kinds
  else
    [
      exascale_cell ~proportional:false ~dist_kind:(Setup.Weibull 0.7)
        ~workload_model:(P.Workload.Numerical_kernel 0.1) ~mtbf_years:1250.;
    ]

let run_cell ?(config = Config.default ()) cell =
  Scaling_study.run ~config
    ~experiment:("grid_" ^ cell_name cell)
    ~workload_model:cell.workload_model ~preset:cell.preset ~dist_kind:cell.dist_kind ()

(* Panels (a)/(b) of each appendix figure: the period-multiplier sweep
   at a small and (in full runs) at the largest enrollment. *)
let print_period_panels ~config cell =
  let counts =
    let all = cell.preset.P.Presets.job_processor_counts in
    let largest = List.nth all (List.length all - 1) in
    if config.Config.full then [ List.hd all; largest ] else [ List.hd all ]
  in
  List.iter
    (fun processors ->
      let dist =
        Setup.distribution cell.dist_kind ~mtbf:cell.preset.P.Presets.processor_mtbf
      in
      let scenario =
        Setup.scenario ~config ~dist ~preset:cell.preset ~workload_model:cell.workload_model
          ~processors ()
      in
      let policies = Setup.policies ~period_lb:false scenario in
      let sweep = Period_sweep.run ~config ~log2_range:8 ~scenario ~policies () in
      Period_sweep.print
        {
          sweep with
          Period_sweep.title =
            Printf.sprintf "%s, %d processors: period-multiplier panel" (cell_name cell)
              processors;
        }
        ~csv:(Printf.sprintf "grid_%s_p%d_sweep.csv" (cell_name cell) processors))
    counts

let print ?(config = Config.default ()) ~cells () =
  List.iter
    (fun cell ->
      let t = run_cell ~config cell in
      Scaling_study.print t ~csv:(Printf.sprintf "grid_%s.csv" (cell_name cell));
      print_period_panels ~config cell)
    cells
