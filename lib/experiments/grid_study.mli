(** Appendices B and C: the full cartesian sweep of
    {platform preset} x {failure model} x {workload model} x
    {overhead model} x {processor MTBF}, each cell producing the
    scaling panel (degradation vs p) of Figures 10-97.

    The complete Petascale grid alone is 2 (overhead) x 6 (workload)
    x 2 (MTBF) x 3 (failure model) = 72 cells; by default a
    representative subset is run (one cell per failure model x
    overhead model), the full grid under [CKPT_FULL]. *)

type cell = {
  preset : Ckpt_platform.Presets.t;
  dist_kind : Setup.dist_kind;
  workload_model : Ckpt_platform.Workload.model;
  mtbf_years : float;
}

val cell_name : cell -> string

val petascale_cells : full:bool -> cell list
val exascale_cells : full:bool -> cell list

val run_cell : ?config:Config.t -> cell -> Scaling_study.t
val print : ?config:Config.t -> cells:cell list -> unit -> unit
