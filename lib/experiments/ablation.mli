(** Ablations of DPNextFailure's approximation knobs (Section 3.3):

    - the age-summary size ([nexact] exact ages + [napprox]
      references), including a direct measurement of the paper's
      claim that the worst relative error on Psuc stays below 0.2%
      for chunks up to one platform MTBF;
    - the work-truncation factor ([min (omega, f * MTBF/p)]);
    - the DP resolution ([max_states]). *)

type psuc_error_point = {
  chunk_over_mtbf : float;  (** chunk duration / platform MTBF *)
  relative_error : float;  (** |approx - exact| / exact *)
}

val psuc_approximation_error :
  ?config:Config.t ->
  ?nexact:int ->
  ?napprox:int ->
  ?processors:int ->
  unit ->
  psuc_error_point list
(** Reproduces the Section 3.3 accuracy study: processor ages are
    taken from a simulated Petascale Weibull platform one failure-rich
    year in; Psuc over the full exact age vector is compared with the
    summarized one for chunks of 2^-i MTBF, i = 0..6. *)

type knob_result = {
  label : string;
  average_degradation : float;
  wall_seconds : float;
}

val knob_sweep : ?config:Config.t -> unit -> knob_result list
(** Degradation and wall-clock of DPNextFailure on the Petascale
    Weibull scenario across knob settings (each normalized against
    the same OptExp baseline). *)

val print : ?config:Config.t -> unit -> unit
