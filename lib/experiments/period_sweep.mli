(** Appendix A (Figures 8-9) and panels (a)/(b) of Appendix B/C:
    average makespan degradation of the plain periodic policy as the
    period is multiplied by 2^f, f = -4..4 (1-processor) or -8..8
    (parallel), around OptExp's period — the "PeriodVariation" curve —
    together with each heuristic's flat reference level. *)

type t = {
  title : string;
  factors : float list;  (** log2 of the multiplicative factor *)
  sweep : (float * float) list;  (** (log2 factor, avg degradation) *)
  references : (string * float) list;
      (** each heuristic's average degradation on the same traces *)
}

val run :
  ?config:Config.t ->
  ?log2_range:int ->
  scenario:Ckpt_simulator.Scenario.t ->
  policies:Ckpt_policies.Policy.t list ->
  unit ->
  t

val sequential :
  ?config:Config.t -> dist_kind:Setup.dist_kind -> mtbf:float -> unit -> t
(** Figures 8 (Exponential) / 9 (Weibull k = 0.7), one MTBF at a
    time. *)

val print : t -> csv:string -> unit
