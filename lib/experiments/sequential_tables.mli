(** Tables 2 and 3: single-processor degradation-from-best for MTBFs
    of 1 hour / 1 day / 1 week, work of 20 days, C = R = 600 s,
    D = 60 s, under Exponential (Table 2) and Weibull k = 0.7
    (Table 3) failures.  All eight heuristics plus LowerBound and
    PeriodLB. *)

type result = {
  mtbf_label : string;
  table : Ckpt_simulator.Evaluation.table;
}

val run :
  ?config:Config.t ->
  dist_kind:Setup.dist_kind ->
  ?mtbfs:(string * float) list ->
  unit ->
  result list
(** Default MTBFs: 1 hour, 1 day, 1 week (paper's Table 1). *)

val print : ?config:Config.t -> dist_kind:Setup.dist_kind -> unit -> unit
