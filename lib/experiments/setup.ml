module D = Ckpt_distributions
module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module F = Ckpt_failures

type dist_kind = Exponential | Weibull of float | Log_based of F.Failure_log.t

let dist_kind_name = function
  | Exponential -> "exponential"
  | Weibull k -> Printf.sprintf "weibull(k=%g)" k
  | Log_based log -> Printf.sprintf "log-based(%d intervals)" (F.Failure_log.count log)

let distribution kind ~mtbf =
  match kind with
  | Exponential -> D.Exponential.of_mtbf ~mtbf
  | Weibull shape -> D.Weibull.of_mtbf ~mtbf ~shape
  | Log_based log -> F.Failure_log.to_distribution log

let scenario ~config ~dist ~preset ~workload_model ~processors ?(group_size = 1) () =
  let workload =
    P.Workload.create ~total_work:preset.P.Presets.total_work ~model:workload_model
  in
  let job =
    Po.Job.of_workload ~dist ~processors ~machine:preset.P.Presets.machine ~workload
  in
  let job = if group_size = 1 then job else Po.Job.with_group_size job group_size in
  S.Scenario.create ~seed:config.Config.seed job

let policies ?(dp_makespan = false) ?(dp_next_failure = true) ?(liu = true) ?(bouguerra = true)
    ?(period_lb = true) scenario =
  let job = scenario.S.Scenario.job in
  let base = [ Po.Young.policy job; Po.Daly.low job; Po.Daly.high job; Po.Optexp.policy job ] in
  let opt flag p = if flag then [ p () ] else [] in
  base
  @ opt bouguerra (fun () -> Po.Bouguerra.policy job)
  @ opt liu (fun () -> Po.Liu.policy job)
  @ opt period_lb (fun () -> S.Period_search.policy scenario)
  @ opt dp_next_failure (fun () -> Po.Dp_policies.dp_next_failure job)
  @ opt dp_makespan (fun () -> Po.Dp_policies.dp_makespan job)
