type series = { label : string; points : (float * float) list }

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let abscissas series =
  List.concat_map (fun s -> List.map fst s.points) series
  |> List.sort_uniq compare

let lookup s x =
  match List.assoc_opt x s.points with
  | Some v -> v
  | None -> nan

let print_series ~x_label ~y_label series =
  Printf.printf "# y: %s\n" y_label;
  Printf.printf "%-14s" x_label;
  List.iter (fun s -> Printf.printf " %14s" s.label) series;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-14g" x;
      List.iter
        (fun s ->
          let v = lookup s x in
          if Float.is_nan v then Printf.printf " %14s" "-" else Printf.printf " %14.5g" v)
        series;
      print_newline ())
    (abscissas series);
  print_string "%!"

let print_table table = Format.printf "%a@." Ckpt_simulator.Evaluation.pp_table table

let degradation_series tables =
  let open Ckpt_simulator in
  let names =
    match tables with
    | [] -> []
    | (_, t) :: _ ->
        "LowerBound" :: List.map (fun r -> r.Evaluation.policy_name) t.Evaluation.results
  in
  List.map
    (fun name ->
      {
        label = name;
        points =
          List.map
            (fun (x, table) ->
              let r =
                if name = "LowerBound" then Some table.Evaluation.lower_bound
                else
                  List.find_opt
                    (fun r -> r.Evaluation.policy_name = name)
                    table.Evaluation.results
              in
              match r with
              | Some r when r.Evaluation.successes > 0 -> (x, r.Evaluation.average_degradation)
              | Some _ | None -> (x, nan))
            tables;
      })
    names

let csv_of_series ~x_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf x_label;
  List.iter (fun s -> Buffer.add_string buf ("," ^ s.label)) series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          let v = lookup s x in
          Buffer.add_string buf (if Float.is_nan v then "," else Printf.sprintf ",%g" v))
        series;
      Buffer.add_char buf '\n')
    (abscissas series);
  Buffer.contents buf

(* -- waste-profile columns ---------------------------------------------------

   The distributional columns appended to every study CSV.  The order
   is fixed and shared between [csv_of_table] (one policy per row) and
   [csv_of_tables] (one abscissa per row, policies across): renderers
   and tests key on these names.  Cells print with [%.10g] — enough
   digits that [useful_s + checkpoint_s + wasted_s + recovery_s +
   stall_s] re-sums to [mk_mean_s] within the engine's accounting
   tolerance from the CSV text alone.  Non-finite values (no runs, or
   an interval with fewer than two runs) leave the cell empty, the
   same convention as the mean columns. *)

let profile_columns =
  [
    "mk_mean_s"; "mk_ci95_s"; "mk_p50_s"; "mk_p95_s"; "mk_p99_s"; "deg_ci95";
    "useful_s"; "checkpoint_s"; "wasted_s"; "recovery_s"; "stall_s";
    "useful_frac"; "checkpoint_frac"; "wasted_frac"; "recovery_frac";
    "stall_frac";
  ]

let profile_values profile =
  let open Ckpt_simulator.Evaluation in
  match profile with
  | None -> List.map (fun _ -> "") profile_columns
  | Some p ->
      let cell v = if Float.is_finite v then Printf.sprintf "%.10g" v else "" in
      List.map cell
        [
          p.mk_mean; p.mk_ci95; p.mk_p50; p.mk_p95; p.mk_p99; p.deg_ci95;
          p.useful_s; p.checkpoint_s; p.wasted_s; p.recovery_s; p.stall_s;
          p.useful_frac; p.checkpoint_frac; p.wasted_frac; p.recovery_frac;
          p.stall_frac;
        ]

let append_cells buf cells = List.iter (fun c -> Buffer.add_string buf ("," ^ c)) cells

let csv_of_table table =
  let open Ckpt_simulator in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "policy,avg_degradation,std_degradation,avg_makespan_s,successes,avg_failures,max_failures";
  List.iter (fun c -> Buffer.add_string buf ("," ^ c)) profile_columns;
  Buffer.add_char buf '\n';
  (* Undefined cells (policy never completed, or a single run with no
     defined deviation) stay empty, as in [csv_of_series]. *)
  let cell v = if Float.is_nan v then "" else Printf.sprintf "%g" v in
  let row (r : Evaluation.policy_result) =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s,%d,%s,%d" r.Evaluation.policy_name
         (cell r.Evaluation.average_degradation)
         (cell r.Evaluation.std_degradation)
         (cell r.Evaluation.average_makespan)
         r.Evaluation.successes
         (cell r.Evaluation.average_failures)
         r.Evaluation.max_failures);
    append_cells buf (profile_values r.Evaluation.profile);
    Buffer.add_char buf '\n'
  in
  row table.Evaluation.lower_bound;
  List.iter row table.Evaluation.results;
  Buffer.contents buf

let result_of_table name (table : Ckpt_simulator.Evaluation.table) =
  let open Ckpt_simulator in
  if name = "LowerBound" then Some table.Evaluation.lower_bound
  else
    List.find_opt (fun r -> r.Evaluation.policy_name = name) table.Evaluation.results

let csv_of_tables ~x_label tables =
  let open Ckpt_simulator in
  let series = degradation_series tables in
  let names = List.map (fun s -> s.label) series in
  let buf = Buffer.create 4096 in
  (* The leading columns — header names, row values, formatting — are
     byte-identical to [csv_of_series ~x_label (degradation_series
     tables)]: downstream consumers of the pre-profile CSVs keep
     parsing unchanged, the distributional columns only append. *)
  Buffer.add_string buf x_label;
  List.iter (fun n -> Buffer.add_string buf ("," ^ n)) names;
  List.iter
    (fun n ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf ",%s_%s" n c))
        profile_columns)
    names;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          let v = lookup s x in
          Buffer.add_string buf (if Float.is_nan v then "," else Printf.sprintf ",%g" v))
        series;
      let table = List.assoc_opt x tables in
      List.iter
        (fun n ->
          let profile =
            match table with
            | None -> None
            | Some t -> (
                match result_of_table n t with
                | Some r -> r.Evaluation.profile
                | None -> None)
          in
          append_cells buf (profile_values profile))
        names;
      Buffer.add_char buf '\n')
    (abscissas series);
  Buffer.contents buf

let results_dir () =
  match Sys.getenv_opt "CKPT_RESULTS_DIR" with Some d when d <> "" -> d | _ -> "results"

let write_csv ?(meta = []) ~path contents =
  (* Atomic (tempfile + fsync + rename): a crash or a concurrent
     reader never sees a torn CSV, and a genuine mkdir failure raises
     here instead of being swallowed and resurfacing as a confusing
     open error. *)
  Ckpt_store.Atomic_file.write ~path contents;
  (* Every artifact carries its provenance: "<path>.meta.json" with
     the git revision, command line, CKPT_* knobs, domain count and
     the caller's parameters. *)
  Ckpt_telemetry.Provenance.write_sidecar ~extra:meta ~path ()
