type series = { label : string; points : (float * float) list }

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let abscissas series =
  List.concat_map (fun s -> List.map fst s.points) series
  |> List.sort_uniq compare

let lookup s x =
  match List.assoc_opt x s.points with
  | Some v -> v
  | None -> nan

let print_series ~x_label ~y_label series =
  Printf.printf "# y: %s\n" y_label;
  Printf.printf "%-14s" x_label;
  List.iter (fun s -> Printf.printf " %14s" s.label) series;
  print_newline ();
  List.iter
    (fun x ->
      Printf.printf "%-14g" x;
      List.iter
        (fun s ->
          let v = lookup s x in
          if Float.is_nan v then Printf.printf " %14s" "-" else Printf.printf " %14.5g" v)
        series;
      print_newline ())
    (abscissas series);
  print_string "%!"

let print_table table = Format.printf "%a@." Ckpt_simulator.Evaluation.pp_table table

let degradation_series tables =
  let open Ckpt_simulator in
  let names =
    match tables with
    | [] -> []
    | (_, t) :: _ ->
        "LowerBound" :: List.map (fun r -> r.Evaluation.policy_name) t.Evaluation.results
  in
  List.map
    (fun name ->
      {
        label = name;
        points =
          List.map
            (fun (x, table) ->
              let r =
                if name = "LowerBound" then Some table.Evaluation.lower_bound
                else
                  List.find_opt
                    (fun r -> r.Evaluation.policy_name = name)
                    table.Evaluation.results
              in
              match r with
              | Some r when r.Evaluation.successes > 0 -> (x, r.Evaluation.average_degradation)
              | Some _ | None -> (x, nan))
            tables;
      })
    names

let csv_of_series ~x_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf x_label;
  List.iter (fun s -> Buffer.add_string buf ("," ^ s.label)) series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (Printf.sprintf "%g" x);
      List.iter
        (fun s ->
          let v = lookup s x in
          Buffer.add_string buf (if Float.is_nan v then "," else Printf.sprintf ",%g" v))
        series;
      Buffer.add_char buf '\n')
    (abscissas series);
  Buffer.contents buf

let csv_of_table table =
  let open Ckpt_simulator in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "policy,avg_degradation,std_degradation,avg_makespan_s,successes,avg_failures,max_failures\n";
  (* Undefined cells (policy never completed, or a single run with no
     defined deviation) stay empty, as in [csv_of_series]. *)
  let cell v = if Float.is_nan v then "" else Printf.sprintf "%g" v in
  let row (r : Evaluation.policy_result) =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s,%d,%s,%d\n" r.Evaluation.policy_name
         (cell r.Evaluation.average_degradation)
         (cell r.Evaluation.std_degradation)
         (cell r.Evaluation.average_makespan)
         r.Evaluation.successes
         (cell r.Evaluation.average_failures)
         r.Evaluation.max_failures)
  in
  row table.Evaluation.lower_bound;
  List.iter row table.Evaluation.results;
  Buffer.contents buf

let results_dir () =
  match Sys.getenv_opt "CKPT_RESULTS_DIR" with Some d when d <> "" -> d | _ -> "results"

let write_csv ?(meta = []) ~path contents =
  (* Atomic (tempfile + fsync + rename): a crash or a concurrent
     reader never sees a torn CSV, and a genuine mkdir failure raises
     here instead of being swallowed and resurfacing as a confusing
     open error. *)
  Ckpt_store.Atomic_file.write ~path contents;
  (* Every artifact carries its provenance: "<path>.meta.json" with
     the git revision, command line, CKPT_* knobs, domain count and
     the caller's parameters. *)
  Ckpt_telemetry.Provenance.write_sidecar ~extra:meta ~path ()
