module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

type result = {
  policy_name : string;
  average_makespan : float;
  average_degradation : float;
}

let profile ~progress =
  let c = 600. *. (0.5 +. progress) in
  (c, c)

let run ?(config = Config.default ()) ?(processors = 1 lsl 13) () =
  let preset = P.Presets.petascale () in
  let dist = Setup.distribution (Setup.Weibull 0.7) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors ()
  in
  let job = scenario.S.Scenario.job in
  let replicates = Config.scale config ~quick:8 ~full:200 in
  let contenders =
    [
      ("OptExp(nominal C)", Po.Optexp.policy job);
      ("DPNextFailure(nominal C)", Po.Dp_policies.dp_next_failure job);
      ("DPNextFailure(profiled C)", Po.Dp_policies.dp_next_failure ~cost_profile:profile job);
    ]
  in
  (* All contenders execute under the true progress-dependent costs. *)
  let totals = Array.make (List.length contenders) 0. in
  let bests = ref 0. in
  for replicate = 0 to replicates - 1 do
    let traces = S.Scenario.traces scenario ~replicate in
    let makespans =
      List.map
        (fun (_, policy) ->
          match S.Engine.run_with_cost_profile ~cost_profile:profile ~scenario ~traces ~policy with
          | S.Engine.Completed m -> m.S.Engine.makespan
          | S.Engine.Policy_failed _ -> infinity)
        contenders
    in
    let best = List.fold_left Float.min infinity makespans in
    bests := !bests +. best;
    List.iteri (fun i m -> totals.(i) <- totals.(i) +. m) makespans
  done;
  let n = float_of_int replicates in
  List.mapi
    (fun i (policy_name, _) ->
      {
        policy_name;
        average_makespan = totals.(i) /. n;
        average_degradation = totals.(i) /. !bests;
      })
    contenders

let print ?(config = Config.default ()) () =
  Report.print_header
    "Conclusion extension: progress-dependent checkpoint cost (C grows 0.5x -> 1.5x)";
  List.iter
    (fun r ->
      Printf.printf "%-28s avg makespan %10.0f s   degradation %.5f\n" r.policy_name
        r.average_makespan r.average_degradation)
    (run ~config ());
  print_endline "The profile-aware DP shifts checkpoints toward the cheap early phase."
