module F = Ckpt_failures
module Units = Ckpt_platform.Units

type point = {
  processors : int;
  mtbf_rejuvenate_all : float;
  mtbf_failed_only : float;
}

let run ?(shape = 0.70) ?(mtbf_years = 125.) ?(downtime = 60.) ?exponents () =
  let exponents = match exponents with Some e -> e | None -> List.init 19 (fun i -> i + 4) in
  F.Rejuvenation.figure1_series ~mtbf:(Units.of_years mtbf_years) ~shape ~downtime
    ~processor_exponents:exponents
  |> List.map (fun (p, with_r, without_r) ->
         { processors = p; mtbf_rejuvenate_all = with_r; mtbf_failed_only = without_r })

let print ?config:_ () =
  Report.print_header
    "Figure 1: platform MTBF vs processors (Weibull k=0.70, MTBF 125 y, D=60 s)";
  let points = run () in
  let series =
    [
      {
        Report.label = "rejuvenate-all";
        points =
          List.map
            (fun p -> (float_of_int p.processors, log (p.mtbf_rejuvenate_all) /. log 2.))
            points;
      };
      {
        Report.label = "failed-only";
        points =
          List.map (fun p -> (float_of_int p.processors, log p.mtbf_failed_only /. log 2.)) points;
      };
    ]
  in
  Report.print_series ~x_label:"processors" ~y_label:"log2(platform MTBF in s)" series;
  Report.write_csv
    ~path:(Filename.concat (Report.results_dir ()) "fig1_mtbf.csv")
    (Report.csv_of_series ~x_label:"processors" series)
