module P = Ckpt_platform
module S = Ckpt_simulator

type point = {
  processors : int;
  table : S.Evaluation.table;
}

type t = {
  title : string;
  points : point list;
}

(* Quick runs keep the endpoints and the middle of the processor
   sweep; full runs keep everything. *)
let subsample full counts =
  if full then counts
  else begin
    match counts with
    | [] | [ _ ] | [ _; _ ] | [ _; _; _ ] -> counts
    | _ ->
        let n = List.length counts in
        List.filteri (fun i _ -> i = 0 || i = n / 2 || i = n - 1) counts
  end

let run ?(config = Config.default ()) ?(experiment = "scaling")
    ?(workload_model = P.Workload.Embarrassingly_parallel) ?include_dp_makespan
    ?processor_counts ~preset ~dist_kind () =
  let dp_makespan =
    match include_dp_makespan with
    | Some b -> b
    | None -> ( match dist_kind with Setup.Exponential -> true | _ -> false)
  in
  let counts =
    match processor_counts with
    | Some c -> c
    | None -> subsample config.Config.full preset.P.Presets.job_processor_counts
  in
  let dist = Setup.distribution dist_kind ~mtbf:preset.P.Presets.processor_mtbf in
  let replicates = Config.scale config ~quick:8 ~full:600 in
  let store = Sweep_store.of_config config in
  let sweep_params =
    [
      ("preset", preset.P.Presets.label);
      ("dist_kind", Setup.dist_kind_name dist_kind);
      ("workload", P.Workload.model_name workload_model);
    ]
  in
  (* Each point is an independent evaluation (own policies, traces,
     engine state): fan out across domains.  Points differ wildly in
     cost (more processors, slower replicates), but under the
     work-stealing scheduler each point's replicate fan-out composes
     with this one, so domains finishing a cheap point steal replicate
     work from the expensive ones instead of idling at the join. *)
  let points =
    Ckpt_parallel.Domain_pool.parallel_map_list
      (fun processors ->
        let scenario = Setup.scenario ~config ~dist ~preset ~workload_model ~processors () in
        let policies = Setup.policies ~dp_makespan scenario in
        let table =
          Sweep_store.degradation_table ?store ~params:sweep_params
            ~experiment:(Printf.sprintf "%s_p%d" experiment processors)
            ~scenario ~policies ~replicates ()
        in
        { processors; table })
      counts
  in
  let title =
    Printf.sprintf "%s platform, %s failures, %s, %a" preset.P.Presets.label
      (Setup.dist_kind_name dist_kind)
      (P.Workload.model_name workload_model)
      (fun () o -> Format.asprintf "%a" P.Overhead.pp o)
      preset.P.Presets.machine.P.Machine.overhead
  in
  { title; points }

let print t ~csv =
  Report.print_header t.title;
  let tables = List.map (fun pt -> (float_of_int pt.processors, pt.table)) t.points in
  let series = Report.degradation_series tables in
  Report.print_series ~x_label:"processors" ~y_label:"average makespan degradation" series;
  if List.exists (fun s -> List.length s.Report.points > 1) series then
    Ascii_plot.print
      ~options:{ Ascii_plot.default_options with log_x = true; height = 14 }
      series;
  Report.write_csv
    ~meta:[ ("experiment", t.title) ]
    ~path:(Filename.concat (Report.results_dir ()) csv)
    (Report.csv_of_tables ~x_label:"processors" tables)

let figure2 ?(config = Config.default ()) () =
  run ~config ~preset:(P.Presets.petascale ()) ~dist_kind:Setup.Exponential ()

let figure3 ?(config = Config.default ()) () =
  run ~config ~preset:(P.Presets.exascale ()) ~dist_kind:Setup.Exponential ()

let figure4 ?(config = Config.default ()) () =
  run ~config ~preset:(P.Presets.petascale ()) ~dist_kind:(Setup.Weibull 0.7) ()

let figure6 ?(config = Config.default ()) () =
  run ~config ~preset:(P.Presets.exascale ()) ~dist_kind:(Setup.Weibull 0.7) ()
