(** Section 8 (future work, implemented as an extension): replicate
    the job on the two halves of the platform, synchronizing after
    each checkpoint.

    Model: the two replicas each execute every chunk on [p/2]
    processors; a chunk commits as soon as either replica checkpoints
    it (the laggard adopts the checkpoint).  If both replicas are
    struck, the chunk is lost and execution resumes after the later
    failure plus downtime and recovery.  Replica repair overlaps with
    the survivor's execution, so it costs nothing when at least one
    replica survives — an optimistic simplification, stated in
    DESIGN.md, adequate for the qualitative question the paper poses
    (does replication beat enrolment of the whole platform?). *)

type result = {
  full_platform_makespan : float;  (** periodic policy on p procs *)
  half_platform_makespan : float;  (** same on p/2 procs *)
  replicated_makespan : float;  (** two synchronized p/2 replicas *)
}

val run :
  ?config:Config.t ->
  ?processors:int ->
  preset:Ckpt_platform.Presets.t ->
  dist_kind:Setup.dist_kind ->
  unit ->
  result
(** Averages over the configured replicates; the checkpoint period is
    OptExp's for each configuration. *)

val print : ?config:Config.t -> unit -> unit
(** Runs the study on the Petascale preset with Weibull k = 0.7 (where
    the question is interesting) and Exponential failures. *)
