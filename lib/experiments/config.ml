type t = { replicates : int; full : bool; seed : int64; sweep_dir : string option }

let getenv_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let default () =
  let full = match Sys.getenv_opt "CKPT_FULL" with Some ("1" | "true") -> true | _ -> false in
  let replicates =
    match getenv_int "CKPT_TRACES" with
    | Some n when n > 0 -> n
    | _ -> if full then 600 else 0
  in
  let seed =
    match getenv_int "CKPT_SEED" with Some s -> Int64.of_int s | None -> 0x5EEDL
  in
  let sweep_dir =
    match Sys.getenv_opt "CKPT_SWEEP_DIR" with
    | Some d when String.trim d <> "" -> Some (String.trim d)
    | Some _ | None -> None
  in
  { replicates; full; seed; sweep_dir }

let quick = { replicates = 4; full = false; seed = 0x5EEDL; sweep_dir = None }

let scale t ~quick ~full =
  if t.replicates > 0 then t.replicates else if t.full then full else quick
