module P = Ckpt_platform
module S = Ckpt_simulator

type result = {
  mtbf_label : string;
  table : S.Evaluation.table;
}

let default_mtbfs =
  [ ("1 hour", P.Units.hour); ("1 day", P.Units.day); ("1 week", P.Units.week) ]

let run ?(config = Config.default ()) ~dist_kind ?(mtbfs = default_mtbfs) () =
  (* Only three MTBF points: on a wide machine the parallelism comes
     from each point's replicate fan-out, which the work-stealing
     scheduler lets the remaining domains join instead of idling. *)
  Ckpt_parallel.Domain_pool.parallel_map_list
    (fun (mtbf_label, mtbf) ->
      let dist = Setup.distribution dist_kind ~mtbf in
      let preset = P.Presets.one_processor ~mtbf in
      let scenario =
        Setup.scenario ~config ~dist ~preset
          ~workload_model:P.Workload.Embarrassingly_parallel ~processors:1 ()
      in
      let policies = Setup.policies ~dp_makespan:true scenario in
      let replicates = Config.scale config ~quick:8 ~full:600 in
      { mtbf_label; table = S.Evaluation.degradation_table ~scenario ~policies ~replicates })
    mtbfs

let print ?(config = Config.default ()) ~dist_kind () =
  let name = Setup.dist_kind_name dist_kind in
  let number = match dist_kind with Setup.Exponential -> "2" | _ -> "3" in
  Report.print_header
    (Printf.sprintf "Table %s: single processor, %s failures (degradation from best)" number name);
  List.iter
    (fun r ->
      Printf.printf "-- MTBF = %s --\n" r.mtbf_label;
      Report.print_table r.table;
      Report.write_csv
        ~meta:[ ("mtbf", r.mtbf_label); ("distribution", name) ]
        ~path:
          (Filename.concat (Report.results_dir ())
             (Printf.sprintf "table%s_%s.csv" number
                (String.map (fun c -> if c = ' ' then '_' else c) r.mtbf_label)))
        (Report.csv_of_table r.table))
    (run ~config ~dist_kind ())
