module P = Ckpt_platform

type entry = {
  id : string;
  description : string;
  run : Config.t -> unit;
}

(* Each experiment owns the stage timers while it runs: without the
   scope, back-to-back studies in one `experiments` process would
   accumulate (and double-report) each other's stages. *)
let scoped e =
  { e with run = (fun config -> Ckpt_simulator.Instrument.scoped ~label:e.id (fun () -> e.run config)) }

let all () =
  List.map scoped
  [
    {
      id = "fig1";
      description = "platform MTBF vs processors under both rejuvenation options";
      run = (fun config -> Fig1_mtbf.print ~config ());
    };
    {
      id = "table2";
      description = "single processor, Exponential failures";
      run = (fun config -> Sequential_tables.print ~config ~dist_kind:Setup.Exponential ());
    };
    {
      id = "table3";
      description = "single processor, Weibull k=0.7 failures";
      run = (fun config -> Sequential_tables.print ~config ~dist_kind:(Setup.Weibull 0.7) ());
    };
    {
      id = "fig2";
      description = "Petascale, Exponential: degradation vs processors";
      run =
        (fun config -> Scaling_study.print (Scaling_study.figure2 ~config ()) ~csv:"fig2.csv");
    };
    {
      id = "fig3";
      description = "Exascale, Exponential: degradation vs processors";
      run =
        (fun config -> Scaling_study.print (Scaling_study.figure3 ~config ()) ~csv:"fig3.csv");
    };
    {
      id = "fig4";
      description = "Petascale, Weibull k=0.7: degradation vs processors";
      run =
        (fun config -> Scaling_study.print (Scaling_study.figure4 ~config ()) ~csv:"fig4.csv");
    };
    {
      id = "fig5";
      description = "degradation vs Weibull shape k at 45,208 processors";
      run = (fun config -> Shape_study.print ~config ());
    };
    {
      id = "fig6";
      description = "Exascale, Weibull k=0.7: degradation vs processors";
      run =
        (fun config -> Scaling_study.print (Scaling_study.figure6 ~config ()) ~csv:"fig6.csv");
    };
    {
      id = "fig7";
      description = "Petascale, log-based failures (LANL cluster 19 stand-in)";
      run = (fun config -> Logbased_study.print ~config ~cluster:Logbased_study.Cluster19 ());
    };
    {
      id = "table4";
      description = "45,208 processors, Weibull: degradation table + spare statistics";
      run = (fun config -> Table4.print ~config ());
    };
    {
      id = "fig8";
      description = "Appendix A: 1-proc Exponential period-multiplier sweeps";
      run =
        (fun config ->
          List.iter
            (fun mtbf ->
              Period_sweep.print
                (Period_sweep.sequential ~config ~dist_kind:Setup.Exponential ~mtbf ())
                ~csv:(Printf.sprintf "fig8_mtbf%gh.csv" (mtbf /. P.Units.hour)))
            [ P.Units.hour; P.Units.day; P.Units.week ]);
    };
    {
      id = "fig9";
      description = "Appendix A: 1-proc Weibull period-multiplier sweeps";
      run =
        (fun config ->
          List.iter
            (fun mtbf ->
              Period_sweep.print
                (Period_sweep.sequential ~config ~dist_kind:(Setup.Weibull 0.7) ~mtbf ())
                ~csv:(Printf.sprintf "fig9_mtbf%gh.csv" (mtbf /. P.Units.hour)))
            [ P.Units.hour; P.Units.day; P.Units.week ]);
    };
    {
      id = "grid-peta";
      description = "Appendix B: Petascale grid (workload x overhead x MTBF x failures)";
      run =
        (fun config ->
          Grid_study.print ~config
            ~cells:(Grid_study.petascale_cells ~full:config.Config.full) ());
    };
    {
      id = "grid-exa";
      description = "Appendix C: Exascale grid";
      run =
        (fun config ->
          Grid_study.print ~config ~cells:(Grid_study.exascale_cells ~full:config.Config.full) ());
    };
    {
      id = "fig98";
      description = "Appendix D: makespan vs p per application profile (OptExp, Exponential)";
      run =
        (fun config ->
          Makespan_vs_p.print (Makespan_vs_p.figure98 ~config ~proportional:false ()) ~csv:"fig98a.csv";
          Makespan_vs_p.print (Makespan_vs_p.figure98 ~config ~proportional:true ()) ~csv:"fig98b.csv");
    };
    {
      id = "fig99";
      description = "Appendix D: makespan vs p per application profile (DPNextFailure, Weibull)";
      run =
        (fun config -> Makespan_vs_p.print (Makespan_vs_p.figure99 ~config ()) ~csv:"fig99.csv");
    };
    {
      id = "fig100";
      description = "Appendix E: log-based failures, cluster 18 stand-in";
      run = (fun config -> Logbased_study.print ~config ~cluster:Logbased_study.Cluster18 ());
    };
    {
      id = "ablation";
      description = "extension: DPNextFailure approximation-knob ablations";
      run = (fun config -> Ablation.print ~config ());
    };
    {
      id = "energy";
      description = "extension: energy/makespan trade-off of the checkpoint period";
      run = (fun config -> Energy_study.print ~config ());
    };
    {
      id = "replication";
      description = "extension: job replication on platform halves (Section 8)";
      run = (fun config -> Replication.print ~config ());
    };
    {
      id = "significance";
      description = "paired sign test: DPNextFailure vs OptExp/Young on Weibull failures";
      run = (fun config -> Significance_study.print ~config ());
    };
    {
      id = "spares";
      description = "Section 5.2.2: spare-processor sizing from per-run failure counts";
      run = (fun config -> Spares.print ~config ());
    };
    {
      id = "variable-cost";
      description = "extension: progress-dependent checkpoint/recovery costs (conclusion)";
      run = (fun config -> Variable_cost.print ~config ());
    };
    {
      id = "sweep-smoke";
      description = "tiny scaling sweep for exercising the resumable sweep store";
      run =
        (fun config ->
          (* Deliberately small (64-processor platform, short traces):
             seconds per unit, so the kill-and-resume smoke test in
             test/run_matrix.sh can interrupt it mid-sweep and still
             finish the resumed run quickly. *)
          let preset =
            {
              P.Presets.label = "mini";
              machine =
                P.Machine.create ~total_processors:64 ~downtime:50.
                  ~overhead:(P.Overhead.constant 100.);
              total_work = 4e6;
              processor_mtbf = 2e5;
              job_processor_counts = [ 16; 64 ];
            }
          in
          Scaling_study.print
            (Scaling_study.run ~config ~experiment:"sweep_smoke" ~preset
               ~dist_kind:(Setup.Weibull 0.7) ())
            ~csv:"sweep_smoke.csv");
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) (all ())

let ids () = List.map (fun e -> e.id) (all ())

let run_all config = List.iter (fun e -> e.run config) (all ())
