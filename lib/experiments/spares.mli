(** Section 5.2.2: how many spare processors does a site need so that
    a job never stalls waiting for hardware?

    The paper observes, for a ~10.5-day DPNextFailure run on 45,208
    processors, 38.0 failures on average and at most 66 — so "circa 1"
    spare per ~thousand processors suffices (failed units return to
    service after their downtime, so the in-flight repair count, not
    the total, is what spares must cover; the total is the
    conservative upper bound reported here, as in the paper). *)

type t = {
  processors : int;
  replicates : int;
  mean_failures : float;
  max_failures : int;
  q50 : float;
  q90 : float;
  q99 : float;
  suggested_spares : int;  (** ceiling of the 99th percentile. *)
  profile : Ckpt_simulator.Evaluation.waste_profile option;
      (** waste decomposition of the completed runs ([None] if none
          completed); [deg_ci95] is [nan] (single policy). *)
}

val run : ?config:Config.t -> ?processors:int -> unit -> t
(** DPNextFailure on the Petascale Weibull scenario. *)

val print : ?config:Config.t -> unit -> unit
(** Prints the sizing summary and writes [spares.csv] (failure
    quantiles plus the {!Report.profile_columns} block) under
    {!Report.results_dir}. *)
