(** Shared construction of scenarios and policy rosters. *)

type dist_kind =
  | Exponential
  | Weibull of float  (** shape [k] *)
  | Log_based of Ckpt_failures.Failure_log.t

val dist_kind_name : dist_kind -> string

val distribution : dist_kind -> mtbf:float -> Ckpt_distributions.Distribution.t
(** [mtbf] is ignored for [Log_based] (the log fixes the scale). *)

val scenario :
  config:Config.t ->
  dist:Ckpt_distributions.Distribution.t ->
  preset:Ckpt_platform.Presets.t ->
  workload_model:Ckpt_platform.Workload.model ->
  processors:int ->
  ?group_size:int ->
  unit ->
  Ckpt_simulator.Scenario.t

val policies :
  ?dp_makespan:bool ->
  ?dp_next_failure:bool ->
  ?liu:bool ->
  ?bouguerra:bool ->
  ?period_lb:bool ->
  Ckpt_simulator.Scenario.t ->
  Ckpt_policies.Policy.t list
(** The Section 4.1 roster for a scenario: Young, DalyLow, DalyHigh,
    then the optional members.  PeriodLB runs its (costly) offline
    search at construction. *)
