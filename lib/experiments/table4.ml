module P = Ckpt_platform
module S = Ckpt_simulator

type t = {
  table : S.Evaluation.table;
  dp_average_failures : float;
  dp_max_failures : int;
  dp_min_chunk : float;
  dp_max_chunk : float;
}

let run ?(config = Config.default ()) () =
  let preset = P.Presets.petascale () in
  let dist = Setup.distribution (Setup.Weibull 0.7) ~mtbf:preset.P.Presets.processor_mtbf in
  let scenario =
    Setup.scenario ~config ~dist ~preset ~workload_model:P.Workload.Embarrassingly_parallel
      ~processors:preset.P.Presets.machine.P.Machine.total_processors ()
  in
  (* The paper's Table 4 omits Liu (it fails at this scale/k). *)
  let policies = Setup.policies ~liu:false scenario in
  let replicates = Config.scale config ~quick:10 ~full:600 in
  let table = S.Evaluation.degradation_table ~scenario ~policies ~replicates in
  let dp =
    List.find_opt
      (fun r -> r.S.Evaluation.policy_name = "DPNextFailure")
      table.S.Evaluation.results
  in
  match dp with
  | None -> invalid_arg "Table4.run: DPNextFailure missing from roster"
  | Some dp ->
      {
        table;
        dp_average_failures = dp.S.Evaluation.average_failures;
        dp_max_failures = dp.S.Evaluation.max_failures;
        dp_min_chunk = dp.S.Evaluation.min_chunk;
        dp_max_chunk = dp.S.Evaluation.max_chunk;
      }

let print ?(config = Config.default ()) () =
  Report.print_header
    "Table 4: 45,208 processors, Weibull k=0.7, embarrassingly parallel, constant C";
  let t = run ~config () in
  Report.print_table t.table;
  Report.write_csv
    ~meta:[ ("experiment", "Table 4: 45,208 processors, Weibull k=0.7") ]
    ~path:(Filename.concat (Report.results_dir ()) "table4.csv")
    (Report.csv_of_table t.table);
  Printf.printf
    "DPNextFailure failures per run: avg %.1f, max %d (paper: ~38 avg, 66 max)\n"
    t.dp_average_failures t.dp_max_failures;
  Printf.printf "DPNextFailure chunk sizes: %.0f s .. %.0f s (paper: 2,984 .. 6,108 s)\n%!"
    t.dp_min_chunk t.dp_max_chunk
