(** Uniform textual/CSV output for experiment results. *)

type series = {
  label : string;
  points : (float * float) list;  (** (abscissa, value); NaN = absent *)
}

val print_header : string -> unit
(** Banner with the experiment id and title. *)

val print_series : x_label:string -> y_label:string -> series list -> unit
(** Columnar rendering: one row per abscissa, one column per series
    (the textual equivalent of a paper figure). *)

val print_table : Ckpt_simulator.Evaluation.table -> unit

val degradation_series :
  (float * Ckpt_simulator.Evaluation.table) list -> series list
(** One series per policy (LowerBound first) across a sweep of
    evaluation tables: points are (abscissa, average degradation),
    NaN where the policy completed no run. *)

val csv_of_series : x_label:string -> series list -> string

val profile_columns : string list
(** Column names of the distributional waste-profile block appended to
    study CSVs, in emission order: mean/CI/quantile makespans, the
    degradation CI, waste decomposition in mean seconds and as
    fractions of the mean makespan
    ({!Ckpt_simulator.Evaluation.waste_profile}). *)

val profile_values : Ckpt_simulator.Evaluation.waste_profile option -> string list
(** Rendered cells matching {!profile_columns}: [%.10g] for finite
    values, the empty string for non-finite ones (NaN/inf) or a
    [None] profile — no CSV cell ever reads "nan". *)

val csv_of_table : Ckpt_simulator.Evaluation.table -> string
(** One row per policy (LowerBound first): name, average degradation,
    standard deviation, average makespan, successes, failure stats,
    then the {!profile_columns} block. *)

val csv_of_tables :
  x_label:string -> (float * Ckpt_simulator.Evaluation.table) list -> string
(** Sweep CSV: the leading columns are byte-identical to
    [csv_of_series ~x_label (degradation_series tables)] (one row per
    abscissa, one degradation column per policy), followed by the
    {!profile_columns} block per policy, columns named
    ["<policy>_<column>"]. *)

val write_csv : ?meta:(string * string) list -> path:string -> string -> unit
(** Atomically write the contents ({!Ckpt_store.Atomic_file.write}:
    parent directories created as needed, tempfile + fsync + rename,
    so a crash or concurrent reader never sees a torn CSV), plus a
    provenance sidecar [<path>.meta.json]
    ({!Ckpt_telemetry.Provenance}) with [meta] as its caller-supplied
    parameters (e.g. scenario settings, seeds). *)

val results_dir : unit -> string
(** Where experiment CSVs land: [$CKPT_RESULTS_DIR] or ["results"]. *)
