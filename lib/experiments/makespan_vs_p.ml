module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

type curve = {
  workload_name : string;
  points : (int * float) list;
  best_processors : int;
}

type t = {
  title : string;
  curves : curve list;
}

let run ?(config = Config.default ()) ?processor_counts ~preset ~dist_kind ~policy_kind () =
  let counts =
    match processor_counts with
    | Some c -> c
    | None ->
        let all = preset.P.Presets.job_processor_counts in
        if config.Config.full then all
        else begin
          match all with
          | a :: _ -> [ a; List.nth all (List.length all / 2); List.nth all (List.length all - 1) ]
          | [] -> []
        end
  in
  let dist = Setup.distribution dist_kind ~mtbf:preset.P.Presets.processor_mtbf in
  let replicates = Config.scale config ~quick:6 ~full:600 in
  let curves =
    List.map
      (fun workload_model ->
        let points =
          List.filter_map
            (fun processors ->
              let scenario =
                Setup.scenario ~config ~dist ~preset ~workload_model ~processors ()
              in
              let job = scenario.S.Scenario.job in
              let policy =
                match policy_kind with
                | `Optexp -> Po.Optexp.policy job
                | `Dp_next_failure -> Po.Dp_policies.dp_next_failure job
              in
              S.Evaluation.average_makespan ~scenario ~policy ~replicates
              |> Option.map (fun m -> (processors, m)))
            counts
        in
        let best_processors =
          match points with
          | [] -> 0
          | (p0, m0) :: rest ->
              fst (List.fold_left (fun (bp, bm) (p, m) -> if m < bm then (p, m) else (bp, bm))
                     (p0, m0) rest)
        in
        { workload_name = P.Workload.model_name workload_model; points; best_processors })
      (P.Workload.all_paper_models ())
  in
  let policy_name = match policy_kind with `Optexp -> "OptExp" | `Dp_next_failure -> "DPNextFailure" in
  {
    title =
      Printf.sprintf "Appendix D: average makespan vs p (%s, %s, %s)" policy_name
        (Setup.dist_kind_name dist_kind) preset.P.Presets.label;
    curves;
  }

let figure98 ?(config = Config.default ()) ~proportional () =
  run ~config ~preset:(P.Presets.petascale ~proportional_overhead:proportional ())
    ~dist_kind:Setup.Exponential ~policy_kind:`Optexp ()

let figure99 ?(config = Config.default ()) () =
  run ~config ~preset:(P.Presets.petascale ()) ~dist_kind:(Setup.Weibull 0.7)
    ~policy_kind:`Dp_next_failure ()

let print t ~csv =
  Report.print_header t.title;
  let series =
    List.map
      (fun c ->
        {
          Report.label = c.workload_name;
          points = List.map (fun (p, m) -> (float_of_int p, m /. P.Units.day)) c.points;
        })
      t.curves
  in
  Report.print_series ~x_label:"processors" ~y_label:"average makespan (days)" series;
  List.iter
    (fun c -> Printf.printf "best enrollment for %s: %d processors\n" c.workload_name c.best_processors)
    t.curves;
  Report.write_csv
    ~path:(Filename.concat (Report.results_dir ()) csv)
    (Report.csv_of_series ~x_label:"processors" series)
