module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator

type curve = {
  workload_name : string;
  points : (int * float) list;
  profiles : (int * S.Evaluation.waste_profile) list;
  best_processors : int;
}

type t = {
  title : string;
  curves : curve list;
}

let run ?(config = Config.default ()) ?processor_counts ~preset ~dist_kind ~policy_kind () =
  let counts =
    match processor_counts with
    | Some c -> c
    | None ->
        let all = preset.P.Presets.job_processor_counts in
        if config.Config.full then all
        else begin
          match all with
          | a :: _ -> [ a; List.nth all (List.length all / 2); List.nth all (List.length all - 1) ]
          | [] -> []
        end
  in
  let dist = Setup.distribution dist_kind ~mtbf:preset.P.Presets.processor_mtbf in
  let replicates = Config.scale config ~quick:6 ~full:600 in
  let curves =
    List.map
      (fun workload_model ->
        let evaluated =
          List.filter_map
            (fun processors ->
              let scenario =
                Setup.scenario ~config ~dist ~preset ~workload_model ~processors ()
              in
              let job = scenario.S.Scenario.job in
              let policy =
                match policy_kind with
                | `Optexp -> Po.Optexp.policy job
                | `Dp_next_failure -> Po.Dp_policies.dp_next_failure job
              in
              S.Evaluation.makespan_profile ~scenario ~policy ~replicates
              |> Option.map (fun (m, profile) -> (processors, m, profile)))
            counts
        in
        let points = List.map (fun (p, m, _) -> (p, m)) evaluated in
        let profiles = List.map (fun (p, _, profile) -> (p, profile)) evaluated in
        let best_processors =
          match points with
          | [] -> 0
          | (p0, m0) :: rest ->
              fst (List.fold_left (fun (bp, bm) (p, m) -> if m < bm then (p, m) else (bp, bm))
                     (p0, m0) rest)
        in
        { workload_name = P.Workload.model_name workload_model; points; profiles;
          best_processors })
      (P.Workload.all_paper_models ())
  in
  let policy_name = match policy_kind with `Optexp -> "OptExp" | `Dp_next_failure -> "DPNextFailure" in
  {
    title =
      Printf.sprintf "Appendix D: average makespan vs p (%s, %s, %s)" policy_name
        (Setup.dist_kind_name dist_kind) preset.P.Presets.label;
    curves;
  }

let figure98 ?(config = Config.default ()) ~proportional () =
  run ~config ~preset:(P.Presets.petascale ~proportional_overhead:proportional ())
    ~dist_kind:Setup.Exponential ~policy_kind:`Optexp ()

let figure99 ?(config = Config.default ()) () =
  run ~config ~preset:(P.Presets.petascale ()) ~dist_kind:(Setup.Weibull 0.7)
    ~policy_kind:`Dp_next_failure ()

let print t ~csv =
  Report.print_header t.title;
  let series =
    List.map
      (fun c ->
        {
          Report.label = c.workload_name;
          points = List.map (fun (p, m) -> (float_of_int p, m /. P.Units.day)) c.points;
        })
      t.curves
  in
  Report.print_series ~x_label:"processors" ~y_label:"average makespan (days)" series;
  List.iter
    (fun c -> Printf.printf "best enrollment for %s: %d processors\n" c.workload_name c.best_processors)
    t.curves;
  (* The leading columns replicate [Report.csv_of_series] byte for
     byte (makespan in days per workload); the waste-profile block
     appends per workload, in seconds as everywhere else. *)
  let contents =
    let buf = Buffer.create 4096 in
    let xs =
      List.concat_map (fun s -> List.map fst s.Report.points) series
      |> List.sort_uniq compare
    in
    let lookup s x =
      match List.assoc_opt x s.Report.points with Some v -> v | None -> nan
    in
    Buffer.add_string buf "processors";
    List.iter (fun s -> Buffer.add_string buf ("," ^ s.Report.label)) series;
    List.iter
      (fun c ->
        List.iter
          (fun col -> Buffer.add_string buf (Printf.sprintf ",%s_%s" c.workload_name col))
          Report.profile_columns)
      t.curves;
    Buffer.add_char buf '\n';
    List.iter
      (fun x ->
        Buffer.add_string buf (Printf.sprintf "%g" x);
        List.iter
          (fun s ->
            let v = lookup s x in
            Buffer.add_string buf (if Float.is_nan v then "," else Printf.sprintf ",%g" v))
          series;
        List.iter
          (fun c ->
            let profile =
              List.find_map
                (fun (p, profile) ->
                  if float_of_int p = x then Some profile else None)
                c.profiles
            in
            List.iter
              (fun cell -> Buffer.add_string buf ("," ^ cell))
              (Report.profile_values profile))
          t.curves;
        Buffer.add_char buf '\n')
      xs;
    Buffer.contents buf
  in
  Report.write_csv ~path:(Filename.concat (Report.results_dir ()) csv) contents
