(** Named registry of every reproducible artifact, for the CLI and the
    benchmark harness. *)

type entry = {
  id : string;  (** e.g. "fig4", "table2" *)
  description : string;
  run : Config.t -> unit;  (** prints rows and writes CSVs *)
}

val all : unit -> entry list
val find : string -> entry option
val run_all : Config.t -> unit
val ids : unit -> string list
