(** Figures 7 and 100: degradation vs processors when failures follow
    the empirical distribution of (synthetic stand-ins for) the LANL
    cluster-18/19 availability logs (Section 6).

    As in the paper: failures strike whole 4-processor nodes; a
    45,208-processor platform uses 11,302 node traces; Liu, Bouguerra
    and DPMakespan are not applicable (they need a parametric or
    rejuvenated model), so the roster is Young, DalyLow, DalyHigh,
    OptExp (fed the empirical MTBF), PeriodLB and DPNextFailure. *)

type cluster = Cluster18 | Cluster19

type point = {
  processors : int;
  table : Ckpt_simulator.Evaluation.table;
}

type t = {
  cluster : cluster;
  empirical_mtbf : float;  (** mean availability interval, seconds *)
  points : point list;
}

val log_for : cluster -> Ckpt_failures.Failure_log.t
(** The synthetic log (deterministic; see {!Ckpt_failures.Lanl_synth}). *)

val run :
  ?config:Config.t -> ?processor_counts:int list -> cluster:cluster -> unit -> t
(** Default processor counts: 2^12 .. 2^15 (the paper's Figure 7
    x-range; quick runs subsample). *)

val print : ?config:Config.t -> cluster:cluster -> unit -> unit
