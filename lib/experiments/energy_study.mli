(** Section 8 extension: the energy/makespan trade-off of the
    checkpoint period.  Short periods burn checkpoint I/O energy;
    long periods burn recomputation energy; the energy-optimal period
    is generally longer than the makespan-optimal one because I/O
    power applies to all [p] processors while waste is rarer. *)

type point = {
  period : float;
  average_makespan : float;  (** seconds *)
  average_energy : float;  (** joules *)
}

type t = {
  title : string;
  points : point list;
  makespan_optimal_period : float;
  energy_optimal_period : float;
}

val run :
  ?config:Config.t ->
  ?power:Ckpt_simulator.Energy.power ->
  ?processors:int ->
  preset:Ckpt_platform.Presets.t ->
  dist_kind:Setup.dist_kind ->
  unit ->
  t

val print : ?config:Config.t -> unit -> unit
