module P = Ckpt_platform
module Po = Ckpt_policies
module S = Ckpt_simulator
module F = Ckpt_failures

type cluster = Cluster18 | Cluster19

type point = {
  processors : int;
  table : S.Evaluation.table;
}

type t = {
  cluster : cluster;
  empirical_mtbf : float;
  points : point list;
}

let log_for = function
  | Cluster18 -> F.Lanl_synth.generate F.Lanl_synth.cluster18_parameters
  | Cluster19 -> F.Lanl_synth.generate F.Lanl_synth.cluster19_parameters

let cluster_name = function Cluster18 -> "cluster 18" | Cluster19 -> "cluster 19"

let run ?(config = Config.default ()) ?processor_counts ~cluster () =
  let log = log_for cluster in
  let dist = F.Failure_log.to_distribution log in
  let counts =
    match processor_counts with
    | Some c -> c
    | None ->
        let all = [ 1 lsl 12; 1 lsl 13; 1 lsl 14; 1 lsl 15 ] in
        if config.Config.full then all else [ 1 lsl 12; 1 lsl 14 ]
  in
  let preset = P.Presets.petascale () in
  let replicates = Config.scale config ~quick:8 ~full:600 in
  let store = Sweep_store.of_config config in
  let points =
    (* Two-to-four processor counts whose cost grows with the count:
       the nested replicate fan-out composes under the work-stealing
       scheduler, so the sweep does not serialize on its widest
       point. *)
    Ckpt_parallel.Domain_pool.parallel_map_list
      (fun processors ->
        let scenario =
          Setup.scenario ~config ~dist ~preset
            ~workload_model:P.Workload.Embarrassingly_parallel ~processors
            ~group_size:F.Lanl_synth.node_group_size ()
        in
        (* Liu / Bouguerra / DPMakespan are not applicable here
           (Section 6); OptExp and the Daly family pretend the
           distribution is Exponential with the empirical MTBF. *)
        let policies = Setup.policies ~liu:false ~bouguerra:false scenario in
        let table =
          Sweep_store.degradation_table ?store
            ~params:[ ("cluster", cluster_name cluster) ]
            ~experiment:
              (Printf.sprintf "logbased_%s_p%d"
                 (match cluster with Cluster18 -> "c18" | Cluster19 -> "c19")
                 processors)
            ~scenario ~policies ~replicates ()
        in
        { processors; table })
      counts
  in
  { cluster; empirical_mtbf = F.Failure_log.mean_interval log; points }

let print ?(config = Config.default ()) ~cluster () =
  let t = run ~config ~cluster () in
  Report.print_header
    (Printf.sprintf
       "Figure %s: log-based failures (synthetic LANL %s; node MTBF %.2e s)"
       (match cluster with Cluster19 -> "7" | Cluster18 -> "100a")
       (cluster_name cluster) t.empirical_mtbf);
  let tables = List.map (fun pt -> (float_of_int pt.processors, pt.table)) t.points in
  let series = Report.degradation_series tables in
  Report.print_series ~x_label:"processors" ~y_label:"average makespan degradation" series;
  Report.write_csv
    ~path:
      (Filename.concat (Report.results_dir ())
         (match cluster with Cluster19 -> "fig7_logbased.csv" | Cluster18 -> "fig100_logbased.csv"))
    (Report.csv_of_tables ~x_label:"processors" tables)
