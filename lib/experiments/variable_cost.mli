(** The paper's conclusion extension: progress-dependent checkpoint
    and recovery costs.

    Model: an application whose checkpoint footprint grows with its
    progress (adaptive mesh refinement, particle accumulation):
    [C(progress) = R(progress) = C0 (0.5 + progress)] — half the
    nominal cost at start, 1.5x at the end, averaging the nominal
    [C0 = 600 s].  Three policies compete under the profiled engine:

    - OptExp with the nominal (average) cost — what a constant-cost
      model would deploy;
    - DPNextFailure with the nominal cost (age-adaptive but
      cost-oblivious);
    - DPNextFailure given the profile (the extension: replans with the
      cost at its current progress). *)

type result = {
  policy_name : string;
  average_makespan : float;
  average_degradation : float;
}

val run : ?config:Config.t -> ?processors:int -> unit -> result list
(** Petascale platform, Weibull k = 0.7, embarrassingly parallel. *)

val print : ?config:Config.t -> unit -> unit
