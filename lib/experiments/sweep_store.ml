module Scenario = Ckpt_simulator.Scenario
module Evaluation = Ckpt_simulator.Evaluation
module Policy = Ckpt_policies.Policy
module Job = Ckpt_policies.Job
module Machine = Ckpt_platform.Machine
module Overhead = Ckpt_platform.Overhead
module Distribution = Ckpt_distributions.Distribution
module Domain_pool = Ckpt_parallel.Domain_pool
module Atomic_file = Ckpt_store.Atomic_file
module Metrics = Ckpt_telemetry.Metrics
module Provenance = Ckpt_telemetry.Provenance

type t = { root : string }

let create ~dir =
  Atomic_file.mkdir_p dir;
  { root = dir }

let dir t = t.root

let of_config config =
  match config.Config.sweep_dir with None -> None | Some d -> Some (create ~dir:d)

(* -- worker mode -------------------------------------------------------------

   In worker mode (set by the per-process sweep workers of
   [Sweep_workers], never by the parent) a missing unit is computed
   only after winning its claim marker; units claimed by another live
   worker are skipped and the caller substitutes a merge-neutral
   placeholder.  Worker-side reductions are discarded — only the
   parent's canonical pass renders output — so the placeholder never
   reaches a table anyone reads. *)

let worker_flag = Atomic.make false
let set_worker_mode b = Atomic.set worker_flag b
let worker_mode () = Atomic.get worker_flag

(* -- unit counters ----------------------------------------------------------- *)

type stats = {
  skipped : int;
  computed : int;
  invalidated : int;
  claimed : int;
  busy : int;
  reaped : int;
}

let skipped = Atomic.make 0
let computed = Atomic.make 0
let invalidated = Atomic.make 0
let claimed = Atomic.make 0
let busy = Atomic.make 0
let reaped = Atomic.make 0
let m_skipped = Metrics.counter "sweep/units_skipped"
let m_computed = Metrics.counter "sweep/units_computed"
let m_invalidated = Metrics.counter "sweep/units_invalidated"
let m_claimed = Metrics.counter "sweep/claims_won"
let m_busy = Metrics.counter "sweep/claims_busy"
let m_reaped = Metrics.counter "sweep/claims_reaped"

let bump cell counter =
  Atomic.incr cell;
  Metrics.incr counter

let stats () =
  { skipped = Atomic.get skipped; computed = Atomic.get computed;
    invalidated = Atomic.get invalidated; claimed = Atomic.get claimed;
    busy = Atomic.get busy; reaped = Atomic.get reaped }

let reset_stats () =
  Atomic.set skipped 0;
  Atomic.set computed 0;
  Atomic.set invalidated 0;
  Atomic.set claimed 0;
  Atomic.set busy 0;
  Atomic.set reaped 0

(* -- content addressing ------------------------------------------------------

   The unit key digests every input the unit's result depends on:
   experiment name, the full scenario (distribution, job shape,
   machine, seed, horizon), the policy roster, the replicate count and
   the stripe layout, plus any caller-supplied parameters.  Floats are
   rendered in hexadecimal so the key sees their exact bits.  Any
   change lands on a fresh key — the snippet-style invalidation rule:
   stale state is never consulted, only orphaned. *)

let hex = Printf.sprintf "%h"

let fingerprint ~kind ~experiment ~scenario ~policy_names ~replicates ~params =
  let job = scenario.Scenario.job in
  let machine = job.Job.machine in
  let dist = job.Job.dist in
  let overhead =
    match machine.Machine.overhead with
    | Overhead.Constant c -> Printf.sprintf "constant:%s" (hex c)
    | Overhead.Proportional { cost_at; reference_processors } ->
        Printf.sprintf "proportional:%s@%d" (hex cost_at) reference_processors
  in
  let base =
    [
      ("kind", kind);
      ("experiment", experiment);
      ("dist", dist.Distribution.name);
      ("dist_mean", hex dist.Distribution.mean);
      ("processors", string_of_int job.Job.processors);
      ("group_size", string_of_int job.Job.group_size);
      ("work_time", hex job.Job.work_time);
      ("total_processors", string_of_int machine.Machine.total_processors);
      ("downtime", hex machine.Machine.downtime);
      ("overhead", overhead);
      ("seed", Int64.to_string scenario.Scenario.seed);
      ("horizon", hex scenario.Scenario.horizon);
      ("start_time", hex scenario.Scenario.start_time);
      ("policies", String.concat "," policy_names);
      ("replicates", string_of_int replicates);
      ("stripe_size", string_of_int (Evaluation.stripe_size ()));
    ]
  in
  base @ List.sort compare params

let digest_of fields =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) fields)))

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    s

let unit_path store ~experiment ~digest ~stripe =
  Filename.concat store.root
    (Printf.sprintf "%s-%s.stripe%03d.part" (sanitize experiment) digest stripe)

(* -- unit persistence --------------------------------------------------------

   One file per unit: a header binding the content digest and stripe
   index, then the payload.  The header guards against a file whose
   name and contents disagree (manual copies, filesystem corruption);
   such a unit counts as invalidated and is recomputed in place. *)

(* -- claim markers -----------------------------------------------------------

   A claim is a cooperative lock on one unit: `<unit>.claim`, created
   with O_EXCL (the one filesystem operation whose winner is
   unambiguous even on shared filesystems), carrying an advisory
   pid/host/timestamp payload.  Claims only gate *worker-mode compute*;
   loads never consult them and the parent's canonical pass ignores
   them entirely, so a wedged claim can cost duplicated work but never
   wrong output — unit writes are atomic and idempotent under the
   content key, so two processes computing the same unit produce the
   same bytes and the loser's rename is harmless.

   Staleness has two triggers: a dead pid (checked only for same-host
   claims, where [kill pid 0] is meaningful) and an age beyond
   CKPT_SWEEP_CLAIM_TTL (default 10 min) for everything else, including
   claims whose payload has not landed yet or is torn.  Reaping races
   (two workers both observing a stale claim, or the holder releasing
   between our check and our unlink) at worst duplicate one unit's
   compute — see above. *)

module Claim = struct
  let format = "ckpt-claim/1"
  let path unit_path = unit_path ^ ".claim"
  let default_ttl = 600.

  let ttl () =
    match Sys.getenv_opt "CKPT_SWEEP_CLAIM_TTL" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some t when t >= 0. -> t
        | Some _ | None -> default_ttl)
    | None -> default_ttl

  let payload ~pid ~host ~time =
    Printf.sprintf "%s pid=%d host=%s time=%h\n" format pid host time

  let write ~path ~pid ~host ~time =
    Atomic_file.write ~fsync:false ~path (payload ~pid ~host ~time)

  let parse contents =
    match
      String.split_on_char ' ' (String.trim contents)
      |> List.filter (fun s -> s <> "")
    with
    | [ fmt; pid; host; time ]
      when fmt = format
           && String.starts_with ~prefix:"pid=" pid
           && String.starts_with ~prefix:"host=" host
           && String.starts_with ~prefix:"time=" time -> (
        let drop prefix s =
          String.sub s (String.length prefix) (String.length s - String.length prefix)
        in
        match
          (int_of_string_opt (drop "pid=" pid), float_of_string_opt (drop "time=" time))
        with
        | Some pid, Some time -> Some (pid, drop "host=" host, time)
        | _ -> None)
    | _ -> None

  let pid_alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (ESRCH, _, _) -> false
    (* EPERM means the pid exists but belongs to someone else. *)
    | exception Unix.Unix_error (_, _, _) -> true

  let stale ~now path =
    match Atomic_file.read path with
    | None -> false (* vanished — nothing left to reap *)
    | Some contents -> (
        match parse contents with
        | Some (pid, host, time) ->
            if host = Unix.gethostname () && not (pid_alive pid) then true
            else now -. time > ttl ()
        | None -> (
            (* Empty or torn payload: the creator may still be between
               O_EXCL and write.  Fresh until its mtime ages out. *)
            match Atomic_file.modification_time path with
            | Some mtime -> now -. mtime > ttl ()
            | None -> false))

  let acquire unit_path =
    let cpath = path unit_path in
    let mine () =
      payload ~pid:(Unix.getpid ()) ~host:(Unix.gethostname ())
        ~time:(Unix.gettimeofday ())
    in
    let rec attempt retries =
      if Atomic_file.create_exclusive ~path:cpath (mine ()) then `Won
      else if retries > 0 && stale ~now:(Unix.gettimeofday ()) cpath then begin
        Atomic_file.remove cpath;
        bump reaped m_reaped;
        attempt (retries - 1)
      end
      else `Busy
    in
    attempt 3

  let release unit_path = Atomic_file.remove (path unit_path)
end

let header ~digest ~stripe = Printf.sprintf "ckpt-sweep/1 %s stripe=%d" digest stripe

(* Inspect a unit file without touching the counters — the per-call
   accounting lives in [load_or_compute_opt], which may examine the
   same path more than once while arbitrating a claim. *)
let examine ~path ~digest ~stripe ~decode =
  match Atomic_file.read path with
  | None -> `Absent
  | Some contents -> (
      let valid =
        match String.index_opt contents '\n' with
        | None -> None
        | Some i ->
            if String.sub contents 0 i <> header ~digest ~stripe then None
            else decode (String.sub contents (i + 1) (String.length contents - i - 1))
      in
      match valid with Some v -> `Valid v | None -> `Corrupt)

let persist ~path ~digest ~stripe ~fields payload =
  Atomic_file.write ~path (header ~digest ~stripe ^ "\n" ^ payload);
  Provenance.write_sidecar
    ~extra:(("unit_stripe", string_of_int stripe) :: fields)
    ~path ()

let compute_and_persist ~path ~digest ~stripe ~fields ~encode compute =
  let v = compute () in
  persist ~path ~digest ~stripe ~fields (encode v);
  bump computed m_computed;
  v

(* [None] only in worker mode, for a unit another live worker holds. *)
let load_or_compute_opt ~path ~digest ~stripe ~fields ~decode ~encode compute =
  let ex () = examine ~path ~digest ~stripe ~decode in
  match ex () with
  | `Valid v ->
      bump skipped m_skipped;
      Some v
  | (`Absent | `Corrupt) as first ->
      if first = `Corrupt then bump invalidated m_invalidated;
      if not (worker_mode ()) then
        Some (compute_and_persist ~path ~digest ~stripe ~fields ~encode compute)
      else begin
        match Claim.acquire path with
        | `Won -> (
            bump claimed m_claimed;
            (* The previous holder may have persisted the unit and
               released between our first look and our win. *)
            match ex () with
            | `Valid v ->
                Claim.release path;
                bump skipped m_skipped;
                Some v
            | `Absent | `Corrupt ->
                let v =
                  Fun.protect
                    ~finally:(fun () -> Claim.release path)
                    (fun () ->
                      compute_and_persist ~path ~digest ~stripe ~fields ~encode compute)
                in
                Some v)
        | `Busy -> (
            (* The holder may have finished while we were acquiring. *)
            match ex () with
            | `Valid v ->
                bump skipped m_skipped;
                Some v
            | `Absent | `Corrupt ->
                bump busy m_busy;
                None)
      end


(* -- unit / claim enumeration ------------------------------------------------

   The unit set of a sweep is defined by the deterministic experiment
   enumeration (every process derives the same keys from the same ids
   and config); the store directory is the ground truth of which units
   are done.  These listings are for progress reporting, tests and
   tooling — never for correctness decisions. *)

type unit_info = {
  u_path : string;
  u_experiment : string;
  u_digest : string;
  u_stripe : int;
}

(* "<experiment>-<digest:32>.stripe<NNN>.part"; [sanitize] means the
   experiment stem cannot itself contain a '.'. *)
let parse_unit_name root name =
  if not (Filename.check_suffix name ".part") then None
  else begin
    let stem = Filename.chop_suffix name ".part" in
    match String.rindex_opt stem '.' with
    | None -> None
    | Some dot -> (
        let base = String.sub stem 0 dot in
        let tag = String.sub stem (dot + 1) (String.length stem - dot - 1) in
        let digest_len = 32 in
        if
          String.starts_with ~prefix:"stripe" tag
          && String.length base > digest_len + 1
          && base.[String.length base - digest_len - 1] = '-'
        then
          match int_of_string_opt (String.sub tag 6 (String.length tag - 6)) with
          | None -> None
          | Some stripe ->
              Some
                {
                  u_path = Filename.concat root name;
                  u_experiment =
                    String.sub base 0 (String.length base - digest_len - 1);
                  u_digest =
                    String.sub base (String.length base - digest_len) digest_len;
                  u_stripe = stripe;
                }
        else None)
  end

let readdir_sorted root =
  match Sys.readdir root with
  | names ->
      Array.sort compare names;
      Array.to_list names
  | exception Sys_error _ -> []

let units t = List.filter_map (parse_unit_name t.root) (readdir_sorted t.root)

type claim_info = {
  c_path : string;
  c_pid : int option;
  c_host : string option;
  c_age : float;
  c_stale : bool;
}

let claims t =
  let now = Unix.gettimeofday () in
  readdir_sorted t.root
  |> List.filter (fun name -> Filename.check_suffix name ".claim")
  |> List.filter_map (fun name ->
         let path = Filename.concat t.root name in
         match Atomic_file.read path with
         | None -> None (* released while we were listing *)
         | Some contents ->
             let pid, host, age =
               match Claim.parse contents with
               | Some (pid, host, time) -> (Some pid, Some host, now -. time)
               | None -> (
                   ( None,
                     None,
                     match Atomic_file.modification_time path with
                     | Some mtime -> now -. mtime
                     | None -> 0. ))
             in
             Some
               {
                 c_path = path;
                 c_pid = pid;
                 c_host = host;
                 c_age = age;
                 c_stale = Claim.stale ~now path;
               })

(* [all:true] is for the parent after every worker has been reaped via
   waitpid: any surviving claim's owner is dead by construction. *)
let reap_claims ?(all = false) t =
  let now = Unix.gettimeofday () in
  readdir_sorted t.root
  |> List.filter (fun name -> Filename.check_suffix name ".claim")
  |> List.fold_left
       (fun n name ->
         let path = Filename.concat t.root name in
         if all || Claim.stale ~now path then begin
           Atomic_file.remove path;
           bump reaped m_reaped;
           n + 1
         end
         else n)
       0

(* -- entry points ------------------------------------------------------------ *)

let degradation_table ?store ?(params = []) ~experiment ~scenario ~policies ~replicates () =
  match store with
  | None -> Evaluation.degradation_table ~scenario ~policies ~replicates
  | Some store ->
      let policy_names = List.map (fun p -> p.Policy.name) policies in
      let fields =
        fingerprint ~kind:"table" ~experiment ~scenario ~policy_names ~replicates ~params
      in
      let digest = digest_of fields in
      let names = Array.of_list policy_names in
      let partials =
        Domain_pool.parallel_init (Evaluation.stripe_count ~replicates) (fun stripe ->
            let path = unit_path store ~experiment ~digest ~stripe in
            match
              load_or_compute_opt ~path ~digest ~stripe ~fields
                ~decode:Evaluation.deserialize_partial
                ~encode:Evaluation.serialize_partial (fun () ->
                  Evaluation.stripe_partial ~scenario ~policies ~replicates ~stripe)
            with
            | Some p -> p
            | None -> Evaluation.empty_partial ~policy_names:names)
      in
      Evaluation.table_of_partials (Array.to_list partials)

let floats_format = "ckpt-floats/1"

let encode_floats arr =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" floats_format (Array.length arr));
  Array.iter (fun x -> Buffer.add_string buf (hex x ^ "\n")) arr;
  Buffer.contents buf

let decode_floats payload =
  match String.split_on_char '\n' payload with
  | hd :: rest when String.starts_with ~prefix:(floats_format ^ " ") hd -> (
      let n =
        int_of_string_opt
          (String.sub hd (String.length floats_format + 1)
             (String.length hd - String.length floats_format - 1))
      in
      match n with
      | None -> None
      | Some n ->
          let rest = List.filter (fun l -> String.trim l <> "") rest in
          if List.length rest <> n then None
          else begin
            let vals = List.map float_of_string_opt rest in
            if List.exists Option.is_none vals then None
            else Some (Array.of_list (List.map Option.get vals))
          end)
  | _ -> None

let vectors_format = "ckpt-vectors/1"

let encode_vectors rows =
  let buf = Buffer.create 256 in
  let width = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" vectors_format (Array.length rows) width);
  Array.iter
    (fun row ->
      Array.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (hex x))
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let decode_vectors payload =
  match String.split_on_char '\n' payload with
  | hd :: rest when String.starts_with ~prefix:(vectors_format ^ " ") hd -> (
      match String.split_on_char ' ' hd with
      | [ _; n; w ] -> (
          match (int_of_string_opt n, int_of_string_opt w) with
          | Some n, Some w ->
              let rest = List.filter (fun l -> String.trim l <> "") rest in
              if List.length rest <> n then None
              else begin
                let parse line =
                  let cells =
                    String.split_on_char ' ' line |> List.filter (fun c -> c <> "")
                  in
                  if List.length cells <> w then None
                  else begin
                    let vals = List.map float_of_string_opt cells in
                    if List.exists Option.is_none vals then None
                    else Some (Array.of_list (List.map Option.get vals))
                  end
                in
                let rows = List.map parse rest in
                if List.exists Option.is_none rows then None
                else Some (Array.of_list (List.map Option.get rows))
              end
          | _ -> None)
      | _ -> None)
  | _ -> None

let vectors ?store ?(params = []) ~experiment ~scenario ~replicates ~width ~f () =
  if replicates <= 0 then invalid_arg "Sweep_store.vectors: replicates must be positive";
  if width <= 0 then invalid_arg "Sweep_store.vectors: width must be positive";
  let sz = Evaluation.stripe_size () in
  let stripe_arrays =
    Domain_pool.parallel_init (Evaluation.stripe_count ~replicates) (fun stripe ->
        let first = stripe * sz in
        let len = min sz (replicates - first) in
        let compute () =
          Domain_pool.parallel_init len (fun i ->
              let row = f (first + i) in
              if Array.length row <> width then
                invalid_arg "Sweep_store.vectors: row width mismatch";
              row)
        in
        match store with
        | None -> compute ()
        | Some store ->
            let fields =
              fingerprint ~kind:"vectors" ~experiment ~scenario ~policy_names:[]
                ~replicates
                ~params:(("width", string_of_int width) :: params)
            in
            let digest = digest_of fields in
            let path = unit_path store ~experiment ~digest ~stripe in
            let decode payload =
              match decode_vectors payload with
              | Some rows when Array.for_all (fun r -> Array.length r = width) rows ->
                  Some rows
              | _ -> None
            in
            (match
               load_or_compute_opt ~path ~digest ~stripe ~fields ~decode
                 ~encode:encode_vectors compute
             with
            | Some rows -> rows
            | None -> Array.init len (fun _ -> Array.make width 0.)))
  in
  Array.concat (Array.to_list stripe_arrays)

let floats ?store ?(params = []) ~experiment ~scenario ~replicates ~f () =
  if replicates <= 0 then invalid_arg "Sweep_store.floats: replicates must be positive";
  let sz = Evaluation.stripe_size () in
  let stripe_arrays =
    Domain_pool.parallel_init (Evaluation.stripe_count ~replicates) (fun stripe ->
        let first = stripe * sz in
        let len = min sz (replicates - first) in
        let compute () = Domain_pool.parallel_init len (fun i -> f (first + i)) in
        match store with
        | None -> compute ()
        | Some store ->
            let fields =
              fingerprint ~kind:"floats" ~experiment ~scenario ~policy_names:[]
                ~replicates ~params
            in
            let digest = digest_of fields in
            let path = unit_path store ~experiment ~digest ~stripe in
            (match
               load_or_compute_opt ~path ~digest ~stripe ~fields ~decode:decode_floats
                 ~encode:encode_floats compute
             with
            | Some arr -> arr
            | None -> Array.make len 0.))
  in
  Array.concat (Array.to_list stripe_arrays)
