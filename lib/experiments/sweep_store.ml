module Scenario = Ckpt_simulator.Scenario
module Evaluation = Ckpt_simulator.Evaluation
module Policy = Ckpt_policies.Policy
module Job = Ckpt_policies.Job
module Machine = Ckpt_platform.Machine
module Overhead = Ckpt_platform.Overhead
module Distribution = Ckpt_distributions.Distribution
module Domain_pool = Ckpt_parallel.Domain_pool
module Atomic_file = Ckpt_store.Atomic_file
module Metrics = Ckpt_telemetry.Metrics
module Provenance = Ckpt_telemetry.Provenance

type t = { root : string }

let create ~dir =
  Atomic_file.mkdir_p dir;
  { root = dir }

let dir t = t.root

let of_config config =
  match config.Config.sweep_dir with None -> None | Some d -> Some (create ~dir:d)

(* -- unit counters ----------------------------------------------------------- *)

type stats = { skipped : int; computed : int; invalidated : int }

let skipped = Atomic.make 0
let computed = Atomic.make 0
let invalidated = Atomic.make 0
let m_skipped = Metrics.counter "sweep/units_skipped"
let m_computed = Metrics.counter "sweep/units_computed"
let m_invalidated = Metrics.counter "sweep/units_invalidated"

let bump cell counter =
  Atomic.incr cell;
  Metrics.incr counter

let stats () =
  { skipped = Atomic.get skipped; computed = Atomic.get computed;
    invalidated = Atomic.get invalidated }

let reset_stats () =
  Atomic.set skipped 0;
  Atomic.set computed 0;
  Atomic.set invalidated 0

(* -- content addressing ------------------------------------------------------

   The unit key digests every input the unit's result depends on:
   experiment name, the full scenario (distribution, job shape,
   machine, seed, horizon), the policy roster, the replicate count and
   the stripe layout, plus any caller-supplied parameters.  Floats are
   rendered in hexadecimal so the key sees their exact bits.  Any
   change lands on a fresh key — the snippet-style invalidation rule:
   stale state is never consulted, only orphaned. *)

let hex = Printf.sprintf "%h"

let fingerprint ~kind ~experiment ~scenario ~policy_names ~replicates ~params =
  let job = scenario.Scenario.job in
  let machine = job.Job.machine in
  let dist = job.Job.dist in
  let overhead =
    match machine.Machine.overhead with
    | Overhead.Constant c -> Printf.sprintf "constant:%s" (hex c)
    | Overhead.Proportional { cost_at; reference_processors } ->
        Printf.sprintf "proportional:%s@%d" (hex cost_at) reference_processors
  in
  let base =
    [
      ("kind", kind);
      ("experiment", experiment);
      ("dist", dist.Distribution.name);
      ("dist_mean", hex dist.Distribution.mean);
      ("processors", string_of_int job.Job.processors);
      ("group_size", string_of_int job.Job.group_size);
      ("work_time", hex job.Job.work_time);
      ("total_processors", string_of_int machine.Machine.total_processors);
      ("downtime", hex machine.Machine.downtime);
      ("overhead", overhead);
      ("seed", Int64.to_string scenario.Scenario.seed);
      ("horizon", hex scenario.Scenario.horizon);
      ("start_time", hex scenario.Scenario.start_time);
      ("policies", String.concat "," policy_names);
      ("replicates", string_of_int replicates);
      ("stripe_size", string_of_int (Evaluation.stripe_size ()));
    ]
  in
  base @ List.sort compare params

let digest_of fields =
  Digest.to_hex
    (Digest.string (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) fields)))

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    s

let unit_path store ~experiment ~digest ~stripe =
  Filename.concat store.root
    (Printf.sprintf "%s-%s.stripe%03d.part" (sanitize experiment) digest stripe)

(* -- unit persistence --------------------------------------------------------

   One file per unit: a header binding the content digest and stripe
   index, then the payload.  The header guards against a file whose
   name and contents disagree (manual copies, filesystem corruption);
   such a unit counts as invalidated and is recomputed in place. *)

let header ~digest ~stripe = Printf.sprintf "ckpt-sweep/1 %s stripe=%d" digest stripe

let load ~path ~digest ~stripe ~decode =
  match Atomic_file.read path with
  | None -> None
  | Some contents -> (
      let valid =
        match String.index_opt contents '\n' with
        | None -> None
        | Some i ->
            if String.sub contents 0 i <> header ~digest ~stripe then None
            else decode (String.sub contents (i + 1) (String.length contents - i - 1))
      in
      match valid with
      | Some v ->
          bump skipped m_skipped;
          Some v
      | None ->
          bump invalidated m_invalidated;
          None)

let persist ~path ~digest ~stripe ~fields payload =
  Atomic_file.write ~path (header ~digest ~stripe ^ "\n" ^ payload);
  Provenance.write_sidecar
    ~extra:(("unit_stripe", string_of_int stripe) :: fields)
    ~path ()

let load_or_compute ~path ~digest ~stripe ~fields ~decode ~encode compute =
  match load ~path ~digest ~stripe ~decode with
  | Some v -> v
  | None ->
      let v = compute () in
      persist ~path ~digest ~stripe ~fields (encode v);
      bump computed m_computed;
      v

(* -- entry points ------------------------------------------------------------ *)

let degradation_table ?store ?(params = []) ~experiment ~scenario ~policies ~replicates () =
  match store with
  | None -> Evaluation.degradation_table ~scenario ~policies ~replicates
  | Some store ->
      let policy_names = List.map (fun p -> p.Policy.name) policies in
      let fields =
        fingerprint ~kind:"table" ~experiment ~scenario ~policy_names ~replicates ~params
      in
      let digest = digest_of fields in
      let partials =
        Domain_pool.parallel_init (Evaluation.stripe_count ~replicates) (fun stripe ->
            let path = unit_path store ~experiment ~digest ~stripe in
            load_or_compute ~path ~digest ~stripe ~fields
              ~decode:Evaluation.deserialize_partial ~encode:Evaluation.serialize_partial
              (fun () -> Evaluation.stripe_partial ~scenario ~policies ~replicates ~stripe))
      in
      Evaluation.table_of_partials (Array.to_list partials)

let floats_format = "ckpt-floats/1"

let encode_floats arr =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" floats_format (Array.length arr));
  Array.iter (fun x -> Buffer.add_string buf (hex x ^ "\n")) arr;
  Buffer.contents buf

let decode_floats payload =
  match String.split_on_char '\n' payload with
  | hd :: rest when String.starts_with ~prefix:(floats_format ^ " ") hd -> (
      let n =
        int_of_string_opt
          (String.sub hd (String.length floats_format + 1)
             (String.length hd - String.length floats_format - 1))
      in
      match n with
      | None -> None
      | Some n ->
          let rest = List.filter (fun l -> String.trim l <> "") rest in
          if List.length rest <> n then None
          else begin
            let vals = List.map float_of_string_opt rest in
            if List.exists Option.is_none vals then None
            else Some (Array.of_list (List.map Option.get vals))
          end)
  | _ -> None

let vectors_format = "ckpt-vectors/1"

let encode_vectors rows =
  let buf = Buffer.create 256 in
  let width = if Array.length rows = 0 then 0 else Array.length rows.(0) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" vectors_format (Array.length rows) width);
  Array.iter
    (fun row ->
      Array.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (hex x))
        row;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let decode_vectors payload =
  match String.split_on_char '\n' payload with
  | hd :: rest when String.starts_with ~prefix:(vectors_format ^ " ") hd -> (
      match String.split_on_char ' ' hd with
      | [ _; n; w ] -> (
          match (int_of_string_opt n, int_of_string_opt w) with
          | Some n, Some w ->
              let rest = List.filter (fun l -> String.trim l <> "") rest in
              if List.length rest <> n then None
              else begin
                let parse line =
                  let cells =
                    String.split_on_char ' ' line |> List.filter (fun c -> c <> "")
                  in
                  if List.length cells <> w then None
                  else begin
                    let vals = List.map float_of_string_opt cells in
                    if List.exists Option.is_none vals then None
                    else Some (Array.of_list (List.map Option.get vals))
                  end
                in
                let rows = List.map parse rest in
                if List.exists Option.is_none rows then None
                else Some (Array.of_list (List.map Option.get rows))
              end
          | _ -> None)
      | _ -> None)
  | _ -> None

let vectors ?store ?(params = []) ~experiment ~scenario ~replicates ~width ~f () =
  if replicates <= 0 then invalid_arg "Sweep_store.vectors: replicates must be positive";
  if width <= 0 then invalid_arg "Sweep_store.vectors: width must be positive";
  let sz = Evaluation.stripe_size () in
  let stripe_arrays =
    Domain_pool.parallel_init (Evaluation.stripe_count ~replicates) (fun stripe ->
        let first = stripe * sz in
        let len = min sz (replicates - first) in
        let compute () =
          Domain_pool.parallel_init len (fun i ->
              let row = f (first + i) in
              if Array.length row <> width then
                invalid_arg "Sweep_store.vectors: row width mismatch";
              row)
        in
        match store with
        | None -> compute ()
        | Some store ->
            let fields =
              fingerprint ~kind:"vectors" ~experiment ~scenario ~policy_names:[]
                ~replicates
                ~params:(("width", string_of_int width) :: params)
            in
            let digest = digest_of fields in
            let path = unit_path store ~experiment ~digest ~stripe in
            let decode payload =
              match decode_vectors payload with
              | Some rows when Array.for_all (fun r -> Array.length r = width) rows ->
                  Some rows
              | _ -> None
            in
            load_or_compute ~path ~digest ~stripe ~fields ~decode
              ~encode:encode_vectors compute)
  in
  Array.concat (Array.to_list stripe_arrays)

let floats ?store ?(params = []) ~experiment ~scenario ~replicates ~f () =
  if replicates <= 0 then invalid_arg "Sweep_store.floats: replicates must be positive";
  let sz = Evaluation.stripe_size () in
  let stripe_arrays =
    Domain_pool.parallel_init (Evaluation.stripe_count ~replicates) (fun stripe ->
        let first = stripe * sz in
        let len = min sz (replicates - first) in
        let compute () = Domain_pool.parallel_init len (fun i -> f (first + i)) in
        match store with
        | None -> compute ()
        | Some store ->
            let fields =
              fingerprint ~kind:"floats" ~experiment ~scenario ~policy_names:[]
                ~replicates ~params
            in
            let digest = digest_of fields in
            let path = unit_path store ~experiment ~digest ~stripe in
            load_or_compute ~path ~digest ~stripe ~fields ~decode:decode_floats
              ~encode:encode_floats compute)
  in
  Array.concat (Array.to_list stripe_arrays)
