(** Figure 5: sensitivity to the Weibull shape parameter [k] on the
    full Jaguar-like platform (45,208 processors): average makespan
    degradation of every heuristic for k = 0.1 .. 1.0.  DPNextFailure
    should stay near 1 for the production range k = 0.33-0.78 while
    the periodic MTBF-only heuristics degrade sharply as k
    decreases, and Liu fails to produce plans for small k. *)

type point = {
  shape : float;
  table : Ckpt_simulator.Evaluation.table;
}

type t = { points : point list }

val run :
  ?config:Config.t -> ?shapes:float list -> ?processors:int -> unit -> t
(** Default shapes: 0.1 to 1.0 by 0.1 (quick runs: {0.3, 0.5, 0.7, 1.0}). *)

val print : ?config:Config.t -> unit -> unit
